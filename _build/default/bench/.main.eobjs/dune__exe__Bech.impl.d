bench/bech.ml: Analyze Array Bechamel Benchmark Float Gc Hashtbl List Measure Printf Quill_util Staged Test Time Toolkit
