bench/main.ml: Array Experiments List Printf Quill_util String Sys
