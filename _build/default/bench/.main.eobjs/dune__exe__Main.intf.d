bench/main.mli:
