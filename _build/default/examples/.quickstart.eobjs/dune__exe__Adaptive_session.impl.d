examples/adaptive_session.ml: Array Printf Quill Quill_adaptive Quill_plan Quill_storage Quill_util
