examples/adaptive_session.mli:
