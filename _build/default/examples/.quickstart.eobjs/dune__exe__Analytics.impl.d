examples/analytics.ml: List Printf Quill Quill_storage Quill_util Quill_workload
