examples/analytics.mli:
