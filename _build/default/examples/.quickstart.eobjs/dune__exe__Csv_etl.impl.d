examples/csv_etl.ml: Filename Printf Quill Quill_storage String Sys
