examples/csv_etl.mli:
