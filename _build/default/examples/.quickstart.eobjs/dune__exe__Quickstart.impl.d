examples/quickstart.ml: List Printf Quill Quill_storage
