examples/quickstart.mli:
