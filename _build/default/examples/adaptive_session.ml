(* Adaptive execution: plan caching, profile feedback and tiered
   compilation in a dashboard-style session that re-runs parameterized
   queries.

   Run with: dune exec examples/adaptive_session.exe *)

module Db = Quill.Db
module Value = Quill_storage.Value
module Table = Quill_storage.Table
module Schema = Quill_storage.Schema
module Catalog = Quill_storage.Catalog
module Rng = Quill_util.Rng

let build_events db =
  let schema =
    Schema.create
      [ Schema.col ~nullable:false "user_id" Value.Int_t;
        Schema.col ~nullable:false "region" Value.Int_t;
        Schema.col ~nullable:false "plan_tier" Value.Int_t;
        Schema.col ~nullable:false "amount" Value.Float_t;
        Schema.col ~nullable:false "day" Value.Date_t ]
  in
  let t = Table.create ~name:"events" schema in
  let rng = Rng.create 99 in
  for _ = 1 to 200_000 do
    (* region and plan_tier are correlated: premium tiers cluster in a few
       regions — exactly the pattern that defeats independence-based
       estimation. *)
    let region = Rng.int rng 50 in
    let tier = if region < 5 then 2 + Rng.int rng 2 else Rng.int rng 2 in
    Table.insert t
      [| Value.Int (Rng.int rng 100_000); Value.Int region; Value.Int tier;
         Value.Float (Rng.float_range rng 1.0 500.0);
         Value.Date (Value.date_of_ymd ~y:2026 ~m:1 ~d:1 + Rng.int rng 150) |]
  done;
  Catalog.add (Db.catalog db) t;
  Db.analyze db "events"

let () =
  let db = Db.create () in
  build_events db;
  Db.set_policy db (Quill_adaptive.Tiering.Tiered 3);

  let dashboard_query =
    "SELECT region, count(*) AS n, sum(amount) AS revenue \
     FROM events WHERE day >= $1 GROUP BY region ORDER BY revenue DESC LIMIT 5"
  in

  Printf.printf "Dashboard refresh loop (plan cached, tiered to compiled at run 3):\n";
  for run = 1 to 6 do
    let params = [| Value.Date (Value.date_of_ymd ~y:2026 ~m:1 ~d:run) |] in
    let t0 = Quill_util.Timer.now () in
    let r = Db.query_adaptive db ~params dashboard_query in
    let dt = (Quill_util.Timer.now () -. t0) *. 1000.0 in
    let entries, runs, compiled = Db.cache_stats db in
    Printf.printf
      "  run %d: %.1fms  (%d rows; cache: %d entries, %d total runs, %d compiled)\n%!"
      run dt (Table.row_count r) entries runs compiled
  done;

  (* A query whose correlated predicate misleads the static estimator:
     the first (instrumented) execution detects the misestimate and
     re-optimizes before caching. *)
  let correlated =
    "SELECT count(*) FROM events WHERE region < 5 AND plan_tier >= 2"
  in
  Printf.printf "\nCorrelated predicate (true selectivity ~10%%, independence says ~1%%):\n";
  Printf.printf "%s" (Db.explain db correlated);
  let r1 = Db.query_adaptive db correlated in
  Printf.printf "  first (instrumented) run -> %s matching rows\n"
    (Value.to_string (Table.get r1 0 0));
  (* The feedback store now holds the observed selectivity; fresh plans of
     the same predicate see corrected cardinalities. *)
  Printf.printf "  re-planned with feedback hints:\n%s" (Db.explain db correlated);

  (* Micro-adaptivity: per-batch racing of expression tiers. *)
  Printf.printf "\nMicro-adaptive evaluator over 64 batches:\n";
  let e =
    (* amount * 1.17 > 400.0 *)
    { Quill_plan.Bexpr.node =
        Quill_plan.Bexpr.Cmp
          ( Quill_plan.Bexpr.Gt,
            { Quill_plan.Bexpr.node =
                Quill_plan.Bexpr.Arith
                  ( Quill_plan.Bexpr.Mul,
                    { Quill_plan.Bexpr.node = Quill_plan.Bexpr.Col 0;
                      dtype = Value.Float_t },
                    { Quill_plan.Bexpr.node = Quill_plan.Bexpr.Lit (Value.Float 1.17);
                      dtype = Value.Float_t } );
              dtype = Value.Float_t },
            { Quill_plan.Bexpr.node = Quill_plan.Bexpr.Lit (Value.Float 400.0);
              dtype = Value.Float_t } );
      dtype = Value.Bool_t }
  in
  let m = Quill_adaptive.Micro.create ~explore_batches:2 ~reexplore_every:32 e in
  let rng = Rng.create 1 in
  for _ = 1 to 64 do
    let batch =
      Array.init 1024 (fun _ -> [| Value.Float (Rng.float_range rng 1.0 500.0) |])
    in
    ignore (Quill_adaptive.Micro.eval_batch m ~params:[||] batch)
  done;
  Printf.printf "  settled on tier: %s\n"
    (Quill_adaptive.Micro.tier_name (Quill_adaptive.Micro.current_tier m))
