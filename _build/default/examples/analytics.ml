(* Analytical workload: a TPC-H-like database queried through all three
   execution engines, with EXPLAIN output showing join ordering and
   algorithm picking at work.

   Run with: dune exec examples/analytics.exe *)

module Db = Quill.Db
module Table = Quill_storage.Table
module Tpch = Quill_workload.Tpch

let () =
  let db = Db.create () in
  Printf.printf "Generating TPC-H-like data (SF 0.01)...\n%!";
  Tpch.load (Db.catalog db) ~sf:0.01 ~seed:7;
  (* Collect optimizer statistics up front (otherwise they are collected
     lazily on first use). *)
  List.iter (Db.analyze db)
    [ "lineitem"; "orders"; "customer"; "supplier"; "nation"; "region"; "part" ];

  List.iter
    (fun name ->
      let t = Quill_storage.Catalog.find_exn (Db.catalog db) name in
      Printf.printf "  %-9s %7d rows\n" name (Table.row_count t))
    [ "region"; "nation"; "supplier"; "customer"; "part"; "orders"; "lineitem" ];

  (* The pricing summary report (Q1 analog). *)
  Printf.printf "\n-- Q1: pricing summary report\n%!";
  print_string (Table.to_string (Db.query db Tpch.q1));

  (* Top unshipped orders (Q3 analog): a 3-way join that the optimizer
     reorders, with a fused TopK instead of a full sort. *)
  Printf.printf "\n-- Q3 plan (note join order, TopK fusion, scan filters):\n%!";
  print_string (Db.explain db Tpch.q3);
  Printf.printf "\n-- Q3: top profitable open orders\n%!";
  print_string (Table.to_string (Db.query db Tpch.q3));

  (* Regional revenue (Q5 analog, 6-way join). *)
  Printf.printf "\n-- Q5: revenue by nation in ASIA\n%!";
  print_string (Table.to_string (Db.query db Tpch.q5));

  (* Forecast revenue change (Q6 analog): the compiled engine turns this
     into one unboxed loop over three typed arrays. *)
  Printf.printf "\n-- Q6: forecast revenue change\n%!";
  print_string (Table.to_string (Db.query db Tpch.q6));

  (* Engine comparison. *)
  Printf.printf "\n-- engines (wall clock per query)\n%!";
  List.iter
    (fun (qname, sql) ->
      Printf.printf "  %-3s" qname;
      List.iter
        (fun engine ->
          let t0 = Quill_util.Timer.now () in
          ignore (Db.query db ~engine sql);
          Printf.printf "  %s %6.1fms" (Db.engine_name engine)
            ((Quill_util.Timer.now () -. t0) *. 1000.0))
        [ Db.Volcano; Db.Vectorized; Db.Compiled ];
      print_newline ())
    Tpch.queries;

  (* Window functions: top revenue days per nation via rank() OVER. *)
  Printf.printf "\n-- window functions: each nation's top-2 revenue dates\n%!";
  ignore
    (Db.exec db
       "CREATE TABLE nation_daily AS \
        SELECT n_name, o_orderdate AS day, sum(o_totalprice) AS revenue \
        FROM nation, customer, orders \
        WHERE n_nationkey = c_nationkey AND c_custkey = o_custkey \
        GROUP BY n_name, o_orderdate");
  print_string
    (Table.to_string ~limit:10
       (Db.query db
          "SELECT nd.n_name, nd.day, nd.revenue, nd.rk FROM \
           (SELECT n_name, day, revenue, \
            rank() OVER (PARTITION BY n_name ORDER BY revenue DESC) AS rk \
            FROM nation_daily) nd \
           WHERE nd.rk <= 2 ORDER BY nd.n_name, nd.rk LIMIT 10"));

  (* EXPLAIN ANALYZE: estimated vs. actual rows per operator — the signal
     the adaptive layer uses to re-optimize. *)
  Printf.printf "\n-- EXPLAIN ANALYZE of Q6\n%!";
  print_string (Db.explain db ~analyze:true Tpch.q6)
