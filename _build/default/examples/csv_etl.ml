(* CSV ETL: ingest a raw CSV, clean and reshape it with SQL (CASE, UDFs,
   aggregation), and export the result as CSV — the "small data tools"
   use of an embeddable engine.

   Run with: dune exec examples/csv_etl.exe *)

module Db = Quill.Db
module Value = Quill_storage.Value
module Table = Quill_storage.Table
module Csv = Quill_storage.Csv

let raw_csv =
  "order_id,customer,item,qty,unit_price,ship_date\n\
   1001,acme corp,widget,5,9.99,2026-05-02\n\
   1002,Globex,gizmo,2,149.50,2026-05-03\n\
   1003,acme corp,widget,10,9.99,2026-05-03\n\
   1004,initech,doohickey,1,899.00,\n\
   1005,ACME Corp,gizmo,3,149.50,2026-05-05\n\
   1006,globex,widget,20,9.49,2026-05-06\n\
   1007,Initech,gizmo,,149.50,2026-05-07\n"

let () =
  let db = Db.create () in
  (* Define the staging table and COPY the file in; empty fields land as
     NULL. *)
  ignore
    (Db.exec db
       "CREATE TABLE raw_orders (order_id INT NOT NULL, customer TEXT, \
        item TEXT, qty INT, unit_price FLOAT, ship_date DATE)");
  let path = Filename.temp_file "quill_etl" ".csv" in
  let oc = open_out path in
  output_string oc raw_csv;
  close_out oc;
  (match Db.exec db (Printf.sprintf "COPY raw_orders FROM '%s'" path) with
  | Db.Affected n -> Printf.printf "ingested %d raw rows\n" n
  | _ -> assert false);
  Sys.remove path;

  (* Cleaning rules as SQL: normalize customer names with a UDF, default
     missing quantities, flag unshipped orders. *)
  Db.register_udf db ~name:"canon" ~args:[ Value.Str_t ] ~ret:Value.Str_t
    (function
    | [| Value.Str s |] ->
        Value.Str (String.lowercase_ascii (String.trim s))
    | [| Value.Null |] -> Value.Null
    | _ -> invalid_arg "canon");

  let cleaned =
    Db.query db
      "SELECT order_id, canon(customer) AS customer, item, \
       CASE WHEN qty IS NULL THEN 1 ELSE qty END AS qty, \
       unit_price, \
       CASE WHEN qty IS NULL THEN 1 ELSE qty END * unit_price AS total, \
       CASE WHEN ship_date IS NULL THEN 'pending' ELSE 'shipped' END AS status \
       FROM raw_orders ORDER BY order_id"
  in
  Printf.printf "\ncleaned orders:\n%s" (Table.to_string cleaned);

  (* Register the cleaned result as a table and aggregate it. *)
  Quill_storage.Catalog.add (Db.catalog db)
    (Table.of_rows ~name:"orders" (Table.schema cleaned) (Table.to_row_list cleaned));
  let per_customer =
    Db.query db
      "SELECT customer, count(*) AS orders, sum(total) AS revenue, \
       max(total) AS biggest \
       FROM orders GROUP BY customer ORDER BY revenue DESC"
  in
  Printf.printf "per-customer rollup:\n%s" (Table.to_string per_customer);

  (* Export. *)
  let out = Filename.temp_file "quill_etl_out" ".csv" in
  Csv.save per_customer out;
  Printf.printf "wrote %s:\n" out;
  let ic = open_in out in
  (try
     while true do
       Printf.printf "  %s\n" (input_line ic)
     done
   with End_of_file -> close_in ic);
  Sys.remove out
