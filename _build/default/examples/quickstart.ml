(* Quickstart: create tables, load rows, and query through the full
   pipeline (parse -> bind -> optimize -> pick algorithms -> compile ->
   execute).

   Run with: dune exec examples/quickstart.exe *)

module Db = Quill.Db
module Table = Quill_storage.Table

let show title result =
  Printf.printf "-- %s\n%s\n" title (Table.to_string result)

let () =
  let db = Db.create () in

  (* DDL + DML through SQL. *)
  ignore
    (Db.exec db
       "CREATE TABLE books (id INT NOT NULL, title TEXT, author TEXT, \
        year INT, price FLOAT)");
  ignore
    (Db.exec db
       "INSERT INTO books VALUES \
        (1, 'The Art of Computer Programming', 'Knuth', 1968, 199.0), \
        (2, 'A Relational Model of Data', 'Codd', 1970, 15.0), \
        (3, 'The C Programming Language', 'Kernighan', 1978, 45.0), \
        (4, 'Structure and Interpretation', 'Abelson', 1985, 60.0), \
        (5, 'Purely Functional Data Structures', 'Okasaki', 1998, 55.0), \
        (6, 'Types and Programming Languages', 'Pierce', 2002, 90.0), \
        (7, 'Readings in Database Systems', 'Hellerstein', 2005, NULL)");

  (* Plain queries; the default engine compiles the plan to fused
     closures. *)
  show "books after 1975, cheapest first"
    (Db.query db
       "SELECT title, author, price FROM books \
        WHERE year > 1975 AND price IS NOT NULL \
        ORDER BY price LIMIT 3");

  (* Expressions, CASE, LIKE. *)
  show "eras"
    (Db.query db
       "SELECT CASE WHEN year < 1980 THEN 'classic' ELSE 'modern' END AS era, \
        count(*) AS n, avg(price) AS avg_price \
        FROM books GROUP BY CASE WHEN year < 1980 THEN 'classic' ELSE 'modern' END \
        ORDER BY era");

  show "titles mentioning programming"
    (Db.query db "SELECT title FROM books WHERE title LIKE '%Programming%'");

  (* Parameterized queries: $1, $2... bind to the params array. *)
  show "parameterized"
    (Db.query db
       ~params:[| Quill_storage.Value.Int 1990 |]
       "SELECT title FROM books WHERE year >= $1 ORDER BY year");

  (* A user-defined function participates like a built-in (it is bound,
     optimized, compiled and fused). *)
  Db.register_udf db ~name:"discounted" ~args:[ Quill_storage.Value.Float_t ]
    ~ret:Quill_storage.Value.Float_t (function
    | [| Quill_storage.Value.Float p |] -> Quill_storage.Value.Float (p *. 0.9)
    | [| Quill_storage.Value.Null |] -> Quill_storage.Value.Null
    | _ -> invalid_arg "discounted");
  show "udf in the pipeline"
    (Db.query db
       "SELECT title, discounted(price) AS sale FROM books \
        WHERE discounted(price) < 50.0 ORDER BY sale");

  (* EXPLAIN shows what the algorithm picker chose. *)
  print_endline "-- EXPLAIN of an aggregate";
  print_string
    (Db.explain db "SELECT author, count(*) FROM books GROUP BY author");

  (* The three engines are interchangeable and agree. *)
  List.iter
    (fun engine ->
      let r =
        Db.query db ~engine "SELECT count(*) AS n FROM books WHERE price > 40.0"
      in
      Printf.printf "engine %-10s -> %s\n" (Db.engine_name engine)
        (Quill_storage.Value.to_string (Table.get r 0 0)))
    [ Db.Volcano; Db.Vectorized; Db.Compiled ]
