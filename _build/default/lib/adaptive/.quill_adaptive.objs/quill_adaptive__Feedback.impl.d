lib/adaptive/feedback.ml: Float Hashtbl Quill_exec Quill_optimizer Quill_plan Quill_storage
