lib/adaptive/micro.ml: Array Float Quill_compile Quill_plan Quill_storage Quill_util
