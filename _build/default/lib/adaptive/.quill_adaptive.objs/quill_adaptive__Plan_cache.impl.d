lib/adaptive/plan_cache.ml: Array Hashtbl List Quill_compile Quill_optimizer Quill_storage Quill_util String
