lib/adaptive/tiering.ml: Array Plan_cache Printf Quill_compile Quill_exec Quill_optimizer Quill_util
