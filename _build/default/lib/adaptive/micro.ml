(* Micro-adaptivity: per-batch choice among expression evaluation tiers.

   VectorWise-style "micro adaptivity": for a given expression, the three
   tiers (tree interpreter, staged closures, bytecode VM) are raced on
   real batches in an explore phase; the winner then handles subsequent
   batches, with periodic re-exploration so the choice tracks shifts in
   the data (claim C4; experiment E11). *)

module Value = Quill_storage.Value
module Bexpr = Quill_plan.Bexpr

type tier = Interp | Closure | Vm

let tier_name = function Interp -> "interp" | Closure -> "closure" | Vm -> "vm"
let all_tiers = [| Interp; Closure; Vm |]

type t = {
  expr : Bexpr.t;
  closure : Quill_compile.Expr_compile.fn;
  vm : Quill_compile.Expr_vm.program;
  explore_batches : int;  (** batches per tier in an explore phase *)
  reexplore_every : int;  (** batches between explore phases *)
  cost : float array;  (** accumulated seconds per tier (explore phases) *)
  mutable batches_seen : int;
  mutable current : tier;
  mutable exploring : bool;
}

(** [create ?explore_batches ?reexplore_every expr] builds an adaptive
    evaluator for [expr]. *)
let create ?(explore_batches = 2) ?(reexplore_every = 64) expr =
  {
    expr;
    closure = Quill_compile.Expr_compile.compile expr;
    vm = Quill_compile.Expr_vm.compile expr;
    explore_batches;
    reexplore_every;
    cost = Array.make (Array.length all_tiers) 0.0;
    batches_seen = 0;
    current = Interp;
    exploring = true;
  }

let eval_with t tier ~params rows out =
  match tier with
  | Interp ->
      Array.iteri (fun i row -> out.(i) <- Bexpr.eval ~row ~params t.expr) rows
  | Closure -> Array.iteri (fun i row -> out.(i) <- t.closure params row) rows
  | Vm ->
      Array.iteri (fun i row -> out.(i) <- Quill_compile.Expr_vm.run t.vm ~params ~row) rows

let best_tier t =
  let besti = ref 0 in
  Array.iteri (fun i c -> if c < t.cost.(!besti) then besti := i) t.cost;
  all_tiers.(!besti)

(** [eval_batch t ~params rows] evaluates the expression over a batch of
    rows, tier-switching per the explore/exploit schedule. *)
let eval_batch t ~params (rows : Value.t array array) : Value.t array =
  let out = Array.make (Array.length rows) Value.Null in
  let phase_len = t.explore_batches * Array.length all_tiers in
  let in_cycle = t.batches_seen mod (t.reexplore_every + phase_len) in
  if in_cycle < phase_len then begin
    (* Explore: round-robin the tiers, timing each batch. *)
    if in_cycle = 0 then Array.fill t.cost 0 (Array.length t.cost) 0.0;
    let tier_idx = in_cycle / t.explore_batches in
    let tier = all_tiers.(tier_idx) in
    t.exploring <- true;
    let dt = Quill_util.Timer.time_unit (fun () -> eval_with t tier ~params rows out) in
    (* Normalize by batch size so uneven batches don't bias the race. *)
    t.cost.(tier_idx) <-
      t.cost.(tier_idx) +. (dt /. Float.max 1.0 (Float.of_int (Array.length rows)));
    if in_cycle = phase_len - 1 then t.current <- best_tier t
  end
  else begin
    t.exploring <- false;
    eval_with t t.current ~params rows out
  end;
  t.batches_seen <- t.batches_seen + 1;
  out

(** [current_tier t] is the tier the evaluator currently exploits. *)
let current_tier t = t.current
