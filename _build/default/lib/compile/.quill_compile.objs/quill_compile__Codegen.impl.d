lib/compile/codegen.ml: Array Col_expr Col_pred Domain Expr_compile Float Fun Hashtbl Int List Option Quill_exec Quill_optimizer Quill_plan Quill_storage Quill_util Set
