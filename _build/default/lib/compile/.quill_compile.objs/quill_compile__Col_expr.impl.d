lib/compile/col_expr.ml: Array Float List Option Quill_plan Quill_storage Quill_util
