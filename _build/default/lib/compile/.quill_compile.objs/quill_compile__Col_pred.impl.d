lib/compile/col_pred.ml: Array Float Hashtbl List Quill_plan Quill_storage Quill_util String
