lib/compile/expr_compile.ml: Array Hashtbl List Option Quill_plan Quill_storage String
