lib/compile/expr_interp.ml: Quill_plan
