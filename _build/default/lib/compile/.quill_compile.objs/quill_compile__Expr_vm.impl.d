lib/compile/expr_vm.ml: Array Hashtbl List Quill_plan Quill_storage Quill_util
