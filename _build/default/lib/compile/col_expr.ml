(* Unboxed numeric expression compilation over typed columns.

   Compiles the arithmetic-over-columns subset of expressions to [int ->
   int] / [int -> float] evaluators that read typed arrays directly — the
   building block of scan->aggregate fusion in the compiled engine (the
   "hand-written loop" HyPer generates for queries like TPC-H Q6).

   NULL semantics: for this restricted grammar (literals, parameters,
   columns, +,-,*,/,%, unary minus, numeric casts) an expression is NULL
   exactly when one of its referenced columns is NULL, so the caller
   guards each row with [valid_fn] and the evaluators can assume all
   inputs present.  Division/modulo by zero raises {!Bexpr.Eval_error}
   like every other tier. *)

module Value = Quill_storage.Value
module Column = Quill_storage.Column
module Bitset = Quill_util.Bitset
module Bexpr = Quill_plan.Bexpr

(** [valid_fn cols e] returns a per-row test that every column referenced
    by [e] is non-NULL. *)
let valid_fn (cols : Column.t array) (e : Bexpr.t) : int -> bool =
  let refs = List.filter (fun c -> c < Array.length cols) (Bexpr.cols e) in
  match List.map (fun c -> Column.validity cols.(c)) refs with
  | [] -> fun _ -> true
  | [ v ] -> fun i -> Bitset.get v i
  | [ v1; v2 ] -> fun i -> Bitset.get v1 i && Bitset.get v2 i
  | vs -> fun i -> List.for_all (fun v -> Bitset.get v i) vs

(** [compile_int cols params e] compiles an INT/DATE-typed expression to an
    unboxed evaluator; [None] when the shape is unsupported. *)
let rec compile_int (cols : Column.t array) params (e : Bexpr.t) : (int -> int) option =
  match e.Bexpr.node with
  | Bexpr.Lit (Value.Int v) | Bexpr.Lit (Value.Date v) -> Some (fun _ -> v)
  | Bexpr.Param i -> (
      match params.(i) with
      | Value.Int v | Value.Date v -> Some (fun _ -> v)
      | _ -> None)
  | Bexpr.Col c when c < Array.length cols -> (
      match cols.(c) with
      | Column.Ints (a, _) | Column.Dates (a, _) -> Some (fun i -> Array.unsafe_get a i)
      | _ -> None)
  | Bexpr.Neg a ->
      Option.map (fun f -> fun i -> -f i) (compile_int cols params a)
  | Bexpr.Arith (op, a, b) -> (
      match (compile_int cols params a, compile_int cols params b) with
      | Some fa, Some fb -> (
          match op with
          | Bexpr.Add -> Some (fun i -> fa i + fb i)
          | Bexpr.Sub -> Some (fun i -> fa i - fb i)
          | Bexpr.Mul -> Some (fun i -> fa i * fb i)
          | Bexpr.Div ->
              Some
                (fun i ->
                  let d = fb i in
                  if d = 0 then raise (Bexpr.Eval_error "division by zero") else fa i / d)
          | Bexpr.Mod ->
              Some
                (fun i ->
                  let d = fb i in
                  if d = 0 then raise (Bexpr.Eval_error "modulo by zero") else fa i mod d))
      | _ -> None)
  | Bexpr.Cast (a, (Value.Int_t | Value.Date_t)) when a.Bexpr.dtype = Value.Int_t || a.Bexpr.dtype = Value.Date_t ->
      compile_int cols params a
  | _ -> None

(** [compile_float cols params e] compiles a numeric expression to an
    unboxed float evaluator, widening int inputs; [None] when the shape is
    unsupported. *)
let rec compile_float (cols : Column.t array) params (e : Bexpr.t) : (int -> float) option =
  match e.Bexpr.node with
  | Bexpr.Lit (Value.Float v) -> Some (fun _ -> v)
  | Bexpr.Lit (Value.Int v) ->
      let f = Float.of_int v in
      Some (fun _ -> f)
  | Bexpr.Param i -> (
      match params.(i) with
      | Value.Float v -> Some (fun _ -> v)
      | Value.Int v ->
          let f = Float.of_int v in
          Some (fun _ -> f)
      | _ -> None)
  | Bexpr.Col c when c < Array.length cols -> (
      match cols.(c) with
      | Column.Floats (a, _) -> Some (fun i -> Array.unsafe_get a i)
      | Column.Ints (a, _) -> Some (fun i -> Float.of_int (Array.unsafe_get a i))
      | _ -> None)
  | Bexpr.Neg a -> Option.map (fun f -> fun i -> -.(f i)) (compile_float cols params a)
  | Bexpr.Arith (op, a, b) -> (
      (* Integer-only subtrees keep exact int arithmetic then widen. *)
      if e.Bexpr.dtype = Value.Int_t then
        Option.map (fun f -> fun i -> Float.of_int (f i)) (compile_int cols params e)
      else
        match (compile_float cols params a, compile_float cols params b) with
        | Some fa, Some fb -> (
            match op with
            | Bexpr.Add -> Some (fun i -> fa i +. fb i)
            | Bexpr.Sub -> Some (fun i -> fa i -. fb i)
            | Bexpr.Mul -> Some (fun i -> fa i *. fb i)
            | Bexpr.Div ->
                Some
                  (fun i ->
                    let d = fb i in
                    if d = 0.0 then raise (Bexpr.Eval_error "division by zero")
                    else fa i /. d)
            | Bexpr.Mod -> None)
        | _ -> None)
  | Bexpr.Cast (a, Value.Float_t) -> compile_float cols params a
  | _ -> None
