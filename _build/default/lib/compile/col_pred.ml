(* Unboxed predicate compilation over typed columns.

   For the common shapes — comparisons between a column and a constant or
   parameter, conjunctions, disjunctions, constant IN lists — we compile a
   [int -> bool] test that reads the typed arrays directly, with no value
   boxing at all.  Anything else returns [None] and the caller falls back
   to the closure-compiled row predicate.

   Soundness under 3-valued logic: each compiled test answers "is the
   predicate definitely TRUE for row i" (NULL maps to false).  AND/OR of
   is-true tests is exact for is-true of AND/OR, so composition is sound;
   NOT is not compositional in this encoding and is rejected. *)

module Value = Quill_storage.Value
module Column = Quill_storage.Column
module Bitset = Quill_util.Bitset
module Bexpr = Quill_plan.Bexpr

let const_of params (e : Bexpr.t) =
  match e.Bexpr.node with
  | Bexpr.Lit v -> Some v
  | Bexpr.Param i -> Some params.(i)
  | Bexpr.Cast ({ Bexpr.node = Bexpr.Lit v; _ }, t) -> (
      match Bexpr.do_cast v t with v -> Some v | exception _ -> None)
  | _ -> None

let int_test op (v : int) a (valid : Bitset.t) : int -> bool =
  match op with
  | Bexpr.Eq -> fun i -> Bitset.get valid i && Array.unsafe_get a i = v
  | Bexpr.Neq -> fun i -> Bitset.get valid i && Array.unsafe_get a i <> v
  | Bexpr.Lt -> fun i -> Bitset.get valid i && Array.unsafe_get a i < v
  | Bexpr.Le -> fun i -> Bitset.get valid i && Array.unsafe_get a i <= v
  | Bexpr.Gt -> fun i -> Bitset.get valid i && Array.unsafe_get a i > v
  | Bexpr.Ge -> fun i -> Bitset.get valid i && Array.unsafe_get a i >= v

let float_test op (v : float) a (valid : Bitset.t) : int -> bool =
  match op with
  | Bexpr.Eq -> fun i -> Bitset.get valid i && Array.unsafe_get a i = v
  | Bexpr.Neq -> fun i -> Bitset.get valid i && Array.unsafe_get a i <> v
  | Bexpr.Lt -> fun i -> Bitset.get valid i && Array.unsafe_get a i < v
  | Bexpr.Le -> fun i -> Bitset.get valid i && Array.unsafe_get a i <= v
  | Bexpr.Gt -> fun i -> Bitset.get valid i && Array.unsafe_get a i > v
  | Bexpr.Ge -> fun i -> Bitset.get valid i && Array.unsafe_get a i >= v

let str_test op (v : string) a (valid : Bitset.t) : int -> bool =
  let c i = String.compare (Array.unsafe_get a i) v in
  match op with
  | Bexpr.Eq -> fun i -> Bitset.get valid i && c i = 0
  | Bexpr.Neq -> fun i -> Bitset.get valid i && c i <> 0
  | Bexpr.Lt -> fun i -> Bitset.get valid i && c i < 0
  | Bexpr.Le -> fun i -> Bitset.get valid i && c i <= 0
  | Bexpr.Gt -> fun i -> Bitset.get valid i && c i > 0
  | Bexpr.Ge -> fun i -> Bitset.get valid i && c i >= 0

(* First dictionary index with entry >= x. *)
let dict_lower_bound (dict : string array) x =
  let lo = ref 0 and hi = ref (Array.length dict) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare dict.(mid) x < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let flip = function
  | Bexpr.Lt -> Bexpr.Gt | Bexpr.Le -> Bexpr.Ge
  | Bexpr.Gt -> Bexpr.Lt | Bexpr.Ge -> Bexpr.Le
  | op -> op

(** [compile cols params e] attempts to build an unboxed is-true test for
    predicate [e] over the typed columns [cols]. *)
let rec compile (cols : Column.t array) params (e : Bexpr.t) : (int -> bool) option =
  match e.Bexpr.node with
  | Bexpr.Cmp (op, a, b) -> (
      let col_rhs =
        match (a.Bexpr.node, const_of params b) with
        | Bexpr.Col c, Some v -> Some (c, op, v)
        | _ -> (
            match (b.Bexpr.node, const_of params a) with
            | Bexpr.Col c, Some v -> Some (c, flip op, v)
            | _ -> None)
      in
      match col_rhs with
      | None -> None
      | Some (c, op, v) -> (
          if c >= Array.length cols then None
          else
            let col = cols.(c) in
            let valid = Column.validity col in
            match (col, v) with
            | Column.Ints (a, _), Value.Int x | Column.Dates (a, _), Value.Date x ->
                Some (int_test op x a valid)
            | Column.Floats (a, _), Value.Float x -> Some (float_test op x a valid)
            | Column.Floats (a, _), Value.Int x ->
                Some (float_test op (Float.of_int x) a valid)
            | Column.Strs (a, _), Value.Str x -> Some (str_test op x a valid)
            | Column.Dict (codes, dict, _), Value.Str x -> (
                (* The dictionary is sorted, so code order = string order:
                   string comparisons become integer code comparisons. *)
                let lb = dict_lower_bound dict x in
                let exact = lb < Array.length dict && dict.(lb) = x in
                match op with
                | Bexpr.Eq ->
                    if exact then Some (int_test Bexpr.Eq lb codes valid)
                    else Some (fun _ -> false)
                | Bexpr.Neq ->
                    if exact then Some (int_test Bexpr.Neq lb codes valid)
                    else Some (fun i -> Bitset.get valid i)
                | Bexpr.Lt -> Some (int_test Bexpr.Lt lb codes valid)
                | Bexpr.Ge -> Some (int_test Bexpr.Ge lb codes valid)
                | Bexpr.Le ->
                    let ub = if exact then lb + 1 else lb in
                    Some (int_test Bexpr.Lt ub codes valid)
                | Bexpr.Gt ->
                    let ub = if exact then lb + 1 else lb in
                    Some (int_test Bexpr.Ge ub codes valid))
            | _, Value.Null -> Some (fun _ -> false)
            | _ -> None))
  | Bexpr.Like ({ Bexpr.node = Bexpr.Col c; _ }, pattern) when c < Array.length cols -> (
      match cols.(c) with
      | Column.Dict (codes, dict, _) ->
          (* Evaluate the pattern once per dictionary entry, then the
             per-row test is a table lookup. *)
          let matches = Array.map (fun s -> Bexpr.like_match ~pattern s) dict in
          let valid = Column.validity cols.(c) in
          Some (fun i -> Bitset.get valid i && matches.(Array.unsafe_get codes i))
      | _ -> None)
  | Bexpr.And (a, b) -> (
      match (compile cols params a, compile cols params b) with
      | Some fa, Some fb -> Some (fun i -> fa i && fb i)
      | _ -> None)
  | Bexpr.Or (a, b) -> (
      match (compile cols params a, compile cols params b) with
      | Some fa, Some fb -> Some (fun i -> fa i || fb i)
      | _ -> None)
  | Bexpr.In_list ({ Bexpr.node = Bexpr.Col c; _ }, items)
    when List.for_all (fun it -> const_of params it <> None) items -> (
      if c >= Array.length cols then None
      else
        let col = cols.(c) in
        let valid = Column.validity col in
        match col with
        | Column.Ints (a, _) | Column.Dates (a, _) ->
            let tbl = Hashtbl.create 16 in
            let ok =
              List.for_all
                (fun it ->
                  match const_of params it with
                  | Some (Value.Int x) | Some (Value.Date x) ->
                      Hashtbl.replace tbl x ();
                      true
                  | Some Value.Null -> true (* never contributes TRUE *)
                  | _ -> false)
                items
            in
            if ok then Some (fun i -> Bitset.get valid i && Hashtbl.mem tbl a.(i))
            else None
        | Column.Strs (a, _) ->
            let tbl = Hashtbl.create 16 in
            let ok =
              List.for_all
                (fun it ->
                  match const_of params it with
                  | Some (Value.Str s) ->
                      Hashtbl.replace tbl s ();
                      true
                  | Some Value.Null -> true
                  | _ -> false)
                items
            in
            if ok then Some (fun i -> Bitset.get valid i && Hashtbl.mem tbl a.(i))
            else None
        | Column.Dict (codes, dict, _) ->
            let keep = Array.make (Array.length dict) false in
            let ok =
              List.for_all
                (fun it ->
                  match const_of params it with
                  | Some (Value.Str s) ->
                      let lb = dict_lower_bound dict s in
                      if lb < Array.length dict && dict.(lb) = s then keep.(lb) <- true;
                      true
                  | Some Value.Null -> true
                  | _ -> false)
                items
            in
            if ok then Some (fun i -> Bitset.get valid i && keep.(Array.unsafe_get codes i))
            else None
        | _ -> None)
  | Bexpr.Is_null (negated, { Bexpr.node = Bexpr.Col c; _ }) ->
      if c >= Array.length cols then None
      else begin
        let valid = Column.validity cols.(c) in
        if negated then Some (fun i -> Bitset.get valid i)
        else Some (fun i -> not (Bitset.get valid i))
      end
  | Bexpr.Lit (Value.Bool true) -> Some (fun _ -> true)
  | Bexpr.Lit (Value.Bool false) | Bexpr.Lit Value.Null -> Some (fun _ -> false)
  | _ -> None
