(* Closure staging for expressions — compilation tier 1.

   [compile] walks the bound expression ONCE and returns a nest of
   closures: all tree dispatch, operator selection and type tests that the
   interpreter performs per row happen at compile time, and the residual
   closure does only the arithmetic.  This is the tagless-final analog of
   generating code with MetaOCaml/LLVM (see DESIGN.md substitutions) and
   the engine behind claim C3.

   Semantics are identical to {!Quill_plan.Bexpr.eval}; the test suite
   checks tier agreement with property tests. *)

module Value = Quill_storage.Value
module Bexpr = Quill_plan.Bexpr

type fn = Value.t array -> Value.t array -> Value.t
(** compiled evaluator: [f params row] *)

let rec compile (e : Bexpr.t) : fn =
  match e.Bexpr.node with
  | Bexpr.Lit v -> fun _ _ -> v
  | Bexpr.Col i -> fun _ row -> row.(i)
  | Bexpr.Param i -> fun params _ -> params.(i)
  | Bexpr.Neg a -> (
      let fa = compile a in
      match a.Bexpr.dtype with
      | Value.Int_t ->
          fun p r -> (
            match fa p r with
            | Value.Int x -> Value.Int (-x)
            | Value.Null -> Value.Null
            | v -> raise (Bexpr.Eval_error ("cannot negate " ^ Value.to_string v)))
      | _ ->
          fun p r -> (
            match fa p r with
            | Value.Float x -> Value.Float (-.x)
            | Value.Int x -> Value.Int (-x)
            | Value.Null -> Value.Null
            | v -> raise (Bexpr.Eval_error ("cannot negate " ^ Value.to_string v))))
  | Bexpr.Not a ->
      let fa = compile a in
      fun p r -> (
        match fa p r with
        | Value.Bool b -> Value.Bool (not b)
        | Value.Null -> Value.Null
        | v -> raise (Bexpr.Eval_error ("NOT on " ^ Value.to_string v)))
  | Bexpr.Arith (op, a, b) -> compile_arith op a b
  | Bexpr.Cmp (op, a, b) -> compile_cmp op a b
  | Bexpr.And (a, b) ->
      let fa = compile a and fb = compile b in
      fun p r -> (
        match fa p r with
        | Value.Bool false -> Value.Bool false
        | va -> (
            match fb p r with
            | Value.Bool false -> Value.Bool false
            | Value.Null -> Value.Null
            | vb -> if va = Value.Null then Value.Null else vb))
  | Bexpr.Or (a, b) ->
      let fa = compile a and fb = compile b in
      fun p r -> (
        match fa p r with
        | Value.Bool true -> Value.Bool true
        | va -> (
            match fb p r with
            | Value.Bool true -> Value.Bool true
            | Value.Null -> Value.Null
            | vb -> if va = Value.Null then Value.Null else vb))
  | Bexpr.Like (a, pattern) ->
      let fa = compile a in
      (* Specialize the three common pattern shapes to substring tests. *)
      let np = String.length pattern in
      let plain =
        not (String.exists (fun c -> c = '%' || c = '_') pattern)
      in
      let mid = if np >= 2 then String.sub pattern 1 (np - 2) else "" in
      let is_meta_free s = not (String.exists (fun c -> c = '%' || c = '_') s) in
      let matcher =
        if plain then fun s -> String.equal s pattern
        else if np >= 2 && pattern.[0] = '%' && pattern.[np - 1] = '%' && is_meta_free mid
        then begin
          let m = mid in
          let lm = String.length m in
          fun s ->
            let ls = String.length s in
            let rec probe i = i + lm <= ls && (String.sub s i lm = m || probe (i + 1)) in
            lm = 0 || probe 0
        end
        else if np >= 1 && pattern.[np - 1] = '%'
                && is_meta_free (String.sub pattern 0 (np - 1)) then begin
          let prefix = String.sub pattern 0 (np - 1) in
          let lp = String.length prefix in
          fun s -> String.length s >= lp && String.sub s 0 lp = prefix
        end
        else fun s -> Bexpr.like_match ~pattern s
      in
      fun p r -> (
        match fa p r with
        | Value.Str s -> Value.Bool (matcher s)
        | Value.Null -> Value.Null
        | v -> raise (Bexpr.Eval_error ("LIKE on " ^ Value.to_string v)))
  | Bexpr.In_list (a, items) ->
      let fa = compile a in
      (* Constant lists compile to a hash-set membership probe. *)
      let consts =
        List.map (fun it -> match it.Bexpr.node with Bexpr.Lit v -> Some v | _ -> None) items
      in
      if List.for_all Option.is_some consts then begin
        let tbl = Hashtbl.create 16 in
        let saw_null = ref false in
        List.iter
          (function
            | Some Value.Null -> saw_null := true
            | Some v -> Hashtbl.replace tbl v ()
            | None -> ())
          consts;
        let saw_null = !saw_null in
        fun p r ->
          match fa p r with
          | Value.Null -> Value.Null
          | v ->
              if Hashtbl.mem tbl v then Value.Bool true
              else if saw_null then Value.Null
              else Value.Bool false
      end
      else begin
        let fitems = List.map compile items in
        fun p r ->
          match fa p r with
          | Value.Null -> Value.Null
          | va ->
              let saw_null = ref false in
              let hit =
                List.exists
                  (fun f ->
                    match f p r with
                    | Value.Null ->
                        saw_null := true;
                        false
                    | v -> Value.equal va v)
                  fitems
              in
              if hit then Value.Bool true
              else if !saw_null then Value.Null
              else Value.Bool false
      end
  | Bexpr.Case (whens, els) ->
      let fwhens = List.map (fun (c, v) -> (compile c, compile v)) whens in
      let fels = Option.map compile els in
      fun p r ->
        let rec go = function
          | [] -> ( match fels with None -> Value.Null | Some f -> f p r)
          | (fc, fv) :: rest -> (
              match fc p r with Value.Bool true -> fv p r | _ -> go rest)
        in
        go fwhens
  | Bexpr.Cast (a, t) ->
      let fa = compile a in
      fun p r -> Bexpr.do_cast (fa p r) t
  | Bexpr.Is_null (negated, a) ->
      let fa = compile a in
      if negated then fun p r -> Value.Bool (not (Value.is_null (fa p r)))
      else fun p r -> Value.Bool (Value.is_null (fa p r))
  | Bexpr.Subquery { kind; cell } -> (
      match kind with
      | Bexpr.Sub_in arg ->
          let fa = compile arg in
          fun p r ->
            Bexpr.eval_subquery ~row:r ~params:p (Bexpr.Sub_in { arg with Bexpr.node = Bexpr.Lit (fa p r) }) cell
      | kind -> fun p r -> Bexpr.eval_subquery ~row:r ~params:p kind cell)
  | Bexpr.Call { fn; args; _ } -> (
      let fargs = Array.of_list (List.map compile args) in
      match Array.length fargs with
      | 1 ->
          let f0 = fargs.(0) in
          fun p r -> fn [| f0 p r |]
      | 2 ->
          let f0 = fargs.(0) and f1 = fargs.(1) in
          fun p r -> fn [| f0 p r; f1 p r |]
      | _ -> fun p r -> fn (Array.map (fun f -> f p r) fargs))

and compile_arith op a b : fn =
  let fa = compile a and fb = compile b in
  let ta = a.Bexpr.dtype and tb = b.Bexpr.dtype in
  match (op, ta, tb) with
  | Bexpr.Add, Value.Int_t, Value.Int_t ->
      fun p r -> (
        match (fa p r, fb p r) with
        | Value.Int x, Value.Int y -> Value.Int (x + y)
        | Value.Null, _ | _, Value.Null -> Value.Null
        | va, vb -> Bexpr.num_arith op va vb)
  | Bexpr.Sub, Value.Int_t, Value.Int_t ->
      fun p r -> (
        match (fa p r, fb p r) with
        | Value.Int x, Value.Int y -> Value.Int (x - y)
        | Value.Null, _ | _, Value.Null -> Value.Null
        | va, vb -> Bexpr.num_arith op va vb)
  | Bexpr.Mul, Value.Int_t, Value.Int_t ->
      fun p r -> (
        match (fa p r, fb p r) with
        | Value.Int x, Value.Int y -> Value.Int (x * y)
        | Value.Null, _ | _, Value.Null -> Value.Null
        | va, vb -> Bexpr.num_arith op va vb)
  | Bexpr.Add, Value.Float_t, Value.Float_t ->
      fun p r -> (
        match (fa p r, fb p r) with
        | Value.Float x, Value.Float y -> Value.Float (x +. y)
        | Value.Null, _ | _, Value.Null -> Value.Null
        | va, vb -> Bexpr.num_arith op va vb)
  | Bexpr.Sub, Value.Float_t, Value.Float_t ->
      fun p r -> (
        match (fa p r, fb p r) with
        | Value.Float x, Value.Float y -> Value.Float (x -. y)
        | Value.Null, _ | _, Value.Null -> Value.Null
        | va, vb -> Bexpr.num_arith op va vb)
  | Bexpr.Mul, Value.Float_t, Value.Float_t ->
      fun p r -> (
        match (fa p r, fb p r) with
        | Value.Float x, Value.Float y -> Value.Float (x *. y)
        | Value.Null, _ | _, Value.Null -> Value.Null
        | va, vb -> Bexpr.num_arith op va vb)
  | _ ->
      fun p r -> (
        match (fa p r, fb p r) with
        | Value.Null, _ | _, Value.Null -> Value.Null
        | va, vb -> Bexpr.num_arith op va vb)

and compile_cmp op a b : fn =
  let fa = compile a and fb = compile b in
  let both t = a.Bexpr.dtype = t && b.Bexpr.dtype = t in
  let int_like = (both Value.Int_t || both Value.Date_t) in
  if int_like then begin
    let test : int -> int -> bool =
      match op with
      | Bexpr.Eq -> ( = ) | Bexpr.Neq -> ( <> ) | Bexpr.Lt -> ( < )
      | Bexpr.Le -> ( <= ) | Bexpr.Gt -> ( > ) | Bexpr.Ge -> ( >= )
    in
    fun p r ->
      match (fa p r, fb p r) with
      | Value.Int x, Value.Int y | Value.Date x, Value.Date y -> Value.Bool (test x y)
      | Value.Null, _ | _, Value.Null -> Value.Null
      | va, vb -> Value.Bool (Bexpr.cmp_result op (Value.compare va vb))
  end
  else if both Value.Float_t then begin
    let test : float -> float -> bool =
      match op with
      | Bexpr.Eq -> ( = ) | Bexpr.Neq -> ( <> ) | Bexpr.Lt -> ( < )
      | Bexpr.Le -> ( <= ) | Bexpr.Gt -> ( > ) | Bexpr.Ge -> ( >= )
    in
    fun p r ->
      match (fa p r, fb p r) with
      | Value.Float x, Value.Float y -> Value.Bool (test x y)
      | Value.Null, _ | _, Value.Null -> Value.Null
      | va, vb -> Value.Bool (Bexpr.cmp_result op (Value.compare va vb))
  end
  else
    fun p r ->
      match (fa p r, fb p r) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | va, vb -> Value.Bool (Bexpr.cmp_result op (Value.compare va vb))

(** [compile_pred e] compiles a predicate to a boolean function with SQL
    WHERE semantics (NULL is false). *)
let compile_pred (e : Bexpr.t) =
  let f = compile e in
  fun params row ->
    match f params row with
    | Value.Bool b -> b
    | Value.Null -> false
    | v -> raise (Bexpr.Eval_error ("predicate returned " ^ Value.to_string v))
