(* Expression tier 0: the tree-walking interpreter.

   A thin alias over the reference evaluator in [quill.plan], present so
   the three tiers (interpret / closure-compile / bytecode VM) live behind
   one module family and E1 can sweep them uniformly. *)

(** [eval ~params ~row e] walks the expression tree per row. *)
let eval ~params ~row e = Quill_plan.Bexpr.eval ~row ~params e

(** [eval_pred ~params ~row e] is [eval] with WHERE semantics. *)
let eval_pred ~params ~row e = Quill_plan.Bexpr.eval_pred ~row ~params e
