(* Register bytecode VM for expressions — compilation tier 2.

   Expressions compile to a flat instruction array over a register file of
   boxed values; execution is a tight fetch-execute loop with no tree
   walking or closure indirection.  This models the bytecode stage of a
   managed-language runtime (between the AST interpreter and native code)
   and is the third point on the E1 tier curve.

   Short-circuit AND/OR and CASE compile to conditional jumps, so error
   and NULL semantics match the reference evaluator exactly. *)

module Value = Quill_storage.Value
module Bexpr = Quill_plan.Bexpr

type instr =
  | Load_const of int * Value.t
  | Load_col of int * int
  | Load_param of int * int
  | Neg of int * int
  | Not of int * int
  | Add_int of int * int * int
  | Sub_int of int * int * int
  | Mul_int of int * int * int
  | Arith of Bexpr.arith * int * int * int
  | Cmp_int of Bexpr.cmp * int * int * int
  | Cmp of Bexpr.cmp * int * int * int
  | And_combine of int * int * int  (** rd <- 3VL and of two non-false regs *)
  | Or_combine of int * int * int
  | Like of int * int * string
  | Is_null of int * int * bool
  | Cast of int * int * Value.dtype
  | Move of int * int
  | Call of int * (Value.t array -> Value.t) * int array
  | In_const of int * int * (Value.t, unit) Hashtbl.t * bool  (** rd, r, set, had_null *)
  | Jump of int
  | Jump_if_false of int * int  (** jump when reg is Bool false *)
  | Jump_if_true of int * int
  | Jump_if_not_true of int * int  (** jump when reg is not Bool true (CASE) *)
  | Halt of int  (** result register *)

type program = { instrs : instr array; nregs : int; scratch : Value.t array }
(* [scratch] is the reusable register file: expressions are evaluated one
   row at a time on a single thread, so reuse avoids a per-row allocation
   that would otherwise dominate small expressions. *)

(* --- Compilation ------------------------------------------------------- *)

type cstate = { mutable next_reg : int; code : instr Quill_util.Vec.t }

let emit st i = Quill_util.Vec.push st.code i
let fresh st =
  let r = st.next_reg in
  st.next_reg <- r + 1;
  r

(* Emit a placeholder jump and patch it once the target is known. *)
let emit_patch st mk =
  let pos = Quill_util.Vec.length st.code in
  emit st (Jump 0);
  fun () -> Quill_util.Vec.set st.code pos (mk (Quill_util.Vec.length st.code))

let rec compile_node st (e : Bexpr.t) : int =
  match e.Bexpr.node with
  | Bexpr.Lit v ->
      let rd = fresh st in
      emit st (Load_const (rd, v));
      rd
  | Bexpr.Col i ->
      let rd = fresh st in
      emit st (Load_col (rd, i));
      rd
  | Bexpr.Param i ->
      let rd = fresh st in
      emit st (Load_param (rd, i));
      rd
  | Bexpr.Neg a ->
      let ra = compile_node st a in
      let rd = fresh st in
      emit st (Neg (rd, ra));
      rd
  | Bexpr.Not a ->
      let ra = compile_node st a in
      let rd = fresh st in
      emit st (Not (rd, ra));
      rd
  | Bexpr.Arith (op, a, b) ->
      let ra = compile_node st a in
      let rb = compile_node st b in
      let rd = fresh st in
      let int_int = a.Bexpr.dtype = Value.Int_t && b.Bexpr.dtype = Value.Int_t in
      (match (op, int_int) with
      | Bexpr.Add, true -> emit st (Add_int (rd, ra, rb))
      | Bexpr.Sub, true -> emit st (Sub_int (rd, ra, rb))
      | Bexpr.Mul, true -> emit st (Mul_int (rd, ra, rb))
      | _ -> emit st (Arith (op, rd, ra, rb)));
      rd
  | Bexpr.Cmp (op, a, b) ->
      let ra = compile_node st a in
      let rb = compile_node st b in
      let rd = fresh st in
      let int_like t = t = Value.Int_t || t = Value.Date_t in
      if int_like a.Bexpr.dtype && a.Bexpr.dtype = b.Bexpr.dtype then
        emit st (Cmp_int (op, rd, ra, rb))
      else emit st (Cmp (op, rd, ra, rb));
      rd
  | Bexpr.And (a, b) ->
      let rd = fresh st in
      let ra = compile_node st a in
      let p1 = emit_patch st (fun t -> Jump_if_false (ra, t)) in
      let rb = compile_node st b in
      let p2 = emit_patch st (fun t -> Jump_if_false (rb, t)) in
      emit st (And_combine (rd, ra, rb));
      let p3 = emit_patch st (fun t -> Jump t) in
      p1 ();
      p2 ();
      emit st (Load_const (rd, Value.Bool false));
      p3 ();
      rd
  | Bexpr.Or (a, b) ->
      let rd = fresh st in
      let ra = compile_node st a in
      let p1 = emit_patch st (fun t -> Jump_if_true (ra, t)) in
      let rb = compile_node st b in
      let p2 = emit_patch st (fun t -> Jump_if_true (rb, t)) in
      emit st (Or_combine (rd, ra, rb));
      let p3 = emit_patch st (fun t -> Jump t) in
      p1 ();
      p2 ();
      emit st (Load_const (rd, Value.Bool true));
      p3 ();
      rd
  | Bexpr.Like (a, pattern) ->
      let ra = compile_node st a in
      let rd = fresh st in
      emit st (Like (rd, ra, pattern));
      rd
  | Bexpr.Is_null (negated, a) ->
      let ra = compile_node st a in
      let rd = fresh st in
      emit st (Is_null (rd, ra, negated));
      rd
  | Bexpr.Cast (a, t) ->
      let ra = compile_node st a in
      let rd = fresh st in
      emit st (Cast (rd, ra, t));
      rd
  | Bexpr.Call { fn; args; _ } ->
      let regs = Array.of_list (List.map (compile_node st) args) in
      let rd = fresh st in
      emit st (Call (rd, fn, regs));
      rd
  | Bexpr.In_list (a, items)
    when List.for_all
           (fun it -> match it.Bexpr.node with Bexpr.Lit _ -> true | _ -> false)
           items ->
      let ra = compile_node st a in
      let rd = fresh st in
      let tbl = Hashtbl.create 16 in
      let had_null = ref false in
      List.iter
        (fun it ->
          match it.Bexpr.node with
          | Bexpr.Lit Value.Null -> had_null := true
          | Bexpr.Lit v -> Hashtbl.replace tbl v ()
          | _ -> ())
        items;
      emit st (In_const (rd, ra, tbl, !had_null));
      rd
  | Bexpr.In_list (a, items) ->
      (* Desugar dynamic IN to an OR chain (preserves laziness). *)
      let eq it =
        { Bexpr.node = Bexpr.Cmp (Bexpr.Eq, a, it); dtype = Value.Bool_t }
      in
      let ored =
        match items with
        | [] -> { Bexpr.node = Bexpr.Lit (Value.Bool false); dtype = Value.Bool_t }
        | first :: rest ->
            List.fold_left
              (fun acc it -> { Bexpr.node = Bexpr.Or (acc, eq it); dtype = Value.Bool_t })
              (eq first) rest
      in
      compile_node st ored
  | Bexpr.Subquery { kind; cell } -> (
      (* Subqueries run through the reference evaluator against the
         pre-materialized cell; for IN, the subject compiles normally and
         the set probe is a Call. *)
      match kind with
      | Bexpr.Sub_in arg ->
          let ra = compile_node st arg in
          let rd = fresh st in
          let probe v =
            Bexpr.eval_subquery ~row:[||] ~params:[||]
              (Bexpr.Sub_in { arg with Bexpr.node = Bexpr.Lit v })
              cell
          in
          emit st (Call (rd, (fun args -> probe args.(0)), [| ra |]));
          rd
      | kind ->
          let rd = fresh st in
          emit st
            (Call (rd, (fun _ -> Bexpr.eval_subquery ~row:[||] ~params:[||] kind cell), [||]));
          rd)
  | Bexpr.Case (whens, els) ->
      let rd = fresh st in
      let end_patches = ref [] in
      List.iter
        (fun (c, v) ->
          let rc = compile_node st c in
          let skip = emit_patch st (fun t -> Jump_if_not_true (rc, t)) in
          let rv = compile_node st v in
          emit st (Move (rd, rv));
          end_patches := emit_patch st (fun t -> Jump t) :: !end_patches;
          skip ())
        whens;
      (match els with
      | None -> emit st (Load_const (rd, Value.Null))
      | Some el ->
          let re = compile_node st el in
          emit st (Move (rd, re)));
      List.iter (fun p -> p ()) !end_patches;
      rd

(** [compile e] translates a bound expression into a bytecode program. *)
let compile (e : Bexpr.t) : program =
  let st = { next_reg = 0; code = Quill_util.Vec.create ~dummy:(Jump 0) } in
  let r = compile_node st e in
  emit st (Halt r);
  let nregs = max 1 st.next_reg in
  { instrs = Quill_util.Vec.to_array st.code; nregs; scratch = Array.make nregs Value.Null }

(* --- Execution --------------------------------------------------------- *)

(** [run prog ~params ~row] executes the program against one row. *)
let run prog ~params ~(row : Value.t array) : Value.t =
  let regs = prog.scratch in
  let pc = ref 0 in
  let result = ref Value.Null in
  let running = ref true in
  while !running do
    (match prog.instrs.(!pc) with
    | Load_const (rd, v) -> regs.(rd) <- v
    | Load_col (rd, c) -> regs.(rd) <- row.(c)
    | Load_param (rd, i) -> regs.(rd) <- params.(i)
    | Neg (rd, ra) ->
        regs.(rd) <-
          (match regs.(ra) with
          | Value.Int x -> Value.Int (-x)
          | Value.Float x -> Value.Float (-.x)
          | Value.Null -> Value.Null
          | v -> raise (Bexpr.Eval_error ("cannot negate " ^ Value.to_string v)))
    | Not (rd, ra) ->
        regs.(rd) <-
          (match regs.(ra) with
          | Value.Bool b -> Value.Bool (not b)
          | Value.Null -> Value.Null
          | v -> raise (Bexpr.Eval_error ("NOT on " ^ Value.to_string v)))
    | Add_int (rd, ra, rb) ->
        regs.(rd) <-
          (match (regs.(ra), regs.(rb)) with
          | Value.Int x, Value.Int y -> Value.Int (x + y)
          | Value.Null, _ | _, Value.Null -> Value.Null
          | a, b -> Bexpr.num_arith Bexpr.Add a b)
    | Sub_int (rd, ra, rb) ->
        regs.(rd) <-
          (match (regs.(ra), regs.(rb)) with
          | Value.Int x, Value.Int y -> Value.Int (x - y)
          | Value.Null, _ | _, Value.Null -> Value.Null
          | a, b -> Bexpr.num_arith Bexpr.Sub a b)
    | Mul_int (rd, ra, rb) ->
        regs.(rd) <-
          (match (regs.(ra), regs.(rb)) with
          | Value.Int x, Value.Int y -> Value.Int (x * y)
          | Value.Null, _ | _, Value.Null -> Value.Null
          | a, b -> Bexpr.num_arith Bexpr.Mul a b)
    | Arith (op, rd, ra, rb) ->
        regs.(rd) <-
          (match (regs.(ra), regs.(rb)) with
          | Value.Null, _ | _, Value.Null -> Value.Null
          | a, b -> Bexpr.num_arith op a b)
    | Cmp_int (op, rd, ra, rb) ->
        regs.(rd) <-
          (match (regs.(ra), regs.(rb)) with
          | (Value.Int x | Value.Date x), (Value.Int y | Value.Date y) ->
              Value.Bool (Bexpr.cmp_result op (compare x y))
          | Value.Null, _ | _, Value.Null -> Value.Null
          | a, b -> Value.Bool (Bexpr.cmp_result op (Value.compare a b)))
    | Cmp (op, rd, ra, rb) ->
        regs.(rd) <-
          (match (regs.(ra), regs.(rb)) with
          | Value.Null, _ | _, Value.Null -> Value.Null
          | a, b -> Value.Bool (Bexpr.cmp_result op (Value.compare a b)))
    | And_combine (rd, ra, rb) ->
        regs.(rd) <-
          (match (regs.(ra), regs.(rb)) with
          | Value.Null, _ | _, Value.Null -> Value.Null
          | _, v -> v)
    | Or_combine (rd, ra, rb) ->
        regs.(rd) <-
          (match (regs.(ra), regs.(rb)) with
          | Value.Null, _ | _, Value.Null -> Value.Null
          | _, v -> v)
    | Like (rd, ra, pattern) ->
        regs.(rd) <-
          (match regs.(ra) with
          | Value.Str s -> Value.Bool (Bexpr.like_match ~pattern s)
          | Value.Null -> Value.Null
          | v -> raise (Bexpr.Eval_error ("LIKE on " ^ Value.to_string v)))
    | Is_null (rd, ra, negated) ->
        let n = Value.is_null regs.(ra) in
        regs.(rd) <- Value.Bool (if negated then not n else n)
    | Cast (rd, ra, t) -> regs.(rd) <- Bexpr.do_cast regs.(ra) t
    | Move (rd, ra) -> regs.(rd) <- regs.(ra)
    | Call (rd, fn, args) -> regs.(rd) <- fn (Array.map (fun r -> regs.(r)) args)
    | In_const (rd, ra, tbl, had_null) ->
        regs.(rd) <-
          (match regs.(ra) with
          | Value.Null -> Value.Null
          | v ->
              if Hashtbl.mem tbl v then Value.Bool true
              else if had_null then Value.Null
              else Value.Bool false)
    | Jump t -> pc := t - 1
    | Jump_if_false (r, t) -> if regs.(r) = Value.Bool false then pc := t - 1
    | Jump_if_true (r, t) -> if regs.(r) = Value.Bool true then pc := t - 1
    | Jump_if_not_true (r, t) -> if regs.(r) <> Value.Bool true then pc := t - 1
    | Halt r ->
        result := regs.(r);
        running := false);
    incr pc
  done;
  !result
