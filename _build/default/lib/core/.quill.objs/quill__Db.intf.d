lib/core/db.mli: Quill_adaptive Quill_optimizer Quill_storage
