lib/exec/agg_algos.ml: Array Float Hashtbl List Quill_plan Quill_storage Quill_util Sort_algos
