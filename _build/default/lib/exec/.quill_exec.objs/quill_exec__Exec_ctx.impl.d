lib/exec/exec_ctx.ml: Profile Quill_storage
