lib/exec/index_access.ml: Exec_ctx Option Quill_plan Quill_storage
