lib/exec/join_algos.ml: Array Hashtbl List Quill_plan Quill_storage Quill_util Sort_algos
