lib/exec/profile.ml: Array Float List Quill_optimizer
