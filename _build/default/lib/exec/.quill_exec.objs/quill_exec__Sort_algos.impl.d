lib/exec/sort_algos.ml: Array Quill_plan Quill_storage Sys
