lib/exec/topk.ml: Array
