lib/exec/vector.ml: Agg_algos Array Exec_ctx Fun Index_access Int Join_algos List Option Profile Quill_optimizer Quill_plan Quill_storage Quill_util Set Sort_algos Topk Window_algos
