lib/exec/volcano.ml: Agg_algos Array Exec_ctx Index_access Join_algos List Option Profile Quill_optimizer Quill_plan Quill_storage Quill_util Sort_algos Topk Window_algos
