lib/exec/window_algos.ml: Agg_algos Array Fun List Option Quill_plan Quill_storage Sort_algos
