(* Execution context shared by all engines: the catalog, bound parameter
   values, declared secondary indexes, and an optional profile sink. *)

type t = {
  catalog : Quill_storage.Catalog.t;
  params : Quill_storage.Value.t array;
  profile : Profile.t option;
  indexes : Quill_storage.Index.Registry.t;
}

(** [create ?params ?profile ?indexes catalog] builds a context; without
    [indexes] an empty registry is used (index scans then build their
    index on the fly). *)
let create ?(params = [||]) ?profile ?indexes catalog =
  {
    catalog;
    params;
    profile;
    indexes =
      (match indexes with
      | Some r -> r
      | None -> Quill_storage.Index.Registry.create ());
  }
