(* Shared index-scan runtime: resolve the ordered index (from the session
   registry, or build one on the fly when executing a plan without its
   registry) and produce matching rowids for evaluated bounds.

   A NULL bound value means the comparison can never be true, hence an
   empty result. *)

module Value = Quill_storage.Value
module Table = Quill_storage.Table
module Index = Quill_storage.Index
module Schema = Quill_storage.Schema

(** [rowids ctx ~table ~col_name ~col ~lo ~hi] returns matching row ids in
    index (key) order; bounds are already-evaluated values. *)
let rowids (ctx : Exec_ctx.t) ~table ~col_name ~col ~lo ~hi =
  let null_bound =
    (match lo with Some (v, _) when Value.is_null v -> true | _ -> false)
    || match hi with Some (v, _) when Value.is_null v -> true | _ -> false
  in
  if null_bound then []
  else begin
    let index =
      match Index.Registry.get ctx.Exec_ctx.indexes ctx.Exec_ctx.catalog ~table ~col:col_name with
      | Some idx -> idx
      | None ->
          (* Plan built against a session with this index declared, but we
             are executing without its registry: build ad hoc. *)
          Index.Ordered_index.build (Quill_storage.Catalog.find_exn ctx.Exec_ctx.catalog table) col
    in
    Index.Ordered_index.range index ?lo ?hi ()
  end

(** [eval_bound ~params b] evaluates an index bound expression. *)
let eval_bound ~params b =
  Option.map
    (fun (e, incl) -> (Quill_plan.Bexpr.eval ~row:[||] ~params e, incl))
    b
