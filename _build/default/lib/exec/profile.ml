(* Execution profiles: actual rows produced per operator.

   Operators are numbered in preorder over the physical plan (self, then
   left child, then right).  The adaptive layer compares these counts with
   the picker's estimates to decide on re-optimization (claim C4). *)

type op_stat = { mutable rows_out : int; mutable elapsed : float }

type t = { stats : op_stat array }

(** [create plan] allocates a profile sized to [plan]'s operator count. *)
let create plan =
  { stats =
      Array.init
        (Quill_optimizer.Physical.operator_count plan)
        (fun _ -> { rows_out = 0; elapsed = 0.0 }) }

(** [bump t id] records one output row for operator [id]. *)
let bump t id = t.stats.(id).rows_out <- t.stats.(id).rows_out + 1

(** [add t id n] records [n] output rows for operator [id]. *)
let add t id n = t.stats.(id).rows_out <- t.stats.(id).rows_out + n

(** [rows t id] is the observed output count of operator [id]. *)
let rows t id = t.stats.(id).rows_out

(** [add_time t id secs] accrues wall-clock time to operator [id]
    (cumulative: includes children for pipelined operators). *)
let add_time t id secs = t.stats.(id).elapsed <- t.stats.(id).elapsed +. secs

(** [elapsed t id] is the accumulated time of operator [id] in seconds. *)
let elapsed t id = t.stats.(id).elapsed

(** [estimates plan] lists each operator's estimated rows in the same
    preorder numbering as the profile. *)
let estimates plan =
  let acc = ref [] in
  let rec go p =
    acc := (Quill_optimizer.Physical.info_of p).Quill_optimizer.Physical.est_rows :: !acc;
    match p with
    | Quill_optimizer.Physical.Scan _ | Quill_optimizer.Physical.Index_scan _
    | Quill_optimizer.Physical.One_row ->
        ()
    | Quill_optimizer.Physical.Filter (_, i, _) | Quill_optimizer.Physical.Project (_, i, _)
    | Quill_optimizer.Physical.Distinct (i, _) ->
        go i
    | Quill_optimizer.Physical.Join { left; right; _ } ->
        go left;
        go right
    | Quill_optimizer.Physical.Aggregate { input; _ }
    | Quill_optimizer.Physical.Window { input; _ }
    | Quill_optimizer.Physical.Sort { input; _ }
    | Quill_optimizer.Physical.Top_k { input; _ }
    | Quill_optimizer.Physical.Limit { input; _ } ->
        go input
  in
  go plan;
  Array.of_list (List.rev !acc)

(** [max_error plan t] returns the largest estimate/actual ratio (in either
    direction) over operators that produced at least one row estimate;
    this is the re-optimization trigger signal. *)
let max_error plan t =
  let est = estimates plan in
  let worst = ref 1.0 in
  Array.iteri
    (fun i s ->
      if i < Array.length est then begin
        let a = Float.max 1.0 (Float.of_int s.rows_out) in
        let e = Float.max 1.0 est.(i) in
        worst := Float.max !worst (Float.max (a /. e) (e /. a))
      end)
    t.stats;
  !worst
