(* The sort algorithm library.

   Three interchangeable implementations with different data-movement
   profiles — exactly the kind of "library of useful algorithm
   implementations" the keynote says a SQL runtime should carry (C2):

   - [quicksort]: in-place, cache-friendly partitioning, not stable;
   - [mergesort]: stable, predictable n log n, extra linear space;
   - [radix_sort_ints]: non-comparison LSD radix for int keys, O(n) passes.

   [pick] mirrors the picker's choice rule; benchmark E7 validates it. *)

(** [quicksort cmp a] sorts [a] in place; not stable.  Median-of-three
    pivoting with insertion sort below a small cutoff. *)
let quicksort cmp a =
  let swap i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  let insertion lo hi =
    for i = lo + 1 to hi do
      let x = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && cmp a.(!j) x > 0 do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- x
    done
  in
  let rec go lo hi =
    if hi - lo < 16 then insertion lo hi
    else begin
      let mid = lo + ((hi - lo) / 2) in
      (* Median of three into position [mid]. *)
      if cmp a.(lo) a.(mid) > 0 then swap lo mid;
      if cmp a.(lo) a.(hi) > 0 then swap lo hi;
      if cmp a.(mid) a.(hi) > 0 then swap mid hi;
      let pivot = a.(mid) in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while cmp a.(!i) pivot < 0 do incr i done;
        while cmp a.(!j) pivot > 0 do decr j done;
        if !i <= !j then begin
          swap !i !j;
          incr i;
          decr j
        end
      done;
      if lo < !j then go lo !j;
      if !i < hi then go !i hi
    end
  in
  if Array.length a > 1 then go 0 (Array.length a - 1)

(** [mergesort cmp a] sorts [a] stably (bottom-up merge with a scratch
    buffer). *)
let mergesort cmp a =
  let n = Array.length a in
  if n > 1 then begin
    let scratch = Array.copy a in
    let merge src dst lo mid hi =
      let i = ref lo and j = ref mid in
      for k = lo to hi - 1 do
        if !i < mid && (!j >= hi || cmp src.(!i) src.(!j) <= 0) then begin
          dst.(k) <- src.(!i);
          incr i
        end
        else begin
          dst.(k) <- src.(!j);
          incr j
        end
      done
    in
    let width = ref 1 in
    let src = ref a and dst = ref scratch in
    while !width < n do
      let lo = ref 0 in
      while !lo < n do
        let mid = min n (!lo + !width) in
        let hi = min n (!lo + (2 * !width)) in
        merge !src !dst !lo mid hi;
        lo := hi
      done;
      let t = !src in
      src := !dst;
      dst := t;
      width := !width * 2
    done;
    if !src != a then Array.blit !src 0 a 0 n
  end

(** [radix_sort_ints a] sorts an int array ascending with LSD radix over
    8-bit digits; negative values handled by flipping the sign bit. *)
let radix_sort_ints a =
  let n = Array.length a in
  if n > 1 then begin
    (* Bias so the natural unsigned digit order matches signed order. *)
    let bias = min_int in
    let src = Array.map (fun x -> x lxor bias) a in
    let dst = Array.make n 0 in
    let counts = Array.make 256 0 in
    let src = ref src and dst = ref dst in
    let digits = (Sys.int_size + 7) / 8 in
    for pass = 0 to digits - 1 do
      Array.fill counts 0 256 0;
      let shift = pass * 8 in
      for i = 0 to n - 1 do
        let d = (!src.(i) lsr shift) land 0xff in
        counts.(d) <- counts.(d) + 1
      done;
      if counts.((!src.(0) lsr shift) land 0xff) <> n then begin
        (* Prefix sums then stable scatter. *)
        let acc = ref 0 in
        for d = 0 to 255 do
          let c = counts.(d) in
          counts.(d) <- !acc;
          acc := !acc + c
        done;
        for i = 0 to n - 1 do
          let d = (!src.(i) lsr shift) land 0xff in
          !dst.(counts.(d)) <- !src.(i);
          counts.(d) <- counts.(d) + 1
        done;
        let t = !src in
        src := !dst;
        dst := t
      end
    done;
    for i = 0 to n - 1 do
      a.(i) <- !src.(i) lxor bias
    done
  end

type choice = Quick | Merge | Radix

let choice_name = function Quick -> "quicksort" | Merge -> "mergesort" | Radix -> "radix"

(** [pick ~n ~int_keys ~need_stable] chooses a sort algorithm: radix for
    large int-keyed inputs, mergesort when stability is required,
    quicksort otherwise. *)
let pick ~n ~int_keys ~need_stable =
  if int_keys && n >= 1 lsl 14 then Radix
  else if need_stable then Merge
  else Quick

(* --- Row sorting for the engines -------------------------------------- *)

module Value = Quill_storage.Value

(** [row_compare keys a b] compares two rows on [(col, dir)] keys with
    NULLs first on ASC (matching {!Value.compare}). *)
let row_compare keys (a : Value.t array) (b : Value.t array) =
  let rec go = function
    | [] -> 0
    | (col, dir) :: rest ->
        let c = Value.compare a.(col) b.(col) in
        if c <> 0 then
          match dir with Quill_plan.Lplan.Asc -> c | Quill_plan.Lplan.Desc -> -c
        else go rest
  in
  go keys

(** [sort_rows keys rows] sorts a row array stably on [keys], choosing the
    implementation by key shape: single ASC int/date key uses radix via a
    (key, index) encode, otherwise stable mergesort. *)
let sort_rows keys (rows : Value.t array array) =
  let n = Array.length rows in
  match keys with
  | [ (col, Quill_plan.Lplan.Asc) ]
    when n >= 1 lsl 14
         && Array.for_all
              (fun r -> match r.(col) with Value.Int _ | Value.Date _ -> true | _ -> false)
              rows ->
      (* Pack (key, row index) into one int when keys fit 48 bits: radix
         sorts the pairs and the index keeps it stable. *)
      let fits =
        Array.for_all
          (fun r ->
            match r.(col) with
            | Value.Int k | Value.Date k -> abs k < 1 lsl 40
            | _ -> false)
          rows
        && n < 1 lsl 22
      in
      if not fits then mergesort (row_compare keys) rows
      else begin
        let packed =
          Array.mapi
            (fun i r ->
              let k = match r.(col) with Value.Int k | Value.Date k -> k | _ -> 0 in
              (k lsl 22) lor i)
            rows
        in
        radix_sort_ints packed;
        let orig = Array.copy rows in
        Array.iteri (fun i p -> rows.(i) <- orig.(p land ((1 lsl 22) - 1))) packed
      end
  | _ -> mergesort (row_compare keys) rows
