(* Window function evaluation, shared by all engines.

   Rows are materialized; for each spec the row indices are sorted stably
   by (partition keys, order keys), partitions are walked, and the result
   is written back at the original row positions — window functions do not
   reorder output.

   Frame semantics: aggregates over a window with no ORDER BY cover the
   whole partition; with an ORDER BY they are running aggregates inclusive
   of peer rows (rows equal on the order keys), i.e. the SQL default
   [RANGE UNBOUNDED PRECEDING .. CURRENT ROW].  LAG/LEAD offset over the
   partition's order, NULL beyond its edges. *)

module Value = Quill_storage.Value
module Lplan = Quill_plan.Lplan

type spec = {
  kind : Lplan.win_kind;
  arg : (Value.t array -> Value.t) option;
  partition : (Value.t array -> Value.t) list;
  order : ((Value.t array -> Value.t) * Lplan.dir) list;
  out_dtype : Value.dtype;
}

type input = Value.t array array

let agg_spec_of kind arg out_dtype =
  { Agg_algos.kind;
    arg;
    distinct = false;
    out_dtype }

(* Evaluate one spec over all rows; returns the result column aligned with
   the original row order. *)
let eval_spec (spec : spec) (rows : input) : Value.t array =
  let n = Array.length rows in
  let out = Array.make n Value.Null in
  if n = 0 then out
  else begin
    let pkeys = Array.map (fun row -> List.map (fun f -> f row) spec.partition) rows in
    let okeys =
      Array.map (fun row -> List.map (fun (f, _) -> f row) spec.order) rows
    in
    let cmp_order a b =
      let rec go vs1 vs2 dirs =
        match (vs1, vs2, dirs) with
        | [], [], [] -> 0
        | v1 :: r1, v2 :: r2, (_, d) :: rd ->
            let c = Value.compare v1 v2 in
            if c <> 0 then (match d with Lplan.Asc -> c | Lplan.Desc -> -c)
            else go r1 r2 rd
        | _ -> assert false
      in
      go okeys.(a) okeys.(b) spec.order
    in
    let idx = Array.init n Fun.id in
    (* Stable sort by (partition, order); partition comparison is
       direction-free. *)
    Sort_algos.mergesort
      (fun a b ->
        let pc =
          let rec go l1 l2 =
            match (l1, l2) with
            | [], [] -> 0
            | v1 :: r1, v2 :: r2 ->
                let c = Value.compare v1 v2 in
                if c <> 0 then c else go r1 r2
            | _ -> assert false
          in
          go pkeys.(a) pkeys.(b)
        in
        if pc <> 0 then pc else cmp_order a b)
      idx;
    (* Walk partitions (runs of equal pkeys in the sorted order). *)
    let i = ref 0 in
    while !i < n do
      let start = !i in
      let stop = ref (start + 1) in
      while !stop < n && pkeys.(idx.(!stop)) = pkeys.(idx.(start)) do
        incr stop
      done;
      let stop = !stop in
      let plen = stop - start in
      (match spec.kind with
      | Lplan.W_row_number ->
          for k = 0 to plen - 1 do
            out.(idx.(start + k)) <- Value.Int (k + 1)
          done
      | Lplan.W_rank | Lplan.W_dense_rank ->
          let dense = spec.kind = Lplan.W_dense_rank in
          let rank = ref 1 and drank = ref 1 in
          for k = 0 to plen - 1 do
            if k > 0 && cmp_order idx.(start + k) idx.(start + k - 1) <> 0 then begin
              rank := k + 1;
              incr drank
            end;
            out.(idx.(start + k)) <- Value.Int (if dense then !drank else !rank)
          done
      | Lplan.W_lag off | Lplan.W_lead off ->
          let signed = match spec.kind with Lplan.W_lag _ -> -off | _ -> off in
          let arg = Option.get spec.arg in
          for k = 0 to plen - 1 do
            let src = k + signed in
            if src >= 0 && src < plen then
              out.(idx.(start + k)) <- arg rows.(idx.(start + src))
          done
      | Lplan.W_agg kind ->
          let aspec = agg_spec_of kind spec.arg spec.out_dtype in
          if spec.order = [] then begin
            (* Whole-partition aggregate, replicated. *)
            let st = Agg_algos.new_state aspec in
            for k = 0 to plen - 1 do
              Agg_algos.feed aspec st rows.(idx.(start + k))
            done;
            let v = Agg_algos.finish aspec st in
            for k = 0 to plen - 1 do
              out.(idx.(start + k)) <- v
            done
          end
          else begin
            (* Running aggregate, inclusive of peer rows. *)
            let st = Agg_algos.new_state aspec in
            let k = ref 0 in
            while !k < plen do
              (* Extend over the current peer group. *)
              let peer_end = ref (!k + 1) in
              while
                !peer_end < plen
                && cmp_order idx.(start + !peer_end) idx.(start + !k) = 0
              do
                incr peer_end
              done;
              for j = !k to !peer_end - 1 do
                Agg_algos.feed aspec st rows.(idx.(start + j))
              done;
              let v = Agg_algos.finish aspec st in
              for j = !k to !peer_end - 1 do
                out.(idx.(start + j)) <- v
              done;
              k := !peer_end
            done
          end);
      i := stop
    done;
    out
  end

(** [run ~specs rows] appends one evaluated column per spec to every row,
    preserving the input row order. *)
let run ~(specs : spec list) (rows : input) : input =
  let cols = List.map (fun s -> eval_spec s rows) specs in
  Array.mapi
    (fun i row ->
      Array.append row (Array.of_list (List.map (fun c -> c.(i)) cols)))
    rows
