lib/optimizer/card.ml: Array Float Hashtbl List Option Quill_plan Quill_stats Quill_storage
