lib/optimizer/cost.ml: Float
