lib/optimizer/join_order.ml: Array Card Float Fun Hashtbl List Quill_plan Quill_stats Quill_storage
