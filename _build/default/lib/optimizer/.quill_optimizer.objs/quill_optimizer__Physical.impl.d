lib/optimizer/physical.ml: Buffer List Printf Quill_plan Quill_storage String
