lib/optimizer/picker.ml: Array Card Cost Float Fun Int Join_order List Physical Quill_plan Quill_stats Quill_storage Rewrite Set
