lib/optimizer/rewrite.ml: Array Fun List Option Quill_plan Quill_storage
