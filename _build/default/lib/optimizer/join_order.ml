(* Join-order selection.

   A maximal region of inner joins is flattened into (relations,
   conjuncts).  Up to [dp_limit] relations we run DPsize over connected
   subsets, minimizing cumulative intermediate cardinality (the classic
   C_out objective); beyond that, a greedy smallest-result heuristic takes
   over.  The output tree gets a projection restoring the original column
   order, so surrounding expressions keep their column indices. *)

module Schema = Quill_storage.Schema
module Bexpr = Quill_plan.Bexpr
module Lplan = Quill_plan.Lplan
module Table_stats = Quill_stats.Table_stats

let dp_limit = 12

type rel = { plan : Lplan.t; arity : int; card : Card.t }

(* A flattened conjunct: expression over the global column numbering plus
   the set of relations (bitmask) it touches. *)
type conj = { expr : Bexpr.t; rels : int }

(* An in-progress join: the plan, its leaf order, row estimate and
   accumulated C_out cost. *)
type entry = { eplan : Lplan.t; leaves : int list; rows : float; cost : float }

let rec flatten acc_rels acc_conjs offset p =
  match p with
  | Lplan.Join { kind = Lplan.Inner; cond; left; right } ->
      let start = offset in
      let rels, conjs, offset = flatten acc_rels acc_conjs offset left in
      let rels, conjs, offset = flatten rels conjs offset right in
      let conjs =
        match cond with
        | None -> conjs
        | Some c ->
            (* conds are relative to this Join's concat schema, which
               starts at [start] in the global numbering *)
            conjs @ List.map (fun e -> Bexpr.shift start e) (Bexpr.conjuncts c)
      in
      (rels, conjs, offset)
  | leaf ->
      let a = Schema.arity (Lplan.schema_of leaf) in
      (acc_rels @ [ (leaf, a) ], acc_conjs, offset + a)

(* Global column -> (relation id, offset inside the relation). *)
let locate rel_offsets col =
  let rec go i =
    if i + 1 < Array.length rel_offsets && rel_offsets.(i + 1) <= col then go (i + 1) else i
  in
  let r = go 0 in
  (r, col - rel_offsets.(r))

let popcount m =
  let rec go acc m = if m = 0 then acc else go (acc + 1) (m land (m - 1)) in
  go 0 m

(* Estimate the selectivity of one conjunct given global column stats. *)
let conj_selectivity global_stats rel_offsets c =
  match c.expr.Bexpr.node with
  | Bexpr.Cmp (Bexpr.Eq, a, b) -> (
      match (a.Bexpr.node, b.Bexpr.node) with
      | Bexpr.Col i, Bexpr.Col j ->
          let ri, _ = locate rel_offsets i and rj, _ = locate rel_offsets j in
          if ri <> rj then begin
            let ndv k =
              match global_stats.(k) with
              | Some s -> Float.max 1.0 s.Table_stats.ndv
              | None -> 20.0
            in
            1.0 /. Float.max (ndv i) (ndv j)
          end
          else 1.0 /. 3.0
      | _ -> 1.0 /. 3.0)
  | _ -> 1.0 /. 3.0

(** [reorder env p] rewrites every join region of [p] into a (near-)optimal
    join order. *)
let rec reorder env (p : Lplan.t) : Lplan.t =
  match p with
  | Lplan.Join { kind = Lplan.Inner; _ } -> reorder_region env p
  | Lplan.Join { kind = Lplan.Left_outer; cond; left; right } ->
      (* Outer joins are reorder barriers; optimize each side separately. *)
      Lplan.Join { kind = Lplan.Left_outer; cond; left = reorder env left; right = reorder env right }
  | Lplan.Scan _ | Lplan.One_row -> p
  | Lplan.Filter (e, input) -> Lplan.Filter (e, reorder env input)
  | Lplan.Project (items, input) -> Lplan.Project (items, reorder env input)
  | Lplan.Aggregate { keys; aggs; input } ->
      Lplan.Aggregate { keys; aggs; input = reorder env input }
  | Lplan.Window { specs; input } -> Lplan.Window { specs; input = reorder env input }
  | Lplan.Sort { keys; input } -> Lplan.Sort { keys; input = reorder env input }
  | Lplan.Distinct input -> Lplan.Distinct (reorder env input)
  | Lplan.Limit { n; offset; input } -> Lplan.Limit { n; offset; input = reorder env input }

and reorder_region env p =
  let raw_rels, raw_conjs, total_arity = flatten [] [] 0 p in
  let rels =
    Array.of_list
      (List.map
         (fun (leaf, a) ->
           let leaf = reorder env leaf in
           { plan = leaf; arity = a; card = Card.derive env leaf })
         raw_rels)
  in
  let n = Array.length rels in
  if n <= 1 then p
  else begin
    let rel_offsets = Array.make n 0 in
    for i = 1 to n - 1 do
      rel_offsets.(i) <- rel_offsets.(i - 1) + rels.(i - 1).arity
    done;
    let global_stats =
      Array.concat (List.map (fun r -> r.card.Card.cols) (Array.to_list rels))
    in
    let conjs =
      List.map
        (fun e ->
          let rset =
            List.fold_left
              (fun acc col ->
                let r, _ = locate rel_offsets col in
                acc lor (1 lsl r))
              0 (Bexpr.cols e)
          in
          { expr = e; rels = rset })
        raw_conjs
    in
    (* Conjuncts confined to one relation sink onto that relation. *)
    let local, multi = List.partition (fun c -> popcount c.rels <= 1) conjs in
    let rels =
      Array.mapi
        (fun i r ->
          let mine =
            List.filter_map
              (fun c ->
                if c.rels = 1 lsl i || c.rels = 0 then
                  Some (Bexpr.shift (-rel_offsets.(i)) c.expr)
                else None)
              local
          in
          match Bexpr.conjoin mine with
          | None -> r
          | Some pred ->
              let plan = Lplan.Filter (pred, r.plan) in
              { r with plan; card = Card.derive env plan })
        rels
    in
    (* Local column numbering of a joined entry, given its leaf order. *)
    let remap_to_leaves leaves expr =
      let pos = Hashtbl.create 8 in
      let off = ref 0 in
      List.iter
        (fun leaf ->
          Hashtbl.add pos leaf !off;
          off := !off + rels.(leaf).arity)
        leaves;
      Bexpr.remap
        (fun gcol ->
          let r, o = locate rel_offsets gcol in
          match Hashtbl.find_opt pos r with
          | Some base -> base + o
          | None -> invalid_arg "join_order: column not in subset")
        expr
    in
    let join_entries a b =
      let mask_of leaves = List.fold_left (fun m l -> m lor (1 lsl l)) 0 leaves in
      let ma = mask_of a.leaves and mb = mask_of b.leaves in
      let mask = ma lor mb in
      let applicable =
        List.filter
          (fun c -> c.rels land mask = c.rels && c.rels land ma <> c.rels && c.rels land mb <> c.rels)
          multi
      in
      let leaves = a.leaves @ b.leaves in
      let cond = Bexpr.conjoin (List.map (fun c -> remap_to_leaves leaves c.expr) applicable) in
      let sel =
        List.fold_left
          (fun acc c -> acc *. conj_selectivity global_stats rel_offsets c)
          1.0 applicable
      in
      let rows = Float.max 1.0 (a.rows *. b.rows *. sel) in
      {
        eplan = Lplan.Join { kind = Lplan.Inner; cond; left = a.eplan; right = b.eplan };
        leaves;
        rows;
        cost = a.cost +. b.cost +. rows;
      }
    in
    let connected ma mb =
      List.exists (fun c -> c.rels land ma <> 0 && c.rels land mb <> 0 && c.rels land (ma lor mb) = c.rels) multi
    in
    let base i =
      { eplan = rels.(i).plan; leaves = [ i ]; rows = rels.(i).card.Card.rows; cost = 0.0 }
    in
    let best =
      if n <= dp_limit then dp_order n base join_entries connected
      else greedy_order n base join_entries connected
    in
    (* Restore the original global column order and names. *)
    let out_pos = Hashtbl.create 8 in
    let off = ref 0 in
    List.iter
      (fun leaf ->
        Hashtbl.add out_pos leaf !off;
        off := !off + rels.(leaf).arity)
      best.leaves;
    let orig_schema = Array.of_list (List.concat_map (fun (r, _) ->
        Schema.columns (Lplan.schema_of r)) raw_rels) in
    ignore total_arity;
    let items =
      List.init (Array.length orig_schema) (fun gcol ->
          let r, o = locate rel_offsets gcol in
          let local = Hashtbl.find out_pos r + o in
          let c = orig_schema.(gcol) in
          (Bexpr.col local c.Schema.dtype, c.Schema.name))
    in
    let restored = Lplan.Project (items, best.eplan) in
    (* Skip the projection when the DP kept the original order. *)
    if best.leaves = List.init n Fun.id then best.eplan else restored
  end

(* DPsize: enumerate plans for subsets in increasing size, combining
   disjoint connected pairs; cross products only when nothing connects. *)
and dp_order n base join_entries connected =
  let table : (int, entry) Hashtbl.t = Hashtbl.create 64 in
  for i = 0 to n - 1 do
    Hashtbl.replace table (1 lsl i) (base i)
  done;
  let full = (1 lsl n) - 1 in
  let masks = List.init (full + 1) Fun.id in
  let sorted_masks = List.sort (fun a b -> compare (popcount a) (popcount b)) masks in
  List.iter
    (fun mask ->
      if popcount mask >= 2 then begin
        let try_pair m1 m2 ~allow_cross =
          match (Hashtbl.find_opt table m1, Hashtbl.find_opt table m2) with
          | Some e1, Some e2 when allow_cross || connected m1 m2 ->
              let e = join_entries e1 e2 in
              (match Hashtbl.find_opt table mask with
              | Some old when old.cost <= e.cost -> ()
              | _ -> Hashtbl.replace table mask e)
          | _ -> ()
        in
        (* Enumerate proper subsets of [mask]. *)
        let sub = ref ((mask - 1) land mask) in
        while !sub > 0 do
          let other = mask land lnot !sub in
          if other <> 0 && !sub > other then try_pair !sub other ~allow_cross:false;
          sub := (!sub - 1) land mask
        done;
        if not (Hashtbl.mem table mask) then begin
          let sub = ref ((mask - 1) land mask) in
          while !sub > 0 do
            let other = mask land lnot !sub in
            if other <> 0 && !sub > other then try_pair !sub other ~allow_cross:true;
            sub := (!sub - 1) land mask
          done
        end
      end)
    sorted_masks;
  Hashtbl.find table full

(* Greedy: repeatedly merge the pair whose join yields the fewest rows. *)
and greedy_order n base join_entries connected =
  let items = ref (List.init n base) in
  let mask_of e = List.fold_left (fun m l -> m lor (1 lsl l)) 0 e.leaves in
  while List.length !items > 1 do
    let best = ref None in
    List.iteri
      (fun i a ->
        List.iteri
          (fun j b ->
            if i < j then begin
              let conn = connected (mask_of a) (mask_of b) in
              let e = join_entries a b in
              let better =
                match !best with
                | None -> true
                | Some (_, _, bconn, brows) ->
                    if conn <> bconn then conn
                    else e.rows < brows
              in
              if better then best := Some (i, j, conn, e.rows)
            end)
          !items)
      !items;
    match !best with
    | None -> assert false
    | Some (i, j, _, _) ->
        let a = List.nth !items i and b = List.nth !items j in
        let merged = join_entries a b in
        items :=
          merged :: List.filteri (fun k _ -> k <> i && k <> j) !items
  done;
  List.hd !items
