lib/plan/bexpr.ml: Array Float List Option Printf Quill_storage String
