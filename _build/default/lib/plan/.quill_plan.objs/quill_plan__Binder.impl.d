lib/plan/binder.ml: Array Ast Bexpr Hashtbl List Lplan Option Printf Quill_sql Quill_storage String Udf
