lib/plan/lplan.ml: Bexpr Buffer List Printf Quill_storage String
