lib/plan/udf.ml: Bexpr Buffer Float Hashtbl List Option Quill_storage String
