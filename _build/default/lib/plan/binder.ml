(* Name resolution and type checking: AST -> logical plan.

   The binder produces a canonical, unoptimized plan (syntactic join order,
   predicates as Filters); all re-arrangement is the optimizer's job.
   Aggregation follows the standard two-phase scheme: aggregate arguments
   bind against the input schema, while select items and HAVING bind
   against the aggregate's output, where only group keys and aggregate
   results are visible. *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema
module Catalog = Quill_storage.Catalog
open Quill_sql

exception Bind_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bind_error s)) fmt

type env = {
  catalog : Catalog.t;
  udfs : Udf.t;
  param_types : Value.dtype array;  (** dtype of [$1] is [param_types.(0)] *)
  subqueries : (Value.t list option ref * Lplan.t) list ref;
      (** uncorrelated subqueries discovered during binding, in evaluation
          order; the executor materializes each cell before running *)
}

(** [mk_env ~catalog ~udfs ~param_types ()] builds a binding environment
    with a fresh subquery accumulator. *)
let mk_env ~catalog ~udfs ~param_types () =
  { catalog; udfs; param_types; subqueries = ref [] }

(* Forward reference: subquery expressions bind nested SELECTs, which are
   defined further down in this module. *)
let bind_select_fwd : (env -> Ast.select -> Lplan.t) ref =
  ref (fun _ _ -> assert false)

let is_numeric = function Value.Int_t | Value.Float_t -> true | _ -> false

(* Re-type a NULL literal to whatever the context wants. *)
let adapt_null e dtype =
  match e.Bexpr.node with Bexpr.Lit Value.Null -> { e with Bexpr.dtype } | _ -> e

(* Make two operands comparable; returns them (possibly retyped NULLs) plus
   the unified dtype. *)
let harmonize what a b =
  let a = adapt_null a b.Bexpr.dtype and b' = adapt_null b a.Bexpr.dtype in
  let b = b' in
  let ta = a.Bexpr.dtype and tb = b.Bexpr.dtype in
  if ta = tb then (a, b, ta)
  else if is_numeric ta && is_numeric tb then (a, b, Value.Float_t)
  else
    fail "%s: incompatible types %s and %s" what (Value.dtype_name ta) (Value.dtype_name tb)

let require_bool what e =
  if e.Bexpr.dtype <> Value.Bool_t then
    fail "%s must be boolean, got %s" what (Value.dtype_name e.Bexpr.dtype)

(* [special] is consulted on every node before structural binding; it lets
   aggregate-output binding substitute group keys and aggregate results. *)
let rec bind_gen ~special env schema ast =
  match special ast with
  | Some e -> e
  | None -> (
      let bind = bind_gen ~special env schema in
      match ast with
      | Ast.Lit v ->
          let dtype =
            match v with Value.Null -> Value.Int_t (* adapted by context *) | v -> Value.type_of v
          in
          Bexpr.lit v dtype
      | Ast.Col name -> (
          match Schema.find schema name with
          | Ok i -> Bexpr.col i (Schema.column schema i).Schema.dtype
          | Error e -> fail "%s" e)
      | Ast.Param i ->
          if i < 1 || i > Array.length env.param_types then
            fail "parameter $%d out of range (%d supplied)" i (Array.length env.param_types);
          { Bexpr.node = Bexpr.Param (i - 1); dtype = env.param_types.(i - 1) }
      | Ast.Unary (Ast.Neg, a) ->
          let a = bind a in
          if not (is_numeric a.Bexpr.dtype) then
            fail "cannot negate %s" (Value.dtype_name a.Bexpr.dtype);
          { Bexpr.node = Bexpr.Neg a; dtype = a.Bexpr.dtype }
      | Ast.Unary (Ast.Not, a) ->
          let a = bind a in
          require_bool "NOT operand" a;
          { Bexpr.node = Bexpr.Not a; dtype = Value.Bool_t }
      | Ast.Binary (op, a, b) -> (
          let a = bind a and b = bind b in
          match op with
          | Ast.And | Ast.Or ->
              require_bool "AND/OR operand" a;
              require_bool "AND/OR operand" b;
              let node =
                if op = Ast.And then Bexpr.And (a, b) else Bexpr.Or (a, b)
              in
              { Bexpr.node; dtype = Value.Bool_t }
          | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
              let a, b, _ = harmonize "comparison" a b in
              let cmp =
                match op with
                | Ast.Eq -> Bexpr.Eq | Ast.Neq -> Bexpr.Neq | Ast.Lt -> Bexpr.Lt
                | Ast.Le -> Bexpr.Le | Ast.Gt -> Bexpr.Gt | Ast.Ge -> Bexpr.Ge
                | _ -> assert false
              in
              { Bexpr.node = Bexpr.Cmp (cmp, a, b); dtype = Value.Bool_t }
          | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
              let arith =
                match op with
                | Ast.Add -> Bexpr.Add | Ast.Sub -> Bexpr.Sub | Ast.Mul -> Bexpr.Mul
                | Ast.Div -> Bexpr.Div | Ast.Mod -> Bexpr.Mod
                | _ -> assert false
              in
              let ta = a.Bexpr.dtype and tb = b.Bexpr.dtype in
              let dtype =
                match (arith, ta, tb) with
                | _, Value.Int_t, Value.Int_t -> ta
                | Bexpr.Mod, _, _ -> fail "%% requires integers"
                | (Bexpr.Add | Bexpr.Sub), Value.Date_t, Value.Int_t -> Value.Date_t
                | Bexpr.Add, Value.Int_t, Value.Date_t -> Value.Date_t
                | Bexpr.Sub, Value.Date_t, Value.Date_t -> Value.Int_t
                | _ when is_numeric ta && is_numeric tb -> Value.Float_t
                | _ ->
                    (* Allow NULL literals to adapt to the other side. *)
                    let a' = adapt_null a tb and b' = adapt_null b ta in
                    if is_numeric a'.Bexpr.dtype && is_numeric b'.Bexpr.dtype then
                      if a'.Bexpr.dtype = Value.Int_t && b'.Bexpr.dtype = Value.Int_t then
                        Value.Int_t
                      else Value.Float_t
                    else
                      fail "arithmetic on %s and %s" (Value.dtype_name ta)
                        (Value.dtype_name tb)
              in
              let a = adapt_null a (if tb = Value.Date_t then Value.Int_t else tb)
              and b = adapt_null b (if ta = Value.Date_t then Value.Int_t else ta) in
              { Bexpr.node = Bexpr.Arith (arith, a, b); dtype })
      | Ast.Like (a, pattern) ->
          let a = bind a in
          if a.Bexpr.dtype <> Value.Str_t then
            fail "LIKE requires a string, got %s" (Value.dtype_name a.Bexpr.dtype);
          { Bexpr.node = Bexpr.Like (a, pattern); dtype = Value.Bool_t }
      | Ast.In_list (a, items) ->
          let a = bind a in
          let items =
            List.map
              (fun it ->
                let it = bind it in
                let _, it, _ = harmonize "IN list" a it in
                it)
              items
          in
          { Bexpr.node = Bexpr.In_list (a, items); dtype = Value.Bool_t }
      | Ast.Between (a, lo, hi) ->
          (* Desugar to (a >= lo AND a <= hi). *)
          bind (Ast.Binary (Ast.And, Ast.Binary (Ast.Ge, a, lo), Ast.Binary (Ast.Le, a, hi)))
      | Ast.Case (whens, els) ->
          let whens =
            List.map
              (fun (c, v) ->
                let c = bind c in
                require_bool "CASE condition" c;
                (c, bind v))
              whens
          in
          let els = Option.map bind els in
          let result_dtype =
            let all = List.map snd whens @ Option.to_list els in
            let non_null =
              List.filter (fun e -> e.Bexpr.node <> Bexpr.Lit Value.Null) all
            in
            match non_null with
            | [] -> Value.Int_t
            | first :: rest ->
                List.fold_left
                  (fun acc e ->
                    let _, _, t = harmonize "CASE branches" { first with Bexpr.dtype = acc } e in
                    t)
                  first.Bexpr.dtype rest
          in
          let whens = List.map (fun (c, v) -> (c, adapt_null v result_dtype)) whens in
          let els = Option.map (fun e -> adapt_null e result_dtype) els in
          { Bexpr.node = Bexpr.Case (whens, els); dtype = result_dtype }
      | Ast.Cast (a, t) -> { Bexpr.node = Bexpr.Cast (bind a, t); dtype = t }
      | Ast.Is_null { negated; arg } ->
          { Bexpr.node = Bexpr.Is_null (negated, bind arg); dtype = Value.Bool_t }
      | Ast.Call ("coalesce", args) when args <> [] ->
          (* COALESCE(a, b, ...): first non-NULL argument. *)
          let whens =
            List.map (fun a -> (Ast.Is_null { negated = true; arg = a }, a)) args
          in
          bind (Ast.Case (whens, None))
      | Ast.Call ("nullif", [ a; b ]) ->
          (* NULLIF(a, b): NULL when a = b, else a. *)
          bind
            (Ast.Case
               ( [ (Ast.Binary (Ast.Eq, a, b), Ast.Lit Value.Null) ],
                 Some a ))
      | Ast.Call (name, args) -> (
          let args = List.map bind args in
          let arg_types = List.map (fun a -> a.Bexpr.dtype) args in
          match Udf.lookup env.udfs name arg_types with
          | None ->
              fail "no function %s(%s)" name
                (String.concat ", " (List.map Value.dtype_name arg_types))
          | Some def ->
              (* Widen INT args where the signature wants FLOAT. *)
              let args =
                List.map2
                  (fun a want ->
                    if a.Bexpr.dtype = Value.Int_t && want = Value.Float_t then
                      { Bexpr.node = Bexpr.Cast (a, Value.Float_t); dtype = Value.Float_t }
                    else a)
                  args def.Udf.arg_types
              in
              { Bexpr.node = Bexpr.Call { name; fn = def.Udf.fn; args };
                dtype = def.Udf.ret_type })
      | Ast.Agg _ -> fail "aggregate function not allowed here"
      | Ast.Winfun _ -> fail "window functions are only allowed in the select list"
      | Ast.Scalar_sub sel ->
          let plan = !bind_select_fwd env sel in
          let sub_schema = Lplan.schema_of plan in
          if Schema.arity sub_schema <> 1 then
            fail "scalar subquery must return exactly one column";
          let cell = ref None in
          env.subqueries := (cell, plan) :: !(env.subqueries);
          { Bexpr.node = Bexpr.Subquery { kind = Bexpr.Sub_scalar; cell };
            dtype = (Schema.column sub_schema 0).Schema.dtype }
      | Ast.Exists sel ->
          (* One row suffices to decide existence. *)
          let plan =
            Lplan.Limit { n = Some 1; offset = 0; input = !bind_select_fwd env sel }
          in
          let cell = ref None in
          env.subqueries := (cell, plan) :: !(env.subqueries);
          { Bexpr.node = Bexpr.Subquery { kind = Bexpr.Sub_exists; cell };
            dtype = Value.Bool_t }
      | Ast.In_select (subject, sel) ->
          let subject = bind subject in
          let plan = !bind_select_fwd env sel in
          let sub_schema = Lplan.schema_of plan in
          if Schema.arity sub_schema <> 1 then
            fail "IN subquery must return exactly one column";
          let sub_dtype = (Schema.column sub_schema 0).Schema.dtype in
          (* Type-check subject vs. subquery column (a Col placeholder so
             NULL-literal adaptation does not mask mismatches). *)
          let _ =
            harmonize "IN subquery" subject { Bexpr.node = Bexpr.Col 0; dtype = sub_dtype }
          in
          let cell = ref None in
          env.subqueries := (cell, plan) :: !(env.subqueries);
          { Bexpr.node = Bexpr.Subquery { kind = Bexpr.Sub_in subject; cell };
            dtype = Value.Bool_t })

(** [bind_scalar env schema ast] binds a scalar expression (aggregates are
    rejected). *)
let bind_scalar env schema ast =
  bind_gen ~special:(fun _ -> None) env schema ast

(* --- SELECT binding --------------------------------------------------- *)

let rec collect_aggs acc = function
  | Ast.Agg _ as a -> if List.exists (fun x -> x = a) acc then acc else acc @ [ a ]
  | Ast.Lit _ | Ast.Col _ | Ast.Param _ -> acc
  | Ast.Unary (_, e) | Ast.Cast (e, _) | Ast.Is_null { arg = e; _ } | Ast.Like (e, _) ->
      collect_aggs acc e
  | Ast.Binary (_, a, b) -> collect_aggs (collect_aggs acc a) b
  | Ast.In_list (e, es) -> List.fold_left collect_aggs (collect_aggs acc e) es
  | Ast.Between (a, b, c) -> collect_aggs (collect_aggs (collect_aggs acc a) b) c
  | Ast.Case (whens, els) ->
      let acc =
        List.fold_left (fun acc (c, v) -> collect_aggs (collect_aggs acc c) v) acc whens
      in
      (match els with None -> acc | Some e -> collect_aggs acc e)
  | Ast.Call (_, args) -> List.fold_left collect_aggs acc args
  (* Subqueries are separate aggregation scopes. *)
  | Ast.Scalar_sub _ | Ast.Exists _ -> acc
  | Ast.In_select (e, _) -> collect_aggs acc e
  | Ast.Winfun { arg; partition; order; _ } ->
      let acc = match arg with Some e -> collect_aggs acc e | None -> acc in
      let acc = List.fold_left collect_aggs acc partition in
      List.fold_left (fun acc (e, _) -> collect_aggs acc e) acc order

(* Collect distinct window-function subexpressions in discovery order. *)
let rec collect_windows acc = function
  | Ast.Winfun _ as w -> if List.exists (fun x -> x = w) acc then acc else acc @ [ w ]
  | Ast.Lit _ | Ast.Col _ | Ast.Param _ -> acc
  | Ast.Unary (_, e) | Ast.Cast (e, _) | Ast.Is_null { arg = e; _ } | Ast.Like (e, _) ->
      collect_windows acc e
  | Ast.Binary (_, a, b) -> collect_windows (collect_windows acc a) b
  | Ast.In_list (e, es) -> List.fold_left collect_windows (collect_windows acc e) es
  | Ast.Between (a, b, c) ->
      collect_windows (collect_windows (collect_windows acc a) b) c
  | Ast.Case (whens, els) ->
      let acc =
        List.fold_left (fun acc (c, v) -> collect_windows (collect_windows acc c) v) acc whens
      in
      (match els with None -> acc | Some e -> collect_windows acc e)
  | Ast.Call (_, args) -> List.fold_left collect_windows acc args
  | Ast.Agg { arg; _ } -> (
      match arg with Some e -> collect_windows acc e | None -> acc)
  | Ast.Scalar_sub _ | Ast.Exists _ -> acc
  | Ast.In_select (e, _) -> collect_windows acc e

let agg_kind_of = function
  | Ast.Count -> Lplan.Count | Ast.Sum -> Lplan.Sum | Ast.Avg -> Lplan.Avg
  | Ast.Min -> Lplan.Min | Ast.Max -> Lplan.Max

let default_item_name idx = function
  | Ast.Col name -> Schema.base_name name
  | Ast.Agg { kind; _ } -> Ast.agg_name kind |> String.lowercase_ascii
  | Ast.Call (name, _) -> name
  | Ast.Winfun { kind = Ast.W_row_number; _ } -> "row_number"
  | Ast.Winfun { kind = Ast.W_rank; _ } -> "rank"
  | Ast.Winfun { kind = Ast.W_dense_rank; _ } -> "dense_rank"
  | Ast.Winfun { kind = Ast.W_lag _; _ } -> "lag"
  | Ast.Winfun { kind = Ast.W_lead _; _ } -> "lead"
  | Ast.Winfun { kind = Ast.W_agg k; _ } -> Ast.agg_name k |> String.lowercase_ascii
  | _ -> Printf.sprintf "col%d" idx

(* Make output names unique by suffixing duplicates with _2, _3, ... *)
let uniquify names =
  let seen = Hashtbl.create 8 in
  List.map
    (fun n ->
      match Hashtbl.find_opt seen n with
      | None ->
          Hashtbl.add seen n 1;
          n
      | Some k ->
          Hashtbl.replace seen n (k + 1);
          Printf.sprintf "%s_%d" n (k + 1))
    names

let rec bind_from env = function
  | Ast.Table_ref (name, alias) ->
      let table =
        match Catalog.find env.catalog name with
        | Some t -> t
        | None -> fail "no table %S" name
      in
      let qual = Option.value ~default:name alias in
      Lplan.Scan { table = name; schema = Schema.qualify qual (Quill_storage.Table.schema table) }
  | Ast.Sub (sel, alias) ->
      let plan = bind_select env sel in
      let schema = Lplan.schema_of plan in
      (* Re-expose the subquery's columns under the alias qualifier. *)
      let items =
        List.mapi
          (fun i c ->
            (Bexpr.col i c.Schema.dtype, alias ^ "." ^ Schema.base_name c.Schema.name))
          (Schema.columns schema)
      in
      Lplan.Project (items, plan)
  | Ast.Join (kind, l, r, cond) ->
      let left = bind_from env l and right = bind_from env r in
      let schema = Schema.concat (Lplan.schema_of left) (Lplan.schema_of right) in
      let cond =
        Option.map
          (fun c ->
            if Ast.contains_agg c then fail "aggregates are not allowed in JOIN conditions";
            let e = bind_scalar env schema c in
            require_bool "JOIN condition" e;
            e)
          cond
      in
      let kind = match kind with Ast.Inner -> Lplan.Inner | Ast.Left_outer -> Lplan.Left_outer in
      Lplan.Join { kind; cond; left; right }

and bind_select env (sel : Ast.select) =
  let from_plan =
    match sel.Ast.from with None -> Lplan.One_row | Some f -> bind_from env f
  in
  let in_schema = Lplan.schema_of from_plan in
  let filtered =
    match sel.Ast.where with
    | None -> from_plan
    | Some w ->
        if Ast.contains_agg w then fail "aggregates are not allowed in WHERE";
        let e = bind_scalar env in_schema w in
        require_bool "WHERE" e;
        Lplan.Filter (e, from_plan)
  in
  let items_have_agg =
    List.exists (function Ast.Star -> false | Ast.Item (e, _) -> Ast.contains_agg e) sel.Ast.items
  in
  let having_has_agg =
    match sel.Ast.having with Some h -> Ast.contains_agg h | None -> false
  in
  let aggregated = sel.Ast.group_by <> [] || items_have_agg || having_has_agg in
  if sel.Ast.having <> None && not aggregated then
    fail "HAVING requires GROUP BY or aggregates";

  (* Expand star items against the FROM schema. *)
  let expand_star () =
    List.concat_map
      (function
        | Ast.Star -> List.map (fun c -> (Ast.Col c.Schema.name, None)) (Schema.columns in_schema)
        | Ast.Item (e, alias) -> [ (e, alias) ])
      sel.Ast.items
  in
  let raw_items = expand_star () in
  if raw_items = [] then fail "empty select list";

  (* [pre] is the plan below the projection; [bind_item] binds expressions
     against its schema with the right visibility rules. *)
  let pre, base_special, base_schema =
    if not aggregated then (filtered, (fun _ -> None), in_schema)
    else begin
      (* Deduplicate group keys structurally; name Col keys by source name. *)
      let key_asts =
        List.fold_left
          (fun acc k -> if List.mem k acc then acc else acc @ [ k ])
          [] sel.Ast.group_by
      in
      let keys =
        List.mapi
          (fun i k ->
            let e = bind_scalar env in_schema k in
            let name =
              match k with Ast.Col n -> n | _ -> Printf.sprintf "$key%d" i
            in
            (e, name))
          key_asts
      in
      let agg_asts =
        let from_items =
          List.fold_left (fun acc (e, _) -> collect_aggs acc e) [] raw_items
        in
        match sel.Ast.having with
        | None -> from_items
        | Some h -> collect_aggs from_items h
      in
      let aggs =
        List.mapi
          (fun i ast ->
            match ast with
            | Ast.Agg { kind; arg; distinct } ->
                let arg = Option.map (bind_scalar env in_schema) arg in
                let out_dtype =
                  match (agg_kind_of kind, arg) with
                  | Lplan.Count, _ -> Value.Int_t
                  | Lplan.Avg, Some a ->
                      if not (is_numeric a.Bexpr.dtype) then
                        fail "AVG requires a numeric argument";
                      Value.Float_t
                  | (Lplan.Sum | Lplan.Avg), None -> assert false
                  | Lplan.Sum, Some a ->
                      if not (is_numeric a.Bexpr.dtype) then
                        fail "SUM requires a numeric argument";
                      a.Bexpr.dtype
                  | (Lplan.Min | Lplan.Max), Some a -> a.Bexpr.dtype
                  | (Lplan.Min | Lplan.Max), None -> assert false
                in
                ({ Lplan.kind = agg_kind_of kind; arg; distinct; out_dtype },
                 Printf.sprintf "$agg%d" i)
            | _ -> assert false)
          agg_asts
      in
      let agg_plan = Lplan.Aggregate { keys; aggs; input = filtered } in
      let mid_schema = Lplan.schema_of agg_plan in
      let nkeys = List.length keys in
      let special ast =
        (* Whole-expression match against a group key... *)
        match
          List.find_index (fun k -> k = ast)
            (List.filteri (fun i _ -> i < nkeys) key_asts)
        with
        | Some i -> Some (Bexpr.col i (Schema.column mid_schema i).Schema.dtype)
        | None -> (
            (* ...or against a collected aggregate. *)
            match ast with
            | Ast.Agg _ -> (
                match List.find_index (fun a -> a = ast) agg_asts with
                | Some i ->
                    Some (Bexpr.col (nkeys + i) (Schema.column mid_schema (nkeys + i)).Schema.dtype)
                | None -> None)
            | _ -> None)
      in
      let bind_item ast =
        try bind_gen ~special env mid_schema ast
        with Bind_error msg ->
          if String.length msg >= 7 && String.sub msg 0 7 = "unknown" then
            fail "%s: not in GROUP BY and not inside an aggregate" msg
          else raise (Bind_error msg)
      in
      let post_having =
        match sel.Ast.having with
        | None -> agg_plan
        | Some h ->
            if Ast.contains_window h then
              fail "window functions are not allowed in HAVING";
            let e = bind_item h in
            require_bool "HAVING" e;
            Lplan.Filter (e, agg_plan)
      in
      (post_having, special, mid_schema)
    end
  in

  (* Wrap bind_gen with the GROUP BY error message improvement. *)
  let mk_bind special schema ast =
    try bind_gen ~special env schema ast
    with Bind_error msg ->
      if aggregated && String.length msg >= 7 && String.sub msg 0 7 = "unknown" then
        fail "%s: not in GROUP BY and not inside an aggregate" msg
      else raise (Bind_error msg)
  in

  (* Window phase: window functions in the select list evaluate over the
     post-aggregation (post-HAVING) rows; each distinct Winfun expression
     becomes an appended column. *)
  let win_asts =
    List.fold_left (fun acc (e, _) -> collect_windows acc e) [] raw_items
  in
  let pre, special, out_base_schema =
    if win_asts = [] then (pre, base_special, base_schema)
    else begin
      let bind0 ast = mk_bind base_special base_schema ast in
      let specs =
        List.mapi
          (fun i ast ->
            match ast with
            | Ast.Winfun { kind; arg; partition; order } ->
                if
                  (match arg with Some a -> Ast.contains_window a | None -> false)
                  || List.exists Ast.contains_window partition
                  || List.exists (fun (e, _) -> Ast.contains_window e) order
                then fail "window functions cannot be nested";
                let warg = Option.map bind0 arg in
                let partition = List.map bind0 partition in
                let worder =
                  List.map
                    (fun (e, d) ->
                      (bind0 e, match d with Ast.Asc -> Lplan.Asc | Ast.Desc -> Lplan.Desc))
                    order
                in
                let wkind =
                  match kind with
                  | Ast.W_row_number -> Lplan.W_row_number
                  | Ast.W_rank -> Lplan.W_rank
                  | Ast.W_dense_rank -> Lplan.W_dense_rank
                  | Ast.W_lag k -> Lplan.W_lag k
                  | Ast.W_lead k -> Lplan.W_lead k
                  | Ast.W_agg k -> Lplan.W_agg (agg_kind_of k)
                in
                (match (kind, warg) with
                | (Ast.W_rank | Ast.W_dense_rank), _ when order = [] ->
                    fail "RANK requires an ORDER BY in its OVER clause"
                | (Ast.W_lag _ | Ast.W_lead _), _ when order = [] ->
                    fail "LAG/LEAD require an ORDER BY in their OVER clause"
                | _ -> ());
                let w_dtype =
                  match (wkind, warg) with
                  | (Lplan.W_row_number | Lplan.W_rank | Lplan.W_dense_rank), _ ->
                      Value.Int_t
                  | (Lplan.W_lag _ | Lplan.W_lead _), Some a -> a.Bexpr.dtype
                  | (Lplan.W_lag _ | Lplan.W_lead _), None -> assert false
                  | Lplan.W_agg Lplan.Count, _ -> Value.Int_t
                  | Lplan.W_agg Lplan.Avg, Some a ->
                      if not (is_numeric a.Bexpr.dtype) then
                        fail "AVG requires a numeric argument";
                      Value.Float_t
                  | Lplan.W_agg Lplan.Sum, Some a ->
                      if not (is_numeric a.Bexpr.dtype) then
                        fail "SUM requires a numeric argument";
                      a.Bexpr.dtype
                  | Lplan.W_agg (Lplan.Min | Lplan.Max), Some a -> a.Bexpr.dtype
                  | Lplan.W_agg _, None -> assert false
                in
                ({ Lplan.wkind; warg; partition; worder; w_dtype },
                 Printf.sprintf "$win%d" i)
            | _ -> assert false)
          win_asts
      in
      let wplan = Lplan.Window { specs; input = pre } in
      let base_arity = Schema.arity base_schema in
      let wschema = Lplan.schema_of wplan in
      let special ast =
        match List.find_index (fun w -> w = ast) win_asts with
        | Some i ->
            Some (Bexpr.col (base_arity + i) (Schema.column wschema (base_arity + i)).Schema.dtype)
        | None -> base_special ast
      in
      (wplan, special, wschema)
    end
  in
  let bind_item ast = mk_bind special out_base_schema ast in

  let bound_items = List.map (fun (e, alias) -> (bind_item e, e, alias)) raw_items in
  let out_names =
    uniquify
      (List.mapi
         (fun i (_, ast, alias) ->
           match alias with Some a -> a | None -> default_item_name i ast)
         bound_items)
  in
  let proj_items = List.map2 (fun (be, _, _) n -> (be, n)) bound_items out_names in

  (* ORDER BY: resolve to output positions; otherwise append hidden items. *)
  let hidden = ref [] in
  let order_keys =
    List.map
      (fun (e, dir) ->
        let d = match dir with Ast.Asc -> Lplan.Asc | Ast.Desc -> Lplan.Desc in
        match e with
        | Ast.Lit (Value.Int k) ->
            if k < 1 || k > List.length proj_items then
              fail "ORDER BY position %d out of range" k;
            (k - 1, d)
        | _ -> (
            (* Match an output alias or the item's own expression. *)
            let by_alias =
              match e with
              | Ast.Col n ->
                  List.find_index
                    (fun (_, ast, alias) ->
                      alias = Some n || ast = e
                      || match ast with
                         | Ast.Col n2 -> Schema.base_name n2 = n
                         | _ -> false)
                    bound_items
              | _ -> List.find_index (fun (_, ast, _) -> ast = e) bound_items
            in
            match by_alias with
            | Some i -> (i, d)
            | None ->
                if sel.Ast.distinct then
                  fail "ORDER BY expressions must appear in the select list with DISTINCT";
                let be = bind_item e in
                hidden := !hidden @ [ (be, Printf.sprintf "$sort%d" (List.length !hidden)) ];
                (List.length proj_items + List.length !hidden - 1, d)))
      sel.Ast.order_by
  in
  let plan = Lplan.Project (proj_items @ !hidden, pre) in
  let plan = if sel.Ast.distinct then Lplan.Distinct plan else plan in
  let plan =
    if order_keys = [] then plan else Lplan.Sort { keys = order_keys; input = plan }
  in
  let plan =
    if !hidden = [] then plan
    else
      Lplan.Project
        ( List.mapi
            (fun i (e, n) -> (Bexpr.col i e.Bexpr.dtype, n))
            proj_items,
          plan )
  in
  match (sel.Ast.limit, sel.Ast.offset) with
  | None, None -> plan
  | n, off -> Lplan.Limit { n; offset = Option.value ~default:0 off; input = plan }


(* Tie the forward reference for subquery binding. *)
let () = bind_select_fwd := bind_select
