(* Logical query plans.

   The binder emits a canonical plan: scans joined in syntactic order with
   all predicates in Filter nodes; the optimizer rewrites it.  Schemas are
   derived structurally with [schema_of].  Sort keys are column indices of
   the operator's input (the binder arranges projections so that sort keys
   are materialized columns). *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema

type dir = Asc | Desc

type join_kind = Inner | Left_outer

type agg_kind = Count | Sum | Avg | Min | Max

type win_kind =
  | W_row_number
  | W_rank
  | W_dense_rank
  | W_lag of int
  | W_lead of int
  | W_agg of agg_kind

type agg = {
  kind : agg_kind;
  arg : Bexpr.t option;  (** [None] only for COUNT star *)
  distinct : bool;
  out_dtype : Value.dtype;
}

type wspec = {
  wkind : win_kind;
  warg : Bexpr.t option;
  partition : Bexpr.t list;
  worder : (Bexpr.t * dir) list;
  w_dtype : Value.dtype;
}

type t =
  | Scan of { table : string; schema : Schema.t }
  | One_row  (** a single row with no columns; backs FROM-less SELECTs *)
  | Filter of Bexpr.t * t
  | Project of (Bexpr.t * string) list * t
  | Join of { kind : join_kind; cond : Bexpr.t option; left : t; right : t }
      (** [cond] is over the concatenated schema; for [Left_outer] it is
          the ON condition (match condition, not a filter) *)
  | Aggregate of {
      keys : (Bexpr.t * string) list;
      aggs : (agg * string) list;
      input : t;
    }
  | Window of { specs : (wspec * string) list; input : t }
      (** appends one column per spec to the input schema; row order is
          preserved (ORDER BY inside OVER orders frames, not output) *)
  | Sort of { keys : (int * dir) list; input : t }
  | Distinct of t
  | Limit of { n : int option; offset : int; input : t }

let agg_kind_name = function
  | Count -> "count" | Sum -> "sum" | Avg -> "avg" | Min -> "min" | Max -> "max"

(** [schema_of p] derives the output schema of plan [p]. *)
let rec schema_of = function
  | Scan { schema; _ } -> schema
  | One_row -> Schema.create []
  | Filter (_, input) | Distinct input -> schema_of input
  | Limit { input; _ } | Sort { input; _ } -> schema_of input
  | Project (items, _) ->
      Schema.create (List.map (fun (e, name) -> Schema.col name e.Bexpr.dtype) items)
  | Join { kind; left; right; _ } ->
      let right_schema = schema_of right in
      let right_schema =
        (* Outer-join padding makes every right column nullable. *)
        if kind = Left_outer then
          Schema.create
            (List.map (fun c -> { c with Schema.nullable = true }) (Schema.columns right_schema))
        else right_schema
      in
      Schema.concat (schema_of left) right_schema
  | Aggregate { keys; aggs; _ } ->
      Schema.create
        (List.map (fun (e, name) -> Schema.col name e.Bexpr.dtype) keys
        @ List.map (fun (a, name) -> Schema.col name a.out_dtype) aggs)
  | Window { specs; input } ->
      Schema.concat (schema_of input)
        (Schema.create (List.map (fun (w, name) -> Schema.col name w.w_dtype) specs))

let win_kind_name = function
  | W_row_number -> "row_number"
  | W_rank -> "rank"
  | W_dense_rank -> "dense_rank"
  | W_lag k -> Printf.sprintf "lag(%d)" k
  | W_lead k -> Printf.sprintf "lead(%d)" k
  | W_agg k -> agg_kind_name k

(** [wspec_to_string w] renders a window spec for EXPLAIN. *)
let wspec_to_string (w, name) =
  Printf.sprintf "%s=%s(%s) over [part %s order %s]" name (win_kind_name w.wkind)
    (match w.warg with None -> "" | Some e -> Bexpr.to_string e)
    (String.concat "," (List.map Bexpr.to_string w.partition))
    (String.concat ","
       (List.map
          (fun (e, d) ->
            Bexpr.to_string e ^ match d with Asc -> " asc" | Desc -> " desc")
          w.worder))

(** [agg_to_string a] renders an aggregate spec for EXPLAIN. *)
let agg_to_string (a, name) =
  Printf.sprintf "%s=%s(%s%s)" name (agg_kind_name a.kind)
    (if a.distinct then "DISTINCT " else "")
    (match a.arg with None -> "*" | Some e -> Bexpr.to_string e)

(** [to_string p] renders the plan tree with indentation for EXPLAIN. *)
let to_string p =
  let buf = Buffer.create 256 in
  let rec go indent p =
    Buffer.add_string buf (String.make (indent * 2) ' ');
    (match p with
    | Scan { table; _ } -> Buffer.add_string buf (Printf.sprintf "Scan %s\n" table)
    | One_row -> Buffer.add_string buf "OneRow\n"
    | Filter (e, input) ->
        Buffer.add_string buf (Printf.sprintf "Filter %s\n" (Bexpr.to_string e));
        go (indent + 1) input
    | Project (items, input) ->
        Buffer.add_string buf
          (Printf.sprintf "Project [%s]\n"
             (String.concat ", "
                (List.map (fun (e, n) -> n ^ "=" ^ Bexpr.to_string e) items)));
        go (indent + 1) input
    | Join { kind; cond; left; right } ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s\n"
             (match kind with Inner -> "Join" | Left_outer -> "LeftJoin")
             (match cond with None -> " (cross)" | Some e -> " on " ^ Bexpr.to_string e));
        go (indent + 1) left;
        go (indent + 1) right
    | Aggregate { keys; aggs; input } ->
        Buffer.add_string buf
          (Printf.sprintf "Aggregate keys=[%s] aggs=[%s]\n"
             (String.concat ", "
                (List.map (fun (e, n) -> n ^ "=" ^ Bexpr.to_string e) keys))
             (String.concat ", " (List.map agg_to_string aggs)));
        go (indent + 1) input
    | Sort { keys; input } ->
        Buffer.add_string buf
          (Printf.sprintf "Sort [%s]\n"
             (String.concat ", "
                (List.map
                   (fun (i, d) ->
                     Printf.sprintf "#%d %s" i (match d with Asc -> "asc" | Desc -> "desc"))
                   keys)));
        go (indent + 1) input
    | Window { specs; input } ->
        Buffer.add_string buf
          (Printf.sprintf "Window [%s]\n"
             (String.concat ", " (List.map wspec_to_string specs)));
        go (indent + 1) input
    | Distinct input ->
        Buffer.add_string buf "Distinct\n";
        go (indent + 1) input
    | Limit { n; offset; input } ->
        Buffer.add_string buf
          (Printf.sprintf "Limit %s offset %d\n"
             (match n with None -> "all" | Some n -> string_of_int n)
             offset);
        go (indent + 1) input)
  in
  go 0 p;
  Buffer.contents buf
