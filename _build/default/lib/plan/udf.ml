(* Scalar function registry: built-ins and user-defined functions.

   The keynote's claim C5 is that "algorithm-picking languages" should
   absorb user code; Quill does this by letting UDFs register here and then
   flow through binding, optimization, profiling and compilation exactly
   like built-ins.  Overload resolution picks the first signature whose
   parameters accept the argument types (with Int->Float widening). *)

module Value = Quill_storage.Value

type def = {
  name : string;
  arg_types : Value.dtype list;
  ret_type : Value.dtype;
  fn : Value.t array -> Value.t;
  cost_per_call : float;  (** optimizer cost units; built-ins are cheap *)
}

type t = { defs : (string, def list) Hashtbl.t }

(** [register t def] adds an overload for [def.name]. *)
let register t def =
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.defs def.name) in
  Hashtbl.replace t.defs def.name (existing @ [ def ])

let accepts param arg = param = arg || (param = Value.Float_t && arg = Value.Int_t)

(** [lookup t name arg_types] resolves an overload; [None] if nothing
    matches. *)
let lookup t name arg_types =
  match Hashtbl.find_opt t.defs name with
  | None -> None
  | Some defs ->
      List.find_opt
        (fun d ->
          List.length d.arg_types = List.length arg_types
          && List.for_all2 accepts d.arg_types arg_types)
        defs

let null_guard1 f = function
  | [| Value.Null |] -> Value.Null
  | [| v |] -> f v
  | _ -> invalid_arg "arity"

let builtin name arg_types ret_type fn =
  { name; arg_types; ret_type; fn; cost_per_call = 1.0 }

(** [builtins ()] returns a registry preloaded with the standard scalar
    functions: abs, sqrt, floor, ceil, round, upper, lower, length, substr,
    year, month, day. *)
let builtins () =
  let t = { defs = Hashtbl.create 32 } in
  let reg = register t in
  reg
    (builtin "abs" [ Value.Int_t ] Value.Int_t
       (null_guard1 (function Value.Int i -> Value.Int (abs i) | _ -> assert false)));
  reg
    (builtin "abs" [ Value.Float_t ] Value.Float_t
       (null_guard1 (function Value.Float f -> Value.Float (Float.abs f) | _ -> assert false)));
  reg
    (builtin "sqrt" [ Value.Float_t ] Value.Float_t
       (null_guard1 (function
         | Value.Float f ->
             if f < 0.0 then raise (Bexpr.Eval_error "sqrt of negative")
             else Value.Float (sqrt f)
         | _ -> assert false)));
  reg
    (builtin "floor" [ Value.Float_t ] Value.Float_t
       (null_guard1 (function Value.Float f -> Value.Float (Float.floor f) | _ -> assert false)));
  reg
    (builtin "ceil" [ Value.Float_t ] Value.Float_t
       (null_guard1 (function Value.Float f -> Value.Float (Float.ceil f) | _ -> assert false)));
  reg
    (builtin "round" [ Value.Float_t ] Value.Float_t
       (null_guard1 (function Value.Float f -> Value.Float (Float.round f) | _ -> assert false)));
  reg
    (builtin "upper" [ Value.Str_t ] Value.Str_t
       (null_guard1 (function
         | Value.Str s -> Value.Str (String.uppercase_ascii s)
         | _ -> assert false)));
  reg
    (builtin "lower" [ Value.Str_t ] Value.Str_t
       (null_guard1 (function
         | Value.Str s -> Value.Str (String.lowercase_ascii s)
         | _ -> assert false)));
  reg
    (builtin "length" [ Value.Str_t ] Value.Int_t
       (null_guard1 (function Value.Str s -> Value.Int (String.length s) | _ -> assert false)));
  reg
    (builtin "substr" [ Value.Str_t; Value.Int_t; Value.Int_t ] Value.Str_t (function
      | [| Value.Str s; Value.Int start; Value.Int len |] ->
          (* 1-based start, clamped to the string; SQL SUBSTR semantics. *)
          let n = String.length s in
          let from = max 0 (start - 1) in
          let take = max 0 (min len (n - from)) in
          if from >= n then Value.Str "" else Value.Str (String.sub s from take)
      | [| _; _; _ |] -> Value.Null
      | _ -> invalid_arg "arity"));
  reg
    (builtin "concat" [ Value.Str_t; Value.Str_t ] Value.Str_t (function
      | [| Value.Str a; Value.Str b |] -> Value.Str (a ^ b)
      | [| _; _ |] -> Value.Null
      | _ -> invalid_arg "arity"));
  reg
    (builtin "trim" [ Value.Str_t ] Value.Str_t
       (null_guard1 (function Value.Str s -> Value.Str (String.trim s) | _ -> assert false)));
  reg
    (builtin "replace" [ Value.Str_t; Value.Str_t; Value.Str_t ] Value.Str_t (function
      | [| Value.Str s; Value.Str from; Value.Str into |] ->
          if from = "" then Value.Str s
          else begin
            let buf = Buffer.create (String.length s) in
            let nf = String.length from and ns = String.length s in
            let i = ref 0 in
            while !i < ns do
              if !i + nf <= ns && String.sub s !i nf = from then begin
                Buffer.add_string buf into;
                i := !i + nf
              end
              else begin
                Buffer.add_char buf s.[!i];
                incr i
              end
            done;
            Value.Str (Buffer.contents buf)
          end
      | [| _; _; _ |] -> Value.Null
      | _ -> invalid_arg "arity"));
  let date_part part =
    null_guard1 (function
      | Value.Date d ->
          let y, m, dd = Value.ymd_of_date d in
          Value.Int (match part with `Y -> y | `M -> m | `D -> dd)
      | _ -> assert false)
  in
  reg (builtin "year" [ Value.Date_t ] Value.Int_t (date_part `Y));
  reg (builtin "month" [ Value.Date_t ] Value.Int_t (date_part `M));
  reg (builtin "day" [ Value.Date_t ] Value.Int_t (date_part `D));
  t

(** [create ()] returns an empty registry (no built-ins). *)
let create () = { defs = Hashtbl.create 8 }
