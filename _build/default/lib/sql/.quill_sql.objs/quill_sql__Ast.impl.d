lib/sql/ast.ml: List Quill_storage String
