lib/stats/estimate.ml: Float Histogram List Option Quill_plan Quill_storage String Table_stats
