lib/stats/hll.ml: Array Float
