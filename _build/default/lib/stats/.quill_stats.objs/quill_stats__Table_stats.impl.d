lib/stats/table_stats.ml: Array Float Hashtbl Histogram Hll Quill_storage Quill_util String
