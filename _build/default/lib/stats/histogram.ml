(* Equi-depth histograms over numeric-ish columns.

   Buckets hold approximately equal row counts, so skewed data gets more
   resolution where the mass is.  Values are mapped to floats (ints, floats
   and dates all embed losslessly enough for estimation purposes). *)

type t = {
  bounds : float array;  (** ascending bucket upper bounds, length = nbuckets *)
  depth : float;  (** rows per bucket *)
  total : float;  (** non-null rows summarized *)
  lo : float;
  hi : float;
}

(** [build ?buckets samples] constructs an equi-depth histogram from a
    non-empty array of float samples. *)
let build ?(buckets = 64) samples =
  assert (Array.length samples > 0);
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let buckets = max 1 (min buckets n) in
  let bounds =
    Array.init buckets (fun b ->
        let idx = ((b + 1) * n / buckets) - 1 in
        sorted.(max 0 idx))
  in
  {
    bounds;
    depth = Float.of_int n /. Float.of_int buckets;
    total = Float.of_int n;
    lo = sorted.(0);
    hi = sorted.(n - 1);
  }

(* Fraction of rows strictly below [x], interpolating inside a bucket. *)
let fraction_below t x =
  if x <= t.lo then 0.0
  else if x > t.hi then 1.0
  else begin
    let nb = Array.length t.bounds in
    (* First bucket whose upper bound >= x. *)
    let b = ref 0 in
    while !b < nb - 1 && t.bounds.(!b) < x do
      incr b
    done;
    let upper = t.bounds.(!b) in
    let lower = if !b = 0 then t.lo else t.bounds.(!b - 1) in
    let within =
      if upper <= lower then 1.0
      else Float.max 0.0 (Float.min 1.0 ((x -. lower) /. (upper -. lower)))
    in
    (Float.of_int !b +. within) /. Float.of_int nb
  end

(** [selectivity_lt t x] estimates P(value < x). *)
let selectivity_lt t x = fraction_below t x

(** [selectivity_le t x] estimates P(value <= x). *)
let selectivity_le t x = Float.min 1.0 (fraction_below t x +. (1.0 /. t.total))

(** [selectivity_range t ?lo ?hi ()] estimates P(lo <= value <= hi) for the
    provided (optional, inclusive-ish) bounds. *)
let selectivity_range t ?lo ?hi () =
  let below_hi = match hi with None -> 1.0 | Some h -> selectivity_le t h in
  let below_lo = match lo with None -> 0.0 | Some l -> selectivity_lt t l in
  Float.max 0.0 (below_hi -. below_lo)
