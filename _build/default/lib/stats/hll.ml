(* HyperLogLog distinct-value sketch.

   Used to estimate NDV on large columns without a full hash table.  The
   standard estimator with small- and large-range corrections; precision
   [p] gives 2^p registers and relative error ~1.04/sqrt(2^p). *)

type t = { p : int; registers : int array }

(** [create ?p ()] returns an empty sketch with [2^p] registers
    (default [p = 12], ~1.6% standard error). *)
let create ?(p = 12) () =
  assert (p >= 4 && p <= 18);
  { p; registers = Array.make (1 lsl p) 0 }

let rho hash bits =
  (* Position of the first set bit in the top [bits] of [hash], 1-based. *)
  let rec go i = if i > bits then bits + 1 else if hash land (1 lsl (bits - i)) <> 0 then i else go (i + 1) in
  go 1

(** [add t hash] feeds one pre-hashed value (use {!Quill_util.Hashing}). *)
let add t hash =
  let m = 1 lsl t.p in
  let idx = hash land (m - 1) in
  let rest = (hash lsr t.p) land ((1 lsl 50) - 1) in
  let r = rho rest 50 in
  if r > t.registers.(idx) then t.registers.(idx) <- r

(** [estimate t] returns the estimated number of distinct values added. *)
let estimate t =
  let m = Float.of_int (1 lsl t.p) in
  let alpha =
    match 1 lsl t.p with
    | 16 -> 0.673
    | 32 -> 0.697
    | 64 -> 0.709
    | _ -> 0.7213 /. (1.0 +. (1.079 /. m))
  in
  let sum =
    Array.fold_left (fun acc r -> acc +. Float.pow 2.0 (-.Float.of_int r)) 0.0 t.registers
  in
  let raw = alpha *. m *. m /. sum in
  let zeros = Array.fold_left (fun acc r -> if r = 0 then acc + 1 else acc) 0 t.registers in
  if raw <= 2.5 *. m && zeros > 0 then
    (* Small-range correction: linear counting. *)
    m *. log (m /. Float.of_int zeros)
  else raw

(** [merge a b] unions two sketches of equal precision. *)
let merge a b =
  assert (a.p = b.p);
  let r = Array.mapi (fun i v -> max v b.registers.(i)) a.registers in
  { p = a.p; registers = r }
