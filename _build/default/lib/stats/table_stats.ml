(* Per-table statistics collection.

   For each column we record row/null counts, min/max, NDV (exact below a
   threshold, HyperLogLog above) and, for orderable types, an equi-depth
   histogram.  A registry keyed by (table name, catalog version) lets the
   optimizer look statistics up and notice staleness. *)

module Value = Quill_storage.Value
module Table = Quill_storage.Table
module Schema = Quill_storage.Schema
module Hashing = Quill_util.Hashing

type col_stats = {
  count : int;  (** total rows *)
  nulls : int;
  ndv : float;  (** estimated distinct non-null values *)
  min_v : Value.t;  (** Null when the column is all-NULL *)
  max_v : Value.t;
  histogram : Histogram.t option;  (** numeric/date columns only *)
  avg_width : float;  (** bytes, for the data-movement cost model *)
}

type t = { row_count : int; cols : col_stats array }

let exact_ndv_threshold = 1 lsl 16

let value_width = function
  | Value.Null -> 1.0
  | Value.Int _ | Value.Float _ | Value.Date _ -> 8.0
  | Value.Bool _ -> 1.0
  | Value.Str s -> Float.of_int (String.length s + 8)

let numericish = function
  | Value.Int_t | Value.Float_t | Value.Date_t -> true
  | _ -> false

(** [collect_column table j] computes statistics for column [j]. *)
let collect_column table j =
  let n = Table.row_count table in
  let dtype = (Schema.column (Table.schema table) j).Schema.dtype in
  let nulls = ref 0 in
  let min_v = ref Value.Null and max_v = ref Value.Null in
  let width_sum = ref 0.0 in
  let exact = Hashtbl.create 1024 in
  let hll = Hll.create () in
  let use_exact = ref true in
  let samples = Quill_util.Vec.create ~dummy:0.0 in
  for i = 0 to n - 1 do
    let v = Table.get table i j in
    width_sum := !width_sum +. value_width v;
    if Value.is_null v then incr nulls
    else begin
      (if Value.is_null !min_v || Value.compare v !min_v < 0 then min_v := v);
      (if Value.is_null !max_v || Value.compare v !max_v > 0 then max_v := v);
      let h = Value.hash v in
      Hll.add hll h;
      if !use_exact then begin
        if not (Hashtbl.mem exact h) then Hashtbl.add exact h ();
        if Hashtbl.length exact > exact_ndv_threshold then begin
          use_exact := false;
          Hashtbl.reset exact
        end
      end;
      if numericish dtype then Quill_util.Vec.push samples (Value.to_float v)
    end
  done;
  let ndv =
    if !use_exact then Float.of_int (Hashtbl.length exact) else Hll.estimate hll
  in
  let histogram =
    if numericish dtype && Quill_util.Vec.length samples > 0 then
      Some (Histogram.build (Quill_util.Vec.to_array samples))
    else None
  in
  {
    count = n;
    nulls = !nulls;
    ndv;
    min_v = !min_v;
    max_v = !max_v;
    histogram;
    avg_width = (if n = 0 then 8.0 else !width_sum /. Float.of_int n);
  }

(** [collect table] computes statistics for every column of [table]. *)
let collect table =
  {
    row_count = Table.row_count table;
    cols = Array.init (Schema.arity (Table.schema table)) (collect_column table);
  }

(** Registry of statistics with staleness tracking. *)
module Registry = struct
  type entry = { stats : t; version : int }
  type reg = { entries : (string, entry) Hashtbl.t }

  let create () = { entries = Hashtbl.create 16 }

  (** [analyze reg catalog name] (re)collects statistics for table [name]. *)
  let analyze reg catalog name =
    let table = Quill_storage.Catalog.find_exn catalog name in
    let stats = collect table in
    Hashtbl.replace reg.entries name
      { stats; version = Quill_storage.Catalog.version catalog };
    stats

  (** [get reg catalog name] returns statistics for [name], collecting on
      first use (or after the catalog version moved, i.e. stale stats). *)
  let get reg catalog name =
    match Hashtbl.find_opt reg.entries name with
    | Some e when e.version = Quill_storage.Catalog.version catalog -> e.stats
    | _ -> analyze reg catalog name

  (** [get_if_fresh reg catalog name] returns cached stats even if slightly
      stale, collecting only when absent — the cheap path used during
      optimization. *)
  let get_if_fresh reg catalog name =
    match Hashtbl.find_opt reg.entries name with
    | Some e -> e.stats
    | None -> analyze reg catalog name
end
