lib/storage/catalog.ml: Hashtbl List Printf Table
