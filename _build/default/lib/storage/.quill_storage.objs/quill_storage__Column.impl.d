lib/storage/column.ml: Array Float Hashtbl Quill_util Value
