lib/storage/index.ml: Array Catalog Hashtbl List Option Schema Stdlib Table Value
