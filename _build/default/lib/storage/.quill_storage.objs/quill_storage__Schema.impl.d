lib/storage/schema.ml: Array Hashtbl List Printf String Value
