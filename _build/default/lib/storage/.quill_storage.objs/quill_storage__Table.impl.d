lib/storage/table.ml: Array Column Float List Printf Quill_util Schema Value
