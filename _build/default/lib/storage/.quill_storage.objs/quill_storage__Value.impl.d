lib/storage/value.ml: Float Option Printf Quill_util Stdlib String
