lib/storage/value.mli:
