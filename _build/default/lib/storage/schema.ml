(* Table schemas: ordered, named, typed columns.

   A schema is immutable; operators derive new schemas rather than mutating.
   Column lookup supports both bare names and [table.column] qualified
   names, with ambiguity detection at bind time. *)

type col = { name : string; dtype : Value.dtype; nullable : bool }

type t = { cols : col array }

(** [col ?nullable name dtype] builds a column definition (nullable by
    default). *)
let col ?(nullable = true) name dtype = { name; dtype; nullable }

(** [create cols] builds a schema; duplicate fully-qualified names are
    rejected. *)
let create cols =
  let arr = Array.of_list cols in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun c ->
      if Hashtbl.mem seen c.name then
        invalid_arg (Printf.sprintf "Schema.create: duplicate column %S" c.name);
      Hashtbl.add seen c.name ())
    arr;
  { cols = arr }

(** [arity s] is the number of columns. *)
let arity s = Array.length s.cols

(** [column s i] is the [i]-th column definition. *)
let column s i = s.cols.(i)

(** [columns s] lists the column definitions in order. *)
let columns s = Array.to_list s.cols

(** [base_name n] strips a [table.] qualifier if present. *)
let base_name n =
  match String.rindex_opt n '.' with
  | Some i -> String.sub n (i + 1) (String.length n - i - 1)
  | None -> n

(** [find s name] resolves [name] (qualified or bare) to a column index.
    Returns [Error] describing "unknown" or "ambiguous" failures. *)
let find s name =
  let qualified = String.contains name '.' in
  let matches =
    List.filteri (fun _ _ -> true) (Array.to_list s.cols)
    |> List.mapi (fun i c -> (i, c))
    |> List.filter (fun (_, c) ->
           if qualified then c.name = name else base_name c.name = name)
  in
  match matches with
  | [ (i, _) ] -> Ok i
  | [] -> Error (Printf.sprintf "unknown column %S" name)
  | _ -> Error (Printf.sprintf "ambiguous column %S" name)

(** [find_exn s name] is [find] raising [Invalid_argument] on failure. *)
let find_exn s name =
  match find s name with Ok i -> i | Error e -> invalid_arg ("Schema.find: " ^ e)

(** [qualify prefix s] prefixes every column name with [prefix.] (dropping
    any existing qualifier), as done when a table gets an alias. *)
let qualify prefix s =
  { cols = Array.map (fun c -> { c with name = prefix ^ "." ^ base_name c.name }) s.cols }

(** [concat a b] is the schema of a join output: columns of [a] then [b]. *)
let concat a b = { cols = Array.append a.cols b.cols }

(** [to_string s] renders the schema as [(name TYPE, ...)]. *)
let to_string s =
  s.cols |> Array.to_list
  |> List.map (fun c ->
         Printf.sprintf "%s %s%s" c.name (Value.dtype_name c.dtype)
           (if c.nullable then "" else " NOT NULL"))
  |> String.concat ", "
  |> Printf.sprintf "(%s)"

(** [equal a b] compares schemas structurally. *)
let equal a b = a.cols = b.cols
