(** Table schemas: ordered, named, typed columns.

    A schema is immutable; operators derive new schemas rather than
    mutating.  Column lookup supports both bare names and [table.column]
    qualified names, with ambiguity detection at bind time. *)

type col = { name : string; dtype : Value.dtype; nullable : bool }

type t

(** [col ?nullable name dtype] builds a column definition (nullable by
    default). *)
val col : ?nullable:bool -> string -> Value.dtype -> col

(** [create cols] builds a schema; duplicate fully-qualified names raise
    [Invalid_argument]. *)
val create : col list -> t

(** [arity s] is the number of columns. *)
val arity : t -> int

(** [column s i] is the [i]-th column definition. *)
val column : t -> int -> col

(** [columns s] lists the column definitions in order. *)
val columns : t -> col list

(** [base_name n] strips a [table.] qualifier if present. *)
val base_name : string -> string

(** [find s name] resolves [name] (qualified or bare) to a column index;
    [Error] messages start with ["unknown"] or ["ambiguous"]. *)
val find : t -> string -> (int, string) result

(** [find_exn s name] is {!find} raising [Invalid_argument] on failure. *)
val find_exn : t -> string -> int

(** [qualify prefix s] prefixes every column name with [prefix.] (dropping
    any existing qualifier), as done when a table gets an alias. *)
val qualify : string -> t -> t

(** [concat a b] is the schema of a join output: columns of [a], then
    [b]. *)
val concat : t -> t -> t

(** [to_string s] renders the schema as ["(name TYPE, ...)"] for messages
    and the shell's [\d]. *)
val to_string : t -> string

(** [equal a b] compares schemas structurally. *)
val equal : t -> t -> bool
