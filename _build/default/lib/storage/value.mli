(** SQL values and their dynamic types.

    Dates are stored as days since 1970-01-01 (proleptic Gregorian), which
    makes date arithmetic and range predicates plain integer operations. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Date of int  (** days since 1970-01-01 *)

type dtype = Int_t | Float_t | Str_t | Bool_t | Date_t

(** [dtype_name d] is the SQL spelling of [d] (["INT"], ["TEXT"], ...). *)
val dtype_name : dtype -> string

(** [type_of v] returns the dtype of a non-null value; raises
    [Invalid_argument] on [Null]. *)
val type_of : t -> dtype

(** [is_null v] is true exactly for [Null]. *)
val is_null : t -> bool

(** [date_of_ymd ~y ~m ~d] converts a civil date to days since epoch
    (Howard Hinnant's algorithm; exact over the usable range). *)
val date_of_ymd : y:int -> m:int -> d:int -> int

(** [ymd_of_date days] converts days since epoch back to [(y, m, d)]. *)
val ymd_of_date : int -> int * int * int

(** [parse_date s] parses ["YYYY-MM-DD"]; [None] on malformed input or
    out-of-range month/day. *)
val parse_date : string -> int option

(** [date_string days] renders a date value as ["YYYY-MM-DD"]. *)
val date_string : int -> string

(** [to_string v] renders a value for display; NULL renders as ["NULL"]. *)
val to_string : t -> string

(** [compare a b] is a total order suitable for sorting: NULL sorts first,
    ints and floats compare numerically. *)
val compare : t -> t -> int

(** [equal a b] is structural equality with numeric coercion ([Int 3]
    equals [Float 3.0]); [Null] equals only [Null] — SQL three-valued
    logic lives in the expression evaluator, not here. *)
val equal : t -> t -> bool

(** [hash v] hashes consistently with {!equal} (numerically equal ints and
    floats collide intentionally). *)
val hash : t -> int

(** [to_float v] is the numeric view of an Int/Float/Date value; raises
    [Invalid_argument] otherwise. *)
val to_float : t -> float

(** [parse dtype s] parses the textual form of a value of type [dtype];
    the empty string parses as [Null]; [None] on malformed input. *)
val parse : dtype -> string -> t option
