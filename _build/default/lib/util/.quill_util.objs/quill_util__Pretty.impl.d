lib/util/pretty.ml: Array Buffer Float List Printf String
