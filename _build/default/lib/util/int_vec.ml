(* Growable int vector with unboxed storage.

   Selection vectors, row-id lists and offsets are all int sequences on hot
   paths; this avoids the indirection of ['a array] for those. *)

type t = { mutable data : int array; mutable len : int }

(** [create ()] returns an empty vector. *)
let create () = { data = [||]; len = 0 }

(** [with_capacity n] preallocates room for [n] ints. *)
let with_capacity n = { data = (if n = 0 then [||] else Array.make n 0); len = 0 }

(** [length v] is the number of pushed ints. *)
let length v = v.len

let grow v needed =
  let cap = Array.length v.data in
  if needed > cap then begin
    let cap' = max needed (max 8 (cap * 2)) in
    let data' = Array.make cap' 0 in
    Array.blit v.data 0 data' 0 v.len;
    v.data <- data'
  end

(** [push v x] appends [x]. *)
let push v x =
  grow v (v.len + 1);
  v.data.(v.len) <- x;
  v.len <- v.len + 1

(** [get v i] returns element [i]. *)
let get v i =
  assert (i >= 0 && i < v.len);
  v.data.(i)

(** [set v i x] overwrites element [i]. *)
let set v i x =
  assert (i >= 0 && i < v.len);
  v.data.(i) <- x

(** [clear v] empties the vector, keeping capacity. *)
let clear v = v.len <- 0

(** [to_array v] copies the contents into a fresh int array. *)
let to_array v = Array.sub v.data 0 v.len

(** [unsafe_data v] exposes the backing array (first [length v] entries are
    valid); callers must not retain it across a push. *)
let unsafe_data v = v.data

(** [iter f v] applies [f] to each int in order. *)
let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

(** [sort v] sorts in place, ascending. *)
let sort v =
  let a = to_array v in
  Array.sort compare a;
  Array.blit a 0 v.data 0 v.len
