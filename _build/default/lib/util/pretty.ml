(* ASCII table rendering for query results, EXPLAIN output and benchmark
   reports. *)

(** [render ~header rows] lays out [rows] under [header] with box-drawing
    separators; every row must have [List.length header] cells. *)
let render ~header rows =
  let all = header :: rows in
  let ncols = List.length header in
  List.iter (fun r -> assert (List.length r = ncols)) rows;
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let buf = Buffer.create 256 in
  let sep () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line row =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' ');
        Buffer.add_string buf " |")
      row;
    Buffer.add_char buf '\n'
  in
  sep ();
  line header;
  sep ();
  List.iter line rows;
  sep ();
  Buffer.contents buf

(** [float_cell f] formats a float compactly for table cells. *)
let float_cell f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.4g" f

(** [duration secs] renders a duration with an adaptive unit. *)
let duration secs =
  if secs < 1e-6 then Printf.sprintf "%.0fns" (secs *. 1e9)
  else if secs < 1e-3 then Printf.sprintf "%.2fus" (secs *. 1e6)
  else if secs < 1.0 then Printf.sprintf "%.2fms" (secs *. 1e3)
  else Printf.sprintf "%.3fs" secs
