(* Deterministic pseudo-random number generation.

   All data generators in Quill are seeded explicitly so that workloads,
   tests and benchmarks are reproducible run-to-run.  The core generator is
   splitmix64, which is small, fast and passes BigCrush when used as a
   64-bit stream. *)

type t = { mutable state : int64 }

(** [create seed] returns a fresh generator; equal seeds give equal
    streams. *)
let create seed = { state = Int64.of_int seed }

(** [copy t] returns an independent generator with the same state. *)
let copy t = { state = t.state }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** [bits t] returns a uniformly distributed non-negative 62-bit int. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(** [int t bound] returns a uniform int in [\[0, bound)]. Requires
    [bound > 0]. *)
let int t bound =
  assert (bound > 0);
  bits t mod bound

(** [int_range t lo hi] returns a uniform int in [\[lo, hi\]] inclusive. *)
let int_range t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

(** [float t] returns a uniform float in [\[0, 1)]. *)
let float t = Float.of_int (bits t) /. 4611686018427387904.0

(** [float_range t lo hi] returns a uniform float in [\[lo, hi)]. *)
let float_range t lo hi = lo +. (float t *. (hi -. lo))

(** [bool t] returns a fair coin flip. *)
let bool t = bits t land 1 = 1

(** [gaussian t] returns a standard-normal sample (Box-Muller). *)
let gaussian t =
  let u1 = Stdlib.max 1e-12 (float t) and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

(** [pick t arr] returns a uniformly chosen element of [arr]. *)
let pick t arr = arr.(int t (Array.length arr))

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** Zipf-distributed integers in [\[1, n\]] with exponent [theta], sampled by
    inverse transform over precomputed cumulative weights. *)
module Zipf = struct
  type dist = { cum : float array; rng : t }

  let create rng ~n ~theta =
    assert (n > 0);
    let cum = Array.make n 0.0 in
    let total = ref 0.0 in
    for i = 0 to n - 1 do
      total := !total +. (1.0 /. Float.pow (Float.of_int (i + 1)) theta);
      cum.(i) <- !total
    done;
    for i = 0 to n - 1 do
      cum.(i) <- cum.(i) /. !total
    done;
    { cum; rng }

  (* Binary search for the first index with cum >= u. *)
  let sample d =
    let u = float d.rng in
    let lo = ref 0 and hi = ref (Array.length d.cum - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if d.cum.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo + 1
end
