(* Summary statistics over float samples; used by the profiler, the
   benchmark harness and the histogram tests. *)

(** [mean xs] is the arithmetic mean; 0 on empty input. *)
let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. Float.of_int n

(** [stddev xs] is the population standard deviation. *)
let stddev xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (ss /. Float.of_int n)
  end

(** [percentile xs p] is the [p]-th percentile (0..100) by nearest-rank on a
    sorted copy; raises on empty input. *)
let percentile xs p =
  assert (Array.length xs > 0 && p >= 0.0 && p <= 100.0);
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. Float.of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

(** [median xs] is [percentile xs 50]. *)
let median xs = percentile xs 50.0

(** [min_max xs] returns [(min, max)]; raises on empty input. *)
let min_max xs =
  assert (Array.length xs > 0);
  Array.fold_left
    (fun (lo, hi) x -> (Stdlib.min lo x, Stdlib.max hi x))
    (xs.(0), xs.(0))
    xs
