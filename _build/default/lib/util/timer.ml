(* Wall-clock timing helpers for the profiler and the benchmark harness. *)

(** [now ()] returns a monotonic-enough wall-clock reading in seconds. *)
let now () = Unix.gettimeofday ()

(** [time f] runs [f ()] and returns [(result, elapsed_seconds)]. *)
let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

(** [time_unit f] runs [f ()] for effect and returns elapsed seconds. *)
let time_unit f = snd (time f)

(** A restartable stopwatch accumulating elapsed time across intervals. *)
module Stopwatch = struct
  type t = { mutable acc : float; mutable started : float option }

  let create () = { acc = 0.0; started = None }
  let start t = if t.started = None then t.started <- Some (now ())

  let stop t =
    match t.started with
    | None -> ()
    | Some s ->
        t.acc <- t.acc +. (now () -. s);
        t.started <- None

  (** [elapsed t] is the accumulated time, including a running interval. *)
  let elapsed t =
    t.acc +. match t.started with None -> 0.0 | Some s -> now () -. s
end
