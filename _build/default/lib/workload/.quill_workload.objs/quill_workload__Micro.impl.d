lib/workload/micro.ml: Array Char Fun List Printf Quill_storage Quill_util String
