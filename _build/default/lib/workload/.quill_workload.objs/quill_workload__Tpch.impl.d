lib/workload/tpch.ml: Array Float Printf Quill_storage Quill_util
