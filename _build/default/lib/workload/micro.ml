(* Micro-workload builders: parameterized synthetic tables for the
   experiments that sweep one variable at a time (join size ratios, group
   counts, projectivity, selectivity, distributions). *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema
module Table = Quill_storage.Table
module Rng = Quill_util.Rng

(** [ints_table ~name ~rows ~cols ~seed ()] builds a table of [cols] int
    columns [c0..c{cols-1}]; [c0] is a unique key 0..rows-1 (shuffled),
    the rest are uniform in [0, rows). *)
let ints_table ~name ~rows ~cols ~seed () =
  let rng = Rng.create seed in
  let schema =
    Schema.create
      (List.init cols (fun c ->
           Schema.col ~nullable:false (Printf.sprintf "c%d" c) Value.Int_t))
  in
  let keys = Array.init rows Fun.id in
  Rng.shuffle rng keys;
  let t = Table.create ~name schema in
  for r = 0 to rows - 1 do
    Table.insert t
      (Array.init cols (fun c ->
           if c = 0 then Value.Int keys.(r) else Value.Int (Rng.int rng (max 1 rows))))
  done;
  t

(** [keyed_pair ~build_rows ~probe_rows ~seed ()] builds two tables for
    join experiments: [build(k, payload)] with unique keys and
    [probe(fk, payload)] whose foreign keys hit [build] uniformly. *)
let keyed_pair ~build_rows ~probe_rows ~seed () =
  let rng = Rng.create seed in
  let mk name =
    Schema.create
      [ Schema.col ~nullable:false (name ^ "_k") Value.Int_t;
        Schema.col ~nullable:false (name ^ "_payload") Value.Int_t ]
  in
  let build = Table.create ~name:"build_side" (mk "b") in
  for k = 0 to build_rows - 1 do
    Table.insert build [| Value.Int k; Value.Int (Rng.int rng 1000000) |]
  done;
  let probe = Table.create ~name:"probe_side" (mk "p") in
  for _ = 0 to probe_rows - 1 do
    Table.insert probe
      [| Value.Int (Rng.int rng (max 1 build_rows)); Value.Int (Rng.int rng 1000000) |]
  done;
  (build, probe)

(** [grouped_table ~rows ~groups ~seed ()] builds [t(g, v)] where [g] has
    exactly [groups] distinct values, for aggregation experiments. *)
let grouped_table ~rows ~groups ~seed () =
  let rng = Rng.create seed in
  let schema =
    Schema.create
      [ Schema.col ~nullable:false "g" Value.Int_t;
        Schema.col ~nullable:false "v" Value.Int_t ]
  in
  let t = Table.create ~name:"grouped" schema in
  for _ = 1 to rows do
    Table.insert t [| Value.Int (Rng.int rng (max 1 groups)); Value.Int (Rng.int rng 1000) |]
  done;
  t

(** [wide_table ~rows ~cols ~seed ()] is [ints_table] under the fixed name
    "wide", for the projectivity/layout experiment (E6). *)
let wide_table ~rows ~cols ~seed () = ints_table ~name:"wide" ~rows ~cols ~seed ()

(** [sort_keys ~n ~dist ~seed ()] generates raw int key arrays for the sort
    experiment: [`Uniform], [`Clustered] (nearly sorted with local noise)
    or [`Dups] (heavy duplicates). *)
let sort_keys ~n ~dist ~seed () =
  let rng = Rng.create seed in
  match dist with
  | `Uniform -> Array.init n (fun _ -> Rng.bits rng land ((1 lsl 40) - 1))
  | `Clustered -> Array.init n (fun idx -> (idx * 4) + Rng.int rng 8)
  | `Dups -> Array.init n (fun _ -> Rng.int rng 100)

(** [string_keys ~n ~seed ()] generates random 12-char string keys. *)
let string_keys ~n ~seed () =
  let rng = Rng.create seed in
  Array.init n (fun _ ->
      String.init 12 (fun _ -> Char.chr (Char.code 'a' + Rng.int rng 26)))
