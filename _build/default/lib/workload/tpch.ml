(* A TPC-H-like analytical schema and deterministic generator.

   Cardinalities follow TPC-H proportions scaled by [sf] (SF 1 would be
   1.5 M orders / ~6 M lineitem; the test suite uses SF 0.002–0.01 and the
   benchmarks SF 0.02–0.05).  Value distributions keep the properties the
   experiments rely on: dates uniform over 1992–1998, discounts in
   0.00–0.10, skewed part popularity, fixed-domain flags. *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema
module Table = Quill_storage.Table
module Catalog = Quill_storage.Catalog
module Rng = Quill_util.Rng

let i v = Value.Int v
let f v = Value.Float v
let s v = Value.Str v
let d v = Value.Date v

let date y m dd = Value.date_of_ymd ~y ~m ~d:dd

let region_schema =
  Schema.create
    [ Schema.col ~nullable:false "r_regionkey" Value.Int_t;
      Schema.col ~nullable:false "r_name" Value.Str_t ]

let nation_schema =
  Schema.create
    [ Schema.col ~nullable:false "n_nationkey" Value.Int_t;
      Schema.col ~nullable:false "n_name" Value.Str_t;
      Schema.col ~nullable:false "n_regionkey" Value.Int_t ]

let supplier_schema =
  Schema.create
    [ Schema.col ~nullable:false "s_suppkey" Value.Int_t;
      Schema.col ~nullable:false "s_name" Value.Str_t;
      Schema.col ~nullable:false "s_nationkey" Value.Int_t;
      Schema.col ~nullable:false "s_acctbal" Value.Float_t ]

let customer_schema =
  Schema.create
    [ Schema.col ~nullable:false "c_custkey" Value.Int_t;
      Schema.col ~nullable:false "c_name" Value.Str_t;
      Schema.col ~nullable:false "c_nationkey" Value.Int_t;
      Schema.col ~nullable:false "c_mktsegment" Value.Str_t;
      Schema.col ~nullable:false "c_acctbal" Value.Float_t ]

let part_schema =
  Schema.create
    [ Schema.col ~nullable:false "p_partkey" Value.Int_t;
      Schema.col ~nullable:false "p_name" Value.Str_t;
      Schema.col ~nullable:false "p_brand" Value.Str_t;
      Schema.col ~nullable:false "p_type" Value.Str_t;
      Schema.col ~nullable:false "p_retailprice" Value.Float_t ]

let orders_schema =
  Schema.create
    [ Schema.col ~nullable:false "o_orderkey" Value.Int_t;
      Schema.col ~nullable:false "o_custkey" Value.Int_t;
      Schema.col ~nullable:false "o_orderstatus" Value.Str_t;
      Schema.col ~nullable:false "o_totalprice" Value.Float_t;
      Schema.col ~nullable:false "o_orderdate" Value.Date_t;
      Schema.col ~nullable:false "o_orderpriority" Value.Str_t;
      Schema.col ~nullable:false "o_shippriority" Value.Int_t ]

let lineitem_schema =
  Schema.create
    [ Schema.col ~nullable:false "l_orderkey" Value.Int_t;
      Schema.col ~nullable:false "l_partkey" Value.Int_t;
      Schema.col ~nullable:false "l_suppkey" Value.Int_t;
      Schema.col ~nullable:false "l_linenumber" Value.Int_t;
      Schema.col ~nullable:false "l_quantity" Value.Float_t;
      Schema.col ~nullable:false "l_extendedprice" Value.Float_t;
      Schema.col ~nullable:false "l_discount" Value.Float_t;
      Schema.col ~nullable:false "l_tax" Value.Float_t;
      Schema.col ~nullable:false "l_returnflag" Value.Str_t;
      Schema.col ~nullable:false "l_linestatus" Value.Str_t;
      Schema.col ~nullable:false "l_shipdate" Value.Date_t ]

let region_names = [| "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" |]

let nation_names =
  [| "ALGERIA"; "ARGENTINA"; "BRAZIL"; "CANADA"; "EGYPT"; "ETHIOPIA"; "FRANCE";
     "GERMANY"; "INDIA"; "INDONESIA"; "IRAN"; "IRAQ"; "JAPAN"; "JORDAN"; "KENYA";
     "MOROCCO"; "MOZAMBIQUE"; "PERU"; "CHINA"; "ROMANIA"; "SAUDI ARABIA";
     "VIETNAM"; "RUSSIA"; "UNITED KINGDOM"; "UNITED STATES" |]

let segments = [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "MACHINERY"; "HOUSEHOLD" |]
let priorities = [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]
let brands = [| "Brand#11"; "Brand#12"; "Brand#21"; "Brand#23"; "Brand#34"; "Brand#55" |]
let types =
  [| "STANDARD ANODIZED TIN"; "SMALL PLATED COPPER"; "MEDIUM BURNISHED NICKEL";
     "LARGE POLISHED STEEL"; "ECONOMY BRUSHED BRASS"; "PROMO BURNISHED COPPER" |]
let part_nouns = [| "almond"; "antique"; "azure"; "beige"; "blush"; "chartreuse";
                    "coral"; "cream"; "dark"; "dim" |]

type sizes = {
  suppliers : int;
  parts : int;
  customers : int;
  orders : int;
}

let sizes_of_sf sf =
  let n base = max 1 (Float.to_int (Float.of_int base *. sf)) in
  { suppliers = n 10_000; parts = n 200_000; customers = n 150_000; orders = n 1_500_000 }

(** [load catalog ~sf ~seed] generates and registers all seven tables.
    Equal (sf, seed) pairs produce identical databases. *)
let load catalog ~sf ~seed =
  let rng = Rng.create seed in
  let sz = sizes_of_sf sf in

  let region = Table.create ~name:"region" region_schema in
  Array.iteri (fun k name -> Table.insert region [| i k; s name |]) region_names;
  Catalog.add catalog region;

  let nation = Table.create ~name:"nation" nation_schema in
  Array.iteri
    (fun k name -> Table.insert nation [| i k; s name; i (Rng.int rng 5) |])
    nation_names;
  Catalog.add catalog nation;

  let supplier = Table.create ~name:"supplier" supplier_schema in
  for k = 1 to sz.suppliers do
    Table.insert supplier
      [| i k;
         s (Printf.sprintf "Supplier#%09d" k);
         i (Rng.int rng 25);
         f (Rng.float_range rng (-999.99) 9999.99) |]
  done;
  Catalog.add catalog supplier;

  let part = Table.create ~name:"part" part_schema in
  for k = 1 to sz.parts do
    Table.insert part
      [| i k;
         s (Rng.pick rng part_nouns ^ " " ^ Rng.pick rng part_nouns);
         s (Rng.pick rng brands);
         s (Rng.pick rng types);
         f (900.0 +. (Float.of_int (k mod 1000) /. 10.0)) |]
  done;
  Catalog.add catalog part;

  let customer = Table.create ~name:"customer" customer_schema in
  for k = 1 to sz.customers do
    Table.insert customer
      [| i k;
         s (Printf.sprintf "Customer#%09d" k);
         i (Rng.int rng 25);
         s (Rng.pick rng segments);
         f (Rng.float_range rng (-999.99) 9999.99) |]
  done;
  Catalog.add catalog customer;

  let start_date = date 1992 1 1 and end_date = date 1998 8 2 in
  let orders = Table.create ~name:"orders" orders_schema in
  let lineitem = Table.create ~name:"lineitem" lineitem_schema in
  (* Skewed part popularity: a Zipf over part keys. *)
  let part_zipf = Rng.Zipf.create (Rng.copy rng) ~n:sz.parts ~theta:0.8 in
  for ok = 1 to sz.orders do
    let odate = Rng.int_range rng start_date (end_date - 151) in
    let nlines = Rng.int_range rng 1 7 in
    let total = ref 0.0 in
    for line = 1 to nlines do
      let qty = Float.of_int (Rng.int_range rng 1 50) in
      let price = Rng.float_range rng 900.0 105000.0 in
      let discount = Float.of_int (Rng.int_range rng 0 10) /. 100.0 in
      let tax = Float.of_int (Rng.int_range rng 0 8) /. 100.0 in
      let shipdate = odate + Rng.int_range rng 1 121 in
      let returnflag, linestatus =
        (* TPC-H: items shipped long ago were returned or not ("R"/"A"),
           recent ones are still open ("N"/"O"). *)
        if shipdate <= date 1995 6 17 then
          ((if Rng.bool rng then "R" else "A"), "F")
        else ("N", "O")
      in
      Table.insert lineitem
        [| i ok;
           i (Rng.Zipf.sample part_zipf);
           i (1 + Rng.int rng sz.suppliers);
           i line;
           f qty;
           f price;
           f discount;
           f tax;
           s returnflag;
           s linestatus;
           d shipdate |];
      total := !total +. (price *. (1.0 -. discount) *. (1.0 +. tax))
    done;
    Table.insert orders
      [| i ok;
         i (1 + Rng.int rng sz.customers);
         s (if Rng.bool rng then "F" else "O");
         f !total;
         d odate;
         s (Rng.pick rng priorities);
         i (Rng.int rng 2) |]
  done;
  Catalog.add catalog orders;
  Catalog.add catalog lineitem

(* --- Query suite (analogs of TPC-H Q1, Q3, Q5, Q6) --------------------- *)

let q1 =
  "SELECT l_returnflag, l_linestatus, \
   SUM(l_quantity) AS sum_qty, \
   SUM(l_extendedprice) AS sum_base_price, \
   SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, \
   AVG(l_quantity) AS avg_qty, \
   AVG(l_discount) AS avg_disc, \
   COUNT(*) AS count_order \
   FROM lineitem \
   WHERE l_shipdate <= DATE '1998-09-02' \
   GROUP BY l_returnflag, l_linestatus \
   ORDER BY l_returnflag, l_linestatus"

let q3 =
  "SELECT l_orderkey, \
   SUM(l_extendedprice * (1 - l_discount)) AS revenue, \
   o_orderdate, o_shippriority \
   FROM customer, orders, lineitem \
   WHERE c_mktsegment = 'BUILDING' \
   AND c_custkey = o_custkey \
   AND l_orderkey = o_orderkey \
   AND o_orderdate < DATE '1995-03-15' \
   AND l_shipdate > DATE '1995-03-15' \
   GROUP BY l_orderkey, o_orderdate, o_shippriority \
   ORDER BY revenue DESC, o_orderdate \
   LIMIT 10"

let q5 =
  "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
   FROM customer, orders, lineitem, supplier, nation, region \
   WHERE c_custkey = o_custkey \
   AND l_orderkey = o_orderkey \
   AND l_suppkey = s_suppkey \
   AND c_nationkey = s_nationkey \
   AND s_nationkey = n_nationkey \
   AND n_regionkey = r_regionkey \
   AND r_name = 'ASIA' \
   AND o_orderdate >= DATE '1994-01-01' \
   AND o_orderdate < DATE '1995-01-01' \
   GROUP BY n_name \
   ORDER BY revenue DESC"

let q6 =
  "SELECT SUM(l_extendedprice * l_discount) AS revenue \
   FROM lineitem \
   WHERE l_shipdate >= DATE '1994-01-01' \
   AND l_shipdate < DATE '1995-01-01' \
   AND l_discount BETWEEN 0.05 AND 0.07 \
   AND l_quantity < 24"

(** The named query suite, for tests and benches. *)
let queries = [ ("Q1", q1); ("Q3", q3); ("Q5", q5); ("Q6", q6) ]
