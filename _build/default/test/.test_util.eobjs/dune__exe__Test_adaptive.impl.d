test/test_adaptive.ml: Alcotest Array Float Printf Quill Quill_adaptive Quill_exec Quill_optimizer Quill_plan Quill_sql Quill_stats Quill_storage Quill_util Tutil
