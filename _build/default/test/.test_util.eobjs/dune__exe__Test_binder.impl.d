test/test_binder.ml: Alcotest List Quill_plan Quill_sql Quill_storage String
