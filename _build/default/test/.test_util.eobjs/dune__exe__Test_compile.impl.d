test/test_compile.ml: Alcotest Array Float Fun List QCheck2 Quill Quill_compile Quill_plan Quill_storage Quill_util Tutil
