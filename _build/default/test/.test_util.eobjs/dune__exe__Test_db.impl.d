test/test_db.ml: Alcotest Array Filename List Printf Quill Quill_storage String Sys Tutil
