test/test_engines.ml: Alcotest Array Float List Printf QCheck2 Quill Quill_compile Quill_optimizer Quill_storage Quill_workload String Tutil
