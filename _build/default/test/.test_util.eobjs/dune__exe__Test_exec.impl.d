test/test_exec.ml: Alcotest Array List QCheck2 Quill_exec Quill_plan Quill_storage Quill_util Tutil
