test/test_expr.ml: Alcotest QCheck2 Quill_compile Quill_optimizer Quill_plan Quill_storage Tutil
