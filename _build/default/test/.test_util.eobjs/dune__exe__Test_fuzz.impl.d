test/test_fuzz.ml: Alcotest Lazy List Printf QCheck2 Quill Quill_optimizer Quill_storage String Tutil
