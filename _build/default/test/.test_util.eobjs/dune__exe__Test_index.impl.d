test/test_index.ml: Alcotest Array List Option Printf QCheck2 Quill Quill_optimizer Quill_storage Quill_workload Tutil
