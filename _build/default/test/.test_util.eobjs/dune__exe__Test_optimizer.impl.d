test/test_optimizer.ml: Alcotest Array Float List Quill Quill_exec Quill_optimizer Quill_plan Quill_sql Quill_stats Quill_storage Quill_workload Tutil
