test/test_sql.ml: Alcotest List Printexc Printf QCheck2 Quill_sql Quill_storage Tutil
