test/test_stats.ml: Alcotest Array Float List Printf Quill_plan Quill_stats Quill_storage Quill_util String Tutil
