test/test_storage.ml: Alcotest Array Filename List QCheck2 Quill_storage Sys Tutil
