test/test_util.ml: Alcotest Array Float Fun List QCheck2 Quill_util String Tutil
