test/test_value.ml: Alcotest QCheck2 Quill_storage String Tutil
