test/test_window.ml: Alcotest Array Float Hashtbl List Option Printf QCheck2 Quill Quill_storage Quill_util String Tutil
