test/test_workload.ml: Alcotest Array Fun Hashtbl List Option Quill_storage Quill_workload
