test/tutil.ml: Alcotest Array Float Format List Printf QCheck2 QCheck_alcotest Quill Quill_plan Quill_storage Quill_util String
