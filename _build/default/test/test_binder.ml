(* Binder tests: name resolution, typing, aggregation rules, ORDER BY. *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema
module Table = Quill_storage.Table
module Catalog = Quill_storage.Catalog
module Parser = Quill_sql.Parser
module Ast = Quill_sql.Ast
module Binder = Quill_plan.Binder
module Lplan = Quill_plan.Lplan
module Bexpr = Quill_plan.Bexpr
module Udf = Quill_plan.Udf

let env () =
  let catalog = Catalog.create () in
  let t =
    Table.create ~name:"t"
      (Schema.create
         [ Schema.col "a" Value.Int_t; Schema.col "b" Value.Str_t;
           Schema.col "f" Value.Float_t; Schema.col "d" Value.Date_t ])
  in
  Catalog.add catalog t;
  let u =
    Table.create ~name:"u"
      (Schema.create [ Schema.col "a" Value.Int_t; Schema.col "x" Value.Int_t ])
  in
  Catalog.add catalog u;
  Binder.mk_env ~catalog ~udfs:(Udf.builtins ()) ~param_types:[| Value.Int_t |] ()

let bind sql =
  match Parser.parse sql with
  | Ast.Select s -> Binder.bind_select (env ()) s
  | _ -> Alcotest.fail "not a select"

let expect_error ?needle sql =
  match bind sql with
  | _ -> Alcotest.failf "expected bind error for %S" sql
  | exception Binder.Bind_error msg -> (
      match needle with
      | None -> ()
      | Some n ->
          let contains hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
            go 0
          in
          if not (contains msg n) then
            Alcotest.failf "error %S does not mention %S" msg n)

let schema_of sql = Lplan.schema_of (bind sql)

let col_names s = List.map (fun c -> c.Schema.name) (Schema.columns s)

let test_simple_select () =
  let s = schema_of "SELECT a, b FROM t" in
  Alcotest.(check (list string)) "names" [ "a"; "b" ] (col_names s);
  Alcotest.(check bool) "types" true
    ((Schema.column s 0).Schema.dtype = Value.Int_t
    && (Schema.column s 1).Schema.dtype = Value.Str_t)

let test_star_expansion () =
  let s = schema_of "SELECT * FROM t" in
  Alcotest.(check int) "arity" 4 (Schema.arity s)

let test_join_star_qualified () =
  let s = schema_of "SELECT * FROM t, u" in
  Alcotest.(check int) "arity" 6 (Schema.arity s);
  (* Duplicate base name [a] gets uniquified in the output. *)
  Alcotest.(check bool) "uniquified" true
    (List.length (List.sort_uniq compare (col_names s)) = 6)

let test_alias_and_self_join () =
  let s = schema_of "SELECT t1.a, t2.a FROM t t1, t t2 WHERE t1.a = t2.a" in
  Alcotest.(check int) "arity" 2 (Schema.arity s)

let test_unknown_and_ambiguous () =
  expect_error ~needle:"unknown" "SELECT zz FROM t";
  expect_error ~needle:"ambiguous" "SELECT a FROM t t1, t t2";
  expect_error ~needle:"no table" "SELECT a FROM missing"

let test_type_errors () =
  expect_error ~needle:"incompatible" "SELECT a FROM t WHERE a = b";
  expect_error "SELECT a + b FROM t";
  expect_error ~needle:"boolean" "SELECT a FROM t WHERE a + 1";
  expect_error ~needle:"LIKE" "SELECT a FROM t WHERE a LIKE 'x%'";
  expect_error ~needle:"%" "SELECT f % 2 FROM t"

let test_numeric_coercion () =
  let s = schema_of "SELECT a + f, a + 1, f * 2 FROM t" in
  Alcotest.(check bool) "int+float is float" true
    ((Schema.column s 0).Schema.dtype = Value.Float_t);
  Alcotest.(check bool) "int+int is int" true
    ((Schema.column s 1).Schema.dtype = Value.Int_t);
  Alcotest.(check bool) "float*int is float" true
    ((Schema.column s 2).Schema.dtype = Value.Float_t)

let test_date_arith_types () =
  let s = schema_of "SELECT d + 7, d - d FROM t" in
  Alcotest.(check bool) "date+int is date" true
    ((Schema.column s 0).Schema.dtype = Value.Date_t);
  Alcotest.(check bool) "date-date is int" true
    ((Schema.column s 1).Schema.dtype = Value.Int_t)

let test_aggregate_output () =
  let s = schema_of "SELECT b, count(*) AS n, sum(a), avg(f) FROM t GROUP BY b" in
  Alcotest.(check (list string)) "names" [ "b"; "n"; "sum"; "avg" ] (col_names s);
  Alcotest.(check bool) "count int" true ((Schema.column s 1).Schema.dtype = Value.Int_t);
  Alcotest.(check bool) "sum int" true ((Schema.column s 2).Schema.dtype = Value.Int_t);
  Alcotest.(check bool) "avg float" true ((Schema.column s 3).Schema.dtype = Value.Float_t)

let test_aggregate_rules () =
  expect_error ~needle:"GROUP BY" "SELECT a, count(*) FROM t GROUP BY b";
  expect_error ~needle:"WHERE" "SELECT a FROM t WHERE count(*) > 1";
  expect_error ~needle:"HAVING" "SELECT a FROM t HAVING a > 1";
  (* Group-by expression reused in the select list is fine. *)
  let s = schema_of "SELECT a + 1, count(*) FROM t GROUP BY a + 1" in
  Alcotest.(check int) "arity" 2 (Schema.arity s);
  (* Qualified/unqualified spelling of a key still resolves. *)
  let s2 = schema_of "SELECT t.a, count(*) FROM t GROUP BY t.a" in
  Alcotest.(check int) "arity2" 2 (Schema.arity s2)

let test_having_aggregate () =
  let p = bind "SELECT b FROM t GROUP BY b HAVING sum(a) > 10" in
  (* HAVING's aggregate must appear in the Aggregate node even though it is
     not projected. *)
  let rec find_agg = function
    | Lplan.Aggregate { aggs; _ } -> List.length aggs
    | Lplan.Project (_, i) | Lplan.Filter (_, i) | Lplan.Distinct i -> find_agg i
    | Lplan.Sort { input; _ } | Lplan.Limit { input; _ } -> find_agg input
    | _ -> -1
  in
  Alcotest.(check int) "agg present" 1 (find_agg p)

let test_order_by_forms () =
  (* By alias, by position, by hidden expression. *)
  ignore (bind "SELECT a AS x FROM t ORDER BY x");
  ignore (bind "SELECT a FROM t ORDER BY 1 DESC");
  let p = bind "SELECT a FROM t ORDER BY f + 1" in
  let s = Lplan.schema_of p in
  (* The hidden sort key must not leak into the output schema. *)
  Alcotest.(check (list string)) "hidden dropped" [ "a" ] (col_names s);
  expect_error "SELECT a FROM t ORDER BY 3";
  expect_error ~needle:"DISTINCT" "SELECT DISTINCT a FROM t ORDER BY f"

let test_order_by_agg_query () =
  ignore (bind "SELECT b, sum(a) AS s FROM t GROUP BY b ORDER BY s DESC");
  ignore (bind "SELECT b, sum(a) FROM t GROUP BY b ORDER BY sum(a)")

let test_subquery_binding () =
  let s = schema_of "SELECT sub.x FROM (SELECT a AS x FROM t) sub WHERE sub.x > 1" in
  Alcotest.(check (list string)) "names" [ "x" ] (col_names s);
  expect_error "SELECT a FROM (SELECT a AS x FROM t) sub"

let test_params () =
  let p = bind "SELECT a FROM t WHERE a = $1" in
  Alcotest.(check int) "binds" 1 (Schema.arity (Lplan.schema_of p));
  expect_error ~needle:"parameter" "SELECT a FROM t WHERE a = $2"

let test_udf_binding () =
  let s = schema_of "SELECT length(b), sqrt(a), year(d) FROM t" in
  Alcotest.(check bool) "length int" true ((Schema.column s 0).Schema.dtype = Value.Int_t);
  (* sqrt(INT) resolves via Int->Float widening. *)
  Alcotest.(check bool) "sqrt float" true ((Schema.column s 1).Schema.dtype = Value.Float_t);
  expect_error ~needle:"no function" "SELECT frobnicate(a) FROM t";
  expect_error ~needle:"no function" "SELECT length(a) FROM t"

let test_select_without_from () =
  let s = schema_of "SELECT 1 + 2 AS x, 'hi' AS s" in
  Alcotest.(check (list string)) "names" [ "x"; "s" ] (col_names s)

let test_null_literal_adapts () =
  ignore (bind "SELECT a FROM t WHERE a = NULL");
  ignore (bind "SELECT a FROM t WHERE b = NULL");
  let s = schema_of "SELECT CASE WHEN a > 0 THEN f ELSE NULL END FROM t" in
  Alcotest.(check bool) "case type" true ((Schema.column s 0).Schema.dtype = Value.Float_t)

let test_count_distinct () =
  let s = schema_of "SELECT count(DISTINCT b) FROM t" in
  Alcotest.(check int) "arity" 1 (Schema.arity s)

let () =
  Alcotest.run "binder"
    [
      ( "resolution",
        [
          Alcotest.test_case "simple" `Quick test_simple_select;
          Alcotest.test_case "star" `Quick test_star_expansion;
          Alcotest.test_case "join star" `Quick test_join_star_qualified;
          Alcotest.test_case "self join" `Quick test_alias_and_self_join;
          Alcotest.test_case "unknown/ambiguous" `Quick test_unknown_and_ambiguous;
          Alcotest.test_case "subquery" `Quick test_subquery_binding;
          Alcotest.test_case "no FROM" `Quick test_select_without_from;
        ] );
      ( "typing",
        [
          Alcotest.test_case "type errors" `Quick test_type_errors;
          Alcotest.test_case "coercion" `Quick test_numeric_coercion;
          Alcotest.test_case "date arith" `Quick test_date_arith_types;
          Alcotest.test_case "null adapts" `Quick test_null_literal_adapts;
          Alcotest.test_case "params" `Quick test_params;
          Alcotest.test_case "udfs" `Quick test_udf_binding;
        ] );
      ( "aggregation",
        [
          Alcotest.test_case "output schema" `Quick test_aggregate_output;
          Alcotest.test_case "rules" `Quick test_aggregate_rules;
          Alcotest.test_case "having" `Quick test_having_aggregate;
          Alcotest.test_case "count distinct" `Quick test_count_distinct;
        ] );
      ( "order by",
        [
          Alcotest.test_case "forms" `Quick test_order_by_forms;
          Alcotest.test_case "with aggregates" `Quick test_order_by_agg_query;
        ] );
    ]
