(* Expression semantics and compilation-tier agreement (E1's correctness
   side): the tree interpreter, the closure compiler and the bytecode VM
   must agree on every expression. *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema
module Bexpr = Quill_plan.Bexpr
module Ec = Quill_compile.Expr_compile
module Vm = Quill_compile.Expr_vm

let lit v dt = { Bexpr.node = Bexpr.Lit v; dtype = dt }
let int_l i = lit (Value.Int i) Value.Int_t
let bool_l b = lit (Value.Bool b) Value.Bool_t
let null_l dt = lit Value.Null dt
let col i dt = { Bexpr.node = Bexpr.Col i; dtype = dt }

let arith op a b dt = { Bexpr.node = Bexpr.Arith (op, a, b); dtype = dt }
let cmp op a b = { Bexpr.node = Bexpr.Cmp (op, a, b); dtype = Value.Bool_t }
let band a b = { Bexpr.node = Bexpr.And (a, b); dtype = Value.Bool_t }
let bor a b = { Bexpr.node = Bexpr.Or (a, b); dtype = Value.Bool_t }
let bnot a = { Bexpr.node = Bexpr.Not a; dtype = Value.Bool_t }

let eval ?(row = [||]) ?(params = [||]) e = Bexpr.eval ~row ~params e

let check_v = Alcotest.check Tutil.value_testable

let test_arith_basics () =
  check_v "add" (Value.Int 7) (eval (arith Bexpr.Add (int_l 3) (int_l 4) Value.Int_t));
  check_v "mixed float" (Value.Float 4.5)
    (eval
       (arith Bexpr.Add (int_l 4)
          (lit (Value.Float 0.5) Value.Float_t)
          Value.Float_t));
  check_v "mod" (Value.Int 2) (eval (arith Bexpr.Mod (int_l 17) (int_l 5) Value.Int_t));
  check_v "null propagates" Value.Null
    (eval (arith Bexpr.Add (int_l 1) (null_l Value.Int_t) Value.Int_t))

let test_division () =
  check_v "int div" (Value.Int 3) (eval (arith Bexpr.Div (int_l 7) (int_l 2) Value.Int_t));
  Alcotest.check_raises "div by zero" (Bexpr.Eval_error "division by zero") (fun () ->
      ignore (eval (arith Bexpr.Div (int_l 1) (int_l 0) Value.Int_t)))

let test_date_arith () =
  let d = lit (Value.Date 100) Value.Date_t in
  check_v "date+int" (Value.Date 107) (eval (arith Bexpr.Add d (int_l 7) Value.Date_t));
  check_v "date-date" (Value.Int 93)
    (eval (arith Bexpr.Sub d (lit (Value.Date 7) Value.Date_t) Value.Int_t))

let test_three_valued_logic () =
  let n = null_l Value.Bool_t in
  let t = bool_l true and f = bool_l false in
  (* Kleene tables. *)
  check_v "T and N" Value.Null (eval (band t n));
  check_v "F and N" (Value.Bool false) (eval (band f n));
  check_v "N and F" (Value.Bool false) (eval (band n f));
  check_v "T or N" (Value.Bool true) (eval (bor t n));
  check_v "N or T" (Value.Bool true) (eval (bor n t));
  check_v "F or N" Value.Null (eval (bor f n));
  check_v "not N" Value.Null (eval (bnot n));
  check_v "cmp null" Value.Null (eval (cmp Bexpr.Eq (int_l 1) (null_l Value.Int_t)))

let test_like () =
  let like s p = eval { Bexpr.node = Bexpr.Like (lit (Value.Str s) Value.Str_t, p);
                        dtype = Value.Bool_t } in
  check_v "exact" (Value.Bool true) (like "hello" "hello");
  check_v "prefix" (Value.Bool true) (like "hello" "he%");
  check_v "suffix" (Value.Bool true) (like "hello" "%llo");
  check_v "contains" (Value.Bool true) (like "hello" "%ell%");
  check_v "underscore" (Value.Bool true) (like "hello" "h_llo");
  check_v "no match" (Value.Bool false) (like "hello" "h_llq");
  check_v "multi pct" (Value.Bool true) (like "abcde" "a%c%e");
  check_v "empty pattern" (Value.Bool false) (like "x" "");
  check_v "pct only" (Value.Bool true) (like "" "%");
  check_v "tricky backtrack" (Value.Bool true) (like "aaab" "%ab");
  check_v "null subject" Value.Null
    (eval { Bexpr.node = Bexpr.Like (null_l Value.Str_t, "x%"); dtype = Value.Bool_t })

let test_in_list () =
  let in_ e items = eval { Bexpr.node = Bexpr.In_list (e, items); dtype = Value.Bool_t } in
  check_v "hit" (Value.Bool true) (in_ (int_l 2) [ int_l 1; int_l 2 ]);
  check_v "miss" (Value.Bool false) (in_ (int_l 3) [ int_l 1; int_l 2 ]);
  check_v "miss with null" Value.Null (in_ (int_l 3) [ int_l 1; null_l Value.Int_t ]);
  check_v "hit beats null" (Value.Bool true) (in_ (int_l 1) [ null_l Value.Int_t; int_l 1 ]);
  check_v "null subject" Value.Null (in_ (null_l Value.Int_t) [ int_l 1 ])

let test_case () =
  let c =
    { Bexpr.node =
        Bexpr.Case
          ( [ (cmp Bexpr.Gt (col 0 Value.Int_t) (int_l 10), int_l 1);
              (cmp Bexpr.Gt (col 0 Value.Int_t) (int_l 5), int_l 2) ],
            Some (int_l 3) );
      dtype = Value.Int_t }
  in
  check_v "first" (Value.Int 1) (eval ~row:[| Value.Int 20 |] c);
  check_v "second" (Value.Int 2) (eval ~row:[| Value.Int 7 |] c);
  check_v "else" (Value.Int 3) (eval ~row:[| Value.Int 1 |] c);
  check_v "null cond -> else" (Value.Int 3) (eval ~row:[| Value.Null |] c);
  let no_else =
    { Bexpr.node = Bexpr.Case ([ (bool_l false, int_l 1) ], None); dtype = Value.Int_t }
  in
  check_v "no else" Value.Null (eval no_else)

let test_cast () =
  let cast v dt target = eval { Bexpr.node = Bexpr.Cast (lit v dt, target); dtype = target } in
  check_v "int->float" (Value.Float 3.0) (cast (Value.Int 3) Value.Int_t Value.Float_t);
  check_v "float->int" (Value.Int 3) (cast (Value.Float 3.7) Value.Float_t Value.Int_t);
  check_v "str->int" (Value.Int 42) (cast (Value.Str "42") Value.Str_t Value.Int_t);
  check_v "int->str" (Value.Str "7") (cast (Value.Int 7) Value.Int_t Value.Str_t);
  check_v "null" Value.Null (cast Value.Null Value.Int_t Value.Str_t);
  Alcotest.(check bool) "bad cast raises" true
    (try
       ignore (cast (Value.Str "zz") Value.Str_t Value.Int_t);
       false
     with Bexpr.Eval_error _ -> true)

let test_is_null () =
  check_v "null is null" (Value.Bool true)
    (eval { Bexpr.node = Bexpr.Is_null (false, null_l Value.Int_t); dtype = Value.Bool_t });
  check_v "1 is not null" (Value.Bool true)
    (eval { Bexpr.node = Bexpr.Is_null (true, int_l 1); dtype = Value.Bool_t })

let test_short_circuit () =
  (* false AND (1/0 = 1) must not raise. *)
  let div0 = cmp Bexpr.Eq (arith Bexpr.Div (int_l 1) (int_l 0) Value.Int_t) (int_l 1) in
  check_v "and short" (Value.Bool false) (eval (band (bool_l false) div0));
  check_v "or short" (Value.Bool true) (eval (bor (bool_l true) div0));
  (* All tiers must short-circuit identically. *)
  let e = band (bool_l false) div0 in
  check_v "closure short" (Value.Bool false) (Ec.compile e [||] [||]);
  check_v "vm short" (Value.Bool false) (Vm.run (Vm.compile e) ~params:[||] ~row:[||])

let test_eval_pred () =
  Alcotest.(check bool) "null is false" false
    (Bexpr.eval_pred ~row:[||] ~params:[||] (null_l Value.Bool_t));
  Alcotest.(check bool) "true" true (Bexpr.eval_pred ~row:[||] ~params:[||] (bool_l true))

(* --- Tier agreement properties ----------------------------------------- *)

let tiers_agree schema =
  QCheck2.Gen.(
    let* e = Tutil.bexpr_gen schema in
    let* row = Tutil.row_gen schema in
    pure (e, row))

let prop_tiers_agree =
  let schema =
    Schema.create
      [ Schema.col "i1" Value.Int_t; Schema.col "i2" Value.Int_t;
        Schema.col "f1" Value.Float_t; Schema.col "s1" Value.Str_t;
        Schema.col "b1" Value.Bool_t; Schema.col "d1" Value.Date_t ]
  in
  Tutil.qtest ~count:1000 "interp = closure = VM on random expressions"
    (tiers_agree schema)
    (fun (e, row) ->
      let reference = Bexpr.eval ~row ~params:[||] e in
      let closure = Ec.compile e [||] row in
      let vm = Vm.run (Vm.compile e) ~params:[||] ~row in
      if not (Value.equal reference closure) then
        QCheck2.Test.fail_reportf "closure disagrees on %s over %s: %s vs %s"
          (Bexpr.to_string e) (Tutil.row_to_string row)
          (Value.to_string reference) (Value.to_string closure)
      else if not (Value.equal reference vm) then
        QCheck2.Test.fail_reportf "vm disagrees on %s over %s: %s vs %s"
          (Bexpr.to_string e) (Tutil.row_to_string row)
          (Value.to_string reference) (Value.to_string vm)
      else true)

let prop_like_specializations =
  (* The closure compiler specializes exact/prefix/contains patterns; they
     must match the generic matcher. *)
  Tutil.qtest ~count:500 "specialized LIKE = generic LIKE"
    QCheck2.Gen.(
      let str = string_size ~gen:(char_range 'a' 'c') (int_range 0 8) in
      let* s = str in
      let* base = str in
      let* shape = oneofl [ `Exact; `Prefix; `Contains; `Generic ] in
      let pattern =
        match shape with
        | `Exact -> base
        | `Prefix -> base ^ "%"
        | `Contains -> "%" ^ base ^ "%"
        | `Generic -> "a%" ^ base ^ "_c"
      in
      pure (s, pattern))
    (fun (s, pattern) ->
      let e =
        { Bexpr.node = Bexpr.Like (lit (Value.Str s) Value.Str_t, pattern);
          dtype = Value.Bool_t }
      in
      Value.equal (Bexpr.eval ~row:[||] ~params:[||] e) (Ec.compile e [||] [||]))

let prop_fold_constants_preserves =
  let schema = Schema.create [ Schema.col "i1" Value.Int_t; Schema.col "b1" Value.Bool_t ] in
  Tutil.qtest ~count:500 "constant folding preserves evaluation"
    (tiers_agree schema)
    (fun (e, row) ->
      let folded = Quill_optimizer.Rewrite.fold_constants e in
      Value.equal (Bexpr.eval ~row ~params:[||] e) (Bexpr.eval ~row ~params:[||] folded))

let () =
  Alcotest.run "expr"
    [
      ( "semantics",
        [
          Alcotest.test_case "arith" `Quick test_arith_basics;
          Alcotest.test_case "division" `Quick test_division;
          Alcotest.test_case "dates" `Quick test_date_arith;
          Alcotest.test_case "3VL" `Quick test_three_valued_logic;
          Alcotest.test_case "like" `Quick test_like;
          Alcotest.test_case "in" `Quick test_in_list;
          Alcotest.test_case "case" `Quick test_case;
          Alcotest.test_case "cast" `Quick test_cast;
          Alcotest.test_case "is null" `Quick test_is_null;
          Alcotest.test_case "short circuit" `Quick test_short_circuit;
          Alcotest.test_case "eval_pred" `Quick test_eval_pred;
        ] );
      ( "tiers",
        [ prop_tiers_agree; prop_like_specializations; prop_fold_constants_preserves ] );
    ]
