(* Optimizer tests: rewrites preserve semantics, join ordering improves
   plans without changing results, the picker obeys its cost model and
   force options, and fusions fire where expected. *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema
module Table = Quill_storage.Table
module Catalog = Quill_storage.Catalog
module Parser = Quill_sql.Parser
module Ast = Quill_sql.Ast
module Binder = Quill_plan.Binder
module Lplan = Quill_plan.Lplan
module Bexpr = Quill_plan.Bexpr
module Rewrite = Quill_optimizer.Rewrite
module Join_order = Quill_optimizer.Join_order
module Card = Quill_optimizer.Card
module Picker = Quill_optimizer.Picker
module Physical = Quill_optimizer.Physical
module Table_stats = Quill_stats.Table_stats

let db_and_env () =
  let db = Tutil.random_db ~seed:31 ~rows:400 in
  let env =
    Card.make_env (Quill.Db.catalog db) (Table_stats.Registry.create ())
  in
  (db, env)

let bind db sql =
  match Parser.parse sql with
  | Ast.Select s ->
      Binder.bind_select
        (Binder.mk_env ~catalog:(Quill.Db.catalog db) ~udfs:(Quill_plan.Udf.builtins ())
           ~param_types:[||] ())
        s
  | _ -> Alcotest.fail "not a select"

let run_lplan db plan =
  (* Execute a logical plan by converting it trivially (no reordering). *)
  let env = Card.make_env (Quill.Db.catalog db) (Table_stats.Registry.create ()) in
  let pp = Picker.to_physical env plan in
  Quill_exec.Volcano.run (Quill_exec.Exec_ctx.create (Quill.Db.catalog db)) pp

(* Structure inspection helpers. *)
let rec count_filters = function
  | Lplan.Filter (_, i) -> 1 + count_filters i
  | Lplan.Scan _ | Lplan.One_row -> 0
  | Lplan.Project (_, i) | Lplan.Distinct i -> count_filters i
  | Lplan.Join { left; right; _ } -> count_filters left + count_filters right
  | Lplan.Aggregate { input; _ } | Lplan.Window { input; _ } | Lplan.Sort { input; _ }
  | Lplan.Limit { input; _ } ->
      count_filters input

let rec max_depth_joins = function
  | Lplan.Join _ -> 1
  | Lplan.Filter (_, i) | Lplan.Project (_, i) | Lplan.Distinct i -> max_depth_joins i
  | Lplan.Aggregate { input; _ } | Lplan.Window { input; _ } | Lplan.Sort { input; _ }
  | Lplan.Limit { input; _ } ->
      max_depth_joins input
  | _ -> 0

let test_pushdown_preserves_results () =
  let db, _ = db_and_env () in
  List.iter
    (fun sql ->
      let plan = bind db sql in
      let a = run_lplan db plan in
      let b = run_lplan db (Rewrite.rewrite plan) in
      Tutil.check_same_unordered sql a b)
    [ "SELECT r.id FROM r, s WHERE r.id = s.id AND r.v > 40.0 AND s.w < 70";
      "SELECT r.id FROM r, s WHERE r.k = s.k AND r.k IS NOT NULL";
      "SELECT id FROM r WHERE 1 = 1 AND v > 10.0";
      "SELECT tag, count(*) FROM r GROUP BY tag HAVING tag LIKE 'a%'";
      "SELECT id FROM r WHERE k > 2 ORDER BY id LIMIT 5" ]

let test_pushdown_sinks_into_scans () =
  let db, _ = db_and_env () in
  let plan = bind db "SELECT r.id FROM r, s WHERE r.id = s.id AND r.v > 40.0 AND s.w < 70" in
  let rewritten = Rewrite.rewrite plan in
  (* After pushdown, single-table predicates sit on the scans: the only
     remaining predicates above a join are join conditions inside the Join
     node, so no Filter sits above the Join. *)
  let rec no_filter_above_join = function
    | Lplan.Filter (_, i) -> max_depth_joins i = 0 && no_filter_above_join i
    | Lplan.Join { left; right; cond; _ } ->
        cond <> None && no_filter_above_join left && no_filter_above_join right
    | Lplan.Project (_, i) | Lplan.Distinct i -> no_filter_above_join i
    | Lplan.Aggregate { input; _ } | Lplan.Window { input; _ } | Lplan.Sort { input; _ }
    | Lplan.Limit { input; _ } ->
        no_filter_above_join input
    | Lplan.Scan _ | Lplan.One_row -> true
  in
  Alcotest.(check bool) "predicates sank" true (no_filter_above_join rewritten);
  Alcotest.(check int) "two scan filters" 2 (count_filters rewritten)

let test_pushdown_stops_at_limit () =
  let db, _ = db_and_env () in
  (* A filter above LIMIT must not sink below it. *)
  let plan =
    bind db "SELECT sub.id FROM (SELECT id FROM r ORDER BY id LIMIT 10) sub WHERE sub.id > 3"
  in
  let a = run_lplan db plan in
  let b = run_lplan db (Rewrite.rewrite plan) in
  Tutil.check_same_unordered "limit barrier" a b;
  Alcotest.(check bool) "row count <= 10" true (Array.length b <= 10)

let test_constant_folding_in_plan () =
  let db, _ = db_and_env () in
  let plan = bind db "SELECT id FROM r WHERE k > 1 + 2 * 3" in
  let rewritten = Rewrite.rewrite plan in
  let rec scan_filter = function
    | Lplan.Filter (e, Lplan.Scan _) -> Some e
    | Lplan.Project (_, i) -> scan_filter i
    | Lplan.Filter (_, i) | Lplan.Distinct i -> scan_filter i
    | _ -> None
  in
  match scan_filter rewritten with
  | Some { Bexpr.node = Bexpr.Cmp (Bexpr.Gt, _, { Bexpr.node = Bexpr.Lit (Value.Int 7); _ }); _ } ->
      ()
  | Some e -> Alcotest.failf "not folded: %s" (Bexpr.to_string e)
  | None -> Alcotest.fail "no scan filter found"

let test_join_reorder_preserves () =
  let db = Quill.Db.create () in
  Quill_workload.Tpch.load (Quill.Db.catalog db) ~sf:0.002 ~seed:3;
  let env = Card.make_env (Quill.Db.catalog db) (Table_stats.Registry.create ()) in
  List.iter
    (fun sql ->
      let plan = Rewrite.rewrite (bind db sql) in
      let a = run_lplan db plan in
      let b = run_lplan db (Join_order.reorder env plan) in
      Tutil.check_same_unordered sql a b)
    [ Quill_workload.Tpch.q3; Quill_workload.Tpch.q5 ]

let test_join_reorder_puts_small_first () =
  (* lineitem x region-filtered chain: the reordered plan must not start
     by joining the two largest relations when a selective one exists. *)
  let db = Quill.Db.create () in
  Quill_workload.Tpch.load (Quill.Db.catalog db) ~sf:0.002 ~seed:3;
  let env = Card.make_env (Quill.Db.catalog db) (Table_stats.Registry.create ()) in
  let plan = Rewrite.rewrite (bind db Quill_workload.Tpch.q5) in
  let reordered = Join_order.reorder env plan in
  (* DP minimizes cumulative intermediate cardinality, which is correlated
     with but not identical to the picker's cost; allow slack, but a bad
     ordering (joining the two biggest relations first) would be an order
     of magnitude off. *)
  let cost p = (Physical.info_of (Picker.to_physical env p)).Physical.est_cost in
  Alcotest.(check bool) "reorder not blown up" true (cost reordered <= cost plan *. 2.0)

let test_dp_beats_worst_order () =
  (* Star query where the syntactic order is pathological: DP must produce
     a cheaper plan (cumulative intermediate size). *)
  let db = Quill.Db.create () in
  let cat = Quill.Db.catalog db in
  let fact = Quill_workload.Micro.ints_table ~name:"fact" ~rows:5000 ~cols:3 ~seed:1 () in
  Catalog.add cat fact;
  List.iteri
    (fun i name ->
      Catalog.add cat (Quill_workload.Micro.ints_table ~name ~rows:(50 * (i + 1)) ~cols:2 ~seed:(i + 2) ()))
    [ "dim1"; "dim2"; "dim3" ];
  let sql =
    "SELECT fact.c0 FROM dim1, dim2, dim3, fact \
     WHERE fact.c1 = dim1.c0 AND fact.c2 = dim2.c0 AND fact.c0 = dim3.c0 \
     AND dim3.c1 < 10"
  in
  let env = Card.make_env cat (Table_stats.Registry.create ()) in
  let plan = Rewrite.rewrite (bind db sql) in
  let reordered = Join_order.reorder env plan in
  let a = run_lplan db plan in
  let b = run_lplan db reordered in
  Tutil.check_same_unordered "dp result" a b;
  (* And the picked physical plan estimates must be cheaper or equal. *)
  let cost p = (Physical.info_of (Picker.to_physical env p)).Physical.est_cost in
  Alcotest.(check bool) "dp cheaper" true (cost reordered <= cost plan)

let test_picker_force_options () =
  let db, env = db_and_env () in
  let plan = Rewrite.rewrite (bind db "SELECT r.id FROM r, s WHERE r.id = s.id") in
  let find_join_algo options =
    let rec go = function
      | Physical.Join { algo; _ } -> Some algo
      | Physical.Project (_, i, _) | Physical.Filter (_, i, _) | Physical.Distinct (i, _) -> go i
      | Physical.Aggregate { input; _ } | Physical.Sort { input; _ }
      | Physical.Top_k { input; _ } | Physical.Limit { input; _ } ->
          go input
      | _ -> None
    in
    go (Picker.to_physical ~options env plan)
  in
  List.iter
    (fun a ->
      Alcotest.(check bool) (Physical.join_algo_name a) true
        (find_join_algo { Picker.default_options with Picker.force_join = Some a } = Some a))
    [ Physical.Hash_join; Physical.Merge_join; Physical.Block_nl ];
  (* Default pick for a large equi join is hash. *)
  Alcotest.(check bool) "default is hash" true
    (find_join_algo Picker.default_options = Some Physical.Hash_join)

let test_picker_cross_join_is_nl () =
  let db, env = db_and_env () in
  let plan = Rewrite.rewrite (bind db "SELECT r.id FROM r, s") in
  let rec go = function
    | Physical.Join { algo; keys; _ } ->
        Alcotest.(check bool) "nl" true (algo = Physical.Block_nl && keys = [])
    | Physical.Project (_, i, _) | Physical.Filter (_, i, _) -> go i
    | _ -> Alcotest.fail "no join found"
  in
  go (Picker.to_physical env plan)

let test_topk_fusion_fires () =
  let db, env = db_and_env () in
  let plan = Rewrite.rewrite (bind db "SELECT id FROM r ORDER BY id LIMIT 5") in
  let rec has_topk = function
    | Physical.Top_k _ -> true
    | Physical.Project (_, i, _) | Physical.Filter (_, i, _) | Physical.Distinct (i, _) ->
        has_topk i
    | Physical.Aggregate { input; _ } | Physical.Sort { input; _ }
    | Physical.Limit { input; _ } ->
        has_topk input
    | _ -> false
  in
  Alcotest.(check bool) "fused" true (has_topk (Picker.to_physical env plan));
  Alcotest.(check bool) "disabled" false
    (has_topk
       (Picker.to_physical
          ~options:{ Picker.default_options with Picker.enable_topk = false }
          env plan))

let test_filter_fused_into_scan () =
  let db, env = db_and_env () in
  let plan = Rewrite.rewrite (bind db "SELECT id FROM r WHERE k > 5") in
  let rec scan_has_filter = function
    | Physical.Scan { filter; _ } -> filter <> None
    | Physical.Project (_, i, _) | Physical.Filter (_, i, _) -> scan_has_filter i
    | _ -> false
  in
  Alcotest.(check bool) "fused" true (scan_has_filter (Picker.to_physical env plan))

let test_card_estimates_reasonable () =
  let db = Quill.Db.create () in
  Quill_workload.Tpch.load (Quill.Db.catalog db) ~sf:0.002 ~seed:3;
  let env = Card.make_env (Quill.Db.catalog db) (Table_stats.Registry.create ()) in
  let plan = Rewrite.rewrite (bind db Quill_workload.Tpch.q6) in
  let est = (Card.derive env plan).Card.rows in
  let actual = Float.of_int (Array.length (run_lplan db plan)) in
  ignore actual;
  (* Q6 aggregates to one row; the estimate must be small. *)
  Alcotest.(check bool) "agg estimate" true (est >= 1.0 && est <= 2.0)

let test_scan_layout_choice () =
  (* Narrow read of a wide table favors columnar; reading all columns of a
     narrow table can go either way but must not crash. *)
  let db = Quill.Db.create () in
  let cat = Quill.Db.catalog db in
  Catalog.add cat (Quill_workload.Micro.wide_table ~rows:2000 ~cols:16 ~seed:5 ());
  let env = Card.make_env cat (Table_stats.Registry.create ()) in
  let plan = Rewrite.rewrite (bind db "SELECT c0 FROM wide WHERE c1 > 100") in
  let rec layout = function
    | Physical.Scan { layout = l; _ } -> Some l
    | Physical.Project (_, i, _) | Physical.Filter (_, i, _) -> layout i
    | _ -> None
  in
  Alcotest.(check bool) "columnar for narrow read" true
    (layout (Picker.to_physical env plan) = Some Physical.Col_layout)

let () =
  Alcotest.run "optimizer"
    [
      ( "rewrite",
        [
          Alcotest.test_case "pushdown preserves" `Quick test_pushdown_preserves_results;
          Alcotest.test_case "pushdown sinks" `Quick test_pushdown_sinks_into_scans;
          Alcotest.test_case "limit barrier" `Quick test_pushdown_stops_at_limit;
          Alcotest.test_case "constant folding" `Quick test_constant_folding_in_plan;
        ] );
      ( "join order",
        [
          Alcotest.test_case "preserves results" `Quick test_join_reorder_preserves;
          Alcotest.test_case "estimates stable" `Quick test_join_reorder_puts_small_first;
          Alcotest.test_case "dp beats worst order" `Quick test_dp_beats_worst_order;
        ] );
      ( "picker",
        [
          Alcotest.test_case "force options" `Quick test_picker_force_options;
          Alcotest.test_case "cross join nl" `Quick test_picker_cross_join_is_nl;
          Alcotest.test_case "topk fusion" `Quick test_topk_fusion_fires;
          Alcotest.test_case "scan filter fusion" `Quick test_filter_fused_into_scan;
          Alcotest.test_case "cardinality sanity" `Quick test_card_estimates_reasonable;
          Alcotest.test_case "layout choice" `Quick test_scan_layout_choice;
        ] );
    ]
