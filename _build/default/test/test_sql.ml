(* Lexer and parser tests, including a print/re-parse property. *)

module Value = Quill_storage.Value
module Lexer = Quill_sql.Lexer
module Parser = Quill_sql.Parser
module Ast = Quill_sql.Ast

let tok s = Lexer.tokenize s

let test_lexer_basic () =
  Alcotest.(check int) "token count" 5 (List.length (tok "SELECT a FROM t"));
  (match tok "sElEcT" with
  | [ Lexer.Keyword "SELECT"; Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "keywords are case-insensitive");
  (match tok "FooBar" with
  | [ Lexer.Ident "foobar"; Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "idents lowercased");
  match tok "'it''s'" with
  | [ Lexer.Str_lit "it's"; Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "quote escaping"

let test_lexer_numbers () =
  (match tok "42 4.5 1e3 2.5e-2" with
  | [ Lexer.Int_lit 42; Lexer.Float_lit 4.5; Lexer.Float_lit 1000.0;
      Lexer.Float_lit 0.025; Lexer.Eof ] ->
      ()
  | _ -> Alcotest.fail "number forms");
  match tok "a<=b<>c!=d" with
  | [ Lexer.Ident "a"; Lexer.Punct "<="; Lexer.Ident "b"; Lexer.Punct "<>";
      Lexer.Ident "c"; Lexer.Punct "<>"; Lexer.Ident "d"; Lexer.Eof ] ->
      ()
  | _ -> Alcotest.fail "two-char puncts"

let test_lexer_comments () =
  match tok "SELECT -- comment here\n 1" with
  | [ Lexer.Keyword "SELECT"; Lexer.Int_lit 1; Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "line comment skipped"

let test_lexer_errors () =
  Alcotest.(check bool) "unterminated string" true
    (try
       ignore (tok "'oops");
       false
     with Lexer.Lex_error _ -> true);
  Alcotest.(check bool) "bad char" true
    (try
       ignore (tok "a # b");
       false
     with Lexer.Lex_error _ -> true)

let test_parse_precedence () =
  (* a + b * c parses as a + (b*c); comparison binds below arithmetic;
     AND binds below comparison; OR below AND. *)
  match Parser.parse_expr "1 + 2 * 3 < 4 AND true OR false" with
  | Ast.Binary
      ( Ast.Or,
        Ast.Binary
          ( Ast.And,
            Ast.Binary
              (Ast.Lt, Ast.Binary (Ast.Add, _, Ast.Binary (Ast.Mul, _, _)), _),
            Ast.Lit (Value.Bool true) ),
        Ast.Lit (Value.Bool false) ) ->
      ()
  | e -> Alcotest.failf "unexpected parse: %s" (Ast.expr_to_string e)

let test_parse_not_between_in () =
  (match Parser.parse_expr "a NOT BETWEEN 1 AND 2" with
  | Ast.Unary (Ast.Not, Ast.Between (Ast.Col "a", _, _)) -> ()
  | _ -> Alcotest.fail "not between");
  (match Parser.parse_expr "a NOT IN (1, 2)" with
  | Ast.Unary (Ast.Not, Ast.In_list (_, [ _; _ ])) -> ()
  | _ -> Alcotest.fail "not in");
  match Parser.parse_expr "a IS NOT NULL" with
  | Ast.Is_null { negated = true; _ } -> ()
  | _ -> Alcotest.fail "is not null"

let test_parse_case_cast_date () =
  (match Parser.parse_expr "CASE WHEN a > 1 THEN 'x' ELSE 'y' END" with
  | Ast.Case ([ _ ], Some _) -> ()
  | _ -> Alcotest.fail "case");
  (match Parser.parse_expr "CAST(a AS FLOAT)" with
  | Ast.Cast (_, Value.Float_t) -> ()
  | _ -> Alcotest.fail "cast");
  match Parser.parse_expr "DATE '1995-03-15'" with
  | Ast.Lit (Value.Date _) -> ()
  | _ -> Alcotest.fail "date literal"

let test_parse_select_clauses () =
  match Parser.parse
          "SELECT DISTINCT a, b AS bb, count(*) FROM t1 JOIN t2 ON t1.x = t2.y, t3 \
           WHERE a > 1 GROUP BY a, b HAVING count(*) > 2 ORDER BY bb DESC, 1 \
           LIMIT 10 OFFSET 5;"
  with
  | Ast.Select s ->
      Alcotest.(check bool) "distinct" true s.Ast.distinct;
      Alcotest.(check int) "items" 3 (List.length s.Ast.items);
      Alcotest.(check int) "group" 2 (List.length s.Ast.group_by);
      Alcotest.(check bool) "having" true (s.Ast.having <> None);
      Alcotest.(check int) "order" 2 (List.length s.Ast.order_by);
      Alcotest.(check (option int)) "limit" (Some 10) s.Ast.limit;
      Alcotest.(check (option int)) "offset" (Some 5) s.Ast.offset;
      (match s.Ast.from with
      | Some
          (Ast.Join
            (Ast.Inner, Ast.Join (Ast.Inner, _, _, Some _), Ast.Table_ref ("t3", None), None)) ->
          ()
      | _ -> Alcotest.fail "from shape")
  | _ -> Alcotest.fail "not a select"

let test_parse_subquery () =
  match Parser.parse "SELECT x FROM (SELECT a AS x FROM t) sub" with
  | Ast.Select { Ast.from = Some (Ast.Sub (_, "sub")); _ } -> ()
  | _ -> Alcotest.fail "subquery in FROM"

let test_parse_star_variants () =
  (match Parser.parse "SELECT * FROM t" with
  | Ast.Select { Ast.items = [ Ast.Star ]; _ } -> ()
  | _ -> Alcotest.fail "star");
  match Parser.parse "SELECT count(*) FROM t" with
  | Ast.Select { Ast.items = [ Ast.Item (Ast.Agg { arg = None; _ }, None) ]; _ } -> ()
  | _ -> Alcotest.fail "count star"

let test_parse_ddl_dml () =
  (match Parser.parse "CREATE TABLE t (a INT NOT NULL, b VARCHAR(10), c DATE)" with
  | Ast.Create_table ("t", [ ("a", Value.Int_t, false); ("b", Value.Str_t, true);
                             ("c", Value.Date_t, true) ]) ->
      ()
  | _ -> Alcotest.fail "create table");
  (match Parser.parse "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')" with
  | Ast.Insert ("t", Some [ "a"; "b" ], [ _; _ ]) -> ()
  | _ -> Alcotest.fail "insert");
  (match Parser.parse "COPY t FROM '/tmp/x.csv'" with
  | Ast.Copy ("t", "/tmp/x.csv") -> ()
  | _ -> Alcotest.fail "copy");
  (match Parser.parse "DROP TABLE t" with
  | Ast.Drop_table "t" -> ()
  | _ -> Alcotest.fail "drop");
  match Parser.parse "EXPLAIN ANALYZE SELECT 1" with
  | Ast.Explain { analyze = true; _ } -> ()
  | _ -> Alcotest.fail "explain"

let test_parse_window () =
  (match Parser.parse_expr "row_number() OVER (PARTITION BY a ORDER BY b DESC)" with
  | Ast.Winfun { kind = Ast.W_row_number; arg = None; partition = [ Ast.Col "a" ];
                 order = [ (Ast.Col "b", Ast.Desc) ] } ->
      ()
  | _ -> Alcotest.fail "row_number over");
  (match Parser.parse_expr "sum(x) OVER ()" with
  | Ast.Winfun { kind = Ast.W_agg Ast.Sum; arg = Some (Ast.Col "x"); partition = [];
                 order = [] } ->
      ()
  | _ -> Alcotest.fail "sum over");
  (match Parser.parse_expr "lag(x, 3) OVER (ORDER BY y)" with
  | Ast.Winfun { kind = Ast.W_lag 3; arg = Some (Ast.Col "x"); _ } -> ()
  | _ -> Alcotest.fail "lag offset");
  (match Parser.parse_expr "count(*) OVER (PARTITION BY a, b)" with
  | Ast.Winfun { kind = Ast.W_agg Ast.Count; arg = None; partition = [ _; _ ]; _ } -> ()
  | _ -> Alcotest.fail "count star over");
  (* Plain calls are unaffected. *)
  match Parser.parse_expr "sum(x)" with
  | Ast.Agg { kind = Ast.Sum; _ } -> ()
  | _ -> Alcotest.fail "plain agg"

let test_parse_subqueries () =
  (match Parser.parse_expr "a IN (SELECT b FROM t)" with
  | Ast.In_select (Ast.Col "a", _) -> ()
  | _ -> Alcotest.fail "in select");
  (match Parser.parse_expr "EXISTS (SELECT 1 FROM t)" with
  | Ast.Exists _ -> ()
  | _ -> Alcotest.fail "exists");
  (match Parser.parse_expr "(SELECT max(a) FROM t) + 1" with
  | Ast.Binary (Ast.Add, Ast.Scalar_sub _, _) -> ()
  | _ -> Alcotest.fail "scalar sub");
  (* A parenthesized expression is still just grouping. *)
  match Parser.parse_expr "(a + 1)" with
  | Ast.Binary (Ast.Add, Ast.Col "a", _) -> ()
  | _ -> Alcotest.fail "grouping"

let test_parse_dml_and_ctas () =
  (match Parser.parse "DELETE FROM t WHERE a > 3" with
  | Ast.Delete ("t", Some _) -> ()
  | _ -> Alcotest.fail "delete");
  (match Parser.parse "DELETE FROM t" with
  | Ast.Delete ("t", None) -> ()
  | _ -> Alcotest.fail "delete all");
  (match Parser.parse "UPDATE t SET a = a + 1, b = 'x' WHERE a < 2" with
  | Ast.Update ("t", [ ("a", _); ("b", _) ], Some _) -> ()
  | _ -> Alcotest.fail "update");
  (match Parser.parse "CREATE INDEX ON t (col)" with
  | Ast.Create_index ("t", "col") -> ()
  | _ -> Alcotest.fail "create index");
  (match Parser.parse "CREATE TABLE t2 AS SELECT a FROM t" with
  | Ast.Create_table_as ("t2", _) -> ()
  | _ -> Alcotest.fail "ctas");
  match Parser.parse "SELECT a FROM t LEFT OUTER JOIN u ON t.x = u.y" with
  | Ast.Select { Ast.from = Some (Ast.Join (Ast.Left_outer, _, _, Some _)); _ } -> ()
  | _ -> Alcotest.fail "left outer join"

let test_parse_params () =
  match Parser.parse_expr "$1 + $2" with
  | Ast.Binary (Ast.Add, Ast.Param 1, Ast.Param 2) -> ()
  | _ -> Alcotest.fail "params"

let test_parse_errors () =
  let bad = [ "SELECT"; "SELECT FROM t"; "SELECT a FROM"; "SELECT a b c";
              "SELECT a FROM t WHERE"; "SELECT a FROM t GROUP"; "FROB x";
              "SELECT a FROM t LIMIT x"; "INSERT INTO t"; "SELECT (a FROM t" ] in
  List.iter
    (fun sql ->
      Alcotest.(check bool) (Printf.sprintf "rejects %S" sql) true
        (try
           ignore (Parser.parse sql);
           false
         with Parser.Parse_error _ | Lexer.Lex_error _ -> true))
    bad

let test_trailing_input () =
  Alcotest.(check bool) "trailing" true
    (try
       ignore (Parser.parse "SELECT 1 SELECT 2");
       false
     with Parser.Parse_error _ -> true)

(* Random AST expressions printed by expr_to_string re-parse to the same
   tree (modulo Between desugaring printed form, which we avoid). *)
let ast_expr_gen =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [ map (fun i -> Ast.Lit (Value.Int i)) (int_range 0 100);
        map (fun b -> Ast.Lit (Value.Bool b)) bool;
        pure (Ast.Lit Value.Null);
        map (fun s -> Ast.Col s) (oneofl [ "a"; "b"; "t.c" ]);
        map (fun i -> Ast.Param i) (int_range 1 3) ]
  in
  let rec go depth =
    if depth = 0 then leaf
    else
      oneof
        [ leaf;
          (let* op =
             oneofl
               [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Eq; Ast.Lt; Ast.Ge;
                 Ast.And; Ast.Or ]
           in
           let* a = go (depth - 1) in
           let* b = go (depth - 1) in
           pure (Ast.Binary (op, a, b)));
          map (fun a -> Ast.Unary (Ast.Not, a)) (go (depth - 1));
          map (fun a -> Ast.Is_null { negated = false; arg = a }) (go (depth - 1));
          (let* a = go (depth - 1) in
           let* items = list_size (int_range 1 3) (go (depth - 1)) in
           pure (Ast.In_list (a, items)));
          map (fun a -> Ast.Cast (a, Value.Float_t)) (go (depth - 1)) ]
  in
  go 3

let prop_print_reparse =
  Tutil.qtest ~count:300 "expr_to_string re-parses to the same AST" ast_expr_gen
    (fun e ->
      let printed = Ast.expr_to_string e in
      match Parser.parse_expr printed with
      | e2 -> e2 = e
      | exception exn ->
          QCheck2.Test.fail_reportf "failed to reparse %S: %s" printed
            (Printexc.to_string exn))

let () =
  Alcotest.run "sql"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lexer_basic;
          Alcotest.test_case "numbers" `Quick test_lexer_numbers;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "not/between/in" `Quick test_parse_not_between_in;
          Alcotest.test_case "case/cast/date" `Quick test_parse_case_cast_date;
          Alcotest.test_case "select clauses" `Quick test_parse_select_clauses;
          Alcotest.test_case "subquery" `Quick test_parse_subquery;
          Alcotest.test_case "star" `Quick test_parse_star_variants;
          Alcotest.test_case "ddl/dml" `Quick test_parse_ddl_dml;
          Alcotest.test_case "params" `Quick test_parse_params;
          Alcotest.test_case "window syntax" `Quick test_parse_window;
          Alcotest.test_case "subquery syntax" `Quick test_parse_subqueries;
          Alcotest.test_case "dml/ctas syntax" `Quick test_parse_dml_and_ctas;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "trailing" `Quick test_trailing_input;
          prop_print_reparse;
        ] );
    ]
