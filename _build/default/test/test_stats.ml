(* Tests for statistics: histograms, HyperLogLog, table stats collection
   and selectivity estimation. *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema
module Table = Quill_storage.Table
module Catalog = Quill_storage.Catalog
module Histogram = Quill_stats.Histogram
module Hll = Quill_stats.Hll
module Table_stats = Quill_stats.Table_stats
module Estimate = Quill_stats.Estimate
module Bexpr = Quill_plan.Bexpr

let test_histogram_uniform () =
  let samples = Array.init 10000 (fun i -> Float.of_int i) in
  let h = Histogram.build samples in
  (* P(x < 2500) ~ 0.25 on uniform data. *)
  Alcotest.(check bool) "quartile" true
    (Float.abs (Histogram.selectivity_lt h 2500.0 -. 0.25) < 0.03);
  Alcotest.(check bool) "below min" true (Histogram.selectivity_lt h (-5.0) = 0.0);
  Alcotest.(check bool) "above max" true (Histogram.selectivity_lt h 1e9 = 1.0);
  Alcotest.(check bool) "range" true
    (Float.abs (Histogram.selectivity_range h ~lo:2000.0 ~hi:4000.0 () -. 0.2) < 0.03)

let test_histogram_skewed () =
  (* 90% of mass at 0..9, 10% spread to 1000. Equi-depth must still
     estimate P(x < 10) ~ 0.9. *)
  let rng = Quill_util.Rng.create 4 in
  let samples =
    Array.init 20000 (fun _ ->
        if Quill_util.Rng.int rng 10 < 9 then Float.of_int (Quill_util.Rng.int rng 10)
        else Float.of_int (Quill_util.Rng.int rng 1000))
  in
  let h = Histogram.build samples in
  let est = Histogram.selectivity_lt h 10.0 in
  Alcotest.(check bool) "skew caught" true (est > 0.8 && est < 0.95)

let test_histogram_constant () =
  let samples = Array.make 100 5.0 in
  let h = Histogram.build samples in
  Alcotest.(check bool) "all below 6" true (Histogram.selectivity_lt h 6.0 = 1.0);
  Alcotest.(check bool) "none below 5" true (Histogram.selectivity_lt h 5.0 = 0.0)

let test_hll_accuracy () =
  List.iter
    (fun n ->
      let h = Hll.create () in
      for i = 1 to n do
        Hll.add h (Quill_util.Hashing.mix_int i)
      done;
      let est = Hll.estimate h in
      let err = Float.abs (est -. Float.of_int n) /. Float.of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "ndv %d within 5%% (got %.0f)" n est)
        true (err < 0.05))
    [ 100; 5000; 200000 ]

let test_hll_duplicates () =
  let h = Hll.create () in
  for _ = 1 to 10 do
    for i = 1 to 500 do
      Hll.add h (Quill_util.Hashing.mix_int i)
    done
  done;
  let est = Hll.estimate h in
  Alcotest.(check bool) "duplicates don't inflate" true
    (Float.abs (est -. 500.0) /. 500.0 < 0.05)

let test_hll_merge () =
  let a = Hll.create () and b = Hll.create () in
  for i = 1 to 1000 do
    Hll.add a (Quill_util.Hashing.mix_int i)
  done;
  for i = 500 to 1500 do
    Hll.add b (Quill_util.Hashing.mix_int i)
  done;
  let est = Hll.estimate (Hll.merge a b) in
  Alcotest.(check bool) "union ~1500" true (Float.abs (est -. 1500.0) /. 1500.0 < 0.06)

let stats_table () =
  let schema =
    Schema.create
      [ Schema.col "k" Value.Int_t; Schema.col "s" Value.Str_t; Schema.col "f" Value.Float_t ]
  in
  let t = Table.create ~name:"st" schema in
  for i = 0 to 999 do
    Table.insert t
      [| (if i mod 10 = 0 then Value.Null else Value.Int (i mod 50));
         Value.Str (String.make 5 'x');
         Value.Float (Float.of_int i) |]
  done;
  t

let test_table_stats () =
  let t = stats_table () in
  let st = Table_stats.collect t in
  Alcotest.(check int) "rows" 1000 st.Table_stats.row_count;
  let k = st.Table_stats.cols.(0) in
  Alcotest.(check int) "nulls" 100 k.Table_stats.nulls;
  (* k = i mod 50 for i with i mod 10 <> 0; multiples of 10 never occur,
     so exactly 45 distinct values remain. *)
  Alcotest.(check bool) "ndv exact" true (k.Table_stats.ndv = 45.0);
  Alcotest.check Tutil.value_testable "min" (Value.Int 1) k.Table_stats.min_v;
  Alcotest.check Tutil.value_testable "max" (Value.Int 49) k.Table_stats.max_v;
  Alcotest.(check bool) "histogram built" true (k.Table_stats.histogram <> None);
  let s = st.Table_stats.cols.(1) in
  Alcotest.(check bool) "no histogram on text" true (s.Table_stats.histogram = None);
  Alcotest.(check bool) "width" true (s.Table_stats.avg_width = 13.0)

let test_stats_registry_staleness () =
  let cat = Catalog.create () in
  let t = stats_table () in
  Catalog.add cat t;
  let reg = Table_stats.Registry.create () in
  let s1 = Table_stats.Registry.get reg cat "st" in
  Alcotest.(check int) "initial" 1000 s1.Table_stats.row_count;
  Table.insert t [| Value.Int 1; Value.Str "y"; Value.Float 0.0 |];
  Catalog.bump cat;
  let s2 = Table_stats.Registry.get reg cat "st" in
  Alcotest.(check int) "recollected" 1001 s2.Table_stats.row_count;
  (* The cheap path serves cached stats without recollection. *)
  let s3 = Table_stats.Registry.get_if_fresh reg cat "st" in
  Alcotest.(check int) "cheap path cached" 1001 s3.Table_stats.row_count

(* --- Selectivity estimation -------------------------------------------- *)

let lookup_of_table t : Estimate.lookup =
  let st = Table_stats.collect t in
  fun i -> Some st.Table_stats.cols.(i)

let col i dt = { Bexpr.node = Bexpr.Col i; dtype = dt }
let lit v dt = { Bexpr.node = Bexpr.Lit v; dtype = dt }
let cmp op a b = { Bexpr.node = Bexpr.Cmp (op, a, b); dtype = Value.Bool_t }

let test_estimate_eq () =
  let lk = lookup_of_table (stats_table ()) in
  (* k has ~50 distinct values -> eq sel ~ 1/50 *)
  let s = Estimate.selectivity lk (cmp Bexpr.Eq (col 0 Value.Int_t) (lit (Value.Int 7) Value.Int_t)) in
  Alcotest.(check bool) "eq ~ 0.02" true (s > 0.01 && s < 0.04)

let test_estimate_range () =
  let lk = lookup_of_table (stats_table ()) in
  (* f uniform 0..999 -> f < 250 sel ~ 0.25 *)
  let s =
    Estimate.selectivity lk
      (cmp Bexpr.Lt (col 2 Value.Float_t) (lit (Value.Float 250.0) Value.Float_t))
  in
  Alcotest.(check bool) "range ~ 0.25" true (Float.abs (s -. 0.25) < 0.05)

let test_estimate_null_and_bool () =
  let lk = lookup_of_table (stats_table ()) in
  let is_null = { Bexpr.node = Bexpr.Is_null (false, col 0 Value.Int_t); dtype = Value.Bool_t } in
  let s = Estimate.selectivity lk is_null in
  Alcotest.(check bool) "nulls ~ 0.1" true (Float.abs (s -. 0.1) < 0.02);
  let conj =
    { Bexpr.node =
        Bexpr.And
          ( cmp Bexpr.Lt (col 2 Value.Float_t) (lit (Value.Float 500.0) Value.Float_t),
            cmp Bexpr.Lt (col 2 Value.Float_t) (lit (Value.Float 500.0) Value.Float_t) );
      dtype = Value.Bool_t }
  in
  let s2 = Estimate.selectivity lk conj in
  Alcotest.(check bool) "and multiplies" true (Float.abs (s2 -. 0.25) < 0.05)

let test_estimate_clamped () =
  let lk : Estimate.lookup = fun _ -> None in
  let e =
    { Bexpr.node = Bexpr.In_list (col 0 Value.Int_t, List.init 100 (fun i -> lit (Value.Int i) Value.Int_t));
      dtype = Value.Bool_t }
  in
  let s = Estimate.selectivity lk e in
  Alcotest.(check bool) "clamped to [0,1]" true (s >= 0.0 && s <= 1.0)

let test_join_selectivity () =
  let t = stats_table () in
  let lk = lookup_of_table t in
  let s = Estimate.join_selectivity ~left:lk ~right:lk [ (0, 0) ] in
  (* 1 / max(ndv, ndv) = 1/49ish *)
  Alcotest.(check bool) "join sel" true (s > 0.015 && s < 0.03)

let () =
  Alcotest.run "stats"
    [
      ( "histogram",
        [
          Alcotest.test_case "uniform" `Quick test_histogram_uniform;
          Alcotest.test_case "skewed" `Quick test_histogram_skewed;
          Alcotest.test_case "constant" `Quick test_histogram_constant;
        ] );
      ( "hll",
        [
          Alcotest.test_case "accuracy" `Quick test_hll_accuracy;
          Alcotest.test_case "duplicates" `Quick test_hll_duplicates;
          Alcotest.test_case "merge" `Quick test_hll_merge;
        ] );
      ( "table stats",
        [
          Alcotest.test_case "collect" `Quick test_table_stats;
          Alcotest.test_case "registry staleness" `Quick test_stats_registry_staleness;
        ] );
      ( "estimation",
        [
          Alcotest.test_case "eq" `Quick test_estimate_eq;
          Alcotest.test_case "range" `Quick test_estimate_range;
          Alcotest.test_case "null/and" `Quick test_estimate_null_and_bool;
          Alcotest.test_case "clamping" `Quick test_estimate_clamped;
          Alcotest.test_case "join" `Quick test_join_selectivity;
        ] );
    ]
