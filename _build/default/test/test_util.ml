(* Unit and property tests for quill.util. *)

module Rng = Quill_util.Rng
module Bitset = Quill_util.Bitset
module Vec = Quill_util.Vec
module Int_vec = Quill_util.Int_vec
module Hashing = Quill_util.Hashing
module Summary = Quill_util.Summary
module Pretty = Quill_util.Pretty

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 13 in
    Alcotest.(check bool) "in bounds" true (v >= 0 && v < 13);
    let r = Rng.int_range rng (-5) 5 in
    Alcotest.(check bool) "range" true (r >= -5 && r <= 5);
    let f = Rng.float rng in
    Alcotest.(check bool) "float01" true (f >= 0.0 && f < 1.0)
  done

let test_rng_uniformity () =
  (* Chi-square-ish sanity: each of 10 buckets gets 10% +- 3%. *)
  let rng = Rng.create 99 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Rng.int rng 10 in
    counts.(b) <- counts.(b) + 1
  done;
  Array.iter
    (fun c ->
      let frac = Float.of_int c /. Float.of_int n in
      Alcotest.(check bool) "bucket near 0.1" true (frac > 0.07 && frac < 0.13))
    counts

let test_rng_zipf () =
  let rng = Rng.create 1 in
  let z = Rng.Zipf.create rng ~n:100 ~theta:1.0 in
  let counts = Array.make 101 0 in
  for _ = 1 to 20_000 do
    let v = Rng.Zipf.sample z in
    Alcotest.(check bool) "zipf in range" true (v >= 1 && v <= 100);
    counts.(v) <- counts.(v) + 1
  done;
  (* Rank 1 must dominate rank 50. *)
  Alcotest.(check bool) "skew" true (counts.(1) > 5 * max 1 counts.(50))

let test_rng_shuffle_permutation () =
  let rng = Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_gaussian () =
  let rng = Rng.create 5 in
  let n = 50_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let g = Rng.gaussian rng in
    sum := !sum +. g;
    sumsq := !sumsq +. (g *. g)
  done;
  let mean = !sum /. Float.of_int n in
  let var = (!sumsq /. Float.of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "var ~ 1" true (Float.abs (var -. 1.0) < 0.1)

let test_bitset_basic () =
  let b = Bitset.create 200 in
  Alcotest.(check int) "empty count" 0 (Bitset.count b);
  Bitset.set b 0;
  Bitset.set b 63;
  Bitset.set b 64;
  Bitset.set b 199;
  Alcotest.(check int) "count" 4 (Bitset.count b);
  Alcotest.(check bool) "get 63" true (Bitset.get b 63);
  Alcotest.(check bool) "get 62" false (Bitset.get b 62);
  Bitset.clear b 63;
  Alcotest.(check bool) "cleared" false (Bitset.get b 63);
  Alcotest.(check int) "count after clear" 3 (Bitset.count b)

let test_bitset_full () =
  let b = Bitset.create_full 130 in
  Alcotest.(check int) "all set" 130 (Bitset.count b);
  Alcotest.(check bool) "last bit" true (Bitset.get b 129)

let test_bitset_iter () =
  let b = Bitset.create 100 in
  let expected = [ 3; 17; 62; 63; 64; 99 ] in
  List.iter (Bitset.set b) expected;
  let got = ref [] in
  Bitset.iter_set b (fun i -> got := i :: !got);
  Alcotest.(check (list int)) "iter_set ascending" expected (List.rev !got)

let prop_bitset_model =
  Tutil.qtest "bitset matches a bool-array model"
    QCheck2.Gen.(
      let* n = int_range 1 150 in
      let* ops = list_size (int_range 0 200) (pair (int_range 0 (n - 1)) bool) in
      pure (n, ops))
    (fun (n, ops) ->
      let b = Bitset.create n in
      let model = Array.make n false in
      List.iter
        (fun (i, set) ->
          Bitset.assign b i set;
          model.(i) <- set)
        ops;
      let model_count = Array.fold_left (fun acc x -> if x then acc + 1 else acc) 0 model in
      Bitset.count b = model_count
      && Array.for_all Fun.id (Array.mapi (fun i m -> Bitset.get b i = m) model))

let test_vec_grow () =
  let v = Vec.create ~dummy:0 in
  for i = 0 to 999 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 1000 (Vec.length v);
  Alcotest.(check int) "get" 567 (Vec.get v 567);
  Vec.set v 567 (-1);
  Alcotest.(check int) "set" (-1) (Vec.get v 567);
  Alcotest.(check int) "fold" (499500 - 567 - 1) (Vec.fold ( + ) 0 v)

let test_vec_sort () =
  let v = Vec.of_array ~dummy:0 [| 5; 3; 9; 1 |] in
  Vec.sort compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 3; 5; 9 ] (Vec.to_list v)

let test_int_vec () =
  let v = Int_vec.create () in
  for i = 99 downto 0 do
    Int_vec.push v i
  done;
  Alcotest.(check int) "len" 100 (Int_vec.length v);
  Int_vec.sort v;
  Alcotest.(check int) "first" 0 (Int_vec.get v 0);
  Alcotest.(check int) "last" 99 (Int_vec.get v 99)

let test_hashing_distribution () =
  (* Consecutive ints must spread across buckets. *)
  let buckets = Array.make 64 0 in
  for i = 0 to 6399 do
    let h = Hashing.mix_int i land 63 in
    buckets.(h) <- buckets.(h) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "balanced" true (c > 50 && c < 150))
    buckets

let test_hash_string_diff () =
  Alcotest.(check bool) "different strings hash differently" true
    (Hashing.hash_string "hello" <> Hashing.hash_string "hellp");
  Alcotest.(check int) "stable" (Hashing.hash_string "abc") (Hashing.hash_string "abc")

let test_summary () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Summary.mean xs);
  Alcotest.(check (float 1e-9)) "median" 3.0 (Summary.median xs);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Summary.percentile xs 100.0);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.0) (Summary.stddev xs);
  let lo, hi = Summary.min_max xs in
  Alcotest.(check (float 0.0)) "min" 1.0 lo;
  Alcotest.(check (float 0.0)) "max" 5.0 hi

let test_pretty () =
  let s = Pretty.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  Alcotest.(check bool) "contains cell" true
    (String.length s > 0
    && String.split_on_char '\n' s |> List.exists (fun l -> String.trim l <> ""));
  Alcotest.(check string) "duration ns" "500ns" (Pretty.duration 5e-7);
  Alcotest.(check string) "duration ms" "2.50ms" (Pretty.duration 2.5e-3)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "zipf" `Quick test_rng_zipf;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "gaussian" `Quick test_rng_gaussian;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "full" `Quick test_bitset_full;
          Alcotest.test_case "iter" `Quick test_bitset_iter;
          prop_bitset_model;
        ] );
      ( "vec",
        [
          Alcotest.test_case "grow" `Quick test_vec_grow;
          Alcotest.test_case "sort" `Quick test_vec_sort;
          Alcotest.test_case "int_vec" `Quick test_int_vec;
        ] );
      ( "hashing",
        [
          Alcotest.test_case "distribution" `Quick test_hashing_distribution;
          Alcotest.test_case "strings" `Quick test_hash_string_diff;
        ] );
      ( "summary",
        [
          Alcotest.test_case "stats" `Quick test_summary;
          Alcotest.test_case "pretty" `Quick test_pretty;
        ] );
    ]
