(* Tests for values, dates, schemas. *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema

let test_date_known () =
  Alcotest.(check int) "epoch" 0 (Value.date_of_ymd ~y:1970 ~m:1 ~d:1);
  Alcotest.(check int) "1970-01-02" 1 (Value.date_of_ymd ~y:1970 ~m:1 ~d:2);
  Alcotest.(check int) "1969-12-31" (-1) (Value.date_of_ymd ~y:1969 ~m:12 ~d:31);
  (* Leap year day. *)
  let feb29 = Value.date_of_ymd ~y:2000 ~m:2 ~d:29 in
  let mar1 = Value.date_of_ymd ~y:2000 ~m:3 ~d:1 in
  Alcotest.(check int) "leap" 1 (mar1 - feb29)

let prop_date_roundtrip =
  Tutil.qtest ~count:500 "ymd <-> days roundtrip"
    QCheck2.Gen.(int_range (-200_000) 200_000)
    (fun days ->
      let y, m, d = Value.ymd_of_date days in
      Value.date_of_ymd ~y ~m ~d = days && m >= 1 && m <= 12 && d >= 1 && d <= 31)

let test_date_string () =
  let d = Value.date_of_ymd ~y:1994 ~m:3 ~d:7 in
  Alcotest.(check string) "render" "1994-03-07" (Value.date_string d);
  Alcotest.(check (option int)) "parse" (Some d) (Value.parse_date "1994-03-07");
  Alcotest.(check (option int)) "bad month" None (Value.parse_date "1994-13-07");
  Alcotest.(check (option int)) "garbage" None (Value.parse_date "hello")

let test_value_to_string () =
  Alcotest.(check string) "null" "NULL" (Value.to_string Value.Null);
  Alcotest.(check string) "int" "42" (Value.to_string (Value.Int 42));
  Alcotest.(check string) "float" "2.5" (Value.to_string (Value.Float 2.5));
  Alcotest.(check string) "bool" "true" (Value.to_string (Value.Bool true))

let test_value_parse () =
  Alcotest.(check bool) "int" true (Value.parse Value.Int_t "17" = Some (Value.Int 17));
  Alcotest.(check bool) "empty is null" true (Value.parse Value.Int_t "" = Some Value.Null);
  Alcotest.(check bool) "bad int" true (Value.parse Value.Int_t "x" = None);
  Alcotest.(check bool) "bool t" true (Value.parse Value.Bool_t "T" = Some (Value.Bool true));
  Alcotest.(check bool) "float" true (Value.parse Value.Float_t "2.5" = Some (Value.Float 2.5))

let test_compare_numeric_coercion () =
  Alcotest.(check int) "int vs float eq" 0 (Value.compare (Value.Int 3) (Value.Float 3.0));
  Alcotest.(check bool) "int < float" true (Value.compare (Value.Int 3) (Value.Float 3.5) < 0);
  Alcotest.(check bool) "null first" true (Value.compare Value.Null (Value.Int (-999)) < 0)

let prop_compare_total_order =
  Tutil.qtest ~count:300 "compare is a consistent total order"
    QCheck2.Gen.(
      let v = Tutil.value_of_dtype ~null_weight:20 Quill_storage.Value.Int_t in
      triple v v v)
    (fun (a, b, c) ->
      let sgn x = compare x 0 in
      sgn (Value.compare a b) = -sgn (Value.compare b a)
      && (not (Value.compare a b <= 0 && Value.compare b c <= 0)
         || Value.compare a c <= 0))

let prop_hash_consistent =
  Tutil.qtest ~count:300 "equal values hash equally"
    QCheck2.Gen.(
      let* dt = Tutil.dtype_gen in
      pair (Tutil.value_of_dtype dt) (Tutil.value_of_dtype dt))
    (fun (a, b) -> (not (Value.equal a b)) || Value.hash a = Value.hash b)

let test_hash_int_float_collide () =
  (* Int 5 and Float 5.0 compare equal, so they must hash equal. *)
  Alcotest.(check int) "5 = 5.0" (Value.hash (Value.Int 5)) (Value.hash (Value.Float 5.0))

let test_schema_find () =
  let s =
    Schema.create
      [ Schema.col "t.a" Value.Int_t; Schema.col "t.b" Value.Str_t;
        Schema.col "u.a" Value.Int_t ]
  in
  (match Schema.find s "a" with
  | Error e ->
      Alcotest.(check bool) "ambiguous" true
        (String.length e >= 9 && String.sub e 0 9 = "ambiguous")
  | Ok _ -> Alcotest.fail "expected ambiguity");
  Alcotest.(check int) "qualified" 0 (Schema.find_exn s "t.a");
  Alcotest.(check int) "unique base" 1 (Schema.find_exn s "b");
  (match Schema.find s "zz" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unknown")

let test_schema_qualify_concat () =
  let s = Schema.create [ Schema.col "x" Value.Int_t ] in
  let q = Schema.qualify "t" s in
  Alcotest.(check string) "qualified name" "t.x" (Schema.column q 0).Schema.name;
  let c = Schema.concat q (Schema.qualify "u" s) in
  Alcotest.(check int) "arity" 2 (Schema.arity c);
  Alcotest.(check int) "second" 1 (Schema.find_exn c "u.x")

let test_schema_dup_rejected () =
  Alcotest.check_raises "duplicate columns"
    (Invalid_argument "Schema.create: duplicate column \"x\"") (fun () ->
      ignore (Schema.create [ Schema.col "x" Value.Int_t; Schema.col "x" Value.Str_t ]))

let () =
  Alcotest.run "value"
    [
      ( "dates",
        [
          Alcotest.test_case "known" `Quick test_date_known;
          prop_date_roundtrip;
          Alcotest.test_case "strings" `Quick test_date_string;
        ] );
      ( "values",
        [
          Alcotest.test_case "to_string" `Quick test_value_to_string;
          Alcotest.test_case "parse" `Quick test_value_parse;
          Alcotest.test_case "coercion" `Quick test_compare_numeric_coercion;
          prop_compare_total_order;
          prop_hash_consistent;
          Alcotest.test_case "int/float hash" `Quick test_hash_int_float_collide;
        ] );
      ( "schema",
        [
          Alcotest.test_case "find" `Quick test_schema_find;
          Alcotest.test_case "qualify/concat" `Quick test_schema_qualify_concat;
          Alcotest.test_case "duplicates" `Quick test_schema_dup_rejected;
        ] );
    ]
