(* Window functions: semantics against hand-computed references, engine
   agreement, composition with GROUP BY, and binder error paths. *)

module Value = Quill_storage.Value
module Table = Quill_storage.Table

let engines = [ Quill.Db.Volcano; Quill.Db.Vectorized; Quill.Db.Compiled ]

let fresh () =
  let db = Quill.Db.create () in
  ignore (Quill.Db.exec db "CREATE TABLE s (dept TEXT, emp TEXT, sal INT, d DATE)");
  ignore
    (Quill.Db.exec db
       "INSERT INTO s VALUES \
        ('eng','a',100,DATE '2026-01-01'),('eng','b',120,DATE '2026-01-02'),\
        ('eng','c',120,DATE '2026-01-03'),('ops','d',80,DATE '2026-01-01'),\
        ('ops','e',90,DATE '2026-01-02'),('ops','f',NULL,DATE '2026-01-03')");
  db

let col_ints r j = Array.to_list (Array.map (fun row -> row.(j)) (Tutil.table_rows r))
let i v = Value.Int v

let test_row_number_partitioned () =
  let db = fresh () in
  let r =
    Quill.Db.query db
      "SELECT emp, row_number() OVER (PARTITION BY dept ORDER BY sal DESC) AS rn \
       FROM s ORDER BY dept, rn"
  in
  Alcotest.(check (list string)) "order" [ "b"; "c"; "a"; "e"; "d"; "f" ]
    (List.map Value.to_string (col_ints r 0));
  Alcotest.(check bool) "rn" true (col_ints r 1 = [ i 1; i 2; i 3; i 1; i 2; i 3 ])

let test_rank_vs_dense_rank () =
  let db = fresh () in
  let r =
    Quill.Db.query db
      "SELECT emp, rank() OVER (ORDER BY sal DESC) AS r, \
       dense_rank() OVER (ORDER BY sal DESC) AS dr FROM s WHERE sal IS NOT NULL \
       ORDER BY r, emp"
  in
  (* sal: 120,120,100,90,80 -> rank 1,1,3,4,5; dense 1,1,2,3,4 *)
  Alcotest.(check bool) "rank" true (col_ints r 1 = [ i 1; i 1; i 3; i 4; i 5 ]);
  Alcotest.(check bool) "dense" true (col_ints r 2 = [ i 1; i 1; i 2; i 3; i 4 ])

let test_running_sum_and_nulls () =
  let db = fresh () in
  let r =
    Quill.Db.query db
      "SELECT emp, sum(sal) OVER (PARTITION BY dept ORDER BY d) AS run \
       FROM s ORDER BY dept, d"
  in
  (* eng: 100,220,340; ops: 80,170,170 (NULL sal ignored by SUM) *)
  Alcotest.(check bool) "running" true
    (col_ints r 1 = [ i 100; i 220; i 340; i 80; i 170; i 170 ])

let test_running_sum_peers () =
  (* Rows tied on the order key share the running value (RANGE frame). *)
  let db = Quill.Db.create () in
  ignore (Quill.Db.exec db "CREATE TABLE p (k INT, v INT)");
  ignore (Quill.Db.exec db "INSERT INTO p VALUES (1,10),(1,20),(2,5)");
  let r =
    Quill.Db.query db "SELECT v, sum(v) OVER (ORDER BY k) AS run FROM p ORDER BY k, v"
  in
  Alcotest.(check bool) "peers share" true (col_ints r 1 = [ i 30; i 30; i 35 ])

let test_partition_aggregate () =
  let db = fresh () in
  let r =
    Quill.Db.query db
      "SELECT emp, count(*) OVER (PARTITION BY dept) AS n, \
       max(sal) OVER (PARTITION BY dept) AS m FROM s ORDER BY emp"
  in
  Alcotest.(check bool) "counts" true (col_ints r 1 = [ i 3; i 3; i 3; i 3; i 3; i 3 ]);
  Alcotest.(check bool) "maxes" true
    (col_ints r 2 = [ i 120; i 120; i 120; i 90; i 90; i 90 ])

let test_lag_lead () =
  let db = fresh () in
  let r =
    Quill.Db.query db
      "SELECT lag(sal) OVER (PARTITION BY dept ORDER BY d) AS prev, \
       lead(sal, 2) OVER (PARTITION BY dept ORDER BY d) AS nn \
       FROM s ORDER BY dept, d"
  in
  Alcotest.(check bool) "lag" true
    (col_ints r 0 = [ Value.Null; i 100; i 120; Value.Null; i 80; i 90 ]);
  Alcotest.(check bool) "lead 2" true
    (col_ints r 1 = [ i 120; Value.Null; Value.Null; Value.Null; Value.Null; Value.Null ])

let test_window_in_expression () =
  let db = fresh () in
  let r =
    Quill.Db.query db
      "SELECT emp, sal - avg(sal) OVER (PARTITION BY dept) AS delta FROM s \
       WHERE sal IS NOT NULL ORDER BY emp"
  in
  match Tutil.table_rows r with
  | [| a; _; _; d; _ |] ->
      (match (a.(1), d.(1)) with
      | Value.Float x, Value.Float y ->
          Alcotest.(check (float 1e-6)) "a delta" (-13.333333) (Float.round (x *. 1e6) /. 1e6);
          Alcotest.(check (float 1e-6)) "d delta" (-5.0) y
      | _ -> Alcotest.fail "types")
  | _ -> Alcotest.fail "row count"

let test_window_over_group_by () =
  let db = fresh () in
  let r =
    Quill.Db.query db
      "SELECT dept, sum(sal) AS total, rank() OVER (ORDER BY sum(sal) DESC) AS rk \
       FROM s GROUP BY dept ORDER BY rk"
  in
  Alcotest.(check bool) "totals" true (col_ints r 1 = [ i 340; i 170 ]);
  Alcotest.(check bool) "ranks" true (col_ints r 2 = [ i 1; i 2 ])

let test_engines_agree () =
  let db = fresh () in
  let queries =
    [ "SELECT emp, row_number() OVER (PARTITION BY dept ORDER BY sal, emp) FROM s ORDER BY 1";
      "SELECT emp, sum(sal) OVER (PARTITION BY dept ORDER BY d) FROM s ORDER BY 1";
      "SELECT emp, rank() OVER (ORDER BY sal DESC) FROM s ORDER BY 1";
      "SELECT emp, lag(emp) OVER (ORDER BY d, emp) FROM s ORDER BY 1" ]
  in
  List.iter
    (fun sql ->
      let reference = Tutil.table_rows (Quill.Db.query db ~engine:Quill.Db.Volcano sql) in
      List.iter
        (fun e ->
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s" sql (Quill.Db.engine_name e))
            true
            (Tutil.same_rows_ordered reference
               (Tutil.table_rows (Quill.Db.query db ~engine:e sql))))
        engines)
    queries

let test_window_does_not_reorder () =
  (* Window output keeps the input row order when no final ORDER BY. *)
  let db = fresh () in
  let plain = col_ints (Quill.Db.query db "SELECT emp FROM s") 0 in
  let with_win =
    col_ints (Quill.Db.query db "SELECT emp, rank() OVER (ORDER BY sal) FROM s") 0
  in
  Alcotest.(check bool) "same order" true (plain = with_win)

let test_errors () =
  let db = fresh () in
  let expect_err needle sql =
    try
      ignore (Quill.Db.query db sql);
      Alcotest.failf "expected error: %s" sql
    with Quill.Db.Error m ->
      let contains =
        let nh = String.length m and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub m i nn = needle || go (i + 1)) in
        go 0
      in
      if not contains then Alcotest.failf "error %S lacks %S" m needle
  in
  expect_err "select list" "SELECT emp FROM s WHERE rank() OVER (ORDER BY sal) < 2";
  expect_err "HAVING" "SELECT dept FROM s GROUP BY dept HAVING rank() OVER (ORDER BY dept) = 1";
  expect_err "ORDER BY" "SELECT rank() OVER () FROM s";
  expect_err "ORDER BY" "SELECT lag(sal) OVER (PARTITION BY dept) FROM s";
  expect_err "nested" "SELECT sum(rank() OVER (ORDER BY sal)) OVER (ORDER BY sal) FROM s";
  expect_err "DISTINCT" "SELECT count(DISTINCT sal) OVER () FROM s";
  expect_err "window function" "SELECT rank(sal) OVER (ORDER BY sal) FROM s"

let prop_row_number_is_permutation =
  Tutil.qtest ~count:40 "row_number covers 1..n per partition"
    QCheck2.Gen.(int_range 1 60)
    (fun n ->
      let db = Quill.Db.create () in
      ignore (Quill.Db.exec db "CREATE TABLE t (g INT, v INT)");
      let rng = Quill_util.Rng.create n in
      for _ = 1 to n do
        ignore
          (Quill.Db.exec db
             (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" (Quill_util.Rng.int rng 4)
                (Quill_util.Rng.int rng 100)))
      done;
      let r =
        Quill.Db.query db
          "SELECT g, row_number() OVER (PARTITION BY g ORDER BY v, g) AS rn FROM t"
      in
      (* Per group, the rn values must be exactly 1..count(group). *)
      let groups = Hashtbl.create 8 in
      Array.iter
        (fun row ->
          let g = row.(0) and rn = row.(1) in
          let l = Option.value ~default:[] (Hashtbl.find_opt groups g) in
          Hashtbl.replace groups g (rn :: l))
        (Tutil.table_rows r);
      Hashtbl.fold
        (fun _ rns ok ->
          ok
          && List.sort compare rns
             = List.init (List.length rns) (fun k -> Value.Int (k + 1)))
        groups true)

let () =
  Alcotest.run "window"
    [
      ( "semantics",
        [
          Alcotest.test_case "row_number" `Quick test_row_number_partitioned;
          Alcotest.test_case "rank/dense_rank" `Quick test_rank_vs_dense_rank;
          Alcotest.test_case "running sum + nulls" `Quick test_running_sum_and_nulls;
          Alcotest.test_case "peer rows" `Quick test_running_sum_peers;
          Alcotest.test_case "partition aggregate" `Quick test_partition_aggregate;
          Alcotest.test_case "lag/lead" `Quick test_lag_lead;
          Alcotest.test_case "in expressions" `Quick test_window_in_expression;
          Alcotest.test_case "over group by" `Quick test_window_over_group_by;
          Alcotest.test_case "keeps row order" `Quick test_window_does_not_reorder;
        ] );
      ( "engines",
        [ Alcotest.test_case "agreement" `Quick test_engines_agree ] );
      ( "errors",
        [ Alcotest.test_case "binder rejections" `Quick test_errors ] );
      ("properties", [ prop_row_number_is_permutation ]);
    ]
