(* Workload generators: determinism, proportions, and value-domain
   invariants the experiments depend on. *)

module Value = Quill_storage.Value
module Table = Quill_storage.Table
module Catalog = Quill_storage.Catalog
module Tpch = Quill_workload.Tpch
module Micro = Quill_workload.Micro

let load sf seed =
  let cat = Catalog.create () in
  Tpch.load cat ~sf ~seed;
  cat

let test_tpch_cardinalities () =
  let cat = load 0.005 1 in
  let n name = Table.row_count (Catalog.find_exn cat name) in
  Alcotest.(check int) "regions" 5 (n "region");
  Alcotest.(check int) "nations" 25 (n "nation");
  Alcotest.(check int) "suppliers" 50 (n "supplier");
  Alcotest.(check int) "customers" 750 (n "customer");
  Alcotest.(check int) "orders" 7500 (n "orders");
  (* lineitem averages 4 lines per order *)
  let l = n "lineitem" in
  Alcotest.(check bool) "lineitem ~4x orders" true (l > 7500 * 2 && l < 7500 * 7)

let test_tpch_deterministic () =
  let a = load 0.002 7 and b = load 0.002 7 in
  List.iter
    (fun name ->
      let ta = Catalog.find_exn a name and tb = Catalog.find_exn b name in
      Alcotest.(check bool) (name ^ " identical") true
        (Table.to_row_list ta = Table.to_row_list tb))
    [ "region"; "nation"; "supplier"; "customer"; "part"; "orders"; "lineitem" ];
  (* A different seed gives different data. *)
  let c = load 0.002 8 in
  Alcotest.(check bool) "seed matters" false
    (Table.to_row_list (Catalog.find_exn a "lineitem")
    = Table.to_row_list (Catalog.find_exn c "lineitem"))

let test_tpch_domains () =
  let cat = load 0.002 3 in
  let lineitem = Catalog.find_exn cat "lineitem" in
  let schema = Table.schema lineitem in
  let pos name = Quill_storage.Schema.find_exn schema name in
  let discount = pos "l_discount" and qty = pos "l_quantity" in
  let flag = pos "l_returnflag" and status = pos "l_linestatus" in
  for i = 0 to Table.row_count lineitem - 1 do
    (match Table.get lineitem i discount with
    | Value.Float d -> assert (d >= 0.0 && d <= 0.10)
    | _ -> Alcotest.fail "discount type");
    (match Table.get lineitem i qty with
    | Value.Float q -> assert (q >= 1.0 && q <= 50.0)
    | _ -> Alcotest.fail "qty type");
    (match (Table.get lineitem i flag, Table.get lineitem i status) with
    | Value.Str ("R" | "A"), Value.Str "F" | Value.Str "N", Value.Str "O" -> ()
    | _ -> Alcotest.fail "flag/status domain")
  done

let test_tpch_referential_integrity () =
  let cat = load 0.002 5 in
  let keys table col =
    let t = Catalog.find_exn cat table in
    let pos = Quill_storage.Schema.find_exn (Table.schema t) col in
    let set = Hashtbl.create 64 in
    for i = 0 to Table.row_count t - 1 do
      Hashtbl.replace set (Table.get t i pos) ()
    done;
    set
  in
  let custkeys = keys "customer" "c_custkey" in
  let orders = Catalog.find_exn cat "orders" in
  let ck = Quill_storage.Schema.find_exn (Table.schema orders) "o_custkey" in
  for i = 0 to Table.row_count orders - 1 do
    if not (Hashtbl.mem custkeys (Table.get orders i ck)) then
      Alcotest.fail "dangling o_custkey"
  done;
  let orderkeys = keys "orders" "o_orderkey" in
  let lineitem = Catalog.find_exn cat "lineitem" in
  let ok = Quill_storage.Schema.find_exn (Table.schema lineitem) "l_orderkey" in
  for i = 0 to Table.row_count lineitem - 1 do
    if not (Hashtbl.mem orderkeys (Table.get lineitem i ok)) then
      Alcotest.fail "dangling l_orderkey"
  done

let test_tpch_part_skew () =
  (* Zipf-skewed part popularity: the most popular part must be referenced
     far more than the median one. *)
  let cat = load 0.01 2 in
  let lineitem = Catalog.find_exn cat "lineitem" in
  let pk = Quill_storage.Schema.find_exn (Table.schema lineitem) "l_partkey" in
  let counts = Hashtbl.create 1024 in
  for i = 0 to Table.row_count lineitem - 1 do
    let k = Table.get lineitem i pk in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let freqs = Hashtbl.fold (fun _ c acc -> c :: acc) counts [] in
  let sorted = List.sort (fun a b -> compare b a) freqs in
  let top = List.hd sorted in
  let median = List.nth sorted (List.length sorted / 2) in
  Alcotest.(check bool) "skewed" true (top >= 5 * median)

let test_micro_ints_table () =
  let t = Micro.ints_table ~name:"m" ~rows:500 ~cols:3 ~seed:1 () in
  Alcotest.(check int) "rows" 500 (Table.row_count t);
  (* c0 is a permutation of 0..rows-1. *)
  let seen = Array.make 500 false in
  for i = 0 to 499 do
    match Table.get t i 0 with
    | Value.Int k -> seen.(k) <- true
    | _ -> Alcotest.fail "type"
  done;
  Alcotest.(check bool) "permutation" true (Array.for_all Fun.id seen)

let test_micro_keyed_pair () =
  let build, probe = Micro.keyed_pair ~build_rows:100 ~probe_rows:1000 ~seed:2 () in
  Alcotest.(check int) "build" 100 (Table.row_count build);
  Alcotest.(check int) "probe" 1000 (Table.row_count probe);
  (* Every probe fk hits the build key range. *)
  for i = 0 to 999 do
    match Table.get probe i 0 with
    | Value.Int k -> assert (k >= 0 && k < 100)
    | _ -> Alcotest.fail "type"
  done

let test_micro_grouped () =
  let t = Micro.grouped_table ~rows:2000 ~groups:10 ~seed:3 () in
  let distinct = Hashtbl.create 16 in
  for i = 0 to 1999 do
    Hashtbl.replace distinct (Table.get t i 0) ()
  done;
  Alcotest.(check int) "distinct groups" 10 (Hashtbl.length distinct)

let test_micro_sort_keys () =
  let u = Micro.sort_keys ~n:1000 ~dist:`Uniform ~seed:1 () in
  Alcotest.(check int) "n" 1000 (Array.length u);
  let c = Micro.sort_keys ~n:1000 ~dist:`Clustered ~seed:1 () in
  (* Clustered keys are nearly sorted: long non-decreasing stretches. *)
  let inversions = ref 0 in
  for i = 0 to 998 do
    if c.(i) > c.(i + 1) then incr inversions
  done;
  Alcotest.(check bool) "nearly sorted" true (!inversions < 400);
  let d = Micro.sort_keys ~n:1000 ~dist:`Dups ~seed:1 () in
  Alcotest.(check bool) "dups bounded" true (Array.for_all (fun x -> x < 100) d)

let () =
  Alcotest.run "workload"
    [
      ( "tpch",
        [
          Alcotest.test_case "cardinalities" `Quick test_tpch_cardinalities;
          Alcotest.test_case "deterministic" `Quick test_tpch_deterministic;
          Alcotest.test_case "value domains" `Quick test_tpch_domains;
          Alcotest.test_case "referential integrity" `Quick test_tpch_referential_integrity;
          Alcotest.test_case "part skew" `Quick test_tpch_part_skew;
        ] );
      ( "micro",
        [
          Alcotest.test_case "ints table" `Quick test_micro_ints_table;
          Alcotest.test_case "keyed pair" `Quick test_micro_keyed_pair;
          Alcotest.test_case "grouped" `Quick test_micro_grouped;
          Alcotest.test_case "sort keys" `Quick test_micro_sort_keys;
        ] );
    ]
