(* Shared test helpers: value/row generators, expression generators for
   tier-agreement properties, and result-comparison utilities. *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema
module Table = Quill_storage.Table
module Bexpr = Quill_plan.Bexpr

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- Value generators --------------------------------------------------- *)

open QCheck2.Gen

let value_of_dtype ?(null_weight = 10) dtype =
  let base =
    match dtype with
    | Value.Int_t -> map (fun i -> Value.Int i) (int_range (-1000) 1000)
    | Value.Float_t ->
        map (fun f -> Value.Float (Float.of_int f /. 8.0)) (int_range (-8000) 8000)
    | Value.Str_t ->
        map (fun s -> Value.Str s) (string_size ~gen:(char_range 'a' 'e') (int_range 0 6))
    | Value.Bool_t -> map (fun b -> Value.Bool b) bool
    | Value.Date_t -> map (fun d -> Value.Date d) (int_range 8000 11000)
  in
  if null_weight = 0 then base
  else frequency [ (100 - null_weight, base); (null_weight, pure Value.Null) ]

let dtype_gen = oneofl [ Value.Int_t; Value.Float_t; Value.Str_t; Value.Bool_t; Value.Date_t ]

(* A random schema of 1..6 columns. *)
let schema_gen =
  let* n = int_range 1 6 in
  let* dts = list_repeat n dtype_gen in
  pure
    (Schema.create (List.mapi (fun i dt -> Schema.col (Printf.sprintf "c%d" i) dt) dts))

let row_gen schema =
  let cols = Schema.columns schema in
  let* vs = flatten_l (List.map (fun c -> value_of_dtype c.Schema.dtype) cols) in
  pure (Array.of_list vs)

let rows_gen ?(max_rows = 40) schema =
  let* n = int_range 0 max_rows in
  list_repeat n (row_gen schema)

(* --- Well-typed bound expression generator ------------------------------ *)

(* Generates expressions that never raise at runtime (no division, no
   casts that can fail), over a schema, so tier-agreement properties can
   compare results directly. *)
let bexpr_gen schema =
  let cols_of t =
    List.filteri (fun _ _ -> true) (Schema.columns schema)
    |> List.mapi (fun i c -> (i, c.Schema.dtype))
    |> List.filter (fun (_, dt) -> dt = t)
  in
  let leaf_of t =
    let lit = map (fun v -> { Bexpr.node = Bexpr.Lit v; dtype = t }) (value_of_dtype t) in
    match cols_of t with
    | [] -> lit
    | cs ->
        oneof
          [ lit;
            map (fun (i, dt) -> { Bexpr.node = Bexpr.Col i; dtype = dt }) (oneofl cs) ]
  in
  let rec num_expr depth =
    if depth = 0 then leaf_of Value.Int_t
    else
      oneof
        [ leaf_of Value.Int_t;
          (let* op = oneofl [ Bexpr.Add; Bexpr.Sub; Bexpr.Mul ] in
           let* a = num_expr (depth - 1) in
           let* b = num_expr (depth - 1) in
           pure { Bexpr.node = Bexpr.Arith (op, a, b); dtype = Value.Int_t });
          (let* a = num_expr (depth - 1) in
           pure { Bexpr.node = Bexpr.Neg a; dtype = Value.Int_t }) ]
  and bool_expr depth =
    if depth = 0 then
      oneof
        [ leaf_of Value.Bool_t;
          (let* dt = oneofl [ Value.Int_t; Value.Float_t; Value.Str_t; Value.Date_t ] in
           let* op = oneofl [ Bexpr.Eq; Bexpr.Neq; Bexpr.Lt; Bexpr.Le; Bexpr.Gt; Bexpr.Ge ] in
           let* a = leaf_of dt in
           let* b = leaf_of dt in
           pure { Bexpr.node = Bexpr.Cmp (op, a, b); dtype = Value.Bool_t }) ]
    else
      oneof
        [ bool_expr 0;
          (let* a = bool_expr (depth - 1) in
           let* b = bool_expr (depth - 1) in
           oneofl
             [ { Bexpr.node = Bexpr.And (a, b); dtype = Value.Bool_t };
               { Bexpr.node = Bexpr.Or (a, b); dtype = Value.Bool_t } ]);
          (let* a = bool_expr (depth - 1) in
           pure { Bexpr.node = Bexpr.Not a; dtype = Value.Bool_t });
          (let* a = num_expr (depth - 1) in
           pure { Bexpr.node = Bexpr.Is_null (false, a); dtype = Value.Bool_t });
          (let* op = oneofl [ Bexpr.Eq; Bexpr.Lt; Bexpr.Ge ] in
           let* a = num_expr (depth - 1) in
           let* b = num_expr (depth - 1) in
           pure { Bexpr.node = Bexpr.Cmp (op, a, b); dtype = Value.Bool_t });
          (let* a = leaf_of Value.Int_t in
           let* items = list_size (int_range 1 4) (leaf_of Value.Int_t) in
           pure { Bexpr.node = Bexpr.In_list (a, items); dtype = Value.Bool_t }) ]
  in
  let case_expr =
    let* nwhens = int_range 1 3 in
    let* whens =
      list_repeat nwhens
        (let* c = bool_expr 1 in
         let* v = num_expr 1 in
         pure (c, v))
    in
    let* els = opt (num_expr 1) in
    pure { Bexpr.node = Bexpr.Case (whens, els); dtype = Value.Int_t }
  in
  oneof [ num_expr 3; bool_expr 3; case_expr ]

(* --- Comparison helpers -------------------------------------------------- *)

let value_testable =
  Alcotest.testable
    (fun fmt v -> Format.pp_print_string fmt (Value.to_string v))
    Value.equal

let row_to_string row =
  "[" ^ String.concat "; " (Array.to_list (Array.map Value.to_string row)) ^ "]"

let rows_to_string rows =
  String.concat "\n" (List.map row_to_string (Array.to_list rows))

(* Compare result row multisets (order-insensitive). *)
let same_rows_unordered a b =
  let norm rows =
    let l = Array.to_list (Array.map (fun r -> Array.to_list r) rows) in
    List.sort compare l
  in
  norm a = norm b

(* Compare results respecting order. *)
let same_rows_ordered a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Array.to_list x = Array.to_list y) a b

let check_same_unordered msg a b =
  if not (same_rows_unordered a b) then
    Alcotest.failf "%s:\nfirst:\n%s\nsecond:\n%s" msg (rows_to_string a) (rows_to_string b)

(* A deterministic random database for engine-agreement tests. *)
let random_db ~seed ~rows =
  let db = Quill.Db.create () in
  let cat = Quill.Db.catalog db in
  let rng = Quill_util.Rng.create seed in
  let mk name cols =
    let t = Table.create ~name (Schema.create cols) in
    Quill_storage.Catalog.add cat t;
    t
  in
  let t1 =
    mk "r"
      [ Schema.col ~nullable:false "id" Value.Int_t;
        Schema.col "k" Value.Int_t;
        Schema.col "v" Value.Float_t;
        Schema.col "tag" Value.Str_t;
        Schema.col "dt" Value.Date_t ]
  in
  let t2 =
    mk "s"
      [ Schema.col ~nullable:false "id" Value.Int_t;
        Schema.col "k" Value.Int_t;
        Schema.col "w" Value.Int_t ]
  in
  let tags = [| "alpha"; "beta"; "gamma"; "delta"; "" |] in
  for idx = 0 to rows - 1 do
    let open Quill_util.Rng in
    Table.insert t1
      [| Value.Int idx;
         (if int rng 10 = 0 then Value.Null else Value.Int (int rng 20));
         (if int rng 10 = 0 then Value.Null
          else Value.Float (Float.of_int (int rng 1000) /. 10.0));
         Value.Str (pick rng tags);
         Value.Date (9000 + int rng 500) |]
  done;
  for idx = 0 to (rows / 2) - 1 do
    let open Quill_util.Rng in
    Table.insert t2
      [| Value.Int idx;
         (if int rng 10 = 0 then Value.Null else Value.Int (int rng 20));
         Value.Int (int rng 100) |]
  done;
  db

let table_rows (t : Table.t) = Array.of_list (Table.to_row_list t)
