(* E23 microbenchmarks: copy-and-patch stencil compilation vs full
   closure-staging codegen, on the TPC-H-analog workload (Tpch).

   Two measurements per covered shape:

   - compile cost: nanoseconds to produce an executable closure, stencil
     bind (shape match + patch fill) vs full codegen (closure staging
     over the whole plan).  This is the quantity the stencil tier
     collapses: a bind walks the top of the plan and the coverability
     check, then fills one patch record — flat in expression count —
     while full staging builds a closure per expression node.  The
     "wide-scan" entry (a BI-style 12-expression projection) is there to
     show the asymmetry growing with query width;
   - one-shot total: cold compile + single execution, against the
     interpreted vectorized engine executing the same plan.  The
     copy-and-patch claim is that compilation gets cheap enough for the
     compiled engine to win even when a query runs exactly once; the
     gate asserts it on the workload total.

   Compile costs are measured with median-of-batches wall-clock loops,
   not Bechamel: the OLS estimator overreports sub-microsecond thunks by
   ~2.5 us/run once a TPC-H-sized major heap is live (measured directly;
   a tight loop in the same process agrees with small-heap Bechamel
   runs), and the compile costs here sit exactly in that range.

   The queries are covered-shape analogs of the Tpch suite: the Q6
   filter as a scan+project, Q6 itself (global aggregate), Q1 without
   its ORDER BY (grouped aggregate — the sort is outside stencil
   coverage and identical across tiers anyway), and the
   customer-orders join at the base of Q3.

   Shared by the full run ([main.exe E23], which prints the tables
   EXPERIMENTS.md records and rewrites [bench/BENCH_codegen.json]) and
   the regression gate ([check_bench.exe], wired into `dune runtest`). *)

module Physical = Quill_optimizer.Physical
module Picker = Quill_optimizer.Picker
module Codegen = Quill_compile.Codegen
module Stencil = Quill_compile.Stencil
module Stencil_bind = Quill_compile.Stencil_bind
module Governor = Quill_exec.Governor
module Exec_ctx = Quill_exec.Exec_ctx
module Vector = Quill_exec.Vector
module Tpch = Quill_workload.Tpch

(* Scale used for the committed baseline and the runtest gate.  The
   compile-cost ratio is scale-independent; the one-shot ablation needs
   enough rows that execution is real work but must stay well under a
   second per arm inside `dune runtest`.  SF 0.01 is ~60 k lineitem
   rows. *)
let smoke_sf = 0.01

let build_db ~sf =
  let db = Quill.Db.create () in
  Tpch.load (Quill.Db.catalog db) ~sf ~seed:42;
  List.iter (Quill.Db.analyze db) [ "lineitem"; "orders"; "customer" ];
  db

(* (name, expected shape key, sql) — one query per stencil shape, plus
   the wide-projection scan.  The join forces the hash algorithm so the
   picker cannot drift the plan out of stencil coverage. *)
let queries =
  [ ("q6-filter", "scan-filter-project",
     "SELECT l_orderkey, l_extendedprice * (1 - l_discount) AS disc_price \
      FROM lineitem \
      WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' \
      AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24");
    ("wide-scan", "scan-filter-project",
     "SELECT l_orderkey, l_partkey, l_suppkey, l_quantity, l_extendedprice, \
      l_extendedprice * (1 - l_discount) AS disc_price, \
      l_extendedprice * (1 - l_discount) * (1 + l_tax) AS charge, \
      l_quantity * l_extendedprice AS volume, \
      CASE WHEN l_discount > 0.05 THEN 'deep' ELSE 'shallow' END AS band, \
      l_returnflag, l_linestatus, l_shipdate \
      FROM lineitem \
      WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' \
      AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24");
    ("q6", "scan-agg-global", Tpch.q6);
    ("q1-agg", "scan-agg-grouped",
     "SELECT l_returnflag, l_linestatus, \
      SUM(l_quantity) AS sum_qty, \
      SUM(l_extendedprice) AS sum_base_price, \
      SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, \
      AVG(l_quantity) AS avg_qty, \
      AVG(l_discount) AS avg_disc, \
      COUNT(*) AS count_order \
      FROM lineitem \
      WHERE l_shipdate <= DATE '1998-09-02' \
      GROUP BY l_returnflag, l_linestatus");
    ("q3-join", "hash-join-probe",
     "SELECT o_orderkey, l_extendedprice * (1 - l_discount) AS revenue, \
      o_orderdate, o_shippriority \
      FROM lineitem JOIN orders ON l_orderkey = o_orderkey \
      WHERE o_orderdate < DATE '1995-03-15' AND l_shipdate > DATE '1995-03-15'") ]

let plan_queries db =
  Quill.Db.set_options db
    { Picker.default_options with Picker.force_join = Some Physical.Hash_join };
  Fun.protect
    ~finally:(fun () -> Quill.Db.set_options db Picker.default_options)
    (fun () ->
      List.map (fun (name, shape, sql) -> (name, shape, Quill.Db.plan db sql)) queries)

(* Median-of-batches ns/op: [batches] timed loops of [iters] calls. *)
let loop_ns ?(batches = 5) ?(iters = 2000) f =
  let samples =
    Array.init batches (fun _ ->
        Gc.full_major ();
        let dt = Quill_util.Timer.time_unit (fun () ->
            for _ = 1 to iters do f () done)
        in
        dt /. float_of_int iters *. 1e9)
  in
  Quill_util.Summary.median samples

type compile_result = { name : string; shape : string; bind_ns : float; full_ns : float }

let ratio r = r.full_ns /. r.bind_ns

(* Aggregate compile-cost ratio over the whole query set: total staging
   time saved, which is what the tiering economics see. *)
let workload_ratio results =
  let tb = List.fold_left (fun a r -> a +. r.bind_ns) 0.0 results in
  let tf = List.fold_left (fun a r -> a +. r.full_ns) 0.0 results in
  tf /. tb

(* Compile cost per shape.  Binding must actually hit — a miss would
   "win" by doing nothing — so assert coverage up front. *)
let measure_compile ?batches ?iters db =
  Stencil.warm ();
  let catalog = Quill.Db.catalog db in
  let plans = plan_queries db in
  List.iter
    (fun (name, shape, plan) ->
      match Stencil_bind.shape_of catalog plan with
      | Some s when s = shape -> ()
      | other ->
          failwith
            (Printf.sprintf "E23: %s (shape %s) bound to %s" name shape
               (Option.value other ~default:"<miss>")))
    plans;
  List.map
    (fun (name, shape, plan) ->
      let bind_ns =
        loop_ns ?batches ?iters (fun () -> ignore (Stencil_bind.bind catalog plan))
      in
      let full_ns =
        loop_ns ?batches ?iters (fun () ->
            let (_ : Codegen.compiled) = Codegen.compile catalog plan in
            ())
      in
      { name; shape; bind_ns; full_ns })
    plans

type oneshot_result = {
  o_name : string;
  stencil_s : float;  (* stencil bind + one execution *)
  full_s : float;  (* full codegen + one execution *)
  interp_s : float;  (* interpreted vectorized execution *)
}

let oneshot_totals results =
  List.fold_left
    (fun (s, f, i) r -> (s +. r.stencil_s, f +. r.full_s, i +. r.interp_s))
    (0.0, 0.0, 0.0) results

(* One-shot ablation: cold compile + single execution, median of [reps].
   All three arms run the same physical plan, so the differences are
   exactly compile cost plus engine speed. *)
let measure_oneshot ?(reps = 5) db =
  Stencil.warm ();
  let catalog = Quill.Db.catalog db in
  List.map
    (fun (name, _shape, plan) ->
      let stencil_s =
        Harness.median_time ~reps (fun () ->
            match Stencil_bind.bind catalog plan with
            | Some f -> ignore (f Governor.none [||])
            | None -> failwith "E23: stencil miss in one-shot arm")
      in
      let full_s =
        Harness.median_time ~reps (fun () ->
            ignore ((Codegen.compile catalog plan) Governor.none [||]))
      in
      let interp_s =
        Harness.median_time ~reps (fun () ->
            ignore (Vector.run (Exec_ctx.create catalog) plan))
      in
      { o_name = name; stencil_s; full_s; interp_s })
    (plan_queries db)

let print_compile_table results =
  Harness.table
    ~header:[ "query"; "shape"; "stencil bind ns"; "full codegen ns"; "bind cheaper by" ]
    (List.map
       (fun r ->
         [ r.name; r.shape; Printf.sprintf "%.0f" r.bind_ns;
           Printf.sprintf "%.0f" r.full_ns; Printf.sprintf "%.1fx" (ratio r) ])
       results);
  Printf.printf "workload compile-cost ratio: %.1fx\n" (workload_ratio results)

let print_oneshot_table results =
  Harness.table
    ~header:
      [ "query"; "stencil+run ms"; "full codegen+run ms"; "interpreted ms";
        "stencil vs interp" ]
    (List.map
       (fun r ->
         [ r.o_name; Harness.ms r.stencil_s; Harness.ms r.full_s;
           Harness.ms r.interp_s;
           Printf.sprintf "%.2fx" (r.interp_s /. r.stencil_s) ])
       results);
  let s, f, i = oneshot_totals results in
  Printf.printf "workload one-shot totals: stencil %.2f ms, full %.2f ms, interpreted %.2f ms (stencil wins %.2fx)\n"
    (s *. 1e3) (f *. 1e3) (i *. 1e3) (i /. s)

let json_of ~sf compile oneshot =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"sf\": %g,\n" sf);
  Buffer.add_string buf
    (Printf.sprintf "  \"workload_compile_ratio\": %.1f,\n" (workload_ratio compile));
  Buffer.add_string buf "  \"compile\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": \"%s\", \"shape\": \"%s\", \"bind_ns\": %.1f, \
            \"full_ns\": %.1f, \"ratio\": %.1f }%s\n"
           r.name r.shape r.bind_ns r.full_ns (ratio r)
           (if i = List.length compile - 1 then "" else ",")))
    compile;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"oneshot\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": \"%s\", \"stencil_ms\": %.3f, \"full_ms\": %.3f, \
            \"interp_ms\": %.3f }%s\n"
           r.o_name (r.stencil_s *. 1e3) (r.full_s *. 1e3) (r.interp_s *. 1e3)
           (if i = List.length oneshot - 1 then "" else ",")))
    oneshot;
  Buffer.add_string buf "  ],\n";
  let s, _, i = oneshot_totals oneshot in
  Buffer.add_string buf
    (Printf.sprintf "  \"oneshot_stencil_total_ms\": %.3f,\n" (s *. 1e3));
  Buffer.add_string buf
    (Printf.sprintf "  \"oneshot_interp_total_ms\": %.3f\n" (i *. 1e3));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_json ~sf compile oneshot =
  let path =
    if Sys.file_exists "bench" && Sys.is_directory "bench" then
      Filename.concat "bench" "BENCH_codegen.json"
    else "BENCH_codegen.json"
  in
  let oc = open_out path in
  output_string oc (json_of ~sf compile oneshot);
  close_out oc;
  Printf.printf "wrote %s\n" path

(* Gate-scale measurement: one shared database. *)
let smoke () =
  let db = build_db ~sf:smoke_sf in
  let compile = measure_compile ~batches:3 db in
  let oneshot = measure_oneshot ~reps:3 db in
  (compile, oneshot)

(* Full run: print both ablation tables and refresh the committed
   baseline at smoke scale. *)
let e23 () =
  Harness.section "E23: copy-and-patch stencil compile tier";
  let db = build_db ~sf:smoke_sf in
  Printf.printf "(TPC-H-analog data at SF %g)\n\ncompile cost (ns to produce an executable closure)\n"
    smoke_sf;
  let compile = measure_compile db in
  print_compile_table compile;
  Printf.printf "\none-shot total: cold compile + single execution\n";
  let oneshot = measure_oneshot db in
  print_oneshot_table oneshot;
  write_json ~sf:smoke_sf compile oneshot
