(* E24: graceful degradation under memory pressure — the cost of going
   out-of-core.

   For the three spillable operator families (hash join, hash
   aggregation, sort) the experiment runs the same query twice on the
   same table: unbudgeted (fully in-memory) and under a byte budget a
   small fraction of the working set, which forces Grace partitioning /
   sorted-run merging through the spill files.  Reported: rows/sec both
   ways, the slowdown factor, and the spill traffic.  Correctness is
   asserted, not sampled — the spilled run must return exactly the
   in-memory row count (and the same single value for scalar results).

   The module is shared by the full run ([main.exe E24], which prints
   the table EXPERIMENTS.md records and rewrites
   [bench/BENCH_spill.json]) and the regression gate ([check_bench.exe]
   in `dune runtest`), which re-runs the same scale and fails if
   spilling stops engaging, stops being transparent, or collapses
   against the committed baseline. *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema
module Table = Quill_storage.Table
module Catalog = Quill_storage.Catalog
module Metrics = Quill_obs.Metrics
module Rng = Quill_util.Rng

let m_bytes = Metrics.counter "quill.spill.bytes"
let m_runs = Metrics.counter "quill.spill.runs"

(* Scale for the committed baseline and the runtest gate: the working
   sets (join build ~rows/4 wide groups, agg table ~rows/4 groups, full
   sort) sit at several MiB, so the 1 MiB budget below forces every
   operator 3-6x over budget without making `dune runtest` crawl. *)
let smoke_rows = 150_000
let budget = 1024 * 1024

(* sp(k INT, v INT, f FLOAT): k spans rows/4 values so the join has ~4
   matches per probe row and the aggregation builds rows/4 groups. *)
let build_db ~rows =
  let rng = Rng.create 20260808 in
  let t =
    Table.create ~name:"sp"
      (Schema.create
         [ Schema.col ~nullable:false "k" Value.Int_t;
           Schema.col ~nullable:false "v" Value.Int_t;
           Schema.col ~nullable:false "f" Value.Float_t ])
  in
  for _ = 1 to rows do
    Table.insert t
      [| Value.Int (Rng.int rng (rows / 4)); Value.Int (Rng.int rng 10_000);
         Value.Float (Rng.float rng) |]
  done;
  let db = Quill.Db.create () in
  Catalog.add (Quill.Db.catalog db) t;
  Quill.Db.analyze db "sp";
  db

let queries =
  [ ("hash_join", "SELECT count(*) FROM sp a, sp b WHERE a.k = b.k");
    (* sum(v), not sum(f): merging spilled partial sums reassociates the
       addition, which is exact for ints but perturbs float ULPs and
       would flake the fingerprint check. *)
    ("hash_agg", "SELECT k, count(*), sum(v) FROM sp GROUP BY k");
    ("sort", "SELECT k, v FROM sp ORDER BY v, k") ]

type result = {
  name : string;
  inmem_rps : float;  (** input rows/sec, no budget *)
  spill_rps : float;  (** input rows/sec under the budget *)
  spill_bytes : int;  (** spill traffic of one budgeted run *)
  spill_runs : int;
}

let fail fmt = Printf.ksprintf failwith fmt

(* One scalar fingerprint of a result so the two runs can be compared
   without holding both materializations: row count plus an
   order-insensitive row-hash sum (a spilled aggregation legitimately
   emits its groups key-sorted rather than in hash-table order). *)
let fingerprint t =
  let acc = ref 0 in
  for i = 0 to Table.row_count t - 1 do
    let row = Table.get_row t i in
    let h = ref 17 in
    Array.iter (fun v -> h := (!h * 31) + Value.hash v) row;
    acc := !acc + !h
  done;
  (Table.row_count t, !acc)

let measure ?(reps = 3) ~rows db =
  List.map
    (fun (name, sql) ->
      let inmem_fp = ref (0, 0) in
      let inmem_s =
        Harness.median_time ~reps (fun () ->
            inmem_fp := fingerprint (Quill.Db.query db sql))
      in
      let spill_fp = ref (0, 0) in
      let bytes0 = ref 0 and runs0 = ref 0 in
      let spill_s =
        Harness.median_time ~reps (fun () ->
            bytes0 := Metrics.value m_bytes;
            runs0 := Metrics.value m_runs;
            spill_fp := fingerprint (Quill.Db.query db ~budget_bytes:budget sql))
      in
      let spill_bytes = Metrics.value m_bytes - !bytes0 in
      let spill_runs = Metrics.value m_runs - !runs0 in
      (* Transparency is part of the benchmark's contract. *)
      let rc_mem, h_mem = !inmem_fp and rc_sp, h_sp = !spill_fp in
      if rc_mem <> rc_sp || h_mem <> h_sp then
        fail "E24 %s: spilled run differs (%d rows [#%x] vs %d rows [#%x])" name
          rc_mem h_mem rc_sp h_sp;
      if spill_bytes = 0 then
        fail "E24 %s: the %d-byte budget did not force any spilling" name budget;
      (* Sorts count the ordered output as work too, but input rows are a
         fine common denominator for a before/after ratio. *)
      { name;
        inmem_rps = Float.of_int rows /. inmem_s;
        spill_rps = Float.of_int rows /. spill_s;
        spill_bytes;
        spill_runs })
    queries

let mrps v = Printf.sprintf "%.2f" (v /. 1e6)

let print_table results =
  Harness.table
    ~header:
      [ "operator"; "in-mem Mrows/s"; "spill Mrows/s"; "slowdown"; "spilled MiB";
        "runs" ]
    (List.map
       (fun r ->
         [ r.name; mrps r.inmem_rps; mrps r.spill_rps;
           Printf.sprintf "%.2fx" (r.inmem_rps /. r.spill_rps);
           Printf.sprintf "%.1f" (Float.of_int r.spill_bytes /. 1024.0 /. 1024.0);
           string_of_int r.spill_runs ])
       results)

let json_of ~rows results =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"rows\": %d,\n" rows);
  Buffer.add_string buf (Printf.sprintf "  \"budget_bytes\": %d,\n" budget);
  Buffer.add_string buf "  \"benchmarks\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": \"%s\", \"inmem_rows_per_sec\": %.1f, \
            \"spill_rows_per_sec\": %.1f, \"slowdown\": %.2f, \
            \"spill_bytes\": %d }%s\n"
           r.name r.inmem_rps r.spill_rps
           (r.inmem_rps /. r.spill_rps)
           r.spill_bytes
           (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let write_json ~rows results =
  let path =
    if Sys.file_exists "bench" && Sys.is_directory "bench" then
      Filename.concat "bench" "BENCH_spill.json"
    else "BENCH_spill.json"
  in
  let oc = open_out path in
  output_string oc (json_of ~rows results);
  close_out oc;
  Printf.printf "wrote %s\n" path

(* The runtest gate re-measures at the committed scale with fewer reps. *)
let smoke () =
  let db = build_db ~rows:smoke_rows in
  measure ~reps:1 ~rows:smoke_rows db

let e24 () =
  Harness.section "E24: out-of-core execution cost (spill vs in-memory)";
  Printf.printf "(building %d-row table; budget %d bytes ...)\n%!" smoke_rows budget;
  let db = build_db ~rows:smoke_rows in
  let results = measure ~reps:5 ~rows:smoke_rows db in
  print_table results;
  write_json ~rows:smoke_rows results
