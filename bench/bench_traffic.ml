(* E21: high-QPS traffic — throughput and latency percentiles vs session
   count and cache policy, driven by the lib/workload traffic driver.

   Shared by two entry points: the full run ([main.exe E21], which
   prints the sweep EXPERIMENTS.md records and rewrites
   [bench/BENCH_traffic.json] from a smoke-scale measurement) and the
   regression gate ([check_bench.exe], wired into `dune runtest`, which
   re-runs the smoke scale and compares throughput and p99 against the
   committed baseline).  The TRAFFIC experiment id runs just the smoke
   report inside `dune runtest` so every build exercises the driver. *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema
module Table = Quill_storage.Table
module Catalog = Quill_storage.Catalog
module Rng = Quill_util.Rng
module Driver = Quill_driver.Driver

(* Scale for the committed baseline and the runtest gate: ~1.2k queries
   over 20k rows keeps the smoke run around a second. *)
let smoke_rows = 20_000
let smoke_sessions = 4
let smoke_per_session = 300

(* traffic(k INT, v INT, grp INT): k is near-unique and indexed (point
   lookups), v is skewed — ~90% of rows in [0,10), the rest spread to
   1e6 — so range predicates over it swing across selectivity bands,
   and grp keys a small aggregation. *)
let build_store ~rows =
  let rng = Rng.create 777 in
  let schema =
    Schema.create
      [ Schema.col ~nullable:false "k" Value.Int_t;
        Schema.col ~nullable:false "v" Value.Int_t;
        Schema.col ~nullable:false "grp" Value.Int_t ]
  in
  let t = Table.create ~name:"traffic" schema in
  for _ = 1 to rows do
    let v =
      if Rng.int rng 10 < 9 then Rng.int rng 10 else Rng.int rng 1_000_000
    in
    Table.insert t
      [| Value.Int (Rng.int rng rows); Value.Int v; Value.Int (Rng.int rng 32) |]
  done;
  let db = Quill.Db.create () in
  Catalog.add (Quill.Db.catalog db) t;
  ignore (Quill.Db.exec db "CREATE INDEX ON traffic (k)");
  Quill.Db.analyze db "traffic";
  (db, Quill.Db.share db)

(* The query mix: point lookups through the index, band-crossing range
   counts, and a grouped aggregate — all parameterized, so the whole mix
   flows through the prepared plan-cache path. *)
let gen_op ~rows rng =
  match Rng.int rng 10 with
  | 0 | 1 | 2 | 3 | 4 | 5 ->
      { Driver.sql = "SELECT v, grp FROM traffic WHERE k = $1";
        params = [| Value.Int (Rng.int rng rows) |] }
  | 6 | 7 ->
      let cutoff = if Rng.int rng 2 = 0 then Rng.int rng 10 else Rng.int rng 1_000_000 in
      { Driver.sql = "SELECT count(*) FROM traffic WHERE v < $1";
        params = [| Value.Int cutoff |] }
  | _ ->
      { Driver.sql = "SELECT grp, count(*) FROM traffic WHERE v < $1 GROUP BY grp";
        params = [| Value.Int (Rng.int rng 20) |] }

let run_once ?(warmup = 0) ~rows ~sessions ~per_session ~mode ~rate store =
  let streams =
    Driver.streams ~sessions ~per_session ~seed:42 (gen_op ~rows)
  in
  Driver.run
    ~spec:{ Driver.mode; rate; warmup }
    ~target:(Driver.In_process store) streams

(** [smoke ()] is the fixed-scale measurement the gate and the baseline
    share.  The warmup keeps first-run planning and tier-up compilation
    out of the recorded percentiles, which would otherwise dominate the
    p99 and make the gate flaky. *)
let smoke () =
  let _db, store = build_store ~rows:smoke_rows in
  run_once ~warmup:50 ~rows:smoke_rows ~sessions:smoke_sessions
    ~per_session:smoke_per_session ~mode:Driver.Prepared ~rate:0.0 store

let json_of (r : Driver.report) =
  Printf.sprintf
    "{\n  \"rows\": %d,\n  \"sessions\": %d,\n  \"ops\": %d,\n  \"qps\": %.1f,\n\
    \  \"p50_ms\": %.4f,\n  \"p99_ms\": %.4f\n}\n"
    smoke_rows r.Driver.sessions r.Driver.acked r.Driver.qps
    (r.Driver.p50 *. 1e3) (r.Driver.p99 *. 1e3)

let write_json r =
  let path =
    if Sys.file_exists "bench" && Sys.is_directory "bench" then
      Filename.concat "bench" "BENCH_traffic.json"
    else "BENCH_traffic.json"
  in
  let oc = open_out path in
  output_string oc (json_of r);
  close_out oc;
  Printf.printf "wrote %s\n" path

let ms v = Printf.sprintf "%.3f" (v *. 1e3)

(** The TRAFFIC smoke experiment: one driver run with the report (and
    its obs-metrics percentiles) printed, riding `dune runtest`. *)
let traffic_smoke () =
  Harness.section "TRAFFIC: smoke traffic run (driver sanity)";
  let r = smoke () in
  print_endline (Driver.render r);
  if r.Driver.acked <> r.Driver.issued then begin
    Printf.eprintf "TRAFFIC: %d issued but %d acked\n" r.Driver.issued
      r.Driver.acked;
    exit 1
  end

(** The full E21 experiment: throughput/latency vs session count and
    cache policy, plus an open-loop run showing schedule lag, then the
    baseline refresh. *)
let e21 () =
  Harness.section "E21: traffic throughput/latency vs sessions and cache policy";
  let rows = 200_000 in
  let _db, store = build_store ~rows in
  let per_session = 400 in
  let sweep =
    List.concat_map
      (fun sessions ->
        List.map
          (fun (policy, mode) ->
            let r = run_once ~rows ~sessions ~per_session ~mode ~rate:0.0 store in
            [ string_of_int sessions; policy;
              Printf.sprintf "%.0f" r.Driver.qps; ms r.Driver.p50;
              ms r.Driver.p95; ms r.Driver.p99; ms r.Driver.max;
              string_of_int r.Driver.errors ])
          [ ("cached", Driver.Prepared); ("fresh", Driver.Fresh) ])
      [ 1; 2; 4; 8 ]
  in
  Harness.table
    ~header:[ "sessions"; "plans"; "qps"; "p50 ms"; "p95 ms"; "p99 ms"; "max ms"; "errors" ]
    sweep;
  (* Open loop at a rate the closed loop can sustain: percentiles now
     include any queueing behind the schedule rather than service time
     alone. *)
  let closed = run_once ~rows ~sessions:4 ~per_session ~mode:Driver.Prepared ~rate:0.0 store in
  let rate = closed.Driver.qps *. 0.6 in
  let open_r = run_once ~rows ~sessions:4 ~per_session ~mode:Driver.Prepared ~rate store in
  Printf.printf "\nopen loop @ %.0f arrivals/s (4 sessions):\n%s\n" rate
    (Driver.render open_r);
  print_newline ();
  write_json (smoke ())
