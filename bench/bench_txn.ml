(* MVCC microbenchmarks (experiment E20): what concurrent readers cost
   under writer churn.  Snapshot isolation promises readers never block
   behind writers — a reader pins its snapshot at [begin] and scans
   immutable table versions — so aggregate read throughput should hold
   up while a writer commits as fast as it can, and every read must see
   a consistent committed snapshot (the bank-balance invariant: SUM over
   accounts never moves, because each transfer is atomic).

   Smoke-scale parameters ride with `dune runtest` so the MVCC read path
   and the invariant check cannot rot between full benchmark runs. *)

module Db = Quill.Db
module Value = Quill_storage.Value
module Table = Quill_storage.Table

let accounts = 64
let initial = 100

let build_store () =
  let root = Db.create () in
  ignore (Db.exec root "CREATE TABLE acct (id INT NOT NULL, bal INT NOT NULL)");
  let values =
    String.concat ", "
      (List.init accounts (fun i -> Printf.sprintf "(%d, %d)" i initial))
  in
  ignore (Db.exec root (Printf.sprintf "INSERT INTO acct VALUES %s" values));
  (root, Db.share root)

let sum_bal db =
  match Table.get (Db.query db "SELECT SUM(bal) FROM acct") 0 0 with
  | Value.Int s -> s
  | v -> failwith ("E20: non-integer SUM(bal): " ^ Value.to_string v)

(* One transfer: move 1 from account [a] to [a+1], atomically (a single
   auto-commit UPDATE). *)
let transfer db a =
  ignore
    (Db.exec db
       (Printf.sprintf
          "UPDATE acct SET bal = bal + CASE WHEN id = %d THEN -1 ELSE 1 END \
           WHERE id = %d OR id = %d"
          a a (a + 1)))

(* Aggregate wall time of [readers] threads each running [reads] SUM
   scans; every scan checks the invariant.  When [churn] is set, a
   writer thread commits transfers continuously until the readers are
   done; returns (reader seconds, writer commits). *)
let run_readers ~store ~readers ~reads ~churn () =
  let expected = accounts * initial in
  let torn = Atomic.make 0 in
  let stop = Atomic.make false in
  let commits = Atomic.make 0 in
  let writer =
    if not churn then None
    else
      Some
        (Thread.create
           (fun () ->
             let db = Db.session store in
             let i = ref 0 in
             while not (Atomic.get stop) do
               transfer db (!i mod (accounts - 1));
               incr i;
               Atomic.incr commits
             done;
             Db.close db)
           ())
  in
  let t0 = Quill_util.Timer.now () in
  let reader () =
    let db = Db.session store in
    for _ = 1 to reads do
      if sum_bal db <> expected then Atomic.incr torn
    done;
    Db.close db
  in
  let threads = List.init readers (fun _ -> Thread.create reader ()) in
  List.iter Thread.join threads;
  let dt = Quill_util.Timer.now () -. t0 in
  Atomic.set stop true;
  Option.iter Thread.join writer;
  if Atomic.get torn > 0 then
    failwith
      (Printf.sprintf "E20: %d torn reads (SUM(bal) <> %d)" (Atomic.get torn)
         expected);
  (dt, Atomic.get commits)

let run ~readers ~reads () =
  Harness.section "E20: concurrent readers vs writer churn (snapshot MVCC)";
  let _root, store = build_store () in
  let quiet, _ = run_readers ~store ~readers ~reads ~churn:false () in
  let churned, commits = run_readers ~store ~readers ~reads ~churn:true () in
  let total = readers * reads in
  let rate dt = float_of_int total /. dt in
  Harness.table
    ~header:[ "workload"; "reads"; "reads/s"; "writer commits" ]
    [ [ "quiescent"; string_of_int total;
        Printf.sprintf "%.0f" (rate quiet); "0" ];
      [ "writer churn"; string_of_int total;
        Printf.sprintf "%.0f" (rate churned); string_of_int commits ] ];
  Printf.printf
    "reader throughput under churn: %.2fx of quiescent; every read saw a \
     consistent snapshot\n"
    (rate churned /. rate quiet);
  if commits = 0 then
    failwith "E20: the churn writer never committed — scheduling is broken"
