(* MVCC microbenchmarks (experiment E20): what concurrent readers cost
   under writer churn.  Snapshot isolation promises readers never block
   behind writers — a reader pins its snapshot at [begin] and scans
   immutable table versions — so aggregate read throughput should hold
   up while a writer commits as fast as it can, and every read must see
   a consistent committed snapshot (the bank-balance invariant: SUM over
   accounts never moves, because each transfer is atomic).

   Smoke-scale parameters ride with `dune runtest` so the MVCC read path
   and the invariant check cannot rot between full benchmark runs. *)

module Db = Quill.Db
module Value = Quill_storage.Value
module Table = Quill_storage.Table

let accounts = 64
let initial = 100

let build_store () =
  let root = Db.create () in
  ignore (Db.exec root "CREATE TABLE acct (id INT NOT NULL, bal INT NOT NULL)");
  let values =
    String.concat ", "
      (List.init accounts (fun i -> Printf.sprintf "(%d, %d)" i initial))
  in
  ignore (Db.exec root (Printf.sprintf "INSERT INTO acct VALUES %s" values));
  (root, Db.share root)

let sum_bal db =
  match Table.get (Db.query db "SELECT SUM(bal) FROM acct") 0 0 with
  | Value.Int s -> s
  | v -> failwith ("E20: non-integer SUM(bal): " ^ Value.to_string v)

(* One transfer: move 1 from account [a] to [a+1], atomically (a single
   auto-commit UPDATE). *)
let transfer db a =
  ignore
    (Db.exec db
       (Printf.sprintf
          "UPDATE acct SET bal = bal + CASE WHEN id = %d THEN -1 ELSE 1 END \
           WHERE id = %d OR id = %d"
          a a (a + 1)))

(* Aggregate wall time of [readers] threads each running [reads] SUM
   scans; every scan checks the invariant.  When [churn] is set, a
   writer thread commits transfers continuously until the readers are
   done; returns (reader seconds, writer commits). *)
let run_readers ~store ~readers ~reads ~churn () =
  let expected = accounts * initial in
  let torn = Atomic.make 0 in
  let stop = Atomic.make false in
  let commits = Atomic.make 0 in
  let writer =
    if not churn then None
    else
      Some
        (Thread.create
           (fun () ->
             let db = Db.session store in
             let i = ref 0 in
             while not (Atomic.get stop) do
               transfer db (!i mod (accounts - 1));
               incr i;
               Atomic.incr commits
             done;
             Db.close db)
           ())
  in
  let t0 = Quill_util.Timer.now () in
  let reader () =
    let db = Db.session store in
    for _ = 1 to reads do
      if sum_bal db <> expected then Atomic.incr torn
    done;
    Db.close db
  in
  let threads = List.init readers (fun _ -> Thread.create reader ()) in
  List.iter Thread.join threads;
  let dt = Quill_util.Timer.now () -. t0 in
  Atomic.set stop true;
  Option.iter Thread.join writer;
  if Atomic.get torn > 0 then
    failwith
      (Printf.sprintf "E20: %d torn reads (SUM(bal) <> %d)" (Atomic.get torn)
         expected);
  (dt, Atomic.get commits)

let run ~readers ~reads () =
  Harness.section "E20: concurrent readers vs writer churn (snapshot MVCC)";
  let _root, store = build_store () in
  let quiet, _ = run_readers ~store ~readers ~reads ~churn:false () in
  let churned, commits = run_readers ~store ~readers ~reads ~churn:true () in
  let total = readers * reads in
  let rate dt = float_of_int total /. dt in
  Harness.table
    ~header:[ "workload"; "reads"; "reads/s"; "writer commits" ]
    [ [ "quiescent"; string_of_int total;
        Printf.sprintf "%.0f" (rate quiet); "0" ];
      [ "writer churn"; string_of_int total;
        Printf.sprintf "%.0f" (rate churned); string_of_int commits ] ];
  Printf.printf
    "reader throughput under churn: %.2fx of quiescent; every read saw a \
     consistent snapshot\n"
    (rate churned /. rate quiet);
  if commits = 0 then
    failwith "E20: the churn writer never committed — scheduling is broken"

(* --- E22: disjoint-writer commit scaling -------------------------------- *)

(* Writers updating disjoint chunk-aligned row ranges of ONE hot table.
   At PR 6's name granularity (the ablation baseline, [Name_level] on a
   single commit stripe) every round commits exactly one winner and
   aborts the rest; at row/chunk granularity all of them commit with
   zero conflicts.  The interleaving is deterministic — open all
   transactions, write, then commit them in turn — so the conflict
   counts are exact and the check_bench gate cannot flake on thread
   scheduling.  A separate threaded phase measures the sharded commit
   path (stripe ablation) under real contention. *)

module Store = Quill_txn.Store
module Metrics = Quill_obs.Metrics

let e22_chunk = 64

type e22_result = {
  mode : string;
  committed : int;
  conflicted : int;
  seconds : float;
}

let e22_qps r = float_of_int r.committed /. r.seconds

(* One hot table of [writers] chunk-aligned ranges; [rounds] rounds of
   open-all / update-own-range / commit-all. *)
let run_disjoint ~mode ~granularity ~stripes ~writers ~rounds () =
  let old_chunk = !Table.default_chunk_rows in
  Table.default_chunk_rows := e22_chunk;
  Fun.protect
    ~finally:(fun () -> Table.default_chunk_rows := old_chunk)
    (fun () ->
      let root = Db.create () in
      ignore (Db.exec root "CREATE TABLE hot (id INT NOT NULL, v INT NOT NULL)");
      let values =
        String.concat ", "
          (List.init (writers * e22_chunk) (fun i -> Printf.sprintf "(%d, 0)" i))
      in
      ignore (Db.exec root (Printf.sprintf "INSERT INTO hot VALUES %s" values));
      let store = Db.share root in
      Store.set_granularity store granularity;
      Store.set_stripe_count store stripes;
      let sessions = Array.init writers (fun _ -> Db.session store) in
      let committed = ref 0 and conflicted = ref 0 in
      let t0 = Quill_util.Timer.now () in
      for _ = 1 to rounds do
        Array.iter (fun s -> ignore (Db.exec s "BEGIN")) sessions;
        Array.iteri
          (fun w s ->
            ignore
              (Db.exec s
                 (Printf.sprintf
                    "UPDATE hot SET v = v + 1 WHERE id >= %d AND id < %d"
                    (w * e22_chunk)
                    ((w + 1) * e22_chunk))))
          sessions;
        Array.iter
          (fun s ->
            match Db.exec s "COMMIT" with
            | _ -> incr committed
            | exception Db.Conflict _ -> incr conflicted)
          sessions
      done;
      let seconds = Quill_util.Timer.now () -. t0 in
      (* Merge correctness at bench scale: with zero conflicts every
         increment of every committed transaction must survive. *)
      if granularity = Store.Row_level then begin
        let want = writers * e22_chunk * rounds in
        match Table.get (Db.query root "SELECT SUM(v) FROM hot") 0 0 with
        | Value.Int s when s = want -> ()
        | v ->
            failwith
              (Printf.sprintf "E22: lost updates after merge (SUM %s, want %d)"
                 (Value.to_string v) want)
      end;
      Array.iter Db.close sessions;
      { mode; committed = !committed; conflicted = !conflicted; seconds })

(* The deterministic ablation pair the gate consumes: name-granular
   single-stripe baseline vs row-granular sharded commit path. *)
let e22_pair ~writers ~rounds () =
  let name =
    run_disjoint ~mode:"name-granular (1 stripe)" ~granularity:Store.Name_level
      ~stripes:1 ~writers ~rounds ()
  in
  let row =
    run_disjoint ~mode:"row-granular (16 stripes)"
      ~granularity:Store.Row_level ~stripes:16 ~writers ~rounds ()
  in
  (name, row)

(* Parallel stripe ablation (domains — sys-threads share the runtime
   lock and would never truly contend).  [heavy] domains run merge-heavy
   commits against disjoint ranges of one big hot table: each commit
   splices its chunks onto the current version, which copies the hot
   table's row-pointer vector under the HOT table's stripe.  [light]
   domains each commit tiny transactions against their own table.  With
   one stripe every light commit queues behind the splices; with many
   stripes the light path stays clear — light commits/s is the payoff
   being measured.  Returns (light commits/s, stripe waits). *)
let run_sharded ~stripes ~light ~heavy ~txns () =
  let hot_range = 32768 in
  let root = Db.create () in
  ignore (Db.exec root "CREATE TABLE hot (id INT NOT NULL, v INT NOT NULL)");
  let n = heavy * hot_range in
  let b = Buffer.create (n * 8) in
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_string b ", ";
    Buffer.add_string b (Printf.sprintf "(%d,0)" i)
  done;
  ignore (Db.exec root ("INSERT INTO hot VALUES " ^ Buffer.contents b));
  for w = 0 to light - 1 do
    ignore (Db.exec root (Printf.sprintf "CREATE TABLE s%d (a INT NOT NULL)" w));
    ignore (Db.exec root (Printf.sprintf "INSERT INTO s%d VALUES (0)" w))
  done;
  let store = Db.share root in
  Store.set_stripe_count store stripes;
  let waits0 = Metrics.value Store.m_stripe_waits in
  let stop = Atomic.make false in
  let heavy_worker w =
    let db = Db.session store in
    let lo = w * hot_range in
    while not (Atomic.get stop) do
      ignore (Db.exec db "BEGIN");
      ignore
        (Db.exec db
           (Printf.sprintf "UPDATE hot SET v = v + 1 WHERE id >= %d AND id < %d"
              lo (lo + hot_range)));
      ignore (Db.exec db "COMMIT")
    done;
    Db.close db
  in
  let light_worker w =
    let db = Db.session store in
    for _ = 1 to txns do
      ignore (Db.exec db "BEGIN");
      ignore (Db.exec db (Printf.sprintf "UPDATE s%d SET a = a + 1" w));
      ignore (Db.exec db "COMMIT")
    done;
    Db.close db
  in
  let heavies =
    List.init heavy (fun w -> Domain.spawn (fun () -> heavy_worker w))
  in
  let t0 = Quill_util.Timer.now () in
  let lights =
    List.init light (fun w -> Domain.spawn (fun () -> light_worker w))
  in
  List.iter Domain.join lights;
  let dt = Quill_util.Timer.now () -. t0 in
  Atomic.set stop true;
  List.iter Domain.join heavies;
  ( float_of_int (light * txns) /. dt,
    Metrics.value Store.m_stripe_waits - waits0 )

let print_e22 results =
  Harness.table
    ~header:[ "mode"; "committed"; "conflicts"; "commits/s" ]
    (List.map
       (fun r ->
         [ r.mode; string_of_int r.committed; string_of_int r.conflicted;
           Printf.sprintf "%.0f" (e22_qps r) ])
       results)

let run_e22 ~writers ~rounds ~sharded_txns () =
  Harness.section
    "E22: disjoint-row writer scaling (row/chunk conflict granularity)";
  let name, row = e22_pair ~writers ~rounds () in
  print_e22 [ name; row ];
  Printf.printf
    "%d disjoint writers, one hot table: %.1fx commit throughput, %d -> %d \
     conflicts\n"
    writers
    (e22_qps row /. e22_qps name)
    name.conflicted row.conflicted;
  Harness.section
    "E22b: sharded commit path (stripe ablation, light vs merge-heavy)";
  let light = 4 and heavy = 2 in
  (* Median of three trials per config — short parallel runs on a busy
     box are noisy, and the ablation difference is worth protecting. *)
  let median3 f =
    let trials = List.init 3 (fun _ -> f ()) in
    let by_qps = List.sort (fun (a, _) (b, _) -> compare a b) trials in
    let waits = List.fold_left (fun acc (_, w) -> acc + w) 0 trials in
    (fst (List.nth by_qps 1), waits)
  in
  let qps1, waits1 =
    median3 (fun () -> run_sharded ~stripes:1 ~light ~heavy ~txns:sharded_txns ())
  in
  let qps16, waits16 =
    median3 (fun () ->
        run_sharded ~stripes:16 ~light ~heavy ~txns:sharded_txns ())
  in
  Harness.table
    ~header:[ "stripes"; "light commits/s"; "stripe waits" ]
    [ [ "1"; Printf.sprintf "%.0f" qps1; string_of_int waits1 ];
      [ "16"; Printf.sprintf "%.0f" qps16; string_of_int waits16 ] ];
  Printf.printf
    "%d light committers vs %d merge-heavy committers: %.2fx light commits/s \
     with 16 stripes\n"
    light heavy (qps16 /. qps1)
