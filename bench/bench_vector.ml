(* E18 microbenchmarks: typed batches + selection vectors vs the boxed
   ablation ([Vector.enable_typed := false]).

   The module is shared by two entry points: the full benchmark run
   ([main.exe E18], which prints the ablation table EXPERIMENTS.md
   records and rewrites [bench/BENCH_vector.json]) and the regression
   gate ([check_bench.exe], wired into `dune runtest`, which re-runs
   the smoke scale and compares against the committed baseline). *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema
module Table = Quill_storage.Table
module Catalog = Quill_storage.Catalog
module Vector = Quill_exec.Vector
module Rng = Quill_util.Rng

(* Scale used for the committed baseline and the runtest gate: big enough
   that per-query noise is small against the per-row work, small enough
   to stay in the seconds range inside `dune runtest`. *)
let smoke_rows = 200_000

(* vb(k INT, v INT, f FLOAT, tag TEXT): k spans 64 groups, v is uniform
   in [0, 10000) so predicates over it have predictable selectivity, f
   feeds float aggregation, and tag draws from 8 values so it
   dictionary-encodes. *)
let build_db ~rows =
  let rng = Rng.create 2024 in
  let tags =
    [| "alpha"; "beta"; "gamma"; "delta"; "epsilon"; "zeta"; "eta"; "theta" |]
  in
  let schema =
    Schema.create
      [ Schema.col ~nullable:false "k" Value.Int_t;
        Schema.col ~nullable:false "v" Value.Int_t;
        Schema.col ~nullable:false "f" Value.Float_t;
        Schema.col ~nullable:false "tag" Value.Str_t ]
  in
  let t = Table.create ~name:"vb" schema in
  for _ = 1 to rows do
    Table.insert t
      [| Value.Int (Rng.int rng 64); Value.Int (Rng.int rng 10_000);
         Value.Float (Rng.float rng); Value.Str tags.(Rng.int rng 8) |]
  done;
  let db = Quill.Db.create () in
  Catalog.add (Quill.Db.catalog db) t;
  Quill.Db.analyze db "vb";
  db

(* The three shapes the typed data plane is supposed to speed up: a
   selective scan+filter, the scan->filter->hash-agg pipeline (the
   acceptance benchmark), and a dict-coded string predicate feeding an
   aggregation. *)
let queries =
  [ ("filter_count", "SELECT count(*) FROM vb WHERE v < 200");
    ("filter_agg", "SELECT k, count(*), sum(f) FROM vb WHERE v < 1000 GROUP BY k");
    ("str_filter_agg",
     "SELECT k, sum(v) FROM vb WHERE tag < 'eta' AND v < 8000 GROUP BY k") ]

type result = { name : string; typed_rps : float; boxed_rps : float }

(* rows/sec is input rows over median wall time: both modes scan the same
   table, so the ratio is exactly the per-row cost ratio of the two data
   planes. *)
let measure ?(reps = 3) ~rows db =
  List.map
    (fun (name, sql) ->
      let run () = ignore (Quill.Db.query db ~engine:Quill.Db.Vectorized sql) in
      let timed flag =
        let prev = !Vector.enable_typed in
        Vector.enable_typed := flag;
        Fun.protect
          ~finally:(fun () -> Vector.enable_typed := prev)
          (fun () -> Harness.median_time ~reps run)
      in
      let typed_s = timed true in
      let boxed_s = timed false in
      { name;
        typed_rps = Float.of_int rows /. typed_s;
        boxed_rps = Float.of_int rows /. boxed_s })
    queries

let mrps v = Printf.sprintf "%.2f" (v /. 1e6)

let print_table results =
  Harness.table
    ~header:[ "benchmark"; "typed Mrows/s"; "boxed Mrows/s"; "speedup" ]
    (List.map
       (fun r ->
         [ r.name; mrps r.typed_rps; mrps r.boxed_rps;
           Printf.sprintf "%.2fx" (r.typed_rps /. r.boxed_rps) ])
       results)

let json_of ~rows results =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"rows\": %d,\n" rows);
  Buffer.add_string buf "  \"benchmarks\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": \"%s\", \"typed_rows_per_sec\": %.1f, \
            \"boxed_rows_per_sec\": %.1f, \"speedup\": %.2f }%s\n"
           r.name r.typed_rps r.boxed_rps
           (r.typed_rps /. r.boxed_rps)
           (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let write_json ~rows results =
  let path =
    if Sys.file_exists "bench" && Sys.is_directory "bench" then
      Filename.concat "bench" "BENCH_vector.json"
    else "BENCH_vector.json"
  in
  let oc = open_out path in
  output_string oc (json_of ~rows results);
  close_out oc;
  Printf.printf "wrote %s\n" path
