(* Durability microbenchmarks (experiment E19): what write-ahead logging
   costs per INSERT under each sync policy — against a purely in-memory
   session as the baseline — and how long recovery takes per replayed
   statement.  Smoke-scale parameters ride with `dune runtest` so the
   durable write path cannot rot between full benchmark runs. *)

module Db = Quill.Db
module Sim_fs = Quill_storage.Sim_fs
module Wal = Quill_storage.Wal

let tmpdir () =
  let p = Filename.temp_file "quill_bwal" "" in
  Sys.remove p;
  p

let rec rmrf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rmrf (Filename.concat path f)) (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else Sys.remove path

let insert_sql i = Printf.sprintf "INSERT INTO b VALUES (%d, 'payload-%d')" i i

type mode = In_memory | Durable of Db.sync_policy

let mode_name = function
  | In_memory -> "in-memory"
  | Durable p -> "wal sync=" ^ Wal.policy_name p

(* Wall time of [n] single-statement inserts on a fresh session. *)
let time_inserts ~n mode =
  Sim_fs.reset ();
  let dir = tmpdir () in
  let db =
    match mode with
    | In_memory -> Db.create ()
    | Durable p -> fst (Db.open_durable ~policy:p dir)
  in
  ignore (Db.exec db "CREATE TABLE b (k INT NOT NULL, v TEXT)");
  let t0 = Quill_util.Timer.now () in
  for i = 1 to n do
    ignore (Db.exec db (insert_sql i))
  done;
  let dt = Quill_util.Timer.now () -. t0 in
  (match Quill_storage.Table.get (Db.query db "SELECT count(*) FROM b") 0 0 with
  | Quill_storage.Value.Int c when c = n -> ()
  | _ -> failwith "E19: wrong row count after inserts");
  Db.close db;
  rmrf dir;
  dt

(* Wall time of [open_durable] over a WAL holding [n] inserts (plus the
   CREATE TABLE), i.e. a crash just before the first checkpoint. *)
let recovery_latency ~n =
  Sim_fs.reset ();
  let dir = tmpdir () in
  let db, _ = Db.open_durable ~policy:Db.Never dir in
  ignore (Db.exec db "CREATE TABLE b (k INT NOT NULL, v TEXT)");
  for i = 1 to n do
    ignore (Db.exec db (insert_sql i))
  done;
  Db.close db;
  Sim_fs.reset ();
  let t0 = Quill_util.Timer.now () in
  let db2, report = Db.open_durable dir in
  let dt = Quill_util.Timer.now () -. t0 in
  (match Quill_storage.Table.get (Db.query db2 "SELECT count(*) FROM b") 0 0 with
  | Quill_storage.Value.Int c when c = n -> ()
  | _ -> failwith "E19: recovery lost rows");
  Db.close db2;
  rmrf dir;
  (dt, report.Db.replayed)

let run ~inserts ~recovery_stmts () =
  Harness.section "E19: durability — group-commit overhead and recovery latency";
  let modes =
    [ In_memory; Durable Db.Never; Durable (Db.Every 32); Durable Db.On_commit ]
  in
  let timed = List.map (fun m -> (m, time_inserts ~n:inserts m)) modes in
  let base = List.assoc In_memory timed in
  Harness.table
    ~header:[ "mode"; Printf.sprintf "%d inserts" inserts; "us/insert"; "vs in-memory" ]
    (List.map
       (fun (m, dt) ->
         [ mode_name m; Harness.ms dt;
           Printf.sprintf "%.1f" (dt /. float_of_int inserts *. 1e6);
           Printf.sprintf "%.2fx" (dt /. base) ])
       timed);
  Harness.table
    ~header:[ "wal statements"; "recovery"; "us/statement" ]
    (List.map
       (fun n ->
         let dt, replayed = recovery_latency ~n in
         [ string_of_int replayed; Harness.ms dt;
           Printf.sprintf "%.1f" (dt /. float_of_int (max 1 replayed) *. 1e6) ])
       [ recovery_stmts; recovery_stmts * 4 ])
