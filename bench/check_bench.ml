(* Regression gates wired into `dune runtest`:

   - typed-batch data plane: re-runs the vector microbenchmarks at
     smoke scale and fails the build if typed throughput regressed more
     than 2x against the committed [bench/BENCH_vector.json] baseline,
     or if the typed path lost its edge over the boxed ablation;
   - traffic: re-runs the smoke traffic workload (argv.(2), optional)
     and fails if throughput collapsed more than 4x or p99 latency
     inflated more than 8x against [bench/BENCH_traffic.json].  The
     traffic bounds are loose on purpose — one CI box vs another varies
     a lot at millisecond latencies; the gate is for order-of-magnitude
     regressions, the committed numbers are for humans;
   - disjoint-writer scaling (E22 smoke): runs the deterministic
     interleaved ablation pair and fails if row-granular conflict
     detection reports ANY conflict on a disjoint workload, if its
     commit count is not at least 2x the name-granular single-stripe
     baseline's, or if its commit throughput does not beat that
     baseline outright.  Self-relative — no baseline file, and the
     interleaving is deterministic, so the counts cannot flake;
   - stencil compile tier (E23 smoke, argv.(3), optional): re-runs the
     copy-and-patch compile-cost and one-shot ablations on the
     TPC-H-analog workload and fails if any covered shape stops binding,
     if the workload compile-cost collapse falls below 3x (committed
     baseline ~8x, hash join ~17x), if the join shape falls below 6x, if
     one-shot stencil compilation+execution stops beating the
     interpreted tier on the workload total, or if the compile ratio
     collapsed more than 2.5x against [bench/BENCH_codegen.json].  The
     floors sit far under the committed numbers for the same reason the
     traffic bounds are loose: the gate is for structural regressions
     (an eager expression walk sneaking back into bind), not nanosecond
     noise.
   - out-of-core spill (E24 smoke, argv.(4), optional): re-runs the
     budgeted hash join / hash agg / sort ablations.  [Bench_spill.measure]
     itself fails loudly if a spilled result differs from the in-memory
     one or if the budget stops forcing spills; the gate additionally
     fails if budgeted throughput regressed more than 4x against
     [bench/BENCH_spill.json] or if any operator slows down more than
     25x going out-of-core (committed slowdowns are single-digit, so
     25x means the partitioning degenerated, not that the box is slow).

   The baseline files are tiny and hand-auditable, so they are parsed
   with a string scanner rather than a JSON dependency. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("check_bench: " ^ s); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* [field_after text pos key] finds ["key": <float>] at or after [pos]. *)
let field_after text pos key =
  let marker = "\"" ^ key ^ "\":" in
  match
    let mlen = String.length marker in
    let rec find i =
      if i + mlen > String.length text then None
      else if String.sub text i mlen = marker then Some (i + mlen)
      else find (i + 1)
    in
    find pos
  with
  | None -> fail "baseline is missing field %S" key
  | Some start ->
      let stop = ref start in
      while
        !stop < String.length text
        && (match text.[!stop] with ',' | '}' | ']' -> false | _ -> true)
      do
        incr stop
      done;
      float_of_string (String.trim (String.sub text start (!stop - start)))

let baseline_of text name =
  let marker = Printf.sprintf "\"name\": \"%s\"" name in
  let mlen = String.length marker in
  let rec find i =
    if i + mlen > String.length text then
      fail "baseline has no entry for benchmark %S" name
    else if String.sub text i mlen = marker then i
    else find (i + 1)
  in
  let pos = find 0 in
  (field_after text pos "typed_rows_per_sec", field_after text pos "boxed_rows_per_sec")

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_vector.json"
  in
  let baseline = read_file path in
  let rows = Bench_vector.smoke_rows in
  let db = Bench_vector.build_db ~rows in
  let results = Bench_vector.measure ~rows db in
  Printf.printf "vector smoke bench (%d rows) vs baseline %s\n" rows path;
  Bench_vector.print_table results;
  let failures = ref [] in
  List.iter
    (fun r ->
      let base_typed, _ = baseline_of baseline r.Bench_vector.name in
      (* The committed baseline demonstrates the >=2x typed-vs-boxed bar;
         the gate enforces (a) typed throughput has not collapsed more
         than 2x against that baseline and (b) typed still beats boxed by
         a healthy margin right now (1.5x, below the committed ~2x+ so
         machine-to-machine noise cannot flake the build). *)
      if r.Bench_vector.typed_rps *. 2.0 < base_typed then
        failures :=
          Printf.sprintf "%s: typed path regressed >2x (%.0f rows/s vs baseline %.0f)"
            r.Bench_vector.name r.Bench_vector.typed_rps base_typed
          :: !failures;
      if r.Bench_vector.typed_rps < 1.5 *. r.Bench_vector.boxed_rps then
        failures :=
          Printf.sprintf "%s: typed path lost its edge over boxed (%.2fx < 1.5x)"
            r.Bench_vector.name
            (r.Bench_vector.typed_rps /. r.Bench_vector.boxed_rps)
          :: !failures)
    results;
  if Array.length Sys.argv > 2 then begin
    let tpath = Sys.argv.(2) in
    let tbase = read_file tpath in
    let base_qps = field_after tbase 0 "qps" in
    let base_p99 = field_after tbase 0 "p99_ms" in
    let r = Bench_traffic.smoke () in
    Printf.printf "\ntraffic smoke bench vs baseline %s\n" tpath;
    print_endline (Quill_driver.Driver.render r);
    let qps = r.Quill_driver.Driver.qps in
    let p99_ms = r.Quill_driver.Driver.p99 *. 1e3 in
    if qps *. 4.0 < base_qps then
      failures :=
        Printf.sprintf "traffic: throughput regressed >4x (%.0f qps vs baseline %.0f)"
          qps base_qps
        :: !failures;
    if p99_ms > 8.0 *. base_p99 then
      failures :=
        Printf.sprintf "traffic: p99 inflated >8x (%.3f ms vs baseline %.3f ms)"
          p99_ms base_p99
        :: !failures;
    if r.Quill_driver.Driver.acked <> r.Quill_driver.Driver.issued then
      failures :=
        Printf.sprintf "traffic: %d issued but only %d acked"
          r.Quill_driver.Driver.issued r.Quill_driver.Driver.acked
        :: !failures
  end;
  (let name, row = Bench_txn.e22_pair ~writers:8 ~rounds:6 () in
   Printf.printf "\nE22 smoke: disjoint-writer ablation pair\n";
   Bench_txn.print_e22 [ name; row ];
   if row.Bench_txn.conflicted > 0 then
     failures :=
       Printf.sprintf
         "E22: %d conflicts on a disjoint-row workload (must be 0)"
         row.Bench_txn.conflicted
       :: !failures;
   if row.Bench_txn.committed < 2 * name.Bench_txn.committed then
     failures :=
       Printf.sprintf
         "E22: row-granular commits (%d) not 2x the name-granular baseline (%d)"
         row.Bench_txn.committed name.Bench_txn.committed
       :: !failures;
   if Bench_txn.e22_qps row <= Bench_txn.e22_qps name then
     failures :=
       Printf.sprintf
         "E22: disjoint-writer commit throughput (%.0f/s) does not beat the \
          single-stripe name-granular baseline (%.0f/s)"
         (Bench_txn.e22_qps row) (Bench_txn.e22_qps name)
       :: !failures);
  if Array.length Sys.argv > 3 then begin
    let cpath = Sys.argv.(3) in
    let cbase = read_file cpath in
    let base_ratio = field_after cbase 0 "workload_compile_ratio" in
    let compile, oneshot = Bench_codegen.smoke () in
    Printf.printf "\ncodegen smoke bench vs baseline %s\n" cpath;
    Bench_codegen.print_compile_table compile;
    Bench_codegen.print_oneshot_table oneshot;
    (* measure_compile already failed loudly if any covered shape missed. *)
    let ratio = Bench_codegen.workload_ratio compile in
    if ratio < 3.0 then
      failures :=
        Printf.sprintf
          "E23: workload compile-cost collapse fell below 3x (%.1fx; stencil \
           bind is doing eager per-expression work again?)"
          ratio
        :: !failures;
    if ratio *. 2.5 < base_ratio then
      failures :=
        Printf.sprintf "E23: compile ratio regressed >2.5x vs baseline (%.1fx vs %.1fx)"
          ratio base_ratio
        :: !failures;
    List.iter
      (fun r ->
        if r.Bench_codegen.shape = "hash-join-probe" && Bench_codegen.ratio r < 6.0
        then
          failures :=
            Printf.sprintf "E23: join stencil bind only %.1fx cheaper than full codegen (floor 6x)"
              (Bench_codegen.ratio r)
            :: !failures)
      compile;
    let stencil_total, _, interp_total = Bench_codegen.oneshot_totals oneshot in
    if stencil_total >= interp_total then
      failures :=
        Printf.sprintf
          "E23: one-shot stencil workload total (%.2f ms) no longer beats the \
           interpreted tier (%.2f ms)"
          (stencil_total *. 1e3) (interp_total *. 1e3)
        :: !failures
  end;
  if Array.length Sys.argv > 4 then begin
    let spath = Sys.argv.(4) in
    let sbase = read_file spath in
    (* Correctness and spill engagement are asserted inside measure;
       reaching this point means every budgeted run matched in-memory. *)
    let results = Bench_spill.smoke () in
    Printf.printf "\nspill smoke bench (%d rows, %d-byte budget) vs baseline %s\n"
      Bench_spill.smoke_rows Bench_spill.budget spath;
    Bench_spill.print_table results;
    List.iter
      (fun r ->
        let marker = Printf.sprintf "\"name\": \"%s\"" r.Bench_spill.name in
        let mlen = String.length marker in
        let rec find i =
          if i + mlen > String.length sbase then
            fail "spill baseline has no entry for benchmark %S" r.Bench_spill.name
          else if String.sub sbase i mlen = marker then i
          else find (i + 1)
        in
        let pos = find 0 in
        let base_spill = field_after sbase pos "spill_rows_per_sec" in
        if r.Bench_spill.spill_rps *. 4.0 < base_spill then
          failures :=
            Printf.sprintf
              "E24 %s: budgeted throughput regressed >4x (%.0f rows/s vs baseline %.0f)"
              r.Bench_spill.name r.Bench_spill.spill_rps base_spill
            :: !failures;
        if r.Bench_spill.inmem_rps > 25.0 *. r.Bench_spill.spill_rps then
          failures :=
            Printf.sprintf
              "E24 %s: out-of-core slowdown exploded (%.1fx > 25x; partitioning \
               degenerated?)"
              r.Bench_spill.name
              (r.Bench_spill.inmem_rps /. r.Bench_spill.spill_rps)
            :: !failures)
      results
  end;
  match !failures with
  | [] -> print_endline "check_bench: OK"
  | fs ->
      List.iter (fun f -> prerr_endline ("check_bench: " ^ f)) fs;
      exit 1
