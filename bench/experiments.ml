(* The experiment suite: one entry per row of DESIGN.md's experiment
   index (E1..E18).  Each experiment prints the table/series EXPERIMENTS.md
   records.  Sizes are chosen so the full suite completes in a few
   minutes on a laptop. *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema
module Table = Quill_storage.Table
module Catalog = Quill_storage.Catalog
module Bexpr = Quill_plan.Bexpr
module Physical = Quill_optimizer.Physical
module Picker = Quill_optimizer.Picker
module Card = Quill_optimizer.Card
module Rewrite = Quill_optimizer.Rewrite
module Join_order = Quill_optimizer.Join_order
module Sort_algos = Quill_exec.Sort_algos
module Join_algos = Quill_exec.Join_algos
module Profile = Quill_exec.Profile
module Tiering = Quill_adaptive.Tiering
module Plan_cache = Quill_adaptive.Plan_cache
module Feedback = Quill_adaptive.Feedback
module Micro_w = Quill_workload.Micro
module Tpch = Quill_workload.Tpch
module Rng = Quill_util.Rng

let tpch_sf = 0.02

let tpch_db =
  lazy
    (let db = Quill.Db.create () in
     Printf.printf "(loading TPC-H-like data at SF %.2f ...)\n%!" tpch_sf;
     Tpch.load (Quill.Db.catalog db) ~sf:tpch_sf ~seed:42;
     List.iter (Quill.Db.analyze db) [ "lineitem"; "orders"; "customer"; "supplier" ];
     db)

(* (algo, build_left, est_rows) of the topmost join in the plan. *)
let rec find_join = function
  | Physical.Join { algo; build_left; info; _ } ->
      Some (algo, build_left, info.Physical.est_rows)
  | Physical.Project (_, i, _) | Physical.Filter (_, i, _) | Physical.Distinct (i, _) ->
      find_join i
  | Physical.Aggregate { input; _ } | Physical.Window { input; _ }
  | Physical.Sort { input; _ } | Physical.Top_k { input; _ }
  | Physical.Limit { input; _ } ->
      find_join input
  | _ -> None

let rec find_agg_algo = function
  | Physical.Aggregate { algo; _ } -> Some algo
  | Physical.Project (_, i, _) | Physical.Filter (_, i, _) | Physical.Distinct (i, _) ->
      find_agg_algo i
  | Physical.Window { input; _ } | Physical.Sort { input; _ } | Physical.Top_k { input; _ }
  | Physical.Limit { input; _ } ->
      find_agg_algo input
  | Physical.Join _ | Physical.Scan _ | Physical.Index_scan _ | Physical.One_row -> None

(* ----------------------------------------------------------------- E1 *)

let e1 () =
  Harness.section
    "E1: expression evaluation tiers (interpreter vs closures vs bytecode VM)";
  let n = 4096 in
  let rng = Rng.create 7 in
  let rows =
    Array.init n (fun _ ->
        [| Value.Int (Rng.int rng 1000); Value.Int (Rng.int rng 1000);
           Value.Int (Rng.int rng 1000); Value.Float (Rng.float rng) |])
  in
  (* (c0 * 2 + c1 > c2) AND c3 < 0.5 — a typical WHERE clause shape. *)
  let ic i = { Bexpr.node = Bexpr.Col i; dtype = Value.Int_t } in
  let il v = { Bexpr.node = Bexpr.Lit (Value.Int v); dtype = Value.Int_t } in
  let e =
    { Bexpr.node =
        Bexpr.And
          ( { Bexpr.node =
                Bexpr.Cmp
                  ( Bexpr.Gt,
                    { Bexpr.node =
                        Bexpr.Arith
                          ( Bexpr.Add,
                            { Bexpr.node = Bexpr.Arith (Bexpr.Mul, ic 0, il 2);
                              dtype = Value.Int_t },
                            ic 1 );
                      dtype = Value.Int_t },
                    ic 2 );
              dtype = Value.Bool_t },
            { Bexpr.node =
                Bexpr.Cmp
                  ( Bexpr.Lt,
                    { Bexpr.node = Bexpr.Col 3; dtype = Value.Float_t },
                    { Bexpr.node = Bexpr.Lit (Value.Float 0.5); dtype = Value.Float_t } );
              dtype = Value.Bool_t } );
      dtype = Value.Bool_t }
  in
  let closure = Quill_compile.Expr_compile.compile e in
  let vm = Quill_compile.Expr_vm.compile e in
  let count fn =
    let c = ref 0 in
    Array.iter (fun row -> if fn row = Value.Bool true then incr c) rows;
    !c
  in
  let results =
    Harness.ns_per_run
      [ ("interpreter", fun () -> count (fun row -> Bexpr.eval ~row ~params:[||] e));
        ("closures", fun () -> count (fun row -> closure [||] row));
        ("bytecode-vm", fun () -> count (fun row -> Quill_compile.Expr_vm.run vm ~params:[||] ~row)) ]
  in
  let base = snd (List.hd results) in
  Harness.table ~header:[ "tier"; "ns/tuple"; "speedup vs interp" ]
    (List.map
       (fun (name, ns) ->
         [ name; Printf.sprintf "%.1f" (ns /. Float.of_int n);
           Harness.speedup base ns ])
       results)

(* ----------------------------------------------------------------- E2 *)

let e2 () =
  Harness.section "E2: engine architectures on TPC-H-like queries";
  let db = Lazy.force tpch_db in
  let engines =
    [ ("volcano", Quill.Db.Volcano); ("vectorized", Quill.Db.Vectorized);
      ("compiled", Quill.Db.Compiled) ]
  in
  let rows =
    List.map
      (fun (qname, sql) ->
        let times =
          List.map
            (fun (_, e) -> Harness.median_time (fun () -> Quill.Db.query db ~engine:e sql))
            engines
        in
        let base = List.hd times in
        qname :: List.concat_map (fun t -> [ Harness.ms t; Harness.speedup base t ]) times)
      Tpch.queries
  in
  Harness.table
    ~header:
      [ "query"; "volcano ms"; "x"; "vectorized ms"; "x"; "compiled ms"; "x" ]
    rows

(* ----------------------------------------------------------------- E3 *)

let e3 () =
  Harness.section "E3: join algorithm crossover (fixed probe, varying build)";
  let probe_rows = 100_000 in
  let header =
    [ "build rows"; "hash ms"; "merge ms"; "blockNL ms"; "measured winner"; "picker choice" ]
  in
  let rows =
    List.map
      (fun build_rows ->
        let build, probe =
          Micro_w.keyed_pair ~build_rows ~probe_rows ~seed:11 ()
        in
        let b = Array.of_list (Table.to_row_list build) in
        let p = Array.of_list (Table.to_row_list probe) in
        let keys = [ (0, 0) ] in
        let hash_t =
          Harness.median_time (fun () ->
              Join_algos.hash_join ~keys ~residual:None ~build_left:true b p)
        in
        let merge_t =
          Harness.median_time (fun () -> Join_algos.merge_join ~keys ~residual:None b p)
        in
        let nl_t =
          if build_rows <= 2000 then
            Some
              (Harness.median_time (fun () ->
                   Join_algos.block_nl_join
                     ~pred:
                       (Some
                          (fun row ->
                            (not (Value.is_null row.(0))) && Value.equal row.(0) row.(2)))
                     b p))
          else None
        in
        let candidates =
          [ ("hash", hash_t); ("merge", merge_t) ]
          @ match nl_t with Some t -> [ ("blockNL", t) ] | None -> []
        in
        let winner =
          fst (List.fold_left (fun (wn, wt) (n, t) -> if t < wt then (n, t) else (wn, wt))
                 (List.hd candidates) (List.tl candidates))
        in
        (* What would the picker choose? *)
        let db = Quill.Db.create () in
        Catalog.add (Quill.Db.catalog db) build;
        Catalog.add (Quill.Db.catalog db) probe;
        let plan =
          Quill.Db.plan db
            "SELECT count(*) FROM probe_side, build_side WHERE p_k = b_k"
        in
        let choice =
          match find_join plan with
          | Some (algo, _, _) -> Physical.join_algo_name algo
          | None -> "?"
        in
        [ string_of_int build_rows; Harness.ms hash_t; Harness.ms merge_t;
          (match nl_t with Some t -> Harness.ms t | None -> "-");
          winner; choice ])
      [ 100; 1_000; 10_000; 100_000 ]
  in
  Harness.table ~header rows

(* ----------------------------------------------------------------- E4 *)

let e4 () =
  Harness.section "E4: feedback re-optimization under correlated predicates";
  let db = Quill.Db.create () in
  let cat = Quill.Db.catalog db in
  (* corr: a and b perfectly correlated; the independence assumption
     underestimates the conjunction 10x. Wide payload makes a wrong hash
     build side expensive. *)
  let schema =
    Schema.create
      (Schema.col ~nullable:false "a" Value.Int_t
       :: Schema.col ~nullable:false "b" Value.Int_t
       :: Schema.col ~nullable:false "v" Value.Int_t
       :: List.init 6 (fun i -> Schema.col ~nullable:false (Printf.sprintf "pay%d" i) Value.Int_t))
  in
  let corr = Table.create ~name:"corr" schema in
  let rng = Rng.create 23 in
  for _ = 1 to 300_000 do
    let a = Rng.int rng 1000 in
    Table.insert corr
      (Array.append
         [| Value.Int a; Value.Int a; Value.Int (Rng.int rng 5_000) |]
         (Array.init 6 (fun _ -> Value.Int (Rng.int rng 1000))))
  done;
  Catalog.add cat corr;
  Catalog.add cat (Micro_w.ints_table ~name:"dim" ~rows:5_000 ~cols:2 ~seed:3 ());
  Quill.Db.analyze db "corr";
  Quill.Db.analyze db "dim";
  let sql =
    "SELECT count(*) FROM corr, dim WHERE corr.a < 100 AND corr.b < 100 AND corr.v = dim.c0"
  in
  let static_plan = Quill.Db.plan db sql in
  let rec scan_table = function
    | Physical.Scan { table; _ } | Physical.Index_scan { table; _ } -> table
    | Physical.Project (_, i, _) | Physical.Filter (_, i, _) | Physical.Distinct (i, _) ->
        scan_table i
    | Physical.Aggregate { input; _ } | Physical.Window { input; _ }
    | Physical.Sort { input; _ } | Physical.Top_k { input; _ }
    | Physical.Limit { input; _ } ->
        scan_table input
    | Physical.Join { left; _ } -> scan_table left
    | Physical.One_row -> "?"
  in
  let rec describe = function
    | Physical.Join { build_left; left; right; _ } ->
        scan_table (if build_left then left else right)
    | Physical.Project (_, i, _) | Physical.Filter (_, i, _) | Physical.Distinct (i, _) ->
        describe i
    | Physical.Aggregate { input; _ } | Physical.Window { input; _ }
    | Physical.Sort { input; _ } | Physical.Top_k { input; _ }
    | Physical.Limit { input; _ } ->
        describe input
    | _ -> "?"
  in
  (* Instrumented first run feeds the feedback store. *)
  let profile = Profile.create static_plan in
  let ctx = Quill_exec.Exec_ctx.create ~profile (Quill.Db.catalog db) in
  let _ = Quill_exec.Vector.run ctx static_plan in
  let fb = Feedback.create () in
  let _ = Feedback.learn fb cat static_plan profile in
  let hinted_env =
    Card.make_env ~hints:(Feedback.hints fb) cat
      (Quill_stats.Table_stats.Registry.create ())
  in
  let lplan =
    match Quill_sql.Parser.parse sql with
    | Quill_sql.Ast.Select s ->
        Quill_plan.Binder.bind_select
          (Quill_plan.Binder.mk_env ~catalog:cat ~udfs:(Quill_plan.Udf.builtins ())
             ~param_types:[||] ())
          s
    | _ -> assert false
  in
  let adaptive_plan = Picker.optimize hinted_env lplan in
  let time_of plan =
    Harness.median_time (fun () ->
        Quill_compile.Codegen.run (Quill_exec.Exec_ctx.create cat) plan)
  in
  let t_static = time_of static_plan and t_adaptive = time_of adaptive_plan in
  let sb = describe static_plan and ab = describe adaptive_plan in
  let filter_est plan =
    let est = Profile.estimates plan in
    if Array.length est > 1 then est.(Array.length est - 1) else 0.0
  in
  Harness.table
    ~header:[ "plan"; "filtered-rows estimate"; "hash build side"; "runtime ms"; "speedup" ]
    [ [ "static (independence)"; Printf.sprintf "%.0f" (filter_est static_plan); sb;
        Harness.ms t_static; "1.00x" ];
      [ "feedback re-optimized"; Printf.sprintf "%.0f" (filter_est adaptive_plan); ab;
        Harness.ms t_adaptive; Harness.speedup t_static t_adaptive ] ];
  Printf.printf "(true filtered rows: %d; reoptimize trigger fired: %b)\n"
    (Table.row_count (Quill.Db.query db "SELECT a FROM corr WHERE a < 100 AND b < 100"))
    (Feedback.should_reoptimize static_plan profile)

(* ----------------------------------------------------------------- E5 *)

let e5 () =
  Harness.section "E5: tiered execution break-even (interpret vs compile vs tiered)";
  let db = Lazy.force tpch_db in
  let cat = Quill.Db.catalog db in
  let sql =
    "SELECT sum(l_extendedprice * l_discount) FROM lineitem \
     WHERE l_quantity < $1 AND l_discount > 0.01"
  in
  let params = [| Value.Float 24.0 |] in
  let policies =
    [ ("interpret-always", Tiering.Interpret_always);
      ("compile-always", Tiering.Compile_always);
      ("tiered(3)", Tiering.Tiered 3) ]
  in
  let checkpoints = [ 1; 2; 3; 5; 10 ] in
  let rows =
    List.map
      (fun (name, policy) ->
        let plan = Quill.Db.plan db ~params sql in
        let cache = Plan_cache.create () in
        let entry =
          Plan_cache.add cache ~sql ~param_types:[| Value.Float_t |]
            ~catalog_version:(Catalog.version cat) plan
        in
        let ctx = Quill_exec.Exec_ctx.create ~params cat in
        let cum = ref [] in
        for run = 1 to 10 do
          ignore (Tiering.execute ~policy ~ctx entry);
          if List.mem run checkpoints then
            cum := entry.Plan_cache.total_exec_time :: !cum
        done;
        name :: List.rev_map Harness.ms !cum)
      policies
  in
  Harness.table
    ~header:[ "policy"; "cum ms @1"; "@2"; "@3"; "@5"; "@10" ]
    rows

(* ----------------------------------------------------------------- E6 *)

let e6 () =
  Harness.section "E6: data layout vs projectivity (row vs columnar scans)";
  let db = Quill.Db.create () in
  Catalog.add (Quill.Db.catalog db)
    (Micro_w.wide_table ~rows:300_000 ~cols:16 ~seed:5 ());
  Quill.Db.analyze db "wide";
  let query p =
    let sums =
      String.concat ", " (List.init p (fun i -> Printf.sprintf "sum(c%d)" i))
    in
    Printf.sprintf "SELECT %s FROM wide" sums
  in
  let force layout = { Picker.default_options with Picker.force_layout = Some layout } in
  let rows =
    List.map
      (fun p ->
        let sql = query p in
        Quill.Db.set_options db (force Physical.Row_layout);
        let t_row = Harness.median_time (fun () -> Quill.Db.query db sql) in
        Quill.Db.set_options db (force Physical.Col_layout);
        let t_col = Harness.median_time (fun () -> Quill.Db.query db sql) in
        Quill.Db.set_options db Picker.default_options;
        let plan = Quill.Db.plan db sql in
        let rec layout_of = function
          | Physical.Scan { layout; _ } -> Physical.layout_name layout
          | Physical.Project (_, i, _) | Physical.Filter (_, i, _) -> layout_of i
          | Physical.Aggregate { input; _ } -> layout_of input
          | _ -> "?"
        in
        [ string_of_int p; Harness.ms t_row; Harness.ms t_col;
          Printf.sprintf "%.2fx" (t_row /. t_col); layout_of plan ])
      [ 1; 2; 4; 8; 16 ]
  in
  Harness.table
    ~header:[ "columns read"; "row ms"; "columnar ms"; "col speedup"; "picker layout" ]
    rows

(* ----------------------------------------------------------------- E7 *)

let e7 () =
  Harness.section "E7: sort algorithm library across key distributions";
  let n = 1_000_000 in
  let dists =
    [ ("uniform ints", `Uniform); ("nearly-sorted ints", `Clustered);
      ("heavy-dup ints", `Dups) ]
  in
  let rows =
    List.map
      (fun (name, dist) ->
        let keys = Micro_w.sort_keys ~n ~dist ~seed:3 () in
        let t_quick =
          Harness.median_time (fun () -> Sort_algos.quicksort compare (Array.copy keys))
        in
        let t_merge =
          Harness.median_time (fun () -> Sort_algos.mergesort compare (Array.copy keys))
        in
        let t_radix =
          Harness.median_time (fun () -> Sort_algos.radix_sort_ints (Array.copy keys))
        in
        let winner =
          fst
            (List.fold_left
               (fun (wn, wt) (n, t) -> if t < wt then (n, t) else (wn, wt))
               ("quick", t_quick)
               [ ("merge", t_merge); ("radix", t_radix) ])
        in
        let pick =
          Sort_algos.choice_name
            (Sort_algos.pick ~n ~int_keys:true ~need_stable:false)
        in
        [ name; Harness.ms t_quick; Harness.ms t_merge; Harness.ms t_radix; winner; pick ])
      dists
  in
  let strings = Micro_w.string_keys ~n:200_000 ~seed:4 () in
  let t_quick =
    Harness.median_time (fun () -> Sort_algos.quicksort compare (Array.copy strings))
  in
  let t_merge =
    Harness.median_time (fun () -> Sort_algos.mergesort compare (Array.copy strings))
  in
  let srow =
    [ "strings (200k)"; Harness.ms t_quick; Harness.ms t_merge; "-";
      (if t_quick < t_merge then "quick" else "merge");
      Sort_algos.choice_name (Sort_algos.pick ~n:200_000 ~int_keys:false ~need_stable:false) ]
  in
  Harness.table
    ~header:[ "distribution"; "quick ms"; "merge ms"; "radix ms"; "winner"; "picker" ]
    (rows @ [ srow ])

(* ----------------------------------------------------------------- E8 *)

let e8 () =
  Harness.section "E8: aggregation algorithm crossover (group count sweep)";
  let rows_n = 500_000 in
  let force alg = { Picker.default_options with Picker.force_agg = Some alg } in
  let rows =
    List.map
      (fun groups ->
        let db = Quill.Db.create () in
        Catalog.add (Quill.Db.catalog db)
          (Micro_w.grouped_table ~rows:rows_n ~groups ~seed:9 ());
        Quill.Db.analyze db "grouped";
        let sql = "SELECT g, count(*), sum(v) FROM grouped GROUP BY g" in
        Quill.Db.set_options db (force Physical.Hash_agg);
        let t_hash = Harness.median_time (fun () -> Quill.Db.query db sql) in
        Quill.Db.set_options db (force Physical.Sort_agg);
        let t_sort = Harness.median_time (fun () -> Quill.Db.query db sql) in
        Quill.Db.set_options db Picker.default_options;
        let choice =
          match find_agg_algo (Quill.Db.plan db sql) with
          | Some algo -> Physical.agg_algo_name algo
          | None -> "?"
        in
        [ string_of_int groups; Harness.ms t_hash; Harness.ms t_sort;
          (if t_hash <= t_sort then "hash" else "sort"); choice ])
      [ 10; 1_000; 100_000; 500_000 ]
  in
  Harness.table
    ~header:[ "groups"; "hash ms"; "sort ms"; "winner"; "picker choice" ]
    rows

(* ----------------------------------------------------------------- E9 *)

let e9 () =
  Harness.section "E9: selection pipeline cost vs selectivity, per engine";
  let db = Lazy.force tpch_db in
  let rows =
    List.map
      (fun (sel_label, threshold) ->
        let sql =
          Printf.sprintf
            "SELECT sum(l_extendedprice) FROM lineitem WHERE l_quantity < %.1f" threshold
        in
        let t e = Harness.median_time (fun () -> Quill.Db.query db ~engine:e sql) in
        let tv = t Quill.Db.Volcano and tx = t Quill.Db.Vectorized and tc = t Quill.Db.Compiled in
        [ sel_label; Harness.ms tv; Harness.ms tx; Harness.ms tc;
          Harness.speedup tv tc ])
      [ ("~2%", 2.0); ("~25%", 13.0); ("~50%", 25.0); ("~75%", 38.0); ("~100%", 51.0) ]
  in
  Harness.table
    ~header:[ "selectivity"; "volcano ms"; "vectorized ms"; "compiled ms"; "compiled speedup" ]
    rows

(* ---------------------------------------------------------------- E10 *)

let e10 () =
  Harness.section "E10: user-defined functions in the declarative pipeline";
  let db = Quill.Db.create () in
  let cat = Quill.Db.catalog db in
  let schema = Schema.create [ Schema.col ~nullable:false "x" Value.Float_t ] in
  let t = Table.create ~name:"pts" schema in
  let rng = Rng.create 12 in
  for _ = 1 to 500_000 do
    Table.insert t [| Value.Float (Rng.float_range rng (-4.0) 4.0) |]
  done;
  Catalog.add cat t;
  Quill.Db.register_udf db ~name:"sigmoid" ~args:[ Value.Float_t ] ~ret:Value.Float_t
    (function
    | [| Value.Float x |] -> Value.Float (1.0 /. (1.0 +. exp (-.x)))
    | [| Value.Null |] -> Value.Null
    | _ -> invalid_arg "sigmoid");
  let sql = "SELECT count(*) FROM pts WHERE sigmoid(x) > 0.75" in
  let t_volcano = Harness.median_time (fun () -> Quill.Db.query db ~engine:Quill.Db.Volcano sql) in
  let t_vector = Harness.median_time (fun () -> Quill.Db.query db ~engine:Quill.Db.Vectorized sql) in
  let t_compiled = Harness.median_time (fun () -> Quill.Db.query db ~engine:Quill.Db.Compiled sql) in
  (* Equivalent built-in expression as the fusion reference point. *)
  let builtin_sql = "SELECT count(*) FROM pts WHERE x > 1.0986" in
  let t_builtin = Harness.median_time (fun () -> Quill.Db.query db ~engine:Quill.Db.Compiled builtin_sql) in
  Harness.table
    ~header:[ "mode"; "ms"; "speedup vs volcano" ]
    [ [ "volcano + UDF"; Harness.ms t_volcano; "1.00x" ];
      [ "vectorized + UDF"; Harness.ms t_vector; Harness.speedup t_volcano t_vector ];
      [ "compiled + fused UDF"; Harness.ms t_compiled; Harness.speedup t_volcano t_compiled ];
      [ "compiled, built-in predicate"; Harness.ms t_builtin; Harness.speedup t_volcano t_builtin ] ]

(* ---------------------------------------------------------------- E11 *)

let e11 () =
  Harness.section "E11: micro-adaptive expression tier selection";
  let rng = Rng.create 5 in
  let mk_batch () =
    Array.init 1024 (fun _ ->
        [| Value.Int (Rng.int rng 1000); Value.Int (Rng.int rng 1000) |])
  in
  let batches = Array.init 300 (fun _ -> mk_batch ()) in
  let e =
    { Bexpr.node =
        Bexpr.Cmp
          ( Bexpr.Gt,
            { Bexpr.node =
                Bexpr.Arith
                  ( Bexpr.Add,
                    { Bexpr.node =
                        Bexpr.Arith
                          ( Bexpr.Mul,
                            { Bexpr.node = Bexpr.Col 0; dtype = Value.Int_t },
                            { Bexpr.node = Bexpr.Lit (Value.Int 3); dtype = Value.Int_t } );
                      dtype = Value.Int_t },
                    { Bexpr.node = Bexpr.Col 1; dtype = Value.Int_t } );
              dtype = Value.Int_t },
            { Bexpr.node = Bexpr.Lit (Value.Int 1500); dtype = Value.Int_t } );
      dtype = Value.Bool_t }
  in
  let closure = Quill_compile.Expr_compile.compile e in
  let vm = Quill_compile.Expr_vm.compile e in
  (* Fixed tiers write results into an output vector exactly like the
     adaptive evaluator does, so the comparison is apples-to-apples. *)
  let run_fixed f =
    Harness.median_time ~reps:3 (fun () ->
        Array.iter
          (fun batch ->
            let out = Array.make (Array.length batch) Value.Null in
            Array.iteri (fun i row -> out.(i) <- f row) batch)
          batches)
  in
  let t_interp = run_fixed (fun row -> Bexpr.eval ~row ~params:[||] e) in
  let t_closure = run_fixed (fun row -> closure [||] row) in
  let t_vm = run_fixed (fun row -> Quill_compile.Expr_vm.run vm ~params:[||] ~row) in
  let t_adaptive =
    Harness.median_time ~reps:3 (fun () ->
        let m = Quill_adaptive.Micro.create ~explore_batches:2 ~reexplore_every:64 e in
        Array.iter (fun batch -> ignore (Quill_adaptive.Micro.eval_batch m ~params:[||] batch)) batches)
  in
  let m = Quill_adaptive.Micro.create e in
  Array.iter (fun b -> ignore (Quill_adaptive.Micro.eval_batch m ~params:[||] b)) batches;
  Harness.table
    ~header:[ "evaluator"; "ms (300 x 1024 rows)"; "vs interp" ]
    [ [ "fixed: interpreter"; Harness.ms t_interp; "1.00x" ];
      [ "fixed: bytecode VM"; Harness.ms t_vm; Harness.speedup t_interp t_vm ];
      [ "fixed: closures"; Harness.ms t_closure; Harness.speedup t_interp t_closure ];
      [ "micro-adaptive"; Harness.ms t_adaptive; Harness.speedup t_interp t_adaptive ] ];
  Printf.printf "(adaptive settled on tier: %s)\n"
    (Quill_adaptive.Micro.tier_name (Quill_adaptive.Micro.current_tier m))

(* ---------------------------------------------------------------- E12 *)

let e12 () =
  Harness.section "E12: join ordering (DP vs syntactic orders on star queries)";
  let rows =
    List.map
      (fun ndims ->
        let db = Quill.Db.create () in
        let cat = Quill.Db.catalog db in
        Catalog.add cat (Micro_w.ints_table ~name:"fact" ~rows:100_000 ~cols:(ndims + 1) ~seed:1 ());
        for i = 1 to ndims do
          Catalog.add cat
            (Micro_w.ints_table ~name:(Printf.sprintf "dim%d" i) ~rows:(40 * i) ~cols:2
               ~seed:(i + 1) ())
        done;
        Quill.Db.analyze db "fact";
        let conds =
          String.concat " AND "
            (List.init ndims (fun i ->
                 Printf.sprintf "fact.c%d = dim%d.c0" (i + 1) (i + 1)))
        in
        let dims_first =
          Printf.sprintf "SELECT count(*) FROM %s, fact WHERE %s"
            (String.concat ", " (List.init ndims (fun i -> Printf.sprintf "dim%d" (i + 1))))
            conds
        in
        let fact_first =
          Printf.sprintf "SELECT count(*) FROM fact, %s WHERE %s"
            (String.concat ", " (List.init ndims (fun i -> Printf.sprintf "dim%d" (i + 1))))
            conds
        in
        let no_reorder =
          { Picker.default_options with Picker.enable_reorder = false }
        in
        Quill.Db.set_options db no_reorder;
        (* The dims-first order starts with unconstrained cross products,
           which grow combinatorially; only run it where it terminates in
           reasonable time and report "-" beyond. *)
        let t_bad =
          if ndims <= 3 then
            Some (Harness.median_time ~reps:1 (fun () -> Quill.Db.query db dims_first))
          else None
        in
        let t_syntactic = Harness.median_time ~reps:1 (fun () -> Quill.Db.query db fact_first) in
        Quill.Db.set_options db Picker.default_options;
        let opt_time = ref 0.0 in
        let _, dt = Quill_util.Timer.time (fun () -> Quill.Db.plan db dims_first) in
        opt_time := dt;
        let t_dp = Harness.median_time ~reps:1 (fun () -> Quill.Db.query db dims_first) in
        [ string_of_int ndims;
          (match t_bad with Some t -> Harness.ms t | None -> "-");
          Harness.ms t_syntactic; Harness.ms t_dp;
          (match t_bad with Some t -> Harness.speedup t t_dp | None -> "-");
          Printf.sprintf "%.2f" (!opt_time *. 1e3) ])
      [ 3; 4; 5 ]
  in
  Harness.table
    ~header:
      [ "#dims"; "worst order ms"; "fact-first ms"; "DP-ordered ms"; "DP speedup";
        "optimize ms" ]
    rows

(* ---------------------------------------------------------------- E13 *)

let e13 () =
  Harness.section "E13: morsel-driven parallel scaling (TPC-H Q1/Q6 analogs)";
  let db = Quill.Db.create () in
  Printf.printf "(loading TPC-H-like data at SF 0.05 ...)\n%!";
  Tpch.load (Quill.Db.catalog db) ~sf:0.05 ~seed:42;
  List.iter (Quill.Db.analyze db) [ "lineitem"; "orders"; "customer"; "supplier" ];
  let avail = Quill_parallel.Pool.hardware_parallelism () in
  let time ~domains sql =
    Quill.Db.set_parallelism db domains;
    let t =
      Harness.median_time (fun () -> Quill.Db.query db ~engine:Quill.Db.Compiled sql)
    in
    Quill.Db.set_parallelism db 1;
    t
  in
  (* Scaling curve.  Domain counts beyond the machine's recommended count
     still run (the morsel paths are exercised either way) but cannot
     speed anything up — the recommended count is printed so a flat curve
     on a small box reads as what it is. *)
  let sweep = List.sort_uniq compare [ 1; 2; 4; min 8 avail ] in
  List.iter
    (fun (name, sql) ->
      let base = time ~domains:1 sql in
      let rows =
        List.map
          (fun d ->
            let t = if d = 1 then base else time ~domains:d sql in
            [ string_of_int d; Harness.ms t; Harness.speedup base t ])
          sweep
      in
      Printf.printf "%s scaling:\n" name;
      Harness.table ~header:[ "domains"; "ms"; "speedup" ] rows)
    [ ("Q1", Tpch.q1); ("Q6", Tpch.q6) ];
  (* Morsel-size sweep: too small and atomic dispatch dominates, too large
     and skewed predicates strand workers on the last morsels. *)
  let msweep_domains = max 2 avail in
  let rows =
    List.map
      (fun msize ->
        let t =
          Quill_parallel.Morsel.with_size msize (fun () ->
              time ~domains:msweep_domains Tpch.q6)
        in
        [ string_of_int msize; Harness.ms t ])
      [ 1_024; 4_096; 16_384; 65_536 ]
  in
  Printf.printf "Q6 morsel-size sweep at %d domains:\n" msweep_domains;
  Harness.table ~header:[ "morsel rows"; "ms" ] rows;
  Printf.printf "(machine reports %d recommended domains)\n" avail

(* ---------------------------------------------------------------- E17 *)

let e17 () =
  Harness.section "E17: access path selection (index scan vs full scan)";
  let rows_n = 1_000_000 in
  let db = Quill.Db.create () in
  Catalog.add (Quill.Db.catalog db)
    (Micro_w.ints_table ~name:"t" ~rows:rows_n ~cols:3 ~seed:3 ());
  Quill.Db.analyze db "t";
  ignore (Quill.Db.exec db "CREATE INDEX ON t (c0)");
  (* Warm the lazy index build outside the measurements. *)
  ignore (Quill.Db.query db "SELECT c1 FROM t WHERE c0 = 1");
  let no_index = { Picker.default_options with Picker.enable_index = false } in
  let rec uses_index = function
    | Physical.Index_scan _ -> true
    | Physical.Project (_, i, _) | Physical.Filter (_, i, _) -> uses_index i
    | Physical.Aggregate { input; _ } -> uses_index input
    | _ -> false
  in
  let rows =
    List.map
      (fun (label, width) ->
        let sql =
          Printf.sprintf "SELECT sum(c1) FROM t WHERE c0 >= 500 AND c0 < %d" (500 + width)
        in
        Quill.Db.set_options db no_index;
        let t_scan = Harness.median_time (fun () -> Quill.Db.query db sql) in
        Quill.Db.set_options db Picker.default_options;
        let t_auto = Harness.median_time (fun () -> Quill.Db.query db sql) in
        let choice = if uses_index (Quill.Db.plan db sql) then "index" else "scan" in
        [ label; Harness.ms t_scan; Harness.ms t_auto;
          Printf.sprintf "%.1fx" (t_scan /. t_auto); choice ])
      [ ("0.001%", 10); ("0.1%", 1_000); ("1%", 10_000); ("10%", 100_000);
        ("50%", 500_000) ]
  in
  Harness.table
    ~header:[ "selectivity"; "full scan ms"; "picker ms"; "speedup"; "picker choice" ]
    rows

(* ---------------------------------------------------------------- E14 *)

let e14 () =
  Harness.section "E14: compiled-engine fusion ablation (TPC-H Q6 analog)";
  let db = Lazy.force tpch_db in
  let run () = Quill.Db.query db ~engine:Quill.Db.Compiled Tpch.q6 in
  let measure ~agg_fusion ~col_pred =
    Quill_compile.Codegen.enable_scan_agg_fusion := agg_fusion;
    Quill_compile.Codegen.enable_col_pred := col_pred;
    let t = Harness.median_time run in
    Quill_compile.Codegen.enable_scan_agg_fusion := true;
    Quill_compile.Codegen.enable_col_pred := true;
    t
  in
  let full = measure ~agg_fusion:true ~col_pred:true in
  let no_agg = measure ~agg_fusion:false ~col_pred:true in
  let no_pred = measure ~agg_fusion:false ~col_pred:false in
  let volcano = Harness.median_time (fun () -> Quill.Db.query db ~engine:Quill.Db.Volcano Tpch.q6) in
  Harness.table
    ~header:[ "configuration"; "ms"; "slowdown vs full fusion" ]
    [ [ "full fusion (scan-agg + unboxed preds)"; Harness.ms full; "1.00x" ];
      [ "closures only (no scan-agg fusion)"; Harness.ms no_agg;
        Printf.sprintf "%.1fx" (no_agg /. full) ];
      [ "no unboxed predicates either"; Harness.ms no_pred;
        Printf.sprintf "%.1fx" (no_pred /. full) ];
      [ "volcano (reference)"; Harness.ms volcano; Printf.sprintf "%.1fx" (volcano /. full) ] ]

(* ---------------------------------------------------------------- E15 *)

let e15 () =
  Harness.section "E15: multicore scaling of the fused scan->aggregate loop";
  let db = Quill.Db.create () in
  Catalog.add (Quill.Db.catalog db)
    (Micro_w.ints_table ~name:"big" ~rows:4_000_000 ~cols:3 ~seed:2 ());
  Quill.Db.analyze db "big";
  let sql = "SELECT count(*), sum(c1), max(c2) FROM big WHERE c1 > 100000" in
  let run () = Quill.Db.query db ~engine:Quill.Db.Compiled sql in
  let avail = Quill_parallel.Pool.hardware_parallelism () in
  let base = ref 0.0 in
  let rows =
    List.filter_map
      (fun d ->
        (* Always include d=2 so the parallel path is exercised even on a
           single-core machine (expect ~1x there). *)
        if d > max 2 avail then None
        else begin
          Quill.Db.set_parallelism db d;
          let t = Harness.median_time run in
          Quill.Db.set_parallelism db 1;
          if d = 1 then base := t;
          Some
            [ string_of_int d; Harness.ms t; Printf.sprintf "%.2fx" (!base /. t) ]
        end)
      [ 1; 2; 4; 8 ]
  in
  Harness.table ~header:[ "domains"; "ms"; "speedup" ] rows;
  Printf.printf "(machine reports %d recommended domains)\n" avail

(* ---------------------------------------------------------------- E16 *)

let e16 () =
  Harness.section "E16: dictionary encoding for low-cardinality strings";
  let rows_n = 1_000_000 in
  let tags =
    [| "PROMO BURNISHED COPPER"; "STANDARD ANODIZED TIN"; "SMALL PLATED COPPER";
       "LARGE POLISHED STEEL"; "ECONOMY BRUSHED BRASS"; "MEDIUM BURNISHED NICKEL";
       "PROMO PLATED STEEL"; "STANDARD BRUSHED COPPER" |]
  in
  let build_db () =
    let db = Quill.Db.create () in
    let schema =
      Schema.create
        [ Schema.col ~nullable:false "tag" Value.Str_t;
          Schema.col ~nullable:false "v" Value.Int_t ]
    in
    let t = Table.create ~name:"items" schema in
    let rng = Rng.create 31 in
    for _ = 1 to rows_n do
      Table.insert t [| Value.Str (Rng.pick rng tags); Value.Int (Rng.int rng 1000) |]
    done;
    Catalog.add (Quill.Db.catalog db) t;
    Quill.Db.analyze db "items";
    (* Force the columnar build under the current encoding flag. *)
    ignore (Quill.Db.query db "SELECT count(*) FROM items");
    db
  in
  let queries =
    [ ("equality", "SELECT count(*) FROM items WHERE tag = 'PROMO PLATED STEEL'");
      ("LIKE", "SELECT count(*) FROM items WHERE tag LIKE '%COPPER%'");
      ("IN", "SELECT count(*) FROM items WHERE tag IN               ('LARGE POLISHED STEEL', 'ECONOMY BRUSHED BRASS')") ]
  in
  Quill_storage.Column.enable_dict := false;
  let plain_db = build_db () in
  let plain =
    List.map (fun (_, q) -> Harness.median_time (fun () -> Quill.Db.query plain_db q)) queries
  in
  Quill_storage.Column.enable_dict := true;
  let dict_db = build_db () in
  let dict =
    List.map (fun (_, q) -> Harness.median_time (fun () -> Quill.Db.query dict_db q)) queries
  in
  Harness.table
    ~header:[ "predicate"; "plain strings ms"; "dictionary ms"; "speedup" ]
    (List.map2
       (fun ((label, _), p) d ->
         [ label; Harness.ms p; Harness.ms d; Printf.sprintf "%.1fx" (p /. d) ])
       (List.combine queries plain)
       dict)

(* --------------------------------------------------------------- suite *)

(** All experiments with ids matching DESIGN.md. *)
(* -------------------------------------------------------------- SMOKE *)

(* A seconds-scale observability smoke run, wired into [dune runtest]: it
   exercises tracing, the metrics registry and EXPLAIN ANALYZE end to end
   and measures the disabled-tracer overhead (the E13 "no measurable
   cost when off" bar) without loading any large dataset. *)
let smoke () =
  Harness.section "SMOKE: observability end-to-end";
  let db = Quill.Db.create () in
  Catalog.add (Quill.Db.catalog db)
    (Micro_w.grouped_table ~rows:10_000 ~groups:64 ~seed:11 ());
  Quill.Db.set_tracing true;
  ignore (Quill.Db.query db "SELECT g, count(*), sum(v) FROM grouped GROUP BY g");
  let sql = "SELECT count(*) FROM grouped WHERE v > 250" in
  ignore (Quill.Db.query_adaptive db sql);
  ignore (Quill.Db.query_adaptive db sql);
  ignore (Quill.Db.explain db ~analyze:true
            "SELECT g, count(*) FROM grouped WHERE v > 100 GROUP BY g");
  Quill.Db.set_tracing false;
  let json = Quill.Db.trace_json () in
  let spans = List.length (Quill_obs.Trace.spans ()) in
  if spans = 0 || String.length json < 2 || json.[0] <> '[' then
    failwith "SMOKE: trace export is broken";
  Printf.printf "traced %d spans; chrome export %d bytes\n" spans
    (String.length json);
  print_string (Quill.Db.metrics_text ());
  (* Disabled-tracer cost: with_span when off must be within noise of the
     bare computation. *)
  let acc = ref 0 in
  let work () = acc := Sys.opaque_identity (!acc + 1) in
  let timings =
    Harness.ns_per_run ~quota:0.25
      [ ("bare", work);
        ("with_span off", fun () -> Quill_obs.Trace.with_span "x" work) ]
  in
  Harness.table ~header:[ "kernel"; "ns/op" ]
    (List.map (fun (n, t) -> [ n; Printf.sprintf "%.2f" t ]) timings);
  Quill.Db.clear_trace ()

(* ---------------------------------------------------------------- GOV *)

(* Governor smoke: measures abort latency — total wall time of a doomed
   cross join under a 25ms deadline, and how far past the deadline the
   Aborted exception surfaced — in all three engines, serial and
   morsel-parallel, then checks a budget kill and session recovery.
   Rides with `dune runtest` so resource governance cannot rot between
   full benchmark runs. *)
let gov () =
  Harness.section "GOV: resource governor abort latency";
  let db = Quill.Db.create () in
  let mk name col =
    let t =
      Table.create ~name
        (Schema.create [ Schema.col ~nullable:false col Value.Int_t ])
    in
    for i = 0 to 59_999 do
      Table.insert t [| Value.Int i |]
    done;
    Catalog.add (Quill.Db.catalog db) t
  in
  mk "ga" "x";
  mk "gb" "y";
  let timeout_ms = 25 in
  let doomed = "SELECT count(*) FROM ga, gb" in
  let measure engine par =
    Quill.Db.set_parallelism db par;
    let t0 = Quill_util.Timer.now () in
    (try
       ignore (Quill.Db.query db ~engine ~timeout_ms doomed);
       failwith "GOV: a 3.6e9-pair cross join finished under a 25ms deadline"
     with Quill.Db.Aborted Quill.Db.Timeout -> ());
    let elapsed = Quill_util.Timer.now () -. t0 in
    if elapsed > 1.0 then
      failwith (Printf.sprintf "GOV: abort took %.2fs (bound: 1s)" elapsed);
    let overrun = Float.max 0.0 (elapsed -. (Float.of_int timeout_ms /. 1000.0)) in
    [ Quill.Db.engine_name engine; string_of_int par; Harness.ms elapsed;
      Harness.ms overrun ]
  in
  let rows =
    List.concat_map
      (fun engine -> [ measure engine 1; measure engine 4 ])
      [ Quill.Db.Volcano; Quill.Db.Vectorized; Quill.Db.Compiled ]
  in
  Quill.Db.set_parallelism db 1;
  Harness.table ~header:[ "engine"; "parallelism"; "total ms"; "overrun ms" ] rows;
  (* With spilling off, a 1MB budget must kill the 60k-group hash
     aggregation early... *)
  Quill.Db.set_spill db false;
  (try
     ignore
       (Quill.Db.query db ~budget_bytes:(1024 * 1024)
          "SELECT x, count(*) FROM ga GROUP BY x");
     failwith "GOV: budget did not abort"
   with Quill.Db.Aborted Quill.Db.Resource_exhausted -> ());
  (* ...with spilling (the default) the same query completes out-of-core... *)
  Quill.Db.set_spill db true;
  (match
     Table.row_count
       (Quill.Db.query db ~budget_bytes:(1024 * 1024)
          "SELECT x, count(*) FROM ga GROUP BY x")
   with
  | 60_000 -> ()
  | n -> failwith (Printf.sprintf "GOV: spilled agg returned %d groups" n));
  (* ...and the session (and the shared pool) stays usable afterwards. *)
  (match Table.get (Quill.Db.query db "SELECT count(*) FROM ga") 0 0 with
  | Value.Int 60_000 -> ()
  | _ -> failwith "GOV: session unusable after abort");
  print_endline "budget kill + recovery OK"

(* ---------------------------------------------------------------- E18 *)

(* Typed batches + selection vectors vs the boxed-batch ablation
   ([Vector.enable_typed := false]): scan+filter+agg rows/sec at full
   scale for the EXPERIMENTS.md table, then a smoke-scale run that
   rewrites the committed bench/BENCH_vector.json baseline consumed by
   check_bench.exe in `dune runtest`. *)
let e18 () =
  Harness.section "E18: typed batches vs boxed batches (vectorized engine)";
  let rows = 1_000_000 in
  Printf.printf "(building %d-row microbench table ...)\n%!" rows;
  let db = Bench_vector.build_db ~rows in
  let results = Bench_vector.measure ~reps:5 ~rows db in
  Bench_vector.print_table results;
  let srows = Bench_vector.smoke_rows in
  Printf.printf "(rebuilding baseline at smoke scale, %d rows ...)\n%!" srows;
  let sdb = Bench_vector.build_db ~rows:srows in
  let sresults = Bench_vector.measure ~reps:5 ~rows:srows sdb in
  Bench_vector.print_table sresults;
  Bench_vector.write_json ~rows:srows sresults

(* ---------------------------------------------------------------- E19 *)

(* Durability cost: per-INSERT overhead of write-ahead logging under each
   sync policy vs an in-memory session, and recovery latency per WAL
   statement (see bench_wal.ml).  Rides with `dune runtest` at these
   smoke-scale sizes so the durable write path cannot rot. *)
let e19 () = Bench_wal.run ~inserts:400 ~recovery_stmts:500 ()

(* ---------------------------------------------------------------- E20 *)

(* MVCC concurrency: aggregate snapshot-read throughput with and without
   a churning writer, with a torn-read invariant check (bench_txn.ml). *)
let e20 () = Bench_txn.run ~readers:4 ~reads:150 ()

(* ---------------------------------------------------------------- E22 *)

(* Disjoint-row writer scaling: row/chunk-granular conflict detection vs
   the PR 6 name-granular baseline on one hot table (deterministic
   interleaving), plus the sharded-commit-path stripe ablation under
   real threads (bench_txn.ml). *)
let e22 () = Bench_txn.run_e22 ~writers:8 ~rounds:40 ~sharded_txns:1000 ()

(* ---------------------------------------------------------------- E23 *)

(* Copy-and-patch stencil compile tier: per-shape stencil-bind vs
   full-codegen compile cost, and the one-shot compile+run ablation
   against the interpreted engine (bench_codegen.ml). *)

(* Out-of-core execution: hash join / hash agg / sort forced through the
   spill files by a budget a fraction of the working set, vs the same
   queries fully in-memory (bench_spill.ml). *)

let all =
  [ ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11); ("E12", e12);
    ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16); ("E17", e17);
    ("E18", e18); ("E19", e19); ("E20", e20); ("E21", Bench_traffic.e21);
    ("E22", e22); ("E23", Bench_codegen.e23); ("E24", Bench_spill.e24);
    ("SMOKE", smoke); ("GOV", gov); ("TRAFFIC", Bench_traffic.traffic_smoke) ]
