(* Measurement helpers for the benchmark harness.

   Tight kernels (per-tuple expression work) go through Bechamel's OLS
   estimator; whole-query timings use repeated wall-clock medians, which
   is the right tool when a single run takes milliseconds to seconds. *)

open Bechamel

(** [ns_per_run tests] benchmarks a list of named thunks with Bechamel and
    returns (name, nanoseconds per run), preserving input order. *)
let ns_per_run ?(quota = 0.5) tests =
  let grouped =
    Test.make_grouped ~name:"g"
      (List.map (fun (name, fn) -> Test.make ~name (Staged.stage fn)) tests)
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  List.map
    (fun (name, _) ->
      let key = "g/" ^ name in
      let est =
        match Hashtbl.find_opt results key with
        | Some r -> (
            match Analyze.OLS.estimates r with Some [ t ] -> t | _ -> Float.nan)
        | None -> Float.nan
      in
      (name, est))
    tests

(** [median_time ?reps f] runs [f] [reps] times and returns the median
    wall-clock seconds.  A major GC slice before each rep keeps leftover
    garbage from a previous measurement from polluting this one. *)
let median_time ?(reps = 3) f =
  let samples =
    Array.init reps (fun _ ->
        Gc.full_major ();
        Quill_util.Timer.time_unit (fun () -> ignore (f ())))
  in
  Quill_util.Summary.median samples

(** [section title] prints an experiment header. *)
let section title =
  Printf.printf "\n=== %s ===\n%!" title

(** [table ~header rows] prints an aligned table. *)
let table ~header rows = print_string (Quill_util.Pretty.render ~header rows)

let ms secs = Printf.sprintf "%.2f" (secs *. 1e3)
let speedup base x = Printf.sprintf "%.2fx" (base /. x)
