(* Benchmark harness entry point.

   [dune exec bench/main.exe] runs every experiment (E1..E18, matching the
   experiment index in DESIGN.md / EXPERIMENTS.md); pass experiment ids to
   run a subset, e.g. [dune exec bench/main.exe -- E3 E7]. *)

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as ids) -> List.map String.uppercase_ascii ids
    | _ -> List.map fst Experiments.all
  in
  let unknown =
    List.filter (fun id -> not (List.mem_assoc id Experiments.all)) requested
  in
  if unknown <> [] then begin
    Printf.eprintf "unknown experiment(s): %s\navailable: %s\n"
      (String.concat ", " unknown)
      (String.concat ", " (List.map fst Experiments.all));
    exit 1
  end;
  Printf.printf "Quill benchmark suite — %d experiment(s)\n%!" (List.length requested);
  let t0 = Quill_util.Timer.now () in
  List.iter (fun id -> (List.assoc id Experiments.all) ()) requested;
  Printf.printf "\ntotal: %.1fs\n" (Quill_util.Timer.now () -. t0)
