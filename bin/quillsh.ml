(* quillsh: an interactive SQL shell over a Quill database.

   Statements end with ';'.  Meta commands:
     \d            list tables
     \d NAME       describe a table
     \engine NAME  switch engine (volcano | vectorized | compiled)
     \timing       toggle per-statement timing
     \timeout [MS] show or set the per-query deadline (0 or off = none)
     \budget [B]   show or set the per-query memory budget in bytes
     \spill [on|off] show or toggle out-of-core execution for budgeted
                   queries (spill-to-disk instead of budget kills)
     \explain SQL  show the physical plan
     \trace        show tracing status; \trace on|off toggles the span
                   tracer; \trace json [FILE] exports Chrome trace JSON
     \metrics      print the process-wide metrics registry
     \tpch SF      load a TPC-H-like database at the given scale factor
     \bench [N [TOTAL]] [SQL]
                   replay SQL (default: a count over the first table)
                   from N concurrent sessions (default 4) for TOTAL
                   queries (default 400); prints throughput and latency
                   percentiles from the traffic driver
     \save DIR     persist the database (CSV files + DDL manifest)
     \load DIR     replace the session database with a saved one
     \open DIR     open (or create) a crash-safe durable database at DIR:
                   recovers from the last snapshot + WAL, then write-ahead
                   logs every mutation
     \wal          show durability status; \wal sync never|commit|every N
                   sets the fsync policy; \wal flush fsyncs now
     \checkpoint   fold the WAL into a fresh checksummed snapshot
     \q            quit

   Run with: dune exec bin/quillsh.exe [-- --init FILE.sql --engine NAME] *)

module Db = Quill.Db
module Table = Quill_storage.Table
module Schema = Quill_storage.Schema
module Catalog = Quill_storage.Catalog

type session = { mutable db : Db.t; mutable timing : bool }

let print_result s dt = function
  | Db.Rows t -> (
      print_string (Table.to_string t);
      if s.timing then Printf.printf "time: %s\n" (Quill_util.Pretty.duration dt))
  | Db.Affected n ->
      Printf.printf "ok (%d rows affected)%s\n" n
        (if s.timing then Printf.sprintf " — %s" (Quill_util.Pretty.duration dt) else "")
  | Db.Text t -> print_string t

let run_sql s sql =
  match Quill_util.Timer.time (fun () -> Db.exec s.db sql) with
  | result, dt -> print_result s dt result
  | exception Db.Error m -> Printf.printf "error: %s\n" m
  | exception Db.Aborted r ->
      (* Prefer the governor's full account (peak bytes, budget, what
         spilling did) over the bare reason name. *)
      let detail =
        match Db.last_abort_detail s.db with
        | Some d -> d
        | None -> Db.abort_reason_name r
      in
      Printf.printf "aborted: %s\n" detail

let describe s name =
  match Catalog.find (Db.catalog s.db) name with
  | None -> Printf.printf "no table %S\n" name
  | Some t ->
      Printf.printf "%s %s — %d rows\n" name
        (Schema.to_string (Table.schema t))
        (Table.row_count t)

module Driver = Quill_driver.Driver

(* \bench [SESSIONS [TOTAL]] [SQL] — replay a statement from N
   concurrent sessions over a shared handle to the current database and
   print the traffic driver's throughput/latency report.  The replay
   goes through the prepared path, so it exercises the plan cache the
   same way the TCP server does. *)
let bench s args =
  let args = List.filter (fun t -> t <> "") args in
  let sessions, total, sql_toks =
    match args with
    | a :: b :: rest
      when int_of_string_opt a <> None && int_of_string_opt b <> None ->
        (int_of_string a, int_of_string b, rest)
    | a :: rest when int_of_string_opt a <> None -> (int_of_string a, 400, rest)
    | rest -> (4, 400, rest)
  in
  if sessions < 1 || sessions > 64 || total < 1 then
    print_endline "usage: \\bench [SESSIONS [TOTAL]] [SQL]  (1 <= SESSIONS <= 64)"
  else
    let sql =
      match sql_toks with
      | [] -> (
          match Catalog.names (Db.catalog s.db) with
          | t :: _ -> Some (Printf.sprintf "SELECT count(*) FROM %s" t)
          | [] -> None)
      | toks ->
          let sql = String.trim (String.concat " " toks) in
          Some
            (if String.length sql > 0 && sql.[String.length sql - 1] = ';' then
               String.sub sql 0 (String.length sql - 1)
             else sql)
    in
    match sql with
    | None ->
        print_endline "\\bench: empty database — give a SQL statement to replay"
    | Some sql -> (
        let store = Db.share s.db in
        let per_session = max 1 (total / sessions) in
        Printf.printf "replaying %d x %d: %s\n%!" sessions per_session sql;
        let streams =
          Driver.streams ~sessions ~per_session ~seed:42 (fun _rng ->
              { Driver.sql; params = [||] })
        in
        match Driver.run ~target:(Driver.In_process store) streams with
        | r -> print_endline (Driver.render r)
        | exception Failure m -> Printf.printf "error: %s\n" m)

let meta s line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "\\q" ] -> exit 0
  | [ "\\d" ] ->
      List.iter (describe s) (Catalog.names (Db.catalog s.db))
  | [ "\\d"; name ] -> describe s name
  | [ "\\timing" ] ->
      s.timing <- not s.timing;
      Printf.printf "timing %s\n" (if s.timing then "on" else "off")
  | [ "\\timeout" ] -> (
      match Db.timeout_ms s.db with
      | None -> print_endline "timeout: none"
      | Some ms -> Printf.printf "timeout: %d ms\n" ms)
  | [ "\\timeout"; v ] -> (
      match (String.lowercase_ascii v, int_of_string_opt v) with
      | "off", _ | _, Some 0 ->
          Db.set_timeout s.db None;
          print_endline "timeout off"
      | _, Some ms when ms > 0 ->
          Db.set_timeout s.db (Some ms);
          Printf.printf "timeout: %d ms\n" ms
      | _ -> print_endline "usage: \\timeout MS (0 or off to clear)")
  | [ "\\budget" ] -> (
      match Db.budget_bytes s.db with
      | None -> print_endline "budget: none"
      | Some b -> Printf.printf "budget: %d bytes\n" b)
  | [ "\\budget"; v ] -> (
      match (String.lowercase_ascii v, int_of_string_opt v) with
      | "off", _ | _, Some 0 ->
          Db.set_budget s.db None;
          print_endline "budget off"
      | _, Some b when b > 0 ->
          Db.set_budget s.db (Some b);
          Printf.printf "budget: %d bytes\n" b
      | _ -> print_endline "usage: \\budget BYTES (0 or off to clear)")
  | [ "\\spill" ] ->
      Printf.printf "spill %s\n" (if Db.spill_enabled s.db then "on" else "off")
  | [ "\\spill"; v ] -> (
      match String.lowercase_ascii v with
      | "on" ->
          Db.set_spill s.db true;
          print_endline "spill on"
      | "off" ->
          Db.set_spill s.db false;
          print_endline "spill off (budget kills are hard again)"
      | _ -> print_endline "usage: \\spill [on|off]")
  | [ "\\engine"; name ] -> (
      match String.lowercase_ascii name with
      | "volcano" -> Db.set_engine s.db Db.Volcano
      | "vectorized" | "vector" -> Db.set_engine s.db Db.Vectorized
      | "compiled" -> Db.set_engine s.db Db.Compiled
      | other -> Printf.printf "unknown engine %S\n" other)
  | "\\explain" :: rest when rest <> [] -> (
      let analyze, rest =
        match rest with
        | first :: more when String.lowercase_ascii first = "analyze" -> (true, more)
        | _ -> (false, rest)
      in
      let sql = String.concat " " rest in
      match Db.explain s.db ~analyze sql with
      | plan -> print_string plan
      | exception Db.Error m -> Printf.printf "error: %s\n" m)
  | [ "\\trace" ] ->
      Printf.printf "tracing %s\n" (if Db.tracing () then "on" else "off")
  | [ "\\trace"; "on" ] ->
      Db.set_tracing true;
      print_endline "tracing on (fresh trace)"
  | [ "\\trace"; "off" ] ->
      Db.set_tracing false;
      print_endline "tracing off"
  | [ "\\trace"; "clear" ] ->
      Db.clear_trace ();
      print_endline "trace cleared"
  | [ "\\trace"; "json" ] -> print_endline (Db.trace_json ())
  | [ "\\trace"; "json"; file ] -> (
      match open_out file with
      | oc ->
          output_string oc (Db.trace_json ());
          output_char oc '\n';
          close_out oc;
          Printf.printf "trace written to %s (open in chrome://tracing)\n" file
      | exception Sys_error m -> Printf.printf "error: %s\n" m)
  | [ "\\metrics" ] -> print_string (Db.metrics_text ())
  | [ "\\save"; dir ] -> (
      match Db.save s.db dir with
      | () -> Printf.printf "saved to %s\n" dir
      | exception Db.Error m -> Printf.printf "error: %s\n" m)
  | [ "\\load"; dir ] -> (
      match Db.load dir with
      | db ->
          s.db <- db;
          Printf.printf "loaded %s (%d tables)\n" dir
            (List.length (Catalog.names (Db.catalog db)))
      | exception (Db.Error _ | Sys_error _) ->
          Printf.printf "error: cannot load %s\n" dir)
  | [ "\\open"; dir ] -> (
      match Db.open_durable dir with
      | db, report ->
          s.db <- db;
          Printf.printf "durable database at %s (generation %d, %d tables)\n" dir
            report.Db.generation
            (List.length (Catalog.names (Db.catalog db)));
          if report.Db.replayed > 0 || report.Db.dropped > 0 then
            Printf.printf "recovery: %d statement(s) replayed, %d dropped%s\n"
              report.Db.replayed report.Db.dropped
              (if report.Db.torn then " (torn WAL tail)" else "");
          Option.iter (Printf.printf "note: %s\n") report.Db.note
      | exception Db.Error m -> Printf.printf "error: %s\n" m)
  | [ "\\wal" ] -> (
      match Db.wal_status s.db with
      | None -> print_endline "not a durable session (\\open DIR to start one)"
      | Some w ->
          Printf.printf "durable dir: %s\ngeneration: %d\nsync policy: %s\nstatements logged this session: %d\n"
            w.Db.ws_dir w.Db.ws_generation
            (Quill_storage.Wal.policy_name w.Db.ws_policy)
            w.Db.ws_appended)
  | [ "\\wal"; "flush" ] -> (
      match Db.wal_sync s.db with
      | () -> print_endline "wal synced"
      | exception Db.Error m -> Printf.printf "error: %s\n" m)
  | "\\wal" :: "sync" :: rest -> (
      match Quill_storage.Wal.policy_of_string (String.concat " " rest) with
      | None -> print_endline "usage: \\wal sync never|commit|every N"
      | Some p -> (
          match Db.set_sync_policy s.db p with
          | () ->
              Printf.printf "wal sync policy: %s\n" (Quill_storage.Wal.policy_name p)
          | exception Db.Error m -> Printf.printf "error: %s\n" m))
  | [ "\\checkpoint" ] -> (
      match Db.checkpoint s.db with
      | () -> (
          match Db.wal_status s.db with
          | Some w -> Printf.printf "checkpointed (generation %d)\n" w.Db.ws_generation
          | None -> print_endline "checkpointed")
      | exception Db.Error m -> Printf.printf "error: %s\n" m)
  | [ "\\tpch"; sf ] -> (
      match float_of_string_opt sf with
      | Some sf when sf > 0.0 && sf <= 1.0 ->
          Printf.printf "loading TPC-H-like data at SF %g...\n%!" sf;
          Quill_workload.Tpch.load (Db.catalog s.db) ~sf ~seed:42;
          print_endline "done; try: SELECT count(*) FROM lineitem;"
      | _ -> print_endline "usage: \\tpch 0.01")
  | "\\bench" :: rest -> bench s rest
  | _ -> Printf.printf "unknown meta command: %s\n" line

(* Accumulate lines until a terminating ';' (outside string literals). *)
let ends_statement buf =
  let s = String.trim (Buffer.contents buf) in
  let in_str = ref false in
  String.iter (fun c -> if c = '\'' then in_str := not !in_str) s;
  (not !in_str) && String.length s > 0 && s.[String.length s - 1] = ';'

let repl s =
  let tty = Unix.isatty Unix.stdin in
  let buf = Buffer.create 256 in
  let rec loop () =
    if tty then begin
      print_string (if Buffer.length buf = 0 then "quill> " else "   ... ");
      flush stdout
    end;
    match input_line stdin with
    | exception End_of_file -> ()
    | line ->
        let trimmed = String.trim line in
        if Buffer.length buf = 0 && String.length trimmed > 0 && trimmed.[0] = '\\'
        then meta s trimmed
        else begin
          Buffer.add_string buf line;
          Buffer.add_char buf '\n';
          if ends_statement buf then begin
            run_sql s (Buffer.contents buf);
            Buffer.clear buf
          end
        end;
        loop ()
  in
  loop ()

let run_file s path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  (* Split on ';' respecting string literals. *)
  let stmts = ref [] and buf = Buffer.create 128 and in_str = ref false in
  String.iter
    (fun c ->
      if c = '\'' then in_str := not !in_str;
      if c = ';' && not !in_str then begin
        stmts := Buffer.contents buf :: !stmts;
        Buffer.clear buf
      end
      else Buffer.add_char buf c)
    text;
  if String.trim (Buffer.contents buf) <> "" then
    stmts := Buffer.contents buf :: !stmts;
  List.iter
    (fun sql -> if String.trim sql <> "" then run_sql s sql)
    (List.rev !stmts)

(* --- command line ------------------------------------------------------- *)

let usage_text =
  "usage: quillsh [OPTIONS]\n\n\
   An interactive SQL shell over the Quill query engine.\n\n\
   Options:\n\
  \  --engine NAME        default execution engine: volcano, vectorized or\n\
  \                       compiled (default: compiled)\n\
  \  --init FILE          run the SQL statements in FILE before the shell\n\
  \  --data-dir DIR       open (or create) a crash-safe durable database at\n\
  \                       DIR instead of an in-memory one\n\
  \  --serve              run a TCP server instead of the local shell\n\
  \  --host HOST          bind/connect address (default: 127.0.0.1)\n\
  \  --port PORT          TCP port for --serve (default: 7878)\n\
  \  --connect HOST:PORT  connect to a running quillsh --serve as a client\n\
  \  --help               show this message\n"

(* Argument errors print usage on stderr and exit 2; --help prints it on
   stdout and exits 0. *)
let usage_error fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "quillsh: %s\n%s" msg usage_text;
      exit 2)
    fmt

type mode = Local | Serve | Connect of string * int

type opts = {
  mutable mode : mode;
  mutable engine : Db.engine;
  mutable init : string option;
  mutable data_dir : string option;
  mutable host : string;
  mutable port : int;
}

let parse_engine v =
  match String.lowercase_ascii v with
  | "volcano" -> Db.Volcano
  | "vectorized" | "vector" -> Db.Vectorized
  | "compiled" -> Db.Compiled
  | other -> usage_error "unknown engine %S (want volcano, vectorized or compiled)" other

let parse_port v =
  match int_of_string_opt v with
  | Some p when p >= 0 && p <= 65535 -> p
  | _ -> usage_error "invalid port %S" v

(* HOST:PORT with a required port; a bare HOST defaults to 7878. *)
let parse_endpoint v =
  match String.rindex_opt v ':' with
  | None -> if v = "" then usage_error "empty --connect endpoint" else (v, 7878)
  | Some i ->
      let host = String.sub v 0 i in
      let port = parse_port (String.sub v (i + 1) (String.length v - i - 1)) in
      if host = "" then usage_error "empty host in --connect %S" v;
      (host, port)

let parse_args argv =
  let o =
    { mode = Local; engine = Db.Compiled; init = None; data_dir = None;
      host = "127.0.0.1"; port = 7878 }
  in
  let n = Array.length argv in
  let value flag i =
    if i + 1 >= n then usage_error "%s requires a value" flag else argv.(i + 1)
  in
  let rec go i =
    if i < n then
      match argv.(i) with
      | "--" -> go (i + 1)
      | "--help" | "-h" ->
          print_string usage_text;
          exit 0
      | "--engine" ->
          o.engine <- parse_engine (value "--engine" i);
          go (i + 2)
      | "--init" ->
          let f = value "--init" i in
          if not (Sys.file_exists f) then usage_error "--init: no such file %S" f;
          o.init <- Some f;
          go (i + 2)
      | "--data-dir" ->
          let d = value "--data-dir" i in
          if d = "" then usage_error "--data-dir requires a non-empty path";
          o.data_dir <- Some d;
          go (i + 2)
      | "--serve" ->
          o.mode <- Serve;
          go (i + 1)
      | "--host" ->
          o.host <- value "--host" i;
          go (i + 2)
      | "--port" ->
          o.port <- parse_port (value "--port" i);
          go (i + 2)
      | "--connect" ->
          let host, port = parse_endpoint (value "--connect" i) in
          o.mode <- Connect (host, port);
          go (i + 2)
      | flag when String.length flag > 0 && flag.[0] = '-' ->
          usage_error "unknown option %S" flag
      | arg -> usage_error "unexpected argument %S" arg
  in
  go 1;
  o

(* --- client mode -------------------------------------------------------- *)

module Client = Quill_server.Client
module Wire = Quill_server.Wire

let render_result cols rows =
  let schema =
    Schema.create
      (List.map (fun (name, dt) -> Schema.col ~nullable:true name dt) cols)
  in
  Table.to_string (Table.of_rows ~name:"result" schema rows)

let print_response = function
  | Wire.Result (cols, rows) -> print_string (render_result cols rows)
  | Wire.Affected n -> Printf.printf "ok (%d rows affected)\n" n
  | Wire.Text t -> print_string t
  | Wire.Prepared id -> Printf.printf "prepared statement %d\n" id
  | Wire.Err (Wire.Conflict_err, m) -> Printf.printf "conflict: %s\n" m
  | Wire.Err (Wire.Aborted_err, m) -> Printf.printf "aborted: %s\n" m
  | Wire.Err (Wire.Protocol_err, m) -> Printf.printf "protocol error: %s\n" m
  | Wire.Err (Wire.Generic, m) -> Printf.printf "error: %s\n" m

let remote_repl host port =
  let c =
    try Client.connect ~host ~port ()
    with Unix.Unix_error (e, _, _) ->
      Printf.eprintf "quillsh: cannot connect to %s:%d: %s\n" host port
        (Unix.error_message e);
      exit 1
  in
  let tty = Unix.isatty Unix.stdin in
  if tty then
    Printf.printf "connected to %s:%d — \\q to quit; statements end with ';'\n"
      host port;
  let buf = Buffer.create 256 in
  let submit () =
    (match Client.query c (Buffer.contents buf) with
    | resp -> print_response resp
    | exception (End_of_file | Unix.Unix_error _) ->
        Printf.eprintf "quillsh: server closed the connection\n";
        exit 1
    | exception Wire.Protocol_error m ->
        Printf.eprintf "quillsh: protocol error: %s\n" m;
        exit 1);
    Buffer.clear buf
  in
  let rec loop () =
    if tty then begin
      print_string (if Buffer.length buf = 0 then "quill> " else "   ... ");
      flush stdout
    end;
    match input_line stdin with
    | exception End_of_file ->
        (* Piped input may omit the final ';': flush what's pending. *)
        if String.trim (Buffer.contents buf) <> "" then submit ()
    | line ->
        let trimmed = String.trim line in
        if Buffer.length buf = 0 && (trimmed = "\\q" || trimmed = "\\quit") then ()
        else begin
          Buffer.add_string buf line;
          Buffer.add_char buf '\n';
          if ends_statement buf then submit ();
          loop ()
        end
  in
  loop ();
  Client.close c

(* --- server mode -------------------------------------------------------- *)

module Server = Quill_server.Server

let serve opts =
  let db =
    match opts.data_dir with
    | None -> Db.create ()
    | Some dir ->
        let db, report = Db.open_durable dir in
        if report.Db.replayed > 0 || report.Db.dropped > 0 then
          Printf.printf "recovery: %d statement(s) replayed, %d dropped%s\n"
            report.Db.replayed report.Db.dropped
            (if report.Db.torn then " (torn WAL tail)" else "");
        db
  in
  Db.set_engine db opts.engine;
  Option.iter (run_file { db; timing = false }) opts.init;
  let store = Db.share db in
  let config =
    { Server.default_config with Server.host = opts.host; port = opts.port }
  in
  let server =
    try Server.start ~config store
    with Unix.Unix_error (e, _, _) ->
      Printf.eprintf "quillsh: cannot listen on %s:%d: %s\n" opts.host opts.port
        (Unix.error_message e);
      exit 1
  in
  Printf.printf "quillsh: listening on %s:%d%s\n%!" opts.host (Server.port server)
    (match opts.data_dir with Some d -> " (durable: " ^ d ^ ")" | None -> "");
  let stop = Atomic.make false in
  let handler = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
  Sys.set_signal Sys.sigint handler;
  Sys.set_signal Sys.sigterm handler;
  while not (Atomic.get stop) do
    Thread.delay 0.05
  done;
  print_endline "quillsh: shutting down";
  Server.stop server;
  Db.close db

(* --- entry point -------------------------------------------------------- *)

let () =
  let opts = parse_args Sys.argv in
  match opts.mode with
  | Connect (host, port) -> remote_repl host port
  | Serve -> serve opts
  | Local ->
      let db =
        match opts.data_dir with
        | None -> Db.create ()
        | Some dir ->
            let db, report = Db.open_durable dir in
            if report.Db.replayed > 0 || report.Db.dropped > 0 then
              Printf.printf "recovery: %d statement(s) replayed, %d dropped%s\n"
                report.Db.replayed report.Db.dropped
                (if report.Db.torn then " (torn WAL tail)" else "");
            db
      in
      Db.set_engine db opts.engine;
      let s = { db; timing = false } in
      Option.iter (run_file s) opts.init;
      if Unix.isatty Unix.stdin then
        print_endline
          "Quill SQL shell — \\q to quit, \\d to list tables, \\tpch 0.01 for sample data";
      repl s
