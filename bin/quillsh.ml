(* quillsh: an interactive SQL shell over a Quill database.

   Statements end with ';'.  Meta commands:
     \d            list tables
     \d NAME       describe a table
     \engine NAME  switch engine (volcano | vectorized | compiled)
     \timing       toggle per-statement timing
     \timeout [MS] show or set the per-query deadline (0 or off = none)
     \budget [B]   show or set the per-query memory budget in bytes
     \explain SQL  show the physical plan
     \trace        show tracing status; \trace on|off toggles the span
                   tracer; \trace json [FILE] exports Chrome trace JSON
     \metrics      print the process-wide metrics registry
     \tpch SF      load a TPC-H-like database at the given scale factor
     \save DIR     persist the database (CSV files + DDL manifest)
     \load DIR     replace the session database with a saved one
     \open DIR     open (or create) a crash-safe durable database at DIR:
                   recovers from the last snapshot + WAL, then write-ahead
                   logs every mutation
     \wal          show durability status; \wal sync never|commit|every N
                   sets the fsync policy; \wal flush fsyncs now
     \checkpoint   fold the WAL into a fresh checksummed snapshot
     \q            quit

   Run with: dune exec bin/quillsh.exe [-- --init FILE.sql --engine NAME] *)

module Db = Quill.Db
module Table = Quill_storage.Table
module Schema = Quill_storage.Schema
module Catalog = Quill_storage.Catalog

type session = { mutable db : Db.t; mutable timing : bool }

let print_result s dt = function
  | Db.Rows t -> (
      print_string (Table.to_string t);
      if s.timing then Printf.printf "time: %s\n" (Quill_util.Pretty.duration dt))
  | Db.Affected n ->
      Printf.printf "ok (%d rows affected)%s\n" n
        (if s.timing then Printf.sprintf " — %s" (Quill_util.Pretty.duration dt) else "")
  | Db.Text t -> print_string t

let run_sql s sql =
  match Quill_util.Timer.time (fun () -> Db.exec s.db sql) with
  | result, dt -> print_result s dt result
  | exception Db.Error m -> Printf.printf "error: %s\n" m
  | exception Db.Aborted r -> Printf.printf "aborted: %s\n" (Db.abort_reason_name r)

let describe s name =
  match Catalog.find (Db.catalog s.db) name with
  | None -> Printf.printf "no table %S\n" name
  | Some t ->
      Printf.printf "%s %s — %d rows\n" name
        (Schema.to_string (Table.schema t))
        (Table.row_count t)

let meta s line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "\\q" ] -> exit 0
  | [ "\\d" ] ->
      List.iter (describe s) (Catalog.names (Db.catalog s.db))
  | [ "\\d"; name ] -> describe s name
  | [ "\\timing" ] ->
      s.timing <- not s.timing;
      Printf.printf "timing %s\n" (if s.timing then "on" else "off")
  | [ "\\timeout" ] -> (
      match Db.timeout_ms s.db with
      | None -> print_endline "timeout: none"
      | Some ms -> Printf.printf "timeout: %d ms\n" ms)
  | [ "\\timeout"; v ] -> (
      match (String.lowercase_ascii v, int_of_string_opt v) with
      | "off", _ | _, Some 0 ->
          Db.set_timeout s.db None;
          print_endline "timeout off"
      | _, Some ms when ms > 0 ->
          Db.set_timeout s.db (Some ms);
          Printf.printf "timeout: %d ms\n" ms
      | _ -> print_endline "usage: \\timeout MS (0 or off to clear)")
  | [ "\\budget" ] -> (
      match Db.budget_bytes s.db with
      | None -> print_endline "budget: none"
      | Some b -> Printf.printf "budget: %d bytes\n" b)
  | [ "\\budget"; v ] -> (
      match (String.lowercase_ascii v, int_of_string_opt v) with
      | "off", _ | _, Some 0 ->
          Db.set_budget s.db None;
          print_endline "budget off"
      | _, Some b when b > 0 ->
          Db.set_budget s.db (Some b);
          Printf.printf "budget: %d bytes\n" b
      | _ -> print_endline "usage: \\budget BYTES (0 or off to clear)")
  | [ "\\engine"; name ] -> (
      match String.lowercase_ascii name with
      | "volcano" -> Db.set_engine s.db Db.Volcano
      | "vectorized" | "vector" -> Db.set_engine s.db Db.Vectorized
      | "compiled" -> Db.set_engine s.db Db.Compiled
      | other -> Printf.printf "unknown engine %S\n" other)
  | "\\explain" :: rest when rest <> [] -> (
      let analyze, rest =
        match rest with
        | first :: more when String.lowercase_ascii first = "analyze" -> (true, more)
        | _ -> (false, rest)
      in
      let sql = String.concat " " rest in
      match Db.explain s.db ~analyze sql with
      | plan -> print_string plan
      | exception Db.Error m -> Printf.printf "error: %s\n" m)
  | [ "\\trace" ] ->
      Printf.printf "tracing %s\n" (if Db.tracing () then "on" else "off")
  | [ "\\trace"; "on" ] ->
      Db.set_tracing true;
      print_endline "tracing on (fresh trace)"
  | [ "\\trace"; "off" ] ->
      Db.set_tracing false;
      print_endline "tracing off"
  | [ "\\trace"; "clear" ] ->
      Db.clear_trace ();
      print_endline "trace cleared"
  | [ "\\trace"; "json" ] -> print_endline (Db.trace_json ())
  | [ "\\trace"; "json"; file ] -> (
      match open_out file with
      | oc ->
          output_string oc (Db.trace_json ());
          output_char oc '\n';
          close_out oc;
          Printf.printf "trace written to %s (open in chrome://tracing)\n" file
      | exception Sys_error m -> Printf.printf "error: %s\n" m)
  | [ "\\metrics" ] -> print_string (Db.metrics_text ())
  | [ "\\save"; dir ] -> (
      match Db.save s.db dir with
      | () -> Printf.printf "saved to %s\n" dir
      | exception Db.Error m -> Printf.printf "error: %s\n" m)
  | [ "\\load"; dir ] -> (
      match Db.load dir with
      | db ->
          s.db <- db;
          Printf.printf "loaded %s (%d tables)\n" dir
            (List.length (Catalog.names (Db.catalog db)))
      | exception (Db.Error _ | Sys_error _) ->
          Printf.printf "error: cannot load %s\n" dir)
  | [ "\\open"; dir ] -> (
      match Db.open_durable dir with
      | db, report ->
          s.db <- db;
          Printf.printf "durable database at %s (generation %d, %d tables)\n" dir
            report.Db.generation
            (List.length (Catalog.names (Db.catalog db)));
          if report.Db.replayed > 0 || report.Db.dropped > 0 then
            Printf.printf "recovery: %d statement(s) replayed, %d dropped%s\n"
              report.Db.replayed report.Db.dropped
              (if report.Db.torn then " (torn WAL tail)" else "");
          Option.iter (Printf.printf "note: %s\n") report.Db.note
      | exception Db.Error m -> Printf.printf "error: %s\n" m)
  | [ "\\wal" ] -> (
      match Db.wal_status s.db with
      | None -> print_endline "not a durable session (\\open DIR to start one)"
      | Some w ->
          Printf.printf "durable dir: %s\ngeneration: %d\nsync policy: %s\nstatements logged this session: %d\n"
            w.Db.ws_dir w.Db.ws_generation
            (Quill_storage.Wal.policy_name w.Db.ws_policy)
            w.Db.ws_appended)
  | [ "\\wal"; "flush" ] -> (
      match Db.wal_sync s.db with
      | () -> print_endline "wal synced"
      | exception Db.Error m -> Printf.printf "error: %s\n" m)
  | "\\wal" :: "sync" :: rest -> (
      match Quill_storage.Wal.policy_of_string (String.concat " " rest) with
      | None -> print_endline "usage: \\wal sync never|commit|every N"
      | Some p -> (
          match Db.set_sync_policy s.db p with
          | () ->
              Printf.printf "wal sync policy: %s\n" (Quill_storage.Wal.policy_name p)
          | exception Db.Error m -> Printf.printf "error: %s\n" m))
  | [ "\\checkpoint" ] -> (
      match Db.checkpoint s.db with
      | () -> (
          match Db.wal_status s.db with
          | Some w -> Printf.printf "checkpointed (generation %d)\n" w.Db.ws_generation
          | None -> print_endline "checkpointed")
      | exception Db.Error m -> Printf.printf "error: %s\n" m)
  | [ "\\tpch"; sf ] -> (
      match float_of_string_opt sf with
      | Some sf when sf > 0.0 && sf <= 1.0 ->
          Printf.printf "loading TPC-H-like data at SF %g...\n%!" sf;
          Quill_workload.Tpch.load (Db.catalog s.db) ~sf ~seed:42;
          print_endline "done; try: SELECT count(*) FROM lineitem;"
      | _ -> print_endline "usage: \\tpch 0.01")
  | _ -> Printf.printf "unknown meta command: %s\n" line

(* Accumulate lines until a terminating ';' (outside string literals). *)
let ends_statement buf =
  let s = String.trim (Buffer.contents buf) in
  let in_str = ref false in
  String.iter (fun c -> if c = '\'' then in_str := not !in_str) s;
  (not !in_str) && String.length s > 0 && s.[String.length s - 1] = ';'

let repl s =
  let buf = Buffer.create 256 in
  let rec loop () =
    print_string (if Buffer.length buf = 0 then "quill> " else "   ... ");
    flush stdout;
    match input_line stdin with
    | exception End_of_file -> ()
    | line ->
        let trimmed = String.trim line in
        if Buffer.length buf = 0 && String.length trimmed > 0 && trimmed.[0] = '\\'
        then meta s trimmed
        else begin
          Buffer.add_string buf line;
          Buffer.add_char buf '\n';
          if ends_statement buf then begin
            run_sql s (Buffer.contents buf);
            Buffer.clear buf
          end
        end;
        loop ()
  in
  loop ()

let run_file s path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  (* Split on ';' respecting string literals. *)
  let stmts = ref [] and buf = Buffer.create 128 and in_str = ref false in
  String.iter
    (fun c ->
      if c = '\'' then in_str := not !in_str;
      if c = ';' && not !in_str then begin
        stmts := Buffer.contents buf :: !stmts;
        Buffer.clear buf
      end
      else Buffer.add_char buf c)
    text;
  if String.trim (Buffer.contents buf) <> "" then
    stmts := Buffer.contents buf :: !stmts;
  List.iter
    (fun sql -> if String.trim sql <> "" then run_sql s sql)
    (List.rev !stmts)

open Cmdliner

let engine_arg =
  let doc = "Default execution engine: volcano, vectorized or compiled." in
  Arg.(value & opt string "compiled" & info [ "engine" ] ~doc)

let init_arg =
  let doc = "Run the SQL statements in $(docv) before starting the shell." in
  Arg.(value & opt (some file) None & info [ "init" ] ~docv:"FILE" ~doc)

let main engine init =
  let db = Db.create () in
  (match String.lowercase_ascii engine with
  | "volcano" -> Db.set_engine db Db.Volcano
  | "vectorized" | "vector" -> Db.set_engine db Db.Vectorized
  | _ -> Db.set_engine db Db.Compiled);
  let s = { db; timing = false } in
  Option.iter (run_file s) init;
  print_endline "Quill SQL shell — \\q to quit, \\d to list tables, \\tpch 0.01 for sample data";
  repl s

let cmd =
  let doc = "Interactive SQL shell over the Quill query engine" in
  Cmd.v (Cmd.info "quillsh" ~doc) Term.(const main $ engine_arg $ init_arg)

let () = exit (Cmd.eval cmd)
