(* Feedback-driven re-optimization (claim C4).

   After an instrumented execution, the observed per-operator row counts
   are compared with the picker's estimates.  Badly misestimated filter
   predicates are recorded as selectivity hints keyed by their expression
   fingerprint; the next optimization of the same query sees true
   selectivities and may pick different algorithms, join orders or
   layouts. *)

module Bexpr = Quill_plan.Bexpr
module Physical = Quill_optimizer.Physical
module Profile = Quill_exec.Profile

(** Re-optimize when any operator's estimate is off by more than this
    factor. *)
let reopt_threshold = 4.0

type t = { hints : (string, float) Hashtbl.t }

(* Selectivity hints recorded and re-optimizations triggered, observable
   via the registry (C4 made visible). *)
let m_hints = Quill_obs.Metrics.counter "quill.feedback.hints"
let m_reopts = Quill_obs.Metrics.counter "quill.feedback.reoptimizations"

(** [create ()] returns an empty feedback store. *)
let create () = { hints = Hashtbl.create 16 }

(** [hints t] exposes the hint table for {!Quill_optimizer.Card.make_env}. *)
let hints t = t.hints

(** [learn t catalog plan profile] records observed selectivities for every
    filtering operator in [plan]. Returns the number of hints updated. *)
let learn t catalog plan profile =
  let updated = ref 0 in
  let record pred ~inp ~outp =
    if inp > 0 then begin
      let sel = Float.of_int outp /. Float.of_int inp in
      Hashtbl.replace t.hints (Bexpr.to_string pred) sel;
      incr updated
    end
  in
  let counter = ref 0 in
  let rec go p =
    let id = !counter in
    incr counter;
    match p with
    | Physical.One_row | Physical.Index_scan _ -> ()
    | Physical.Scan { table; filter; _ } -> (
        match filter with
        | None -> ()
        | Some pred ->
            let total =
              Quill_storage.Table.row_count (Quill_storage.Catalog.find_exn catalog table)
            in
            record pred ~inp:total ~outp:(Profile.rows profile id))
    | Physical.Filter (pred, input, _) ->
        let child_id = !counter in
        go input;
        record pred ~inp:(Profile.rows profile child_id) ~outp:(Profile.rows profile id)
    | Physical.Project (_, input, _) | Physical.Distinct (input, _) -> go input
    | Physical.Join { left; right; _ } ->
        go left;
        go right
    | Physical.Aggregate { input; _ } | Physical.Window { input; _ }
    | Physical.Sort { input; _ } | Physical.Top_k { input; _ }
    | Physical.Limit { input; _ } ->
        go input
  in
  go plan;
  Quill_obs.Metrics.add m_hints !updated;
  !updated

(** [should_reoptimize plan profile] is true when observed cardinalities
    diverge from the estimates by more than {!reopt_threshold}; each
    trigger is counted in the registry. *)
let should_reoptimize plan profile =
  let reopt = Profile.max_error plan profile > reopt_threshold in
  if reopt then Quill_obs.Metrics.incr m_reopts;
  reopt
