(* Plan cache for parameterized queries.

   Keyed by the structured triple (SQL text, parameter dtypes,
   selectivity band); entries hold the optimized physical plan, the
   staged compilation (if the query got hot), run counts and cumulative
   timings.  The earlier string key [sql ^ "|" ^ types] only stayed
   injective as long as every dtype name was free of '|' and ',' — the
   structured key removes that implicit contract.

   Entries are invalidated when the catalog version moves (DDL/DML),
   and evicted LRU when the cache exceeds [capacity] entries or
   [budget_bytes] of estimated plan memory.

   Parameter-sensitive plans: when the planner detects that a query's
   selectivity depends on its bound parameters, it registers a
   classifier (params -> selectivity band) alongside the plan.  Lookups
   classify the incoming parameters first, so each band keeps its own
   plan variant; landing in a band with no variant while others exist
   counts as a re-pick (quill.plan_cache.repicks). *)

module Value = Quill_storage.Value

type entry = {
  sql : string;
  plan : Quill_optimizer.Physical.t;
  subs : (Value.t list option ref * Quill_optimizer.Physical.t) list;
      (** uncorrelated subqueries: cells to materialize before each run *)
  mutable compiled : Quill_compile.Codegen.compiled option;
  mutable compiled_tier : Quill_compile.Codegen.tier option;
      (** which compiler produced [compiled]; [None] while interpreted *)
  mutable stencil_missed : bool;
      (** the stencil binder already rejected this plan's shape — don't
          re-attempt the match on every execution *)
  mutable compile_time : float;  (** seconds spent staging, 0 if never *)
  mutable runs : int;
  mutable total_exec_time : float;
  mutable last_used : float;
  catalog_version : int;
  band : int option;  (** selectivity band the plan was picked for *)
  mutable bytes : int;  (** estimated memory charge against [budget_bytes] *)
}

(* Structural equality/hashing over this triple is unambiguous by
   construction: no string concatenation, no separator to collide on. *)
type key = { k_sql : string; k_types : string list; k_band : int option }

type classifier = {
  cl_version : int;
  cl_fn : Value.t array -> int;  (** bound params -> selectivity band *)
}

type t = {
  mutable capacity : int;
  mutable budget_bytes : int;
  mutable used_bytes : int;
  entries : (key, entry) Hashtbl.t;
  classifiers : (string * string list, classifier) Hashtbl.t;
      (** parameter-sensitive queries: base key -> band classifier *)
}

(* Cache traffic, observable via the registry: hits serve the cached
   plan; misses include stale entries invalidated by catalog changes.
   Evictions count LRU drops under capacity/byte pressure; repicks count
   lookups whose parameters landed in a band with no cached variant
   while other variants of the same query existed. *)
let m_hits = Quill_obs.Metrics.counter "quill.plan_cache.hits"
let m_misses = Quill_obs.Metrics.counter "quill.plan_cache.misses"
let m_evictions = Quill_obs.Metrics.counter "quill.plan_cache.evictions"
let m_repicks = Quill_obs.Metrics.counter "quill.plan_cache.repicks"
let g_entries = Quill_obs.Metrics.gauge "quill.plan_cache.entries"
let g_bytes = Quill_obs.Metrics.gauge "quill.plan_cache.bytes"

let default_budget_bytes = 64 * 1024 * 1024

(** [create ?capacity ?budget_bytes ()] returns an empty cache bounded
    both by entry count and by estimated plan bytes. *)
let create ?(capacity = 256) ?(budget_bytes = default_budget_bytes) () =
  { entries = Hashtbl.create 64; classifiers = Hashtbl.create 16; capacity;
    budget_bytes; used_bytes = 0 }

let base_key sql param_types =
  (sql, List.map Value.dtype_name (Array.to_list param_types))

(* Plans are closures over boxed values; a precise size is out of reach,
   so charge a deliberate over-estimate per plan node plus the SQL text
   we key on.  What matters for eviction is that the charge is monotone
   in plan complexity, not that it matches the allocator.

   The charge is tiered: [entry_bytes] covers only the plan tree; when
   an entry is compiled, [note_compiled] adds the compiled form's cost —
   proportional to the plan for full codegen (the staged closure network
   allocates several closures and arrays per operator), a flat patch
   record for a stencil binding.  A stencil-bound plan must not ride the
   same eviction curve as a full-codegen one: evicting it throws away
   almost nothing, and re-binding it is almost free. *)
let plan_node_count ~subs plan =
  let nodes plan = Array.length (Quill_optimizer.Physical.preorder plan) in
  List.fold_left (fun acc (_, p) -> acc + nodes p) (nodes plan) subs

let entry_bytes ~sql ~subs plan =
  (plan_node_count ~subs plan * 160) + (2 * String.length sql) + 256

(* Together with the 160/node plan charge this restores the historical
   512/node total for a fully staged entry. *)
let full_codegen_bytes ~subs plan = plan_node_count ~subs plan * 352
let stencil_bytes = 160

let publish t =
  Quill_obs.Metrics.set g_entries (Hashtbl.length t.entries);
  Quill_obs.Metrics.set g_bytes t.used_bytes

let remove_entry t k (e : entry) =
  Hashtbl.remove t.entries k;
  t.used_bytes <- t.used_bytes - e.bytes

(* Band of the incoming parameters under the registered classifier, or
   [None] for parameter-insensitive queries (and stale classifiers,
   which are dropped the same way stale entries are). *)
let classify t ~base ~params ~catalog_version =
  match Hashtbl.find_opt t.classifiers base with
  | Some cl when cl.cl_version = catalog_version -> Some (cl.cl_fn params)
  | Some _ ->
      Hashtbl.remove t.classifiers base;
      None
  | None -> None

let variants t (sql, types) =
  Hashtbl.fold
    (fun k e acc ->
      if k.k_sql = sql && k.k_types = types then (k, e) :: acc else acc)
    t.entries []

(** [find t ~sql ~param_types ~params ~catalog_version] returns a live
    cached entry for the band [params] lands in, dropping stale ones. *)
let find t ~sql ~param_types ~params ~catalog_version =
  let base = base_key sql param_types in
  let sql, types = base in
  let band = classify t ~base ~params ~catalog_version in
  let k = { k_sql = sql; k_types = types; k_band = band } in
  match Hashtbl.find_opt t.entries k with
  | Some e when e.catalog_version = catalog_version ->
      e.last_used <- Quill_util.Timer.now ();
      Quill_obs.Metrics.incr m_hits;
      Some e
  | Some e ->
      remove_entry t k e;
      publish t;
      Quill_obs.Metrics.incr m_misses;
      None
  | None ->
      (* Other live variants of this query exist but none planned for
         this band: the upcoming plan is a parameter-driven re-pick. *)
      if
        band <> None
        && List.exists
             (fun (_, (e : entry)) -> e.catalog_version = catalog_version)
             (variants t base)
      then begin
        Quill_obs.Metrics.incr m_repicks;
        Quill_obs.Trace.instant "plan-repick" ~args:[ ("sql", sql) ]
      end;
      Quill_obs.Metrics.incr m_misses;
      None

let evict_if_needed t =
  let over () =
    Hashtbl.length t.entries > t.capacity || t.used_bytes > t.budget_bytes
  in
  while over () && Hashtbl.length t.entries > 1 do
    (* Drop the least recently used entry; the loop spares the single
       newest entry so one plan bigger than the whole budget still
       runs cached rather than thrashing. *)
    let oldest = ref None in
    Hashtbl.iter
      (fun k e ->
        match !oldest with
        | Some (_, _, t0) when t0 <= e.last_used -> ()
        | _ -> oldest := Some (k, e, e.last_used))
      t.entries;
    match !oldest with
    | Some (k, e, _) ->
        remove_entry t k e;
        Quill_obs.Metrics.incr m_evictions
    | None -> ()
  done

(** [note_compiled t e ~tier] records that [e] was compiled by [tier]
    and re-charges its byte estimate accordingly, evicting if the new
    charge pushes the cache over budget. *)
let note_compiled t (e : entry) ~tier =
  let extra =
    match tier with
    | Quill_compile.Codegen.Tier_full -> full_codegen_bytes ~subs:e.subs e.plan
    | Quill_compile.Codegen.Tier_stencil -> stencil_bytes
  in
  e.compiled_tier <- Some tier;
  e.bytes <- e.bytes + extra;
  t.used_bytes <- t.used_bytes + extra;
  evict_if_needed t;
  publish t

(** [add t ~sql ~param_types ?params ?classifier ~catalog_version ?subs
    plan] caches a fresh plan and returns its entry.  [classifier]
    registers the query as parameter-sensitive; the new plan is stored
    under the band [params] classifies to. *)
let add t ~sql ~param_types ?(params = [||]) ?classifier ~catalog_version
    ?(subs = []) plan =
  let base = base_key sql param_types in
  (match classifier with
  | Some fn ->
      Hashtbl.replace t.classifiers base
        { cl_version = catalog_version; cl_fn = fn }
  | None -> ());
  let band = classify t ~base ~params ~catalog_version in
  let bytes = entry_bytes ~sql ~subs plan in
  let e =
    {
      sql;
      plan;
      subs;
      compiled = None;
      compiled_tier = None;
      stencil_missed = false;
      compile_time = 0.0;
      runs = 0;
      total_exec_time = 0.0;
      last_used = Quill_util.Timer.now ();
      catalog_version;
      band;
      bytes;
    }
  in
  let sql_k, types = base in
  let k = { k_sql = sql_k; k_types = types; k_band = band } in
  (match Hashtbl.find_opt t.entries k with
  | Some old -> remove_entry t k old
  | None -> ());
  Hashtbl.replace t.entries k e;
  t.used_bytes <- t.used_bytes + bytes;
  evict_if_needed t;
  publish t;
  e

(** [invalidate t ~sql ~param_types] drops every band variant of one
    query, plus its classifier (used after re-optimization decisions). *)
let invalidate t ~sql ~param_types =
  let base = base_key sql param_types in
  List.iter (fun (k, e) -> remove_entry t k e) (variants t base);
  Hashtbl.remove t.classifiers base;
  publish t

(** [clear t] empties the cache. *)
let clear t =
  Hashtbl.reset t.entries;
  Hashtbl.reset t.classifiers;
  t.used_bytes <- 0;
  publish t

(** [size t] is the number of live entries. *)
let size t = Hashtbl.length t.entries

(** [used_bytes t] is the estimated bytes currently charged. *)
let used_bytes t = t.used_bytes

(** [set_capacity t n] / [set_budget t bytes] re-bound the cache,
    evicting immediately if the new bound is tighter. *)
let set_capacity t n =
  t.capacity <- max 1 n;
  evict_if_needed t;
  publish t

let set_budget t bytes =
  t.budget_bytes <- max 0 bytes;
  evict_if_needed t;
  publish t
