(* Plan cache for parameterized queries.

   Keyed by (SQL text, parameter dtypes); entries hold the optimized
   physical plan, the staged compilation (if the query got hot), run
   counts and cumulative timings.  Entries are invalidated when the
   catalog version moves (DDL/DML), and evicted LRU beyond [capacity]. *)

module Value = Quill_storage.Value

type entry = {
  sql : string;
  plan : Quill_optimizer.Physical.t;
  subs : (Value.t list option ref * Quill_optimizer.Physical.t) list;
      (** uncorrelated subqueries: cells to materialize before each run *)
  mutable compiled : Quill_compile.Codegen.compiled option;
  mutable compile_time : float;  (** seconds spent staging, 0 if never *)
  mutable runs : int;
  mutable total_exec_time : float;
  mutable last_used : float;
  catalog_version : int;
}

type t = { capacity : int; entries : (string, entry) Hashtbl.t }

(* Cache traffic, observable via the registry: hits serve the cached
   plan; misses include stale entries invalidated by catalog changes. *)
let m_hits = Quill_obs.Metrics.counter "quill.plan_cache.hits"
let m_misses = Quill_obs.Metrics.counter "quill.plan_cache.misses"
let g_entries = Quill_obs.Metrics.gauge "quill.plan_cache.entries"

(** [create ?capacity ()] returns an empty cache. *)
let create ?(capacity = 256) () = { entries = Hashtbl.create 64; capacity }

let key sql param_types =
  sql ^ "|" ^ String.concat "," (List.map Value.dtype_name (Array.to_list param_types))

(** [find t ~sql ~param_types ~catalog_version] returns a live cached
    entry, dropping stale ones. *)
let find t ~sql ~param_types ~catalog_version =
  let k = key sql param_types in
  match Hashtbl.find_opt t.entries k with
  | Some e when e.catalog_version = catalog_version ->
      e.last_used <- Quill_util.Timer.now ();
      Quill_obs.Metrics.incr m_hits;
      Some e
  | Some _ ->
      Hashtbl.remove t.entries k;
      Quill_obs.Metrics.set g_entries (Hashtbl.length t.entries);
      Quill_obs.Metrics.incr m_misses;
      None
  | None ->
      Quill_obs.Metrics.incr m_misses;
      None

let evict_if_needed t =
  if Hashtbl.length t.entries > t.capacity then begin
    (* Drop the least recently used entry. *)
    let oldest = ref None in
    Hashtbl.iter
      (fun k e ->
        match !oldest with
        | Some (_, t0) when t0 <= e.last_used -> ()
        | _ -> oldest := Some (k, e.last_used))
      t.entries;
    match !oldest with Some (k, _) -> Hashtbl.remove t.entries k | None -> ()
  end

(** [add t ~sql ~param_types ~catalog_version ?subs plan] caches a fresh
    plan and returns its entry. *)
let add t ~sql ~param_types ~catalog_version ?(subs = []) plan =
  let e =
    {
      sql;
      plan;
      subs;
      compiled = None;
      compile_time = 0.0;
      runs = 0;
      total_exec_time = 0.0;
      last_used = Quill_util.Timer.now ();
      catalog_version;
    }
  in
  Hashtbl.replace t.entries (key sql param_types) e;
  evict_if_needed t;
  Quill_obs.Metrics.set g_entries (Hashtbl.length t.entries);
  e

(** [invalidate t ~sql ~param_types] drops one entry (used after
    re-optimization decisions). *)
let invalidate t ~sql ~param_types =
  Hashtbl.remove t.entries (key sql param_types);
  Quill_obs.Metrics.set g_entries (Hashtbl.length t.entries)

(** [clear t] empties the cache. *)
let clear t =
  Hashtbl.reset t.entries;
  Quill_obs.Metrics.set g_entries 0

(** [size t] is the number of live entries. *)
let size t = Hashtbl.length t.entries
