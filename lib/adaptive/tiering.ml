(* Tiered execution: interpret cold queries, compile hot ones (claim C4).

   This reproduces the managed-runtime economics the keynote points at:
   interpretation starts instantly but pays per tuple; staging pays a
   fixed compilation cost and then runs several times faster.  The policy
   compiles a cached plan once its run count reaches [hot_threshold]
   (mirroring JVM/V8 invocation-counter tier-up). Experiment E5 sweeps the
   policies. *)

module Physical = Quill_optimizer.Physical
module Codegen = Quill_compile.Codegen

type policy =
  | Interpret_always
  | Compile_always
  | Tiered of int  (** compile after this many runs *)

(** Default invocation-counter threshold. *)
let default_hot_threshold = 3

(* Cached plans promoted to the compiled tier. *)
let m_tierups = Quill_obs.Metrics.counter "quill.tiering.tierups"

let policy_name = function
  | Interpret_always -> "interpret-always"
  | Compile_always -> "compile-always"
  | Tiered n -> Printf.sprintf "tiered(%d)" n

(** [execute ~policy ~ctx entry] runs a cached plan under the given
    tiering policy, updating the entry's counters; returns the rows. *)
let execute ~policy ~(ctx : Quill_exec.Exec_ctx.t) (entry : Plan_cache.entry) =
  entry.Plan_cache.runs <- entry.Plan_cache.runs + 1;
  let want_compiled =
    match policy with
    | Interpret_always -> false
    | Compile_always -> true
    | Tiered n -> entry.Plan_cache.runs >= n
  in
  let rows, elapsed =
    if want_compiled then begin
      let compiled =
        match entry.Plan_cache.compiled with
        | Some c -> c
        | None ->
            let c, dt =
              Quill_util.Timer.time (fun () ->
                  (* Pass the session's index registry: compiling against
                     a fresh one made every execution of an index-scan
                     plan rebuild the index from scratch (~1000x per-hit
                     cost at traffic-harness QPS). *)
                  Codegen.compile ~indexes:ctx.Quill_exec.Exec_ctx.indexes
                    ctx.Quill_exec.Exec_ctx.catalog entry.Plan_cache.plan)
            in
            entry.Plan_cache.compiled <- Some c;
            entry.Plan_cache.compile_time <- dt;
            Quill_obs.Metrics.incr m_tierups;
            (* Compilation time counts against the query that triggered
               it, as it would in a JIT. *)
            entry.Plan_cache.total_exec_time <-
              entry.Plan_cache.total_exec_time +. dt;
            c
      in
      Quill_util.Timer.time (fun () ->
          compiled ctx.Quill_exec.Exec_ctx.governor ctx.Quill_exec.Exec_ctx.params)
    end
    else
      Quill_util.Timer.time (fun () ->
          let arr = Quill_exec.Vector.run ctx entry.Plan_cache.plan in
          let v = Quill_util.Vec.create ~dummy:[||] in
          Array.iter (fun r -> Quill_util.Vec.push v r) arr;
          v)
  in
  entry.Plan_cache.total_exec_time <- entry.Plan_cache.total_exec_time +. elapsed;
  rows
