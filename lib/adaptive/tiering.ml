(* Tiered execution: interpret cold queries, compile hot ones (claim C4).

   This reproduces the managed-runtime economics the keynote points at:
   interpretation starts instantly but pays per tuple; staging pays a
   fixed compilation cost and then runs several times faster.  The
   copy-and-patch stencil tier ({!Quill_compile.Stencil_bind}) changes
   those economics: binding a covered shape costs so little that it is
   attempted on the very FIRST execution — a one-shot query still gets
   the compiled loop.  Only plans the binder rejects fall back to the
   classic trade-off, and for those the break-even is no longer a fixed
   run count alone: the policy compares the time interpretation has
   already burned against the *measured* cost of a full staging pass
   (EWMA over real compiles, seeded from the optimizer's cost model),
   compiling as soon as the projected savings cover it.  Experiment E5
   sweeps the policies; E23 measures the stencil-vs-full staging gap. *)

module Physical = Quill_optimizer.Physical
module Codegen = Quill_compile.Codegen
module Stencil_bind = Quill_compile.Stencil_bind
module Cost = Quill_optimizer.Cost
module Timer = Quill_util.Timer

type policy =
  | Interpret_always
  | Compile_always
  | Tiered of int  (** compile after this many runs *)

(** Default invocation-counter threshold. *)
let default_hot_threshold = 3

(* Cached plans promoted to a compiled tier (stencil or full). *)
let m_tierups = Quill_obs.Metrics.counter "quill.tiering.tierups"

let policy_name = function
  | Interpret_always -> "interpret-always"
  | Compile_always -> "compile-always"
  | Tiered n -> Printf.sprintf "tiered(%d)" n

(* --- Measured staging economics ----------------------------------------- *)

(* Per-operator staging cost, EWMA over the compiles this process has
   actually performed.  Two series: full codegen staging and stencil
   binding.  [bind_per_op] is not used for tier-up decisions (binding is
   attempted unconditionally, it is that cheap) but it is what E23 and
   the registry report, keeping the measured gap observable. *)
type staging_stats = {
  mutable full_per_op : float;  (* seconds per plan operator *)
  mutable full_samples : int;
  mutable bind_per_op : float;
  mutable bind_samples : int;
}

let stats =
  { full_per_op = 0.0; full_samples = 0; bind_per_op = 0.0; bind_samples = 0 }

let ewma_alpha = 0.2

let note_full ~operators dt =
  let per = dt /. Float.of_int (max 1 operators) in
  stats.full_per_op <-
    (if stats.full_samples = 0 then per
     else ((1.0 -. ewma_alpha) *. stats.full_per_op) +. (ewma_alpha *. per));
  stats.full_samples <- stats.full_samples + 1

let note_bind ~operators dt =
  let per = dt /. Float.of_int (max 1 operators) in
  stats.bind_per_op <-
    (if stats.bind_samples = 0 then per
     else ((1.0 -. ewma_alpha) *. stats.bind_per_op) +. (ewma_alpha *. per));
  stats.bind_samples <- stats.bind_samples + 1

(** [reset_stats ()] clears the measured staging costs (tests and
    benchmark isolation). *)
let reset_stats () =
  stats.full_per_op <- 0.0;
  stats.full_samples <- 0;
  stats.bind_per_op <- 0.0;
  stats.bind_samples <- 0

(* Translation of the optimizer's abstract cost units into seconds, used
   only to seed the estimate before this process has measured a real
   staging pass (roughly 50M cost units/second). *)
let seconds_per_cost_unit = 2e-8

(** [est_full_compile_seconds ~operators] projects what a full staging
    pass of a plan with [operators] nodes would cost: the measured
    per-operator EWMA when available, the optimizer cost model's
    [compile_setup] term otherwise. *)
let est_full_compile_seconds ~operators =
  if stats.full_samples > 0 then stats.full_per_op *. Float.of_int (max 1 operators)
  else Cost.compile_setup ~operators *. seconds_per_cost_unit

(* --- Execution ---------------------------------------------------------- *)

(** [execute ?cache ~policy ~ctx entry] runs a cached plan under the
    given tiering policy, updating the entry's counters; returns the
    rows.  [cache] lets compiled entries be re-charged for their
    tier-specific memory footprint ({!Plan_cache.note_compiled}). *)
let execute ?cache ~policy ~(ctx : Quill_exec.Exec_ctx.t) (entry : Plan_cache.entry) =
  entry.Plan_cache.runs <- entry.Plan_cache.runs + 1;
  let operators = Array.length (Physical.preorder entry.Plan_cache.plan) in
  let note_tier tier =
    Quill_obs.Metrics.incr m_tierups;
    match cache with
    | Some c -> Plan_cache.note_compiled c entry ~tier
    | None -> entry.Plan_cache.compiled_tier <- Some tier
  in
  (* Charge staging to the query that triggered it, as a JIT would. *)
  let charge_compile dt =
    entry.Plan_cache.compile_time <- dt;
    entry.Plan_cache.total_exec_time <- entry.Plan_cache.total_exec_time +. dt
  in
  let try_stencil () =
    if entry.Plan_cache.stencil_missed then None
    else begin
      let c, dt =
        Timer.time (fun () ->
            Stencil_bind.bind ctx.Quill_exec.Exec_ctx.catalog entry.Plan_cache.plan)
      in
      match c with
      | Some f ->
          note_bind ~operators dt;
          entry.Plan_cache.compiled <- Some f;
          charge_compile dt;
          note_tier Codegen.Tier_stencil;
          Some f
      | None ->
          entry.Plan_cache.stencil_missed <- true;
          None
    end
  in
  let full_compile () =
    let c, dt =
      Timer.time (fun () ->
          (* Pass the session's index registry: compiling against a fresh
             one made every execution of an index-scan plan rebuild the
             index from scratch (~1000x per-hit cost at traffic-harness
             QPS). *)
          Codegen.compile ~indexes:ctx.Quill_exec.Exec_ctx.indexes
            ctx.Quill_exec.Exec_ctx.catalog entry.Plan_cache.plan)
    in
    note_full ~operators dt;
    entry.Plan_cache.compiled <- Some c;
    charge_compile dt;
    note_tier Codegen.Tier_full;
    c
  in
  (* Stencil-missed plans tier up on the classic invocation counter — or
     earlier, once interpretation has already burned what a measured full
     staging pass costs.  The payback rule only engages after this
     process has measured at least one real compile ([full_samples]), so
     break-even reflects this machine, not a guess. *)
  let full_pays_off () =
    stats.full_samples > 0
    && entry.Plan_cache.total_exec_time *. (1.0 -. (1.0 /. Cost.compiled_speedup))
       >= est_full_compile_seconds ~operators
  in
  let compiled =
    match (policy, entry.Plan_cache.compiled) with
    | Interpret_always, _ -> None
    | _, Some c -> Some c
    | Compile_always, None -> (
        match try_stencil () with Some c -> Some c | None -> Some (full_compile ()))
    | Tiered n, None -> (
        match try_stencil () with
        | Some c -> Some c
        | None ->
            if entry.Plan_cache.runs >= n || full_pays_off () then
              Some (full_compile ())
            else None)
  in
  (* Stencil drivers are pre-composed and cannot register spill hooks:
     a spill-capable execution of a stencil-tier entry routes through the
     vector interpreter instead, whose operators can spill.  The entry
     keeps its stencil for ordinary executions. *)
  let compiled =
    match compiled with
    | Some _
      when entry.Plan_cache.compiled_tier = Some Codegen.Tier_stencil
           && Quill_exec.Governor.can_spill ctx.Quill_exec.Exec_ctx.governor ->
        None
    | c -> c
  in
  let rows, elapsed =
    match compiled with
    | Some c ->
        Timer.time (fun () ->
            c ctx.Quill_exec.Exec_ctx.governor ctx.Quill_exec.Exec_ctx.params)
    | None ->
        Timer.time (fun () ->
            let arr = Quill_exec.Vector.run ctx entry.Plan_cache.plan in
            let v = Quill_util.Vec.create ~dummy:[||] in
            Array.iter (fun r -> Quill_util.Vec.push v r) arr;
            v)
  in
  entry.Plan_cache.total_exec_time <- entry.Plan_cache.total_exec_time +. elapsed;
  rows
