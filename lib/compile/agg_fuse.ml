(* Mergeable unboxed aggregate accumulators for fused scan->aggregate
   loops.

   Shared by the two compiled tiers: full codegen's scan->aggregate
   fusion ({!Codegen}) and the pre-composed global-aggregate stencil
   ({!Stencil}).  One [acc] per aggregate per worker; the parallel
   drivers give each domain private accumulators and merge partials in
   worker order at the end.

   [mk_step] decides per execution (columns and parameter values in
   hand) whether an aggregate admits the unboxed path; [None] sends the
   caller to its general staged fallback, so semantics never depend on
   what compiles. *)

module Value = Quill_storage.Value
module Lplan = Quill_plan.Lplan
module Bexpr = Quill_plan.Bexpr

type acc = {
  mutable cnt : int;  (* matching non-null inputs (rows for COUNT star) *)
  mutable si : int;
  mutable sf : float;
  mutable besti : int;
  mutable bestf : float;
  mutable seen : bool;
}

let new_acc () = { cnt = 0; si = 0; sf = 0.0; besti = 0; bestf = 0.0; seen = false }

type agg_par = {
  step : acc -> int -> unit;  (* feed one row index *)
  merge : acc -> acc -> unit;  (* fold the second acc into the first *)
  finish : acc -> Value.t;
}

(** [mk_step cols params a] builds the unboxed accumulator for aggregate
    [a] over the typed columns, or [None] when the shape is unsupported
    (DISTINCT, string min/max, arguments the kernel compiler rejects). *)
let mk_step cols params (a : Lplan.agg) : agg_par option =
  let arg_valid arg = Col_expr.valid_fn cols arg in
  let merge_count dst src = dst.cnt <- dst.cnt + src.cnt in
  match (a.Lplan.kind, a.Lplan.arg) with
  | _, _ when a.Lplan.distinct -> None
  | Lplan.Count, None ->
      Some
        { step = (fun acc _ -> acc.cnt <- acc.cnt + 1);
          merge = merge_count;
          finish = (fun acc -> Value.Int acc.cnt) }
  | Lplan.Count, Some arg ->
      (* Count non-NULL arguments; only for shapes where NULL-ness is
         exactly "a referenced column is NULL". *)
      let shape_ok =
        match arg.Bexpr.node with
        | Bexpr.Col _ -> true
        | _ ->
            Col_expr.compile_int cols params arg <> None
            || Col_expr.compile_float cols params arg <> None
      in
      if not shape_ok then None
      else begin
        let valid = arg_valid arg in
        Some
          { step = (fun acc i -> if valid i then acc.cnt <- acc.cnt + 1);
            merge = merge_count;
            finish = (fun acc -> Value.Int acc.cnt) }
      end
  | Lplan.Sum, Some arg when a.Lplan.out_dtype = Value.Int_t -> (
      match Col_expr.compile_int cols params arg with
      | Some f ->
          let valid = arg_valid arg in
          Some
            { step =
                (fun acc i ->
                  if valid i then begin
                    acc.si <- acc.si + f i;
                    acc.cnt <- acc.cnt + 1
                  end);
              merge =
                (fun dst src ->
                  dst.si <- dst.si + src.si;
                  dst.cnt <- dst.cnt + src.cnt);
              finish =
                (fun acc -> if acc.cnt = 0 then Value.Null else Value.Int acc.si) }
      | None -> None)
  | (Lplan.Sum | Lplan.Avg), Some arg -> (
      match Col_expr.compile_float cols params arg with
      | Some f ->
          let valid = arg_valid arg in
          let is_avg = a.Lplan.kind = Lplan.Avg in
          Some
            { step =
                (fun acc i ->
                  if valid i then begin
                    acc.sf <- acc.sf +. f i;
                    acc.cnt <- acc.cnt + 1
                  end);
              merge =
                (fun dst src ->
                  dst.sf <- dst.sf +. src.sf;
                  dst.cnt <- dst.cnt + src.cnt);
              finish =
                (fun acc ->
                  if acc.cnt = 0 then Value.Null
                  else if is_avg then Value.Float (acc.sf /. Float.of_int acc.cnt)
                  else Value.Float acc.sf) }
      | None -> None)
  | (Lplan.Min | Lplan.Max), Some arg -> (
      let is_min = a.Lplan.kind = Lplan.Min in
      match a.Lplan.out_dtype with
      | Value.Int_t | Value.Date_t -> (
          match Col_expr.compile_int cols params arg with
          | Some f ->
              let valid = arg_valid arg in
              let better x y = if is_min then x < y else x > y in
              let mk v =
                if a.Lplan.out_dtype = Value.Date_t then Value.Date v else Value.Int v
              in
              Some
                { step =
                    (fun acc i ->
                      if valid i then begin
                        let v = f i in
                        if (not acc.seen) || better v acc.besti then acc.besti <- v;
                        acc.seen <- true
                      end);
                  merge =
                    (fun dst src ->
                      if src.seen then begin
                        if (not dst.seen) || better src.besti dst.besti then
                          dst.besti <- src.besti;
                        dst.seen <- true
                      end);
                  finish = (fun acc -> if acc.seen then mk acc.besti else Value.Null) }
          | None -> None)
      | Value.Float_t -> (
          match Col_expr.compile_float cols params arg with
          | Some f ->
              let valid = arg_valid arg in
              let better x y = if is_min then x < y else x > y in
              Some
                { step =
                    (fun acc i ->
                      if valid i then begin
                        let v = f i in
                        if (not acc.seen) || better v acc.bestf then acc.bestf <- v;
                        acc.seen <- true
                      end);
                  merge =
                    (fun dst src ->
                      if src.seen then begin
                        if (not dst.seen) || better src.bestf dst.bestf then
                          dst.bestf <- src.bestf;
                        dst.seen <- true
                      end);
                  finish = (fun acc -> if acc.seen then Value.Float acc.bestf else Value.Null) }
          | None -> None)
      | _ -> None)
  | _, _ -> None
