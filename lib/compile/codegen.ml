(* The compiled query engine: data-centric produce/consume staging.

   [compile] walks the physical plan ONCE and stages it into a network of
   OCaml closures, HyPer-style: each pipeline (scan up to the next
   pipeline breaker) becomes a single fused loop in which a row flows
   through filter, projection and probe logic without operator dispatch.
   Scans over columnar tables evaluate qualifying predicates directly on
   the typed arrays (see {!Col_pred}) and materialize only the columns the
   pipeline actually reads.

   The returned [compiled] value can be executed many times with different
   parameter vectors; the staging cost is paid once.  That separation is
   what the tiering experiment (E5) measures. *)

module Value = Quill_storage.Value
module Table = Quill_storage.Table
module Catalog = Quill_storage.Catalog
module Column = Quill_storage.Column
module Schema = Quill_storage.Schema
module Bitset = Quill_util.Bitset
module Vec = Quill_util.Vec
module Bexpr = Quill_plan.Bexpr
module Lplan = Quill_plan.Lplan
module Physical = Quill_optimizer.Physical
module Governor = Quill_exec.Governor
module Join_algos = Quill_exec.Join_algos
module Agg_algos = Quill_exec.Agg_algos
module Sort_algos = Quill_exec.Sort_algos
module Topk = Quill_exec.Topk
module Spool = Quill_exec.Spool
module Pool = Quill_parallel.Pool
module Pdriver = Quill_parallel.Driver
module IntSet = Set.Make (Int)

exception Limit_reached

(* Ablation switches for the fusion benchmarks (E14): disabling them falls
   back to the generic staged paths. *)
let enable_scan_agg_fusion = ref true
let enable_col_pred = ref true

type compiled = Governor.t -> Value.t array -> Value.t array Vec.t
(** [run gov params] executes the staged plan under resource governor
    [gov] and returns the result rows.  Pass {!Governor.none} for an
    ungoverned run. *)

type consume = Value.t array -> unit

(* The parameter vector and governor of the current execution, read by
   staged closures through these cells. *)
type stage_ctx = {
  catalog : Catalog.t;
  params : Value.t array ref;
  indexes : Quill_storage.Index.Registry.t;
  gov : Governor.t ref;
}

let cols_of_expr e = IntSet.of_list (Bexpr.cols e)

let compile_expr sctx e =
  let f = Expr_compile.compile e in
  fun row -> f !(sctx.params) row

let compile_pred sctx e =
  let f = Expr_compile.compile_pred e in
  fun row -> f !(sctx.params) row

(* Scan->aggregate fusion: a global (ungrouped) aggregate directly over a
   columnar scan compiles to one unboxed loop over the typed arrays — the
   "hand-written TPC-H Q6 loop" that data-centric compilation is known
   for.  The attempt runs at execution time (columns and parameter values
   in hand); [None] means the caller uses the general staged path. *)

(* The mergeable unboxed accumulators live in {!Agg_fuse}, shared with
   the global-aggregate stencil so both compiled tiers run the identical
   fused loop. *)

(* Parallelism comes from the shared morsel-driven pool ({!Quill_parallel}):
   the session goal is [Pool.parallelism ()] (set via [Db.set_parallelism]
   or QUILL_DOMAINS) and defaults to 1, because parallel float aggregation
   reorders additions and can differ in the last bits from the sequential
   plan (see experiments E13/E15).  The drivers degrade to the serial loop
   for small inputs and nested parallel regions. *)

let fuse_scan_agg sctx ~table ~filter ~(aggs : (Lplan.agg * string) list) () :
    (Value.t array -> unit) -> (unit -> unit) option =
 fun consume ->
  let t = Catalog.find_exn sctx.catalog table in
  let cols = Table.columnar t in
  let params = !(sctx.params) in
  let gov = !(sctx.gov) in
  let n = Table.row_count t in
  let pred =
    match filter with
    | None -> Some (fun _ -> true)
    | Some f -> Col_pred.compile cols params f
  in
  match pred with
  | None -> None
  | Some pred ->
      let steps =
        List.map (fun ((a : Lplan.agg), _) -> Agg_fuse.mk_step cols params a) aggs
      in
      if List.exists Option.is_none steps then None
      else begin
        let steps = Array.of_list (List.map Option.get steps) in
        let nsteps = Array.length steps in
        let run_range accs lo hi =
          for i = lo to hi - 1 do
            Governor.tick gov;
            if pred i then
              for j = 0 to nsteps - 1 do
                steps.(j).Agg_fuse.step accs.(j) i
              done
          done
        in
        Some
          (fun () ->
            (* Each pool worker aggregates the morsels it wins into private
               accumulators (all shared state is read-only); partials merge
               in worker order at the end. *)
            let accs =
              Pdriver.fold ~workers:(Pool.parallelism ()) ~n
                ~init:(fun () -> Array.init nsteps (fun _ -> Agg_fuse.new_acc ()))
                ~range:run_range
                ~merge:(fun dst src ->
                  Array.iteri (fun j acc -> steps.(j).Agg_fuse.merge dst.(j) acc) src)
            in
            consume (Array.mapi (fun j acc -> steps.(j).Agg_fuse.finish acc) accs))
      end

(* [stage_col_scan_ranges sctx ~table ~filter ~arity ~needed] stages a
   columnar scan as a range-runnable producer: the returned thunk is
   invoked once per execution (parameters in hand) and yields
   [(n, run)] where [run lo hi consume] streams the qualifying rows of
   [\[lo, hi)] in ascending row order.  [run] touches only read-only
   shared state, so disjoint ranges may execute on different domains —
   this is the morsel substrate for parallel scan/filter, parallel
   grouped aggregation and the parallel hash-join probe. *)
let stage_col_scan_ranges sctx ~table ~filter ~arity ~needed =
  let needed =
    IntSet.union needed
      (match filter with None -> IntSet.empty | Some f -> cols_of_expr f)
  in
  let needed_list = IntSet.elements (IntSet.filter (fun c -> c < arity) needed) in
  let row_pred = Option.map (compile_pred sctx) filter in
  let t = Catalog.find_exn sctx.catalog table in
  fun () ->
    let gov = !(sctx.gov) in
    let cols = Table.columnar t in
    let n = Table.row_count t in
    (* Per-execution predicate specialization: parameters are known now,
       so constant-vs-column shapes compile to unboxed tests. *)
    let fast_pred =
      if !enable_col_pred then
        Option.bind filter (fun f -> Col_pred.compile cols !(sctx.params) f)
      else None
    in
    let fetchers =
      List.map (fun c -> fun (row : Value.t array) i -> row.(c) <- Column.get cols.(c) i)
        needed_list
    in
    let build_row i =
      let row = Array.make arity Value.Null in
      List.iter (fun f -> f row i) fetchers;
      row
    in
    let run lo hi (consume : consume) =
      match (fast_pred, row_pred) with
      | Some p, _ ->
          for i = lo to hi - 1 do
            Governor.tick gov;
            if p i then consume (build_row i)
          done
      | None, Some p ->
          for i = lo to hi - 1 do
            Governor.tick gov;
            let row = build_row i in
            if p row then consume row
          done
      | None, None ->
          for i = lo to hi - 1 do
            Governor.tick gov;
            consume (build_row i)
          done
    in
    (n, run)

(* [produce sctx plan ~needed consume] stages the subtree rooted at [plan];
   the returned thunk streams every output row into [consume]. [needed]
   lists the output columns the consumer will read — scans skip the rest. *)
let rec produce sctx (plan : Physical.t) ~needed (consume : consume) : unit -> unit =
  match plan with
  | Physical.One_row -> fun () -> consume [||]
  | Physical.Scan { table; layout; filter; schema; _ } ->
      let t = Catalog.find_exn sctx.catalog table in
      let arity = Schema.arity schema in
      let needed =
        IntSet.union needed
          (match filter with None -> IntSet.empty | Some f -> cols_of_expr f)
      in
      (match layout with
      | Physical.Row_layout ->
          let pred = Option.map (compile_pred sctx) filter in
          fun () ->
            let gov = !(sctx.gov) in
            let n = Table.row_count t in
            (match pred with
            | None ->
                for i = 0 to n - 1 do
                  Governor.tick gov;
                  consume (Array.copy (Table.get_row t i))
                done
            | Some p ->
                for i = 0 to n - 1 do
                  Governor.tick gov;
                  let row = Table.get_row t i in
                  if p row then consume (Array.copy row)
                done)
      | Physical.Col_layout ->
          let staged = stage_col_scan_ranges sctx ~table ~filter ~arity ~needed in
          fun () ->
            let n, run = staged () in
            run 0 n consume)
  | Physical.Index_scan { table; col; col_name; lo; hi; residual; _ } ->
      let t = Catalog.find_exn sctx.catalog table in
      let residual_p = Option.map (compile_pred sctx) residual in
      fun () ->
        let params = !(sctx.params) in
        let ctx = Quill_exec.Exec_ctx.create ~params ~indexes:sctx.indexes sctx.catalog in
        let lo = Quill_exec.Index_access.eval_bound ~params lo in
        let hi = Quill_exec.Index_access.eval_bound ~params hi in
        let ids = Quill_exec.Index_access.rowids ctx ~table ~col_name ~col ~lo ~hi in
        let gov = !(sctx.gov) in
        List.iter
          (fun i ->
            Governor.tick gov;
            let row = Array.copy (Table.get_row t i) in
            match residual_p with
            | Some p when not (p row) -> ()
            | _ -> consume row)
          ids
  | Physical.Filter (pred, input, _) ->
      let p = compile_pred sctx pred in
      let needed_in = IntSet.union needed (cols_of_expr pred) in
      produce sctx input ~needed:needed_in (fun row -> if p row then consume row)
  | Physical.Project (items, input, _) ->
      let fns = Array.of_list (List.map (fun (e, _) -> compile_expr sctx e) items) in
      let needed_in =
        List.fold_left (fun acc (e, _) -> IntSet.union acc (cols_of_expr e)) IntSet.empty items
      in
      let n = Array.length fns in
      produce sctx input ~needed:needed_in (fun row ->
          let out = Array.make n Value.Null in
          for i = 0 to n - 1 do
            out.(i) <- fns.(i) row
          done;
          consume out)
  | Physical.Join { algo; kind; keys; residual; build_left; left; right; _ } ->
      let la = Schema.arity (Physical.schema_of left) in
      let mode =
        match kind with
        | Lplan.Inner -> Join_algos.Inner
        | Lplan.Left_outer -> Join_algos.Left_outer
      in
      let right_arity = Schema.arity (Physical.schema_of right) in
      let cond_cols =
        match residual with None -> IntSet.empty | Some e -> cols_of_expr e
      in
      let key_cols =
        List.fold_left
          (fun acc (l, r) -> IntSet.add l (IntSet.add (r + la) acc))
          IntSet.empty keys
      in
      let all = IntSet.union needed (IntSet.union cond_cols key_cols) in
      let needed_l = IntSet.filter (fun i -> i < la) all in
      let needed_r = IntSet.map (fun i -> i - la) (IntSet.filter (fun i -> i >= la) all) in
      (match algo with
      | Physical.Hash_join ->
          (* Streaming probe: the probe side pipeline stays fused. *)
          let bkeys = List.map (if build_left then fst else snd) keys in
          let pkeys = List.map (if build_left then snd else fst) keys in
          let residual_p = Option.map (compile_pred sctx) residual in
          let table :
              (int, (Value.t list * Value.t array) list ref) Hashtbl.t =
            Hashtbl.create 1024
          in
          (* The build pipeline is staged once against a dispatching sink:
             each execution points it at the in-memory table (fast path)
             or a spillable spool (out-of-core path). *)
          let build_sink : consume ref = ref ignore in
          let build_consume (row : Value.t array) =
            match Join_algos.key_of bkeys row with
            | None -> ()
            | Some k ->
                Governor.charge_row ~overhead:48 !(sctx.gov) row;
                let h = Join_algos.hash_key k in
                (match Hashtbl.find_opt table h with
                | Some l -> l := (k, row) :: !l
                | None -> Hashtbl.add table h (ref [ (k, row) ]))
          in
          let build_thunk =
            if build_left then
              produce sctx left ~needed:needed_l (fun row -> !build_sink row)
            else produce sctx right ~needed:needed_r (fun row -> !build_sink row)
          in
          (* For a left-outer join the picker pins build_left=false, so
             the probe side is the preserved side and padding can happen
             inline while the pipeline stays fused. *)
          let padding = Array.make right_arity Value.Null in
          (* [probe_row] only reads the build table and emits via its
             argument, so probe work over disjoint row ranges can run on
             different domains (Hashtbl reads don't mutate). *)
          let probe_row ~(on_emit : consume) (prow : Value.t array) =
            let emitted = ref false in
            let emit l r =
              let row = Join_algos.concat_rows l r in
              match residual_p with
              | Some p when not (p row) -> ()
              | _ ->
                  emitted := true;
                  on_emit row
            in
            (match Join_algos.key_of pkeys prow with
            | None -> ()
            | Some k -> (
                match Hashtbl.find_opt table (Join_algos.hash_key k) with
                | None -> ()
                | Some bucket ->
                    List.iter
                      (fun (bk, brow) ->
                        if Join_algos.keys_equal bk k then
                          if build_left then emit brow prow else emit prow brow)
                      !bucket));
            if mode = Join_algos.Left_outer && not !emitted then
              on_emit (Join_algos.concat_rows prow padding)
          in
          let probe_plan = if build_left then right else left in
          let probe_needed = if build_left then needed_r else needed_l in
          (* Morsel-parallel probe when the probe side is a bare columnar
             scan: serial build, workers probe the shared read-only table
             over scan morsels, output re-assembled in row order and
             replayed into the (serial) downstream consumer. *)
          let par_probe =
            match probe_plan with
            | Physical.Scan { table = ptable; layout = Physical.Col_layout; filter; schema; _ }
              ->
                Some
                  (stage_col_scan_ranges sctx ~table:ptable ~filter
                     ~arity:(Schema.arity schema) ~needed:probe_needed)
            | _ -> None
          in
          let probe_thunk =
            match par_probe with
            | Some staged ->
                fun () ->
                  let n, run = staged () in
                  let workers = Pool.parallelism () in
                  if Pdriver.serial ~workers n then
                    (* Stay streaming: no point materializing the output
                       just to replay it. *)
                    run 0 n (probe_row ~on_emit:consume)
                  else begin
                    let rows =
                      Pdriver.collect ~workers ~n ~dummy:[||] (fun ~lo ~hi ~emit ->
                          run lo hi (probe_row ~on_emit:emit))
                    in
                    Array.iter consume rows
                  end
            | None -> produce sctx probe_plan ~needed:probe_needed (probe_row ~on_emit:consume)
          in
          (* A second, serial staging of the probe pipeline against a
             dispatching sink; only the out-of-core path runs it. *)
          let probe_sink : consume ref = ref ignore in
          let probe_spool_thunk =
            produce sctx probe_plan ~needed:probe_needed (fun row -> !probe_sink row)
          in
          fun () ->
            let gov = !(sctx.gov) in
            if Governor.can_spill gov then begin
              let bsp = Spool.create ~name:"join-input" gov in
              build_sink := Spool.add bsp;
              build_thunk ();
              let psp = Spool.create ~name:"join-input" gov in
              probe_sink := Spool.add psp;
              probe_spool_thunk ();
              let bset = Spool.finish bsp and pset = Spool.finish psp in
              let lset, rset = if build_left then (bset, pset) else (pset, bset) in
              Join_algos.spill_hash_join ~gov ~mode ~keys ~residual:residual_p
                ~build_left ~right_arity ~emit:consume lset rset
            end
            else begin
              build_sink := build_consume;
              Hashtbl.reset table;
              build_thunk ();
              probe_thunk ()
            end
      | Physical.Merge_join | Physical.Block_nl ->
          let lbuf = Vec.create ~dummy:[||] and rbuf = Vec.create ~dummy:[||] in
          let buffer buf row =
            Governor.charge_row !(sctx.gov) row;
            Vec.push buf row
          in
          let lthunk = produce sctx left ~needed:needed_l (buffer lbuf) in
          let rthunk = produce sctx right ~needed:needed_r (buffer rbuf) in
          let residual_p = Option.map (compile_pred sctx) residual in
          fun () ->
            Vec.clear lbuf;
            Vec.clear rbuf;
            lthunk ();
            rthunk ();
            let gov = !(sctx.gov) in
            let out =
              match algo with
              | Physical.Merge_join ->
                  Join_algos.merge_join ~gov ~mode ~right_arity ~keys ~residual:residual_p
                    (Vec.to_array lbuf) (Vec.to_array rbuf)
              | _ ->
                  Join_algos.block_nl_join ~gov ~mode ~right_arity ~pred:residual_p
                    (Vec.to_array lbuf) (Vec.to_array rbuf)
            in
            Vec.iter consume out)
  | Physical.Aggregate { algo; keys; aggs; input; _ } ->
      (* Global aggregate directly over a columnar scan: try the fully
         fused unboxed loop first; it decides per execution (it needs the
         parameter values) and falls back to the general staged path. *)
      let fused_attempt =
        match (algo, keys, input) with
        | Physical.Hash_agg, [],
          Physical.Scan { table; layout = Physical.Col_layout; filter; _ }
          when !enable_scan_agg_fusion
               && List.for_all (fun ((a : Lplan.agg), _) -> not a.Lplan.distinct) aggs ->
            Some (fun () -> fuse_scan_agg sctx ~table ~filter ~aggs () consume)
        | _ -> None
      in
      let general =
      let key_fns = List.map (fun (e, _) -> compile_expr sctx e) keys in
      let specs =
        List.map
          (fun (a, _) ->
            {
              Agg_algos.kind = a.Lplan.kind;
              arg = Option.map (compile_expr sctx) a.Lplan.arg;
              distinct = a.Lplan.distinct;
              out_dtype = a.Lplan.out_dtype;
            })
          aggs
      in
      let needed_in =
        List.fold_left (fun acc (e, _) -> IntSet.union acc (cols_of_expr e)) IntSet.empty keys
      in
      let needed_in =
        List.fold_left
          (fun acc (a, _) ->
            match a.Lplan.arg with
            | Some e -> IntSet.union acc (cols_of_expr e)
            | None -> acc)
          needed_in aggs
      in
      (match algo with
      | Physical.Hash_agg ->
          (* Streaming upsert into the group table: the input pipeline is
             fused with aggregation. *)
          let nspecs = List.length specs in
          let feed_into groups order row =
            let gov = !(sctx.gov) in
            Governor.tick gov;
            let k = List.map (fun f -> f row) key_fns in
            let states =
              match Hashtbl.find_opt groups k with
              | Some s -> s
              | None ->
                  Governor.charge gov (Agg_algos.group_bytes k nspecs);
                  let s = List.map Agg_algos.new_state specs in
                  Hashtbl.add groups k s;
                  Vec.push order k;
                  s
            in
            List.iter2 (fun spec st -> Agg_algos.feed spec st row) specs states
          in
          let emit_result (groups : (Value.t list, Agg_algos.state list) Hashtbl.t)
              order =
            if key_fns = [] && Vec.length order = 0 then
              consume
                (Agg_algos.output_row [] (List.map Agg_algos.new_state specs) specs)
            else
              Vec.iter
                (fun k -> consume (Agg_algos.output_row k (Hashtbl.find groups k) specs))
                order
          in
          (* Morsel-parallel grouped aggregation when the input is a bare
             columnar scan and no aggregate is DISTINCT: each worker
             upserts the morsels it wins into a private hash table, then
             partials merge group-wise ([Agg_algos.merge_state]).  Group
             emission order is first-seen order of the merged table, which
             under parallelism depends on morsel scheduling — unordered,
             as SQL grouping output is. *)
          let par_input =
            match input with
            | Physical.Scan { table; layout = Physical.Col_layout; filter; schema; _ }
              when List.for_all (fun (s : Agg_algos.spec) -> not s.distinct) specs ->
                Some
                  (stage_col_scan_ranges sctx ~table ~filter
                     ~arity:(Schema.arity schema) ~needed:needed_in)
            | _ -> None
          in
          (match par_input with
          | Some staged ->
              fun () ->
                let n, run = staged () in
                let gov = !(sctx.gov) in
                if Governor.can_spill gov then begin
                  (* Each worker feeds a private spillable builder (its
                     spill hook is domain-owned, so workers dump their own
                     partial tables); runs pool at merge and the final
                     merge is key-based. *)
                  let b =
                    Pdriver.fold ~workers:(Pool.parallelism ()) ~n
                      ~init:(fun () ->
                        Agg_algos.create_builder ~gov ~keys:key_fns ~specs ())
                      ~range:(fun b lo hi -> run lo hi (Agg_algos.feed_builder b))
                      ~merge:Agg_algos.merge_builders
                  in
                  Vec.iter consume (Agg_algos.finish_builder b)
                end
                else begin
                  let groups, order =
                    Pdriver.fold ~workers:(Pool.parallelism ()) ~n
                      ~init:(fun () ->
                        ( (Hashtbl.create 64
                            : (Value.t list, Agg_algos.state list) Hashtbl.t),
                          Vec.create ~dummy:([] : Value.t list) ))
                      ~range:(fun (g, o) lo hi -> run lo hi (feed_into g o))
                      ~merge:(Agg_algos.merge_group_tables ~specs)
                  in
                  emit_result groups order
                end
          | None ->
              let groups : (Value.t list, Agg_algos.state list) Hashtbl.t =
                Hashtbl.create 64
              in
              let order = Vec.create ~dummy:[] in
              let agg_sink : consume ref = ref ignore in
              let child =
                produce sctx input ~needed:needed_in (fun row -> !agg_sink row)
              in
              fun () ->
                let gov = !(sctx.gov) in
                if Governor.can_spill gov then begin
                  let b = Agg_algos.create_builder ~gov ~keys:key_fns ~specs () in
                  agg_sink := Agg_algos.feed_builder b;
                  child ();
                  Vec.iter consume (Agg_algos.finish_builder b)
                end
                else begin
                  agg_sink := feed_into groups order;
                  Hashtbl.reset groups;
                  Vec.clear order;
                  child ();
                  emit_result groups order
                end)
      | Physical.Sort_agg ->
          let buf = Vec.create ~dummy:[||] in
          let sink : consume ref = ref ignore in
          let child =
            produce sctx input ~needed:needed_in (fun row -> !sink row)
          in
          fun () ->
            let gov = !(sctx.gov) in
            if Governor.can_spill gov then begin
              let b = Agg_algos.create_builder ~gov ~keys:key_fns ~specs () in
              sink := Agg_algos.feed_builder b;
              child ();
              Vec.iter consume (Agg_algos.finish_builder ~ordered:true b)
            end
            else begin
              sink :=
                (fun row ->
                  Governor.charge_row gov row;
                  Vec.push buf row);
              Vec.clear buf;
              child ();
              Vec.iter consume
                (Agg_algos.sort_agg ~gov ~keys:key_fns ~specs (Vec.to_array buf))
            end)
      in
      (match fused_attempt with
      | None -> general
      | Some attempt ->
          fun () -> (match attempt () with Some run -> run () | None -> general ()))
  | Physical.Window { specs; input; _ } ->
      let in_arity = Schema.arity (Physical.schema_of input) in
      let all = IntSet.of_list (List.init in_arity Fun.id) in
      let wspecs =
        List.map
          (fun ((w : Lplan.wspec), _) ->
            {
              Quill_exec.Window_algos.kind = w.Lplan.wkind;
              arg = Option.map (compile_expr sctx) w.Lplan.warg;
              partition = List.map (compile_expr sctx) w.Lplan.partition;
              order = List.map (fun (e, d) -> (compile_expr sctx e, d)) w.Lplan.worder;
              out_dtype = w.Lplan.w_dtype;
            })
          specs
      in
      let buf = Vec.create ~dummy:[||] in
      let child =
        produce sctx input ~needed:all (fun row ->
            Governor.charge_row !(sctx.gov) row;
            Vec.push buf row)
      in
      fun () ->
        Vec.clear buf;
        child ();
        Array.iter consume
          (Quill_exec.Window_algos.run ~specs:wspecs (Vec.to_array buf))
  | Physical.Sort { keys; input; _ } ->
      let needed_in = IntSet.union needed (IntSet.of_list (List.map fst keys)) in
      let buf = Vec.create ~dummy:[||] in
      let sink : consume ref = ref ignore in
      let child = produce sctx input ~needed:needed_in (fun row -> !sink row) in
      fun () ->
        let gov = !(sctx.gov) in
        if Governor.can_spill gov then begin
          (* Out-of-core: a keyed spool is an external merge sort. *)
          let sp = Spool.create ~keys ~name:"sort" gov in
          sink := Spool.add sp;
          child ();
          Spool.consume (Spool.finish sp) consume
        end
        else begin
          sink :=
            (fun row ->
              Governor.charge_row gov row;
              Vec.push buf row);
          Vec.clear buf;
          child ();
          let rows = Vec.to_array buf in
          Sort_algos.sort_rows keys rows;
          Array.iter consume rows
        end
  | Physical.Top_k { k; offset; keys; input; _ } ->
      let needed_in = IntSet.union needed (IntSet.of_list (List.map fst keys)) in
      let cmp = Sort_algos.row_compare keys in
      let heap = ref (Topk.create ~cmp ~k:(k + offset) ~dummy:[||] ()) in
      let child = produce sctx input ~needed:needed_in (fun row -> Topk.offer !heap row) in
      fun () ->
        heap :=
          Topk.create ~gov:!(sctx.gov) ~bytes:Governor.row_bytes ~keys ~cmp
            ~k:(k + offset) ~dummy:[||] ();
        child ();
        let sorted = Topk.finish !heap in
        for i = offset to Array.length sorted - 1 do
          consume sorted.(i)
        done
  | Physical.Distinct (input, _) ->
      (* Streaming dedup keeps the pipeline fused. *)
      let seen : (Value.t list, unit) Hashtbl.t = Hashtbl.create 256 in
      let child =
        produce sctx input ~needed (fun row ->
            let k = Array.to_list row in
            if not (Hashtbl.mem seen k) then begin
              Hashtbl.add seen k ();
              Governor.charge_row ~overhead:48 !(sctx.gov) row;
              consume row
            end)
      in
      fun () ->
        Hashtbl.reset seen;
        child ()
  | Physical.Limit { n; offset; input; _ } ->
      let emitted = ref 0 and skipped = ref 0 in
      let child =
        produce sctx input ~needed (fun row ->
            if !skipped < offset then incr skipped
            else begin
              (match n with
              | Some n when !emitted >= n -> raise Limit_reached
              | _ -> ());
              incr emitted;
              consume row;
              match n with
              | Some n when !emitted >= n -> raise Limit_reached
              | _ -> ()
            end)
      in
      fun () ->
        emitted := 0;
        skipped := 0;
        (try child () with Limit_reached -> ())

(* Stagings performed and time spent staging, fed to the registry so the
   managed-runtime economics (E5) are observable in production. *)
let m_compilations = Quill_obs.Metrics.counter "quill.codegen.compilations"
let h_compile_seconds = Quill_obs.Metrics.histogram "quill.codegen.seconds"

(** [compile catalog plan] stages [plan] once; the result can be run many
    times with different parameters. *)
let compile ?indexes catalog (plan : Physical.t) : compiled =
  Quill_obs.Trace.with_span ~cat:"compile" "codegen" (fun () ->
      let (f : compiled), dt =
        Quill_util.Timer.time (fun () ->
            let indexes =
              match indexes with
              | Some r -> r
              | None -> Quill_storage.Index.Registry.create ()
            in
            let sctx =
              { catalog; params = ref [||]; indexes; gov = ref Governor.none }
            in
            let out = Vec.create ~dummy:[||] in
            let out_arity = Schema.arity (Physical.schema_of plan) in
            let root =
              produce sctx plan
                ~needed:(IntSet.of_list (List.init out_arity Fun.id))
                (fun row ->
                  Governor.charge_result !(sctx.gov) row;
                  Vec.push out row)
            in
            fun gov params ->
              sctx.params := params;
              sctx.gov := gov;
              Vec.clear out;
              root ();
              (* Hand the caller a fresh vector; [out] is reused across
                 runs. *)
              let result = Vec.create ~dummy:[||] in
              Vec.iter (fun r -> Vec.push result r) out;
              result)
      in
      Quill_obs.Metrics.incr m_compilations;
      Quill_obs.Metrics.observe h_compile_seconds dt;
      f)

(* --- Tiered compilation ------------------------------------------------- *)

(** Which compiler produced a [compiled] value: the copy-and-patch
    stencil tier ({!Stencil_bind}, pre-composed drivers patched with
    per-query constants) or this module's full staging pass. *)
type tier = Tier_stencil | Tier_full

let tier_name = function Tier_stencil -> "stencil" | Tier_full -> "full"

(** [compile_tiered catalog plan] tries the cheap stencil tier first and
    falls back to full staging.  Covered shapes compile orders of
    magnitude faster (E23 measures the ratio), which is what makes
    compilation affordable for one-shot queries. *)
let compile_tiered ?indexes catalog (plan : Physical.t) : compiled * tier =
  match Stencil_bind.bind catalog plan with
  | Some f ->
      (* Stencil drivers are pre-composed and cannot register spill
         hooks; executions under a spill-capable governor lazily fall
         back to the fully staged compile, which can. *)
      let full = lazy (compile ?indexes catalog plan) in
      let dispatch gov params =
        if Governor.can_spill gov then (Lazy.force full) gov params
        else f gov params
      in
      (dispatch, Tier_stencil)
  | None -> (compile ?indexes catalog plan, Tier_full)

(** [run ctx plan] one-shot compile-and-execute.  The fused loops carry no
    per-operator hooks (use the interpreted tiers for operator-level
    feedback), but the root operator's row count and wall time are
    recorded when a profile is attached, so EXPLAIN ANALYZE and the
    differential tests can cross-check any engine. *)
let run (ctx : Quill_exec.Exec_ctx.t) plan =
  let f, _tier =
    compile_tiered ~indexes:ctx.Quill_exec.Exec_ctx.indexes
      ctx.Quill_exec.Exec_ctx.catalog plan
  in
  let gov = ctx.Quill_exec.Exec_ctx.governor in
  match ctx.Quill_exec.Exec_ctx.profile with
  | None -> f gov ctx.Quill_exec.Exec_ctx.params
  | Some p ->
      let rows, dt =
        Quill_util.Timer.time (fun () -> f gov ctx.Quill_exec.Exec_ctx.params)
      in
      Quill_exec.Profile.add p 0 (Vec.length rows);
      Quill_exec.Profile.add_time p 0 dt;
      rows
