(* Unboxed numeric expression compilation over typed columns.

   Thin wrapper over {!Quill_exec.Kernel}, which holds the single
   implementation of unboxed kernel compilation shared with the
   vectorized engine's typed batches.  This module keeps the historical
   whole-relation interface used by scan->aggregate fusion in the
   compiled engine (the "hand-written loop" HyPer generates for queries
   like TPC-H Q6): columns resolve at base offset 0 and evaluators index
   rows absolutely.

   NULL semantics and error behaviour are documented on {!Kernel}: the
   caller guards each row with [valid_fn]; division/modulo by zero raises
   {!Bexpr.Eval_error} like every other tier. *)

module Column = Quill_storage.Column
module Bitset = Quill_util.Bitset
module Bexpr = Quill_plan.Bexpr
module Kernel = Quill_exec.Kernel

(** [valid_fn cols e] returns a per-row test that every column referenced
    by [e] is non-NULL (out-of-range references are ignored, matching the
    binder's defensive history). *)
let valid_fn (cols : Column.t array) (e : Bexpr.t) : int -> bool =
  let refs = List.filter (fun c -> c < Array.length cols) (Bexpr.cols e) in
  match List.map (fun c -> Column.validity cols.(c)) refs with
  | [] -> fun _ -> true
  | [ v ] -> fun i -> Bitset.get v i
  | [ v1; v2 ] -> fun i -> Bitset.get v1 i && Bitset.get v2 i
  | vs -> fun i -> List.for_all (fun v -> Bitset.get v i) vs

(** [compile_int cols params e] compiles an INT/DATE-typed expression to an
    unboxed evaluator; [None] when the shape is unsupported. *)
let compile_int (cols : Column.t array) params (e : Bexpr.t) : (int -> int) option =
  Kernel.compile_int (Kernel.of_columns cols params) e

(** [compile_float cols params e] compiles a numeric expression to an
    unboxed float evaluator, widening int inputs; [None] when the shape is
    unsupported. *)
let compile_float (cols : Column.t array) params (e : Bexpr.t) : (int -> float) option =
  Kernel.compile_float (Kernel.of_columns cols params) e
