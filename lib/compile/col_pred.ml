(* Unboxed predicate compilation over typed columns.

   Thin wrapper over {!Quill_exec.Kernel.compile_pred}, the shared
   implementation also behind the vectorized engine's typed batches.  For
   the supported shapes — comparisons (column vs constant, or any two
   numeric kernel-compilable expressions of the same type), conjunctions,
   disjunctions, constant IN lists, LIKE over strings, IS NULL — the
   result is a [int -> bool] test that reads the typed arrays directly,
   with no value boxing at all.  Anything else returns [None] and the
   caller falls back to the closure-compiled row predicate.

   Soundness under 3-valued logic: each compiled test answers "is the
   predicate definitely TRUE for row i" (NULL maps to false).  AND/OR of
   is-true tests is exact for is-true of AND/OR, so composition is sound;
   NOT is not compositional in this encoding and is rejected. *)

module Column = Quill_storage.Column
module Bexpr = Quill_plan.Bexpr
module Kernel = Quill_exec.Kernel

(** [compile cols params e] attempts to build an unboxed is-true test for
    predicate [e] over the typed columns [cols]. *)
let compile (cols : Column.t array) params (e : Bexpr.t) : (int -> bool) option =
  Kernel.compile_pred (Kernel.of_columns cols params) e
