(* The stencil library: pre-composed operator drivers for copy-and-patch
   style compilation, ported from machine-code stencils to closure
   staging.

   Full codegen ({!Codegen}) re-stages a network of closures from the
   physical plan on every compile: a recursive plan walk, per-expression
   closure building, needed-column analysis.  The stencils here are that
   network's common shapes composed ONCE, at engine startup: each stencil
   is a driver loop abstracted over a small "patch" record of per-query
   constants — the table, the predicate and projection expressions, the
   aggregate descriptors, the join key positions.  [warm] publishes the
   drivers in a shape-key registry; per-query "compilation" for a covered
   shape is then stencil selection plus patching ({!Stencil_bind}) — no
   plan walk, no closure-network construction.

   Execution semantics deliberately mirror full codegen, which is what
   the differential fuzz suite (test_stencil) locks down:

   - scans evaluate qualifying predicates through the same unboxed kernel
     compiler ({!Col_pred}), re-specialized per execution with parameter
     values in hand, and fall back to a staged row predicate — staged
     lazily on first use and memoized in the patch, which is sound
     because {!Expr_compile} closures take the parameter vector per call;
   - global aggregates run the same fused accumulator loops
     ({!Agg_fuse}) morsel-parallel, degrading to the grouped machinery
     exactly like codegen's general path;
   - grouped aggregation and the hash-join probe are morsel-parallel over
     the same {!Quill_parallel} substrate, with the same serial
     small-input degradation;
   - governor ticks, row charges and limit short-circuits match the
     staged loops operator for operator. *)

module Value = Quill_storage.Value
module Table = Quill_storage.Table
module Column = Quill_storage.Column
module Bexpr = Quill_plan.Bexpr
module Lplan = Quill_plan.Lplan
module Governor = Quill_exec.Governor
module Agg_algos = Quill_exec.Agg_algos
module Join_algos = Quill_exec.Join_algos
module Pool = Quill_parallel.Pool
module Pdriver = Quill_parallel.Driver
module Vec = Quill_util.Vec

exception Limit_reached

type compiled = Governor.t -> Value.t array -> Value.t array Vec.t
(** Same calling convention as {!Codegen.compiled}: [run gov params]
    executes the patched stencil under resource governor [gov]. *)

(* Row-fallback evaluators stage lazily on first use and memoize in the
   patch; a benign race can stage twice, never observe a half-built
   closure (the ref holds either [None] or a complete closure). *)
type 'a cell = 'a option ref

let cell () : 'a cell = ref None

let force (c : 'a cell) stage =
  match !c with
  | Some v -> v
  | None ->
      let v = stage () in
      c := Some v;
      v

type row_pred = Value.t array -> Value.t array -> bool
type row_fn = Value.t array -> Value.t array -> Value.t

(* Needed-column analysis — the same set codegen's scan staging computes,
   but here it runs at FIRST EXECUTION and memoizes in the patch, not at
   bind time: binding must stay free of expression walks to keep the
   stencil tier's compile cost flat in query complexity. *)
let cols_opt = function None -> [] | Some e -> Bexpr.cols e

let needed_cols ~arity ~filter reads =
  List.sort_uniq compare
    (List.filter (fun c -> c >= 0 && c < arity) (reads @ cols_opt filter))

let all_cols arity = List.init arity Fun.id

(* --- Patch records ------------------------------------------------------ *)

(* A patch holds only per-query constants (plus the lazy fallback cells):
   filling one is a handful of allocations regardless of table size, and
   that is the entire per-query compile cost of the stencil tier. *)

type scan_patch = {
  sc_table : Table.t;
  sc_filter : Bexpr.t option;
  sc_pred_cell : row_pred cell;
  sc_project : Bexpr.t array option;  (** [None]: identity over all columns *)
  sc_fns_cell : row_fn array cell;
  sc_needed_cell : int list cell;  (** columns fetched into the staging row *)
  sc_arity : int;
  sc_limit : int option;
  sc_offset : int;
}

type group_patch = {
  gr_table : Table.t;
  gr_filter : Bexpr.t option;
  gr_pred_cell : row_pred cell;
  gr_needed_cell : int list cell;
  gr_arity : int;
  gr_keys : Bexpr.t list;  (** [] for a global aggregate *)
  gr_key_cell : row_fn list cell;
  gr_aggs : (Lplan.agg * string) list;
  gr_arg_cell : row_fn option array cell;
  gr_project : Bexpr.t array option;
      (** over the aggregate's output row (the planner wraps aggregates
          in a renaming projection) *)
  gr_fns_cell : row_fn array cell;
}

type join_patch = {
  jn_build : Table.t;
  jn_build_filter : Bexpr.t option;
  jn_build_pred_cell : row_pred cell;
  jn_build_arity : int;
  jn_build_keys : int list;  (** key positions in the build-side row *)
  jn_probe : Table.t;
  jn_probe_filter : Bexpr.t option;
  jn_probe_pred_cell : row_pred cell;
  jn_probe_arity : int;
  jn_needed_cell : (int list * int list) cell;  (** (build, probe) needed *)
  jn_probe_keys : int list;
  jn_build_left : bool;  (** build side is the plan's left input *)
  jn_residual : Bexpr.t option;  (** over the concatenated row *)
  jn_res_cell : row_pred cell;
  jn_project : Bexpr.t array option;
  jn_fns_cell : row_fn array cell;
}

type patch =
  | P_scan of scan_patch
  | P_group of group_patch  (** hash aggregate, global when keys = [] *)
  | P_join of join_patch

(* --- Shared loop pieces ------------------------------------------------- *)

let staged_pred c f = force c (fun () -> Expr_compile.compile_pred f)
let staged_fns c items = force c (fun () -> Array.map Expr_compile.compile items)

(* Per-execution scan predicate: the unboxed kernel when the shape and
   the bound parameters admit it (same attempt codegen makes per
   execution), otherwise the memoized staged row predicate. *)
type scan_pred =
  | Pred_none
  | Pred_fast of (int -> bool)
  | Pred_row of (Value.t array -> bool)

let scan_pred ~cols ~params ~cell = function
  | None -> Pred_none
  | Some f -> (
      match Col_pred.compile cols params f with
      | Some p -> Pred_fast p
      | None ->
          let p = staged_pred cell f in
          Pred_row (fun row -> p params row))

(* [scan_range ~gov ~cols ~needed ~arity ~pred lo hi consume] streams the
   qualifying rows of [lo, hi) in ascending order, fetching only [needed]
   columns — the stencil twin of codegen's [stage_col_scan_ranges] body.
   Reads only shared immutable state, so disjoint ranges can run on
   different domains. *)
let scan_range ~gov ~cols ~needed ~arity ~pred lo hi consume =
  let build_row i =
    let row = Array.make arity Value.Null in
    List.iter (fun c -> row.(c) <- Column.get (Array.unsafe_get cols c) i) needed;
    row
  in
  match pred with
  | Pred_fast p ->
      for i = lo to hi - 1 do
        Governor.tick gov;
        if p i then consume (build_row i)
      done
  | Pred_row p ->
      for i = lo to hi - 1 do
        Governor.tick gov;
        let row = build_row i in
        if p row then consume row
      done
  | Pred_none ->
      for i = lo to hi - 1 do
        Governor.tick gov;
        consume (build_row i)
      done

(* --- Stencil drivers ---------------------------------------------------- *)

(* Scan with fused predicate, optional projection, optional LIMIT/OFFSET.
   Serial, like codegen's staged scan pipeline. *)
let scan_stencil (p : scan_patch) : compiled =
 fun gov params ->
  let cols = Table.columnar p.sc_table in
  let n = Table.row_count p.sc_table in
  let pred = scan_pred ~cols ~params ~cell:p.sc_pred_cell p.sc_filter in
  let needed =
    force p.sc_needed_cell (fun () ->
        match p.sc_project with
        | None -> all_cols p.sc_arity
        | Some items ->
            needed_cols ~arity:p.sc_arity ~filter:p.sc_filter
              (List.concat_map Bexpr.cols (Array.to_list items)))
  in
  let fns = Option.map (staged_fns p.sc_fns_cell) p.sc_project in
  let out = Vec.create ~dummy:[||] in
  let emitted = ref 0 and skipped = ref 0 in
  let emit row =
    if !skipped < p.sc_offset then incr skipped
    else begin
      (match p.sc_limit with
      | Some k when !emitted >= k -> raise Limit_reached
      | _ -> ());
      incr emitted;
      Governor.charge_row gov row;
      Vec.push out row;
      match p.sc_limit with
      | Some k when !emitted >= k -> raise Limit_reached
      | _ -> ()
    end
  in
  let consume =
    match fns with
    | None -> emit
    | Some fns ->
        let m = Array.length fns in
        fun row ->
          let o = Array.make m Value.Null in
          for j = 0 to m - 1 do
            o.(j) <- (Array.unsafe_get fns j) params row
          done;
          emit o
  in
  (try scan_range ~gov ~cols ~needed ~arity:p.sc_arity ~pred 0 n consume
   with Limit_reached -> ());
  out

(* Hash aggregate directly over a columnar scan.  Global aggregates first
   try the fused unboxed accumulator loop (decided per execution, exactly
   like codegen's scan->agg fusion); the general path is the
   morsel-parallel grouped machinery. *)
let agg_stencil (p : group_patch) : compiled =
 fun gov params ->
  let cols = Table.columnar p.gr_table in
  let n = Table.row_count p.gr_table in
  let out = Vec.create ~dummy:[||] in
  let push row =
    Governor.charge_row gov row;
    Vec.push out row
  in
  let consume =
    match Option.map (staged_fns p.gr_fns_cell) p.gr_project with
    | None -> push
    | Some fns ->
        let m = Array.length fns in
        fun row ->
          let o = Array.make m Value.Null in
          for j = 0 to m - 1 do
            o.(j) <- (Array.unsafe_get fns j) params row
          done;
          push o
  in
  let fused =
    if p.gr_keys <> [] then None
    else
      match
        match p.gr_filter with
        | None -> Some (fun _ -> true)
        | Some f -> Col_pred.compile cols params f
      with
      | None -> None
      | Some pred ->
          let steps =
            List.map (fun (a, _) -> Agg_fuse.mk_step cols params a) p.gr_aggs
          in
          if List.exists Option.is_none steps then None
          else begin
            let steps = Array.of_list (List.map Option.get steps) in
            let nsteps = Array.length steps in
            let run_range accs lo hi =
              for i = lo to hi - 1 do
                Governor.tick gov;
                if pred i then
                  for j = 0 to nsteps - 1 do
                    steps.(j).Agg_fuse.step accs.(j) i
                  done
              done
            in
            Some
              (fun () ->
                let accs =
                  Pdriver.fold ~workers:(Pool.parallelism ()) ~n
                    ~init:(fun () -> Array.init nsteps (fun _ -> Agg_fuse.new_acc ()))
                    ~range:run_range
                    ~merge:(fun dst src ->
                      Array.iteri (fun j acc -> steps.(j).Agg_fuse.merge dst.(j) acc) src)
                in
                consume (Array.mapi (fun j acc -> steps.(j).Agg_fuse.finish acc) accs))
          end
  in
  let general () =
    let pred = scan_pred ~cols ~params ~cell:p.gr_pred_cell p.gr_filter in
    let needed =
      force p.gr_needed_cell (fun () ->
          needed_cols ~arity:p.gr_arity ~filter:p.gr_filter
            (List.concat_map Bexpr.cols p.gr_keys
            @ List.concat_map
                (fun ((a : Lplan.agg), _) -> cols_opt a.Lplan.arg)
                p.gr_aggs))
    in
    let key_fns =
      force p.gr_key_cell (fun () -> List.map Expr_compile.compile p.gr_keys)
    in
    let key_fns = List.map (fun f -> fun row -> f params row) key_fns in
    let arg_fns =
      force p.gr_arg_cell (fun () ->
          Array.of_list
            (List.map
               (fun ((a : Lplan.agg), _) -> Option.map Expr_compile.compile a.Lplan.arg)
               p.gr_aggs))
    in
    let specs =
      List.mapi
        (fun j ((a : Lplan.agg), _) ->
          {
            Agg_algos.kind = a.Lplan.kind;
            arg = Option.map (fun fn -> fun row -> fn params row) arg_fns.(j);
            distinct = a.Lplan.distinct;
            out_dtype = a.Lplan.out_dtype;
          })
        p.gr_aggs
    in
    let nspecs = List.length specs in
    let feed_into groups order row =
      Governor.tick gov;
      let k = List.map (fun f -> f row) key_fns in
      let states =
        match Hashtbl.find_opt groups k with
        | Some s -> s
        | None ->
            Governor.charge gov (Agg_algos.group_bytes k nspecs);
            let s = List.map Agg_algos.new_state specs in
            Hashtbl.add groups k s;
            Vec.push order k;
            s
      in
      List.iter2 (fun spec st -> Agg_algos.feed spec st row) specs states
    in
    let groups, order =
      Pdriver.fold ~workers:(Pool.parallelism ()) ~n
        ~init:(fun () ->
          ( (Hashtbl.create 64 : (Value.t list, Agg_algos.state list) Hashtbl.t),
            Vec.create ~dummy:([] : Value.t list) ))
        ~range:(fun (g, o) lo hi ->
          scan_range ~gov ~cols ~needed ~arity:p.gr_arity ~pred lo hi
            (feed_into g o))
        ~merge:(Agg_algos.merge_group_tables ~specs)
    in
    if p.gr_keys = [] && Vec.length order = 0 then
      consume (Agg_algos.output_row [] (List.map Agg_algos.new_state specs) specs)
    else
      Vec.iter
        (fun k -> consume (Agg_algos.output_row k (Hashtbl.find groups k) specs))
        order
  in
  (match fused with
  | Some run -> run ()
  | None -> general ());
  out

(* Inner hash join of two columnar scans: serial build into a shared
   read-only table, morsel-parallel probe with output re-assembled in row
   order (the same shape codegen stages for bare-scan probe sides). *)
let join_stencil (p : join_patch) : compiled =
 fun gov params ->
  let bcols = Table.columnar p.jn_build in
  let bn = Table.row_count p.jn_build in
  let pcols = Table.columnar p.jn_probe in
  let pn = Table.row_count p.jn_probe in
  let bpred = scan_pred ~cols:bcols ~params ~cell:p.jn_build_pred_cell p.jn_build_filter in
  let ppred = scan_pred ~cols:pcols ~params ~cell:p.jn_probe_pred_cell p.jn_probe_filter in
  let residual_p =
    Option.map
      (fun f ->
        let g = staged_pred p.jn_res_cell f in
        fun row -> g params row)
      p.jn_residual
  in
  let fns = Option.map (staged_fns p.jn_fns_cell) p.jn_project in
  let build_needed, probe_needed =
    force p.jn_needed_cell (fun () ->
        let ba = p.jn_build_arity and pa = p.jn_probe_arity in
        let la = if p.jn_build_left then ba else pa in
        let ra = ba + pa - la in
        let out_reads =
          match p.jn_project with
          | None -> all_cols (ba + pa)
          | Some items -> List.concat_map Bexpr.cols (Array.to_list items)
        in
        (* Combined-row positions of the key columns. *)
        let key_reads =
          if p.jn_build_left then
            p.jn_build_keys @ List.map (fun c -> c + la) p.jn_probe_keys
          else p.jn_probe_keys @ List.map (fun c -> c + la) p.jn_build_keys
        in
        let all = out_reads @ cols_opt p.jn_residual @ key_reads in
        let reads_l = List.filter (fun c -> c < la) all in
        let reads_r =
          List.filter_map (fun c -> if c >= la then Some (c - la) else None) all
        in
        let lf, rf =
          if p.jn_build_left then (p.jn_build_filter, p.jn_probe_filter)
          else (p.jn_probe_filter, p.jn_build_filter)
        in
        let lneeded = needed_cols ~arity:la ~filter:lf reads_l in
        let rneeded = needed_cols ~arity:ra ~filter:rf reads_r in
        if p.jn_build_left then (lneeded, rneeded) else (rneeded, lneeded))
  in
  let table : (int, (Value.t list * Value.t array) list ref) Hashtbl.t =
    Hashtbl.create 1024
  in
  scan_range ~gov ~cols:bcols ~needed:build_needed ~arity:p.jn_build_arity
    ~pred:bpred 0 bn (fun row ->
      match Join_algos.key_of p.jn_build_keys row with
      | None -> ()
      | Some k ->
          Governor.charge_row ~overhead:48 gov row;
          let h = Join_algos.hash_key k in
          (match Hashtbl.find_opt table h with
          | Some l -> l := (k, row) :: !l
          | None -> Hashtbl.add table h (ref [ (k, row) ])));
  let out = Vec.create ~dummy:[||] in
  let consume_out =
    let push row =
      Governor.charge_row gov row;
      Vec.push out row
    in
    match fns with
    | None -> push
    | Some fns ->
        let m = Array.length fns in
        fun row ->
          let o = Array.make m Value.Null in
          for j = 0 to m - 1 do
            o.(j) <- (Array.unsafe_get fns j) params row
          done;
          push o
  in
  (* Inner join: probe rows without a match emit nothing, so the probe
     only reads the shared table and can run over disjoint morsels. *)
  let probe_row ~(on_emit : Value.t array -> unit) prow =
    match Join_algos.key_of p.jn_probe_keys prow with
    | None -> ()
    | Some k -> (
        match Hashtbl.find_opt table (Join_algos.hash_key k) with
        | None -> ()
        | Some bucket ->
            List.iter
              (fun (bk, brow) ->
                if Join_algos.keys_equal bk k then begin
                  let row =
                    if p.jn_build_left then Join_algos.concat_rows brow prow
                    else Join_algos.concat_rows prow brow
                  in
                  match residual_p with
                  | Some rp when not (rp row) -> ()
                  | _ -> on_emit row
                end)
              !bucket)
  in
  let workers = Pool.parallelism () in
  let run lo hi emit =
    scan_range ~gov ~cols:pcols ~needed:probe_needed ~arity:p.jn_probe_arity
      ~pred:ppred lo hi (probe_row ~on_emit:emit)
  in
  if Pdriver.serial ~workers pn then run 0 pn consume_out
  else begin
    let rows =
      Pdriver.collect ~workers ~n:pn ~dummy:[||] (fun ~lo ~hi ~emit -> run lo hi emit)
    in
    Array.iter consume_out rows
  end;
  out

(* --- The shape-key registry --------------------------------------------- *)

(* Shape keys name the pre-composed drivers; the binder matches a plan to
   a key, fills the patch, and applies whatever the registry holds.  The
   gauge makes the warmed library size observable. *)

let shape_scan = "scan-filter-project"
let shape_agg_global = "scan-agg-global"
let shape_agg_grouped = "scan-agg-grouped"
let shape_join = "hash-join-probe"

let registry : (string, patch -> compiled) Hashtbl.t = Hashtbl.create 8
let g_registry = Quill_obs.Metrics.gauge "quill.codegen.stencil_registry"
let warm_mutex = Mutex.create ()

let wrong_patch key _ = invalid_arg ("stencil " ^ key ^ ": patch kind mismatch")

(* Set only after the registry is fully populated, so the binder's
   per-bind defensive [warm] call is a plain load on the hot path.  A
   stale [false] read just falls through to the mutex. *)
let warmed = Atomic.make false

(** [warm ()] pre-composes the stencil library: idempotent, called at
    engine startup ({!Quill.Db.create}) and defensively by the binder. *)
let warm () =
  if Atomic.get warmed then ()
  else
    Mutex.protect warm_mutex (fun () ->
      if Hashtbl.length registry = 0 then begin
        Hashtbl.replace registry shape_scan (function
          | P_scan p -> scan_stencil p
          | _ -> wrong_patch shape_scan ());
        Hashtbl.replace registry shape_agg_global (function
          | P_group p -> agg_stencil p
          | _ -> wrong_patch shape_agg_global ());
        Hashtbl.replace registry shape_agg_grouped (function
          | P_group p -> agg_stencil p
          | _ -> wrong_patch shape_agg_grouped ());
        Hashtbl.replace registry shape_join (function
          | P_join p -> join_stencil p
          | _ -> wrong_patch shape_join ());
        Quill_obs.Metrics.set g_registry (Hashtbl.length registry)
      end;
      Atomic.set warmed true)

(** [find key] looks a driver up by shape key. *)
let find key = Hashtbl.find_opt registry key

(** [shapes ()] lists the registered shape keys, sorted. *)
let shapes () =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) registry [])
