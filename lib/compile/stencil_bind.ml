(* The stencil binder: match a physical plan against the pre-composed
   stencil library ({!Stencil}) and fill a patch.

   This is the cheap half of the copy-and-patch split.  [bind] performs
   no expression compilation and no closure staging: it pattern-matches
   the plan's shape, computes the needed-column lists, and fills a patch
   record with per-query constants — the raw [Bexpr] trees travel in the
   patch and are evaluated by the stencil drivers through the same
   kernels full codegen uses (specialized per execution, with the staged
   row fallbacks memoized lazily in the patch cells).  A covered shape
   therefore compiles in the time it takes to walk the top of the plan
   and allocate one record; everything else misses to full codegen.

   Coverage policy (deliberately conservative — a miss is never wrong,
   only slower to compile):
   - expressions must be [coverable]: no UDF calls (a [Call] closes over
     arbitrary user state) and no subqueries (their fill cells are
     managed by the Db layer per execution);
   - scans must be bare columnar scans ([Col_layout]);
   - joins must be inner hash joins over two bare columnar scans;
   - aggregates must be hash aggregates with no DISTINCT (the grouped
     stencil is morsel-parallel, and DISTINCT state cannot merge). *)

module Catalog = Quill_storage.Catalog
module Schema = Quill_storage.Schema
module Bexpr = Quill_plan.Bexpr
module Lplan = Quill_plan.Lplan
module Physical = Quill_optimizer.Physical
module Metrics = Quill_obs.Metrics
module Trace = Quill_obs.Trace
module Timer = Quill_util.Timer

(** [coverable e] holds when every node of [e] is one the stencil
    drivers' evaluators handle without Db-layer cooperation. *)
let rec coverable (e : Bexpr.t) =
  match e.Bexpr.node with
  | Bexpr.Lit _ | Bexpr.Col _ | Bexpr.Param _ -> true
  | Bexpr.Neg a | Bexpr.Not a | Bexpr.Cast (a, _) | Bexpr.Is_null (_, a) ->
      coverable a
  | Bexpr.Like (a, _) -> coverable a
  | Bexpr.Arith (_, a, b) | Bexpr.Cmp (_, a, b) | Bexpr.And (a, b) | Bexpr.Or (a, b)
    ->
      coverable a && coverable b
  | Bexpr.In_list (a, es) -> coverable a && List.for_all coverable es
  | Bexpr.Case (whens, els) ->
      List.for_all (fun (c, v) -> coverable c && coverable v) whens
      && (match els with Some e -> coverable e | None -> true)
  | Bexpr.Call _ | Bexpr.Subquery _ -> false

let coverable_opt = function None -> true | Some e -> coverable e

(* Patch fills below carry the raw expression trees; needed-column
   analysis is deferred into the stencil drivers (memoized on first
   execution) so bind-time work stays flat in query complexity — the
   only expression walks a bind performs are the [coverable] checks. *)

let scan_patch catalog ~table ~schema ~filter ~project ~limit ~offset :
    Stencil.patch =
  Stencil.P_scan
    {
      sc_table = Catalog.find_exn catalog table;
      sc_filter = filter;
      sc_pred_cell = Stencil.cell ();
      sc_project = Option.map (fun items -> Array.of_list (List.map fst items)) project;
      sc_fns_cell = Stencil.cell ();
      sc_needed_cell = Stencil.cell ();
      sc_arity = Schema.arity schema;
      sc_limit = limit;
      sc_offset = offset;
    }

let group_patch catalog ~table ~schema ~filter ~keys ~aggs ~project : Stencil.patch =
  Stencil.P_group
    {
      gr_table = Catalog.find_exn catalog table;
      gr_filter = filter;
      gr_pred_cell = Stencil.cell ();
      gr_needed_cell = Stencil.cell ();
      gr_arity = Schema.arity schema;
      gr_keys = List.map fst keys;
      gr_key_cell = Stencil.cell ();
      gr_aggs = aggs;
      gr_arg_cell = Stencil.cell ();
      gr_project = Option.map (fun items -> Array.of_list (List.map fst items)) project;
      gr_fns_cell = Stencil.cell ();
    }

(* The join reorderer inserts a pure column-permutation projection to
   restore column order; [Rewrite.merge_perm_projects] normally folds it
   away at plan time, but [collapse_projects] keeps the binder correct
   for plans built outside the standard pipeline.  When the plan is not
   a nested projection this is a single fall-through match. *)
let perm_of items =
  let col_of ((e : Bexpr.t), _) =
    match e.Bexpr.node with Bexpr.Col c -> Some c | _ -> None
  in
  if List.for_all (fun it -> col_of it <> None) items then
    Some (Array.of_list (List.filter_map col_of items))
  else None

let rec collapse_projects (plan : Physical.t) : Physical.t =
  match plan with
  | Physical.Project (outer, Physical.Project (inner, x, _), info) -> (
      match perm_of inner with
      | Some perm
        when List.for_all
               (fun (e, _) ->
                 List.for_all
                   (fun c -> c >= 0 && c < Array.length perm)
                   (Bexpr.cols e))
               outer ->
          collapse_projects
            (Physical.Project
               ( List.map (fun (e, n) -> (Bexpr.remap (fun i -> perm.(i)) e, n)) outer,
                 x,
                 info ))
      | _ -> plan)
  | _ -> plan

(* [match_plan catalog plan] names the stencil shape covering [plan] and
   fills its patch, or [None] when only full codegen applies. *)
let match_plan catalog (plan : Physical.t) : (string * Stencil.patch) option =
  (* LIMIT/OFFSET rides on the scan stencil; peel it first. *)
  let limit, offset, plan =
    match plan with
    | Physical.Limit { n; offset; input; _ } -> (n, offset, input)
    | p -> (None, 0, p)
  in
  let plan = collapse_projects plan in
  let bare_limit = limit = None && offset = 0 in
  match plan with
  | Physical.Scan { table; schema; layout = Physical.Col_layout; filter; _ }
    when coverable_opt filter ->
      Some
        ( Stencil.shape_scan,
          scan_patch catalog ~table ~schema ~filter ~project:None ~limit ~offset )
  | Physical.Project
      ( items,
        Physical.Scan { table; schema; layout = Physical.Col_layout; filter; _ },
        _ )
    when coverable_opt filter && List.for_all (fun (e, _) -> coverable e) items ->
      Some
        ( Stencil.shape_scan,
          scan_patch catalog ~table ~schema ~filter ~project:(Some items) ~limit
            ~offset )
  | ( Physical.Aggregate _
    | Physical.Project (_, Physical.Aggregate _, _) )
    when bare_limit -> (
      (* The planner wraps aggregates in a renaming projection; cover the
         wrapped form as the same shape. *)
      let project, agg =
        match plan with
        | Physical.Project (items, a, _) -> (Some items, a)
        | a -> (None, a)
      in
      match agg with
      | Physical.Aggregate
          {
            algo = Physical.Hash_agg;
            keys;
            aggs;
            input =
              Physical.Scan { table; schema; layout = Physical.Col_layout; filter; _ };
            _;
          }
        when coverable_opt filter
             && List.for_all (fun (e, _) -> coverable e) keys
             && List.for_all
                  (fun ((a : Lplan.agg), _) ->
                    (not a.Lplan.distinct) && coverable_opt a.Lplan.arg)
                  aggs
             && (match project with
                | None -> true
                | Some items -> List.for_all (fun (e, _) -> coverable e) items) ->
          let key =
            if keys = [] then Stencil.shape_agg_global else Stencil.shape_agg_grouped
          in
          Some (key, group_patch catalog ~table ~schema ~filter ~keys ~aggs ~project)
      | _ -> None)
  | (Physical.Join _ | Physical.Project (_, Physical.Join _, _)) when bare_limit -> (
      let project, join =
        match plan with
        | Physical.Project (items, j, _) -> (Some items, j)
        | j -> (None, j)
      in
      match join with
      | Physical.Join
          {
            algo = Physical.Hash_join;
            kind = Lplan.Inner;
            keys;
            residual;
            build_left;
            left =
              Physical.Scan
                { table = lt; schema = ls; layout = Physical.Col_layout; filter = lf; _ };
            right =
              Physical.Scan
                { table = rt; schema = rs; layout = Physical.Col_layout; filter = rf; _ };
            _;
          }
        when keys <> [] && coverable_opt residual && coverable_opt lf
             && coverable_opt rf
             && (match project with
                | None -> true
                | Some items -> List.for_all (fun (e, _) -> coverable e) items) ->
          let lt = Catalog.find_exn catalog lt and rt = Catalog.find_exn catalog rt in
          let la = Schema.arity ls and ra = Schema.arity rs in
          let bkeys = List.map (if build_left then fst else snd) keys in
          let pkeys = List.map (if build_left then snd else fst) keys in
          let (jb, jbf, jba), (jp, jpf, jpa) =
            if build_left then ((lt, lf, la), (rt, rf, ra))
            else ((rt, rf, ra), (lt, lf, la))
          in
          Some
            ( Stencil.shape_join,
              Stencil.P_join
                {
                  jn_build = jb;
                  jn_build_filter = jbf;
                  jn_build_pred_cell = Stencil.cell ();
                  jn_build_arity = jba;
                  jn_build_keys = bkeys;
                  jn_probe = jp;
                  jn_probe_filter = jpf;
                  jn_probe_pred_cell = Stencil.cell ();
                  jn_probe_arity = jpa;
                  jn_probe_keys = pkeys;
                  jn_needed_cell = Stencil.cell ();
                  jn_build_left = build_left;
                  jn_residual = residual;
                  jn_res_cell = Stencil.cell ();
                  jn_project =
                    Option.map (fun items -> Array.of_list (List.map fst items)) project;
                  jn_fns_cell = Stencil.cell ();
                } )
      | _ -> None)
  | _ -> None

(** [shape_of catalog plan] names the stencil shape that would serve
    [plan], for EXPLAIN output.  No metrics are touched. *)
let shape_of catalog plan =
  Stencil.warm ();
  Option.map fst (match_plan catalog plan)

let m_hits = Metrics.counter "quill.codegen.stencil_hits"
let m_misses = Metrics.counter "quill.codegen.stencil_misses"
let h_bind_seconds = Metrics.histogram "quill.codegen.stencil_bind_seconds"

(** [bind catalog plan] compiles [plan] through the stencil tier: shape
    match + patch fill + registry application.  [None] is a miss — the
    caller falls back to full codegen. *)
let bind catalog (plan : Physical.t) : Stencil.compiled option =
  Stencil.warm ();
  let result, dt =
    Timer.time (fun () ->
        match match_plan catalog plan with
        | None -> None
        | Some (key, patch) -> (
            match Stencil.find key with
            | Some driver -> Some (key, driver patch)
            | None -> None))
  in
  match result with
  | Some (key, compiled) ->
      Metrics.incr m_hits;
      Metrics.observe h_bind_seconds dt;
      Trace.instant ~cat:"compile" ~args:[ ("shape", key) ] "stencil-bind";
      Some compiled
  | None ->
      Metrics.incr m_misses;
      Trace.instant ~cat:"compile" "stencil-miss";
      None
