(* The Quill public API.

   A [Db.t] bundles the catalog, statistics, UDF registry, plan cache and
   feedback store.  [query] runs one statement through the full pipeline
   (parse -> bind -> rewrite -> reorder -> pick -> execute) on a chosen
   engine; [query_adaptive] adds the managed-runtime behaviours: plan
   caching, profile-driven re-optimization and tiered compilation. *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema
module Table = Quill_storage.Table
module Catalog = Quill_storage.Catalog
module Ast = Quill_sql.Ast
module Parser = Quill_sql.Parser
module Binder = Quill_plan.Binder
module Udf = Quill_plan.Udf
module Lplan = Quill_plan.Lplan
module Table_stats = Quill_stats.Table_stats
module Card = Quill_optimizer.Card
module Picker = Quill_optimizer.Picker
module Physical = Quill_optimizer.Physical
module Exec_ctx = Quill_exec.Exec_ctx
module Profile = Quill_exec.Profile
module Codegen = Quill_compile.Codegen
module Feedback = Quill_adaptive.Feedback
module Plan_cache = Quill_adaptive.Plan_cache
module Tiering = Quill_adaptive.Tiering
module Trace = Quill_obs.Trace
module Metrics = Quill_obs.Metrics
module Governor = Quill_exec.Governor

exception Error of string

type abort_reason = Governor.abort_reason =
  | Timeout
  | Cancelled
  | Resource_exhausted

exception Aborted of abort_reason
(** Raised when the resource governor stops a query: its deadline passed,
    {!cancel} was called, or it exceeded its memory budget.  The session
    stays usable; the next statement runs normally. *)

let abort_reason_name = Governor.reason_name

(* Statements executed and end-to-end SELECT latency, fed to the
   process-wide registry. *)
let m_queries = Metrics.counter "quill.db.queries"
let h_query_seconds = Metrics.histogram "quill.db.query_seconds"

type engine = Volcano | Vectorized | Compiled

let engine_name = function
  | Volcano -> "volcano"
  | Vectorized -> "vectorized"
  | Compiled -> "compiled"

type t = {
  catalog : Catalog.t;
  udfs : Udf.t;
  registry : Table_stats.Registry.reg;
  indexes : Quill_storage.Index.Registry.t;
  feedback : Feedback.t;
  cache : Plan_cache.t;
  mutable engine : engine;  (** default engine for [query] *)
  mutable policy : Tiering.policy;  (** tier policy for [query_adaptive] *)
  mutable options : Picker.options;
  mutable timeout_ms : int option;  (** session default deadline *)
  mutable budget_bytes : int option;  (** session default memory budget *)
  cancel : bool Atomic.t;  (** set by {!cancel}, consumed by the governor *)
}

type result =
  | Rows of Table.t
  | Affected of int
  | Text of string

(** [create ()] returns a fresh database with built-in scalar functions,
    the compiled engine as default and the standard tiering policy. *)
let create () =
  {
    catalog = Catalog.create ();
    udfs = Udf.builtins ();
    registry = Table_stats.Registry.create ();
    indexes = Quill_storage.Index.Registry.create ();
    feedback = Feedback.create ();
    cache = Plan_cache.create ();
    engine = Compiled;
    policy = Tiering.Tiered Tiering.default_hot_threshold;
    (* Cost the plans for whatever parallelism the session starts with
       (1 unless QUILL_DOMAINS pins it). *)
    options =
      { Picker.default_options with
        Picker.parallelism = Quill_parallel.Pool.parallelism () };
    timeout_ms = None;
    budget_bytes = None;
    cancel = Atomic.make false;
  }

(** [catalog db] exposes the catalog (e.g. for bulk loading). *)
let catalog db = db.catalog

(** [set_engine db e] changes the default engine for [query]. *)
let set_engine db e = db.engine <- e

(** [set_policy db p] changes the adaptive tiering policy. *)
let set_policy db p = db.policy <- p

(** [set_options db o] overrides the algorithm picker's options. *)
let set_options db o = db.options <- o

(** [set_timeout db ms] sets the session's default query deadline
    ([None] = none); each statement gets a fresh deadline when it starts. *)
let set_timeout db ms = db.timeout_ms <- ms

(** [timeout_ms db] is the session's default deadline. *)
let timeout_ms db = db.timeout_ms

(** [set_budget db bytes] sets the session's default per-query memory
    budget ([None] = unlimited).  The budget also feeds the picker, which
    penalizes algorithms whose working set wouldn't fit. *)
let set_budget db bytes = db.budget_bytes <- bytes

(** [budget_bytes db] is the session's default memory budget. *)
let budget_bytes db = db.budget_bytes

(** [cancel db] asks the session's currently running query (possibly on
    another domain) to abort with {!Aborted}[ Cancelled] at its next
    governor check.  If no query is running, the next one consumes the
    flag immediately. *)
let cancel db = Atomic.set db.cancel true

(** [set_parallelism db n] sets the session's parallel-execution goal:
    the shared worker pool targets [n] domains (clamped to a sane range)
    and the picker costs plans for [n]-way morsel parallelism.  The pool
    is process-wide, so the last setter wins across sessions. *)
let set_parallelism db n =
  Quill_parallel.Pool.set_parallelism n;
  db.options <-
    { db.options with Picker.parallelism = Quill_parallel.Pool.parallelism () }

(** [close db] releases session resources: joins the shared pool's worker
    domains (they re-spawn lazily if another session runs a parallel
    query).  The in-memory catalog needs no teardown. *)
let close db =
  ignore db;
  Quill_parallel.Pool.shutdown ()

(** [register_udf db ~name ~args ~ret f] registers a scalar UDF usable in
    any SQL expression; it participates in compilation and fusion like a
    built-in (claim C5). *)
let register_udf db ~name ~args ~ret f =
  Udf.register db.udfs
    { Udf.name; arg_types = args; ret_type = ret; fn = f; cost_per_call = 20.0 }

(** [analyze db table] recollects statistics for [table]. *)
let analyze db table = ignore (Table_stats.Registry.analyze db.registry db.catalog table)

let opt_env db =
  let indexed table =
    match Catalog.find db.catalog table with
    | None -> []
    | Some t ->
        List.filter_map
          (fun col -> Schema.find (Table.schema t) col |> Result.to_option)
          (Quill_storage.Index.Registry.declared db.indexes table)
  in
  Card.make_env ~hints:(Feedback.hints db.feedback) ~indexed db.catalog db.registry

let param_types_of params =
  Array.map
    (fun v -> if Value.is_null v then Value.Str_t else Value.type_of v)
    params

let wrap f =
  try f () with
  | Governor.Aborted r -> raise (Aborted r)
  | Quill_sql.Parser.Parse_error m -> raise (Error ("parse error: " ^ m))
  | Quill_sql.Lexer.Lex_error (m, pos) ->
      raise (Error (Printf.sprintf "lex error: %s at %d" m pos))
  | Binder.Bind_error m -> raise (Error ("bind error: " ^ m))
  | Quill_plan.Bexpr.Eval_error m -> raise (Error ("runtime error: " ^ m))
  | Invalid_argument m -> raise (Error m)
  | Failure m -> raise (Error m)

(* Picker options for one query: a memory budget (per-call override or
   session default) is surfaced to the cost model so memory-hungry
   algorithms the governor would kill get penalized. *)
let effective_options db budget_override =
  match (match budget_override with Some _ as b -> b | None -> db.budget_bytes) with
  | None -> db.options
  | Some b -> { db.options with Picker.budget_bytes = Some b }

(* Full planning result: main physical plan plus materialization plans for
   any uncorrelated subqueries. *)
let plan_full db ?(params = [||]) ?budget_bytes sql =
  let options = effective_options db budget_bytes in
  wrap (fun () ->
      match Trace.with_span "parse" (fun () -> Parser.parse sql) with
      | Ast.Select sel ->
          let env =
            Binder.mk_env ~catalog:db.catalog ~udfs:db.udfs
              ~param_types:(param_types_of params) ()
          in
          let lplan = Trace.with_span "bind" (fun () -> Binder.bind_select env sel) in
          let main = Picker.optimize ~options (opt_env db) lplan in
          (* Subqueries accumulate innermost-last; materialization order is
             innermost-first. *)
          let subs =
            List.rev_map
              (fun (cell, sub_lplan) ->
                (cell, Picker.optimize ~options (opt_env db) sub_lplan))
              !(env.Binder.subqueries)
          in
          (main, subs)
      | _ -> raise (Error "plan: not a SELECT statement"))

(** [plan db ?params sql] parses and optimizes a SELECT, returning the
    physical plan (subquery materialization plans are handled internally by
    [query]/[query_adaptive]). *)
let plan db ?params sql = fst (plan_full db ?params sql)

let rows_to_table plan rows =
  let schema = Physical.schema_of plan in
  Table.of_rows ~name:"result" schema (Array.to_list rows)

let run_engine db engine ?profile ?(gov = Governor.none) ~params plan =
  Trace.with_span ~cat:"exec" ~args:[ ("engine", engine_name engine) ] "execute"
    (fun () ->
      let ctx =
        Exec_ctx.create ~params ?profile ~indexes:db.indexes ~governor:gov db.catalog
      in
      match engine with
      | Volcano -> Quill_exec.Volcano.run ctx plan
      | Vectorized -> Quill_exec.Vector.run ctx plan
      | Compiled -> Quill_util.Vec.to_array (Codegen.run ctx plan))

(* Materialize uncorrelated subqueries (innermost first): each cell gets
   the first-column values of its subplan's result.  They run under the
   outer query's governor, so a huge subquery result counts against the
   same budget and deadline. *)
let fill_subqueries db ?(gov = Governor.none) ~params subs =
  List.iter
    (fun (cell, sub_plan) ->
      let rows = run_engine db Compiled ~gov ~params sub_plan in
      cell := Some (Array.to_list (Array.map (fun r -> r.(0)) rows)))
    subs

(* Binding helper for non-SELECT statements: any subqueries found in their
   scalar expressions are materialized immediately. *)
let bind_stmt_scalar db env schema ast =
  let before = !(env.Binder.subqueries) in
  let be = Binder.bind_scalar env schema ast in
  let fresh =
    List.filter (fun (cell, _) -> not (List.memq cell (List.map fst before))) !(env.Binder.subqueries)
  in
  fill_subqueries db ~params:[||]
    (List.rev_map
       (fun (cell, lp) -> (cell, Picker.optimize ~options:db.options (opt_env db) lp))
       fresh);
  be

(* Statement dispatch for non-SELECT statements. *)
let exec_stmt db stmt =
  match stmt with
  | Ast.Select _ -> assert false
  | Ast.Create_table (name, cols) ->
      let schema =
        Schema.create
          (List.map (fun (n, t, nullable) -> Schema.col ~nullable n t) cols)
      in
      Catalog.add db.catalog (Table.create ~name schema);
      Affected 0
  | Ast.Drop_table name ->
      Catalog.drop db.catalog name;
      Quill_storage.Index.Registry.drop_table db.indexes name;
      Affected 0
  | Ast.Create_table_as (name, sel) ->
      if Catalog.find db.catalog name <> None then
        raise (Error (Printf.sprintf "table %S already exists" name));
      let env = Binder.mk_env ~catalog:db.catalog ~udfs:db.udfs ~param_types:[||] () in
      let lplan = Binder.bind_select env sel in
      let pplan = Picker.optimize ~options:db.options (opt_env db) lplan in
      let subs =
        List.rev_map
          (fun (cell, lp) -> (cell, Picker.optimize ~options:db.options (opt_env db) lp))
          !(env.Binder.subqueries)
      in
      fill_subqueries db ~params:[||] subs;
      let rows = run_engine db db.engine ~params:[||] pplan in
      let table = Table.of_rows ~name (Physical.schema_of pplan) (Array.to_list rows) in
      Catalog.add db.catalog table;
      Affected (Array.length rows)
  | Ast.Create_index (table, col) ->
      let t = Catalog.find_exn db.catalog table in
      (* Validate the column now; the index itself builds lazily. *)
      ignore (Schema.find_exn (Table.schema t) col);
      Quill_storage.Index.Registry.declare db.indexes ~table ~col;
      Catalog.bump db.catalog;
      Affected 0
  | Ast.Insert (name, cols, rows) ->
      let table = Catalog.find_exn db.catalog name in
      let schema = Table.schema table in
      let env = Binder.mk_env ~catalog:db.catalog ~udfs:db.udfs ~param_types:[||] () in
      let positions =
        match cols with
        | None -> List.init (Schema.arity schema) Fun.id
        | Some names -> List.map (Schema.find_exn schema) names
      in
      List.iter
        (fun exprs ->
          if List.length exprs <> List.length positions then
            raise (Error "INSERT: value count does not match column count");
          let row = Array.make (Schema.arity schema) Value.Null in
          List.iter2
            (fun pos e ->
              let be = bind_stmt_scalar db env (Schema.create []) e in
              row.(pos) <- Quill_plan.Bexpr.eval ~row:[||] ~params:[||] be)
            positions exprs;
          Table.insert table row)
        rows;
      Catalog.bump db.catalog;
      Affected (List.length rows)
  | Ast.Copy (name, path) ->
      let table = Catalog.find_exn db.catalog name in
      let schema = Table.schema table in
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      let rows = Quill_storage.Csv.rows_of_string ~schema text in
      Table.insert_all table rows;
      Catalog.bump db.catalog;
      Affected (List.length rows)
  | Ast.Delete (name, where) ->
      let table = Catalog.find_exn db.catalog name in
      let schema = Schema.qualify name (Table.schema table) in
      let keep =
        match where with
        | None -> fun _ -> false
        | Some w ->
            if Ast.contains_agg w then raise (Error "aggregates not allowed in DELETE");
            let env =
              Binder.mk_env ~catalog:db.catalog ~udfs:db.udfs ~param_types:[||] ()
            in
            let pred = bind_stmt_scalar db env schema w in
            if pred.Quill_plan.Bexpr.dtype <> Value.Bool_t then
              raise (Error "DELETE predicate must be boolean");
            let f = Quill_compile.Expr_compile.compile_pred pred in
            fun row -> not (f [||] row)
      in
      let removed = Table.retain table keep in
      Catalog.bump db.catalog;
      Affected removed
  | Ast.Update (name, sets, where) ->
      let table = Catalog.find_exn db.catalog name in
      let schema = Schema.qualify name (Table.schema table) in
      let env = Binder.mk_env ~catalog:db.catalog ~udfs:db.udfs ~param_types:[||] () in
      let where_fn =
        match where with
        | None -> fun _ -> true
        | Some w ->
            if Ast.contains_agg w then raise (Error "aggregates not allowed in UPDATE");
            let pred = bind_stmt_scalar db env schema w in
            if pred.Quill_plan.Bexpr.dtype <> Value.Bool_t then
              raise (Error "UPDATE predicate must be boolean");
            let f = Quill_compile.Expr_compile.compile_pred pred in
            fun row -> f [||] row
      in
      let assigns =
        List.map
          (fun (c, e) ->
            let pos = Schema.find_exn schema c in
            let be = bind_stmt_scalar db env schema e in
            let want = (Schema.column schema pos).Schema.dtype in
            let ok =
              be.Quill_plan.Bexpr.dtype = want
              || (want = Value.Float_t && be.Quill_plan.Bexpr.dtype = Value.Int_t)
              || (match be.Quill_plan.Bexpr.node with
                 | Quill_plan.Bexpr.Lit Value.Null -> true
                 | _ -> false)
            in
            if not ok then
              raise
                (Error
                   (Printf.sprintf "UPDATE: cannot assign %s to column %s (%s)"
                      (Value.dtype_name be.Quill_plan.Bexpr.dtype)
                      c (Value.dtype_name want)));
            let f = Quill_compile.Expr_compile.compile be in
            (pos, f))
          sets
      in
      let apply row =
        (* Evaluate every assignment against the pre-update row. *)
        let values = List.map (fun (pos, f) -> (pos, f [||] row)) assigns in
        List.iter (fun (pos, v) -> row.(pos) <- v) values;
        row
      in
      let n =
        try Table.update table ~where:where_fn ~apply
        with Invalid_argument m -> raise (Error m)
      in
      Catalog.bump db.catalog;
      Affected n
  | Ast.Explain { analyze; query } ->
      let env = Binder.mk_env ~catalog:db.catalog ~udfs:db.udfs ~param_types:[||] () in
      let lplan = Binder.bind_select env query in
      let pplan = Picker.optimize ~options:db.options (opt_env db) lplan in
      let subs =
        List.rev_map
          (fun (cell, lp) -> (cell, Picker.optimize ~options:db.options (opt_env db) lp))
          !(env.Binder.subqueries)
      in
      if not analyze then Text (Physical.to_string pplan)
      else begin
        fill_subqueries db ~params:[||] subs;
        let profile = Profile.create pplan in
        let _ = run_engine db Vectorized ~profile ~params:[||] pplan in
        let est = Profile.estimates pplan in
        let excl = Profile.exclusive pplan profile in
        let ops = Physical.preorder pplan in
        let lines =
          List.init (Array.length est) (fun i ->
              let info = Physical.info_of ops.(i) in
              let losers =
                List.filter (fun c -> not c.Physical.cand_chosen) info.Physical.candidates
              in
              [ string_of_int i;
                Physical.op_name ops.(i);
                Printf.sprintf "%.0f" est.(i);
                string_of_int (Profile.rows profile i);
                Quill_util.Pretty.duration excl.(i);
                Quill_util.Pretty.duration (Profile.elapsed profile i);
                String.concat ", "
                  (List.map
                     (fun c ->
                       Printf.sprintf "%s (cost=%.0f)" c.Physical.cand_name
                         c.Physical.cand_cost)
                     losers) ])
        in
        Text
          (Physical.to_string pplan
          ^ Quill_util.Pretty.render
              ~header:
                [ "op"; "operator"; "est rows"; "actual rows"; "time (self)";
                  "time (cumulative)"; "rejected candidates" ]
              lines)
      end

(* One statement's governor: per-call override beats the session default;
   the session cancel flag is always armed.  [observe_peak] records the
   peak-bytes histogram however the query ends. *)
let governed db ?timeout_ms ?budget_bytes f =
  let timeout_ms =
    match timeout_ms with Some _ as t -> t | None -> db.timeout_ms
  in
  let budget_bytes =
    match budget_bytes with Some _ as b -> b | None -> db.budget_bytes
  in
  let gov = Governor.create ?timeout_ms ?budget_bytes ~cancel:db.cancel () in
  Fun.protect ~finally:(fun () -> Governor.observe_peak gov) (fun () ->
      f gov budget_bytes)

(** [query db ?params ?engine ?timeout_ms ?budget_bytes sql] runs a SELECT
    and returns the result table (uncached path).  [timeout_ms] and
    [budget_bytes] override the session defaults for this call. *)
let query db ?(params = [||]) ?engine ?timeout_ms ?budget_bytes sql =
  let engine = Option.value ~default:db.engine engine in
  Trace.with_span ~args:[ ("sql", sql); ("engine", engine_name engine) ] "query"
    (fun () ->
      wrap (fun () ->
          Metrics.incr m_queries;
          governed db ?timeout_ms ?budget_bytes (fun gov budget ->
              let result, dt =
                Quill_util.Timer.time (fun () ->
                    let pplan, subs = plan_full db ~params ?budget_bytes:budget sql in
                    fill_subqueries db ~gov ~params subs;
                    rows_to_table pplan (run_engine db engine ~gov ~params pplan))
              in
              Metrics.observe h_query_seconds dt;
              result)))

(** [exec db sql] runs any statement; SELECTs return [Rows]. *)
let exec db ?(params = [||]) ?timeout_ms ?budget_bytes sql =
  wrap (fun () ->
      match Parser.parse sql with
      | Ast.Select _ -> Rows (query db ~params ?timeout_ms ?budget_bytes sql)
      | stmt -> exec_stmt db stmt)

(** [explain db ?analyze sql] renders the optimized plan; with
    [~analyze:true] also executes and reports estimated vs. actual rows. *)
let explain db ?(analyze = false) sql =
  wrap (fun () ->
      match Parser.parse sql with
      | Ast.Select sel -> (
          match exec_stmt db (Ast.Explain { analyze; query = sel }) with
          | Text s -> s
          | _ -> assert false)
      | _ -> raise (Error "explain: not a SELECT statement"))

(** [query_adaptive db ?params sql] is the managed-runtime path: plans are
    cached per (sql, parameter types); the first execution is profiled and
    may trigger feedback re-optimization; repeated executions tier up to
    the compiled engine per the session policy. *)
let query_adaptive db ?(params = [||]) ?timeout_ms ?budget_bytes sql =
  Trace.with_span ~args:[ ("sql", sql) ] "query-adaptive" @@ fun () ->
  wrap (fun () ->
      Metrics.incr m_queries;
      governed db ?timeout_ms ?budget_bytes @@ fun gov budget ->
      let param_types = param_types_of params in
      let version = Catalog.version db.catalog in
      match Plan_cache.find db.cache ~sql ~param_types ~catalog_version:version with
      | Some entry ->
          Trace.instant "plan-cache-hit";
          fill_subqueries db ~gov ~params entry.Plan_cache.subs;
          let ctx =
            Exec_ctx.create ~params ~indexes:db.indexes ~governor:gov db.catalog
          in
          let rows, dt =
            Quill_util.Timer.time (fun () ->
                Trace.with_span ~cat:"exec" "execute" (fun () ->
                    Tiering.execute ~policy:db.policy ~ctx entry))
          in
          Metrics.observe h_query_seconds dt;
          rows_to_table entry.Plan_cache.plan (Quill_util.Vec.to_array rows)
      | None ->
          let pplan, subs = plan_full db ~params ?budget_bytes:budget sql in
          fill_subqueries db ~gov ~params subs;
          (* The first execution is instrumented; estimation misses feed
             the feedback store and can trigger an immediate re-plan for
             subsequent executions. *)
          let profile = Profile.create pplan in
          let rows, elapsed =
            Quill_util.Timer.time (fun () ->
                run_engine db Vectorized ~profile ~gov ~params pplan)
          in
          let _ = Feedback.learn db.feedback db.catalog pplan profile in
          let cached_plan, cached_subs =
            if Feedback.should_reoptimize pplan profile then begin
              Trace.instant "re-optimize";
              plan_full db ~params ?budget_bytes:budget sql
            end
            else (pplan, subs)
          in
          let entry =
            Plan_cache.add db.cache ~sql ~param_types ~catalog_version:version
              ~subs:cached_subs cached_plan
          in
          entry.Plan_cache.runs <- 1;
          entry.Plan_cache.total_exec_time <- elapsed;
          Metrics.observe h_query_seconds elapsed;
          rows_to_table pplan rows)

(** [cache_stats db] returns (entries, total runs, compiled count) for
    observability. *)
let cache_stats db =
  let entries = ref 0 and runs = ref 0 and compiled = ref 0 in
  Hashtbl.iter
    (fun _ (e : Plan_cache.entry) ->
      incr entries;
      runs := !runs + e.Plan_cache.runs;
      if e.Plan_cache.compiled <> None then incr compiled)
    db.cache.Plan_cache.entries;
  (!entries, !runs, !compiled)

(* --- Observability ----------------------------------------------------- *)

(** [set_tracing on] turns the process-wide query-lifecycle span tracer
    on or off.  Turning it on starts a fresh trace. *)
let set_tracing on = Trace.set_enabled on

(** [tracing ()] is true while spans are being recorded. *)
let tracing () = Trace.enabled ()

(** [clear_trace ()] drops recorded spans and restarts the trace epoch. *)
let clear_trace () = Trace.clear ()

(** [trace_json ()] exports recorded spans as Chrome trace-event JSON. *)
let trace_json () = Trace.to_chrome_json ()

(** [metrics_text ()] renders the process-wide metrics registry. *)
let metrics_text () = Metrics.render ()

(* --- Persistence ------------------------------------------------------- *)

(** [save db dir] writes the database to directory [dir]: one CSV file per
    table plus a [_manifest.sql] of CREATE TABLE / CREATE INDEX statements
    that [load] replays. Existing files are overwritten. *)
let save db dir =
  wrap (fun () ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let manifest = Buffer.create 256 in
      List.iter
        (fun name ->
          let table = Catalog.find_exn db.catalog name in
          let schema = Table.schema table in
          let cols =
            List.map
              (fun c ->
                Printf.sprintf "%s %s%s" c.Schema.name
                  (Value.dtype_name c.Schema.dtype)
                  (if c.Schema.nullable then "" else " NOT NULL"))
              (Schema.columns schema)
          in
          Buffer.add_string manifest
            (Printf.sprintf "CREATE TABLE %s (%s);\n" name (String.concat ", " cols));
          List.iter
            (fun col ->
              Buffer.add_string manifest
                (Printf.sprintf "CREATE INDEX ON %s (%s);\n" name col))
            (Quill_storage.Index.Registry.declared db.indexes name);
          Quill_storage.Csv.save table (Filename.concat dir (name ^ ".csv")))
        (Catalog.names db.catalog);
      let oc = open_out (Filename.concat dir "_manifest.sql") in
      output_string oc (Buffer.contents manifest);
      close_out oc)

(** [load dir] reads a database previously written by {!save}. *)
let load dir =
  wrap (fun () ->
      let db = create () in
      let ic = open_in (Filename.concat dir "_manifest.sql") in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      String.split_on_char ';' text
      |> List.iter (fun stmt ->
             let stmt = String.trim stmt in
             if stmt <> "" then ignore (exec db stmt));
      List.iter
        (fun name ->
          ignore
            (exec db
               (Printf.sprintf "COPY %s FROM '%s'" name
                  (Filename.concat dir (name ^ ".csv")))))
        (Catalog.names db.catalog);
      db)
