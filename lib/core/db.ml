(* The Quill public API.

   A [Db.t] bundles the catalog, statistics, UDF registry, plan cache and
   feedback store.  [query] runs one statement through the full pipeline
   (parse -> bind -> rewrite -> reorder -> pick -> execute) on a chosen
   engine; [query_adaptive] adds the managed-runtime behaviours: plan
   caching, profile-driven re-optimization and tiered compilation. *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema
module Table = Quill_storage.Table
module Catalog = Quill_storage.Catalog
module Ast = Quill_sql.Ast
module Parser = Quill_sql.Parser
module Binder = Quill_plan.Binder
module Udf = Quill_plan.Udf
module Lplan = Quill_plan.Lplan
module Table_stats = Quill_stats.Table_stats
module Card = Quill_optimizer.Card
module Picker = Quill_optimizer.Picker
module Physical = Quill_optimizer.Physical
module Exec_ctx = Quill_exec.Exec_ctx
module Profile = Quill_exec.Profile
module Codegen = Quill_compile.Codegen
module Feedback = Quill_adaptive.Feedback
module Plan_cache = Quill_adaptive.Plan_cache
module Tiering = Quill_adaptive.Tiering
module Trace = Quill_obs.Trace
module Metrics = Quill_obs.Metrics
module Governor = Quill_exec.Governor
module Csv = Quill_storage.Csv
module Wal = Quill_storage.Wal
module Snapshot = Quill_storage.Snapshot
module Sim_fs = Quill_storage.Sim_fs
module Spill = Quill_storage.Spill
module Store = Quill_txn.Store
module Index_reg = Quill_storage.Index.Registry

type store = Store.t

exception Error of string

exception Conflict = Store.Conflict
(** A snapshot-isolation write-write conflict: this transaction lost a
    table in its write set to a first committer and has been rolled
    back.  Retry on a fresh snapshot. *)

type abort_reason = Governor.abort_reason =
  | Timeout
  | Cancelled
  | Resource_exhausted

exception Aborted of abort_reason
(** Raised when the resource governor stops a query: its deadline passed,
    {!cancel} was called, or it exceeded its memory budget.  The session
    stays usable; the next statement runs normally. *)

let abort_reason_name = Governor.reason_name

(* Statements executed and end-to-end SELECT latency, fed to the
   process-wide registry. *)
let m_queries = Metrics.counter "quill.db.queries"
let h_query_seconds = Metrics.histogram "quill.db.query_seconds"

(* Durability traffic: checkpoints taken, and what recovery salvaged. *)
let m_checkpoints = Metrics.counter "quill.wal.checkpoints"
let m_recoveries = Metrics.counter "quill.recovery.runs"
let m_recovered = Metrics.counter "quill.recovery.replayed"
let m_dropped = Metrics.counter "quill.recovery.dropped"

type engine = Volcano | Vectorized | Compiled

let engine_name = function
  | Volcano -> "volcano"
  | Vectorized -> "vectorized"
  | Compiled -> "compiled"

type sync_policy = Wal.sync_policy = Never | On_commit | Every of int

(* Durable-session state: the directory of generations, which generation
   is live, and the open WAL that mutations append to. *)
type durable = {
  dur_dir : string;
  mutable generation : int;
  mutable wal : Wal.t;
}

(* A session's attachment to a shared MVCC store.  The session's catalog
   is a *view*: table-version pointers copied from a committed snapshot
   (or, inside a transaction, this session's private copy-on-write
   versions layered over its pinned snapshot).  [view_ts] is the commit
   timestamp the view reflects; -1 forces a re-sync. *)
type shared_session = {
  handle : Store.t;
  mutable view_ts : int;
  mutable txn : Store.txn option;  (** open explicit transaction, if any *)
}

type t = {
  catalog : Catalog.t;
  udfs : Udf.t;
  registry : Table_stats.Registry.reg;
  indexes : Quill_storage.Index.Registry.t;
  feedback : Feedback.t;
  cache : Plan_cache.t;
  mutable engine : engine;  (** default engine for [query] *)
  mutable policy : Tiering.policy;  (** tier policy for [query_adaptive] *)
  mutable options : Picker.options;
  mutable timeout_ms : int option;  (** session default deadline *)
  mutable budget_bytes : int option;  (** session default memory budget *)
  mutable spill_on : bool;  (** budgeted queries may spill to disk *)
  mutable last_abort : string option;  (** detail of the latest governor abort *)
  cancel : bool Atomic.t;  (** set by {!cancel}, consumed by the governor *)
  mutable durable : durable option;  (** WAL-backed session state, if any *)
  mutable shared : shared_session option;  (** MVCC store attachment *)
}

type result =
  | Rows of Table.t
  | Affected of int
  | Text of string

(** [create ()] returns a fresh database with built-in scalar functions,
    the compiled engine as default and the standard tiering policy. *)
let create () =
  (* Pre-compose the copy-and-patch stencil library once per process so
     per-query compilation of covered shapes is pure selection+binding. *)
  Quill_compile.Stencil.warm ();
  {
    catalog = Catalog.create ();
    udfs = Udf.builtins ();
    registry = Table_stats.Registry.create ();
    indexes = Quill_storage.Index.Registry.create ();
    feedback = Feedback.create ();
    cache = Plan_cache.create ();
    engine = Compiled;
    policy = Tiering.Tiered Tiering.default_hot_threshold;
    (* Cost the plans for whatever parallelism the session starts with
       (1 unless QUILL_DOMAINS pins it). *)
    options =
      { Picker.default_options with
        Picker.parallelism = Quill_parallel.Pool.parallelism () };
    timeout_ms = None;
    budget_bytes = None;
    spill_on = true;
    last_abort = None;
    cancel = Atomic.make false;
    durable = None;
    shared = None;
  }

(** [catalog db] exposes the catalog (e.g. for bulk loading). *)
let catalog db = db.catalog

(** [set_engine db e] changes the default engine for [query]. *)
let set_engine db e = db.engine <- e

(** [set_policy db p] changes the adaptive tiering policy. *)
let set_policy db p = db.policy <- p

(** [set_options db o] overrides the algorithm picker's options. *)
let set_options db o = db.options <- o

(** [set_timeout db ms] sets the session's default query deadline
    ([None] = none); each statement gets a fresh deadline when it starts. *)
let set_timeout db ms = db.timeout_ms <- ms

(** [timeout_ms db] is the session's default deadline. *)
let timeout_ms db = db.timeout_ms

(** [set_budget db bytes] sets the session's default per-query memory
    budget ([None] = unlimited).  The budget also feeds the picker, which
    penalizes algorithms whose working set wouldn't fit. *)
let set_budget db bytes = db.budget_bytes <- bytes

(** [budget_bytes db] is the session's default memory budget. *)
let budget_bytes db = db.budget_bytes

(** [set_spill db on] enables or disables out-of-core execution for
    budgeted queries (default on).  With it off, exceeding the budget is
    a hard kill — the pre-spill ablation baseline. *)
let set_spill db on = db.spill_on <- on

(** [spill_enabled db] is whether budgeted queries may spill. *)
let spill_enabled db = db.spill_on

(** [last_abort_detail db] is the rich account of the most recent
    governor abort in this session (reason; for budget kills also peak
    bytes charged, the budget, and what spilling did). *)
let last_abort_detail db = db.last_abort

(** [cancel db] asks the session's currently running query (possibly on
    another domain) to abort with {!Aborted}[ Cancelled] at its next
    governor check.  If no query is running, the next one consumes the
    flag immediately. *)
let cancel db = Atomic.set db.cancel true

(** [set_parallelism db n] sets the session's parallel-execution goal:
    the shared worker pool targets [n] domains (clamped to a sane range)
    and the picker costs plans for [n]-way morsel parallelism.  The pool
    is process-wide, so the last setter wins across sessions. *)
let set_parallelism db n =
  Quill_parallel.Pool.set_parallelism n;
  db.options <-
    { db.options with Picker.parallelism = Quill_parallel.Pool.parallelism () }

(** [close db] releases session resources: closes the WAL of a durable
    session and joins the shared pool's worker domains (they re-spawn
    lazily if another session runs a parallel query).  Closing a derived
    session of a shared store ({!session}) releases nothing — the store,
    its WAL and the pool belong to the root database. *)
let close db =
  match (db.shared, db.durable) with
  | Some _, None -> ()
  | _ ->
      (match db.durable with
      | Some d ->
          db.durable <- None;
          Wal.close d.wal
      | None -> ());
      Quill_parallel.Pool.shutdown ()

(** [register_udf db ~name ~args ~ret f] registers a scalar UDF usable in
    any SQL expression; it participates in compilation and fusion like a
    built-in (claim C5). *)
let register_udf db ~name ~args ~ret f =
  Udf.register db.udfs
    { Udf.name; arg_types = args; ret_type = ret; fn = f; cost_per_call = 20.0 }

(** [analyze db table] recollects statistics for [table]. *)
let analyze db table = ignore (Table_stats.Registry.analyze db.registry db.catalog table)

let opt_env ?params db =
  let indexed table =
    match Catalog.find db.catalog table with
    | None -> []
    | Some t ->
        List.filter_map
          (fun col -> Schema.find (Table.schema t) col |> Result.to_option)
          (Quill_storage.Index.Registry.declared db.indexes table)
  in
  Card.make_env ~hints:(Feedback.hints db.feedback) ~indexed ?params db.catalog
    db.registry

let param_types_of params =
  Array.map
    (fun v -> if Value.is_null v then Value.Str_t else Value.type_of v)
    params

(* Note: [Sim_fs.Crash] (the simulated power cut) is deliberately NOT
   wrapped — it must unwind out of the API uncaught, like the process
   dying would. *)
let wrap f =
  try f () with
  | Governor.Aborted r -> raise (Aborted r)
  | Quill_sql.Parser.Parse_error m -> raise (Error ("parse error: " ^ m))
  | Quill_sql.Lexer.Lex_error (m, pos) ->
      raise (Error (Printf.sprintf "lex error: %s at %d" m pos))
  | Binder.Bind_error m -> raise (Error ("bind error: " ^ m))
  | Quill_plan.Bexpr.Eval_error m -> raise (Error ("runtime error: " ^ m))
  | Sys_error m -> raise (Error m)
  | Sim_fs.Io_error m -> raise (Error ("io error: " ^ m))
  | Snapshot.Invalid m -> raise (Error ("snapshot error: " ^ m))
  | Invalid_argument m -> raise (Error m)
  | Failure m -> raise (Error m)

(* --- MVCC view maintenance --------------------------------------------- *)

(* Point the session's catalog view at a committed snapshot: table
   versions become the snapshot's pointers, index declarations re-sync,
   and the catalog version bump invalidates this session's plan and
   index caches. *)
let apply_snapshot db sh (snap : Store.snapshot) =
  Catalog.reset db.catalog snap.Store.tables;
  Index_reg.reset_defs db.indexes snap.Store.snap_index_defs;
  sh.view_ts <- snap.Store.ts

(* Re-sync the view with the latest committed state.  Cheap no-op when
   nothing committed since the last sync (the common read-heavy case —
   plan-cache hits survive), and never moves the view while a
   transaction has it pinned. *)
let sync_view db =
  match db.shared with
  | None -> ()
  | Some sh -> (
      match sh.txn with
      | Some _ -> ()
      | None ->
          if sh.view_ts <> Store.committed_ts sh.handle then
            apply_snapshot db sh (Store.snapshot sh.handle))

(* Picker options for one query: a memory budget (per-call override or
   session default) is surfaced to the cost model so memory-hungry
   algorithms the governor would kill get penalized. *)
let effective_options db budget_override =
  match (match budget_override with Some _ as b -> b | None -> db.budget_bytes) with
  | None -> db.options
  | Some b ->
      { db.options with Picker.budget_bytes = Some b; Picker.spill = db.spill_on }

(* Full planning result: main physical plan, materialization plans for
   any uncorrelated subqueries, and — when the plan shape depends on the
   bound parameter values — a classifier mapping parameters to the
   selectivity band the plan cache keys variants on. *)
let plan_full db ?(params = [||]) ?budget_bytes sql =
  let options = effective_options db budget_bytes in
  sync_view db;
  wrap (fun () ->
      match Trace.with_span "parse" (fun () -> Parser.parse sql) with
      | Ast.Select sel ->
          let env =
            Binder.mk_env ~catalog:db.catalog ~udfs:db.udfs
              ~param_types:(param_types_of params) ()
          in
          let lplan = Trace.with_span "bind" (fun () -> Binder.bind_select env sel) in
          let card_env = opt_env ~params db in
          let main = Picker.optimize ~options card_env lplan in
          let classifier =
            Card.param_selectivity card_env lplan
            |> Option.map (fun sel ps -> Card.selectivity_band (sel ps))
          in
          (* Subqueries accumulate innermost-last; materialization order is
             innermost-first. *)
          let subs =
            List.rev_map
              (fun (cell, sub_lplan) ->
                (cell, Picker.optimize ~options card_env sub_lplan))
              !(env.Binder.subqueries)
          in
          (main, subs, classifier)
      | _ -> raise (Error "plan: not a SELECT statement"))

(** [plan db ?params sql] parses and optimizes a SELECT, returning the
    physical plan (subquery materialization plans are handled internally by
    [query]/[query_adaptive]). *)
let plan db ?params sql =
  let main, _, _ = plan_full db ?params sql in
  main

let rows_to_table plan rows =
  let schema = Physical.schema_of plan in
  Table.of_rows ~name:"result" schema (Array.to_list rows)

let run_engine db engine ?profile ?(gov = Governor.none) ~params plan =
  Trace.with_span ~cat:"exec" ~args:[ ("engine", engine_name engine) ] "execute"
    (fun () ->
      let ctx =
        Exec_ctx.create ~params ?profile ~indexes:db.indexes ~governor:gov db.catalog
      in
      match engine with
      | Volcano -> Quill_exec.Volcano.run ctx plan
      | Vectorized -> Quill_exec.Vector.run ctx plan
      | Compiled -> Quill_util.Vec.to_array (Codegen.run ctx plan))

(* Materialize uncorrelated subqueries (innermost first): each cell gets
   the first-column values of its subplan's result.  They run under the
   outer query's governor, so a huge subquery result counts against the
   same budget and deadline. *)
let fill_subqueries db ?(gov = Governor.none) ~params subs =
  List.iter
    (fun (cell, sub_plan) ->
      let rows = run_engine db Compiled ~gov ~params sub_plan in
      cell := Some (Array.to_list (Array.map (fun r -> r.(0)) rows)))
    subs

(* Binding helper for non-SELECT statements: any subqueries found in their
   scalar expressions are materialized immediately. *)
let bind_stmt_scalar db env schema ast =
  let before = !(env.Binder.subqueries) in
  let be = Binder.bind_scalar env schema ast in
  let fresh =
    List.filter (fun (cell, _) -> not (List.memq cell (List.map fst before))) !(env.Binder.subqueries)
  in
  fill_subqueries db ~params:[||]
    (List.rev_map
       (fun (cell, lp) -> (cell, Picker.optimize ~options:db.options (opt_env db) lp))
       fresh);
  be

(* Statement dispatch for non-SELECT statements. *)
let exec_stmt db stmt =
  match stmt with
  | Ast.Select _ | Ast.Begin | Ast.Commit | Ast.Rollback ->
      (* SELECT goes through [query]; transaction control is handled in
         [exec] before dispatch reaches here. *)
      assert false
  | Ast.Create_table (name, cols) ->
      let schema =
        Schema.create
          (List.map (fun (n, t, nullable) -> Schema.col ~nullable n t) cols)
      in
      Catalog.add db.catalog (Table.create ~name schema);
      Affected 0
  | Ast.Drop_table name ->
      Catalog.drop db.catalog name;
      Quill_storage.Index.Registry.drop_table db.indexes name;
      Affected 0
  | Ast.Create_table_as (name, sel) ->
      if Catalog.find db.catalog name <> None then
        raise (Error (Printf.sprintf "table %S already exists" name));
      let env = Binder.mk_env ~catalog:db.catalog ~udfs:db.udfs ~param_types:[||] () in
      let lplan = Binder.bind_select env sel in
      let pplan = Picker.optimize ~options:db.options (opt_env db) lplan in
      let subs =
        List.rev_map
          (fun (cell, lp) -> (cell, Picker.optimize ~options:db.options (opt_env db) lp))
          !(env.Binder.subqueries)
      in
      fill_subqueries db ~params:[||] subs;
      let rows = run_engine db db.engine ~params:[||] pplan in
      let table = Table.of_rows ~name (Physical.schema_of pplan) (Array.to_list rows) in
      Catalog.add db.catalog table;
      Affected (Array.length rows)
  | Ast.Create_index (table, col) ->
      let t = Catalog.find_exn db.catalog table in
      (* Validate the column now; the index itself builds lazily. *)
      ignore (Schema.find_exn (Table.schema t) col);
      Quill_storage.Index.Registry.declare db.indexes ~table ~col;
      Catalog.bump db.catalog;
      Affected 0
  | Ast.Insert (name, cols, rows) ->
      let table = Catalog.find_exn db.catalog name in
      let schema = Table.schema table in
      let env = Binder.mk_env ~catalog:db.catalog ~udfs:db.udfs ~param_types:[||] () in
      let positions =
        match cols with
        | None -> List.init (Schema.arity schema) Fun.id
        | Some names -> List.map (Schema.find_exn schema) names
      in
      List.iter
        (fun exprs ->
          if List.length exprs <> List.length positions then
            raise (Error "INSERT: value count does not match column count");
          let row = Array.make (Schema.arity schema) Value.Null in
          List.iter2
            (fun pos e ->
              let be = bind_stmt_scalar db env (Schema.create []) e in
              row.(pos) <- Quill_plan.Bexpr.eval ~row:[||] ~params:[||] be)
            positions exprs;
          Table.insert table row)
        rows;
      Catalog.bump db.catalog;
      Affected (List.length rows)
  | Ast.Copy (name, path) ->
      let table = Catalog.find_exn db.catalog name in
      let schema = Table.schema table in
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      let rows = Quill_storage.Csv.rows_of_string ~schema text in
      Table.insert_all table rows;
      Catalog.bump db.catalog;
      Affected (List.length rows)
  | Ast.Delete (name, where) ->
      let table = Catalog.find_exn db.catalog name in
      let schema = Schema.qualify name (Table.schema table) in
      let keep =
        match where with
        | None -> fun _ -> false
        | Some w ->
            if Ast.contains_agg w then raise (Error "aggregates not allowed in DELETE");
            let env =
              Binder.mk_env ~catalog:db.catalog ~udfs:db.udfs ~param_types:[||] ()
            in
            let pred = bind_stmt_scalar db env schema w in
            if pred.Quill_plan.Bexpr.dtype <> Value.Bool_t then
              raise (Error "DELETE predicate must be boolean");
            let f = Quill_compile.Expr_compile.compile_pred pred in
            fun row -> not (f [||] row)
      in
      let removed = Table.retain table keep in
      Catalog.bump db.catalog;
      Affected removed
  | Ast.Update (name, sets, where) ->
      let table = Catalog.find_exn db.catalog name in
      let schema = Schema.qualify name (Table.schema table) in
      let env = Binder.mk_env ~catalog:db.catalog ~udfs:db.udfs ~param_types:[||] () in
      let where_fn =
        match where with
        | None -> fun _ -> true
        | Some w ->
            if Ast.contains_agg w then raise (Error "aggregates not allowed in UPDATE");
            let pred = bind_stmt_scalar db env schema w in
            if pred.Quill_plan.Bexpr.dtype <> Value.Bool_t then
              raise (Error "UPDATE predicate must be boolean");
            let f = Quill_compile.Expr_compile.compile_pred pred in
            fun row -> f [||] row
      in
      let assigns =
        List.map
          (fun (c, e) ->
            let pos = Schema.find_exn schema c in
            let be = bind_stmt_scalar db env schema e in
            let want = (Schema.column schema pos).Schema.dtype in
            let ok =
              be.Quill_plan.Bexpr.dtype = want
              || (want = Value.Float_t && be.Quill_plan.Bexpr.dtype = Value.Int_t)
              || (match be.Quill_plan.Bexpr.node with
                 | Quill_plan.Bexpr.Lit Value.Null -> true
                 | _ -> false)
            in
            if not ok then
              raise
                (Error
                   (Printf.sprintf "UPDATE: cannot assign %s to column %s (%s)"
                      (Value.dtype_name be.Quill_plan.Bexpr.dtype)
                      c (Value.dtype_name want)));
            let f = Quill_compile.Expr_compile.compile be in
            (pos, f))
          sets
      in
      let apply row =
        (* Evaluate every assignment against the pre-update row. *)
        let values = List.map (fun (pos, f) -> (pos, f [||] row)) assigns in
        List.iter (fun (pos, v) -> row.(pos) <- v) values;
        row
      in
      let n =
        try Table.update table ~where:where_fn ~apply
        with Invalid_argument m -> raise (Error m)
      in
      Catalog.bump db.catalog;
      Affected n
  | Ast.Explain { analyze; query } ->
      let env = Binder.mk_env ~catalog:db.catalog ~udfs:db.udfs ~param_types:[||] () in
      let lplan = Binder.bind_select env query in
      let pplan = Picker.optimize ~options:db.options (opt_env db) lplan in
      let subs =
        List.rev_map
          (fun (cell, lp) -> (cell, Picker.optimize ~options:db.options (opt_env db) lp))
          !(env.Binder.subqueries)
      in
      if not analyze then Text (Physical.to_string pplan)
      else begin
        fill_subqueries db ~params:[||] subs;
        let profile = Profile.create pplan in
        let _ = run_engine db Vectorized ~profile ~params:[||] pplan in
        let est = Profile.estimates pplan in
        let excl = Profile.exclusive pplan profile in
        let ops = Physical.preorder pplan in
        let lines =
          List.init (Array.length est) (fun i ->
              let info = Physical.info_of ops.(i) in
              let losers =
                List.filter (fun c -> not c.Physical.cand_chosen) info.Physical.candidates
              in
              [ string_of_int i;
                Physical.op_name ops.(i);
                Printf.sprintf "%.0f" est.(i);
                string_of_int (Profile.rows profile i);
                Quill_util.Pretty.duration excl.(i);
                Quill_util.Pretty.duration (Profile.elapsed profile i);
                String.concat ", "
                  (List.map
                     (fun c ->
                       Printf.sprintf "%s (cost=%.0f)" c.Physical.cand_name
                         c.Physical.cand_cost)
                     losers) ])
        in
        (* Which compile tier serves this plan on the adaptive path:
           interpreted under an interpret-only policy, else the stencil
           tier when the binder covers the shape, else full codegen. *)
        let tier_line =
          match db.policy with
          | Tiering.Interpret_always ->
              "compile tier: interpreted (policy interpret-always)"
          | _ -> (
              match Quill_compile.Stencil_bind.shape_of db.catalog pplan with
              | Some shape -> Printf.sprintf "compile tier: stencil (shape %s)" shape
              | None -> "compile tier: full codegen (no stencil for this shape)")
        in
        Text
          (Physical.to_string pplan
          ^ Quill_util.Pretty.render
              ~header:
                [ "op"; "operator"; "est rows"; "actual rows"; "time (self)";
                  "time (cumulative)"; "rejected candidates" ]
              lines
          ^ tier_line ^ "\n")
      end

(* --- Durability internals ---------------------------------------------- *)

(* DDL manifest replayed by [load]: CREATE TABLE / CREATE INDEX text. *)
let manifest_text db =
  let manifest = Buffer.create 256 in
  List.iter
    (fun name ->
      let table = Catalog.find_exn db.catalog name in
      let schema = Table.schema table in
      let cols =
        List.map
          (fun c ->
            Printf.sprintf "%s %s%s" c.Schema.name
              (Value.dtype_name c.Schema.dtype)
              (if c.Schema.nullable then "" else " NOT NULL"))
          (Schema.columns schema)
      in
      Buffer.add_string manifest
        (Printf.sprintf "CREATE TABLE %s (%s);\n" name (String.concat ", " cols));
      List.iter
        (fun col ->
          Buffer.add_string manifest
            (Printf.sprintf "CREATE INDEX ON %s (%s);\n" name col))
        (Quill_storage.Index.Registry.declared db.indexes name))
    (Catalog.names db.catalog);
  Buffer.contents manifest

(* The full file set of one snapshot: manifest plus one CSV per table. *)
let snapshot_files db =
  ("_manifest.sql", manifest_text db)
  :: List.map
       (fun name -> (name ^ ".csv", Csv.to_string (Catalog.find_exn db.catalog name)))
       (Catalog.names db.catalog)

(* Write generation [n] (snapshot + fresh WAL) and flip CURRENT to it.
   The flip is the commit point: a crash anywhere before it leaves the
   previous generation (snapshot AND un-truncated WAL) authoritative. *)
let write_generation db dir n policy =
  let snap = Snapshot.snap_dir dir n in
  let tmp = snap ^ ".tmp" in
  Snapshot.write ~dir:tmp (snapshot_files db);
  let wal = Wal.create ~policy (Snapshot.wal_path dir n) in
  (try
     Sim_fs.rename tmp snap;
     Sim_fs.fsync_dir dir;
     Snapshot.set_current dir n
   with e ->
     Wal.close wal;
     raise e);
  wal

(* Take a checkpoint of a durable session: new generation, then the old
   one (including its WAL — the logical WAL truncation) is pruned.  On a
   shared store, commits are quiesced (commit lock held), the session's
   view is re-synced to the committed state so the snapshot captures
   exactly that, and the fresh WAL is installed in the store so every
   session's next commit appends to it. *)
let checkpoint_durable db d =
  Trace.with_span ~cat:"storage" "checkpoint" (fun () ->
      let rotate () =
        let n = 1 + List.fold_left max d.generation (Snapshot.generations d.dur_dir) in
        let wal = write_generation db d.dur_dir n (Wal.policy d.wal) in
        Wal.close d.wal;
        d.wal <- wal;
        d.generation <- n;
        Metrics.incr m_checkpoints;
        Snapshot.prune d.dur_dir ~keep:n
      in
      match db.shared with
      | None -> rotate ()
      | Some sh ->
          (match sh.txn with
          | Some _ -> raise (Error "checkpoint: a transaction is in progress")
          | None -> ());
          Store.locked sh.handle (fun () ->
              apply_snapshot db sh (Store.snapshot_unlocked sh.handle);
              rotate ();
              Store.set_wal sh.handle (Some d.wal)))

(* Statements that change durable state and therefore must be logged.
   SELECT and EXPLAIN read only. *)
let is_mutation = function
  | Ast.Select _ | Ast.Explain _ | Ast.Begin | Ast.Commit | Ast.Rollback -> false
  | Ast.Insert _ | Ast.Update _ | Ast.Delete _ | Ast.Copy _ | Ast.Create_table _
  | Ast.Create_table_as _ | Ast.Create_index _ | Ast.Drop_table _ ->
      true

(* The table names a statement writes (creates, drops or mutates) —
   the transaction's conflict footprint and copy-on-write set. *)
let write_targets = function
  | Ast.Insert (n, _, _) | Ast.Update (n, _, _) | Ast.Delete (n, _)
  | Ast.Copy (n, _) | Ast.Create_table (n, _) | Ast.Create_table_as (n, _)
  | Ast.Drop_table n | Ast.Create_index (n, _) ->
      [ n ]
  | Ast.Select _ | Ast.Explain _ | Ast.Begin | Ast.Commit | Ast.Rollback -> []

(* One statement's governor: per-call override beats the session default;
   the session cancel flag is always armed.  [observe_peak] records the
   peak-bytes histogram however the query ends.

   A budgeted statement (unless [set_spill] turned it off) also gets a
   per-query spill session so operators can degrade to disk instead of
   dying: rooted in the durable session's data directory when there is
   one, in the process tmpdir otherwise.  The session is torn down in the
   same [finally] that records the peak — spill files never outlive their
   statement (cancel, disconnect and abort all unwind through here), and
   the governor's abort detail is captured before its session dies. *)
let governed db ?timeout_ms ?budget_bytes f =
  let timeout_ms =
    match timeout_ms with Some _ as t -> t | None -> db.timeout_ms
  in
  let budget_bytes =
    match budget_bytes with Some _ as b -> b | None -> db.budget_bytes
  in
  let spill =
    match budget_bytes with
    | Some _ when db.spill_on ->
        let root =
          match db.durable with
          | Some d -> d.dur_dir
          | None -> Spill.default_root ()
        in
        Some (Spill.fresh_session root)
    | _ -> None
  in
  let gov = Governor.create ?timeout_ms ?budget_bytes ~cancel:db.cancel ?spill () in
  Fun.protect
    ~finally:(fun () ->
      Governor.observe_peak gov;
      (match Governor.abort_detail gov with
      | Some d -> db.last_abort <- Some d
      | None -> ());
      Option.iter Spill.cleanup spill)
    (fun () -> f gov budget_bytes)

(* --- Transactions ------------------------------------------------------ *)

(** [share db] publishes the database's current state as a shared MVCC
    store and returns the store handle; {!session} opens further
    independent sessions on it.  The calling database becomes the
    store's root session: it keeps its durable state (the store commits
    through its WAL) and is the only session that can {!checkpoint}.
    Idempotent — sharing twice returns the same handle. *)
let share db =
  match db.shared with
  | Some sh -> sh.handle
  | None ->
      let tables = List.map (Catalog.find_exn db.catalog) (Catalog.names db.catalog) in
      let index_defs = Index_reg.all_defs db.indexes in
      let wal = Option.map (fun d -> d.wal) db.durable in
      let store = Store.create ?wal ~tables ~index_defs () in
      db.shared <- Some { handle = store; view_ts = 0; txn = None };
      store

(** [session store] opens a new session on a shared store: its own
    catalog view, plan cache, engine defaults and governor settings,
    reading a consistent committed snapshot that re-syncs between
    statements.  Sessions are single-threaded; concurrency comes from
    one session per thread/connection. *)
let session store =
  let db = create () in
  let sh = { handle = store; view_ts = -1; txn = None } in
  db.shared <- Some sh;
  apply_snapshot db sh (Store.snapshot store);
  db

(** [in_transaction db] is true between BEGIN and COMMIT/ROLLBACK. *)
let in_transaction db =
  match db.shared with Some { txn = Some _; _ } -> true | _ -> false

(* A session doing transactional work without an explicit [share]
   becomes the root session of its own private store. *)
let ensure_shared db =
  ignore (share db);
  Option.get db.shared

(* Statements whose row writes the cow clone's tracker accounts for
   exactly: updated base chunks, appended rows, whole-table degradation
   on delete.  Everything else (DDL, drops, creates) is a structural
   write and conflicts with any other writer of the name. *)
let tracker_covers = function
  | Ast.Insert _ | Ast.Update _ | Ast.Delete _ | Ast.Copy _ -> true
  | _ -> false

(* Stage a mutation into an open transaction: copy-on-write every
   written table the first time it is touched (the private version —
   carrying a write-footprint tracker — goes into the session catalog,
   so execution below needs no special cases), extend the conflict
   footprint, and record the SQL for the WAL frame group.

   A name whose table does not exist and which the statement does not
   create is *not* staged: the statement is about to fail, and stamping
   the phantom name at commit would spuriously conflict other
   transactions.  Membership is a hashtable probe ({!Store.stage}), not
   the old O(n^2) list scan. *)
let stage_mutation db (txn : Store.txn) stmt sql =
  List.iter
    (fun name ->
      let existing = Catalog.find db.catalog name in
      let creates =
        match stmt with
        | Ast.Create_table _ | Ast.Create_table_as _ -> true
        | _ -> false
      in
      if existing <> None || creates then begin
        let first_touch = not (Hashtbl.mem txn.Store.writes name) in
        let fp = Store.stage txn name in
        if first_touch then
          Option.iter
            (fun tbl ->
              (* The store's chunk size, not the global default: chunk
                 stamps are keyed by index, so every tracker must share
                 the granularity fixed at store creation. *)
              let chunk_rows =
                match db.shared with
                | Some sh -> Store.chunk_rows sh.handle
                | None -> !Table.default_chunk_rows
              in
              let copy = Table.cow_copy_tracked ~chunk_rows tbl in
              fp.Store.ft_tracker <- Table.tracker copy;
              Catalog.put db.catalog copy)
            existing;
        if not (tracker_covers stmt) then fp.Store.ft_whole <- true
      end)
    (write_targets stmt);
  (match stmt with
  | Ast.Create_index _ | Ast.Drop_table _ -> txn.Store.index_ddl <- true
  | _ -> ());
  if is_mutation stmt then txn.Store.stmts <- String.trim sql :: txn.Store.stmts

(* Open a transaction and pin the session view to its snapshot. *)
let open_txn db (sh : shared_session) =
  let txn = Store.begin_txn sh.handle in
  if sh.view_ts <> txn.Store.snap.Store.ts then apply_snapshot db sh txn.Store.snap;
  sh.txn <- Some txn;
  txn

(* Discard a transaction.  If it wrote anything the session catalog
   holds private versions, so force the next sync to rebuild the view;
   otherwise the view still equals the pinned snapshot. *)
let abort_txn db (sh : shared_session) (txn : Store.txn) =
  Store.rollback txn;
  sh.txn <- None;
  if Store.has_writes txn then sh.view_ts <- -1;
  sync_view db

(* Publish a transaction through the store's commit protocol.  However
   the commit ends — success, [Conflict], or an I/O error from the WAL
   flush — the session must shed its private versions and re-sync: on
   any failure the transaction is dead, and even on success other
   sessions may have committed tables this one never touched.  (Before
   the catch-all, a failed COMMIT's io error left the private rows
   visible to the very session that was told the commit failed.) *)
let publish_txn db (sh : shared_session) (txn : Store.txn) =
  sh.txn <- None;
  let lookup name = Catalog.find db.catalog name in
  let index_defs =
    if txn.Store.index_ddl then Some (Index_reg.all_defs db.indexes) else None
  in
  let reset () =
    if Store.has_writes txn then sh.view_ts <- -1;
    sync_view db
  in
  match Store.commit sh.handle txn ~lookup ~index_defs with
  | _ts -> reset ()
  | exception e ->
      reset ();
      raise e

(* Auto-commit on a shared session: every mutation is its own implicit
   transaction.  First-committer-wins conflicts are retried on a fresh
   snapshot a few times (the statement re-executes against the new
   state) before surfacing to the caller. *)
let autocommit_retries = 3

let exec_autocommit db sh stmt sql =
  let rec go attempt =
    let txn = open_txn db sh in
    let result =
      try
        stage_mutation db txn stmt sql;
        exec_stmt db stmt
      with e ->
        abort_txn db sh txn;
        raise e
    in
    match publish_txn db sh txn with
    | () -> result
    | exception Conflict m ->
        if attempt >= autocommit_retries then raise (Conflict m) else go (attempt + 1)
  in
  let result = go 1 in
  (* COPY on the root durable session folds into a checkpoint at once,
     so recovery never re-reads the external file. *)
  (match (stmt, db.durable) with
  | Ast.Copy _, Some d -> checkpoint_durable db d
  | _ -> ());
  result

(** [begin_transaction db] opens an explicit snapshot-isolation
    transaction (SQL: [BEGIN]).  Reads see the pinned snapshot plus the
    transaction's own writes; nothing is visible to other sessions until
    {!commit_transaction}. *)
let begin_transaction db =
  wrap (fun () ->
      let sh = ensure_shared db in
      match sh.txn with
      | Some _ -> raise (Error "BEGIN: a transaction is already in progress")
      | None -> ignore (open_txn db sh))

(** [commit_transaction db] publishes the open transaction (SQL:
    [COMMIT]).  Raises {!Conflict} — after rolling the transaction
    back — if a concurrent committer won a table in the write set. *)
let commit_transaction db =
  wrap (fun () ->
      match db.shared with
      | Some sh -> (
          match sh.txn with
          | Some txn -> publish_txn db sh txn
          | None -> raise (Error "COMMIT: no transaction in progress"))
      | None -> raise (Error "COMMIT: no transaction in progress"))

(** [rollback_transaction db] discards the open transaction (SQL:
    [ROLLBACK]). *)
let rollback_transaction db =
  wrap (fun () ->
      match db.shared with
      | Some sh -> (
          match sh.txn with
          | Some txn -> abort_txn db sh txn
          | None -> raise (Error "ROLLBACK: no transaction in progress"))
      | None -> raise (Error "ROLLBACK: no transaction in progress"))

(** [query db ?params ?engine ?timeout_ms ?budget_bytes sql] runs a SELECT
    and returns the result table (uncached path).  [timeout_ms] and
    [budget_bytes] override the session defaults for this call. *)
let query db ?(params = [||]) ?engine ?timeout_ms ?budget_bytes sql =
  let engine = Option.value ~default:db.engine engine in
  Trace.with_span ~args:[ ("sql", sql); ("engine", engine_name engine) ] "query"
    (fun () ->
      wrap (fun () ->
          Metrics.incr m_queries;
          sync_view db;
          governed db ?timeout_ms ?budget_bytes (fun gov budget ->
              let result, dt =
                Quill_util.Timer.time (fun () ->
                    let pplan, subs, _ = plan_full db ~params ?budget_bytes:budget sql in
                    fill_subqueries db ~gov ~params subs;
                    rows_to_table pplan (run_engine db engine ~gov ~params pplan))
              in
              Metrics.observe h_query_seconds dt;
              result)))

(** [exec db sql] runs any statement; SELECTs return [Rows].  On a
    durable session every mutation is logged to the WAL before it is
    acknowledged: the statement frame is staged, applied in memory, and
    group-committed (statement + commit marker in one write, fsynced per
    the sync policy).  A statement that fails in memory is rolled back
    from the staging buffer and never reaches the log.  COPY triggers an
    immediate checkpoint so recovery never needs to re-read the external
    file. *)
let exec db ?(params = [||]) ?timeout_ms ?budget_bytes sql =
  wrap (fun () ->
      match Parser.parse sql with
      | Ast.Select _ -> Rows (query db ~params ?timeout_ms ?budget_bytes sql)
      | Ast.Begin ->
          begin_transaction db;
          Affected 0
      | Ast.Commit ->
          commit_transaction db;
          Affected 0
      | Ast.Rollback ->
          rollback_transaction db;
          Affected 0
      | stmt -> (
          sync_view db;
          match db.shared with
          | Some sh -> (
              match sh.txn with
              | Some txn -> (
                  (* Inside an explicit transaction every statement is
                     all-or-nothing at the transaction level: an error
                     rolls the whole transaction back (the copy-on-write
                     version may hold a partial application). *)
                  try
                    stage_mutation db txn stmt sql;
                    exec_stmt db stmt
                  with e ->
                    abort_txn db sh txn;
                    raise e)
              | None ->
                  if is_mutation stmt then exec_autocommit db sh stmt sql
                  else exec_stmt db stmt)
          | None -> (
              match db.durable with
              | Some d when is_mutation stmt ->
                  Wal.log_statement d.wal (String.trim sql);
                  let result =
                    try exec_stmt db stmt
                    with e ->
                      Wal.rollback d.wal;
                      raise e
                  in
                  Wal.commit d.wal;
                  (match stmt with Ast.Copy _ -> checkpoint_durable db d | _ -> ());
                  result
              | _ -> exec_stmt db stmt)))

(** [explain db ?analyze sql] renders the optimized plan; with
    [~analyze:true] also executes and reports estimated vs. actual rows. *)
let explain db ?(analyze = false) sql =
  wrap (fun () ->
      sync_view db;
      match Parser.parse sql with
      | Ast.Select sel -> (
          match exec_stmt db (Ast.Explain { analyze; query = sel }) with
          | Text s -> s
          | _ -> assert false)
      | _ -> raise (Error "explain: not a SELECT statement"))

(** [query_adaptive db ?params sql] is the managed-runtime path: plans are
    cached per (sql, parameter types); the first execution is profiled and
    may trigger feedback re-optimization; repeated executions tier up to
    the compiled engine per the session policy. *)
let query_adaptive db ?(params = [||]) ?timeout_ms ?budget_bytes sql =
  Trace.with_span ~args:[ ("sql", sql) ] "query-adaptive" @@ fun () ->
  wrap (fun () ->
      Metrics.incr m_queries;
      sync_view db;
      governed db ?timeout_ms ?budget_bytes @@ fun gov budget ->
      let param_types = param_types_of params in
      let version = Catalog.version db.catalog in
      match
        Plan_cache.find db.cache ~sql ~param_types ~params
          ~catalog_version:version
      with
      | Some entry ->
          Trace.instant "plan-cache-hit";
          fill_subqueries db ~gov ~params entry.Plan_cache.subs;
          let ctx =
            Exec_ctx.create ~params ~indexes:db.indexes ~governor:gov db.catalog
          in
          let rows, dt =
            Quill_util.Timer.time (fun () ->
                Trace.with_span ~cat:"exec" "execute" (fun () ->
                    Tiering.execute ~cache:db.cache ~policy:db.policy ~ctx entry))
          in
          Metrics.observe h_query_seconds dt;
          rows_to_table entry.Plan_cache.plan (Quill_util.Vec.to_array rows)
      | None ->
          let pplan, subs, classifier =
            plan_full db ~params ?budget_bytes:budget sql
          in
          fill_subqueries db ~gov ~params subs;
          (* The first execution is instrumented; estimation misses feed
             the feedback store and can trigger an immediate re-plan for
             subsequent executions. *)
          let profile = Profile.create pplan in
          let rows, elapsed =
            Quill_util.Timer.time (fun () ->
                run_engine db Vectorized ~profile ~gov ~params pplan)
          in
          let _ = Feedback.learn db.feedback db.catalog pplan profile in
          let cached_plan, cached_subs =
            if Feedback.should_reoptimize pplan profile then begin
              Trace.instant "re-optimize";
              let p, s, _ = plan_full db ~params ?budget_bytes:budget sql in
              (p, s)
            end
            else (pplan, subs)
          in
          let entry =
            Plan_cache.add db.cache ~sql ~param_types ~params ?classifier
              ~catalog_version:version ~subs:cached_subs cached_plan
          in
          entry.Plan_cache.runs <- 1;
          entry.Plan_cache.total_exec_time <- elapsed;
          Metrics.observe h_query_seconds elapsed;
          rows_to_table pplan rows)

(** [cache_stats db] returns (entries, total runs, compiled count) for
    observability. *)
let cache_stats db =
  let entries = ref 0 and runs = ref 0 and compiled = ref 0 in
  Hashtbl.iter
    (fun _ (e : Plan_cache.entry) ->
      incr entries;
      runs := !runs + e.Plan_cache.runs;
      if e.Plan_cache.compiled <> None then incr compiled)
    db.cache.Plan_cache.entries;
  (!entries, !runs, !compiled)

(* Cheap syntactic dispatch so the prepared path skips a full parse for
   the (dominant) SELECT case; anything else falls through to [exec],
   which parses properly. *)
let starts_with_select sql =
  let n = String.length sql in
  let rec skip i =
    if i < n && (sql.[i] = ' ' || sql.[i] = '\t' || sql.[i] = '\n' || sql.[i] = '\r')
    then skip (i + 1)
    else i
  in
  let i = skip 0 in
  n - i >= 6 && String.lowercase_ascii (String.sub sql i 6) = "select"

(** [exec_prepared db ?params sql] is the prepared-statement execution
    path: SELECTs go through the adaptive plan cache (band-aware cached
    plans, profiling, tier-up), everything else behaves like [exec].
    This is what the server and the traffic driver use per execution. *)
let exec_prepared db ?(params = [||]) ?timeout_ms ?budget_bytes sql =
  if starts_with_select sql then
    Rows (query_adaptive db ~params ?timeout_ms ?budget_bytes sql)
  else exec db ~params ?timeout_ms ?budget_bytes sql

(** [set_plan_cache_budget db bytes] bounds the estimated memory of
    cached plans; least-recently-used entries are evicted immediately if
    the cache is over the new budget. *)
let set_plan_cache_budget db bytes = Plan_cache.set_budget db.cache bytes

(** [set_plan_cache_capacity db n] bounds the number of cached plans. *)
let set_plan_cache_capacity db n = Plan_cache.set_capacity db.cache n

(* --- Observability ----------------------------------------------------- *)

(** [set_tracing on] turns the process-wide query-lifecycle span tracer
    on or off.  Turning it on starts a fresh trace. *)
let set_tracing on = Trace.set_enabled on

(** [tracing ()] is true while spans are being recorded. *)
let tracing () = Trace.enabled ()

(** [clear_trace ()] drops recorded spans and restarts the trace epoch. *)
let clear_trace () = Trace.clear ()

(** [trace_json ()] exports recorded spans as Chrome trace-event JSON. *)
let trace_json () = Trace.to_chrome_json ()

(** [metrics_text ()] renders the process-wide metrics registry. *)
let metrics_text () = Metrics.render ()

(* --- Persistence ------------------------------------------------------- *)

(** [save db dir] writes the database to directory [dir]: one CSV file per
    table plus a [_manifest.sql] of CREATE TABLE / CREATE INDEX statements
    that [load] replays.  Every file is written atomically (tmp + fsync +
    rename) and a [_checksums] manifest records each file's CRC32, so a
    crash or full disk mid-save can never corrupt an existing directory:
    readers see either the old file or the new one, and {!load} verifies
    the checksums before trusting anything. *)
let save db dir = wrap (fun () -> Snapshot.write ~dir (snapshot_files db))

(* Read a snapshot-layout directory (manifest + CSVs [+ checksums]) into
   a fresh database.  Raises [Error] naming the precise missing or
   corrupt file; shared by [load] and durable recovery. *)
let load_dir dir =
  Snapshot.verify ~dir;
  let db = create () in
  let manifest_path = Filename.concat dir "_manifest.sql" in
  let manifest =
    match Sim_fs.read_file manifest_path with
    | Some s -> s
    | None -> raise (Error (Printf.sprintf "load: missing manifest file %s" manifest_path))
  in
  String.split_on_char ';' manifest
  |> List.iter (fun stmt ->
         let stmt = String.trim stmt in
         if stmt <> "" then ignore (exec db stmt));
  List.iter
    (fun name ->
      let path = Filename.concat dir (name ^ ".csv") in
      match Sim_fs.read_file path with
      | None ->
          raise
            (Error (Printf.sprintf "load: missing file %s (table %s)" path name))
      | Some text ->
          let table = Catalog.find_exn db.catalog name in
          let rows = Csv.rows_of_string ~schema:(Table.schema table) ~src:path text in
          Table.insert_all table rows;
          Catalog.bump db.catalog)
    (Catalog.names db.catalog);
  db

(** [load dir] reads a database previously written by {!save}, verifying
    file checksums.  Missing or corrupt files raise {!Error} naming the
    file (never a bare [Sys_error]). *)
let load dir =
  wrap (fun () ->
      if not (Sys.file_exists dir) then
        raise (Error (Printf.sprintf "load: no such directory %s" dir));
      load_dir dir)

(* --- Durable sessions -------------------------------------------------- *)

(** What {!open_durable} recovered. *)
type recovery_report = {
  generation : int;  (** the snapshot generation recovery started from *)
  replayed : int;  (** committed WAL statements re-applied on top of it *)
  dropped : int;  (** uncommitted or torn-tail statements discarded *)
  torn : bool;  (** the WAL scan stopped early (torn frame, bad CRC, replay error) *)
  note : string option;  (** human-readable detail on where/why it stopped *)
}

(** [checkpoint db] snapshots a durable session into a new generation
    (checksummed, atomic) and truncates the WAL: [snap-<n+1>] and an
    empty [wal-<n+1>] are written, [CURRENT] flips atomically, and the
    old generation is pruned.  A crash at any point leaves the previous
    generation fully authoritative. *)
let checkpoint db =
  wrap (fun () ->
      match db.durable with
      | None -> raise (Error "checkpoint: not a durable session (use open_durable)")
      | Some d -> checkpoint_durable db d)

(** [open_durable ?policy dir] opens (or creates) a crash-safe database
    rooted at [dir] and returns it with a report of what recovery found:
    the CURRENT snapshot generation is verified and loaded, then the
    generation's WAL is replayed — committed statements only, stopping at
    the first torn or corrupt record — and if the WAL held anything (or
    was damaged) a fresh checkpoint re-bases the directory.  Subsequent
    mutations are write-ahead logged with sync policy [policy] (default
    {!On_commit}). *)
let open_durable ?(policy = Wal.On_commit) dir =
  wrap (fun () ->
      Metrics.incr m_recoveries;
      Trace.with_span ~cat:"storage" ~args:[ ("dir", dir) ] "recovery" (fun () ->
          if not (Sys.file_exists dir) then Sim_fs.mkdir dir;
          (* Spill files are per-statement scratch; any found here were
             orphaned by a crash mid-spill.  Remove them before recovery
             proper. *)
          let stray = Spill.prune_orphans dir in
          if stray > 0 then
            Trace.instant ~cat:"storage" "spill-pruned"
              ~args:[ ("sessions", string_of_int stray) ];
          match Snapshot.current dir with
          | None ->
              (* Fresh (or pre-durability) directory: generation 0 is an
                 empty database. *)
              Snapshot.prune dir ~keep:(-1);
              let db = create () in
              let wal = write_generation db dir 0 policy in
              db.durable <- Some { dur_dir = dir; generation = 0; wal };
              (db, { generation = 0; replayed = 0; dropped = 0; torn = false; note = None })
          | Some n ->
              let db = load_dir (Snapshot.snap_dir dir n) in
              let wr = Wal.replay (Snapshot.wal_path dir n) in
              let replayed = ref 0 and replay_note = ref None in
              let describe = function
                | Wal.Stmt sql -> sql
                | Wal.Patch { table; _ } -> Printf.sprintf "patch for table %s" table
              in
              (try
                 List.iter
                   (fun entry ->
                     (try
                        match entry with
                        | Wal.Stmt sql -> ignore (exec db sql)
                        | Wal.Patch { table; data } -> (
                            match Catalog.find db.catalog table with
                            | None ->
                                failwith
                                  (Printf.sprintf "patch targets unknown table %s" table)
                            | Some tbl ->
                                Csv.apply_patch tbl data;
                                (* Patches bypass the DML paths, so bump the
                                   catalog version by hand to invalidate any
                                   lazily-built secondary indexes. *)
                                Catalog.bump db.catalog)
                      with e ->
                        replay_note :=
                          Some
                            (Printf.sprintf "replay stopped at entry %d (%s): %s"
                               (!replayed + 1) (describe entry) (Printexc.to_string e));
                        raise Exit);
                     incr replayed)
                   wr.Wal.entries
               with Exit -> ());
              let dropped =
                wr.Wal.dropped + (List.length wr.Wal.entries - !replayed)
              in
              let torn = wr.Wal.torn || !replay_note <> None in
              let note =
                match (!replay_note, wr.Wal.detail) with
                | Some m, _ -> Some m
                | None, d -> d
              in
              Metrics.add m_recovered !replayed;
              Metrics.add m_dropped dropped;
              Trace.instant ~cat:"storage" "recovered"
                ~args:
                  [ ("generation", string_of_int n);
                    ("replayed", string_of_int !replayed);
                    ("dropped", string_of_int dropped) ];
              let wal = Wal.open_append ~policy (Snapshot.wal_path dir n) in
              let d = { dur_dir = dir; generation = n; wal } in
              db.durable <- Some d;
              (* Re-base whenever the WAL held anything: replayed work is
                 folded into a fresh snapshot and a damaged tail is
                 discarded for good (appending after it would be lost to
                 the next recovery's stop-at-first-tear scan). *)
              if !replayed > 0 || dropped > 0 || torn then checkpoint_durable db d
              else Snapshot.prune dir ~keep:n;
              (db, { generation = n; replayed = !replayed; dropped; torn; note })))

(** [durable_dir db] is the root directory of a durable session. *)
let durable_dir db =
  match db.durable with Some d -> Some d.dur_dir | None -> None

(** Status of a durable session, for shells and tests. *)
type wal_status = {
  ws_dir : string;
  ws_generation : int;
  ws_policy : sync_policy;
  ws_appended : int;  (** statements committed to the WAL by this handle *)
}

(** [wal_status db] describes the session's WAL ([None] when the session
    is purely in-memory). *)
let wal_status db =
  match db.durable with
  | None -> None
  | Some d ->
      Some
        { ws_dir = d.dur_dir; ws_generation = d.generation;
          ws_policy = Wal.policy d.wal; ws_appended = Wal.appended d.wal }

(** [set_sync_policy db p] changes when WAL commits are fsynced:
    {!Never} (OS decides), {!On_commit} (every commit, the default), or
    {!Every}[ n] (batched).  Errors on a non-durable session. *)
let set_sync_policy db p =
  match db.durable with
  | None -> raise (Error "set_sync_policy: not a durable session")
  | Some d -> Wal.set_policy d.wal p

(** [wal_sync db] forces the session's WAL to stable storage now. *)
let wal_sync db =
  wrap (fun () ->
      match db.durable with
      | None -> raise (Error "wal_sync: not a durable session")
      | Some d -> Wal.sync d.wal)
