(** The Quill public API.

    A {!t} bundles the catalog, statistics, UDF registry, secondary-index
    registry, plan cache and feedback store.  {!query} runs one statement
    through the full pipeline (parse -> bind -> rewrite -> reorder -> pick
    algorithms -> execute) on a chosen engine; {!query_adaptive} adds the
    managed-runtime behaviours: plan caching, profile-driven
    re-optimization and tiered compilation. *)

(** Raised for every user-facing failure (parse, bind, runtime), with a
    prefixed message such as ["parse error: ..."]. *)
exception Error of string

(** Why the resource governor stopped a query. *)
type abort_reason = Quill_exec.Governor.abort_reason =
  | Timeout  (** the deadline set by [?timeout_ms] / {!set_timeout} passed *)
  | Cancelled  (** {!cancel} was called while the query ran *)
  | Resource_exhausted  (** the memory budget was exceeded *)

(** Raised (instead of {!Error}) when the governor aborts a query.  The
    session stays fully usable: the abort unwinds cooperatively at
    batch/morsel boundaries in all three engines, the shared worker pool
    stays healthy, and the next statement runs normally. *)
exception Aborted of abort_reason

(** [abort_reason_name r] is ["timeout"], ["cancelled"] or
    ["resource exhausted"]. *)
val abort_reason_name : abort_reason -> string

(** The three execution engines. They share one runtime algorithm library
    and return identical results; they differ in architecture:
    tuple-at-a-time interpretation, batch-at-a-time interpretation, and
    staged compilation to fused closures. *)
type engine = Volcano | Vectorized | Compiled

(** [engine_name e] is ["volcano"], ["vectorized"] or ["compiled"]. *)
val engine_name : engine -> string

(** A database session. *)
type t

(** Result of {!exec}: rows for SELECT, an affected-row count for DML/DDL,
    text for EXPLAIN. *)
type result =
  | Rows of Quill_storage.Table.t
  | Affected of int
  | Text of string

(** [create ()] returns a fresh in-memory database with built-in scalar
    functions, the compiled engine as default and the standard tiering
    policy. *)
val create : unit -> t

(** [catalog db] exposes the catalog, e.g. for bulk loading tables built
    with {!Quill_storage.Table}. *)
val catalog : t -> Quill_storage.Catalog.t

(** [set_engine db e] changes the default engine used by {!query}. *)
val set_engine : t -> engine -> unit

(** [set_policy db p] changes the tiering policy used by
    {!query_adaptive}. *)
val set_policy : t -> Quill_adaptive.Tiering.policy -> unit

(** [set_options db o] overrides the algorithm picker (force a join or
    aggregation algorithm, force a scan layout, toggle top-k fusion, join
    reordering or index paths) — used by benchmarks and ablations. *)
val set_options : t -> Quill_optimizer.Picker.options -> unit

(** [set_timeout db ms] sets the session's default query deadline in
    milliseconds ([None] = no deadline).  Every governed statement gets a
    fresh deadline when it starts; on expiry it raises {!Aborted}
    [Timeout].  Overridable per call via [?timeout_ms]. *)
val set_timeout : t -> int option -> unit

(** [timeout_ms db] is the session's default deadline, if any. *)
val timeout_ms : t -> int option

(** [set_budget db bytes] sets the session's default per-query memory
    budget ([None] = unlimited).  Allocating operators (hash-join builds,
    group tables, sort and top-k buffers, materialized results) charge
    coarse byte estimates against it; exceeding it raises {!Aborted}
    [Resource_exhausted].  The budget is also visible to the picker, which
    cost-penalizes algorithms whose working set would not fit (e.g.
    preferring merge-join over hash-join).  Overridable per call via
    [?budget_bytes]. *)
val set_budget : t -> int option -> unit

(** [budget_bytes db] is the session's default memory budget, if any. *)
val budget_bytes : t -> int option

(** [set_spill db on] enables or disables out-of-core execution for
    budgeted queries (default on).  When on, a budgeted statement gets a
    per-query spill session: hash-join builds Grace-partition to disk,
    group tables dump sorted runs, and sorts go external instead of
    raising {!Aborted} [Resource_exhausted] — the abort only fires when
    the working set exceeds the budget even with spilling (e.g. one
    pathological key).  When off, exceeding the budget is a hard kill,
    byte-for-byte the pre-spill behavior.  Spill files live under the
    durable session's data directory (or the process tmpdir) and are
    removed when the statement ends, however it ends. *)
val set_spill : t -> bool -> unit

(** [spill_enabled db] is whether budgeted queries may spill. *)
val spill_enabled : t -> bool

(** [last_abort_detail db] is the rich account of the most recent
    governor abort in this session: the reason, and for budget kills also
    peak bytes charged, the budget, and what spilling did (or that it was
    disabled).  [None] until a governed statement aborts. *)
val last_abort_detail : t -> string option

(** [cancel db] asks the currently running query to abort with {!Aborted}
    [Cancelled] at its next governor check.  Safe to call from another
    domain while a query runs; if no query is running, the next governed
    statement consumes the flag. *)
val cancel : t -> unit

(** [set_parallelism db n] sets the session's parallel-execution goal.
    Morsel-parallel operators (columnar scan/filter, hash aggregation,
    hash-join probe, the fused scan->aggregate loop) use up to [n] domains
    from the shared worker pool, and the picker divides parallelizable CPU
    cost terms by [n].  [n] is clamped to [1, 256]; 1 (the default)
    restores fully serial, bit-deterministic execution.  Note that
    parallel aggregation reorders float additions, so SUM/AVG over floats
    may differ in the last bits from serial runs.  The initial goal is 1
    unless the QUILL_DOMAINS environment variable pins it; the worker pool
    itself is process-wide and shared by all sessions. *)
val set_parallelism : t -> int -> unit

(** [close db] releases session resources: joins the shared worker pool's
    domains (a later parallel query, from any session, re-spawns them
    lazily).  Safe to call repeatedly. *)
val close : t -> unit

(** [register_udf db ~name ~args ~ret f] registers a scalar function
    usable in any SQL expression.  It participates in binding,
    optimization, compilation and fusion exactly like a built-in.
    Overloads are allowed; INT arguments widen to FLOAT parameters. *)
val register_udf :
  t ->
  name:string ->
  args:Quill_storage.Value.dtype list ->
  ret:Quill_storage.Value.dtype ->
  (Quill_storage.Value.t array -> Quill_storage.Value.t) ->
  unit

(** [analyze db table] (re)collects optimizer statistics — row counts,
    NDVs, min/max, equi-depth histograms — for [table]. Statistics are
    otherwise collected lazily on first use. *)
val analyze : t -> string -> unit

(** [plan db ?params sql] parses and optimizes a SELECT, returning the
    physical plan the picker chose (useful for inspection; subquery
    materialization plans are handled internally by {!query}). *)
val plan :
  t -> ?params:Quill_storage.Value.t array -> string -> Quill_optimizer.Physical.t

(** [query db ?params ?engine ?timeout_ms ?budget_bytes sql] runs a SELECT
    and returns the result table. [params] supplies values for [$1], [$2],
    ... (their dtypes type the parameters).  [timeout_ms] and
    [budget_bytes] override the session's governor defaults for this call
    (see {!set_timeout} and {!set_budget}). *)
val query :
  t ->
  ?params:Quill_storage.Value.t array ->
  ?engine:engine ->
  ?timeout_ms:int ->
  ?budget_bytes:int ->
  string ->
  Quill_storage.Table.t

(** [exec db ?params sql] runs any statement: CREATE TABLE/INDEX, INSERT,
    UPDATE, DELETE, DROP, COPY, EXPLAIN [ANALYZE], or SELECT.  The
    governor overrides apply to SELECTs. *)
val exec :
  t ->
  ?params:Quill_storage.Value.t array ->
  ?timeout_ms:int ->
  ?budget_bytes:int ->
  string ->
  result

(** [explain db ?analyze sql] renders the optimized physical plan with the
    picker's row/cost estimates; with [~analyze:true] the query also runs
    (instrumented) and estimated vs. actual rows are appended. *)
val explain : t -> ?analyze:bool -> string -> string

(** [query_adaptive db ?params sql] is the managed-runtime path: plans are
    cached per (sql, parameter dtypes); the first execution is profiled
    and can trigger feedback re-optimization; repeated executions tier up
    to the compiled engine per the session policy. *)
val query_adaptive :
  t ->
  ?params:Quill_storage.Value.t array ->
  ?timeout_ms:int ->
  ?budget_bytes:int ->
  string ->
  Quill_storage.Table.t

(** [exec_prepared db ?params sql] is the prepared-statement execution
    path: SELECTs go through {!query_adaptive} (the band-aware plan
    cache), everything else behaves like {!exec}.  The server's
    execute-prepared frames and the traffic driver use this per
    execution. *)
val exec_prepared :
  t ->
  ?params:Quill_storage.Value.t array ->
  ?timeout_ms:int ->
  ?budget_bytes:int ->
  string ->
  result

(** [cache_stats db] returns [(entries, total runs, compiled entries)] of
    the plan cache, for observability. *)
val cache_stats : t -> int * int * int

(** [set_plan_cache_budget db bytes] bounds the estimated memory of this
    session's cached plans; least-recently-used entries (across all
    queries and band variants) are evicted when the cache goes over. *)
val set_plan_cache_budget : t -> int -> unit

(** [set_plan_cache_capacity db n] bounds the number of cached plans. *)
val set_plan_cache_capacity : t -> int -> unit

(** {1 Transactions and shared stores}

    Multi-session concurrency is snapshot-isolation MVCC: a {e shared
    store} holds the committed table versions (immutable), each session
    reads a pinned consistent snapshot (readers never block behind
    writers), writers copy-on-write private versions, and commits are
    first-committer-wins at {e row/chunk granularity}: transactions
    updating disjoint row ranges of the same table all commit (the
    store merges their chunks at install time), concurrent appenders
    never conflict, and only overlapping row chunks — or a collision
    with a whole-table write such as a delete or DDL — roll the loser
    back with {!Conflict}.  The commit path is hash-sharded across lock
    stripes so commits touching disjoint tables proceed in parallel.
    SQL [BEGIN] / [COMMIT] / [ROLLBACK] map to
    {!begin_transaction} / {!commit_transaction} /
    {!rollback_transaction}; mutations outside an explicit transaction
    auto-commit as implicit single-statement transactions (retried a few
    times on conflict).  On a durable root session, commits group-commit
    their whole WAL frame set atomically, so recovery replays exactly
    the committed transactions; a commit whose fsync fails is revoked in
    the WAL before the error reaches the client, so a transaction the
    client saw fail never reappears after recovery. *)

(** A shared MVCC store that multiple sessions commit through. *)
type store = Quill_txn.Store.t

(** Raised when {!commit_transaction} (or an auto-committed statement
    after retries) loses a first-committer-wins conflict.  The
    transaction has already been rolled back; the session stays usable. *)
exception Conflict of string

(** [share db] publishes the database's current state as a shared store
    and returns its handle; the calling database becomes the store's
    root session (it keeps durability and {!checkpoint} rights).
    Idempotent. *)
val share : t -> store

(** [session store] opens an independent session on a shared store: own
    catalog view, plan cache and governor settings, one consistent
    committed snapshot per statement (or per transaction).  Sessions are
    single-threaded; use one per thread or connection. *)
val session : store -> t

(** [begin_transaction db] opens an explicit transaction (SQL [BEGIN]).
    Reads see the pinned snapshot plus the transaction's own writes.  A
    database that never called {!share} gets a private store on first
    use. *)
val begin_transaction : t -> unit

(** [commit_transaction db] publishes the open transaction (SQL
    [COMMIT]); raises {!Conflict} after rolling back if a concurrent
    committer won a table in the write set. *)
val commit_transaction : t -> unit

(** [rollback_transaction db] discards the open transaction (SQL
    [ROLLBACK]). *)
val rollback_transaction : t -> unit

(** [in_transaction db] is true between [BEGIN] and [COMMIT]/[ROLLBACK]. *)
val in_transaction : t -> bool

(** [set_tracing on] turns the process-wide query-lifecycle span tracer on
    or off.  Spans cover parse, bind, rewrite, join-order, pick, codegen
    and execute; when off the instrumentation is a single flag check.
    Turning it on starts a fresh trace. *)
val set_tracing : bool -> unit

(** [tracing ()] is true while spans are being recorded. *)
val tracing : unit -> bool

(** [clear_trace ()] drops all recorded spans and restarts the trace
    epoch. *)
val clear_trace : unit -> unit

(** [trace_json ()] exports the recorded spans as a Chrome trace-event
    JSON array (loadable in chrome://tracing, Perfetto or speedscope). *)
val trace_json : unit -> string

(** [metrics_text ()] renders the process-wide metrics registry (query
    counts and latencies, batches, morsels, plan-cache traffic, tier-ups,
    re-optimizations, codegen time) as an ASCII table. *)
val metrics_text : unit -> string

(** [save db dir] persists every table (CSV) plus a DDL manifest (schemas
    and index definitions) into directory [dir], creating it if needed.
    Every file is written atomically (tmp + fsync + rename) under a CRC32
    [_checksums] manifest, so an interrupted save never corrupts an
    existing directory. *)
val save : t -> string -> unit

(** [load dir] reconstructs a database written by {!save}, verifying the
    checksum manifest first.  A missing directory, manifest or table file
    — or a checksum mismatch — raises {!Error} naming the file, never a
    bare [Sys_error]. *)
val load : string -> t

(** {1 Crash-safe durability}

    A {e durable} session pairs the in-memory database with an on-disk
    directory of {e generations}: checksummed snapshot [snap-<n>/] plus
    write-ahead log [wal-<n>], with a [CURRENT] file naming the live
    pair.  Every mutation (DML and DDL) is appended to the WAL as a
    CRC32-checksummed, length-prefixed frame and group-committed before
    it is acknowledged; {!checkpoint} folds the log into a fresh
    snapshot and truncates it.  {!open_durable} recovers after a crash
    by loading the CURRENT snapshot and replaying the committed WAL
    prefix, stopping at the first torn or corrupt record. *)

(** When WAL commits are forced to stable storage. *)
type sync_policy = Quill_storage.Wal.sync_policy =
  | Never  (** never fsync; the OS decides (fastest, weakest) *)
  | On_commit  (** fsync every commit — full durability (default) *)
  | Every of int  (** fsync once per [n] commits *)

(** What {!open_durable} recovered. *)
type recovery_report = {
  generation : int;  (** the snapshot generation recovery started from *)
  replayed : int;  (** committed WAL statements re-applied on top of it *)
  dropped : int;  (** uncommitted or torn-tail statements discarded *)
  torn : bool;  (** the WAL scan stopped early (torn frame, bad CRC, replay error) *)
  note : string option;  (** human-readable detail on where/why it stopped *)
}

(** [open_durable ?policy dir] opens (or creates) a crash-safe database
    rooted at [dir]: verifies and loads the CURRENT snapshot, replays the
    committed WAL prefix (never a partial statement), re-bases into a
    fresh checkpoint when the log held anything, and returns the session
    with a {!recovery_report} of what was recovered vs. dropped.
    Mutations on the returned session are write-ahead logged with sync
    policy [policy] (default {!On_commit}). *)
val open_durable : ?policy:sync_policy -> string -> t * recovery_report

(** [checkpoint db] snapshots a durable session into a new generation and
    truncates the WAL.  The generation flip ([CURRENT] rename) is atomic:
    a crash mid-checkpoint leaves the previous snapshot + WAL fully
    authoritative.  Errors on a non-durable session. *)
val checkpoint : t -> unit

(** [durable_dir db] is the root directory of a durable session, if any. *)
val durable_dir : t -> string option

(** Status of a durable session's WAL. *)
type wal_status = {
  ws_dir : string;
  ws_generation : int;
  ws_policy : sync_policy;
  ws_appended : int;  (** statements committed to the WAL by this handle *)
}

(** [wal_status db] describes the session's WAL ([None] for a purely
    in-memory session). *)
val wal_status : t -> wal_status option

(** [set_sync_policy db p] changes the WAL fsync policy of a durable
    session. *)
val set_sync_policy : t -> sync_policy -> unit

(** [wal_sync db] forces the WAL to stable storage now, regardless of
    policy. *)
val wal_sync : t -> unit
