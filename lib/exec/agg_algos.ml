(* The aggregation algorithm library: hash and sort-based grouping.

   Aggregate state supports COUNT/SUM/AVG/MIN/MAX with optional DISTINCT.
   SQL semantics: NULL inputs are ignored by all aggregates except
   COUNT star; SUM/AVG/MIN/MAX over zero non-null inputs yield NULL; a
   global aggregate (no keys) over an empty input still emits one row. *)

module Value = Quill_storage.Value
module Lplan = Quill_plan.Lplan
module Vec = Quill_util.Vec

type spec = {
  kind : Lplan.agg_kind;
  arg : (Value.t array -> Value.t) option;  (** evaluated argument; None = star *)
  distinct : bool;
  out_dtype : Value.dtype;
}

type state = {
  mutable count : int;
  mutable sum_i : int;
  mutable sum_f : float;
  mutable saw_float : bool;
  mutable non_null : int;
  mutable min_v : Value.t;
  mutable max_v : Value.t;
  seen : (Value.t, unit) Hashtbl.t option;  (** DISTINCT dedup *)
}

let new_state spec =
  {
    count = 0;
    sum_i = 0;
    sum_f = 0.0;
    saw_float = false;
    non_null = 0;
    min_v = Value.Null;
    max_v = Value.Null;
    seen = (if spec.distinct then Some (Hashtbl.create 16) else None);
  }

let feed spec st (row : Value.t array) =
  st.count <- st.count + 1;
  match spec.arg with
  | None -> st.non_null <- st.non_null + 1 (* COUNT star counts all rows *)
  | Some eval -> (
      let v = eval row in
      if not (Value.is_null v) then begin
        let fresh =
          match st.seen with
          | None -> true
          | Some tbl ->
              if Hashtbl.mem tbl v then false
              else begin
                Hashtbl.add tbl v ();
                true
              end
        in
        if fresh then begin
          st.non_null <- st.non_null + 1;
          (match v with
          | Value.Int i -> st.sum_i <- st.sum_i + i
          | Value.Float f ->
              st.saw_float <- true;
              st.sum_f <- st.sum_f +. f
          | _ -> ());
          if Value.is_null st.min_v || Value.compare v st.min_v < 0 then st.min_v <- v;
          if Value.is_null st.max_v || Value.compare v st.max_v > 0 then st.max_v <- v
        end
      end)

(** [merge_state spec dst src] folds the partial aggregate [src] into
    [dst] — the combine step of parallel aggregation, where each worker
    feeds a private state and partials merge at the end.  Merging is only
    defined for non-DISTINCT aggregates: a DISTINCT state's dedup table is
    scoped to the rows one worker saw, so merged counts would double-count
    values seen by several workers. *)
let merge_state spec dst src =
  if spec.distinct || dst.seen <> None || src.seen <> None then
    invalid_arg "Agg_algos.merge_state: DISTINCT states cannot be merged";
  dst.count <- dst.count + src.count;
  dst.sum_i <- dst.sum_i + src.sum_i;
  dst.sum_f <- dst.sum_f +. src.sum_f;
  dst.saw_float <- dst.saw_float || src.saw_float;
  dst.non_null <- dst.non_null + src.non_null;
  (* min/max: Null means "no non-null input yet" on either side. *)
  if
    (not (Value.is_null src.min_v))
    && (Value.is_null dst.min_v || Value.compare src.min_v dst.min_v < 0)
  then dst.min_v <- src.min_v;
  if
    (not (Value.is_null src.max_v))
    && (Value.is_null dst.max_v || Value.compare src.max_v dst.max_v > 0)
  then dst.max_v <- src.max_v

let finish spec st =
  match spec.kind with
  | Lplan.Count -> Value.Int st.non_null
  | Lplan.Sum ->
      if st.non_null = 0 then Value.Null
      else if spec.out_dtype = Value.Float_t then
        Value.Float (st.sum_f +. Float.of_int st.sum_i)
      else Value.Int st.sum_i
  | Lplan.Avg ->
      if st.non_null = 0 then Value.Null
      else Value.Float ((st.sum_f +. Float.of_int st.sum_i) /. Float.of_int st.non_null)
  | Lplan.Min -> st.min_v
  | Lplan.Max -> st.max_v

type input = Value.t array array

let output_row keys_vals states specs =
  Array.append (Array.of_list keys_vals)
    (Array.of_list (List.map2 finish specs states))

(* Estimated heap bytes of one fresh group: table slot + boxed key values
   + one state record per aggregate. *)
let group_bytes k nspecs =
  List.fold_left (fun acc v -> acc + Governor.value_bytes v) (48 + (96 * nspecs)) k

(* One upsert into a group table: find-or-create the key's states and feed
   the row.  [order] records first-seen key order for emission.  [gov] is
   ticked per row and charged per fresh group, which is how a budget
   bounds a high-cardinality GROUP BY before its table grows unbounded. *)
let upsert ?(gov = Governor.none) ~keys ~specs
    (groups : (Value.t list, state list) Hashtbl.t) order row =
  Governor.tick gov;
  let k = List.map (fun f -> f row) keys in
  let states =
    match Hashtbl.find_opt groups k with
    | Some s -> s
    | None ->
        Governor.charge gov (group_bytes k (List.length specs));
        let s = List.map new_state specs in
        Hashtbl.add groups k s;
        Vec.push order k;
        s
  in
  List.iter2 (fun spec st -> feed spec st row) specs states

let emit_groups ~keys ~specs (groups : (Value.t list, state list) Hashtbl.t) order =
  let out = Vec.create ~dummy:[||] in
  if keys = [] && Vec.length order = 0 then
    Vec.push out (output_row [] (List.map new_state specs) specs)
  else
    Vec.iter
      (fun k -> Vec.push out (output_row k (Hashtbl.find groups k) specs))
      order;
  out

(** [hash_agg ~keys ~specs rows] groups by hashing the evaluated key
    values. [keys] evaluate a row to one grouping value each.  With no
    keys, always emits exactly one (global) row. *)
let hash_agg ?gov ~(keys : (Value.t array -> Value.t) list) ~specs (rows : input) =
  let groups : (Value.t list, state list) Hashtbl.t = Hashtbl.create 64 in
  let order = Vec.create ~dummy:[] in
  Array.iter (upsert ?gov ~keys ~specs groups order) rows;
  emit_groups ~keys ~specs groups order

(** [merge_group_tables ~specs (g, o) (g2, o2)] folds the partial group
    table [(g2, o2)] into [(g, o)]: shared keys merge state-wise with
    {!merge_state}, unseen keys move over and append to [o]'s first-seen
    order.  The combine step of parallel grouped aggregation. *)
let merge_group_tables ~specs
    (((g, o) : (Value.t list, state list) Hashtbl.t * Value.t list Vec.t)) (g2, o2) =
  Vec.iter
    (fun k ->
      let s2 = Hashtbl.find g2 k in
      match Hashtbl.find_opt g k with
      | Some s ->
          List.iter2
            (fun (spec, st) st2 -> merge_state spec st st2)
            (List.combine specs s) s2
      | None ->
          Hashtbl.add g k s2;
          Vec.push o k)
    o2

(** [par_hash_agg ~workers ~keys ~specs rows] is {!hash_agg} with the feed
    loop morsel-parallelized: each worker upserts the row morsels it wins
    into a private table; partials merge group-wise with {!merge_state}.
    Key and argument closures must be pure (they run on pool domains).
    DISTINCT states cannot be merged, so those fall back to the serial
    path — as does everything else when [workers] is 1.  Group emission
    order is first-seen order of the merged table, which under parallelism
    depends on morsel scheduling: unordered, as SQL grouping output is. *)
let par_hash_agg ?gov ~workers ~(keys : (Value.t array -> Value.t) list) ~specs
    (rows : input) =
  if List.exists (fun s -> s.distinct) specs then hash_agg ?gov ~keys ~specs rows
  else begin
    let groups, order =
      Quill_parallel.Driver.fold ~workers ~n:(Array.length rows)
        ~init:(fun () ->
          ( (Hashtbl.create 64 : (Value.t list, state list) Hashtbl.t),
            Vec.create ~dummy:([] : Value.t list) ))
        ~range:(fun (g, o) lo hi ->
          for i = lo to hi - 1 do
            upsert ?gov ~keys ~specs g o rows.(i)
          done)
        ~merge:(merge_group_tables ~specs)
    in
    emit_groups ~keys ~specs groups order
  end

(** [sort_agg ~keys ~specs rows] sorts rows by their key values and folds
    consecutive runs; produces groups in key order. *)
let sort_agg ?(gov = Governor.none) ~(keys : (Value.t array -> Value.t) list) ~specs
    (rows : input) =
  if keys = [] then hash_agg ~gov ~keys ~specs rows
  else begin
    (* Materialize (key values, row) pairs and sort on the keys. *)
    let nk = List.length keys in
    let pairs =
      Array.map
        (fun row ->
          Governor.tick gov;
          let k = Array.of_list (List.map (fun f -> f row) keys) in
          Governor.charge_row ~overhead:24 gov k;
          (k, row))
        rows
    in
    let cmp (ka, _) (kb, _) =
      let rec go i =
        if i >= nk then 0
        else
          let c = Value.compare ka.(i) kb.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0
    in
    Sort_algos.mergesort cmp pairs;
    let out = Vec.create ~dummy:[||] in
    let n = Array.length pairs in
    let i = ref 0 in
    while !i < n do
      let k, _ = pairs.(!i) in
      let states = List.map new_state specs in
      while !i < n && cmp pairs.(!i) (k, [||]) = 0 do
        Governor.tick gov;
        let _, row = pairs.(!i) in
        List.iter2 (fun spec st -> feed spec st row) specs states;
        incr i
      done;
      Vec.push out (output_row (Array.to_list k) states specs)
    done;
    out
  end

(* --- Spillable group-table builder (out-of-core aggregation) ------------- *)

module Spill = Quill_storage.Spill

(* A group's serialized image: the key values followed by a fixed 7-value
   state snapshot per aggregate.  DISTINCT states carry a dedup table and
   are not serializable, so DISTINCT builders simply never spill. *)
let state_image st =
  [
    Value.Int st.count;
    Value.Int st.sum_i;
    Value.Float st.sum_f;
    Value.Bool st.saw_float;
    Value.Int st.non_null;
    st.min_v;
    st.max_v;
  ]

let state_width = 7

let state_of_image (row : Value.t array) pos =
  match (row.(pos), row.(pos + 1), row.(pos + 2), row.(pos + 3), row.(pos + 4)) with
  | Value.Int count, Value.Int sum_i, Value.Float sum_f, Value.Bool saw_float,
    Value.Int non_null ->
      {
        count;
        sum_i;
        sum_f;
        saw_float;
        non_null;
        min_v = row.(pos + 5);
        max_v = row.(pos + 6);
        seen = None;
      }
  | _ -> raise (Spill.Error "spill: corrupt aggregate state image")

let compare_key_lists a b =
  let rec go a b =
    match (a, b) with
    | [], [] -> 0
    | x :: a, y :: b ->
        let c = Value.compare x y in
        if c <> 0 then c else go a b
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
  in
  go a b

type builder = {
  b_gov : Governor.t;
  b_keys : (Value.t array -> Value.t) list;
  b_specs : spec list;
  b_nspecs : int;
  b_groups : (Value.t list, state list) Hashtbl.t;
  b_order : Value.t list Vec.t;  (** first-seen key order *)
  mutable b_charged : int;  (** live bytes this builder holds *)
  mutable b_runs : Spill.run list;  (** newest first; each key-sorted *)
  mutable b_handle : int option;
  b_session : Spill.t option;
}

(* Snapshot the live table as a key-sorted (key, states) array — the shape
   both spilled runs and the final merge work over. *)
let sorted_entries b =
  let v = Vec.create ~dummy:([], []) in
  Vec.iter (fun k -> Vec.push v (k, Hashtbl.find b.b_groups k)) b.b_order;
  let a = Vec.to_array v in
  Array.sort (fun (x, _) (y, _) -> compare_key_lists x y) a;
  a

(* The builder's governor spill callback: dump the table as one key-sorted
   run and release its memory.  Runs inside [charge]; must not charge. *)
let spill_builder b =
  match b.b_session with
  | None -> 0
  | Some sess ->
      if Hashtbl.length b.b_groups = 0 then 0
      else begin
        let entries = sorted_entries b in
        let w = Spill.start_run sess in
        let run =
          match
            Array.iter
              (fun (k, states) ->
                Spill.add_row w
                  (Array.of_list (k @ List.concat_map state_image states)))
              entries;
            Spill.finish_run w
          with
          | run -> run
          | exception e ->
              Spill.abandon w;
              raise e
        in
        b.b_runs <- run :: b.b_runs;
        Hashtbl.reset b.b_groups;
        Vec.clear b.b_order;
        let released = b.b_charged in
        b.b_charged <- 0;
        Governor.uncharge b.b_gov released;
        released
      end

(** [create_builder ?gov ~keys ~specs ()] makes an incremental group
    table.  With a spill-capable governor (and no DISTINCT aggregate) it
    registers as a rank-2 spill target: under pressure the partial table
    dumps as a key-sorted run and {!finish_builder} merges the runs with
    {!merge_state}. *)
let create_builder ?(gov = Governor.none) ~keys ~specs () =
  let distinct = List.exists (fun s -> s.distinct) specs in
  {
    b_gov = gov;
    b_keys = keys;
    b_specs = specs;
    b_nspecs = List.length specs;
    b_groups = Hashtbl.create 64;
    b_order = Vec.create ~dummy:[];
    b_charged = 0;
    b_runs = [];
    b_handle = None;
    b_session = (if distinct then None else Governor.spill_session gov);
  }

(* Spiller registration is deferred to the first upsert so the hook lands
   on the domain that actually feeds the table: parallel workers' builders
   are created by the coordinator ([Pdriver.fold]'s [init]), and a hook
   registered there would let the coordinator's relieve pass reset a table
   a worker is concurrently upserting. *)
let ensure_registered b =
  if b.b_session <> None && b.b_handle = None then
    b.b_handle <-
      Governor.register_spiller b.b_gov ~name:"hash-agg" ~cost:2 (fun () ->
          spill_builder b)

(** [feed_builder b row] upserts one row.  The fresh-group charge may
    spill (and reset) the table mid-call; the new group then lands in the
    fresh table — charge-before-insert keeps the two consistent. *)
let feed_builder b row =
  ensure_registered b;
  Governor.tick b.b_gov;
  let k = List.map (fun f -> f row) b.b_keys in
  let states =
    match Hashtbl.find_opt b.b_groups k with
    | Some s -> s
    | None ->
        let bytes = group_bytes k b.b_nspecs in
        Governor.charge b.b_gov bytes;
        b.b_charged <- b.b_charged + bytes;
        let s = List.map new_state b.b_specs in
        Hashtbl.add b.b_groups k s;
        Vec.push b.b_order k;
        s
  in
  List.iter2 (fun spec st -> feed spec st row) b.b_specs states

(** [merge_builders dst src] folds a worker's partial builder into [dst]:
    in-memory tables merge group-wise, spilled runs pool (the final merge
    is key-based, so provenance does not matter). *)
let merge_builders dst src =
  (match src.b_handle with
  | Some id -> Governor.unregister_spiller src.b_gov id
  | None -> ());
  src.b_handle <- None;
  merge_group_tables ~specs:dst.b_specs (dst.b_groups, dst.b_order)
    (src.b_groups, src.b_order);
  dst.b_runs <- src.b_runs @ dst.b_runs;
  dst.b_charged <- dst.b_charged + src.b_charged;
  src.b_charged <- 0

(* One-element lookahead over a pull stream. *)
let lookahead next =
  let cur = ref None and filled = ref false in
  let peek () =
    if not !filled then begin
      cur := next ();
      filled := true
    end;
    !cur
  in
  let advance () = filled := false in
  (peek, advance)

(** [finish_builder ?ordered b] emits the group rows and releases the
    builder's memory.  Never-spilled builders emit in first-seen order
    ([emit_groups]), or key-ascending with [~ordered:true] (the
    [sort_agg] contract); spilled builders k-way merge their key-sorted
    runs with the in-memory remainder — external aggregation — and emit
    key-ascending. *)
let finish_builder ?(ordered = false) b =
  (match b.b_handle with
  | Some id -> Governor.unregister_spiller b.b_gov id
  | None -> ());
  b.b_handle <- None;
  let specs = b.b_specs in
  let release () =
    Governor.uncharge b.b_gov b.b_charged;
    b.b_charged <- 0
  in
  match b.b_runs with
  | [] ->
      let out =
        if ordered && b.b_keys <> [] then begin
          let entries = sorted_entries b in
          let out = Vec.create ~dummy:[||] in
          Array.iter
            (fun (k, states) -> Vec.push out (output_row k states specs))
            entries;
          out
        end
        else emit_groups ~keys:b.b_keys ~specs b.b_groups b.b_order
      in
      release ();
      out
  | runs ->
      Spill.note_merge ();
      let nk = List.length b.b_keys in
      let decode_entry (row : Value.t array) =
        if Array.length row <> nk + (state_width * b.b_nspecs) then
          raise (Spill.Error "spill: corrupt aggregate run row");
        let k = Array.to_list (Array.sub row 0 nk) in
        let states =
          List.init b.b_nspecs (fun i ->
              state_of_image row (nk + (state_width * i)))
        in
        (k, states)
      in
      let run_stream run =
        let rd = Spill.open_run run in
        let batch = ref [||] and i = ref 0 and closed = ref false in
        let rec next () =
          if !closed then None
          else if !i < Array.length !batch then begin
            let e = !batch.(!i) in
            incr i;
            Some (decode_entry e)
          end
          else
            match Spill.next_batch rd with
            | Some rows ->
                batch := rows;
                i := 0;
                next ()
            | None ->
                closed := true;
                Spill.close_reader ~delete:true rd;
                (match b.b_session with
                | Some s -> Spill.note_consumed s
                | None -> ());
                None
        in
        lookahead next
      in
      let mem_stream =
        let mem = sorted_entries b in
        let i = ref 0 in
        lookahead (fun () ->
            if !i < Array.length mem then begin
              let e = mem.(!i) in
              incr i;
              Some e
            end
            else None)
      in
      let streams =
        Array.of_list (mem_stream :: List.map run_stream (List.rev runs))
      in
      let out = Vec.create ~dummy:[||] in
      let continue_ = ref true in
      while !continue_ do
        Governor.tick b.b_gov;
        (* Minimum key across stream heads; each stream holds any key at
           most once, so equal heads merge with one advance apiece. *)
        let best = ref None in
        Array.iter
          (fun (peek, _) ->
            match peek () with
            | Some (k, _) -> (
                match !best with
                | Some bk when compare_key_lists bk k <= 0 -> ()
                | _ -> best := Some k)
            | None -> ())
          streams;
        match !best with
        | None -> continue_ := false
        | Some k ->
            let acc = ref None in
            Array.iter
              (fun (peek, advance) ->
                match peek () with
                | Some (k2, states) when compare_key_lists k2 k = 0 -> (
                    advance ();
                    match !acc with
                    | None -> acc := Some states
                    | Some dst ->
                        List.iter2
                          (fun (spec, d) s -> merge_state spec d s)
                          (List.combine specs dst) states)
                | _ -> ())
              streams;
            (match !acc with
            | Some states -> Vec.push out (output_row k states specs)
            | None -> ())
      done;
      release ();
      out

(** [distinct rows] removes duplicate rows (whole-row comparison with SQL
    "NULLs are not distinct from each other" semantics), preserving first
    occurrence order. *)
let distinct ?(gov = Governor.none) (rows : input) =
  let seen : (Value.t list, unit) Hashtbl.t = Hashtbl.create 64 in
  let out = Vec.create ~dummy:[||] in
  Array.iter
    (fun row ->
      Governor.tick gov;
      let k = Array.to_list row in
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.add seen k ();
        Governor.charge_row ~overhead:48 gov row;
        Vec.push out row
      end)
    rows;
  out
