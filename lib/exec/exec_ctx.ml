(* Execution context shared by all engines: the catalog, bound parameter
   values, declared secondary indexes, an optional profile sink, and the
   per-query resource governor. *)

type t = {
  catalog : Quill_storage.Catalog.t;
  params : Quill_storage.Value.t array;
  profile : Profile.t option;
  indexes : Quill_storage.Index.Registry.t;
  governor : Governor.t;
}

(** [create ?params ?profile ?indexes ?governor catalog] builds a context;
    without [indexes] an empty registry is used (index scans then build
    their index on the fly); without [governor] the query runs
    ungoverned ({!Governor.none}). *)
let create ?(params = [||]) ?profile ?indexes ?(governor = Governor.none) catalog =
  {
    catalog;
    params;
    profile;
    indexes =
      (match indexes with
      | Some r -> r
      | None -> Quill_storage.Index.Registry.create ());
    governor;
  }
