(* The per-query resource governor: deadlines, cooperative cancellation
   and coarse memory budgets — with graceful spilling under pressure.

   One governor travels with each query through {!Exec_ctx}; every engine
   polls it at batch/morsel boundaries ([tick]/[check]) and the allocating
   operators (hash-join builds, group tables, sort/top-k buffers,
   materialized subqueries) charge byte estimates against the budget
   ([charge]).  Aborts raise {!Aborted}, which unwinds cleanly through the
   engines and the worker pool: {!Quill_parallel.Pool.run} records the
   first worker failure and re-raises it on the caller after every slot
   finishes, so the pool stays healthy and the session stays usable.

   Spilling: when a {!Quill_storage.Spill} session is attached, the
   budget is a gradient instead of a cliff.  Charges crossing the soft
   watermark ([spill_threshold], ~80% of the budget) fire registered
   spill callbacks — cheapest first, and only those owned by the calling
   domain, so parallel workers spill their own partial state — and the
   spiller releases memory with {!uncharge}.  [Resource_exhausted] then
   remains only for queries that exceed the hard budget even after every
   registrant spilled (or when spilling is disabled, the PR 3 ablation
   baseline).  Without a spill session the accounting is monotone,
   preserving the original kill behavior exactly.

   Thread-safety: the abort state, cancel flag and byte counters are
   atomics shared by all domains executing the query; the spiller
   registry is a mutex-guarded list.  [ticks] is a plain mutable counter
   with benign races — it only gates how often the deadline is polled, so
   a lost increment merely delays one poll. *)

module Value = Quill_storage.Value
module Spill = Quill_storage.Spill

type abort_reason = Timeout | Cancelled | Resource_exhausted

exception Aborted of abort_reason

let reason_name = function
  | Timeout -> "timeout"
  | Cancelled -> "cancelled"
  | Resource_exhausted -> "resource exhausted"

(* A registered spill callback: [sp_fn] dumps the registrant's in-memory
   state to the session's spill files, uncharges it and returns the bytes
   released.  It runs synchronously inside [charge] on the owning domain,
   so it must not charge the governor itself (the registry mutex is not
   reentrant). *)
type spiller = {
  sp_id : int;
  sp_name : string;
  sp_cost : int;  (** rank: lower spills first (sort spools < group tables < join builds) *)
  sp_domain : int;  (** owning domain: only the owner may run [sp_fn] *)
  sp_fn : unit -> int;
}

type spill_ctl = {
  session : Spill.t;
  threshold : int;  (** soft watermark in bytes *)
  mutable spillers : spiller list;
  mutable next_id : int;
  lock : Mutex.t;
}

type t = {
  deadline : float;  (** absolute time ([Timer.now] scale); infinity = none *)
  budget : int;  (** byte budget; [max_int] = unlimited, accounting off *)
  cancel : bool Atomic.t;  (** session flag, consumed when the abort fires *)
  used : int Atomic.t;  (** live bytes charged (monotone without spilling) *)
  peak : int Atomic.t;  (** high-water mark of [used] *)
  state : abort_reason option Atomic.t;  (** set once by the abort winner *)
  spill : spill_ctl option;  (** attached spill session, if any *)
  mutable ticks : int;
}

(* Aborts by reason, spill events fired, and the peak bytes charged by
   budgeted queries. *)
let m_timeouts = Quill_obs.Metrics.counter "quill.governor.timeouts"
let m_cancels = Quill_obs.Metrics.counter "quill.governor.cancels"
let m_budget_kills = Quill_obs.Metrics.counter "quill.governor.budget_kills"
let m_spills = Quill_obs.Metrics.counter "quill.governor.spills"
let h_peak_bytes = Quill_obs.Metrics.histogram "quill.governor.peak_bytes"

(** Default soft watermark: spilling starts at ~80% of the budget, so
    the last 20% absorbs the allocation in flight while spillers drain. *)
let default_threshold budget = budget / 5 * 4

(** [create ?timeout_ms ?budget_bytes ?cancel ?spill ?spill_threshold ()]
    builds a governor whose deadline is [timeout_ms] from now; [cancel]
    shares a session-level flag so [Db.cancel] reaches the running query;
    [spill] attaches a per-query spill session enabling graceful
    degradation under the byte budget. *)
let create ?timeout_ms ?budget_bytes ?cancel ?spill ?spill_threshold () =
  let budget = match budget_bytes with Some b -> b | None -> max_int in
  {
    deadline =
      (match timeout_ms with
      | Some ms -> Quill_util.Timer.now () +. (Float.of_int ms /. 1000.0)
      | None -> Float.infinity);
    budget;
    cancel = (match cancel with Some c -> c | None -> Atomic.make false);
    used = Atomic.make 0;
    peak = Atomic.make 0;
    state = Atomic.make None;
    spill =
      (match spill with
      | Some session when budget <> max_int ->
          Some
            {
              session;
              threshold =
                (match spill_threshold with
                | Some th -> th
                | None -> default_threshold budget);
              spillers = [];
              next_id = 0;
              lock = Mutex.create ();
            }
      | _ -> None);
    ticks = 0;
  }

(** [none] never aborts: the default for contexts built without a
    governor (tests, EXPLAIN, direct engine calls). *)
let none = create ()

(** [can_spill t] is true when a spill session is attached: operators use
    it to pick their out-of-core code paths. *)
let can_spill t = t.spill <> None

(** [spill_session t] is the attached per-query spill session, if any. *)
let spill_session t = Option.map (fun c -> c.session) t.spill

let metric_of = function
  | Timeout -> m_timeouts
  | Cancelled -> m_cancels
  | Resource_exhausted -> m_budget_kills

(* First domain to abort wins the CAS and records the metric and trace
   instant exactly once; everyone raises the winning reason.  The span
   tracer is coordinating-thread-only, so pool workers skip the instant
   (the metric still counts their abort). *)
let abort t reason =
  if Atomic.compare_and_set t.state None (Some reason) then begin
    Quill_obs.Metrics.incr (metric_of reason);
    if not (Quill_parallel.Pool.in_parallel_region ()) then
      Quill_obs.Trace.instant ~cat:"governor"
        ~args:[ ("reason", reason_name reason) ]
        "governor-abort"
  end;
  match Atomic.get t.state with
  | Some r -> raise (Aborted r)
  | None -> raise (Aborted reason)

(** [check t] polls the governor immediately: raises {!Aborted} if the
    query was already aborted elsewhere, the session cancel flag is set,
    or the deadline has passed. *)
let check t =
  (match Atomic.get t.state with Some r -> raise (Aborted r) | None -> ());
  if Atomic.get t.cancel then begin
    Atomic.set t.cancel false;
    abort t Cancelled
  end;
  if t.deadline < Float.infinity && Quill_util.Timer.now () > t.deadline then
    abort t Timeout

(* Gate the clock read: hot loops tick per row/pair, but only every 256th
   tick pays for [Timer.now]. *)
let tick_mask = 255

(** [tick t] is the cheap per-row poll: increments a counter and runs
    {!check} every 256th call.  Safe to call from pool workers. *)
let tick t =
  t.ticks <- t.ticks + 1;
  if t.ticks land tick_mask = 0 then check t

(* Coarse per-value heap estimate: boxed words for floats, header +
   payload for strings, one word for immediates (the row array itself is
   charged by row_bytes). *)
let value_bytes = function
  | Value.Str s -> 24 + String.length s
  | Value.Float _ -> 16
  | Value.Null | Value.Int _ | Value.Bool _ | Value.Date _ -> 8

(** [row_bytes row] estimates the heap footprint of one materialized row:
    array header + one word per slot + boxed payloads. *)
let row_bytes (row : Value.t array) =
  Array.fold_left (fun acc v -> acc + value_bytes v) (16 + (8 * Array.length row)) row

(* --- Spiller registry --------------------------------------------------- *)

(** [register_spiller t ~name ~cost fn] registers a spill callback owned
    by the calling domain; [fn] must release memory (via {!uncharge}) and
    return the bytes freed.  Returns [None] (and registers nothing) when
    no spill session is attached, so operators can gate their spill paths
    on the result.  Lower [cost] spills first. *)
let register_spiller t ~name ~cost fn =
  match t.spill with
  | None -> None
  | Some ctl ->
      Mutex.lock ctl.lock;
      let id = ctl.next_id in
      ctl.next_id <- id + 1;
      ctl.spillers <-
        {
          sp_id = id;
          sp_name = name;
          sp_cost = cost;
          sp_domain = (Domain.self () :> int);
          sp_fn = fn;
        }
        :: ctl.spillers;
      Mutex.unlock ctl.lock;
      Some id

(** [unregister_spiller t id] removes a registration (operators do this
    once their buffered phase ends, e.g. before a hash join probes). *)
let unregister_spiller t id =
  match t.spill with
  | None -> ()
  | Some ctl ->
      Mutex.lock ctl.lock;
      ctl.spillers <- List.filter (fun s -> s.sp_id <> id) ctl.spillers;
      Mutex.unlock ctl.lock

(* Fire this domain's registrants, cheapest first, until usage drops
   under the watermark.  Runs under the registry mutex: a concurrent
   domain crossing the watermark blocks until this spill completes, which
   is the behavior we want — its own registrants fire next if usage is
   still high.  [sp_fn] must therefore never call [charge]. *)
let relieve t ctl =
  Mutex.lock ctl.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock ctl.lock)
    (fun () ->
      let me = (Domain.self () :> int) in
      let mine =
        List.sort
          (fun a b -> compare (a.sp_cost, a.sp_id) (b.sp_cost, b.sp_id))
          (List.filter (fun s -> s.sp_domain = me) ctl.spillers)
      in
      List.iter
        (fun s ->
          if Atomic.get t.used > ctl.threshold then begin
            let released = s.sp_fn () in
            if released > 0 then begin
              Quill_obs.Metrics.incr m_spills;
              if not (Quill_parallel.Pool.in_parallel_region ()) then
                Quill_obs.Trace.instant ~cat:"governor"
                  ~args:
                    [ ("op", s.sp_name); ("released", string_of_int released) ]
                  "spill"
            end
          end)
        mine)

(** [charge t bytes] accounts [bytes] against the budget.  Crossing the
    soft watermark fires this domain's spill callbacks (cheapest first);
    the query aborts with [Resource_exhausted] only if usage still
    exceeds the hard budget afterwards — or immediately when no spill
    session is attached.  A no-op (not even counted) when no budget is
    set, so unbudgeted queries skip the estimation cost entirely. *)
let charge t bytes =
  if t.budget <> max_int && bytes > 0 then begin
    let before = Atomic.fetch_and_add t.used bytes in
    let now = before + bytes in
    let rec bump_peak () =
      let p = Atomic.get t.peak in
      if now > p && not (Atomic.compare_and_set t.peak p now) then bump_peak ()
    in
    bump_peak ();
    match t.spill with
    | None -> if now > t.budget then abort t Resource_exhausted
    | Some ctl ->
        if now > ctl.threshold then relieve t ctl;
        if Atomic.get t.used > t.budget then begin
          (* Only the owning domain may run a spiller, so under morsel
             parallelism the memory that matters may belong to a sibling
             worker this domain cannot touch.  Those workers are charging
             too: give them a short grace window to cross the watermark
             and spill their own state (relieve blocks on the registry
             mutex while a sibling's spill is in flight, which is exactly
             the wait we want) before declaring true starvation. *)
          let give_up = Quill_util.Timer.now () +. 0.01 in
          while
            Atomic.get t.used > t.budget && Quill_util.Timer.now () < give_up
          do
            relieve t ctl;
            Domain.cpu_relax ()
          done;
          if Atomic.get t.used > t.budget then abort t Resource_exhausted
        end
  end

(** [uncharge t bytes] releases previously charged bytes after a spill.
    Only meaningful in spill mode — without a session the counter stays
    monotone so the PR 3 kill/accounting behavior is bit-identical. *)
let uncharge t bytes =
  if t.budget <> max_int && t.spill <> None && bytes > 0 then
    ignore (Atomic.fetch_and_add t.used (-bytes))

(** [charge_row ?overhead t row] charges one materialized row plus fixed
    per-entry [overhead] (hash buckets, table slots). *)
let charge_row ?(overhead = 0) t row =
  if t.budget <> max_int then charge t (overhead + row_bytes row)

(** [charge_result t row] charges a top-level result row.  In spill mode
    this is a no-op: the budget governs operator working memory (which
    spills), not result delivery — otherwise any over-budget result set
    would kill a query that spilled its way through every operator. *)
let charge_result t row = if t.spill = None then charge_row t row

(** [used_bytes t] is the bytes currently charged (live bytes in spill
    mode; monotone peak otherwise). *)
let used_bytes t = Atomic.get t.used

(** [peak_bytes t] is the high-water mark of charged bytes. *)
let peak_bytes t = Atomic.get t.peak

(** [observe_peak t] records the query's peak charged bytes in the
    [quill.governor.peak_bytes] histogram; called once per budgeted query
    by [Db] when execution ends (normally or by abort). *)
let observe_peak t =
  let peak = Atomic.get t.peak in
  if peak > 0 then Quill_obs.Metrics.observe h_peak_bytes (Float.of_int peak)

(** [abort_detail t] is a human-readable account of why the query died:
    the reason plus — for budget kills — peak bytes charged, the budget,
    and what spilling did (or that it was disabled).  [None] if the query
    was not aborted. *)
let abort_detail t =
  match Atomic.get t.state with
  | None -> None
  | Some Resource_exhausted ->
      Some
        (Printf.sprintf "resource exhausted: peak %d bytes charged, budget %d bytes%s"
           (Atomic.get t.peak) t.budget
           (match t.spill with
           | Some ctl ->
               Printf.sprintf " (spilled %d bytes in %d runs)"
                 (Spill.bytes_spilled ctl.session)
                 (Spill.runs_written ctl.session)
           | None -> " (spilling disabled)"))
  | Some r -> Some (reason_name r)
