(* The per-query resource governor: deadlines, cooperative cancellation
   and coarse memory budgets.

   One governor travels with each query through {!Exec_ctx}; every engine
   polls it at batch/morsel boundaries ([tick]/[check]) and the allocating
   operators (hash-join builds, group tables, sort/top-k buffers,
   materialized subqueries) charge byte estimates against the budget
   ([charge]).  Aborts raise {!Aborted}, which unwinds cleanly through the
   engines and the worker pool: {!Quill_parallel.Pool.run} records the
   first worker failure and re-raises it on the caller after every slot
   finishes, so the pool stays healthy and the session stays usable.

   Thread-safety: the abort state, cancel flag and byte counter are
   atomics shared by all domains executing the query.  [ticks] is a plain
   mutable counter with benign races — it only gates how often the
   deadline is polled, so a lost increment merely delays one poll. *)

module Value = Quill_storage.Value

type abort_reason = Timeout | Cancelled | Resource_exhausted

exception Aborted of abort_reason

let reason_name = function
  | Timeout -> "timeout"
  | Cancelled -> "cancelled"
  | Resource_exhausted -> "resource exhausted"

type t = {
  deadline : float;  (** absolute time ([Timer.now] scale); infinity = none *)
  budget : int;  (** byte budget; [max_int] = unlimited, accounting off *)
  cancel : bool Atomic.t;  (** session flag, consumed when the abort fires *)
  used : int Atomic.t;  (** bytes charged so far (monotone, = peak) *)
  state : abort_reason option Atomic.t;  (** set once by the abort winner *)
  mutable ticks : int;
}

(* Aborts by reason, and the peak bytes charged by budgeted queries. *)
let m_timeouts = Quill_obs.Metrics.counter "quill.governor.timeouts"
let m_cancels = Quill_obs.Metrics.counter "quill.governor.cancels"
let m_budget_kills = Quill_obs.Metrics.counter "quill.governor.budget_kills"
let h_peak_bytes = Quill_obs.Metrics.histogram "quill.governor.peak_bytes"

(** [create ?timeout_ms ?budget_bytes ?cancel ()] builds a governor whose
    deadline is [timeout_ms] from now; [cancel] shares a session-level
    flag so [Db.cancel] reaches the running query. *)
let create ?timeout_ms ?budget_bytes ?cancel () =
  {
    deadline =
      (match timeout_ms with
      | Some ms -> Quill_util.Timer.now () +. (Float.of_int ms /. 1000.0)
      | None -> Float.infinity);
    budget = (match budget_bytes with Some b -> b | None -> max_int);
    cancel = (match cancel with Some c -> c | None -> Atomic.make false);
    used = Atomic.make 0;
    state = Atomic.make None;
    ticks = 0;
  }

(** [none] never aborts: the default for contexts built without a
    governor (tests, EXPLAIN, direct engine calls). *)
let none = create ()

let metric_of = function
  | Timeout -> m_timeouts
  | Cancelled -> m_cancels
  | Resource_exhausted -> m_budget_kills

(* First domain to abort wins the CAS and records the metric and trace
   instant exactly once; everyone raises the winning reason.  The span
   tracer is coordinating-thread-only, so pool workers skip the instant
   (the metric still counts their abort). *)
let abort t reason =
  if Atomic.compare_and_set t.state None (Some reason) then begin
    Quill_obs.Metrics.incr (metric_of reason);
    if not (Quill_parallel.Pool.in_parallel_region ()) then
      Quill_obs.Trace.instant ~cat:"governor"
        ~args:[ ("reason", reason_name reason) ]
        "governor-abort"
  end;
  match Atomic.get t.state with
  | Some r -> raise (Aborted r)
  | None -> raise (Aborted reason)

(** [check t] polls the governor immediately: raises {!Aborted} if the
    query was already aborted elsewhere, the session cancel flag is set,
    or the deadline has passed. *)
let check t =
  (match Atomic.get t.state with Some r -> raise (Aborted r) | None -> ());
  if Atomic.get t.cancel then begin
    Atomic.set t.cancel false;
    abort t Cancelled
  end;
  if t.deadline < Float.infinity && Quill_util.Timer.now () > t.deadline then
    abort t Timeout

(* Gate the clock read: hot loops tick per row/pair, but only every 256th
   tick pays for [Timer.now]. *)
let tick_mask = 255

(** [tick t] is the cheap per-row poll: increments a counter and runs
    {!check} every 256th call.  Safe to call from pool workers. *)
let tick t =
  t.ticks <- t.ticks + 1;
  if t.ticks land tick_mask = 0 then check t

(* Coarse per-value heap estimate: boxed words for floats, header +
   payload for strings, one word for immediates (the row array itself is
   charged by row_bytes). *)
let value_bytes = function
  | Value.Str s -> 24 + String.length s
  | Value.Float _ -> 16
  | Value.Null | Value.Int _ | Value.Bool _ | Value.Date _ -> 8

(** [row_bytes row] estimates the heap footprint of one materialized row:
    array header + one word per slot + boxed payloads. *)
let row_bytes (row : Value.t array) =
  Array.fold_left (fun acc v -> acc + value_bytes v) (16 + (8 * Array.length row)) row

(** [charge t bytes] accounts [bytes] against the budget and aborts with
    [Resource_exhausted] once the total exceeds it.  A no-op (not even
    counted) when no budget is set, so unbudgeted queries skip the
    estimation cost entirely. *)
let charge t bytes =
  if t.budget <> max_int && bytes > 0 then begin
    let before = Atomic.fetch_and_add t.used bytes in
    if before + bytes > t.budget then abort t Resource_exhausted
  end

(** [charge_row ?overhead t row] charges one materialized row plus fixed
    per-entry [overhead] (hash buckets, table slots). *)
let charge_row ?(overhead = 0) t row =
  if t.budget <> max_int then charge t (overhead + row_bytes row)

(** [used_bytes t] is the bytes charged so far (monotone: allocation
    peaks, not live bytes). *)
let used_bytes t = Atomic.get t.used

(** [observe_peak t] records the query's peak charged bytes in the
    [quill.governor.peak_bytes] histogram; called once per budgeted query
    by [Db] when execution ends (normally or by abort). *)
let observe_peak t =
  let peak = Atomic.get t.used in
  if peak > 0 then Quill_obs.Metrics.observe h_peak_bytes (Float.of_int peak)
