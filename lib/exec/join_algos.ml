(* The join algorithm library: hash, sort-merge and block nested loops.

   All three consume materialized row arrays and produce concatenated
   (left @ right) rows, so every engine — Volcano, vectorized, compiled —
   shares one implementation per algorithm and engine comparisons (E2)
   measure engine architecture, not algorithm quality.  SQL semantics:
   NULL join keys never match. *)

module Value = Quill_storage.Value
module Vec = Quill_util.Vec
module Hashing = Quill_util.Hashing

type input = Value.t array array

type mode = Inner | Left_outer
(** [Left_outer] preserves every left row, padding the right side with
    NULLs when no right row satisfies keys + residual. *)

(* Key of a row on the given columns; [None] when any component is NULL. *)
let key_of cols (row : Value.t array) =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | c :: rest ->
        let v = row.(c) in
        if Value.is_null v then None else go (v :: acc) rest
  in
  go [] cols

let concat_rows (l : Value.t array) (r : Value.t array) =
  let out = Array.make (Array.length l + Array.length r) Value.Null in
  Array.blit l 0 out 0 (Array.length l);
  Array.blit r 0 out (Array.length l) (Array.length r);
  out

let hash_key k = List.fold_left (fun acc v -> Hashing.combine acc (Value.hash v)) 0 k

let keys_equal a b = List.for_all2 Value.equal a b

(** [hash_join ~keys ~residual ~build_left left right] equi-join by
    building a hash table on one side and probing with the other.
    [keys] are (left col, right col) pairs; [residual] filters
    concatenated candidate rows.  [gov] is ticked per build/probe row and
    charged for the build table and the output. *)
let hash_join ?(gov = Governor.none) ?(mode = Inner) ?right_arity ~keys ~residual
    ~build_left (left : input) (right : input) =
  (* An outer join must probe with the preserved (left) side. *)
  assert (not (mode = Left_outer && build_left));
  let lcols = List.map fst keys and rcols = List.map snd keys in
  let build, probe, bcols, pcols =
    if build_left then (left, right, lcols, rcols) else (right, left, rcols, lcols)
  in
  let table : (int, (Value.t list * Value.t array) list ref) Hashtbl.t =
    Hashtbl.create (max 16 (Array.length build))
  in
  Array.iter
    (fun row ->
      Governor.tick gov;
      match key_of bcols row with
      | None -> ()
      | Some k ->
          Governor.charge_row ~overhead:48 gov row;
          let h = hash_key k in
          (match Hashtbl.find_opt table h with
          | Some l -> l := (k, row) :: !l
          | None -> Hashtbl.add table h (ref [ (k, row) ])))
    build;
  let out = Vec.create ~dummy:[||] in
  let right_arity =
    match right_arity with
    | Some a -> a
    | None -> if Array.length right > 0 then Array.length right.(0) else 0
  in
  let pad l = concat_rows l (Array.make right_arity Value.Null) in
  let emit matched l r =
    let row = concat_rows l r in
    match residual with
    | Some p when not (p row) -> ()
    | _ ->
        matched := true;
        Governor.charge_row gov row;
        Vec.push out row
  in
  Array.iter
    (fun prow ->
      Governor.tick gov;
      let matched = ref false in
      (match key_of pcols prow with
      | None -> ()
      | Some k -> (
          match Hashtbl.find_opt table (hash_key k) with
          | None -> ()
          | Some bucket ->
              List.iter
                (fun (bk, brow) ->
                  if keys_equal bk k then
                    if build_left then emit matched brow prow
                    else emit matched prow brow)
                !bucket));
      if mode = Left_outer && not !matched then Vec.push out (pad prow))
    probe;
  out

(* --- Grace-style hybrid hash join (out-of-core) -------------------------- *)

module Spill = Quill_storage.Spill

let fanout = 8

(* Recursion depth cap: a partition that will not shrink (every row one
   key) stops splitting here and joins in memory — possibly aborting,
   which is the correct "exceeds budget even with spilling" outcome. *)
let max_level = 3

(* Level-salted partition index: each recursion level re-splits with a
   fresh salt, so a level's bucket skew does not survive into the next. *)
let part_index level h =
  (Hashing.combine (Hashing.mix_int (0x5bd1e995 + level)) h land max_int)
  mod fanout

(** [spill_hash_join ~gov ~keys ~residual ~build_left ~right_arity ~emit
    left right] is the out-of-core [hash_join]: a hybrid Grace hash join
    over spooled inputs.  The build side starts as an ordinary in-memory
    hash table registered as a governor spill target (rank 3, the most
    expensive); if budget pressure fires it, the table dumps into
    [fanout] level-salted spill partitions, subsequent build rows stream
    straight to their partition, the probe side is partitioned the same
    way, and each build/probe partition pair recurses (fan-in joins stay
    in memory whenever they now fit — hybrid, not pure Grace).  Output
    rows go to [emit] uncharged; the consumer accounts for whatever it
    retains.  Requires a spill-capable governor. *)
let spill_hash_join ?(mode = Inner) ~gov ~keys ~residual ~build_left
    ~right_arity ~emit (left : Spool.set) (right : Spool.set) =
  assert (not (mode = Left_outer && build_left));
  let sess =
    match Governor.spill_session gov with
    | Some s -> s
    | None -> invalid_arg "spill_hash_join: governor has no spill session"
  in
  let lcols = List.map fst keys and rcols = List.map snd keys in
  let bcols, pcols = if build_left then (lcols, rcols) else (rcols, lcols) in
  let pad =
    let padding = Array.make right_arity Value.Null in
    fun l -> concat_rows l padding
  in
  let emit_pair matched brow prow =
    let row =
      if build_left then concat_rows brow prow else concat_rows prow brow
    in
    match residual with
    | Some p when not (p row) -> ()
    | _ ->
        matched := true;
        emit row
  in
  (* Lazily opened per-partition writers; empty partitions cost nothing. *)
  let writer slots i =
    match slots.(i) with
    | Some w -> w
    | None ->
        let w = Spill.start_run sess in
        slots.(i) <- Some w;
        w
  in
  let finish_all slots =
    Array.init fanout (fun i ->
        match slots.(i) with
        | None -> None
        | Some w ->
            slots.(i) <- None;
            Some (Spill.finish_run w))
  in
  let abandon_all slots =
    Array.iteri
      (fun i w ->
        match w with
        | Some w ->
            slots.(i) <- None;
            (try Spill.abandon w with _ -> ())
        | None -> ())
      slots
  in
  let consume_run run f =
    Spill.iter_run ~delete:true run f;
    Spill.note_consumed sess
  in
  let drop_run run =
    Spill.delete_run run;
    Spill.note_consumed sess
  in
  (* [build_feed]/[probe_feed] iterate one level's input rows; level 0
     feeds from the spools, deeper levels from partition runs. *)
  let rec join_level level build_feed probe_feed =
    let table : (int, (Value.t list * Value.t array) list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    let charged = ref 0 in
    let partitioned = ref false in
    let bwriters = Array.make fanout None in
    let pwriters = Array.make fanout None in
    (* The governor's spill callback: dump the live table into the level's
       partitions and release its memory.  Runs inside [charge] on this
       domain, so it must not charge. *)
    let spill_build () =
      if !partitioned then 0
      else begin
        partitioned := true;
        Spill.note_partitions fanout;
        Hashtbl.iter
          (fun h bucket ->
            List.iter
              (fun (_, row) ->
                Spill.add_row (writer bwriters (part_index level h)) row)
              !bucket)
          table;
        Hashtbl.reset table;
        let released = !charged in
        charged := 0;
        Governor.uncharge gov released;
        released
      end
    in
    let handle =
      if level < max_level then
        Governor.register_spiller gov ~name:"hash-join-build" ~cost:3
          spill_build
      else None
    in
    let unregister () =
      match handle with
      | Some id -> Governor.unregister_spiller gov id
      | None -> ()
    in
    try
      build_feed (fun row ->
          Governor.tick gov;
          match key_of bcols row with
          | None -> ()
          | Some k ->
              let h = hash_key k in
              if !partitioned then
                Spill.add_row (writer bwriters (part_index level h)) row
              else begin
                (* Charge before inserting: the charge may fire
                   [spill_build], which empties the table — the row then
                   belongs to a partition, not the (stale) table. *)
                Governor.charge_row ~overhead:48 gov row;
                if !partitioned then begin
                  Governor.uncharge gov (48 + Governor.row_bytes row);
                  Spill.add_row (writer bwriters (part_index level h)) row
                end
                else begin
                  charged := !charged + 48 + Governor.row_bytes row;
                  match Hashtbl.find_opt table h with
                  | Some l -> l := (k, row) :: !l
                  | None -> Hashtbl.add table h (ref [ (k, row) ])
                end
              end);
      (* The probe retains the table (non-partitioned case): it can no
         longer spill, so deregister before probing.  A parent operator
         that still cannot fit aborts — correctly. *)
      unregister ();
      if not !partitioned then begin
        probe_feed (fun prow ->
            Governor.tick gov;
            let matched = ref false in
            (match key_of pcols prow with
            | None -> ()
            | Some k -> (
                match Hashtbl.find_opt table (hash_key k) with
                | None -> ()
                | Some bucket ->
                    List.iter
                      (fun (bk, brow) ->
                        if keys_equal bk k then emit_pair matched brow prow)
                      !bucket));
            if mode = Left_outer && not !matched then emit (pad prow));
        Governor.uncharge gov !charged;
        charged := 0
      end
      else begin
        let build_runs = finish_all bwriters in
        probe_feed (fun prow ->
            Governor.tick gov;
            match key_of pcols prow with
            | None -> if mode = Left_outer then emit (pad prow)
            | Some k ->
                Spill.add_row
                  (writer pwriters (part_index level (hash_key k)))
                  prow);
        let probe_runs = finish_all pwriters in
        for i = 0 to fanout - 1 do
          match (build_runs.(i), probe_runs.(i)) with
          | None, None -> ()
          | Some b, None -> drop_run b
          | None, Some p ->
              (* No build rows: inner drops the partition wholesale,
                 outer pads every preserved probe row. *)
              if mode = Left_outer then
                consume_run p (fun prow -> emit (pad prow))
              else drop_run p
          | Some b, Some p ->
              join_level (level + 1) (consume_run b) (consume_run p)
        done
      end
    with e ->
      unregister ();
      abandon_all bwriters;
      abandon_all pwriters;
      raise e
  in
  let build_set, probe_set = if build_left then (left, right) else (right, left) in
  join_level 0 (Spool.consume build_set) (Spool.consume probe_set)

(** [merge_join ~keys ~residual left right] sorts both inputs on the join
    keys and merges, pairing equal-key runs. *)
let merge_join ?(gov = Governor.none) ?(mode = Inner) ?right_arity ~keys ~residual
    (left : input) (right : input) =
  let lcols = List.map fst keys and rcols = List.map snd keys in
  let lkeys = List.map (fun c -> (c, Quill_plan.Lplan.Asc)) lcols in
  let rkeys = List.map (fun c -> (c, Quill_plan.Lplan.Asc)) rcols in
  (* The sorted copies are shallow (row pointers only). *)
  Governor.charge gov (16 * (Array.length left + Array.length right));
  Governor.check gov;
  let l = Array.copy left and r = Array.copy right in
  Sort_algos.sort_rows lkeys l;
  Sort_algos.sort_rows rkeys r;
  let nl = Array.length l and nr = Array.length r in
  let out = Vec.create ~dummy:[||] in
  let matched = if mode = Left_outer then Array.make nl false else [||] in
  let cmp_rows i j =
    let rec go lc rc =
      match (lc, rc) with
      | [], [] -> 0
      | c1 :: lc, c2 :: rc ->
          let d = Value.compare l.(i).(c1) r.(j).(c2) in
          if d <> 0 then d else go lc rc
      | _ -> assert false
    in
    go lcols rcols
  in
  let has_null_key row cols = List.exists (fun c -> Value.is_null row.(c)) cols in
  let i = ref 0 and j = ref 0 in
  (* NULL keys sort first; they never match (outer mode pads them below). *)
  while !i < nl && has_null_key l.(!i) lcols do incr i done;
  while !j < nr && has_null_key r.(!j) rcols do incr j done;
  while !i < nl && !j < nr do
    Governor.tick gov;
    let c = cmp_rows !i !j in
    if c < 0 then incr i
    else if c > 0 then incr j
    else begin
      (* Equal-key runs on both sides: emit the cross product. *)
      let i0 = !i and j0 = !j in
      let same_l k = k < nl && cmp_rows k !j = 0 in
      let same_r k = k < nr && cmp_rows !i k = 0 in
      let i1 = ref i0 and j1 = ref j0 in
      while same_l !i1 do incr i1 done;
      while same_r !j1 do incr j1 done;
      for a = i0 to !i1 - 1 do
        for b = j0 to !j1 - 1 do
          Governor.tick gov;
          let row = concat_rows l.(a) r.(b) in
          match residual with
          | Some p when not (p row) -> ()
          | _ ->
              if mode = Left_outer then matched.(a) <- true;
              Governor.charge_row gov row;
              Vec.push out row
        done
      done;
      i := !i1;
      j := !j1
    end
  done;
  if mode = Left_outer then begin
    let right_arity =
      match right_arity with
      | Some a -> a
      | None -> if nr > 0 then Array.length r.(0) else 0
    in
    let padding = Array.make right_arity Value.Null in
    Array.iteri
      (fun a lrow -> if not matched.(a) then Vec.push out (concat_rows lrow padding))
      l
  end;
  out

(** [block_nl_join ~pred left right] nested loops in cache-friendly blocks;
    [pred] sees the concatenated row ([None] = cross join).  [gov] ticks
    per candidate pair, so a runaway cross join aborts within one tick
    window of its deadline. *)
let block_nl_join ?(gov = Governor.none) ?(mode = Inner) ?right_arity ~pred
    (left : input) (right : input) =
  let out = Vec.create ~dummy:[||] in
  let block = 256 in
  let nl = Array.length left in
  let matched = if mode = Left_outer then Array.make nl false else [||] in
  let lo = ref 0 in
  while !lo < nl do
    let hi = min nl (!lo + block) in
    Array.iter
      (fun rrow ->
        for i = !lo to hi - 1 do
          Governor.tick gov;
          let row = concat_rows left.(i) rrow in
          match pred with
          | Some p when not (p row) -> ()
          | _ ->
              if mode = Left_outer then matched.(i) <- true;
              Governor.charge_row gov row;
              Vec.push out row
        done)
      right;
    lo := hi
  done;
  if mode = Left_outer then begin
    let right_arity =
      match right_arity with
      | Some a -> a
      | None -> if Array.length right > 0 then Array.length right.(0) else 0
    in
    let padding = Array.make right_arity Value.Null in
    Array.iteri
      (fun i lrow -> if not matched.(i) then Vec.push out (concat_rows lrow padding))
      left
  end;
  out
