(* Unboxed expression/predicate kernels over typed column sources.

   The single compiler behind both tiers that avoid boxing: the compiled
   engine's fused loops ({!Quill_compile.Col_expr} / [Col_pred] are thin
   wrappers over this module) and the vectorized engine's typed batches.
   Given a [source] that resolves column references to typed columns (or
   constants), the arithmetic/comparison subset of expressions compiles to
   [int -> int] / [int -> float] / [int -> bool] evaluators that read the
   unboxed arrays directly; the caller loops them over a selection vector
   or a row range.

   A resolved column carries a base offset: lane [i] of the kernel reads
   slot [base + i], so a batch can reference a window of a storage column
   zero-copy.  [resolve] answering [None] means the reference cannot be
   served unboxed (missing column, boxed intermediate) and compilation
   returns [None]; the caller then takes its boxed fallback, so semantics
   never depend on what compiles.

   NULL semantics: for the restricted grammar (literals, parameters,
   columns, +,-,*,/,%, unary minus, numeric casts) an expression is NULL
   exactly when one of its referenced columns is NULL, so the caller
   guards each lane with {!valid_fn} and the evaluators can assume all
   inputs present.  Division/modulo by zero raises {!Bexpr.Eval_error}
   like every other tier.

   Predicate soundness under 3-valued logic: each compiled test answers
   "is the predicate definitely TRUE for lane i" (NULL maps to false).
   AND/OR of is-true tests is exact for is-true of AND/OR — and [&&]/[||]
   keep the right operand lazy, preserving guarded-error behaviour for
   predicates like [y <> 0 AND x/y > 2].  NOT is not compositional in
   this encoding and is rejected. *)

module Value = Quill_storage.Value
module Column = Quill_storage.Column
module Bitset = Quill_util.Bitset
module Bexpr = Quill_plan.Bexpr

type src =
  | S_col of Column.t * int  (** typed column; lane [i] reads slot [base + i] *)
  | S_const of Value.t  (** constant vector (e.g. a literal projection) *)

type source = { resolve : int -> src option; params : Value.t array }

(** [of_columns cols params] is the whole-relation source: column [c]
    resolves to [cols.(c)] at base 0 and kernels index rows absolutely. *)
let of_columns (cols : Column.t array) params =
  {
    resolve = (fun c -> if c < Array.length cols then Some (S_col (cols.(c), 0)) else None);
    params;
  }

(** [validities source e] lists the (validity bitset, base) pairs of every
    column [e] references, or [None] when a reference does not resolve to
    a typed column or constant (constants contribute no validity test). *)
let validities source (e : Bexpr.t) : (Bitset.t * int) list option =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | c :: rest -> (
        match source.resolve c with
        | Some (S_col (col, base)) -> go ((Column.validity col, base) :: acc) rest
        | Some (S_const _) -> go acc rest
        | None -> None)
  in
  go [] (Bexpr.cols e)

(** [valid_fn source e] is the per-lane test that every column referenced
    by [e] is non-NULL; [None] when a reference does not resolve. *)
let valid_fn source (e : Bexpr.t) : (int -> bool) option =
  match validities source e with
  | None -> None
  | Some [] -> Some (fun _ -> true)
  | Some [ (v, 0) ] -> Some (fun i -> Bitset.get v i)
  | Some [ (v, b) ] -> Some (fun i -> Bitset.get v (b + i))
  | Some [ (v1, b1); (v2, b2) ] ->
      Some (fun i -> Bitset.get v1 (b1 + i) && Bitset.get v2 (b2 + i))
  | Some vs -> Some (fun i -> List.for_all (fun (v, b) -> Bitset.get v (b + i)) vs)

(* --- Numeric kernels ---------------------------------------------------- *)

(** [compile_int source e] compiles an INT/DATE-typed expression to an
    unboxed evaluator; [None] when the shape is unsupported. *)
let rec compile_int source (e : Bexpr.t) : (int -> int) option =
  match e.Bexpr.node with
  | Bexpr.Lit (Value.Int v) | Bexpr.Lit (Value.Date v) -> Some (fun _ -> v)
  | Bexpr.Param i -> (
      match source.params.(i) with
      | Value.Int v | Value.Date v -> Some (fun _ -> v)
      | _ -> None)
  | Bexpr.Col c -> (
      match source.resolve c with
      | Some (S_col ((Column.Ints (a, _) | Column.Dates (a, _)), 0)) ->
          Some (fun i -> Array.unsafe_get a i)
      | Some (S_col ((Column.Ints (a, _) | Column.Dates (a, _)), base)) ->
          Some (fun i -> Array.unsafe_get a (base + i))
      | Some (S_const (Value.Int v | Value.Date v)) -> Some (fun _ -> v)
      | _ -> None)
  | Bexpr.Neg a -> Option.map (fun f -> fun i -> -f i) (compile_int source a)
  | Bexpr.Arith (op, a, b) -> (
      match (compile_int source a, compile_int source b) with
      | Some fa, Some fb -> (
          match op with
          | Bexpr.Add -> Some (fun i -> fa i + fb i)
          | Bexpr.Sub -> Some (fun i -> fa i - fb i)
          | Bexpr.Mul -> Some (fun i -> fa i * fb i)
          | Bexpr.Div ->
              Some
                (fun i ->
                  let d = fb i in
                  if d = 0 then raise (Bexpr.Eval_error "division by zero") else fa i / d)
          | Bexpr.Mod ->
              Some
                (fun i ->
                  let d = fb i in
                  if d = 0 then raise (Bexpr.Eval_error "modulo by zero") else fa i mod d))
      | _ -> None)
  | Bexpr.Cast (a, (Value.Int_t | Value.Date_t))
    when a.Bexpr.dtype = Value.Int_t || a.Bexpr.dtype = Value.Date_t ->
      compile_int source a
  | _ -> None

(** [compile_float source e] compiles a numeric expression to an unboxed
    float evaluator, widening int inputs; [None] when the shape is
    unsupported. *)
let rec compile_float source (e : Bexpr.t) : (int -> float) option =
  match e.Bexpr.node with
  | Bexpr.Lit (Value.Float v) -> Some (fun _ -> v)
  | Bexpr.Lit (Value.Int v) ->
      let f = Float.of_int v in
      Some (fun _ -> f)
  | Bexpr.Param i -> (
      match source.params.(i) with
      | Value.Float v -> Some (fun _ -> v)
      | Value.Int v ->
          let f = Float.of_int v in
          Some (fun _ -> f)
      | _ -> None)
  | Bexpr.Col c -> (
      match source.resolve c with
      | Some (S_col (Column.Floats (a, _), 0)) -> Some (fun i -> Array.unsafe_get a i)
      | Some (S_col (Column.Floats (a, _), base)) ->
          Some (fun i -> Array.unsafe_get a (base + i))
      | Some (S_col (Column.Ints (a, _), 0)) ->
          Some (fun i -> Float.of_int (Array.unsafe_get a i))
      | Some (S_col (Column.Ints (a, _), base)) ->
          Some (fun i -> Float.of_int (Array.unsafe_get a (base + i)))
      | Some (S_const (Value.Float v)) -> Some (fun _ -> v)
      | Some (S_const (Value.Int v)) ->
          let f = Float.of_int v in
          Some (fun _ -> f)
      | _ -> None)
  | Bexpr.Neg a -> Option.map (fun f -> fun i -> -.f i) (compile_float source a)
  | Bexpr.Arith (op, a, b) -> (
      (* Integer-only subtrees keep exact int arithmetic then widen. *)
      if e.Bexpr.dtype = Value.Int_t then
        Option.map (fun f -> fun i -> Float.of_int (f i)) (compile_int source e)
      else
        match (compile_float source a, compile_float source b) with
        | Some fa, Some fb -> (
            match op with
            | Bexpr.Add -> Some (fun i -> fa i +. fb i)
            | Bexpr.Sub -> Some (fun i -> fa i -. fb i)
            | Bexpr.Mul -> Some (fun i -> fa i *. fb i)
            | Bexpr.Div ->
                Some
                  (fun i ->
                    let d = fb i in
                    if d = 0.0 then raise (Bexpr.Eval_error "division by zero")
                    else fa i /. d)
            | Bexpr.Mod -> None)
        | _ -> None)
  | Bexpr.Cast (a, Value.Float_t) -> compile_float source a
  | _ -> None

(* --- Predicate kernels -------------------------------------------------- *)

let const_of params (e : Bexpr.t) =
  match e.Bexpr.node with
  | Bexpr.Lit v -> Some v
  | Bexpr.Param i -> Some params.(i)
  | Bexpr.Cast ({ Bexpr.node = Bexpr.Lit v; _ }, t) -> (
      match Bexpr.do_cast v t with v -> Some v | exception _ -> None)
  | _ -> None

let int_test op (v : int) a base (valid : Bitset.t) : int -> bool =
  match op with
  | Bexpr.Eq -> fun i -> Bitset.get valid (base + i) && Array.unsafe_get a (base + i) = v
  | Bexpr.Neq -> fun i -> Bitset.get valid (base + i) && Array.unsafe_get a (base + i) <> v
  | Bexpr.Lt -> fun i -> Bitset.get valid (base + i) && Array.unsafe_get a (base + i) < v
  | Bexpr.Le -> fun i -> Bitset.get valid (base + i) && Array.unsafe_get a (base + i) <= v
  | Bexpr.Gt -> fun i -> Bitset.get valid (base + i) && Array.unsafe_get a (base + i) > v
  | Bexpr.Ge -> fun i -> Bitset.get valid (base + i) && Array.unsafe_get a (base + i) >= v

let float_test op (v : float) a base (valid : Bitset.t) : int -> bool =
  match op with
  | Bexpr.Eq -> fun i -> Bitset.get valid (base + i) && Array.unsafe_get a (base + i) = v
  | Bexpr.Neq -> fun i -> Bitset.get valid (base + i) && Array.unsafe_get a (base + i) <> v
  | Bexpr.Lt -> fun i -> Bitset.get valid (base + i) && Array.unsafe_get a (base + i) < v
  | Bexpr.Le -> fun i -> Bitset.get valid (base + i) && Array.unsafe_get a (base + i) <= v
  | Bexpr.Gt -> fun i -> Bitset.get valid (base + i) && Array.unsafe_get a (base + i) > v
  | Bexpr.Ge -> fun i -> Bitset.get valid (base + i) && Array.unsafe_get a (base + i) >= v

let str_test op (v : string) a base (valid : Bitset.t) : int -> bool =
  let c i = String.compare (Array.unsafe_get a (base + i)) v in
  match op with
  | Bexpr.Eq -> fun i -> Bitset.get valid (base + i) && c i = 0
  | Bexpr.Neq -> fun i -> Bitset.get valid (base + i) && c i <> 0
  | Bexpr.Lt -> fun i -> Bitset.get valid (base + i) && c i < 0
  | Bexpr.Le -> fun i -> Bitset.get valid (base + i) && c i <= 0
  | Bexpr.Gt -> fun i -> Bitset.get valid (base + i) && c i > 0
  | Bexpr.Ge -> fun i -> Bitset.get valid (base + i) && c i >= 0

(* First dictionary index with entry >= x. *)
let dict_lower_bound (dict : string array) x =
  let lo = ref 0 and hi = ref (Array.length dict) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare dict.(mid) x < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let flip = function
  | Bexpr.Lt -> Bexpr.Gt
  | Bexpr.Le -> Bexpr.Ge
  | Bexpr.Gt -> Bexpr.Lt
  | Bexpr.Ge -> Bexpr.Le
  | op -> op

(* Column-vs-constant comparison, with dict-code comparisons for strings. *)
let compile_cmp_const source op col v : (int -> bool) option =
  match source.resolve col with
  | None | Some (S_const _) -> None
  | Some (S_col (col, base)) -> (
      let valid = Column.validity col in
      match (col, v) with
      | Column.Ints (a, _), Value.Int x | Column.Dates (a, _), Value.Date x ->
          Some (int_test op x a base valid)
      | Column.Floats (a, _), Value.Float x -> Some (float_test op x a base valid)
      | Column.Floats (a, _), Value.Int x -> Some (float_test op (Float.of_int x) a base valid)
      | Column.Strs (a, _), Value.Str x -> Some (str_test op x a base valid)
      | Column.Dict (codes, dict, _), Value.Str x -> (
          (* The dictionary is sorted, so code order = string order: string
             comparisons become integer code comparisons. *)
          let lb = dict_lower_bound dict x in
          let exact = lb < Array.length dict && dict.(lb) = x in
          match op with
          | Bexpr.Eq ->
              if exact then Some (int_test Bexpr.Eq lb codes base valid)
              else Some (fun _ -> false)
          | Bexpr.Neq ->
              if exact then Some (int_test Bexpr.Neq lb codes base valid)
              else Some (fun i -> Bitset.get valid (base + i))
          | Bexpr.Lt -> Some (int_test Bexpr.Lt lb codes base valid)
          | Bexpr.Ge -> Some (int_test Bexpr.Ge lb codes base valid)
          | Bexpr.Le ->
              let ub = if exact then lb + 1 else lb in
              Some (int_test Bexpr.Lt ub codes base valid)
          | Bexpr.Gt ->
              let ub = if exact then lb + 1 else lb in
              Some (int_test Bexpr.Ge ub codes base valid))
      | _, Value.Null -> Some (fun _ -> false)
      | _ -> None)

let cmp_int_result op =
  match op with
  | Bexpr.Eq -> fun a b -> a = b
  | Bexpr.Neq -> fun a b -> a <> b
  | Bexpr.Lt -> fun a b -> a < b
  | Bexpr.Le -> fun a b -> a <= b
  | Bexpr.Gt -> fun a b -> a > b
  | Bexpr.Ge -> fun a b -> a >= b

let cmp_float_result op =
  match op with
  | Bexpr.Eq -> fun a b -> a = b
  | Bexpr.Neq -> fun a b -> a <> b
  | Bexpr.Lt -> fun (a : float) b -> a < b
  | Bexpr.Le -> fun (a : float) b -> a <= b
  | Bexpr.Gt -> fun (a : float) b -> a > b
  | Bexpr.Ge -> fun (a : float) b -> a >= b

(** [compile_pred source e] attempts to build an unboxed is-true test for
    predicate [e]; [None] when the shape is unsupported. *)
let rec compile_pred source (e : Bexpr.t) : (int -> bool) option =
  match e.Bexpr.node with
  | Bexpr.Cmp (op, a, b) -> (
      let col_rhs =
        match (a.Bexpr.node, const_of source.params b) with
        | Bexpr.Col c, Some v -> Some (c, op, v)
        | _ -> (
            match (b.Bexpr.node, const_of source.params a) with
            | Bexpr.Col c, Some v -> Some (c, flip op, v)
            | _ -> None)
      in
      match col_rhs with
      | Some (c, op, v) -> compile_cmp_const source op c v
      | None -> (
          (* General expression-vs-expression comparisons through the
             numeric kernels; lanes with any NULL input answer false (the
             is-true encoding) via the validity guard, so the kernels only
             run on fully-present lanes.  The float path is restricted to
             FLOAT-typed operands: widening a giant int for comparison
             could disagree with the exact boxed {!Value.compare}. *)
          let guarded test =
            match valid_fn source e with
            | None -> None
            | Some valid -> Some (fun i -> valid i && test i)
          in
          let int_ty t = t = Value.Int_t || t = Value.Date_t in
          if a.Bexpr.dtype = b.Bexpr.dtype && int_ty a.Bexpr.dtype then
            match (compile_int source a, compile_int source b) with
            | Some fa, Some fb ->
                let cmp = cmp_int_result op in
                guarded (fun i -> cmp (fa i) (fb i))
            | _ -> None
          else if a.Bexpr.dtype = Value.Float_t && b.Bexpr.dtype = Value.Float_t then
            match (compile_float source a, compile_float source b) with
            | Some fa, Some fb ->
                let cmp = cmp_float_result op in
                guarded (fun i -> cmp (fa i) (fb i))
            | _ -> None
          else None))
  | Bexpr.Like ({ Bexpr.node = Bexpr.Col c; _ }, pattern) -> (
      match source.resolve c with
      | Some (S_col (Column.Dict (codes, dict, valid), base)) ->
          (* Evaluate the pattern once per dictionary entry, then the
             per-lane test is a table lookup. *)
          let matches = Array.map (fun s -> Bexpr.like_match ~pattern s) dict in
          Some
            (fun i ->
              Bitset.get valid (base + i) && matches.(Array.unsafe_get codes (base + i)))
      | Some (S_col (Column.Strs (a, valid), base)) ->
          Some
            (fun i ->
              Bitset.get valid (base + i)
              && Bexpr.like_match ~pattern (Array.unsafe_get a (base + i)))
      | _ -> None)
  | Bexpr.And (a, b) -> (
      match (compile_pred source a, compile_pred source b) with
      | Some fa, Some fb -> Some (fun i -> fa i && fb i)
      | _ -> None)
  | Bexpr.Or (a, b) -> (
      match (compile_pred source a, compile_pred source b) with
      | Some fa, Some fb -> Some (fun i -> fa i || fb i)
      | _ -> None)
  | Bexpr.In_list ({ Bexpr.node = Bexpr.Col c; _ }, items)
    when List.for_all (fun it -> const_of source.params it <> None) items -> (
      match source.resolve c with
      | None | Some (S_const _) -> None
      | Some (S_col (col, base)) -> (
          let valid = Column.validity col in
          match col with
          | Column.Ints (a, _) | Column.Dates (a, _) ->
              let tbl = Hashtbl.create 16 in
              let ok =
                List.for_all
                  (fun it ->
                    match const_of source.params it with
                    | Some (Value.Int x) | Some (Value.Date x) ->
                        Hashtbl.replace tbl x ();
                        true
                    | Some Value.Null -> true (* never contributes TRUE *)
                    | _ -> false)
                  items
              in
              if ok then
                Some (fun i -> Bitset.get valid (base + i) && Hashtbl.mem tbl a.(base + i))
              else None
          | Column.Strs (a, _) ->
              let tbl = Hashtbl.create 16 in
              let ok =
                List.for_all
                  (fun it ->
                    match const_of source.params it with
                    | Some (Value.Str s) ->
                        Hashtbl.replace tbl s ();
                        true
                    | Some Value.Null -> true
                    | _ -> false)
                  items
              in
              if ok then
                Some (fun i -> Bitset.get valid (base + i) && Hashtbl.mem tbl a.(base + i))
              else None
          | Column.Dict (codes, dict, _) ->
              let keep = Array.make (Array.length dict) false in
              let ok =
                List.for_all
                  (fun it ->
                    match const_of source.params it with
                    | Some (Value.Str s) ->
                        let lb = dict_lower_bound dict s in
                        if lb < Array.length dict && dict.(lb) = s then keep.(lb) <- true;
                        true
                    | Some Value.Null -> true
                    | _ -> false)
                  items
              in
              if ok then
                Some
                  (fun i ->
                    Bitset.get valid (base + i)
                    && keep.(Array.unsafe_get codes (base + i)))
              else None
          | _ -> None))
  | Bexpr.Is_null (negated, { Bexpr.node = Bexpr.Col c; _ }) -> (
      match source.resolve c with
      | Some (S_col (col, base)) ->
          let valid = Column.validity col in
          if negated then Some (fun i -> Bitset.get valid (base + i))
          else Some (fun i -> not (Bitset.get valid (base + i)))
      | Some (S_const v) ->
          let n = Value.is_null v in
          let r = if negated then not n else n in
          Some (fun _ -> r)
      | None -> None)
  | Bexpr.Lit (Value.Bool true) -> Some (fun _ -> true)
  | Bexpr.Lit (Value.Bool false) | Bexpr.Lit Value.Null -> Some (fun _ -> false)
  | _ -> None
