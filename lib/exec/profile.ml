(* Execution profiles: actual rows produced per operator.

   Operators are numbered in preorder over the physical plan (self, then
   left child, then right).  The adaptive layer compares these counts with
   the picker's estimates to decide on re-optimization (claim C4). *)

type op_stat = { mutable rows_out : int; mutable elapsed : float }

type t = { stats : op_stat array }

(** [create plan] allocates a profile sized to [plan]'s operator count. *)
let create plan =
  { stats =
      Array.init
        (Quill_optimizer.Physical.operator_count plan)
        (fun _ -> { rows_out = 0; elapsed = 0.0 }) }

(** [bump t id] records one output row for operator [id]. *)
let bump t id = t.stats.(id).rows_out <- t.stats.(id).rows_out + 1

(** [add t id n] records [n] output rows for operator [id]. *)
let add t id n = t.stats.(id).rows_out <- t.stats.(id).rows_out + n

(** [rows t id] is the observed output count of operator [id]. *)
let rows t id = t.stats.(id).rows_out

(** [add_time t id secs] accrues wall-clock time to operator [id]
    (cumulative: includes children for pipelined operators). *)
let add_time t id secs = t.stats.(id).elapsed <- t.stats.(id).elapsed +. secs

(** [elapsed t id] is the accumulated time of operator [id] in seconds. *)
let elapsed t id = t.stats.(id).elapsed

(** [estimates plan] lists each operator's estimated rows in the same
    preorder numbering as the profile. *)
let estimates plan =
  Array.map
    (fun p -> (Quill_optimizer.Physical.info_of p).Quill_optimizer.Physical.est_rows)
    (Quill_optimizer.Physical.preorder plan)

(** [exclusive plan t] returns per-operator self time: the profiled
    cumulative time minus the children's cumulative time (pipelined
    operators time their [next] calls around the child's, so the child's
    share must be subtracted out).  Clamped at zero — timer granularity
    can make a cheap parent appear faster than its children. *)
let exclusive plan t =
  let ops = Quill_optimizer.Physical.preorder plan in
  let n = Array.length t.stats in
  let excl = Array.init n (fun i -> t.stats.(i).elapsed) in
  (* Child ids under preorder numbering: first child is parent id + 1,
     each next sibling follows the previous child's subtree. *)
  Array.iteri
    (fun id p ->
      let child_id = ref (id + 1) in
      List.iter
        (fun c ->
          if !child_id < n then
            excl.(id) <- excl.(id) -. t.stats.(!child_id).elapsed;
          child_id := !child_id + Quill_optimizer.Physical.operator_count c)
        (Quill_optimizer.Physical.children p))
    ops;
  Array.map (Float.max 0.0) excl

(** [max_error plan t] returns the largest estimate/actual ratio (in either
    direction) over operators that produced at least one row estimate;
    this is the re-optimization trigger signal. *)
let max_error plan t =
  let est = estimates plan in
  let worst = ref 1.0 in
  Array.iteri
    (fun i s ->
      if i < Array.length est then begin
        let a = Float.max 1.0 (Float.of_int s.rows_out) in
        let e = Float.max 1.0 est.(i) in
        worst := Float.max !worst (Float.max (a /. e) (e /. a))
      end)
    t.stats;
  !worst
