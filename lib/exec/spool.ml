(* Spillable row spools: the out-of-core replacement for [drain].

   A spool buffers rows like the pipeline breakers' drains do, but
   registers itself with the governor as the *cheapest* spill target:
   under budget pressure its buffer dumps to a spill run (sorted first
   when the spool carries sort keys) and the memory is uncharged.  A
   spool that never spills behaves exactly like the in-memory buffer it
   replaces — same rows, same order, same sort — so the fast path pays
   only a registration.

   [finish] turns the spool into a single-use {!set}:

   - unsorted spools replay runs in spill order, then the in-memory tail
     — the original input order, preserved exactly;
   - keyed spools k-way merge their sorted runs with the sorted tail,
     breaking ties by run age (earlier run first, tail last), which
     reproduces a stable in-memory [Sort_algos.sort_rows] bit-for-bit:
     external merge sort. *)

module Value = Quill_storage.Value
module Spill = Quill_storage.Spill
module Vec = Quill_util.Vec
module Lplan = Quill_plan.Lplan

type t = {
  gov : Governor.t;
  keys : (int * Lplan.dir) list option;  (** sort keys; None = FIFO spool *)
  buf : Value.t array Vec.t;
  mutable charged : int;  (** live bytes this spool holds *)
  mutable runs : Spill.run list;  (** newest first *)
  mutable handle : int option;  (** governor spiller registration *)
  mutable count : int;
  session : Spill.t option;
}

let spill_now t =
  let n = Vec.length t.buf in
  if n = 0 then 0
  else
    match t.session with
    | None -> 0
    | Some sp ->
        let rows = Vec.to_array t.buf in
        (match t.keys with
        | Some keys -> Sort_algos.sort_rows keys rows
        | None -> ());
        let w = Spill.start_run sp in
        let run =
          match
            Array.iter (Spill.add_row w) rows;
            Spill.finish_run w
          with
          | run -> run
          | exception e ->
              Spill.abandon w;
              raise e
        in
        t.runs <- run :: t.runs;
        Vec.clear t.buf;
        let released = t.charged in
        t.charged <- 0;
        Governor.uncharge t.gov released;
        released

(** [create ?keys ~name gov] makes a spool; with a spill-capable governor
    it registers as a rank-1 (cheapest) spill target. *)
let create ?keys ~name gov =
  let t =
    {
      gov;
      keys;
      buf = Vec.create ~dummy:[||];
      charged = 0;
      runs = [];
      handle = None;
      count = 0;
      session = Governor.spill_session gov;
    }
  in
  t.handle <- Governor.register_spiller gov ~name ~cost:1 (fun () -> spill_now t);
  t

(** [add t row] buffers one row, charging the governor — which may spill
    this very spool mid-charge; the fresh row then starts the next
    buffer generation. *)
let add t row =
  Governor.tick t.gov;
  let b = Governor.row_bytes row in
  Governor.charge t.gov b;
  t.charged <- t.charged + b;
  Vec.push t.buf row;
  t.count <- t.count + 1

(** The single-use result of {!finish}: a stream of the spooled rows. *)
type set = {
  s_count : int;
  s_keys : (int * Lplan.dir) list option;
  s_runs : Spill.run list;  (** oldest first *)
  s_tail : Value.t array array;  (** in-memory remainder (sorted if keyed) *)
  s_tail_bytes : int;
  s_gov : Governor.t;
  s_session : Spill.t option;
  mutable s_consumed : bool;
}

(** [finish t] seals the spool: unregisters its spill hook and returns
    the row set.  The in-memory tail is sorted in place for keyed
    spools, exactly as the non-spilling path would have. *)
let finish t =
  (match t.handle with
  | Some id -> Governor.unregister_spiller t.gov id
  | None -> ());
  t.handle <- None;
  let tail = Vec.to_array t.buf in
  (match t.keys with
  | Some keys -> Sort_algos.sort_rows keys tail
  | None -> ());
  Vec.clear t.buf;
  {
    s_count = t.count;
    s_keys = t.keys;
    s_runs = List.rev t.runs;
    s_tail = tail;
    s_tail_bytes = t.charged;
    s_gov = t.gov;
    s_session = t.session;
    s_consumed = false;
  }

(** [length set] is the number of rows the spool collected. *)
let length set = set.s_count

(** [spilled set] is true when at least one run went to disk. *)
let spilled set = set.s_runs <> []

(* A pull cursor over one sorted run; [cur] is the batch in flight. *)
type cursor = {
  c_rd : Spill.reader;
  c_run : Spill.run;
  mutable c_batch : Value.t array array;
  mutable c_idx : int;
  mutable c_open : bool;
}

let cursor_of run =
  let rd = Spill.open_run run in
  { c_rd = rd; c_run = run; c_batch = [||]; c_idx = 0; c_open = true }

(* Current row of a cursor, refilling from the next frame as needed;
   [None] once the run is exhausted (the file is deleted eagerly). *)
let rec cursor_peek sess c =
  if not c.c_open then None
  else if c.c_idx < Array.length c.c_batch then Some c.c_batch.(c.c_idx)
  else
    match Spill.next_batch c.c_rd with
    | Some rows ->
        c.c_batch <- rows;
        c.c_idx <- 0;
        cursor_peek sess c
    | None ->
        c.c_open <- false;
        Spill.close_reader ~delete:true c.c_rd;
        (match sess with Some s -> Spill.note_consumed s | None -> ());
        None

let cursor_advance c = c.c_idx <- c.c_idx + 1

let cursor_close sess c =
  if c.c_open then begin
    c.c_open <- false;
    Spill.close_reader ~delete:true c.c_rd;
    match sess with Some s -> Spill.note_consumed s | None -> ()
  end

(** [consume set f] streams every row through [f] exactly once,
    releasing the tail's budget charge up front (the consumer re-charges
    whatever it retains) and deleting run files as they drain.

    Unkeyed: runs in spill order, then the tail — input order.  Keyed: a
    k-way merge of the sorted runs and sorted tail; ties break toward
    the oldest run (the tail is youngest), reproducing a stable
    in-memory sort. *)
let consume set f =
  if set.s_consumed then invalid_arg "Spool.consume: set already consumed";
  set.s_consumed <- true;
  Governor.uncharge set.s_gov set.s_tail_bytes;
  match (set.s_runs, set.s_keys) with
  | [], _ -> Array.iter f set.s_tail
  | runs, None ->
      List.iter
        (fun run ->
          Spill.iter_run ~delete:true run f;
          match set.s_session with
          | Some s -> Spill.note_consumed s
          | None -> ())
        runs;
      Array.iter f set.s_tail
  | runs, Some keys ->
      Spill.note_merge ();
      let cmp = Sort_algos.row_compare keys in
      let cursors = Array.of_list (List.map cursor_of runs) in
      let nc = Array.length cursors in
      let tail = set.s_tail in
      let tpos = ref 0 in
      Fun.protect
        ~finally:(fun () -> Array.iter (cursor_close set.s_session) cursors)
        (fun () ->
          let continue_ = ref true in
          while !continue_ do
            Governor.tick set.s_gov;
            (* Pick the least current row; ties go to the lowest cursor
               index (oldest run), then the tail. *)
            let best = ref (-1) in
            let best_row = ref [||] in
            for i = 0 to nc - 1 do
              match cursor_peek set.s_session cursors.(i) with
              | Some row ->
                  if !best < 0 || cmp row !best_row < 0 then begin
                    best := i;
                    best_row := row
                  end
              | None -> ()
            done;
            let take_tail =
              !tpos < Array.length tail
              && (!best < 0 || cmp tail.(!tpos) !best_row < 0)
            in
            if take_tail then begin
              f tail.(!tpos);
              incr tpos
            end
            else if !best >= 0 then begin
              f !best_row;
              cursor_advance cursors.(!best)
            end
            else continue_ := false
          done)

(** [to_source set] is [consume] curried for push-style consumers. *)
let to_source set f = consume set f

(** [to_array set] materializes the (merged) rows; the array is not
    charged to the governor — callers that retain it account for it. *)
let to_array set =
  if set.s_runs = [] then begin
    if set.s_consumed then invalid_arg "Spool.to_array: set already consumed";
    set.s_consumed <- true;
    Governor.uncharge set.s_gov set.s_tail_bytes;
    set.s_tail
  end
  else begin
    let out = Vec.create ~dummy:[||] in
    consume set (Vec.push out);
    Vec.to_array out
  end
