(* Bounded top-k selection with a binary heap.

   Keeps the k best rows under a comparator in a max-heap (worst at the
   root) so each new row costs O(log k); the full sort is avoided, which
   is the point of the Sort+Limit fusion (picker's TopK). *)

type 'a t = {
  cmp : 'a -> 'a -> int;  (** ascending "better first" order *)
  data : 'a array;
  mutable len : int;
  gov : Governor.t;
  bytes : 'a -> int;  (** element size estimate while the heap grows *)
}

(** [create ~cmp ~k ~dummy ()] returns an empty top-k collector for the
    [k] smallest elements under [cmp].  [gov] is ticked per offer and
    charged [bytes] per kept element while the heap grows — a bounded
    buffer, but k can be large. *)
let create ?(gov = Governor.none) ?(bytes = fun _ -> 0) ~cmp ~k ~dummy () =
  assert (k > 0);
  { cmp; data = Array.make k dummy; len = 0; gov; bytes }

let swap t i j =
  let x = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- x

(* Max-heap on [cmp]: parent >= children, so data.(0) is the current worst
   of the kept set. *)
let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(parent) t.data.(i) < 0 then begin
      swap t parent i;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let largest = ref i in
  if l < t.len && t.cmp t.data.(l) t.data.(!largest) > 0 then largest := l;
  if r < t.len && t.cmp t.data.(r) t.data.(!largest) > 0 then largest := r;
  if !largest <> i then begin
    swap t i !largest;
    sift_down t !largest
  end

(** [offer t x] considers [x] for the kept set. *)
let offer t x =
  Governor.tick t.gov;
  if t.len < Array.length t.data then begin
    Governor.charge t.gov (16 + t.bytes x);
    t.data.(t.len) <- x;
    t.len <- t.len + 1;
    sift_up t (t.len - 1)
  end
  else if t.cmp x t.data.(0) < 0 then begin
    t.data.(0) <- x;
    sift_down t 0
  end

(** [finish t] returns the kept elements in ascending [cmp] order. *)
let finish t =
  let out = Array.sub t.data 0 t.len in
  Array.sort t.cmp out;
  out
