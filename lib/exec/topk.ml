(* Bounded top-k selection with a binary heap — spillable.

   Keeps the k best rows under a comparator in a max-heap (worst at the
   root) so each new row costs O(log k); the full sort is avoided, which
   is the point of the Sort+Limit fusion (picker's TopK).

   The heap is already the minimal state for top-k, so it only pressures
   the budget when k itself is large.  When that happens (and [keys] are
   provided, on a spill-capable governor) the heap converts to external
   mode: the kept rows dump as a sorted run, later offers buffer and dump
   likewise, and [finish] k-way merges the runs taking the first k — an
   external merge sort truncated at k. *)

module Value = Quill_storage.Value
module Spill = Quill_storage.Spill
module Vec = Quill_util.Vec
module Lplan = Quill_plan.Lplan

type t = {
  cmp : Value.t array -> Value.t array -> int;  (** ascending "better first" *)
  data : Value.t array array;
  mutable len : int;
  gov : Governor.t;
  bytes : Value.t array -> int;  (** element size estimate while growing *)
  keys : (int * Lplan.dir) list option;  (** sort keys enabling spilling *)
  k : int;
  mutable charged : int;
  mutable external_ : bool;  (** heap abandoned; buffering + spilling *)
  buf : Value.t array Vec.t;  (** external-mode buffer *)
  mutable runs : Spill.run list;  (** newest first *)
  mutable handle : int option;
  session : Spill.t option;
}

(* The governor spill callback: dump the kept set (heap or buffer) as one
   sorted run and release its memory.  First firing abandons the heap for
   external mode.  Runs inside [charge]; must not (un)register or charge. *)
let spill_topk t =
  match (t.session, t.keys) with
  | Some sess, Some keys ->
      let rows =
        if t.external_ then Vec.to_array t.buf else Array.sub t.data 0 t.len
      in
      if Array.length rows = 0 then 0
      else begin
        Sort_algos.sort_rows keys rows;
        let w = Spill.start_run sess in
        let run =
          match
            Array.iter (Spill.add_row w) rows;
            Spill.finish_run w
          with
          | run -> run
          | exception e ->
              Spill.abandon w;
              raise e
        in
        t.runs <- run :: t.runs;
        if t.external_ then Vec.clear t.buf
        else begin
          t.len <- 0;
          t.external_ <- true
        end;
        let released = t.charged in
        t.charged <- 0;
        Governor.uncharge t.gov released;
        released
      end
  | _ -> 0

(** [create ~cmp ~k ~dummy ()] returns an empty top-k collector for the
    [k] smallest elements under [cmp].  [gov] is ticked per offer and
    charged [bytes] per kept element while the heap grows — a bounded
    buffer, but k can be large; passing [keys] (which must order rows
    like [cmp]) lets the collector spill instead of aborting then. *)
let create ?(gov = Governor.none) ?(bytes = fun _ -> 0) ?keys ~cmp ~k ~dummy () =
  assert (k > 0);
  let t =
    {
      cmp;
      data = Array.make k dummy;
      len = 0;
      gov;
      bytes;
      keys;
      k;
      charged = 0;
      external_ = false;
      buf = Vec.create ~dummy:[||];
      runs = [];
      handle = None;
      session = (if keys = None then None else Governor.spill_session gov);
    }
  in
  if t.session <> None then
    t.handle <-
      Governor.register_spiller gov ~name:"top-k" ~cost:2 (fun () -> spill_topk t);
  t

let swap t i j =
  let x = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- x

(* Max-heap on [cmp]: parent >= children, so data.(0) is the current worst
   of the kept set. *)
let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(parent) t.data.(i) < 0 then begin
      swap t parent i;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let largest = ref i in
  if l < t.len && t.cmp t.data.(l) t.data.(!largest) > 0 then largest := l;
  if r < t.len && t.cmp t.data.(r) t.data.(!largest) > 0 then largest := r;
  if !largest <> i then begin
    swap t i !largest;
    sift_down t !largest
  end

(** [offer t x] considers [x] for the kept set.  The growth charge may
    convert the collector to external mode mid-call (charge first, then
    insert into whatever mode the charge left behind). *)
let offer t x =
  Governor.tick t.gov;
  if t.external_ then begin
    let b = 16 + t.bytes x in
    Governor.charge t.gov b;
    t.charged <- t.charged + b;
    Vec.push t.buf x
  end
  else if t.len < Array.length t.data then begin
    let b = 16 + t.bytes x in
    Governor.charge t.gov b;
    t.charged <- t.charged + b;
    if t.external_ then Vec.push t.buf x
    else begin
      t.data.(t.len) <- x;
      t.len <- t.len + 1;
      sift_up t (t.len - 1)
    end
  end
  else if t.cmp x t.data.(0) < 0 then begin
    t.data.(0) <- x;
    sift_down t 0
  end

(** [finish t] returns the kept elements in ascending [cmp] order: a heap
    sort in memory, or a k-truncated merge of the spilled runs. *)
let finish t =
  (match t.handle with
  | Some id -> Governor.unregister_spiller t.gov id
  | None -> ());
  t.handle <- None;
  if t.runs = [] then begin
    let out = Array.sub t.data 0 t.len in
    Array.sort t.cmp out;
    Governor.uncharge t.gov t.charged;
    t.charged <- 0;
    out
  end
  else begin
    (* Hand the runs + buffered tail to the spool merge and stop at k. *)
    let keys = Option.get t.keys in
    let tail = Vec.to_array t.buf in
    Sort_algos.sort_rows keys tail;
    let set =
      {
        Spool.s_count = 0;
        s_keys = Some keys;
        s_runs = List.rev t.runs;
        s_tail = tail;
        s_tail_bytes = t.charged;
        s_gov = t.gov;
        s_session = t.session;
        s_consumed = false;
      }
    in
    t.charged <- 0;
    t.runs <- [];
    let out = Vec.create ~dummy:[||] in
    (try
       Spool.consume set (fun row ->
           if Vec.length out >= t.k then raise Exit;
           Vec.push out row)
     with Exit -> ());
    Vec.to_array out
  end
