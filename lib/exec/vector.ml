(* The vectorized engine: batch-at-a-time interpretation over typed
   batches with selection vectors.

   A batch is an array of typed vectors — [Typed] vectors reference a
   window of a storage {!Column.t} zero-copy (unboxed int/float payloads,
   dict codes, validity bitsets), [Const] vectors represent literals and
   parameters without per-batch allocation, [Boxed] vectors hold computed
   or re-batched intermediates — plus an optional selection vector of the
   live lanes.  Filters produce a selection instead of compacting the
   batch, so the only copies on the scan->filter->project hot path are
   the kernel outputs themselves.

   Expressions evaluate through the shared unboxed kernels ({!Kernel},
   also behind the compiled engine's fused loops) whenever every
   referenced column resolves to a typed vector: numeric expressions run
   as [int -> int]/[int -> float] loops over the selection with validity
   computed by bulk {!Bitset.land_range}, and predicates run as
   [int -> bool] tests (dict-code comparisons for strings included).
   Shapes the kernels do not cover fall back to the boxed column-at-a-time
   evaluator of the original engine, so semantics never depend on what
   compiles; {!enable_typed} forces that fallback everywhere for the E18
   ablation.  Kernel-vs-fallback dispatch counts are exported as metrics.

   Pipeline breakers materialize to rows and call the shared algorithm
   library, so E2 compares engine architectures on equal algorithms.

   Laziness note: AND/OR right operands and CASE branches are evaluated
   on the undecided lanes only, preserving the scalar engine's error
   behaviour for guarded expressions like [y <> 0 AND x/y > 2]. *)

module Value = Quill_storage.Value
module Table = Quill_storage.Table
module Catalog = Quill_storage.Catalog
module Column = Quill_storage.Column
module Vec = Quill_util.Vec
module Int_vec = Quill_util.Int_vec
module Bitset = Quill_util.Bitset
module Bexpr = Quill_plan.Bexpr
module Lplan = Quill_plan.Lplan
module Physical = Quill_optimizer.Physical
module Pool = Quill_parallel.Pool
module Pdriver = Quill_parallel.Driver
module IntSet = Set.Make (Int)

let batch_size = 1024

(** Evaluate through the typed kernels when possible; off, every batch
    boxes at the scan and every expression takes the boxed fallback —
    the pre-typed engine, kept for the E18 ablation (mirrors
    {!Column.enable_dict}). *)
let enable_typed = ref true

(* Batches materialized by any operator (scans, index scans, pipeline
   breakers re-batching) and rows those batches carried. *)
let m_batches = Quill_obs.Metrics.counter "quill.exec.batches"
let m_batch_rows = Quill_obs.Metrics.counter "quill.exec.batch_rows"

(* Expression/predicate dispatches served by an unboxed kernel vs the
   boxed fallback, counted once per node per batch. *)
let m_kernel = Quill_obs.Metrics.counter "quill.exec.kernel_dispatches"
let m_fallback = Quill_obs.Metrics.counter "quill.exec.fallback_dispatches"

type vec =
  | Typed of Column.t * int
      (** typed column window: lane [i] lives at slot [base + i] *)
  | Boxed of Value.t array  (** boxed intermediate, one slot per lane *)
  | Const of Value.t  (** every lane holds the same value *)
  | Absent  (** column the scan skipped (not needed); reads as NULL *)

type batch = {
  vecs : vec array;
  len : int;  (** lane count; vectors address lanes [0, len) *)
  sel : Int_vec.t option;
      (** live lanes, ascending; [None] means all lanes live *)
}

let rows_in b = match b.sel with None -> b.len | Some s -> Int_vec.length s

let iter_lanes b f =
  match b.sel with
  | None ->
      for i = 0 to b.len - 1 do
        f i
      done
  | Some s -> Int_vec.iter f s

let count_batch (b : batch) =
  Quill_obs.Metrics.incr m_batches;
  Quill_obs.Metrics.add m_batch_rows (rows_in b);
  b

type ctx = Exec_ctx.t = {
  catalog : Catalog.t;
  params : Value.t array;
  profile : Profile.t option;
  indexes : Quill_storage.Index.Registry.t;
  governor : Governor.t;
}

let vec_get v i =
  match v with
  | Typed (c, base) -> Column.get c (base + i)
  | Boxed a -> a.(i)
  | Const v -> v
  | Absent -> Value.Null

let row_of b i = Array.map (fun v -> vec_get v i) b.vecs

let rows_of_batch b =
  let out = Array.make (rows_in b) [||] in
  let k = ref 0 in
  iter_lanes b (fun i ->
      out.(!k) <- row_of b i;
      incr k);
  out

let batch_of_rows ncols (rows : Value.t array array) =
  let len = Array.length rows in
  {
    vecs =
      Array.init ncols (fun c -> Boxed (Array.init len (fun i -> rows.(i).(c))));
    len;
    sel = None;
  }

(* --- Vectorized expression evaluation ----------------------------------

   [eval_vec] returns a vector whose *live* lanes (per [b.sel]) hold the
   expression's value; dead lanes are unspecified and never read. *)

let source_of ctx b =
  {
    Kernel.resolve =
      (fun c ->
        if c >= Array.length b.vecs then None
        else
          match b.vecs.(c) with
          | Typed (col, base) -> Some (Kernel.S_col (col, base))
          | Const v -> Some (Kernel.S_const v)
          | Boxed _ | Absent -> None);
    Kernel.params = ctx.params;
  }

(* Validity of a kernel output: the AND of every referenced column's
   validity over the live lanes — a bulk word-wise [land_range] when the
   batch is dense, a per-lane test under a selection. *)
let kernel_validity b (refs : (Bitset.t * int) list) =
  match b.sel with
  | None ->
      let v = Bitset.create_full b.len in
      List.iter (fun (src, base) -> Bitset.land_range ~into:v src ~src_pos:base) refs;
      v
  | Some sel ->
      let v = Bitset.create b.len in
      let ok i = List.for_all (fun (r, base) -> Bitset.get r (base + i)) refs in
      Int_vec.iter (fun i -> if ok i then Bitset.set v i) sel;
      v

let rec eval_vec ctx (b : batch) (e : Bexpr.t) : vec =
  match e.Bexpr.node with
  | Bexpr.Lit v -> Const v
  | Bexpr.Param i -> Const ctx.params.(i)
  | Bexpr.Col c -> b.vecs.(c)
  | _ -> (
      match if !enable_typed then eval_typed ctx b e else None with
      | Some v ->
          Quill_obs.Metrics.incr m_kernel;
          v
      | None ->
          Quill_obs.Metrics.incr m_fallback;
          eval_boxed ctx b e)

(* Numeric expressions through the shared unboxed kernels: compile once
   per batch, run over the live lanes only.  [None] when a referenced
   column is boxed/absent or the shape is unsupported. *)
and eval_typed ctx (b : batch) (e : Bexpr.t) : vec option =
  let source = source_of ctx b in
  match e.Bexpr.dtype with
  | Value.Int_t | Value.Date_t -> (
      match (Kernel.compile_int source e, Kernel.validities source e) with
      | Some f, Some refs ->
          let out = Array.make b.len 0 in
          let validity = kernel_validity b refs in
          (match b.sel with
          | None -> Bitset.iter_set validity (fun i -> out.(i) <- f i)
          | Some sel ->
              Int_vec.iter (fun i -> if Bitset.get validity i then out.(i) <- f i) sel);
          let col =
            if e.Bexpr.dtype = Value.Date_t then Column.Dates (out, validity)
            else Column.Ints (out, validity)
          in
          Some (Typed (col, 0))
      | _ -> None)
  | Value.Float_t -> (
      match (Kernel.compile_float source e, Kernel.validities source e) with
      | Some f, Some refs ->
          let out = Array.make b.len 0.0 in
          let validity = kernel_validity b refs in
          (match b.sel with
          | None -> Bitset.iter_set validity (fun i -> out.(i) <- f i)
          | Some sel ->
              Int_vec.iter (fun i -> if Bitset.get validity i then out.(i) <- f i) sel);
          Some (Typed (Column.Floats (out, validity), 0))
      | _ -> None)
  | _ -> None

(* The boxed column-at-a-time fallback (the original engine's evaluator,
   generalized to read any vector kind and touch live lanes only). *)
and eval_boxed ctx (b : batch) (e : Bexpr.t) : vec =
  let scalar i sub = Bexpr.eval ~row:(row_of b i) ~params:ctx.params sub in
  let map1 va f =
    let out = Array.make b.len Value.Null in
    iter_lanes b (fun i -> out.(i) <- f (vec_get va i));
    Boxed out
  in
  match e.Bexpr.node with
  | Bexpr.Neg a ->
      map1 (eval_vec ctx b a) (function
        | Value.Null -> Value.Null
        | Value.Int x -> Value.Int (-x)
        | Value.Float x -> Value.Float (-.x)
        | v -> raise (Bexpr.Eval_error ("cannot negate " ^ Value.to_string v)))
  | Bexpr.Not a ->
      map1 (eval_vec ctx b a) (function
        | Value.Null -> Value.Null
        | Value.Bool x -> Value.Bool (not x)
        | v -> raise (Bexpr.Eval_error ("NOT on " ^ Value.to_string v)))
  | Bexpr.Arith (op, x, y) ->
      let vx = eval_vec ctx b x and vy = eval_vec ctx b y in
      let out = Array.make b.len Value.Null in
      iter_lanes b (fun i ->
          match (vec_get vx i, vec_get vy i) with
          | Value.Null, _ | _, Value.Null -> ()
          | a, c -> out.(i) <- Bexpr.num_arith op a c);
      Boxed out
  | Bexpr.Cmp (op, x, y) ->
      let vx = eval_vec ctx b x and vy = eval_vec ctx b y in
      let out = Array.make b.len Value.Null in
      iter_lanes b (fun i ->
          match (vec_get vx i, vec_get vy i) with
          | Value.Null, _ | _, Value.Null -> ()
          | a, c -> out.(i) <- Value.Bool (Bexpr.cmp_result op (Value.compare a c)));
      Boxed out
  | Bexpr.And (x, y) ->
      let vx = eval_vec ctx b x in
      let out = Array.make b.len Value.Null in
      iter_lanes b (fun i ->
          out.(i) <-
            (match vec_get vx i with
            | Value.Bool false -> Value.Bool false
            | vxi -> (
                match scalar i y with
                | Value.Bool false -> Value.Bool false
                | Value.Null -> Value.Null
                | vyi -> if vxi = Value.Null then Value.Null else vyi)));
      Boxed out
  | Bexpr.Or (x, y) ->
      let vx = eval_vec ctx b x in
      let out = Array.make b.len Value.Null in
      iter_lanes b (fun i ->
          out.(i) <-
            (match vec_get vx i with
            | Value.Bool true -> Value.Bool true
            | vxi -> (
                match scalar i y with
                | Value.Bool true -> Value.Bool true
                | Value.Null -> Value.Null
                | vyi -> if vxi = Value.Null then Value.Null else vyi)));
      Boxed out
  | Bexpr.Like (x, pattern) ->
      map1 (eval_vec ctx b x) (function
        | Value.Null -> Value.Null
        | Value.Str s -> Value.Bool (Bexpr.like_match ~pattern s)
        | v -> raise (Bexpr.Eval_error ("LIKE on " ^ Value.to_string v)))
  | Bexpr.Is_null (negated, x) ->
      map1 (eval_vec ctx b x) (fun v ->
          let n = Value.is_null v in
          Value.Bool (if negated then not n else n))
  | Bexpr.Cast (x, t) -> map1 (eval_vec ctx b x) (fun v -> Bexpr.do_cast v t)
  | Bexpr.Call { fn; args; _ } ->
      (* Vectorized UDF invocation: arguments evaluate column-at-a-time,
         then the function applies per live lane. *)
      let vargs = Array.of_list (List.map (eval_vec ctx b) args) in
      let nargs = Array.length vargs in
      let scratch = Array.make nargs Value.Null in
      let out = Array.make b.len Value.Null in
      iter_lanes b (fun i ->
          for k = 0 to nargs - 1 do
            scratch.(k) <- vec_get vargs.(k) i
          done;
          out.(i) <- fn scratch);
      Boxed out
  | Bexpr.Lit _ | Bexpr.Param _ | Bexpr.Col _ | Bexpr.In_list _ | Bexpr.Case _
  | Bexpr.Subquery _ ->
      (* Row-wise fallback for control-flow-heavy nodes (Lit/Param/Col are
         handled before dispatch and never reach here). *)
      let out = Array.make b.len Value.Null in
      iter_lanes b (fun i -> out.(i) <- scalar i e);
      Boxed out

(* --- Predicates: selection in, selection out ---------------------------- *)

(* Live lanes of [b] not in [sx] (both ascending). *)
let lanes_minus b sx =
  let out = Int_vec.create () in
  let k = ref 0 in
  let nk = Int_vec.length sx in
  iter_lanes b (fun i ->
      if !k < nk && Int_vec.get sx !k = i then incr k else Int_vec.push out i);
  out

let merge_sorted sa sb =
  let na = Int_vec.length sa and nb = Int_vec.length sb in
  if na = 0 then sb
  else if nb = 0 then sa
  else begin
    let out = Int_vec.with_capacity (na + nb) in
    let i = ref 0 and j = ref 0 in
    while !i < na && !j < nb do
      let a = Int_vec.get sa !i and b = Int_vec.get sb !j in
      if a < b then begin
        Int_vec.push out a;
        incr i
      end
      else begin
        Int_vec.push out b;
        incr j
      end
    done;
    while !i < na do
      Int_vec.push out (Int_vec.get sa !i);
      incr i
    done;
    while !j < nb do
      Int_vec.push out (Int_vec.get sb !j);
      incr j
    done;
    out
  end

(** [eval_sel ctx b e] returns the live lanes where predicate [e] is TRUE
    (NULL is false, as in WHERE), a subset of [b.sel] in ascending order.
    AND restricts the right operand to the left's survivors and OR
    evaluates the right operand on the left's rejects only, so guarded
    expressions keep their error behaviour and no lane is tested twice. *)
let rec eval_sel ctx (b : batch) (e : Bexpr.t) : Int_vec.t =
  let kernel =
    if !enable_typed then Kernel.compile_pred (source_of ctx b) e else None
  in
  match kernel with
  | Some test ->
      Quill_obs.Metrics.incr m_kernel;
      let out = Int_vec.create () in
      iter_lanes b (fun i -> if test i then Int_vec.push out i);
      out
  | None -> (
      match e.Bexpr.node with
      | Bexpr.And (x, y) ->
          let sx = eval_sel ctx b x in
          if Int_vec.length sx = 0 then sx
          else eval_sel ctx { b with sel = Some sx } y
      | Bexpr.Or (x, y) ->
          let sx = eval_sel ctx b x in
          let rest = lanes_minus b sx in
          if Int_vec.length rest = 0 then sx
          else merge_sorted sx (eval_sel ctx { b with sel = Some rest } y)
      | _ ->
          let v = eval_vec ctx b e in
          let out = Int_vec.create () in
          iter_lanes b (fun i ->
              if vec_get v i = Value.Bool true then Int_vec.push out i);
          out)

(* --- Operators --------------------------------------------------------- *)

type biter = { next_batch : unit -> batch option; close : unit -> unit }

let observed ctx id it =
  match ctx.profile with
  | None -> it
  | Some p ->
      {
        it with
        next_batch =
          (fun () ->
            let t0 = Quill_util.Timer.now () in
            let r = it.next_batch () in
            Profile.add_time p id (Quill_util.Timer.now () -. t0);
            match r with
            | Some b ->
                Profile.add p id (rows_in b);
                Some b
            | None -> None);
      }

let of_rows ncols rows =
  let pos = ref 0 in
  let n = Array.length rows in
  {
    next_batch =
      (fun () ->
        if !pos >= n then None
        else begin
          let take = min batch_size (n - !pos) in
          let slice = Array.sub rows !pos take in
          pos := !pos + take;
          Some (count_batch (batch_of_rows ncols slice))
        end);
    close = ignore;
  }

(* Pipeline breakers materialize through [drain]: one deadline check and
   one budget charge per batch of buffered rows.  [~result] marks the
   top-level result drain, whose rows are charged as result delivery
   (uncharged in spill mode). *)
let drain ?(gov = Governor.none) ?(result = false) it =
  let out = Vec.create ~dummy:[||] in
  let rec go () =
    match it.next_batch () with
    | Some b ->
        Governor.check gov;
        Array.iter
          (fun r ->
            if result then Governor.charge_result gov r
            else Governor.charge_row gov r;
            Vec.push out r)
          (rows_of_batch b);
        go ()
    | None -> it.close ()
  in
  go ();
  Vec.to_array out

(* Out-of-core drain: buffer the child through a governor-registered
   spool, which dumps to spill runs instead of dying under the budget. *)
let drain_spool ?keys ~name ~gov it =
  let sp = Spool.create ?keys ~name gov in
  let rec go () =
    match it.next_batch () with
    | Some b ->
        Governor.check gov;
        Array.iter (Spool.add sp) (rows_of_batch b);
        go ()
    | None -> it.close ()
  in
  go ();
  Spool.finish sp

(* [needed] is the set of this operator's output columns the consumer
   reads; scans skip materializing the rest. *)
let rec build ctx counter plan ~needed : biter =
  let id = !counter in
  incr counter;
  let ncols p = Quill_storage.Schema.arity (Physical.schema_of p) in
  let cols_of_expr e = IntSet.of_list (Bexpr.cols e) in
  let it =
    match plan with
    | Physical.One_row ->
        let done_ = ref false in
        {
          next_batch =
            (fun () ->
              if !done_ then None
              else begin
                done_ := true;
                Some { vecs = [||]; len = 1; sel = None }
              end);
          close = ignore;
        }
    | Physical.Scan { table; filter; _ } ->
        (* Both layouts batch from the columnar projection.  With typed
           batches on, a scan batch is an array of zero-copy windows into
           the storage columns; the boxed ablation unpacks the needed
           columns through [Column.get] like the original engine.  Columns
           outside the needed set stay [Absent]. *)
        let t = Catalog.find_exn ctx.catalog table in
        let cols = Table.columnar t in
        let n = Table.row_count t in
        let needed =
          match filter with
          | None -> needed
          | Some f -> IntSet.union needed (cols_of_expr f)
        in
        let fetch base take =
          {
            vecs =
              Array.mapi
                (fun ci c ->
                  if IntSet.mem ci needed then
                    if !enable_typed then Typed (c, base)
                    else Boxed (Array.init take (fun i -> Column.get c (base + i)))
                  else Absent)
                cols;
            len = take;
            sel = None;
          }
        in
        (* The scan's predicate kernel compiles once against the storage
           columns (absolute row indexing), so per-batch filtering is a
           bare loop — no per-batch closure compilation on the hottest
           path.  Unsupported shapes fall back to [eval_sel] per batch. *)
        let scan_kernel =
          if !enable_typed then
            Option.bind filter (fun f ->
                Kernel.compile_pred (Kernel.of_columns cols ctx.params) f)
          else None
        in
        let filter_batch base b =
          match filter with
          | None -> Some b
          | Some f ->
              let sel =
                match scan_kernel with
                | Some test ->
                    Quill_obs.Metrics.incr m_kernel;
                    let out = Int_vec.create () in
                    for i = 0 to b.len - 1 do
                      if test (base + i) then Int_vec.push out i
                    done;
                    out
                | None -> eval_sel ctx b f
              in
              if Int_vec.length sel = 0 then None else Some { b with sel = Some sel }
        in
        let workers = Pool.parallelism () in
        if not (Pdriver.serial ~workers n) then begin
          (* Morsel-parallel scan+filter: workers filter the morsels they
             win (the shared scan kernel and storage columns are read-only);
             the surviving batches are re-assembled in row order, so
             downstream operators see the same stream a serial scan
             produces. *)
          let batches =
            Pdriver.collect ~workers ~n ~dummy:{ vecs = [||]; len = 0; sel = None }
              (fun ~lo ~hi ~emit ->
                let p = ref lo in
                while !p < hi do
                  Governor.check ctx.governor;
                  let take = min batch_size (hi - !p) in
                  (match filter_batch !p (fetch !p take) with
                  | Some b -> emit b
                  | None -> ());
                  p := !p + take
                done)
          in
          let pos = ref 0 in
          {
            next_batch =
              (fun () ->
                if !pos >= Array.length batches then None
                else begin
                  let b = batches.(!pos) in
                  incr pos;
                  Some (count_batch b)
                end);
            close = ignore;
          }
        end
        else begin
          let pos = ref 0 in
          let rec next_batch () =
            Governor.check ctx.governor;
            if !pos >= n then None
            else begin
              let take = min batch_size (n - !pos) in
              let base = !pos in
              pos := !pos + take;
              match filter_batch base (fetch base take) with
              | Some b -> Some (count_batch b)
              | None -> next_batch ()
            end
          in
          { next_batch; close = ignore }
        end
    | Physical.Index_scan { table; col; col_name; lo; hi; residual; _ } ->
        let t = Catalog.find_exn ctx.catalog table in
        let lo = Index_access.eval_bound ~params:ctx.params lo in
        let hi = Index_access.eval_bound ~params:ctx.params hi in
        let ids = Index_access.rowids ctx ~table ~col_name ~col ~lo ~hi in
        let rows =
          List.filter_map
            (fun i ->
              Governor.tick ctx.governor;
              let row = Array.copy (Table.get_row t i) in
              match residual with
              | Some f when not (Bexpr.eval_pred ~row ~params:ctx.params f) -> None
              | _ -> Some row)
            ids
        in
        of_rows (ncols plan) (Array.of_list rows)
    | Physical.Filter (pred, input, _) ->
        let child =
          build ctx counter input ~needed:(IntSet.union needed (cols_of_expr pred))
        in
        let rec next_batch () =
          match child.next_batch () with
          | None -> None
          | Some b ->
              let sel = eval_sel ctx b pred in
              if Int_vec.length sel = 0 then next_batch ()
              else Some { b with sel = Some sel }
        in
        { next_batch; close = child.close }
    | Physical.Project (items, input, _) ->
        let needed_in =
          List.fold_left
            (fun acc (e, _) -> IntSet.union acc (cols_of_expr e))
            IntSet.empty items
        in
        let child = build ctx counter input ~needed:needed_in in
        let exprs = Array.of_list (List.map fst items) in
        {
          next_batch =
            (fun () ->
              match child.next_batch () with
              | None -> None
              | Some b ->
                  Some
                    {
                      vecs = Array.map (fun e -> eval_vec ctx b e) exprs;
                      len = b.len;
                      sel = b.sel;
                    });
          close = child.close;
        }
    | Physical.Join { algo; kind; keys; residual; build_left; left; right; _ } ->
        let la = Quill_storage.Schema.arity (Physical.schema_of left) in
        let all =
          let base =
            List.fold_left
              (fun acc (l, r) -> IntSet.add l (IntSet.add (r + la) acc))
              needed keys
          in
          match residual with None -> base | Some e -> IntSet.union base (cols_of_expr e)
        in
        let needed_l = IntSet.filter (fun i -> i < la) all in
        let needed_r = IntSet.map (fun i -> i - la) (IntSet.filter (fun i -> i >= la) all) in
        let gov = ctx.governor in
        let residual_fn =
          Option.map (fun e row -> Bexpr.eval_pred ~row ~params:ctx.params e) residual
        in
        let mode =
          match kind with
          | Lplan.Inner -> Join_algos.Inner
          | Lplan.Left_outer -> Join_algos.Left_outer
        in
        let right_arity = Quill_storage.Schema.arity (Physical.schema_of right) in
        if algo = Physical.Hash_join && Governor.can_spill gov then begin
          (* Out-of-core: spool both sides (spillable) and Grace-join. *)
          let lset =
            drain_spool ~name:"join-input" ~gov (build ctx counter left ~needed:needed_l)
          in
          let rset =
            drain_spool ~name:"join-input" ~gov (build ctx counter right ~needed:needed_r)
          in
          let out = Vec.create ~dummy:[||] in
          Join_algos.spill_hash_join ~gov ~mode ~keys ~residual:residual_fn
            ~build_left ~right_arity ~emit:(Vec.push out) lset rset;
          of_rows (ncols plan) (Vec.to_array out)
        end
        else begin
          let lrows = drain ~gov (build ctx counter left ~needed:needed_l) in
          let rrows = drain ~gov (build ctx counter right ~needed:needed_r) in
          let out =
            match algo with
            | Physical.Hash_join ->
                Join_algos.hash_join ~gov ~mode ~right_arity ~keys ~residual:residual_fn
                  ~build_left lrows rrows
            | Physical.Merge_join ->
                Join_algos.merge_join ~gov ~mode ~right_arity ~keys ~residual:residual_fn
                  lrows rrows
            | Physical.Block_nl ->
                Join_algos.block_nl_join ~gov ~mode ~right_arity ~pred:residual_fn lrows
                  rrows
          in
          of_rows (ncols plan) (Vec.to_array out)
        end
    | Physical.Aggregate { algo; keys; aggs; input; _ } ->
        let needed_in =
          List.fold_left
            (fun acc (e, _) -> IntSet.union acc (cols_of_expr e))
            IntSet.empty keys
        in
        let needed_in =
          List.fold_left
            (fun acc (a, _) ->
              match a.Lplan.arg with
              | Some e -> IntSet.union acc (cols_of_expr e)
              | None -> acc)
            needed_in aggs
        in
        let key_fns = List.map (fun (e, _) row -> Bexpr.eval ~row ~params:ctx.params e) keys in
        let specs =
          List.map
            (fun (a, _) ->
              {
                Agg_algos.kind = a.Lplan.kind;
                arg = Option.map (fun e row -> Bexpr.eval ~row ~params:ctx.params e) a.Lplan.arg;
                distinct = a.Lplan.distinct;
                out_dtype = a.Lplan.out_dtype;
              })
            aggs
        in
        let out =
          if Governor.can_spill ctx.governor then begin
            (* Out-of-core: stream batches into a spillable group builder
               (serial — the builder's spill hook is domain-owned). *)
            let b =
              Agg_algos.create_builder ~gov:ctx.governor ~keys:key_fns ~specs ()
            in
            let child = build ctx counter input ~needed:needed_in in
            let rec go () =
              match child.next_batch () with
              | Some bt ->
                  Governor.check ctx.governor;
                  iter_lanes bt (fun i -> Agg_algos.feed_builder b (row_of bt i));
                  go ()
              | None -> child.close ()
            in
            go ();
            Agg_algos.finish_builder ~ordered:(algo = Physical.Sort_agg) b
          end
          else
            let rows =
              drain ~gov:ctx.governor (build ctx counter input ~needed:needed_in)
            in
            match algo with
            | Physical.Hash_agg ->
                (* Parallel feed over the drained rows; degrades to the
                   serial hash_agg for DISTINCT and parallelism 1. *)
                Agg_algos.par_hash_agg ~gov:ctx.governor ~workers:(Pool.parallelism ())
                  ~keys:key_fns ~specs rows
            | Physical.Sort_agg -> Agg_algos.sort_agg ~gov:ctx.governor ~keys:key_fns ~specs rows
        in
        of_rows (ncols plan) (Vec.to_array out)
    | Physical.Window { specs; input; _ } ->
        let all = IntSet.of_list (List.init (ncols input) Fun.id) in
        let rows = drain ~gov:ctx.governor (build ctx counter input ~needed:all) in
        let wspecs =
          List.map
            (fun ((w : Lplan.wspec), _) ->
              {
                Window_algos.kind = w.Lplan.wkind;
                arg = Option.map (fun e row -> Bexpr.eval ~row ~params:ctx.params e) w.Lplan.warg;
                partition =
                  List.map (fun e row -> Bexpr.eval ~row ~params:ctx.params e) w.Lplan.partition;
                order =
                  List.map
                    (fun (e, d) -> ((fun row -> Bexpr.eval ~row ~params:ctx.params e), d))
                    w.Lplan.worder;
                out_dtype = w.Lplan.w_dtype;
              })
            specs
        in
        of_rows (ncols plan) (Window_algos.run ~specs:wspecs rows)
    | Physical.Sort { keys; input; _ } when Governor.can_spill ctx.governor ->
        (* Out-of-core: a keyed spool is an external merge sort. *)
        let needed_in = IntSet.union needed (IntSet.of_list (List.map fst keys)) in
        let set =
          drain_spool ~keys ~name:"sort" ~gov:ctx.governor
            (build ctx counter input ~needed:needed_in)
        in
        of_rows (ncols plan) (Spool.to_array set)
    | Physical.Sort { keys; input; _ } ->
        let needed_in = IntSet.union needed (IntSet.of_list (List.map fst keys)) in
        let rows = drain ~gov:ctx.governor (build ctx counter input ~needed:needed_in) in
        Sort_algos.sort_rows keys rows;
        of_rows (ncols plan) rows
    | Physical.Top_k { k; offset; keys; input; _ } ->
        let needed_in = IntSet.union needed (IntSet.of_list (List.map fst keys)) in
        let child = build ctx counter input ~needed:needed_in in
        let cmp = Sort_algos.row_compare keys in
        let heap =
          Topk.create ~gov:ctx.governor ~bytes:Governor.row_bytes ~keys ~cmp
            ~k:(k + offset) ~dummy:[||] ()
        in
        let rec fill () =
          match child.next_batch () with
          | Some b ->
              iter_lanes b (fun i -> Topk.offer heap (row_of b i));
              fill ()
          | None -> child.close ()
        in
        fill ();
        let sorted = Topk.finish heap in
        let kept =
          if offset >= Array.length sorted then [||]
          else Array.sub sorted offset (Array.length sorted - offset)
        in
        of_rows (ncols plan) kept
    | Physical.Distinct (input, _) ->
        let all = IntSet.of_list (List.init (ncols input) Fun.id) in
        let rows = drain ~gov:ctx.governor (build ctx counter input ~needed:all) in
        of_rows (ncols plan) (Vec.to_array (Agg_algos.distinct ~gov:ctx.governor rows))
    | Physical.Limit { n; offset; input; _ } ->
        let child = build ctx counter input ~needed in
        let skipped = ref 0 and emitted = ref 0 in
        let rec next_batch () =
          match n with
          | Some n when !emitted >= n -> None
          | _ -> (
              match child.next_batch () with
              | None -> None
              | Some b ->
                  let keep = Int_vec.create () in
                  iter_lanes b (fun i ->
                      if !skipped < offset then incr skipped
                      else begin
                        match n with
                        | Some n when !emitted >= n -> ()
                        | _ ->
                            incr emitted;
                            Int_vec.push keep i
                      end);
                  if Int_vec.length keep = 0 then
                    if !emitted > 0 && n <> None && !emitted >= Option.get n then None
                    else next_batch ()
                  else Some { b with sel = Some keep })
        in
        { next_batch; close = child.close }
  in
  observed ctx id it

(** [run ctx plan] executes [plan] batch-at-a-time and returns all rows. *)
let run ctx plan =
  let counter = ref 0 in
  let arity = Quill_storage.Schema.arity (Physical.schema_of plan) in
  drain ~gov:ctx.governor ~result:true
    (build ctx counter plan ~needed:(IntSet.of_list (List.init arity Fun.id)))
