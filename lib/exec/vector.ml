(* The vectorized engine: batch-at-a-time interpretation.

   Operators exchange batches of [batch_size] rows stored column-wise;
   expressions are evaluated one node per *vector* instead of one node per
   tuple, amortizing interpretive dispatch (the VectorWise design).
   Pipeline breakers materialize to rows and call the shared algorithm
   library, so E2 compares engine architectures on equal algorithms.

   Laziness note: AND/OR right operands and CASE branches are evaluated
   per-row on the undecided rows only, preserving the scalar engine's
   error behaviour for guarded expressions like [y <> 0 AND x/y > 2]. *)

module Value = Quill_storage.Value
module Table = Quill_storage.Table
module Catalog = Quill_storage.Catalog
module Column = Quill_storage.Column
module Vec = Quill_util.Vec
module Bexpr = Quill_plan.Bexpr
module Lplan = Quill_plan.Lplan
module Physical = Quill_optimizer.Physical
module Pool = Quill_parallel.Pool
module Pdriver = Quill_parallel.Driver
module IntSet = Set.Make (Int)

let batch_size = 1024

(* Batches materialized by any operator (scans, index scans, pipeline
   breakers re-batching) and rows those batches carried. *)
let m_batches = Quill_obs.Metrics.counter "quill.exec.batches"
let m_batch_rows = Quill_obs.Metrics.counter "quill.exec.batch_rows"

type batch = { cols : Value.t array array; len : int }

let count_batch (b : batch) =
  Quill_obs.Metrics.incr m_batches;
  Quill_obs.Metrics.add m_batch_rows b.len;
  b

type ctx = Exec_ctx.t = {
  catalog : Catalog.t;
  params : Value.t array;
  profile : Profile.t option;
  indexes : Quill_storage.Index.Registry.t;
  governor : Governor.t;
}

(* Columns the scan skipped (not in the needed set) are empty
   placeholders and read back as NULL. *)
let row_of batch i =
  Array.map (fun c -> if Array.length c = 0 then Value.Null else c.(i)) batch.cols

let batch_of_rows ncols (rows : Value.t array array) =
  let len = Array.length rows in
  { cols = Array.init ncols (fun c -> Array.init len (fun i -> rows.(i).(c))); len }

let rows_of_batch b = Array.init b.len (row_of b)

(* --- Vectorized expression evaluation ---------------------------------- *)

let rec eval_vec ctx (b : batch) (e : Bexpr.t) : Value.t array =
  let scalar i sub = Bexpr.eval ~row:(row_of b i) ~params:ctx.params sub in
  match e.Bexpr.node with
  | Bexpr.Lit v -> Array.make b.len v
  | Bexpr.Col c -> b.cols.(c)
  | Bexpr.Param i -> Array.make b.len ctx.params.(i)
  | Bexpr.Neg a ->
      let va = eval_vec ctx b a in
      Array.map
        (function
          | Value.Null -> Value.Null
          | Value.Int x -> Value.Int (-x)
          | Value.Float x -> Value.Float (-.x)
          | v -> raise (Bexpr.Eval_error ("cannot negate " ^ Value.to_string v)))
        va
  | Bexpr.Not a ->
      let va = eval_vec ctx b a in
      Array.map
        (function
          | Value.Null -> Value.Null
          | Value.Bool x -> Value.Bool (not x)
          | v -> raise (Bexpr.Eval_error ("NOT on " ^ Value.to_string v)))
        va
  | Bexpr.Arith (op, x, y) ->
      let vx = eval_vec ctx b x and vy = eval_vec ctx b y in
      Array.init b.len (fun i ->
          match (vx.(i), vy.(i)) with
          | Value.Null, _ | _, Value.Null -> Value.Null
          | a, c -> Bexpr.num_arith op a c)
  | Bexpr.Cmp (op, x, y) ->
      let vx = eval_vec ctx b x and vy = eval_vec ctx b y in
      Array.init b.len (fun i ->
          match (vx.(i), vy.(i)) with
          | Value.Null, _ | _, Value.Null -> Value.Null
          | a, c -> Value.Bool (Bexpr.cmp_result op (Value.compare a c)))
  | Bexpr.And (x, y) ->
      let vx = eval_vec ctx b x in
      Array.init b.len (fun i ->
          match vx.(i) with
          | Value.Bool false -> Value.Bool false
          | vxi -> (
              match scalar i y with
              | Value.Bool false -> Value.Bool false
              | Value.Null -> Value.Null
              | vyi -> if vxi = Value.Null then Value.Null else vyi))
  | Bexpr.Or (x, y) ->
      let vx = eval_vec ctx b x in
      Array.init b.len (fun i ->
          match vx.(i) with
          | Value.Bool true -> Value.Bool true
          | vxi -> (
              match scalar i y with
              | Value.Bool true -> Value.Bool true
              | Value.Null -> Value.Null
              | vyi -> if vxi = Value.Null then Value.Null else vyi))
  | Bexpr.Like (x, pattern) ->
      let vx = eval_vec ctx b x in
      Array.map
        (function
          | Value.Null -> Value.Null
          | Value.Str s -> Value.Bool (Bexpr.like_match ~pattern s)
          | v -> raise (Bexpr.Eval_error ("LIKE on " ^ Value.to_string v)))
        vx
  | Bexpr.Is_null (negated, x) ->
      let vx = eval_vec ctx b x in
      Array.map
        (fun v ->
          let n = Value.is_null v in
          Value.Bool (if negated then not n else n))
        vx
  | Bexpr.Cast (x, t) ->
      let vx = eval_vec ctx b x in
      Array.map (fun v -> Bexpr.do_cast v t) vx
  | Bexpr.Call { fn; args; _ } ->
      (* Vectorized UDF invocation: arguments evaluate column-at-a-time,
         then the function applies per row. *)
      let vargs = Array.of_list (List.map (eval_vec ctx b) args) in
      let nargs = Array.length vargs in
      let scratch = Array.make nargs Value.Null in
      Array.init b.len (fun i ->
          for k = 0 to nargs - 1 do
            scratch.(k) <- vargs.(k).(i)
          done;
          fn scratch)
  | Bexpr.In_list _ | Bexpr.Case _ | Bexpr.Subquery _ ->
      (* Row-wise fallback for control-flow-heavy nodes. *)
      Array.init b.len (fun i -> scalar i e)

(** [eval_pred_vec ctx b e] evaluates predicate [e] over a batch, returning
    the selected row indices (NULL is false, as in WHERE). *)
let eval_pred_vec ctx b e =
  let v = eval_vec ctx b e in
  let sel = Quill_util.Int_vec.create () in
  for i = 0 to b.len - 1 do
    match v.(i) with
    | Value.Bool true -> Quill_util.Int_vec.push sel i
    | _ -> ()
  done;
  sel

let compact b sel =
  let n = Quill_util.Int_vec.length sel in
  {
    cols =
      Array.map
        (fun col ->
          if Array.length col = 0 then [||]
          else Array.init n (fun k -> col.(Quill_util.Int_vec.get sel k)))
        b.cols;
    len = n;
  }

(* --- Operators --------------------------------------------------------- *)

type biter = { next_batch : unit -> batch option; close : unit -> unit }

let observed ctx id it =
  match ctx.profile with
  | None -> it
  | Some p ->
      {
        it with
        next_batch =
          (fun () ->
            let t0 = Quill_util.Timer.now () in
            let r = it.next_batch () in
            Profile.add_time p id (Quill_util.Timer.now () -. t0);
            match r with
            | Some b ->
                Profile.add p id b.len;
                Some b
            | None -> None);
      }

let of_rows ncols rows =
  let pos = ref 0 in
  let n = Array.length rows in
  {
    next_batch =
      (fun () ->
        if !pos >= n then None
        else begin
          let take = min batch_size (n - !pos) in
          let slice = Array.sub rows !pos take in
          pos := !pos + take;
          Some (count_batch (batch_of_rows ncols slice))
        end);
    close = ignore;
  }

(* Pipeline breakers materialize through [drain]: one deadline check and
   one budget charge per batch of buffered rows. *)
let drain ?(gov = Governor.none) it =
  let out = Vec.create ~dummy:[||] in
  let rec go () =
    match it.next_batch () with
    | Some b ->
        Governor.check gov;
        Array.iter
          (fun r ->
            Governor.charge_row gov r;
            Vec.push out r)
          (rows_of_batch b);
        go ()
    | None -> it.close ()
  in
  go ();
  Vec.to_array out

(* [needed] is the set of this operator's output columns the consumer
   reads; scans skip materializing (boxing) the rest. *)
let rec build ctx counter plan ~needed : biter =
  let id = !counter in
  incr counter;
  let ncols p = Quill_storage.Schema.arity (Physical.schema_of p) in
  let cols_of_expr e = IntSet.of_list (Bexpr.cols e) in
  let it =
    match plan with
    | Physical.One_row ->
        let done_ = ref false in
        {
          next_batch =
            (fun () ->
              if !done_ then None
              else begin
                done_ := true;
                Some { cols = [||]; len = 1 }
              end);
          close = ignore;
        }
    | Physical.Scan { table; filter; _ } ->
        (* Both layouts batch from the columnar projection; the layout
           distinction matters most in the compiled engine, which reads the
           typed arrays directly.  Only referenced columns are unpacked
           into the batch; the rest stay as empty placeholders. *)
        let t = Catalog.find_exn ctx.catalog table in
        let cols = Table.columnar t in
        let n = Table.row_count t in
        let needed =
          match filter with
          | None -> needed
          | Some f -> IntSet.union needed (cols_of_expr f)
        in
        let fetch base take =
          { cols =
              Array.mapi
                (fun ci c ->
                  if IntSet.mem ci needed then
                    Array.init take (fun i -> Column.get c (base + i))
                  else [||])
                cols;
            len = take }
        in
        let filter_batch b =
          match filter with
          | None -> Some b
          | Some f ->
              let sel = eval_pred_vec ctx b f in
              if Quill_util.Int_vec.length sel = 0 then None else Some (compact b sel)
        in
        let workers = Pool.parallelism () in
        if not (Pdriver.serial ~workers n) then begin
          (* Morsel-parallel scan+filter: workers unpack and filter the
             morsels they win (predicate evaluation reads only columns,
             params and pre-materialized subquery cells); the filtered
             batches are re-assembled in row order, so downstream operators
             see the same stream a serial scan produces. *)
          let batches =
            Pdriver.collect ~workers ~n ~dummy:{ cols = [||]; len = 0 }
              (fun ~lo ~hi ~emit ->
                let p = ref lo in
                while !p < hi do
                  Governor.check ctx.governor;
                  let take = min batch_size (hi - !p) in
                  (match filter_batch (fetch !p take) with
                  | Some b -> emit b
                  | None -> ());
                  p := !p + take
                done)
          in
          let pos = ref 0 in
          {
            next_batch =
              (fun () ->
                if !pos >= Array.length batches then None
                else begin
                  let b = batches.(!pos) in
                  incr pos;
                  Some (count_batch b)
                end);
            close = ignore;
          }
        end
        else begin
          let pos = ref 0 in
          let rec next_batch () =
            Governor.check ctx.governor;
            if !pos >= n then None
            else begin
              let take = min batch_size (n - !pos) in
              let base = !pos in
              pos := !pos + take;
              match filter_batch (fetch base take) with
              | Some b -> Some (count_batch b)
              | None -> next_batch ()
            end
          in
          { next_batch; close = ignore }
        end
    | Physical.Index_scan { table; col; col_name; lo; hi; residual; _ } ->
        let t = Catalog.find_exn ctx.catalog table in
        let lo = Index_access.eval_bound ~params:ctx.params lo in
        let hi = Index_access.eval_bound ~params:ctx.params hi in
        let ids = Index_access.rowids ctx ~table ~col_name ~col ~lo ~hi in
        let rows =
          List.filter_map
            (fun i ->
              Governor.tick ctx.governor;
              let row = Array.copy (Table.get_row t i) in
              match residual with
              | Some f when not (Bexpr.eval_pred ~row ~params:ctx.params f) -> None
              | _ -> Some row)
            ids
        in
        of_rows (ncols plan) (Array.of_list rows)
    | Physical.Filter (pred, input, _) ->
        let child = build ctx counter input ~needed:(IntSet.union needed (cols_of_expr pred)) in
        let rec next_batch () =
          match child.next_batch () with
          | None -> None
          | Some b ->
              let sel = eval_pred_vec ctx b pred in
              if Quill_util.Int_vec.length sel = 0 then next_batch ()
              else Some (compact b sel)
        in
        { next_batch; close = child.close }
    | Physical.Project (items, input, _) ->
        let needed_in =
          List.fold_left (fun acc (e, _) -> IntSet.union acc (cols_of_expr e)) IntSet.empty items
        in
        let child = build ctx counter input ~needed:needed_in in
        let exprs = Array.of_list (List.map fst items) in
        {
          next_batch =
            (fun () ->
              match child.next_batch () with
              | None -> None
              | Some b ->
                  Some { cols = Array.map (fun e -> eval_vec ctx b e) exprs; len = b.len });
          close = child.close;
        }
    | Physical.Join { algo; kind; keys; residual; build_left; left; right; _ } ->
        let la = Quill_storage.Schema.arity (Physical.schema_of left) in
        let all =
          let base =
            List.fold_left (fun acc (l, r) -> IntSet.add l (IntSet.add (r + la) acc)) needed keys
          in
          match residual with None -> base | Some e -> IntSet.union base (cols_of_expr e)
        in
        let needed_l = IntSet.filter (fun i -> i < la) all in
        let needed_r = IntSet.map (fun i -> i - la) (IntSet.filter (fun i -> i >= la) all) in
        let gov = ctx.governor in
        let lrows = drain ~gov (build ctx counter left ~needed:needed_l) in
        let rrows = drain ~gov (build ctx counter right ~needed:needed_r) in
        let residual_fn =
          Option.map (fun e row -> Bexpr.eval_pred ~row ~params:ctx.params e) residual
        in
        let mode =
          match kind with Lplan.Inner -> Join_algos.Inner | Lplan.Left_outer -> Join_algos.Left_outer
        in
        let right_arity = Quill_storage.Schema.arity (Physical.schema_of right) in
        let out =
          match algo with
          | Physical.Hash_join ->
              Join_algos.hash_join ~gov ~mode ~right_arity ~keys ~residual:residual_fn
                ~build_left lrows rrows
          | Physical.Merge_join ->
              Join_algos.merge_join ~gov ~mode ~right_arity ~keys ~residual:residual_fn
                lrows rrows
          | Physical.Block_nl ->
              Join_algos.block_nl_join ~gov ~mode ~right_arity ~pred:residual_fn lrows rrows
        in
        of_rows (ncols plan) (Vec.to_array out)
    | Physical.Aggregate { algo; keys; aggs; input; _ } ->
        let needed_in =
          List.fold_left (fun acc (e, _) -> IntSet.union acc (cols_of_expr e)) IntSet.empty keys
        in
        let needed_in =
          List.fold_left
            (fun acc (a, _) ->
              match a.Lplan.arg with
              | Some e -> IntSet.union acc (cols_of_expr e)
              | None -> acc)
            needed_in aggs
        in
        let rows = drain ~gov:ctx.governor (build ctx counter input ~needed:needed_in) in
        let key_fns = List.map (fun (e, _) row -> Bexpr.eval ~row ~params:ctx.params e) keys in
        let specs =
          List.map
            (fun (a, _) ->
              {
                Agg_algos.kind = a.Lplan.kind;
                arg = Option.map (fun e row -> Bexpr.eval ~row ~params:ctx.params e) a.Lplan.arg;
                distinct = a.Lplan.distinct;
                out_dtype = a.Lplan.out_dtype;
              })
            aggs
        in
        let out =
          match algo with
          | Physical.Hash_agg ->
              (* Parallel feed over the drained rows; degrades to the
                 serial hash_agg for DISTINCT and parallelism 1. *)
              Agg_algos.par_hash_agg ~gov:ctx.governor ~workers:(Pool.parallelism ())
                ~keys:key_fns ~specs rows
          | Physical.Sort_agg -> Agg_algos.sort_agg ~gov:ctx.governor ~keys:key_fns ~specs rows
        in
        of_rows (ncols plan) (Vec.to_array out)
    | Physical.Window { specs; input; _ } ->
        let all = IntSet.of_list (List.init (ncols input) Fun.id) in
        let rows = drain ~gov:ctx.governor (build ctx counter input ~needed:all) in
        let wspecs =
          List.map
            (fun ((w : Lplan.wspec), _) ->
              {
                Window_algos.kind = w.Lplan.wkind;
                arg = Option.map (fun e row -> Bexpr.eval ~row ~params:ctx.params e) w.Lplan.warg;
                partition =
                  List.map (fun e row -> Bexpr.eval ~row ~params:ctx.params e) w.Lplan.partition;
                order =
                  List.map
                    (fun (e, d) -> ((fun row -> Bexpr.eval ~row ~params:ctx.params e), d))
                    w.Lplan.worder;
                out_dtype = w.Lplan.w_dtype;
              })
            specs
        in
        of_rows (ncols plan) (Window_algos.run ~specs:wspecs rows)
    | Physical.Sort { keys; input; _ } ->
        let needed_in = IntSet.union needed (IntSet.of_list (List.map fst keys)) in
        let rows = drain ~gov:ctx.governor (build ctx counter input ~needed:needed_in) in
        Sort_algos.sort_rows keys rows;
        of_rows (ncols plan) rows
    | Physical.Top_k { k; offset; keys; input; _ } ->
        let needed_in = IntSet.union needed (IntSet.of_list (List.map fst keys)) in
        let child = build ctx counter input ~needed:needed_in in
        let cmp = Sort_algos.row_compare keys in
        let heap =
          Topk.create ~gov:ctx.governor ~bytes:Governor.row_bytes ~cmp
            ~k:(k + offset) ~dummy:[||] ()
        in
        let rec fill () =
          match child.next_batch () with
          | Some b ->
              for i = 0 to b.len - 1 do
                Topk.offer heap (row_of b i)
              done;
              fill ()
          | None -> child.close ()
        in
        fill ();
        let sorted = Topk.finish heap in
        let kept =
          if offset >= Array.length sorted then [||]
          else Array.sub sorted offset (Array.length sorted - offset)
        in
        of_rows (ncols plan) kept
    | Physical.Distinct (input, _) ->
        let all = IntSet.of_list (List.init (ncols input) Fun.id) in
        let rows = drain ~gov:ctx.governor (build ctx counter input ~needed:all) in
        of_rows (ncols plan) (Vec.to_array (Agg_algos.distinct ~gov:ctx.governor rows))
    | Physical.Limit { n; offset; input; _ } ->
        let child = build ctx counter input ~needed in
        let skipped = ref 0 and emitted = ref 0 in
        let rec next_batch () =
          match n with
          | Some n when !emitted >= n -> None
          | _ -> (
              match child.next_batch () with
              | None -> None
              | Some b ->
                  let keep = Quill_util.Int_vec.create () in
                  for i = 0 to b.len - 1 do
                    if !skipped < offset then incr skipped
                    else begin
                      match n with
                      | Some n when !emitted >= n -> ()
                      | _ ->
                          incr emitted;
                          Quill_util.Int_vec.push keep i
                    end
                  done;
                  if Quill_util.Int_vec.length keep = 0 then
                    if !emitted > 0 && n <> None && !emitted >= Option.get n then None
                    else next_batch ()
                  else Some (compact b keep))
        in
        { next_batch; close = child.close }
  in
  observed ctx id it

(** [run ctx plan] executes [plan] batch-at-a-time and returns all rows. *)
let run ctx plan =
  let counter = ref 0 in
  let arity = Quill_storage.Schema.arity (Physical.schema_of plan) in
  drain ~gov:ctx.governor
    (build ctx counter plan ~needed:(IntSet.of_list (List.init arity Fun.id)))
