(* The Volcano engine: classic tuple-at-a-time iterators.

   Every operator exposes [next : unit -> row option]; pipeline breakers
   (join, aggregate, sort, distinct) drain their child into an array and
   hand it to the shared algorithm library.  This engine is the
   architecture-oblivious baseline of experiment E2: per-tuple dynamic
   dispatch and boxed values throughout. *)

module Value = Quill_storage.Value
module Table = Quill_storage.Table
module Catalog = Quill_storage.Catalog
module Column = Quill_storage.Column
module Vec = Quill_util.Vec
module Bexpr = Quill_plan.Bexpr
module Lplan = Quill_plan.Lplan
module Physical = Quill_optimizer.Physical

type ctx = Exec_ctx.t = {
  catalog : Catalog.t;
  params : Value.t array;
  profile : Profile.t option;
  indexes : Quill_storage.Index.Registry.t;
  governor : Governor.t;
}

type iter = { next : unit -> Value.t array option; close : unit -> unit }

(* Rows pulled out of base-table scans, flushed to the registry once per
   exhausted scan so the per-tuple hot loop stays free of atomics. *)
let m_rows_scanned = Quill_obs.Metrics.counter "quill.exec.rows_scanned"

let observed ctx id iter =
  match ctx.profile with
  | None -> iter
  | Some p ->
      {
        iter with
        next =
          (fun () ->
            let t0 = Quill_util.Timer.now () in
            let r = iter.next () in
            Profile.add_time p id (Quill_util.Timer.now () -. t0);
            if r <> None then Profile.bump p id;
            r);
      }

(* Pipeline breakers materialize through [drain]; it is where the
   governor sees every buffered row (budget) and where blocking operators
   keep polling the deadline even when their children don't.  [~result]
   marks the top-level result drain, whose rows are charged as result
   delivery (uncharged in spill mode). *)
let drain ?(gov = Governor.none) ?(result = false) iter =
  let out = Vec.create ~dummy:[||] in
  let rec go () =
    match iter.next () with
    | Some row ->
        Governor.tick gov;
        if result then Governor.charge_result gov row
        else Governor.charge_row gov row;
        Vec.push out row;
        go ()
    | None -> iter.close ()
  in
  go ();
  Vec.to_array out

(* Out-of-core drain: buffer the child through a governor-registered
   spool, which dumps to spill runs instead of dying under the budget. *)
let drain_spool ?keys ~name ~gov iter =
  let sp = Spool.create ?keys ~name gov in
  let rec go () =
    match iter.next () with
    | Some row ->
        Spool.add sp row;
        go ()
    | None -> iter.close ()
  in
  go ();
  Spool.finish sp

let of_array rows =
  let pos = ref 0 in
  {
    next =
      (fun () ->
        if !pos < Array.length rows then begin
          let r = rows.(!pos) in
          incr pos;
          Some r
        end
        else None);
    close = ignore;
  }

let of_vec vec =
  let pos = ref 0 in
  {
    next =
      (fun () ->
        if !pos < Vec.length vec then begin
          let r = Vec.get vec !pos in
          incr pos;
          Some r
        end
        else None);
    close = ignore;
  }

let pred_fn ctx e row = Bexpr.eval_pred ~row ~params:ctx.params e

(* Preorder operator numbering shared with the profile. *)
let rec build ctx counter plan : iter =
  let id = !counter in
  incr counter;
  let it =
    match plan with
    | Physical.One_row ->
        let done_ = ref false in
        {
          next =
            (fun () ->
              if !done_ then None
              else begin
                done_ := true;
                Some [||]
              end);
          close = ignore;
        }
    | Physical.Scan { table; layout; filter; _ } ->
        let t = Catalog.find_exn ctx.catalog table in
        let n = Table.row_count t in
        let fetch =
          match layout with
          | Physical.Row_layout -> fun i -> Array.copy (Table.get_row t i)
          | Physical.Col_layout ->
              let cols = Table.columnar t in
              fun i -> Array.map (fun c -> Column.get c i) cols
        in
        let pos = ref 0 in
        let flushed = ref false in
        let rec next () =
          Governor.tick ctx.governor;
          if !pos >= n then begin
            if not !flushed then begin
              flushed := true;
              Quill_obs.Metrics.add m_rows_scanned n
            end;
            None
          end
          else begin
            let row = fetch !pos in
            incr pos;
            match filter with
            | Some f when not (pred_fn ctx f row) -> next ()
            | _ -> Some row
          end
        in
        { next; close = ignore }
    | Physical.Index_scan { table; col; col_name; lo; hi; residual; _ } ->
        let t = Catalog.find_exn ctx.catalog table in
        let lo = Index_access.eval_bound ~params:ctx.params lo in
        let hi = Index_access.eval_bound ~params:ctx.params hi in
        let ids = Index_access.rowids ctx ~table ~col_name ~col ~lo ~hi in
        let remaining = ref ids in
        let rec next () =
          Governor.tick ctx.governor;
          match !remaining with
          | [] -> None
          | i :: rest ->
              remaining := rest;
              let row = Array.copy (Table.get_row t i) in
              (match residual with
              | Some f when not (pred_fn ctx f row) -> next ()
              | _ -> Some row)
        in
        { next; close = ignore }
    | Physical.Filter (pred, input, _) ->
        let child = build ctx counter input in
        let rec next () =
          match child.next () with
          | None -> None
          | Some row -> if pred_fn ctx pred row then Some row else next ()
        in
        { next; close = child.close }
    | Physical.Project (items, input, _) ->
        let child = build ctx counter input in
        let exprs = Array.of_list (List.map fst items) in
        {
          next =
            (fun () ->
              match child.next () with
              | None -> None
              | Some row ->
                  Some (Array.map (fun e -> Bexpr.eval ~row ~params:ctx.params e) exprs));
          close = child.close;
        }
    | Physical.Join
        { algo = Physical.Hash_join; kind; keys; residual; build_left; left; right; _ }
      when Governor.can_spill ctx.governor ->
        (* Out-of-core: spool both sides (spillable) and Grace-join them. *)
        let gov = ctx.governor in
        let lset = drain_spool ~name:"join-input" ~gov (build ctx counter left) in
        let rset = drain_spool ~name:"join-input" ~gov (build ctx counter right) in
        let residual_fn = Option.map (fun e -> pred_fn ctx e) residual in
        let mode =
          match kind with Lplan.Inner -> Join_algos.Inner | Lplan.Left_outer -> Join_algos.Left_outer
        in
        let right_arity = Quill_storage.Schema.arity (Physical.schema_of right) in
        let out = Vec.create ~dummy:[||] in
        Join_algos.spill_hash_join ~gov ~mode ~keys ~residual:residual_fn
          ~build_left ~right_arity ~emit:(Vec.push out) lset rset;
        of_vec out
    | Physical.Join { algo; kind; keys; residual; build_left; left; right; _ } ->
        let gov = ctx.governor in
        let lrows = drain ~gov (build ctx counter left) in
        let rrows = drain ~gov (build ctx counter right) in
        let residual_fn = Option.map (fun e -> pred_fn ctx e) residual in
        let mode =
          match kind with Lplan.Inner -> Join_algos.Inner | Lplan.Left_outer -> Join_algos.Left_outer
        in
        let right_arity = Quill_storage.Schema.arity (Physical.schema_of right) in
        let out =
          match algo with
          | Physical.Hash_join ->
              Join_algos.hash_join ~gov ~mode ~right_arity ~keys ~residual:residual_fn
                ~build_left lrows rrows
          | Physical.Merge_join ->
              Join_algos.merge_join ~gov ~mode ~right_arity ~keys ~residual:residual_fn
                lrows rrows
          | Physical.Block_nl ->
              Join_algos.block_nl_join ~gov ~mode ~right_arity ~pred:residual_fn lrows rrows
        in
        of_vec out
    | Physical.Aggregate { algo; keys; aggs; input; _ } ->
        let key_fns =
          List.map (fun (e, _) row -> Bexpr.eval ~row ~params:ctx.params e) keys
        in
        let specs =
          List.map
            (fun (a, _) ->
              {
                Agg_algos.kind = a.Lplan.kind;
                arg =
                  Option.map
                    (fun e row -> Bexpr.eval ~row ~params:ctx.params e)
                    a.Lplan.arg;
                distinct = a.Lplan.distinct;
                out_dtype = a.Lplan.out_dtype;
              })
            aggs
        in
        let out =
          if Governor.can_spill ctx.governor then begin
            (* Out-of-core: stream rows into a spillable group builder
               instead of materializing the input first. *)
            let b =
              Agg_algos.create_builder ~gov:ctx.governor ~keys:key_fns ~specs ()
            in
            let child = build ctx counter input in
            let rec go () =
              match child.next () with
              | Some row ->
                  Agg_algos.feed_builder b row;
                  go ()
              | None -> child.close ()
            in
            go ();
            Agg_algos.finish_builder ~ordered:(algo = Physical.Sort_agg) b
          end
          else
            let rows = drain ~gov:ctx.governor (build ctx counter input) in
            match algo with
            | Physical.Hash_agg ->
                Agg_algos.hash_agg ~gov:ctx.governor ~keys:key_fns ~specs rows
            | Physical.Sort_agg ->
                Agg_algos.sort_agg ~gov:ctx.governor ~keys:key_fns ~specs rows
        in
        of_vec out
    | Physical.Window { specs; input; _ } ->
        let rows = drain ~gov:ctx.governor (build ctx counter input) in
        let wspecs =
          List.map
            (fun ((w : Lplan.wspec), _) ->
              {
                Window_algos.kind = w.Lplan.wkind;
                arg = Option.map (fun e row -> Bexpr.eval ~row ~params:ctx.params e) w.Lplan.warg;
                partition =
                  List.map (fun e row -> Bexpr.eval ~row ~params:ctx.params e) w.Lplan.partition;
                order =
                  List.map
                    (fun (e, d) -> ((fun row -> Bexpr.eval ~row ~params:ctx.params e), d))
                    w.Lplan.worder;
                out_dtype = w.Lplan.w_dtype;
              })
            specs
        in
        of_array (Window_algos.run ~specs:wspecs rows)
    | Physical.Sort { keys; input; _ } when Governor.can_spill ctx.governor ->
        (* Out-of-core: a keyed spool is an external merge sort. *)
        let set =
          drain_spool ~keys ~name:"sort" ~gov:ctx.governor
            (build ctx counter input)
        in
        of_array (Spool.to_array set)
    | Physical.Sort { keys; input; _ } ->
        let rows = drain ~gov:ctx.governor (build ctx counter input) in
        Sort_algos.sort_rows keys rows;
        of_array rows
    | Physical.Top_k { k; offset; keys; input; _ } ->
        let child = build ctx counter input in
        let cmp = Sort_algos.row_compare keys in
        let heap =
          Topk.create ~gov:ctx.governor ~bytes:Governor.row_bytes ~keys ~cmp
            ~k:(k + offset) ~dummy:[||] ()
        in
        let rec fill () =
          match child.next () with
          | Some row ->
              Topk.offer heap row;
              fill ()
          | None -> child.close ()
        in
        fill ();
        let sorted = Topk.finish heap in
        let kept =
          if offset >= Array.length sorted then [||]
          else Array.sub sorted offset (Array.length sorted - offset)
        in
        of_array kept
    | Physical.Distinct (input, _) ->
        let rows = drain ~gov:ctx.governor (build ctx counter input) in
        of_vec (Agg_algos.distinct ~gov:ctx.governor rows)
    | Physical.Limit { n; offset; input; _ } ->
        let child = build ctx counter input in
        let emitted = ref 0 and skipped = ref 0 in
        let rec next () =
          match n with
          | Some n when !emitted >= n -> None
          | _ -> (
              match child.next () with
              | None -> None
              | Some row ->
                  if !skipped < offset then begin
                    incr skipped;
                    next ()
                  end
                  else begin
                    incr emitted;
                    Some row
                  end)
        in
        { next; close = child.close }
  in
  observed ctx id it

(** [run ctx plan] executes [plan] and returns all result rows. *)
let run ctx plan =
  let counter = ref 0 in
  drain ~gov:ctx.governor ~result:true (build ctx counter plan)
