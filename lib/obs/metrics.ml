(* The process-wide metrics registry.

   Counters, gauges and histograms are interned by name at module-init
   time by the subsystems that feed them (executors, plan cache, tiering,
   domain pool), so the hot path is a single [Atomic] operation with no
   table lookup.  Histograms use fixed log-scale buckets: bucket [i]
   covers values up to [lowest * ratio^i], which spans nanoseconds to
   hours in 28 buckets without any per-observation allocation.

   All mutation is lock-free (pool workers bump counters concurrently);
   the registration table itself is guarded by a mutex but is only
   touched at module initialization and from [snapshot]/[reset]. *)

type counter = { c_name : string; c : int Atomic.t }
type gauge = { g_name : string; g : int Atomic.t }

type histogram = {
  h_name : string;
  buckets : int Atomic.t array;  (* last bucket catches overflow *)
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
}

(* Histogram shape: bucket [i] holds observations <= lowest * ratio^i.
   1e-7 * 4^i for 28 buckets reaches ~1.8e9, covering durations from
   100ns to decades and row counts from 1 to billions. *)
let bucket_lowest = 1e-7
let bucket_ratio = 4.0
let bucket_count = 28

(** [bucket_bound i] is the inclusive upper bound of bucket [i] (the last
    bucket is unbounded). *)
let bucket_bound i =
  if i >= bucket_count - 1 then Float.infinity
  else bucket_lowest *. (bucket_ratio ** Float.of_int i)

let bucket_index v =
  if Float.is_nan v || v <= bucket_lowest then 0
  else begin
    let i = Float.to_int (Float.ceil (Float.log (v /. bucket_lowest) /. Float.log bucket_ratio)) in
    if i >= bucket_count then bucket_count - 1 else max 0 i
  end

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 32
let registry_mutex = Mutex.create ()

let intern name make select =
  Mutex.protect registry_mutex (fun () ->
      let m =
        match Hashtbl.find_opt registry name with
        | Some m -> m
        | None ->
            let m = make () in
            Hashtbl.replace registry name m;
            m
      in
      match select m with
      | Some v -> v
      | None -> invalid_arg (Printf.sprintf "metric %S registered with another type" name))

(** [counter name] returns the process-wide counter [name], creating it
    on first use. *)
let counter name =
  intern name
    (fun () -> Counter { c_name = name; c = Atomic.make 0 })
    (function Counter c -> Some c | _ -> None)

(** [gauge name] returns the process-wide gauge [name]. *)
let gauge name =
  intern name
    (fun () -> Gauge { g_name = name; g = Atomic.make 0 })
    (function Gauge g -> Some g | _ -> None)

(** [histogram name] returns the process-wide histogram [name]. *)
let histogram name =
  intern name
    (fun () ->
      Histogram
        {
          h_name = name;
          buckets = Array.init bucket_count (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0;
          h_sum = Atomic.make 0.0;
        })
    (function Histogram h -> Some h | _ -> None)

(** [incr c] adds 1 to counter [c]. *)
let incr c = ignore (Atomic.fetch_and_add c.c 1)

(** [add c n] adds [n] to counter [c]. *)
let add c n = ignore (Atomic.fetch_and_add c.c n)

(** [value c] reads counter [c]. *)
let value c = Atomic.get c.c

(** [set g v] sets gauge [g] to [v]. *)
let set g v = Atomic.set g.g v

(** [gauge_value g] reads gauge [g]. *)
let gauge_value g = Atomic.get g.g

let rec atomic_add_float a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then atomic_add_float a x

(** [observe h v] records one observation in histogram [h]. *)
let observe h v =
  ignore (Atomic.fetch_and_add h.buckets.(bucket_index v) 1);
  ignore (Atomic.fetch_and_add h.h_count 1);
  atomic_add_float h.h_sum v

(** [observations h] is the total number of observations in [h]. *)
let observations h = Atomic.get h.h_count

(** [sum h] is the sum of all observed values. *)
let sum h = Atomic.get h.h_sum

(** [mean h] is the mean observed value (0 when empty). *)
let mean h =
  let n = observations h in
  if n = 0 then 0.0 else sum h /. Float.of_int n

(** [quantile h q] approximates the [q]-quantile ([0..1]) from the bucket
    counts, returning the upper bound of the bucket the quantile falls
    in. *)
let quantile h q =
  let n = observations h in
  if n = 0 then 0.0
  else begin
    let target = Float.to_int (Float.of_int n *. q) in
    let acc = ref 0 and found = ref (bucket_bound (bucket_count - 2)) in
    (try
       Array.iteri
         (fun i b ->
           acc := !acc + Atomic.get b;
           if !acc > target then begin
             found := bucket_bound i;
             raise Exit
           end)
         h.buckets
     with Exit -> ());
    !found
  end

(** [percentiles h] is [(p50, p95, p99)] — the standard latency-report
    triple, each the upper bound of the bucket the quantile falls in. *)
let percentiles h = (quantile h 0.5, quantile h 0.95, quantile h 0.99)

type snapshot_entry =
  | Counter_value of string * int
  | Gauge_value of string * int
  | Histogram_value of string * int * float * float  (* count, sum, p99 bound *)

(** [snapshot ()] lists every registered metric with its current value,
    sorted by name. *)
let snapshot () =
  let entries =
    Mutex.protect registry_mutex (fun () ->
        Hashtbl.fold (fun _ m acc -> m :: acc) registry [])
  in
  entries
  |> List.map (function
       | Counter c -> Counter_value (c.c_name, value c)
       | Gauge g -> Gauge_value (g.g_name, gauge_value g)
       | Histogram h -> Histogram_value (h.h_name, observations h, sum h, quantile h 0.99))
  |> List.sort (fun a b ->
         let name = function
           | Counter_value (n, _) | Gauge_value (n, _) | Histogram_value (n, _, _, _) -> n
         in
         compare (name a) (name b))

(** [render ()] pretty-prints the registry for the [\metrics] shell
    command. *)
let render () =
  let rows =
    List.map
      (function
        | Counter_value (n, v) -> [ n; "counter"; string_of_int v ]
        | Gauge_value (n, v) -> [ n; "gauge"; string_of_int v ]
        | Histogram_value (n, count, s, p99) ->
            [ n; "histogram";
              Printf.sprintf "count=%d sum=%s p99<=%s" count
                (Quill_util.Pretty.float_cell s)
                (Quill_util.Pretty.float_cell p99) ])
      (snapshot ())
  in
  Quill_util.Pretty.render ~header:[ "metric"; "kind"; "value" ] rows

(** [reset ()] zeroes every registered metric (tests); registrations are
    kept so interned handles stay valid. *)
let reset () =
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | Counter c -> Atomic.set c.c 0
          | Gauge g -> Atomic.set g.g 0
          | Histogram h ->
              Array.iter (fun b -> Atomic.set b 0) h.buckets;
              Atomic.set h.h_count 0;
              Atomic.set h.h_sum 0.0)
        registry)
