(* The query-lifecycle span tracer.

   Spans cover the pipeline phases (parse -> bind -> rewrite -> join-order
   -> pick -> codegen -> execute) and nest: a [with_span] opened while
   another is running records the parent's sequence number and a depth one
   deeper.  Tracing is off by default; when disabled, [with_span] is a
   single [ref] load and a tail call, so instrumented code paths cost
   nothing measurable (the E13 acceptance bar).

   Finished spans accumulate in an in-memory buffer until [clear];
   [to_chrome_json] renders them as Chrome trace-event JSON ("X" complete
   events, microsecond timestamps) loadable in chrome://tracing, Perfetto
   or speedscope.

   Pool workers report through {!Metrics} instead of opening spans, but
   server sessions run queries from many threads, so the buffer and the
   open-span stack are guarded by a mutex.  The disabled path stays a
   single unsynchronized flag load — the E13 bar is unaffected. *)

type span = {
  name : string;
  cat : string;  (** Chrome trace category, e.g. "query" or "compile" *)
  args : (string * string) list;
  start : float;  (** seconds since the trace epoch *)
  dur : float;
  depth : int;  (** nesting depth at open time; 0 = top-level *)
  seq : int;  (** span open order, unique per trace buffer *)
  parent : int;  (** [seq] of the enclosing span, -1 at top level *)
  marker : bool;  (** true for zero-duration instant events *)
}

let enabled_flag = ref false
let finished : span Quill_util.Vec.t option ref = ref None
let epoch = ref 0.0
let next_seq = ref 0

(* Guards every mutable structure below when tracing is enabled. *)
let lock = Mutex.create ()

(* Stack of (seq, depth) for open spans. *)
let open_spans : (int * int) list ref = ref []

let buffer () =
  match !finished with
  | Some v -> v
  | None ->
      let v =
        Quill_util.Vec.create
          ~dummy:{ name = ""; cat = ""; args = []; start = 0.0; dur = 0.0;
                   depth = 0; seq = 0; parent = -1; marker = false }
      in
      finished := Some v;
      v

(** [enabled ()] is true when spans are being recorded. *)
let enabled () = !enabled_flag

(** [clear ()] drops all recorded spans and restarts the trace epoch. *)
let clear () =
  Mutex.protect lock (fun () ->
      (match !finished with Some v -> Quill_util.Vec.clear v | None -> ());
      open_spans := [];
      next_seq := 0;
      epoch := Quill_util.Timer.now ())

(** [set_enabled b] turns tracing on or off.  Turning it on starts a
    fresh epoch; recorded spans survive turning it off (so a session can
    stop tracing and then export). *)
let set_enabled b =
  if b && not !enabled_flag then clear ();
  enabled_flag := b

let record name cat args t0 =
  let seq, depth, parent =
    Mutex.protect lock (fun () ->
        let seq = !next_seq in
        incr next_seq;
        let depth = List.length !open_spans in
        let parent = match !open_spans with (p, _) :: _ -> p | [] -> -1 in
        open_spans := (seq, depth) :: !open_spans;
        (seq, depth, parent))
  in
  fun () ->
    let t1 = Quill_util.Timer.now () in
    Mutex.protect lock (fun () ->
        (match !open_spans with
        | (s, _) :: rest when s = seq -> open_spans := rest
        | stack ->
            (* A child span leaked past its parent (exception path); drop
               everything above it. *)
            open_spans := List.filter (fun (s, _) -> s < seq) stack);
        Quill_util.Vec.push (buffer ())
          { name; cat; args; start = t0 -. !epoch; dur = t1 -. t0; depth; seq;
            parent; marker = false })

(** [with_span ?cat ?args name f] runs [f ()] inside a span named [name];
    when tracing is disabled this is exactly [f ()]. *)
let with_span ?(cat = "query") ?(args = []) name f =
  if not !enabled_flag then f ()
  else begin
    let finish = record name cat args (Quill_util.Timer.now ()) in
    Fun.protect ~finally:finish f
  end

(** [instant ?cat ?args name] records a zero-duration marker span. *)
let instant ?(cat = "query") ?(args = []) name =
  if !enabled_flag then
    Mutex.protect lock (fun () ->
        let seq = !next_seq in
        incr next_seq;
        let parent = match !open_spans with (p, _) :: _ -> p | [] -> -1 in
        Quill_util.Vec.push (buffer ())
          { name; cat; args; start = Quill_util.Timer.now () -. !epoch; dur = 0.0;
            depth = List.length !open_spans; seq; parent; marker = true })

(** [spans ()] lists recorded spans in span-open order. *)
let spans () =
  Mutex.protect lock (fun () ->
      match !finished with
      | None -> []
      | Some v ->
          List.sort
            (fun a b -> compare a.seq b.seq)
            (Array.to_list (Quill_util.Vec.to_array v)))

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** [to_chrome_json ()] renders the recorded spans as a Chrome
    trace-event JSON array (ph="X" complete events; ph="i" instants),
    timestamps in microseconds since the trace epoch. *)
let to_chrome_json () =
  let buf = Buffer.create 1024 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      let args =
        match s.args with
        | [] -> ""
        | kvs ->
            Printf.sprintf ",\"args\":{%s}"
              (String.concat ","
                 (List.map
                    (fun (k, v) ->
                      Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
                    kvs))
      in
      if s.marker then
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.1f,\"pid\":1,\"tid\":1%s}"
             (json_escape s.name) (json_escape s.cat) (s.start *. 1e6) args)
      else
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.1f,\"dur\":%.1f,\"pid\":1,\"tid\":1%s}"
             (json_escape s.name) (json_escape s.cat) (s.start *. 1e6) (s.dur *. 1e6) args))
    (spans ());
  Buffer.add_char buf ']';
  Buffer.contents buf
