(* Cardinality and statistics propagation through logical plans.

   Every plan node gets an estimated row count plus per-output-column
   statistics (where derivable); both feed the cost model and the algorithm
   picker.  Estimates degrade gracefully: unknown columns map to [None] and
   magic selectivities take over. *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema
module Lplan = Quill_plan.Lplan
module Bexpr = Quill_plan.Bexpr
module Table_stats = Quill_stats.Table_stats
module Estimate = Quill_stats.Estimate

type env = {
  catalog : Quill_storage.Catalog.t;
  registry : Table_stats.Registry.reg;
  hints : (string, float) Hashtbl.t;
      (** feedback: predicate fingerprint -> observed selectivity *)
  indexed : string -> int list;
      (** table name -> column positions with a declared ordered index *)
  params : Value.t array;
      (** bound parameter values of the execution being planned, for
          parameter peeking; [[||]] when planning generically *)
}

(** [make_env ?hints ?indexed ?params catalog registry] builds an
    estimation environment; [indexed] reports declared index positions per
    table and [params] enables parameter peeking in selectivity
    estimates. *)
let make_env ?hints ?(indexed = fun _ -> []) ?(params = [||]) catalog registry
    =
  { catalog; registry; indexed; params;
    hints = Option.value ~default:(Hashtbl.create 4) hints }

type t = { rows : float; cols : Table_stats.col_stats option array }

let lookup_of (c : t) : Estimate.lookup =
 fun i -> if i >= 0 && i < Array.length c.cols then c.cols.(i) else None

(* Cap NDV by the (possibly reduced) row count. *)
let rescale_cols rows cols =
  Array.map
    (Option.map (fun s ->
         { s with Table_stats.ndv = Float.min s.Table_stats.ndv (Float.max 1.0 rows) }))
    cols

(* Key columns of an equi-join condition: pairs (left col, right col) in
   the concatenated numbering, given the left arity. *)
let equi_pairs ~left_arity cond =
  match cond with
  | None -> []
  | Some c ->
      List.filter_map
        (fun conj ->
          match conj.Bexpr.node with
          | Bexpr.Cmp (Bexpr.Eq, a, b) -> (
              match (a.Bexpr.node, b.Bexpr.node) with
              | Bexpr.Col i, Bexpr.Col j when i < left_arity && j >= left_arity ->
                  Some (i, j - left_arity)
              | Bexpr.Col i, Bexpr.Col j when j < left_arity && i >= left_arity ->
                  Some (j, i - left_arity)
              | _ -> None)
          | _ -> None)
        (Bexpr.conjuncts c)

(** [derive env plan] estimates output cardinality and column statistics
    for [plan]. *)
let rec derive env (plan : Lplan.t) : t =
  match plan with
  | Lplan.One_row -> { rows = 1.0; cols = [||] }
  | Lplan.Scan { table; _ } ->
      let stats = Table_stats.Registry.get_if_fresh env.registry env.catalog table in
      {
        rows = Float.of_int stats.Table_stats.row_count;
        cols = Array.map Option.some stats.Table_stats.cols;
      }
  | Lplan.Filter (pred, input) ->
      let c = derive env input in
      let sel =
        (* Feedback hints from prior executions win over the estimator. *)
        match Hashtbl.find_opt env.hints (Bexpr.to_string pred) with
        | Some s -> s
        | None -> Estimate.selectivity ~params:env.params (lookup_of c) pred
      in
      let rows = Float.max 0.0 (c.rows *. sel) in
      { rows; cols = rescale_cols rows c.cols }
  | Lplan.Project (items, input) ->
      let c = derive env input in
      let cols =
        Array.of_list
          (List.map
             (fun (e, _) ->
               match e.Bexpr.node with
               | Bexpr.Col i when i < Array.length c.cols -> c.cols.(i)
               | _ -> None)
             items)
      in
      { rows = c.rows; cols }
  | Lplan.Join { kind; cond; left; right } ->
      let cl = derive env left and cr = derive env right in
      let left_arity = Array.length cl.cols in
      let pairs = equi_pairs ~left_arity cond in
      let cross = cl.rows *. cr.rows in
      let sel_join =
        Estimate.join_selectivity ~left:(lookup_of cl) ~right:(lookup_of cr) pairs
      in
      (* Residual (non-equi) conjuncts scale further. *)
      let residual_sel =
        match cond with
        | None -> 1.0
        | Some c ->
            let combined = Array.append cl.cols cr.cols in
            let lk i = if i < Array.length combined then combined.(i) else None in
            List.fold_left
              (fun acc conj ->
                match conj.Bexpr.node with
                | Bexpr.Cmp (Bexpr.Eq, a, b)
                  when (match (a.Bexpr.node, b.Bexpr.node) with
                       | Bexpr.Col i, Bexpr.Col j ->
                           (i < left_arity) <> (j < left_arity)
                       | _ -> false) ->
                    acc (* already counted as an equi pair *)
                | _ -> acc *. Estimate.selectivity lk conj)
              1.0 (Bexpr.conjuncts c)
      in
      let rows = Float.max 1.0 (cross *. sel_join *. residual_sel) in
      (* A left outer join preserves at least every left row. *)
      let rows = if kind = Lplan.Left_outer then Float.max rows cl.rows else rows in
      { rows; cols = rescale_cols rows (Array.append cl.cols cr.cols) }
  | Lplan.Aggregate { keys; aggs; input } ->
      let c = derive env input in
      let groups =
        if keys = [] then 1.0
        else
          let prod =
            List.fold_left
              (fun acc (e, _) ->
                let ndv =
                  match e.Bexpr.node with
                  | Bexpr.Col i when i < Array.length c.cols -> (
                      match c.cols.(i) with
                      | Some s -> s.Table_stats.ndv
                      | None -> Float.max 1.0 (c.rows /. 10.0))
                  | _ -> Float.max 1.0 (c.rows /. 10.0)
                in
                acc *. Float.max 1.0 ndv)
              1.0 keys
          in
          Float.min prod (Float.max 1.0 c.rows)
      in
      let key_cols =
        List.map
          (fun (e, _) ->
            match e.Bexpr.node with
            | Bexpr.Col i when i < Array.length c.cols -> c.cols.(i)
            | _ -> None)
          keys
      in
      let agg_cols = List.map (fun _ -> None) aggs in
      { rows = groups; cols = rescale_cols groups (Array.of_list (key_cols @ agg_cols)) }
  | Lplan.Window { specs; input } ->
      let c = derive env input in
      { rows = c.rows;
        cols = Array.append c.cols (Array.of_list (List.map (fun _ -> None) specs)) }
  | Lplan.Sort { input; _ } -> derive env input
  | Lplan.Distinct input ->
      let c = derive env input in
      (* Distinct rows bounded by the product of column NDVs. *)
      let prod =
        Array.fold_left
          (fun acc s ->
            match s with
            | Some s -> acc *. Float.max 1.0 s.Table_stats.ndv
            | None -> acc *. Float.max 1.0 (c.rows /. 10.0))
          1.0 c.cols
      in
      let rows = Float.min c.rows (Float.max 1.0 prod) in
      { rows; cols = rescale_cols rows c.cols }
  | Lplan.Limit { n; offset; input } ->
      let c = derive env input in
      let rows =
        match n with
        | None -> Float.max 0.0 (c.rows -. Float.of_int offset)
        | Some n -> Float.min (Float.of_int n) c.rows
      in
      { rows; cols = c.cols }

(** [avg_row_width c] estimates the byte width of a row, for data-movement
    costing. *)
let avg_row_width (c : t) =
  Array.fold_left
    (fun acc s ->
      acc +. match s with Some s -> s.Table_stats.avg_width | None -> 8.0)
    0.0 c.cols

(** [selectivity_band s] maps a selectivity estimate to a coarse decade
    band: 0 for s in (0.1, 1], 1 for (0.01, 0.1], ... capped at 6.  Plans
    picked inside one band stay valid for any parameters landing in the
    same band; crossing bands is what triggers a plan-cache re-pick. *)
let selectivity_band s =
  if Float.is_nan s || s <= 0.0 then 6
  else
    let b = int_of_float (Float.floor (-.Float.log10 s)) in
    if b < 0 then 0 else if b > 6 then 6 else b

(** [param_selectivity env plan] is [Some f] when [plan] contains filter
    predicates that mention bound parameters; [f params] then estimates
    the combined selectivity of those predicates under the given
    parameter values.  [None] means the plan shape cannot depend on
    parameter values, so one cached plan fits all executions. *)
let param_selectivity env (plan : Lplan.t) =
  (* Collect (pred, lookup over the predicate's input) for every
     parameterized filter; the lookups snapshot the stats at planning
     time, which is fine because catalog-version bumps invalidate the
     cached classifier along with the cached plans. *)
  let preds = ref [] in
  let rec walk (p : Lplan.t) =
    (match p with
    | Lplan.Filter (pred, input) when Bexpr.mentions_param pred ->
        preds := (pred, lookup_of (derive env input)) :: !preds
    | _ -> ());
    match p with
    | Lplan.One_row | Lplan.Scan _ -> ()
    | Lplan.Filter (_, i) | Lplan.Project (_, i) | Lplan.Distinct i -> walk i
    | Lplan.Join { left; right; _ } ->
        walk left;
        walk right
    | Lplan.Aggregate { input; _ }
    | Lplan.Window { input; _ }
    | Lplan.Sort { input; _ }
    | Lplan.Limit { input; _ } ->
        walk input
  in
  walk plan;
  match !preds with
  | [] -> None
  | preds ->
      Some
        (fun params ->
          List.fold_left
            (fun acc (pred, lookup) ->
              acc *. Estimate.selectivity ~params lookup pred)
            1.0 preds)
