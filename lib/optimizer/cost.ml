(* The cost model.

   Costs are abstract units calibrated so that one unit is roughly one
   simple per-tuple operation in the interpreter.  Each formula has two
   parts, a CPU term and a data-movement term — the movement term (bytes
   over an assumed cache-line economy) is what makes layout and algorithm
   choices "hardware-conscious" in the sense of the keynote (claim C1):
   algorithms that stream sequentially are charged less per byte than
   algorithms that chase pointers. *)

(* CPU constants (units per tuple). *)
let cpu_tuple = 1.0  (* touching a tuple in the interpreter *)
let cpu_compare = 0.5  (* one comparison *)
let cpu_hash = 1.0  (* hashing a key *)
let cpu_expr_term = 0.3  (* evaluating one expression node *)

(* Data-movement constants (units per byte). *)
let seq_byte = 0.005  (* sequential streaming *)
let rand_byte = 0.05  (* random access (hash probes, row stores) *)

(* Columnar scans process values out of typed arrays: cheaper per value
   and they move only referenced columns.  [col_value_cpu] is the boxed
   batch path's historical constant; since the vectorized engine moved to
   typed batches with selection vectors (zero-copy scan windows, unboxed
   kernels, no per-batch boxing), its per-value cost dropped to
   [col_value_cpu_typed] — calibrated against the E18 ablation
   (BENCH_vector.json), which measures the typed path ~10x the boxed
   path on pure scan+filter and 4-5x on scan->filter->hash-agg (the
   aggregate's per-group work is layout-independent, so the end-to-end
   ratio is smaller than the per-value one the constant encodes). *)
let col_value_cpu = 0.25
let col_value_cpu_typed = 0.1
let row_value_cpu = 1.0

let log2 x = if x <= 2.0 then 1.0 else Float.log x /. Float.log 2.0

(* Morsel-parallel operators divide their CPU term by the expected worker
   count ([workers], the session parallelism goal; 1 = serial).  The
   data-movement terms are deliberately NOT divided: domains share the
   memory bus, so bandwidth-bound work gains little from more workers —
   which is exactly the trade-off that makes the picker prefer
   compute-heavy parallel plans over movement-heavy ones. *)
let par ~workers cpu = cpu /. Float.max 1.0 (Float.of_int workers)

(** [scan_row ~rows ~row_width] full scan of a row store. *)
let scan_row ~rows ~row_width =
  (rows *. cpu_tuple *. row_value_cpu) +. (rows *. row_width *. seq_byte)

(** [scan_col ~rows ~read_width] columnar scan touching only [read_width]
    bytes per row; the engines scan columnar layouts morsel-parallel, so
    the CPU term divides by [workers].  Charged at the typed-batch rate:
    batches are zero-copy windows over the storage columns. *)
let scan_col ?(workers = 1) ~rows ~read_width () =
  par ~workers (rows *. cpu_tuple *. col_value_cpu_typed)
  +. (rows *. read_width *. seq_byte)

(* Filters over columnar scans run as unboxed predicate kernels looping a
   selection vector (both the vectorized and compiled engines), charged
   below the generic boxed [cpu_expr_term].  Re-validated crossovers: the
   cheaper filtered scan moves the index-scan break-even towards more
   selective predicates (index_scan's per-match fetch constant dominates
   both ways), and row-vs-column layout pricing shifts further towards
   columnar for scan-heavy plans — both re-checked by the optimizer and
   index suites. *)
let cpu_kernel_term = 0.25

(** [filter ~rows ~terms] predicate evaluation over [rows]; runs inside
    parallel scan pipelines, so it divides by [workers]. *)
let filter ?(workers = 1) ~rows ~terms () =
  par ~workers (rows *. cpu_kernel_term *. Float.max 1.0 (Float.of_int terms))

(** [project ~rows ~exprs] projection compute cost. *)
let project ~rows ~exprs = rows *. cpu_expr_term *. Float.max 1.0 (Float.of_int exprs)

(* A build/group structure smaller than this is effectively cache
   resident, so random probes into it are cheap. *)
let cache_bytes = 4.0e6

(** [hash_join ~build ~probe ~out ~build_width] classic build+probe; the
    random-access penalty on probes scales with how far the hash table
    spills out of cache.  The probe phase reads a shared build table and
    runs morsel-parallel, so its CPU term divides by [workers]; the build
    phase is serial. *)
let hash_join ?(workers = 1) ~build ~probe ~out ~build_width () =
  (* Hash-table entries carry fixed overhead (buckets, boxed keys) on top
     of the payload. *)
  let entry_bytes = build_width +. 64.0 in
  let spill = Float.min 1.0 (build *. entry_bytes /. cache_bytes) in
  (build *. (cpu_hash +. cpu_tuple))
  +. (build *. build_width *. seq_byte)
  +. par ~workers (probe *. (cpu_hash +. cpu_compare))
  (* Probes hit the hash table randomly, but only hurt once it exceeds
     the cache. *)
  +. (probe *. entry_bytes *. rand_byte *. spill)
  +. (out *. cpu_tuple)

(** [sort ~rows ~width] comparison sort, n log n compares plus movement. *)
let sort ~rows ~width =
  (rows *. log2 rows *. cpu_compare *. 2.0) +. (2.0 *. rows *. width *. seq_byte)

(** [radix_sort ~rows ~width] linear-time LSD radix sort, available when
    the key is a single integer (see {!Quill_exec.Sort_algos}). *)
let radix_sort ~rows ~width =
  (rows *. 3.0 *. cpu_compare) +. (2.0 *. rows *. width *. seq_byte)

(** [merge_join ~left ~right ~out ~lw ~rw ~left_sorted ~right_sorted
    ?int_keys ()] sort-merge join; pre-sorted inputs skip their sort, and a
    single integer key uses the linear radix path. *)
let merge_join ~left ~right ~out ~lw ~rw ~left_sorted ~right_sorted
    ?(int_keys = false) () =
  let sort1 = if int_keys then radix_sort else sort in
  (if left_sorted then 0.0 else sort1 ~rows:left ~width:lw)
  +. (if right_sorted then 0.0 else sort1 ~rows:right ~width:rw)
  +. ((left +. right) *. cpu_compare *. 2.0)
  +. (out *. cpu_tuple)

(** [block_nl_join ~outer ~inner ~out ~inner_width] blocked nested loops;
    the inner side streams repeatedly but sequentially. A tiny inner
    relation is effectively cache-resident, which the movement term
    reflects by charging its bytes once per outer block. *)
let block_nl_join ~outer ~inner ~out ~inner_width =
  let block = 1024.0 in
  let passes = Float.max 1.0 (outer /. block) in
  (outer *. inner *. cpu_compare)
  +. (passes *. inner *. inner_width *. seq_byte)
  +. (out *. cpu_tuple)

(** [hash_agg ~rows ~groups ~key_width] hash aggregation; random access to
    group state only hurts once the group table exceeds the cache.  The
    feed loop runs morsel-parallel into per-worker partial tables, so its
    CPU term divides by [workers]; the merge adds one pass over each
    worker's groups. *)
let hash_agg ?(workers = 1) ~rows ~groups ~key_width () =
  let spill = Float.min 1.0 (groups *. (key_width +. 32.0) /. cache_bytes) in
  let merge =
    if workers <= 1 then 0.0
    else Float.of_int (workers - 1) *. groups *. cpu_tuple
  in
  par ~workers (rows *. (cpu_hash +. cpu_tuple))
  +. (rows *. (key_width +. 32.0) *. rand_byte *. spill)
  +. (groups *. cpu_tuple)
  +. merge

(** [sort_agg ~rows ~width ~sorted] aggregation over sorted runs. *)
let sort_agg ~rows ~width ~sorted =
  (if sorted then 0.0 else sort ~rows ~width) +. (rows *. cpu_tuple)

(** [distinct ~rows ~width] hash-based duplicate elimination. *)
let distinct ~rows ~width = hash_agg ~rows ~groups:rows ~key_width:width ()

(** [top_k ~rows ~k] heap-based top-k: one pass with log k maintenance. *)
let top_k ~rows ~k = rows *. cpu_compare *. log2 (Float.max 2.0 k)

(** [compile_setup ~operators] fixed cost of staging a plan into closures;
    charged once, amortized by the tiering policy (claim C4 / E5).  The
    tiering layer converts this to seconds to seed its break-even before
    it has measured a real staging pass in this process
    ({!Quill_adaptive.Tiering.est_full_compile_seconds}); once compiles
    have been observed, the measured EWMA displaces this prior. *)
let compile_setup ~operators = 2000.0 +. (500.0 *. Float.of_int operators)

(** [stencil_bind_setup] cost of binding a covered plan shape to a
    pre-composed stencil (copy-and-patch tier): a shape match plus one
    patch record, independent of plan depth for covered shapes and small
    enough that binding is attempted on the very first execution.  E23
    gates the measured full-vs-stencil ratio. *)
let stencil_bind_setup = 50.0

(** Compiled execution processes tuples roughly this much cheaper than the
    tuple-at-a-time interpreter; used only for tier decisions, the real
    ratio is measured by E1/E2. *)
let compiled_speedup = 4.0

(** [index_scan ~total ~matches ~row_width] B-tree-style range scan:
    logarithmic descent plus one random row fetch per match.  Fetches are
    charged heavily: a random row materialization costs roughly 25x a
    sequentially scanned value (calibrated against E17 measurements). *)
let index_scan ~total ~matches ~row_width =
  (log2 (Float.max 2.0 total) *. cpu_compare)
  +. (matches *. ((12.0 *. cpu_tuple) +. (row_width *. rand_byte *. 8.0)))

(* Memory-governed costing: when the session runs under a memory budget,
   an algorithm whose working set cannot fit is effectively a kill — the
   governor would abort it mid-build.  A large multiplicative penalty
   steers the picker to streaming alternatives (merge-join, sort-agg)
   without making the over-budget plan unpickable when nothing else
   applies. *)
let budget_penalty = 64.0

(* With spilling enabled the over-budget case is no longer a kill: the
   operator partitions to disk and re-reads, so the honest price is I/O,
   not doom.  Grace-style spilling writes and re-reads the working set
   once per recursion level; one level covers the common case, so charge
   one write + one read pass at spill-device bandwidth. *)
let spill_byte = 0.02

(** [budget_penalize ?budget ?spill ~bytes cost] prices the case where
    the estimated working set [bytes] exceeds the byte [budget]: with
    [spill] (the operator can partition to disk) it adds a
    write-plus-read I/O term at {!spill_byte}; without, it multiplies by
    {!budget_penalty} — the governor would kill the plan.  No-op without
    a budget or when the working set fits. *)
let budget_penalize ?budget ?(spill = false) ~bytes cost =
  match budget with
  | Some b when bytes > Float.of_int b ->
      if spill then cost +. (2.0 *. bytes *. spill_byte)
      else cost *. budget_penalty
  | _ -> cost
