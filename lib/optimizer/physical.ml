(* Physical plans: logical operators with algorithms picked.

   Each node carries the picker's estimated output rows and cost, which
   EXPLAIN prints and the adaptive layer compares with observed values. *)

module Schema = Quill_storage.Schema
module Bexpr = Quill_plan.Bexpr
module Lplan = Quill_plan.Lplan

type layout = Row_layout | Col_layout
type join_algo = Hash_join | Merge_join | Block_nl
type agg_algo = Hash_agg | Sort_agg

(** One implementation the picker priced for an operator.  The physical
    plan retains every candidate — winner and losers — so EXPLAIN ANALYZE
    can show why an algorithm was chosen (claim C2 made visible). *)
type candidate = {
  cand_name : string;
  cand_cost : float;  (** the operator's own (non-cumulative) cost *)
  cand_chosen : bool;
}

type info = {
  est_rows : float;
  est_cost : float;
  candidates : candidate list;
      (** all priced implementations, cheapest first; [] for operators
          with a single implementation *)
}

(** [mk_info ?candidates ~est_rows ~est_cost ()] builds an [info],
    sorting candidates by cost. *)
let mk_info ?(candidates = []) ~est_rows ~est_cost () =
  let candidates =
    List.sort (fun a b -> compare a.cand_cost b.cand_cost) candidates
  in
  { est_rows; est_cost; candidates }

(** [candidate ~chosen name cost] is one priced implementation. *)
let candidate ~chosen name cost =
  { cand_name = name; cand_cost = cost; cand_chosen = chosen }

type t =
  | Scan of {
      table : string;
      schema : Schema.t;
      layout : layout;
      filter : Bexpr.t option;  (** pushed-down predicate, fused into the scan *)
      info : info;
    }
  | Index_scan of {
      table : string;
      schema : Schema.t;
      col : int;  (** indexed column position *)
      col_name : string;  (** bare column name for the index registry *)
      lo : (Bexpr.t * bool) option;  (** bound (Lit/Param expr), inclusive? *)
      hi : (Bexpr.t * bool) option;
      residual : Bexpr.t option;  (** remaining predicate over fetched rows *)
      info : info;
    }
  | One_row
  | Filter of Bexpr.t * t * info
  | Project of (Bexpr.t * string) list * t * info
  | Join of {
      algo : join_algo;
      kind : Lplan.join_kind;
      keys : (int * int) list;  (** (left col, right col) equi pairs *)
      residual : Bexpr.t option;
          (** over the concatenated schema; for outer joins this is part
              of the match condition, not a post-filter *)
      build_left : bool;  (** hash join: which side is built *)
      left : t;
      right : t;
      info : info;
    }
  | Aggregate of {
      algo : agg_algo;
      keys : (Bexpr.t * string) list;
      aggs : (Lplan.agg * string) list;
      input : t;
      info : info;
    }
  | Window of { specs : (Lplan.wspec * string) list; input : t; info : info }
  | Sort of { keys : (int * Lplan.dir) list; input : t; info : info }
  | Top_k of {
      k : int;
      offset : int;
      keys : (int * Lplan.dir) list;
      input : t;
      info : info;
    }
  | Distinct of t * info
  | Limit of { n : int option; offset : int; input : t; info : info }

(** [schema_of p] derives the output schema of a physical plan. *)
let rec schema_of = function
  | Scan { schema; _ } | Index_scan { schema; _ } -> schema
  | One_row -> Schema.create []
  | Filter (_, input, _) | Distinct (input, _) -> schema_of input
  | Limit { input; _ } | Sort { input; _ } | Top_k { input; _ } -> schema_of input
  | Project (items, _, _) ->
      Schema.create (List.map (fun (e, name) -> Schema.col name e.Bexpr.dtype) items)
  | Join { kind; left; right; _ } ->
      let right_schema = schema_of right in
      let right_schema =
        if kind = Lplan.Left_outer then
          Schema.create
            (List.map (fun c -> { c with Schema.nullable = true }) (Schema.columns right_schema))
        else right_schema
      in
      Schema.concat (schema_of left) right_schema
  | Aggregate { keys; aggs; _ } ->
      Schema.create
        (List.map (fun (e, name) -> Schema.col name e.Bexpr.dtype) keys
        @ List.map (fun (a, name) -> Schema.col name a.Lplan.out_dtype) aggs)
  | Window { specs; input; _ } ->
      Schema.concat (schema_of input)
        (Schema.create (List.map (fun (w, name) -> Schema.col name w.Lplan.w_dtype) specs))

(** [info_of p] returns the picker's estimates for [p]'s output. *)
let info_of = function
  | Scan { info; _ } | Index_scan { info; _ } | Filter (_, _, info) | Project (_, _, info)
  | Join { info; _ } | Aggregate { info; _ } | Window { info; _ } | Sort { info; _ }
  | Top_k { info; _ } | Distinct (_, info) | Limit { info; _ } ->
      info
  | One_row -> { est_rows = 1.0; est_cost = 0.0; candidates = [] }

let join_algo_name = function
  | Hash_join -> "HashJoin"
  | Merge_join -> "MergeJoin"
  | Block_nl -> "BlockNLJoin"

let agg_algo_name = function Hash_agg -> "HashAgg" | Sort_agg -> "SortAgg"

let layout_name = function Row_layout -> "row" | Col_layout -> "columnar"

(** [to_string p] renders the physical plan for EXPLAIN, one operator per
    line with estimates. *)
let to_string p =
  let buf = Buffer.create 256 in
  let est info = Printf.sprintf " (rows=%.0f cost=%.0f)" info.est_rows info.est_cost in
  let rec go indent p =
    Buffer.add_string buf (String.make (indent * 2) ' ');
    (match p with
    | Scan { table; layout; filter; info; _ } ->
        Buffer.add_string buf
          (Printf.sprintf "Scan %s [%s]%s%s\n" table (layout_name layout)
             (match filter with None -> "" | Some f -> " filter " ^ Bexpr.to_string f)
             (est info))
    | Index_scan { table; col_name; lo; hi; residual; info; _ } ->
        let bound = function
          | None -> "-inf"
          | Some (e, incl) -> Bexpr.to_string e ^ (if incl then " incl" else " excl")
        in
        Buffer.add_string buf
          (Printf.sprintf "IndexScan %s.%s [%s .. %s]%s%s\n" table col_name (bound lo)
             (bound hi)
             (match residual with None -> "" | Some e -> " residual " ^ Bexpr.to_string e)
             (est info))
    | One_row -> Buffer.add_string buf "OneRow\n"
    | Filter (e, input, info) ->
        Buffer.add_string buf (Printf.sprintf "Filter %s%s\n" (Bexpr.to_string e) (est info));
        go (indent + 1) input
    | Project (items, input, info) ->
        Buffer.add_string buf
          (Printf.sprintf "Project [%s]%s\n"
             (String.concat ", " (List.map (fun (e, n) -> n ^ "=" ^ Bexpr.to_string e) items))
             (est info));
        go (indent + 1) input
    | Join { algo; kind; keys; residual; build_left; left; right; info } ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s keys=[%s]%s%s%s\n"
             (match kind with Lplan.Inner -> "" | Lplan.Left_outer -> "LeftOuter")
             (join_algo_name algo)
             (String.concat ", "
                (List.map (fun (l, r) -> Printf.sprintf "#%d=#%d" l r) keys))
             (match residual with None -> "" | Some e -> " residual " ^ Bexpr.to_string e)
             (if algo = Hash_join then if build_left then " build=left" else " build=right"
              else "")
             (est info));
        go (indent + 1) left;
        go (indent + 1) right
    | Aggregate { algo; keys; aggs; input; info } ->
        Buffer.add_string buf
          (Printf.sprintf "%s keys=[%s] aggs=[%s]%s\n" (agg_algo_name algo)
             (String.concat ", " (List.map (fun (e, n) -> n ^ "=" ^ Bexpr.to_string e) keys))
             (String.concat ", " (List.map Lplan.agg_to_string aggs))
             (est info));
        go (indent + 1) input
    | Sort { keys; input; info } ->
        Buffer.add_string buf
          (Printf.sprintf "Sort [%s]%s\n"
             (String.concat ", "
                (List.map
                   (fun (i, d) ->
                     Printf.sprintf "#%d %s" i
                       (match d with Lplan.Asc -> "asc" | Lplan.Desc -> "desc"))
                   keys))
             (est info));
        go (indent + 1) input
    | Top_k { k; offset; keys; input; info } ->
        Buffer.add_string buf
          (Printf.sprintf "TopK k=%d offset=%d [%s]%s\n" k offset
             (String.concat ", "
                (List.map
                   (fun (i, d) ->
                     Printf.sprintf "#%d %s" i
                       (match d with Lplan.Asc -> "asc" | Lplan.Desc -> "desc"))
                   keys))
             (est info));
        go (indent + 1) input
    | Window { specs; input; info } ->
        Buffer.add_string buf
          (Printf.sprintf "Window [%s]%s\n"
             (String.concat ", " (List.map Lplan.wspec_to_string specs))
             (est info));
        go (indent + 1) input
    | Distinct (input, info) ->
        Buffer.add_string buf (Printf.sprintf "Distinct%s\n" (est info));
        go (indent + 1) input
    | Limit { n; offset; input; info } ->
        Buffer.add_string buf
          (Printf.sprintf "Limit %s offset %d%s\n"
             (match n with None -> "all" | Some n -> string_of_int n)
             offset (est info));
        go (indent + 1) input)
  in
  go 0 p;
  Buffer.contents buf

(** [operator_count p] counts operators, used to estimate compilation
    cost for tiering decisions. *)
let rec operator_count = function
  | Scan _ | Index_scan _ | One_row -> 1
  | Filter (_, i, _) | Project (_, i, _) | Distinct (i, _) -> 1 + operator_count i
  | Join { left; right; _ } -> 1 + operator_count left + operator_count right
  | Aggregate { input; _ } | Window { input; _ } | Sort { input; _ }
  | Top_k { input; _ } | Limit { input; _ } ->
      1 + operator_count input

(** [children p] lists [p]'s direct inputs (left before right), matching
    the preorder numbering the profiler uses. *)
let children = function
  | Scan _ | Index_scan _ | One_row -> []
  | Filter (_, i, _) | Project (_, i, _) | Distinct (i, _) -> [ i ]
  | Join { left; right; _ } -> [ left; right ]
  | Aggregate { input; _ } | Window { input; _ } | Sort { input; _ }
  | Top_k { input; _ } | Limit { input; _ } ->
      [ input ]

(** [op_name p] is a short operator label for EXPLAIN ANALYZE rows. *)
let op_name = function
  | Scan { table; _ } -> "Scan " ^ table
  | Index_scan { table; col_name; _ } -> Printf.sprintf "IndexScan %s.%s" table col_name
  | One_row -> "OneRow"
  | Filter _ -> "Filter"
  | Project _ -> "Project"
  | Join { algo; kind; _ } ->
      (match kind with Lplan.Inner -> "" | Lplan.Left_outer -> "LeftOuter")
      ^ join_algo_name algo
  | Aggregate { algo; _ } -> agg_algo_name algo
  | Window _ -> "Window"
  | Sort _ -> "Sort"
  | Top_k _ -> "TopK"
  | Distinct _ -> "Distinct"
  | Limit _ -> "Limit"

(** [preorder p] lists every operator of [p] in the preorder numbering
    shared with {!Quill_exec.Profile}: index [i] of the result is the
    node profiled as operator [i]. *)
let preorder p =
  let acc = ref [] in
  let rec go p =
    acc := p :: !acc;
    List.iter go (children p)
  in
  go p;
  Array.of_list (List.rev !acc)

(** [ordering_of p] returns an order guarantee on [p]'s output: the rows
    are sorted by this (possibly empty) key prefix.  Used by the picker to
    elide redundant sorts ("interesting orders"). *)
let rec ordering_of = function
  | Sort { keys; _ } | Top_k { keys; _ } -> keys
  | Index_scan { col; residual = _; _ } -> [ (col, Lplan.Asc) ]
  | Filter (_, input, _) | Distinct (input, _) ->
      (* Filtering and first-occurrence-order dedup preserve order. *)
      ordering_of input
  | Limit { input; _ } -> ordering_of input
  | Window { input; _ } -> ordering_of input  (* appends columns only *)
  | Project (items, input, _) ->
      (* Remap the input guarantee through pass-through columns. *)
      let mapping =
        List.filter_map
          (fun (j, (e, _)) ->
            match e.Bexpr.node with Bexpr.Col i -> Some (i, j) | _ -> None)
          (List.mapi (fun j it -> (j, it)) items)
      in
      let rec remap = function
        | [] -> []
        | (i, d) :: rest -> (
            match List.assoc_opt i mapping with
            | Some j -> (j, d) :: remap rest
            | None -> [])
      in
      remap (ordering_of input)
  | Scan _ | One_row | Join _ | Aggregate _ -> []

(** [ordering_satisfies ~have ~want] is true when a [have]-ordered input
    already satisfies the requested [want] sort keys (prefix rule). *)
let ordering_satisfies ~have ~want =
  let rec go h w =
    match (h, w) with
    | _, [] -> true
    | [], _ -> false
    | (hi, hd) :: hrest, (wi, wd) :: wrest ->
        hi = wi && hd = wd && go hrest wrest
  in
  go have want
