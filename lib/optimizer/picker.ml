(* The algorithm picker: logical plan -> physical plan.

   This is the component the keynote calls the "algorithm picker" inside a
   SQL compiler (claim C2): for every operator it prices the applicable
   implementations from the runtime algorithm library with the cost model
   and statistics, and emits the cheapest.  [options] lets benchmarks and
   the adaptive layer force specific choices (ablations, re-optimization). *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema
module Bexpr = Quill_plan.Bexpr
module Lplan = Quill_plan.Lplan
module Table_stats = Quill_stats.Table_stats
module IntSet = Set.Make (Int)

type options = {
  force_join : Physical.join_algo option;
  force_agg : Physical.agg_algo option;
  force_layout : Physical.layout option;
  enable_topk : bool;
  enable_reorder : bool;
  enable_index : bool;  (** consider index scans as access paths *)
  parallelism : int;
      (** expected worker count for morsel-parallel operators (columnar
          scan, filter, hash-agg feed, hash-join probe): their CPU cost
          terms divide by this, so under parallelism the picker leans
          toward parallel-friendly plans.  1 = serial costing. *)
  budget_bytes : int option;
      (** the session's per-query memory budget, if any: algorithms whose
          estimated working set exceeds it are cost-penalized
          ({!Cost.budget_penalize}), steering the picker to streaming
          alternatives the governor won't kill. *)
  spill : bool;
      (** out-of-core execution is available: over-budget hash join /
          hash agg pays an honest spill-I/O term instead of the kill
          penalty ({!Cost.budget_penalize}'s [?spill]). *)
}

let default_options =
  {
    force_join = None;
    force_agg = None;
    force_layout = None;
    enable_topk = true;
    enable_reorder = true;
    enable_index = true;
    parallelism = 1;
    budget_bytes = None;
    spill = true;
  }

let width_of (card : Card.t) set =
  IntSet.fold
    (fun i acc ->
      acc
      +.
      match if i < Array.length card.Card.cols then card.Card.cols.(i) else None with
      | Some s -> s.Table_stats.avg_width
      | None -> 8.0)
    set 0.0

let full_width (card : Card.t) =
  width_of card (IntSet.of_list (List.init (Array.length card.Card.cols) Fun.id))

let cols_of_expr e = IntSet.of_list (Bexpr.cols e)

let terms e = List.length (Bexpr.conjuncts e)

(* Access-path selection: the best declared ordered index able to serve
   predicate [pred] over [table], as (col, col_name, lo, hi, residual,
   cost).  The caller compares the cost against the filtered full scan
   and keeps the loser as an EXPLAIN candidate. *)
let try_index_scan env ~table ~schema pred =
  let indexed = env.Card.indexed table in
  if indexed = [] then None
  else begin
    let scan = Lplan.Scan { table; schema } in
    let scan_card = Card.derive env scan in
    let total = scan_card.Card.rows in
    let width = full_width scan_card in
    let conjs = Bexpr.conjuncts pred in
    let is_bound_expr (e : Bexpr.t) =
      match e.Bexpr.node with Bexpr.Lit _ | Bexpr.Param _ -> true | _ -> false
    in
    let flip = function
      | Bexpr.Lt -> Bexpr.Gt | Bexpr.Le -> Bexpr.Ge
      | Bexpr.Gt -> Bexpr.Lt | Bexpr.Ge -> Bexpr.Le
      | op -> op
    in
    let candidate col =
      (* Split conjuncts into usable bounds on [col] and the residual. *)
      let bounds, residual =
        List.partition
          (fun conj ->
            match conj.Bexpr.node with
            | Bexpr.Cmp ((Bexpr.Eq | Bexpr.Lt | Bexpr.Le | Bexpr.Gt | Bexpr.Ge), a, b) -> (
                match (a.Bexpr.node, b.Bexpr.node) with
                | Bexpr.Col c, _ when c = col && is_bound_expr b -> true
                | _, Bexpr.Col c when c = col && is_bound_expr a -> true
                | _ -> false)
            | _ -> false)
          conjs
      in
      if bounds = [] then None
      else begin
        (* Keep one lower and one upper bound as index bounds; anything
           further stays in the residual. *)
        let lo = ref None and hi = ref None and extra = ref [] in
        List.iter
          (fun conj ->
            let op, rhs =
              match conj.Bexpr.node with
              | Bexpr.Cmp (op, { Bexpr.node = Bexpr.Col c; _ }, b) when c = col -> (op, b)
              | Bexpr.Cmp (op, a, { Bexpr.node = Bexpr.Col c; _ }) when c = col ->
                  (flip op, a)
              | _ -> assert false
            in
            let take slot v = if !slot = None then slot := Some v else extra := conj :: !extra in
            match op with
            | Bexpr.Eq ->
                if !lo = None && !hi = None then begin
                  lo := Some (rhs, true);
                  hi := Some (rhs, true)
                end
                else extra := conj :: !extra
            | Bexpr.Ge -> take lo (rhs, true)
            | Bexpr.Gt -> take lo (rhs, false)
            | Bexpr.Le -> take hi (rhs, true)
            | Bexpr.Lt -> take hi (rhs, false)
            | _ -> extra := conj :: !extra)
          bounds;
        let used =
          List.filter (fun c -> not (List.memq c !extra)) bounds
        in
        let matches =
          match Bexpr.conjoin used with
          | None -> total
          | Some p -> (Card.derive env (Lplan.Filter (p, scan))).Card.rows
        in
        let residual_conjs = residual @ List.rev !extra in
        let cost =
          Cost.index_scan ~total ~matches ~row_width:width
          +. Cost.filter ~rows:matches ~terms:(List.length residual_conjs) ()
        in
        Some (col, !lo, !hi, Bexpr.conjoin residual_conjs, matches, cost)
      end
    in
    let best =
      List.fold_left
        (fun acc col ->
          match (acc, candidate col) with
          | None, c -> c
          | Some (_, _, _, _, _, c1), Some (_, _, _, _, _, c2 as cand) when c2 < c1 ->
              Some cand
          | acc, _ -> acc)
        None indexed
    in
    match best with
    | Some (col, lo, hi, residual, _, cost) ->
        let col_name = Schema.base_name (Schema.column schema col).Schema.name in
        Some (col, col_name, lo, hi, residual, cost)
    | None -> None
  end

let rec convert env opts plan ~needed : Physical.t =
  let card = Card.derive env plan in
  match plan with
  | Lplan.One_row -> Physical.One_row
  | Lplan.Scan { table; schema } ->
      let rows = card.Card.rows in
      let read_width =
        if IntSet.is_empty needed then 8.0 else width_of card needed
      in
      let cost_row = Cost.scan_row ~rows ~row_width:(full_width card) in
      let cost_col = Cost.scan_col ~workers:opts.parallelism ~rows ~read_width () in
      let layout =
        match opts.force_layout with
        | Some l -> l
        | None -> if cost_col <= cost_row then Physical.Col_layout else Physical.Row_layout
      in
      let est_cost = match layout with Physical.Col_layout -> cost_col | _ -> cost_row in
      let candidates =
        [ Physical.candidate ~chosen:(layout = Physical.Col_layout) "col-scan" cost_col;
          Physical.candidate ~chosen:(layout = Physical.Row_layout) "row-scan" cost_row ]
      in
      Physical.Scan
        { table; schema; layout; filter = None;
          info = Physical.mk_info ~candidates ~est_rows:rows ~est_cost () }
  | Lplan.Filter (pred, input) ->
      let needed_in = IntSet.union needed (cols_of_expr pred) in
      let pin = convert env opts input ~needed:needed_in in
      let child = Physical.info_of pin in
      let est_cost =
        child.Physical.est_cost
        +. Cost.filter ~workers:opts.parallelism ~rows:child.Physical.est_rows
             ~terms:(terms pred) ()
      in
      let info = Physical.mk_info ~est_rows:card.Card.rows ~est_cost () in
      (* Fuse the predicate into a bare scan, or switch the access path to
         an index range scan when it is cheaper. *)
      (match pin with
      | Physical.Scan { table; schema; layout; filter = None; info = scan_info } -> (
          let index_path =
            if opts.enable_index then try_index_scan env ~table ~schema pred
            else None
          in
          match index_path with
          | Some (col, col_name, lo, hi, residual, cost) when cost < est_cost ->
              let candidates =
                [ Physical.candidate ~chosen:true
                    (Printf.sprintf "index-scan(%s)" col_name) cost;
                  Physical.candidate ~chosen:false "filtered-scan" est_cost ]
              in
              Physical.Index_scan
                { table; schema; col; col_name; lo; hi; residual;
                  info =
                    Physical.mk_info ~candidates ~est_rows:card.Card.rows
                      ~est_cost:cost () }
          | index_path ->
              (* Keep the layout decision's candidates and record the losing
                 index path (when one was priced) on the fused scan. *)
              let candidates =
                scan_info.Physical.candidates
                @
                match index_path with
                | Some (_, col_name, _, _, _, cost) ->
                    [ Physical.candidate ~chosen:false
                        (Printf.sprintf "index-scan(%s)" col_name) cost ]
                | None -> []
              in
              Physical.Scan
                { table; schema; layout; filter = Some pred;
                  info = { info with Physical.candidates } })
      | _ -> Physical.Filter (pred, pin, info))
  | Lplan.Project (items, input) ->
      let needed_in =
        List.fold_left
          (fun acc (e, _) -> IntSet.union acc (cols_of_expr e))
          IntSet.empty items
      in
      let pin = convert env opts input ~needed:needed_in in
      let child = Physical.info_of pin in
      let est_cost =
        child.Physical.est_cost
        +. Cost.project ~rows:child.Physical.est_rows ~exprs:(List.length items)
      in
      Physical.Project (items, pin, Physical.mk_info ~est_rows:card.Card.rows ~est_cost ())
  | Lplan.Join { kind; cond; left; right } ->
      let left_card = Card.derive env left and right_card = Card.derive env right in
      let la = Array.length left_card.Card.cols in
      let pairs = Card.equi_pairs ~left_arity:la cond in
      let residual =
        match cond with
        | None -> None
        | Some c ->
            Bexpr.conjoin
              (List.filter
                 (fun conj ->
                   match conj.Bexpr.node with
                   | Bexpr.Cmp (Bexpr.Eq, a, b) -> (
                       match (a.Bexpr.node, b.Bexpr.node) with
                       | Bexpr.Col i, Bexpr.Col j -> (i < la) = (j < la)
                       | _ -> true)
                   | _ -> true)
                 (Bexpr.conjuncts c))
      in
      let cond_cols =
        match cond with None -> IntSet.empty | Some c -> cols_of_expr c
      in
      let all_needed = IntSet.union needed cond_cols in
      let needed_l = IntSet.filter (fun i -> i < la) all_needed in
      let needed_r =
        IntSet.map (fun i -> i - la) (IntSet.filter (fun i -> i >= la) all_needed)
      in
      let pl = convert env opts left ~needed:needed_l in
      let pr = convert env opts right ~needed:needed_r in
      let lrows = left_card.Card.rows and rrows = right_card.Card.rows in
      let lw = full_width left_card and rw = full_width right_card in
      let out = card.Card.rows in
      (* A left-outer hash join must probe with the preserved side, so
         the build side is pinned to the right input. *)
      let build_left = if kind = Lplan.Left_outer then false else lrows <= rrows in
      let hash_cost =
        if pairs = [] then Float.infinity
        else if build_left then
          Cost.hash_join ~workers:opts.parallelism ~build:lrows ~probe:rrows ~out
            ~build_width:lw ()
        else
          Cost.hash_join ~workers:opts.parallelism ~build:rrows ~probe:lrows ~out
            ~build_width:rw ()
      in
      (* Under a memory budget, a hash build that won't fit either
         Grace-spills (honest I/O term) or is a governor kill waiting to
         happen (steep penalty so streaming joins win). *)
      let hash_cost =
        let brows, bw = if build_left then (lrows, lw) else (rrows, rw) in
        Cost.budget_penalize ?budget:opts.budget_bytes ~spill:opts.spill
          ~bytes:(brows *. (bw +. 64.0)) hash_cost
      in
      (* Merge and block-nl joins materialize BOTH inputs with no spill
         path: in spill mode an over-budget working set is still a kill
         for them, while the hash join Grace-partitions through it — so
         penalize them symmetrically.  With spilling off the pre-spill
         costing applies unchanged (everything is a kill; relative order
         was already right). *)
      let unspillable_pen cost =
        if opts.spill then
          Cost.budget_penalize ?budget:opts.budget_bytes
            ~bytes:((lrows *. lw) +. (rrows *. rw)) cost
        else cost
      in
      let merge_cost =
        if pairs = [] then Float.infinity
        else begin
          (* The sort library radix-sorts single integer keys in linear
             time; reflect that in the merge price. *)
          let int_keys =
            match pairs with
            | [ (l, _) ] -> (
                match (Schema.column (Lplan.schema_of left) l).Schema.dtype with
                | Value.Int_t | Value.Date_t -> true
                | _ -> false)
            | _ -> false
          in
          unspillable_pen
            (Cost.merge_join ~left:lrows ~right:rrows ~out ~lw ~rw ~left_sorted:false
               ~right_sorted:false ~int_keys ())
        end
      in
      let nl_cost =
        unspillable_pen
          (if lrows <= rrows then
             Cost.block_nl_join ~outer:rrows ~inner:lrows ~out ~inner_width:lw
           else Cost.block_nl_join ~outer:lrows ~inner:rrows ~out ~inner_width:rw)
      in
      let algo, self_cost =
        match opts.force_join with
        | Some Physical.Hash_join when pairs <> [] -> (Physical.Hash_join, hash_cost)
        | Some Physical.Merge_join when pairs <> [] -> (Physical.Merge_join, merge_cost)
        | Some Physical.Block_nl | Some _ when pairs = [] -> (Physical.Block_nl, nl_cost)
        | Some a ->
            ( a,
              match a with
              | Physical.Hash_join -> hash_cost
              | Physical.Merge_join -> merge_cost
              | Physical.Block_nl -> nl_cost )
        | None ->
            if hash_cost <= merge_cost && hash_cost <= nl_cost then
              (Physical.Hash_join, hash_cost)
            else if merge_cost <= nl_cost then (Physical.Merge_join, merge_cost)
            else (Physical.Block_nl, nl_cost)
      in
      let residual = if algo = Physical.Block_nl then cond else residual in
      let keys = if algo = Physical.Block_nl then [] else pairs in
      let est_cost =
        (Physical.info_of pl).Physical.est_cost
        +. (Physical.info_of pr).Physical.est_cost
        +. self_cost
      in
      let candidates =
        List.filter
          (fun c -> c.Physical.cand_chosen || c.Physical.cand_cost < Float.infinity)
          [ Physical.candidate ~chosen:(algo = Physical.Hash_join) "hash-join" hash_cost;
            Physical.candidate ~chosen:(algo = Physical.Merge_join) "merge-join" merge_cost;
            Physical.candidate ~chosen:(algo = Physical.Block_nl) "block-nl-join" nl_cost ]
      in
      Physical.Join
        { algo; kind; keys; residual; build_left; left = pl; right = pr;
          info = Physical.mk_info ~candidates ~est_rows:out ~est_cost () }
  | Lplan.Aggregate { keys; aggs; input } ->
      let needed_in =
        List.fold_left
          (fun acc (e, _) -> IntSet.union acc (cols_of_expr e))
          IntSet.empty keys
      in
      let needed_in =
        List.fold_left
          (fun acc (a, _) ->
            match a.Lplan.arg with
            | Some e -> IntSet.union acc (cols_of_expr e)
            | None -> acc)
          needed_in aggs
      in
      let pin = convert env opts input ~needed:needed_in in
      let child = Physical.info_of pin in
      let in_card = Card.derive env input in
      let rows = child.Physical.est_rows in
      let groups = card.Card.rows in
      let key_width = 8.0 *. Float.of_int (List.length keys) in
      let hash_cost = Cost.hash_agg ~workers:opts.parallelism ~rows ~groups ~key_width () in
      (* The group table is this operator's resident working set; when it
         cannot fit the budget it spills partial tables as sorted runs
         (honest I/O term) — except DISTINCT aggregates, whose per-group
         dedup sets are not spillable, so those still price as a kill. *)
      let hash_cost =
        let spillable =
          opts.spill && List.for_all (fun (a, _) -> not a.Lplan.distinct) aggs
        in
        Cost.budget_penalize ?budget:opts.budget_bytes ~spill:spillable
          ~bytes:(groups *. (key_width +. 32.0)) hash_cost
      in
      let sort_cost = Cost.sort_agg ~rows ~width:(full_width in_card) ~sorted:false in
      let algo, self_cost =
        match opts.force_agg with
        | Some Physical.Hash_agg -> (Physical.Hash_agg, hash_cost)
        | Some Physical.Sort_agg -> (Physical.Sort_agg, sort_cost)
        | None ->
            if keys = [] || hash_cost <= sort_cost then (Physical.Hash_agg, hash_cost)
            else (Physical.Sort_agg, sort_cost)
      in
      let candidates =
        [ Physical.candidate ~chosen:(algo = Physical.Hash_agg) "hash-agg" hash_cost;
          Physical.candidate ~chosen:(algo = Physical.Sort_agg) "sort-agg" sort_cost ]
      in
      Physical.Aggregate
        { algo; keys; aggs; input = pin;
          info =
            Physical.mk_info ~candidates ~est_rows:groups
              ~est_cost:(child.Physical.est_cost +. self_cost) () }
  | Lplan.Window { specs; input } ->
      (* The window operator needs its input rows intact (it appends
         columns), so everything below is needed; cost is one sort per
         spec plus the pass. *)
      let spec_cols =
        List.fold_left
          (fun acc (w, _) ->
            let acc =
              match w.Lplan.warg with
              | Some e -> IntSet.union acc (cols_of_expr e)
              | None -> acc
            in
            let acc =
              List.fold_left (fun acc e -> IntSet.union acc (cols_of_expr e)) acc w.Lplan.partition
            in
            List.fold_left
              (fun acc (e, _) -> IntSet.union acc (cols_of_expr e))
              acc w.Lplan.worder)
          IntSet.empty specs
      in
      let in_arity = Schema.arity (Lplan.schema_of input) in
      let needed_in =
        IntSet.union spec_cols
          (IntSet.filter (fun i -> i < in_arity) needed)
      in
      let pin = convert env opts input ~needed:needed_in in
      let child = Physical.info_of pin in
      let in_card = Card.derive env input in
      let self =
        Float.of_int (List.length specs)
        *. Cost.sort ~rows:child.Physical.est_rows ~width:(full_width in_card)
      in
      Physical.Window
        { specs; input = pin;
          info =
            Physical.mk_info ~est_rows:card.Card.rows
              ~est_cost:(child.Physical.est_cost +. self) () }
  | Lplan.Sort { keys; input } ->
      let needed_in =
        IntSet.union needed (IntSet.of_list (List.map fst keys))
      in
      let pin = convert env opts input ~needed:needed_in in
      (* Interesting orders: skip the sort when the input already delivers
         the requested ordering (e.g. an index range scan). *)
      if Physical.ordering_satisfies ~have:(Physical.ordering_of pin) ~want:keys then pin
      else begin
        let child = Physical.info_of pin in
        let in_card = Card.derive env input in
        let self = Cost.sort ~rows:child.Physical.est_rows ~width:(full_width in_card) in
        Physical.Sort
          { keys; input = pin;
            info =
              Physical.mk_info ~est_rows:card.Card.rows
                ~est_cost:(child.Physical.est_cost +. self) () }
      end
  | Lplan.Distinct input ->
      let pin = convert env opts input ~needed in
      let child = Physical.info_of pin in
      let in_card = Card.derive env input in
      let self = Cost.distinct ~rows:child.Physical.est_rows ~width:(full_width in_card) in
      Physical.Distinct
        ( pin,
          Physical.mk_info ~est_rows:card.Card.rows
            ~est_cost:(child.Physical.est_cost +. self) () )
  | Lplan.Limit { n; offset; input } -> (
      match (n, input) with
      | Some k, Lplan.Sort { keys; input = sort_in }
        when opts.enable_topk
             && Float.of_int (k + offset)
                <= Float.max 64.0 ((Card.derive env sort_in).Card.rows /. 4.0) ->
          (* Fuse ORDER BY + LIMIT into a bounded-heap top-k. *)
          let needed_in = IntSet.union needed (IntSet.of_list (List.map fst keys)) in
          let pin = convert env opts sort_in ~needed:needed_in in
          let child = Physical.info_of pin in
          if Physical.ordering_satisfies ~have:(Physical.ordering_of pin) ~want:keys
          then
            (* Already ordered: a plain streaming limit suffices. *)
            Physical.Limit
              { n = Some k; offset; input = pin;
                info =
                  Physical.mk_info ~est_rows:(Float.of_int k)
                    ~est_cost:child.Physical.est_cost () }
          else begin
            let self =
              Cost.top_k ~rows:child.Physical.est_rows ~k:(Float.of_int (k + offset))
            in
            let sort_cost =
              Cost.sort ~rows:child.Physical.est_rows
                ~width:(full_width (Card.derive env sort_in))
            in
            let candidates =
              [ Physical.candidate ~chosen:true "top-k" self;
                Physical.candidate ~chosen:false "sort+limit" sort_cost ]
            in
            Physical.Top_k
              { k; offset; keys; input = pin;
                info =
                  Physical.mk_info ~candidates ~est_rows:(Float.of_int k)
                    ~est_cost:(child.Physical.est_cost +. self) () }
          end
      | _ ->
          let pin = convert env opts input ~needed in
          let child = Physical.info_of pin in
          Physical.Limit
            { n; offset; input = pin;
              info =
                Physical.mk_info ~est_rows:card.Card.rows
                  ~est_cost:child.Physical.est_cost () })

(** [to_physical ?options env plan] picks algorithms for an already
    rewritten/ordered logical plan. *)
let to_physical ?(options = default_options) env plan =
  let out_arity = Schema.arity (Lplan.schema_of plan) in
  convert env options plan ~needed:(IntSet.of_list (List.init out_arity Fun.id))

(** [optimize ?options env plan] runs the full pipeline: rewrite, join
    reorder, algorithm picking.  Each phase is a tracer span. *)
let optimize ?(options = default_options) env plan =
  let plan = Quill_obs.Trace.with_span "rewrite" (fun () -> Rewrite.rewrite plan) in
  let plan =
    if options.enable_reorder then
      Quill_obs.Trace.with_span "join-order" (fun () -> Join_order.reorder env plan)
    else plan
  in
  (* Reordering can introduce new projections (the column-order restore
     permutation); merge and clean up once more. *)
  let plan = Rewrite.drop_noop_projects (Rewrite.merge_perm_projects plan) in
  Quill_obs.Trace.with_span "pick" (fun () -> to_physical ~options env plan)
