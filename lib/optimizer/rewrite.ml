(* Logical plan rewrites: constant folding, filter merging, predicate
   pushdown and no-op projection removal.

   Column pruning is implicit in Quill rather than a rewrite: columnar
   scans only materialize columns that downstream expressions actually
   reference, so there is nothing to cut from the plan itself. *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema
module Bexpr = Quill_plan.Bexpr
module Lplan = Quill_plan.Lplan

(* --- Expression-level rewrites ---------------------------------------- *)

let rec is_const (e : Bexpr.t) =
  match e.Bexpr.node with
  | Bexpr.Lit _ -> true
  | Bexpr.Col _ | Bexpr.Param _ -> false
  | Bexpr.Neg a | Bexpr.Not a | Bexpr.Cast (a, _) | Bexpr.Is_null (_, a) | Bexpr.Like (a, _) ->
      is_const a
  | Bexpr.Arith (_, a, b) | Bexpr.Cmp (_, a, b) | Bexpr.And (a, b) | Bexpr.Or (a, b) ->
      is_const a && is_const b
  | Bexpr.In_list (a, es) -> is_const a && List.for_all is_const es
  | Bexpr.Case (whens, els) ->
      List.for_all (fun (c, v) -> is_const c && is_const v) whens
      && (match els with None -> true | Some e -> is_const e)
  | Bexpr.Call _ -> false (* UDFs may be impure; never fold *)
  | Bexpr.Subquery _ -> false (* materialized per execution *)

(** [fold_constants e] evaluates literal-only subtrees at plan time;
    subtrees whose evaluation raises (e.g. division by zero) are left
    intact so the error surfaces at execution, as SQL requires. *)
let rec fold_constants (e : Bexpr.t) : Bexpr.t =
  let recurse e =
    let node =
      match e.Bexpr.node with
      | (Bexpr.Lit _ | Bexpr.Col _ | Bexpr.Param _) as n -> n
      | Bexpr.Neg a -> Bexpr.Neg (fold_constants a)
      | Bexpr.Not a -> Bexpr.Not (fold_constants a)
      | Bexpr.Cast (a, t) -> Bexpr.Cast (fold_constants a, t)
      | Bexpr.Is_null (n, a) -> Bexpr.Is_null (n, fold_constants a)
      | Bexpr.Like (a, p) -> Bexpr.Like (fold_constants a, p)
      | Bexpr.Arith (op, a, b) -> Bexpr.Arith (op, fold_constants a, fold_constants b)
      | Bexpr.Cmp (op, a, b) -> Bexpr.Cmp (op, fold_constants a, fold_constants b)
      | Bexpr.And (a, b) -> Bexpr.And (fold_constants a, fold_constants b)
      | Bexpr.Or (a, b) -> Bexpr.Or (fold_constants a, fold_constants b)
      | Bexpr.In_list (a, es) -> Bexpr.In_list (fold_constants a, List.map fold_constants es)
      | Bexpr.Case (whens, els) ->
          Bexpr.Case
            ( List.map (fun (c, v) -> (fold_constants c, fold_constants v)) whens,
              Option.map fold_constants els )
      | Bexpr.Call { name; fn; args } ->
          Bexpr.Call { name; fn; args = List.map fold_constants args }
      | Bexpr.Subquery { kind = Bexpr.Sub_in arg; cell } ->
          Bexpr.Subquery { kind = Bexpr.Sub_in (fold_constants arg); cell }
      | Bexpr.Subquery _ as n -> n
    in
    { e with Bexpr.node }
  in
  let e = recurse e in
  match e.Bexpr.node with
  | Bexpr.Lit _ -> e
  | _ when is_const e -> (
      match Bexpr.eval ~row:[||] ~params:[||] e with
      | v -> { e with Bexpr.node = Bexpr.Lit v }
      | exception _ -> e)
  | Bexpr.And (a, b) -> (
      (* Boolean short-circuit simplifications. *)
      match (a.Bexpr.node, b.Bexpr.node) with
      | Bexpr.Lit (Value.Bool true), _ -> b
      | _, Bexpr.Lit (Value.Bool true) -> a
      | Bexpr.Lit (Value.Bool false), _ | _, Bexpr.Lit (Value.Bool false) ->
          { e with Bexpr.node = Bexpr.Lit (Value.Bool false) }
      | _ -> e)
  | Bexpr.Or (a, b) -> (
      match (a.Bexpr.node, b.Bexpr.node) with
      | Bexpr.Lit (Value.Bool false), _ -> b
      | _, Bexpr.Lit (Value.Bool false) -> a
      | Bexpr.Lit (Value.Bool true), _ | _, Bexpr.Lit (Value.Bool true) ->
          { e with Bexpr.node = Bexpr.Lit (Value.Bool true) }
      | _ -> e)
  | _ -> e

(** [subst items e] replaces [Col i] with [items.(i)] (projection inlining;
    all expressions are pure, so duplication is safe). *)
let rec subst items (e : Bexpr.t) : Bexpr.t =
  let s = subst items in
  match e.Bexpr.node with
  | Bexpr.Col i -> items.(i)
  | Bexpr.Lit _ | Bexpr.Param _ -> e
  | Bexpr.Neg a -> { e with Bexpr.node = Bexpr.Neg (s a) }
  | Bexpr.Not a -> { e with Bexpr.node = Bexpr.Not (s a) }
  | Bexpr.Cast (a, t) -> { e with Bexpr.node = Bexpr.Cast (s a, t) }
  | Bexpr.Is_null (n, a) -> { e with Bexpr.node = Bexpr.Is_null (n, s a) }
  | Bexpr.Like (a, p) -> { e with Bexpr.node = Bexpr.Like (s a, p) }
  | Bexpr.Arith (op, a, b) -> { e with Bexpr.node = Bexpr.Arith (op, s a, s b) }
  | Bexpr.Cmp (op, a, b) -> { e with Bexpr.node = Bexpr.Cmp (op, s a, s b) }
  | Bexpr.And (a, b) -> { e with Bexpr.node = Bexpr.And (s a, s b) }
  | Bexpr.Or (a, b) -> { e with Bexpr.node = Bexpr.Or (s a, s b) }
  | Bexpr.In_list (a, es) -> { e with Bexpr.node = Bexpr.In_list (s a, List.map s es) }
  | Bexpr.Case (whens, els) ->
      { e with
        Bexpr.node = Bexpr.Case (List.map (fun (c, v) -> (s c, s v)) whens, Option.map s els)
      }
  | Bexpr.Call { name; fn; args } ->
      { e with Bexpr.node = Bexpr.Call { name; fn; args = List.map s args } }
  | Bexpr.Subquery { kind = Bexpr.Sub_in arg; cell } ->
      { e with Bexpr.node = Bexpr.Subquery { kind = Bexpr.Sub_in (s arg); cell } }
  | Bexpr.Subquery _ -> e

(* --- Plan-level rewrites ----------------------------------------------- *)

(** [map_exprs f plan] applies [f] to every expression in [plan]. *)
let rec map_exprs f (p : Lplan.t) : Lplan.t =
  match p with
  | Lplan.Scan _ | Lplan.One_row -> p
  | Lplan.Filter (e, input) -> Lplan.Filter (f e, map_exprs f input)
  | Lplan.Project (items, input) ->
      Lplan.Project (List.map (fun (e, n) -> (f e, n)) items, map_exprs f input)
  | Lplan.Join { kind; cond; left; right } ->
      Lplan.Join
        { kind; cond = Option.map f cond; left = map_exprs f left; right = map_exprs f right }
  | Lplan.Aggregate { keys; aggs; input } ->
      Lplan.Aggregate
        {
          keys = List.map (fun (e, n) -> (f e, n)) keys;
          aggs =
            List.map
              (fun (a, n) -> ({ a with Lplan.arg = Option.map f a.Lplan.arg }, n))
              aggs;
          input = map_exprs f input;
        }
  | Lplan.Window { specs; input } ->
      Lplan.Window
        {
          specs =
            List.map
              (fun (w, n) ->
                ( { w with
                    Lplan.warg = Option.map f w.Lplan.warg;
                    partition = List.map f w.Lplan.partition;
                    worder = List.map (fun (e, d) -> (f e, d)) w.Lplan.worder },
                  n ))
              specs;
          input = map_exprs f input;
        }
  | Lplan.Sort { keys; input } -> Lplan.Sort { keys; input = map_exprs f input }
  | Lplan.Distinct input -> Lplan.Distinct (map_exprs f input)
  | Lplan.Limit { n; offset; input } -> Lplan.Limit { n; offset; input = map_exprs f input }

let arity p = Schema.arity (Lplan.schema_of p)

(* Push the conjunct set [cs] as deep as possible into [p]; any conjunct
   that cannot sink further lands in a Filter at this level. *)
let rec push p cs =
  let wrap p cs =
    match Bexpr.conjoin cs with None -> p | Some pred -> Lplan.Filter (pred, p)
  in
  match p with
  | Lplan.Filter (pred, input) -> push input (cs @ Bexpr.conjuncts pred)
  | Lplan.Project (items, input) ->
      let arr = Array.of_list (List.map fst items) in
      let sunk = List.map (subst arr) cs in
      Lplan.Project (items, push input sunk)
  | Lplan.Join { kind = Lplan.Inner; cond; left; right } ->
      let la = arity left in
      let all = cs @ (match cond with None -> [] | Some c -> Bexpr.conjuncts c) in
      let to_left, rest =
        List.partition (fun c -> List.for_all (fun i -> i < la) (Bexpr.cols c)) all
      in
      let to_right, keep =
        List.partition (fun c -> List.for_all (fun i -> i >= la) (Bexpr.cols c)) rest
      in
      let to_right = List.map (Bexpr.shift (-la)) to_right in
      Lplan.Join
        { kind = Lplan.Inner; cond = Bexpr.conjoin keep;
          left = push left to_left; right = push right to_right }
  | Lplan.Join { kind = Lplan.Left_outer; cond; left; right } ->
      (* ON conjuncts are a match condition, not a filter: they stay with
         the join.  WHERE conjuncts that touch only the preserved (left)
         side commute with the outer join and sink; everything else stays
         above, because it can reject padded rows. *)
      let la = arity left in
      let to_left, keep =
        List.partition (fun c -> List.for_all (fun i -> i < la) (Bexpr.cols c)) cs
      in
      wrap
        (Lplan.Join
           { kind = Lplan.Left_outer; cond; left = push left to_left; right = push right [] })
        keep
  | Lplan.Aggregate { keys; aggs; input } ->
      let nkeys = List.length keys in
      let key_exprs = Array.of_list (List.map fst keys) in
      let sinkable, stay =
        List.partition (fun c -> List.for_all (fun i -> i < nkeys) (Bexpr.cols c)) cs
      in
      let sunk = List.map (subst key_exprs) sinkable in
      wrap (Lplan.Aggregate { keys; aggs; input = push input sunk }) stay
  | Lplan.Sort { keys; input } -> Lplan.Sort { keys; input = push input cs }
  | Lplan.Distinct input -> Lplan.Distinct (push input cs)
  | Lplan.Window { specs; input } ->
      (* Filters must not cross a window: removing rows changes frames. *)
      wrap (Lplan.Window { specs; input = push input [] }) cs
  | Lplan.Limit { n; offset; input } ->
      (* Filters must not cross LIMIT. *)
      wrap (Lplan.Limit { n; offset; input = push input [] }) cs
  | Lplan.Scan _ | Lplan.One_row -> wrap p cs

(** [push_filters p] sinks every predicate as close to the scans as
    possible, splitting conjunctions across join sides. *)
let push_filters p = push p []

(* Identity projections (Col 0..n-1 with unchanged names) are noise. *)
let is_identity_project items input_schema =
  List.length items = Schema.arity input_schema
  && List.for_all2
       (fun (e, n) idx ->
         match e.Bexpr.node with
         | Bexpr.Col i -> i = idx && n = (Schema.column input_schema idx).Schema.name
         | _ -> false)
       items
       (List.init (List.length items) Fun.id)

(* A projection whose every item is a bare column reference — the shape
   join reordering inserts to restore the pre-reorder column order. *)
let perm_of items =
  let col_of ((e : Bexpr.t), _) =
    match e.Bexpr.node with Bexpr.Col c -> Some c | _ -> None
  in
  if List.for_all (fun it -> col_of it <> None) items then
    Some (Array.of_list (List.filter_map col_of items))
  else None

(** [merge_perm_projects p] folds [Project (outer, Project (perm, x))]
    into a single projection when the inner items are bare column
    references, by remapping the outer expressions through the
    permutation.  Merging only through pure column permutations never
    duplicates computation, and it keeps the plans the join reorderer
    produces in the single-projection form every engine tier prefers. *)
let rec merge_perm_projects (p : Lplan.t) : Lplan.t =
  match p with
  | Lplan.Project (outer, input) -> (
      match merge_perm_projects input with
      | Lplan.Project (inner, x) as input -> (
          match perm_of inner with
          | Some perm
            when List.for_all
                   (fun (e, _) ->
                     List.for_all
                       (fun c -> c >= 0 && c < Array.length perm)
                       (Bexpr.cols e))
                   outer ->
              Lplan.Project
                ( List.map (fun (e, n) -> (Bexpr.remap (fun i -> perm.(i)) e, n)) outer,
                  x )
          | _ -> Lplan.Project (outer, input))
      | input -> Lplan.Project (outer, input))
  | Lplan.Scan _ | Lplan.One_row -> p
  | Lplan.Filter (e, input) -> Lplan.Filter (e, merge_perm_projects input)
  | Lplan.Join { kind; cond; left; right } ->
      Lplan.Join
        { kind; cond; left = merge_perm_projects left; right = merge_perm_projects right }
  | Lplan.Aggregate { keys; aggs; input } ->
      Lplan.Aggregate { keys; aggs; input = merge_perm_projects input }
  | Lplan.Window { specs; input } ->
      Lplan.Window { specs; input = merge_perm_projects input }
  | Lplan.Sort { keys; input } -> Lplan.Sort { keys; input = merge_perm_projects input }
  | Lplan.Distinct input -> Lplan.Distinct (merge_perm_projects input)
  | Lplan.Limit { n; offset; input } ->
      Lplan.Limit { n; offset; input = merge_perm_projects input }

(** [drop_noop_projects p] removes projections that neither reorder,
    compute, nor rename. *)
let rec drop_noop_projects (p : Lplan.t) : Lplan.t =
  match p with
  | Lplan.Project (items, input) ->
      let input = drop_noop_projects input in
      if is_identity_project items (Lplan.schema_of input) then input
      else Lplan.Project (items, input)
  | Lplan.Scan _ | Lplan.One_row -> p
  | Lplan.Filter (e, input) -> Lplan.Filter (e, drop_noop_projects input)
  | Lplan.Join { kind; cond; left; right } ->
      Lplan.Join { kind; cond; left = drop_noop_projects left; right = drop_noop_projects right }
  | Lplan.Aggregate { keys; aggs; input } ->
      Lplan.Aggregate { keys; aggs; input = drop_noop_projects input }
  | Lplan.Window { specs; input } ->
      Lplan.Window { specs; input = drop_noop_projects input }
  | Lplan.Sort { keys; input } -> Lplan.Sort { keys; input = drop_noop_projects input }
  | Lplan.Distinct input -> Lplan.Distinct (drop_noop_projects input)
  | Lplan.Limit { n; offset; input } ->
      Lplan.Limit { n; offset; input = drop_noop_projects input }

(** [rewrite p] runs the standard rewrite pipeline. *)
let rewrite p =
  p |> map_exprs fold_constants |> push_filters |> merge_perm_projects
  |> drop_noop_projects
