(* Generic parallel operator drivers.

   The three shapes every parallel relational operator reduces to:

   - {!for_range}: side-effect-free-per-index work (scatter into
     preallocated, disjoint output slots);
   - {!fold}: per-worker partial state fed by morsels and merged at the
     end — parallel aggregation (partial hash tables / accumulators);
   - {!collect}: per-morsel row emission re-assembled in row order —
     parallel scan/filter and parallel hash-join probe, where the serial
     engines' output order must be reproduced exactly.

   All drivers take a [workers] goal and degrade to the serial loop when
   it is 1, the input is smaller than one morsel, or the caller is itself
   a pool worker (nested parallelism).  The driver layer is engine
   agnostic: it knows row indices and closures, never plans or values. *)

module Vec = Quill_util.Vec

let serial ~workers n =
  workers <= 1 || Pool.in_parallel_region () || n <= !Morsel.size

(** [for_range ~workers ~n f] runs [f i] for every [i] in [0, n),
    morsel-parallel.  [f] must only touch state owned by index [i]. *)
let for_range ~workers ~n (f : int -> unit) =
  if serial ~workers n then
    for i = 0 to n - 1 do
      f i
    done
  else
    Morsel.iter ~workers ~n (fun ~worker:_ ~lo ~hi ->
        for i = lo to hi - 1 do
          f i
        done)

(** [fold ~workers ~n ~init ~range ~merge] gives each worker a private
    state from [init ()], feeds it every morsel the worker wins via
    [range state lo hi], then folds the partials left-to-right in worker
    order with [merge dst src] and returns worker 0's state.  With no
    parallelism this is exactly [let s = init () in range s 0 n; s] — the
    serial path allocates a single state and never merges, so empty
    inputs and merge-identity bugs cannot hide behind it. *)
let fold ~workers ~n ~(init : unit -> 's) ~(range : 's -> int -> int -> unit)
    ~(merge : 's -> 's -> unit) : 's =
  if serial ~workers n then begin
    let st = init () in
    range st 0 n;
    st
  end
  else begin
    let nw = Morsel.effective_workers ~workers n in
    let states = Array.init nw (fun _ -> init ()) in
    Morsel.iter ~workers:nw ~n (fun ~worker ~lo ~hi -> range states.(worker) lo hi);
    let acc = states.(0) in
    for w = 1 to nw - 1 do
      merge acc states.(w)
    done;
    acc
  end

(** [collect ~workers ~n ~dummy range] runs [range ~lo ~hi ~emit] for
    every morsel and returns all emitted values concatenated in morsel
    (= row) order, regardless of which worker produced which morsel — so
    the result is exactly what the serial sweep would emit.  This is the
    substrate for parallel scan/filter and the parallel hash-join probe:
    [range] reads shared state (columns, a read-only build table) and
    emits output rows. *)
let collect ~workers ~n ~(dummy : 'a)
    (range : lo:int -> hi:int -> emit:('a -> unit) -> unit) : 'a array =
  if serial ~workers n then begin
    let out = Vec.create ~dummy in
    if n > 0 then range ~lo:0 ~hi:n ~emit:(Vec.push out);
    Vec.to_array out
  end
  else begin
    let nw = Morsel.effective_workers ~workers n in
    (* Each worker accumulates (lo, rows) chunks; chunks are then stitched
       back in ascending-lo order.  Per-worker chunk lists are already
       lo-sorted (the atomic counter is monotonic), so stitching is a
       cheap k-way merge done as sort-by-lo. *)
    let chunks = Array.init nw (fun _ -> Vec.create ~dummy:(0, [||])) in
    Morsel.iter ~workers:nw ~n (fun ~worker ~lo ~hi ->
        let buf = Vec.create ~dummy in
        range ~lo ~hi ~emit:(Vec.push buf);
        if Vec.length buf > 0 then Vec.push chunks.(worker) (lo, Vec.to_array buf));
    let all = Vec.create ~dummy:(0, [||]) in
    Array.iter (fun per -> Vec.iter (Vec.push all) per) chunks;
    Vec.sort (fun (a, _) (b, _) -> compare (a : int) b) all;
    let total = Vec.fold (fun acc (_, rows) -> acc + Array.length rows) 0 all in
    let out = Array.make total dummy in
    let pos = ref 0 in
    Vec.iter
      (fun (_, rows) ->
        Array.blit rows 0 out !pos (Array.length rows);
        pos := !pos + Array.length rows)
      all;
    out
  end
