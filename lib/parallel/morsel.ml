(* The morsel dispatcher.

   Work over a row range [0, n) is split into fixed-size morsels (~16K
   rows, the HyPer-style granule: big enough to amortize dispatch, small
   enough to load-balance skewed predicates) and handed out to pool
   workers from a single atomic counter — workers that finish early
   simply grab the next morsel, so no static partitioning decision can
   strand a domain. *)

let default_size = 16_384

(* Morsels handed out and parallel dispatches started, for the metrics
   registry ([\metrics] in quillsh). *)
let m_morsels = Quill_obs.Metrics.counter "quill.parallel.morsels"
let m_dispatches = Quill_obs.Metrics.counter "quill.parallel.dispatches"

(* Mutable so the E13 morsel-size sweep and the boundary-condition tests
   can shrink it; every dispatch reads it once up front. *)
let size = ref default_size

(** [set_size s] sets the morsel size (rows per granule, clamped >= 1). *)
let set_size s = size := max 1 s

(** [with_size s f] runs [f ()] with the morsel size temporarily set to
    [s], restoring the previous size even on exceptions. *)
let with_size s f =
  let old = !size in
  set_size s;
  Fun.protect ~finally:(fun () -> size := old) f

(** [effective_workers ~workers n] caps the worker count so every worker
    can expect at least one morsel: parallelism never exceeds the number
    of morsels in [0, n). *)
let effective_workers ~workers n =
  let morsels = (n + !size - 1) / !size in
  max 1 (min workers morsels)

(** [iter ~workers ~n f] calls [f ~worker ~lo ~hi] for every morsel
    [\[lo, hi)] of [\[0, n)], distributing morsels over [workers] pool
    slots via an atomic counter.  Each worker's own morsel sequence is in
    ascending row order; the partition between workers is dynamic.
    Serial (workers = 1, or nested inside a pool worker) degrades to one
    in-order sweep. *)
let iter ~workers ~n (f : worker:int -> lo:int -> hi:int -> unit) =
  if n > 0 then begin
    let workers = effective_workers ~workers n in
    let step = !size in
    Quill_obs.Metrics.incr m_dispatches;
    Quill_obs.Metrics.add m_morsels ((n + step - 1) / step);
    let next = Atomic.make 0 in
    Pool.run ~workers (fun w ->
        let rec loop () =
          let lo = Atomic.fetch_and_add next step in
          if lo < n then begin
            f ~worker:w ~lo ~hi:(min n (lo + step));
            loop ()
          end
        in
        loop ())
  end
