(* The persistent domain pool behind morsel-driven parallel execution.

   OCaml 5 domains are heavyweight (each carries a minor heap and a
   systhread); spawning per query — what the old E15 path did — costs
   hundreds of microseconds on the hot path and floods the runtime with
   short-lived domains.  Instead the engine keeps ONE process-wide pool of
   worker domains, lazily spawned up to the session's parallelism goal and
   parked on a condition variable between queries.  Query operators never
   talk to the pool directly; they go through {!Morsel} and {!Driver},
   which split work into row-range morsels and hand them out via an atomic
   counter.

   Guard rails (pool-misuse satellite):
   - nested parallelism: a worker that reaches another parallel operator
     runs it serially inline (a DLS flag marks worker domains), so
     parallel operators can be composed without deadlocking the pool;
   - [shutdown] (called from [Db.close]) joins every worker; the pool is
     re-created lazily if a later session runs a parallel query, so one
     session tearing down cannot brick another;
   - the parallelism goal is clamped to [1, max_parallelism] and can be
     pinned for benchmarking boxes with the QUILL_DOMAINS environment
     variable. *)

(* Hard ceiling on workers; far above any sane domain count, it only
   bounds runaway [set_parallelism] arguments. *)
let max_parallelism = 256

(** [parse_env s] parses a QUILL_DOMAINS-style override: a positive
    integer, clamped to [max_parallelism]; anything else is rejected. *)
let parse_env s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Some (min n max_parallelism)
  | _ -> None

let env_override = Option.bind (Sys.getenv_opt "QUILL_DOMAINS") parse_env

(** [hardware_parallelism ()] is what the machine advertises
    ({!Domain.recommended_domain_count}), or the QUILL_DOMAINS override. *)
let hardware_parallelism () =
  match env_override with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count ())

(* The session parallelism goal.  Defaults to QUILL_DOMAINS when set and
   to 1 (serial) otherwise: parallel float aggregation reorders additions,
   so sessions opt in explicitly via [Db.set_parallelism]. *)
let goal = ref (Option.value env_override ~default:1)

(** [set_parallelism n] sets the session-wide worker goal (clamped to
    [1, max_parallelism]).  Takes effect on the next parallel operator;
    already-spawned surplus workers stay parked, missing ones spawn
    lazily. *)
let set_parallelism n = goal := max 1 (min n max_parallelism)

(** [parallelism ()] is the current session goal. *)
let parallelism () = !goal

(* Marks worker domains so nested parallel operators degrade to serial. *)
let in_worker = Domain.DLS.new_key (fun () -> false)

(** [in_parallel_region ()] is true when called from a pool worker. *)
let in_parallel_region () = Domain.DLS.get in_worker

type pool = {
  mutex : Mutex.t;
  work : Condition.t;  (* signalled when jobs arrive or on shutdown *)
  jobs : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let mk_pool () =
  {
    mutex = Mutex.create ();
    work = Condition.create ();
    jobs = Queue.create ();
    stop = false;
    workers = [];
  }

(* The process-wide pool.  Replaced wholesale by [shutdown] so a torn-down
   pool can never be revived half-joined. *)
let the_pool = ref (mk_pool ())

let worker_loop pool () =
  Domain.DLS.set in_worker true;
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.jobs && not pool.stop do
      Condition.wait pool.work pool.mutex
    done;
    (* Drain remaining jobs even when stopping, so shutdown never strands
       a caller waiting on its completion latch. *)
    match Queue.take_opt pool.jobs with
    | Some job ->
        Mutex.unlock pool.mutex;
        job ();
        loop ()
    | None -> Mutex.unlock pool.mutex (* stop && empty *)
  in
  loop ()

let g_workers = Quill_obs.Metrics.gauge "quill.parallel.workers"

(* Ensure at least [n] spawned workers; call with [pool.mutex] NOT held. *)
let ensure_workers pool n =
  Mutex.lock pool.mutex;
  let missing = n - List.length pool.workers in
  for _ = 1 to missing do
    pool.workers <- Domain.spawn (worker_loop pool) :: pool.workers
  done;
  Quill_obs.Metrics.set g_workers (List.length pool.workers);
  Mutex.unlock pool.mutex

(** [spawned ()] is the number of live worker domains (observability). *)
let spawned () =
  let pool = !the_pool in
  Mutex.lock pool.mutex;
  let n = List.length pool.workers in
  Mutex.unlock pool.mutex;
  n

let take_job pool =
  Mutex.lock pool.mutex;
  let j = Queue.take_opt pool.jobs in
  Mutex.unlock pool.mutex;
  j

(** [run ~workers f] executes [f 0 .. f (workers-1)], one call per worker
    slot, and returns when all have finished.  Slot 0 runs on the calling
    domain; the rest are served by pool workers (the caller helps drain
    the queue while it waits, so a pool smaller than [workers] — or a
    busy one — still completes).  Serial fallbacks: [workers <= 1] and
    calls made from inside a pool worker (nested parallelism) run every
    slot inline on the caller.  The first exception raised by any slot is
    re-raised on the caller after all slots finish. *)
let run ~workers (f : int -> unit) =
  if workers <= 1 || Domain.DLS.get in_worker then
    for i = 0 to workers - 1 do
      f i
    done
  else begin
    let pool = !the_pool in
    ensure_workers pool (workers - 1);
    let remaining = Atomic.make (workers - 1) in
    let failure = Atomic.make None in
    let record e = ignore (Atomic.compare_and_set failure None (Some e)) in
    let task i () =
      (try f i with e -> record e);
      ignore (Atomic.fetch_and_add remaining (-1))
    in
    Mutex.lock pool.mutex;
    for i = 1 to workers - 1 do
      Queue.push (task i) pool.jobs
    done;
    Condition.broadcast pool.work;
    Mutex.unlock pool.mutex;
    (try f 0 with e -> record e);
    (* Help with queued work (possibly our own tasks) until every slot of
       THIS run has completed. *)
    while Atomic.get remaining > 0 do
      match take_job pool with
      | Some job -> job ()
      | None -> Domain.cpu_relax ()
    done;
    match Atomic.get failure with Some e -> raise e | None -> ()
  end

(** [submit f] enqueues a fire-and-forget job on the pool (spawning a
    worker if none is live) and returns immediately.  This is the
    server's scheduling entry point: each wire-protocol query runs as
    one submitted job, so client connections multiplex onto the same
    worker domains morsel execution uses.  Jobs run with the worker's
    nested-parallelism flag set — a parallel operator inside a submitted
    job degrades to serial rather than deadlocking the pool.  [f] must
    not raise; wrap it. *)
let submit f =
  let pool = !the_pool in
  ensure_workers pool (max 2 (min !goal 4));
  Mutex.lock pool.mutex;
  Queue.push f pool.jobs;
  Condition.signal pool.work;
  Mutex.unlock pool.mutex

(** [shutdown ()] joins every worker domain and resets the pool.  Called
    from [Db.close]; safe to call repeatedly and with no pool running.  A
    later parallel query simply re-creates the pool. *)
let shutdown () =
  let pool = !the_pool in
  Mutex.lock pool.mutex;
  pool.stop <- true;
  let workers = pool.workers in
  pool.workers <- [];
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  List.iter Domain.join workers;
  Quill_obs.Metrics.set g_workers 0;
  the_pool := mk_pool ()
