(* Bound (typed, index-resolved) expressions.

   After binding, column references are integer offsets into the input row
   and every node carries its result dtype.  This module also hosts the
   reference tree-walking evaluator with SQL three-valued-logic semantics;
   the faster closure and bytecode tiers in [quill.compile] are tested
   against it. *)

module Value = Quill_storage.Value

type arith = Add | Sub | Mul | Div | Mod
type cmp = Eq | Neq | Lt | Le | Gt | Ge

type t = { node : node; dtype : Value.dtype }

and sub_kind =
  | Sub_scalar  (** value of the single row/column; NULL on empty *)
  | Sub_exists
  | Sub_in of t  (** subject expression compared against the result set *)

and node =
  | Lit of Value.t
  | Col of int
  | Param of int  (** 0-based slot in the parameter array *)
  | Neg of t
  | Not of t
  | Arith of arith * t * t
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Like of t * string
  | In_list of t * t list
  | Case of (t * t) list * t option
  | Cast of t * Value.dtype
  | Is_null of bool * t  (** negated?, arg *)
  | Call of { name : string; fn : Value.t array -> Value.t; args : t list }
  | Subquery of { kind : sub_kind; cell : Value.t list option ref }
      (** uncorrelated subquery; [cell] is materialized by the executor
          before evaluation starts *)

let lit v dtype = { node = Lit v; dtype }
let col i dtype = { node = Col i; dtype }

(** [cols e] returns the sorted, de-duplicated input columns [e] reads. *)
let cols e =
  let acc = ref [] in
  let rec go e =
    match e.node with
    | Lit _ | Param _ -> ()
    | Col i -> acc := i :: !acc
    | Neg a | Not a | Cast (a, _) | Is_null (_, a) | Like (a, _) -> go a
    | Arith (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
        go a;
        go b
    | In_list (a, es) ->
        go a;
        List.iter go es
    | Case (whens, els) ->
        List.iter
          (fun (c, v) ->
            go c;
            go v)
          whens;
        Option.iter go els
    | Call { args; _ } -> List.iter go args
    | Subquery { kind = Sub_in arg; _ } -> go arg
    | Subquery _ -> ()
  in
  go e;
  List.sort_uniq compare !acc

(** [mentions_param e] is true when [e] references any [Param] slot. *)
let rec mentions_param e =
  match e.node with
  | Param _ -> true
  | Lit _ | Col _ -> false
  | Neg a | Not a | Cast (a, _) | Is_null (_, a) | Like (a, _) ->
      mentions_param a
  | Arith (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      mentions_param a || mentions_param b
  | In_list (a, es) -> mentions_param a || List.exists mentions_param es
  | Case (whens, els) ->
      List.exists (fun (c, v) -> mentions_param c || mentions_param v) whens
      || (match els with Some e -> mentions_param e | None -> false)
  | Call { args; _ } -> List.exists mentions_param args
  | Subquery { kind = Sub_in arg; _ } -> mentions_param arg
  | Subquery _ -> false

(** [remap f e] rewrites every column index [i] to [f i]. *)
let rec remap f e =
  let r = remap f in
  let node =
    match e.node with
    | Lit _ | Param _ -> e.node
    | Col i -> Col (f i)
    | Neg a -> Neg (r a)
    | Not a -> Not (r a)
    | Cast (a, t) -> Cast (r a, t)
    | Is_null (n, a) -> Is_null (n, r a)
    | Like (a, p) -> Like (r a, p)
    | Arith (op, a, b) -> Arith (op, r a, r b)
    | Cmp (op, a, b) -> Cmp (op, r a, r b)
    | And (a, b) -> And (r a, r b)
    | Or (a, b) -> Or (r a, r b)
    | In_list (a, es) -> In_list (r a, List.map r es)
    | Case (whens, els) ->
        Case (List.map (fun (c, v) -> (r c, r v)) whens, Option.map r els)
    | Call { name; fn; args } -> Call { name; fn; args = List.map r args }
    | Subquery { kind = Sub_in arg; cell } -> Subquery { kind = Sub_in (r arg); cell }
    | Subquery _ as n -> n
  in
  { e with node }

(** [shift delta e] adds [delta] to every column index. *)
let shift delta e = remap (fun i -> i + delta) e

(* --- LIKE pattern matching ------------------------------------------- *)

(** [like_match ~pattern s] implements SQL LIKE: [%] matches any sequence,
    [_] matches one character; other characters match literally. *)
let like_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  (* Two-pointer greedy matcher with backtracking to the last '%',
     O(np * ns) worst case. *)
  let pi = ref 0 and si = ref 0 in
  let star = ref (-1) and star_s = ref 0 in
  let failed = ref false in
  while (not !failed) && !si < ns do
    if !pi < np && (pattern.[!pi] = '_' || pattern.[!pi] = s.[!si]) then begin
      incr pi;
      incr si
    end
    else if !pi < np && pattern.[!pi] = '%' then begin
      star := !pi;
      star_s := !si;
      incr pi
    end
    else if !star >= 0 then begin
      pi := !star + 1;
      incr star_s;
      si := !star_s
    end
    else failed := true
  done;
  if !failed then false
  else begin
    (* Input consumed; the rest of the pattern must be all '%'. *)
    while !pi < np && pattern.[!pi] = '%' do
      incr pi
    done;
    !pi = np
  end

(* --- Evaluation ------------------------------------------------------- *)

exception Eval_error of string

let num_arith op a b =
  match (op, a, b) with
  | Add, Value.Int x, Value.Int y -> Value.Int (x + y)
  | Sub, Value.Int x, Value.Int y -> Value.Int (x - y)
  | Mul, Value.Int x, Value.Int y -> Value.Int (x * y)
  | Div, Value.Int x, Value.Int y ->
      if y = 0 then raise (Eval_error "division by zero") else Value.Int (x / y)
  | Mod, Value.Int x, Value.Int y ->
      if y = 0 then raise (Eval_error "modulo by zero") else Value.Int (x mod y)
  | Add, Value.Date d, Value.Int k | Add, Value.Int k, Value.Date d -> Value.Date (d + k)
  | Sub, Value.Date d, Value.Int k -> Value.Date (d - k)
  | Sub, Value.Date a, Value.Date b -> Value.Int (a - b)
  | op, a, b -> (
      let fa = Value.to_float a and fb = Value.to_float b in
      match op with
      | Add -> Value.Float (fa +. fb)
      | Sub -> Value.Float (fa -. fb)
      | Mul -> Value.Float (fa *. fb)
      | Div ->
          if fb = 0.0 then raise (Eval_error "division by zero") else Value.Float (fa /. fb)
      | Mod -> raise (Eval_error "modulo on non-integers"))

let cmp_result op c =
  match op with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let do_cast v target =
  match (v, target) with
  | Value.Null, _ -> Value.Null
  | v, t when Value.type_of v = t -> v
  | Value.Int i, Value.Float_t -> Value.Float (Float.of_int i)
  | Value.Float f, Value.Int_t -> Value.Int (Float.to_int f)
  | Value.Int i, Value.Str_t -> Value.Str (string_of_int i)
  | Value.Float f, Value.Str_t -> Value.Str (Value.to_string (Value.Float f))
  | Value.Bool b, Value.Str_t -> Value.Str (if b then "true" else "false")
  | Value.Date d, Value.Str_t -> Value.Str (Value.date_string d)
  | Value.Str s, t -> (
      match Value.parse t s with
      | Some v -> v
      | None -> raise (Eval_error (Printf.sprintf "cannot cast %S to %s" s (Value.dtype_name t))))
  | Value.Bool b, Value.Int_t -> Value.Int (if b then 1 else 0)
  | Value.Date d, Value.Int_t -> Value.Int d
  | Value.Int i, Value.Date_t -> Value.Date i
  | v, t ->
      raise
        (Eval_error
           (Printf.sprintf "cannot cast %s to %s" (Value.to_string v) (Value.dtype_name t)))

(** [eval ~row ~params e] evaluates [e] against one input row with SQL
    3-valued logic: NULL operands propagate except through AND/OR/IS NULL
    and CASE. *)
let rec eval ~row ~params e =
  match e.node with
  | Lit v -> v
  | Col i -> row.(i)
  | Param i -> params.(i)
  | Neg a -> (
      match eval ~row ~params a with
      | Value.Null -> Value.Null
      | Value.Int x -> Value.Int (-x)
      | Value.Float x -> Value.Float (-.x)
      | v -> raise (Eval_error ("cannot negate " ^ Value.to_string v)))
  | Not a -> (
      match eval ~row ~params a with
      | Value.Null -> Value.Null
      | Value.Bool b -> Value.Bool (not b)
      | v -> raise (Eval_error ("NOT on non-boolean " ^ Value.to_string v)))
  | Arith (op, a, b) -> (
      match (eval ~row ~params a, eval ~row ~params b) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | va, vb -> num_arith op va vb)
  | Cmp (op, a, b) -> (
      match (eval ~row ~params a, eval ~row ~params b) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | va, vb -> Value.Bool (cmp_result op (Value.compare va vb)))
  | And (a, b) -> (
      (* Kleene AND: false dominates NULL. *)
      match eval ~row ~params a with
      | Value.Bool false -> Value.Bool false
      | va -> (
          match eval ~row ~params b with
          | Value.Bool false -> Value.Bool false
          | Value.Null -> Value.Null
          | vb -> if va = Value.Null then Value.Null else vb))
  | Or (a, b) -> (
      match eval ~row ~params a with
      | Value.Bool true -> Value.Bool true
      | va -> (
          match eval ~row ~params b with
          | Value.Bool true -> Value.Bool true
          | Value.Null -> Value.Null
          | vb -> if va = Value.Null then Value.Null else vb))
  | Like (a, pattern) -> (
      match eval ~row ~params a with
      | Value.Null -> Value.Null
      | Value.Str s -> Value.Bool (like_match ~pattern s)
      | v -> raise (Eval_error ("LIKE on non-string " ^ Value.to_string v)))
  | In_list (a, es) -> (
      match eval ~row ~params a with
      | Value.Null -> Value.Null
      | va ->
          let saw_null = ref false in
          let hit =
            List.exists
              (fun e ->
                match eval ~row ~params e with
                | Value.Null ->
                    saw_null := true;
                    false
                | v -> Value.equal va v)
              es
          in
          if hit then Value.Bool true
          else if !saw_null then Value.Null
          else Value.Bool false)
  | Case (whens, els) ->
      let rec try_whens = function
        | [] -> ( match els with None -> Value.Null | Some e -> eval ~row ~params e)
        | (c, v) :: rest -> (
            match eval ~row ~params c with
            | Value.Bool true -> eval ~row ~params v
            | _ -> try_whens rest)
      in
      try_whens whens
  | Cast (a, t) -> do_cast (eval ~row ~params a) t
  | Is_null (negated, a) ->
      let n = Value.is_null (eval ~row ~params a) in
      Value.Bool (if negated then not n else n)
  | Call { fn; args; _ } ->
      fn (Array.of_list (List.map (eval ~row ~params) args))
  | Subquery { kind; cell } -> eval_subquery ~row ~params kind cell

and eval_subquery ~row ~params kind cell =
  let values =
    match !cell with
    | Some vs -> vs
    | None -> raise (Eval_error "subquery was not materialized before execution")
  in
  match kind with
  | Sub_exists -> Value.Bool (values <> [])
  | Sub_scalar -> (
      match values with
      | [] -> Value.Null
      | [ v ] -> v
      | _ -> raise (Eval_error "scalar subquery returned more than one row"))
  | Sub_in arg -> (
      match eval ~row ~params arg with
      | Value.Null -> Value.Null
      | va ->
          let saw_null = ref false in
          let hit =
            List.exists
              (fun v ->
                if Value.is_null v then begin
                  saw_null := true;
                  false
                end
                else Value.equal va v)
              values
          in
          if hit then Value.Bool true
          else if !saw_null then Value.Null
          else Value.Bool false)

(** [eval_pred ~row ~params e] evaluates a predicate; NULL counts as
    false (SQL WHERE semantics). *)
let eval_pred ~row ~params e =
  match eval ~row ~params e with
  | Value.Bool b -> b
  | Value.Null -> false
  | v -> raise (Eval_error ("predicate returned non-boolean " ^ Value.to_string v))

(** [to_string e] renders the bound expression for EXPLAIN output. *)
let rec to_string e =
  match e.node with
  | Lit v -> Value.to_string v
  | Col i -> Printf.sprintf "#%d" i
  | Param i -> Printf.sprintf "$%d" (i + 1)
  | Neg a -> "(-" ^ to_string a ^ ")"
  | Not a -> "(NOT " ^ to_string a ^ ")"
  | Arith (op, a, b) ->
      let s = match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%" in
      "(" ^ to_string a ^ " " ^ s ^ " " ^ to_string b ^ ")"
  | Cmp (op, a, b) ->
      let s =
        match op with Eq -> "=" | Neq -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
      in
      "(" ^ to_string a ^ " " ^ s ^ " " ^ to_string b ^ ")"
  | And (a, b) -> "(" ^ to_string a ^ " AND " ^ to_string b ^ ")"
  | Or (a, b) -> "(" ^ to_string a ^ " OR " ^ to_string b ^ ")"
  | Like (a, p) -> "(" ^ to_string a ^ " LIKE '" ^ p ^ "')"
  | In_list (a, es) ->
      "(" ^ to_string a ^ " IN (" ^ String.concat ", " (List.map to_string es) ^ "))"
  | Case (_, _) -> "CASE(..)"
  | Cast (a, t) -> "CAST(" ^ to_string a ^ " AS " ^ Value.dtype_name t ^ ")"
  | Is_null (neg, a) -> "(" ^ to_string a ^ (if neg then " IS NOT NULL)" else " IS NULL)")
  | Call { name; args; _ } ->
      name ^ "(" ^ String.concat ", " (List.map to_string args) ^ ")"
  | Subquery { kind = Sub_exists; _ } -> "EXISTS(subquery)"
  | Subquery { kind = Sub_scalar; _ } -> "(subquery)"
  | Subquery { kind = Sub_in arg; _ } -> "(" ^ to_string arg ^ " IN (subquery))"

(** [conjuncts e] splits a predicate on top-level ANDs. *)
let rec conjuncts e =
  match e.node with And (a, b) -> conjuncts a @ conjuncts b | _ -> [ e ]

(** [conjoin es] rebuilds a conjunction; [None] for the empty list. *)
let conjoin = function
  | [] -> None
  | e :: rest ->
      Some (List.fold_left (fun acc c -> { node = And (acc, c); dtype = Value.Bool_t }) e rest)
