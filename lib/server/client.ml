(* The blocking TCP client: connect, send a request frame, read the
   response frame.  Used by [quillsh --connect] and the server tests.
   One request in flight at a time per connection (the protocol allows a
   lone 'X' cancel frame mid-query; see {!send_cancel}). *)

module Value = Quill_storage.Value

type t = { fd : Unix.file_descr }

(** [connect ?host ~port ()] opens a connection. *)
let connect ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  { fd }

(** [request c req] sends one request and waits for the response. *)
let request c req =
  Wire.write_frame c.fd (Wire.encode_request req);
  Wire.decode_response (Wire.read_frame c.fd)

(** [query c sql] runs one statement on the server. *)
let query c sql = request c (Wire.Query sql)

(** [prepare c sql] registers a statement; returns its id. *)
let prepare c sql =
  match request c (Wire.Prepare sql) with
  | Wire.Prepared id -> Ok id
  | Wire.Err (_, m) -> Error m
  | _ -> Error "unexpected response to prepare"

(** [execute c id params] runs a prepared statement with [$n] bound to
    [params.(n-1)]. *)
let execute c id params = request c (Wire.Execute (id, params))

(** [send_cancel c] fires an out-of-band cancel at the in-flight query;
    the pending response (an abort error, usually) still arrives on the
    normal reply stream. *)
let send_cancel c = Wire.write_frame c.fd (Wire.encode_request Wire.Cancel)

(** [close c] says goodbye and closes the socket. *)
let close c =
  (try Wire.write_frame c.fd (Wire.encode_request Wire.Quit)
   with Wire.Protocol_error _ | Unix.Unix_error _ -> ());
  try Unix.close c.fd with Unix.Unix_error _ -> ()
