(* The TCP server: one lightweight session per connection.

   Each accepted connection gets its own [Db.session] on the shared MVCC
   store and a dedicated systhread that owns the socket.  Query frames
   are not executed on that thread: they are scheduled onto the shared
   {!Quill_parallel.Pool} as submitted jobs, bounded by a counting
   semaphore (admission control — at most [max_concurrent_queries]
   queries execute at once; the rest wait their turn, which keeps one
   chatty client from starving the pool).  While a query is in flight
   the connection thread keeps watching the socket through a
   select-on-two-fds loop (socket + a self-pipe the job completion
   writes to), so an 'X' cancel frame interrupts the running query via
   the session governor instead of waiting behind it.

   Per-session fairness and resource limits ride on the existing
   governor: every session starts with the server's default deadline and
   memory budget, so a runaway query aborts with a clean error frame
   instead of wedging its worker.

   Shutdown: [stop] closes the listener, wakes every connection and
   joins the threads (graceful — in-flight queries finish and their
   responses are written).  [kill] closes every socket immediately and
   does not wait: connection threads die on their next socket op, acked
   commits are already fsynced by the store's WAL protocol, and a
   recovery ([Db.open_durable]) sees exactly the committed transactions
   — this is the crash lever the recovery tests pull. *)

module Db = Quill.Db
module Metrics = Quill_obs.Metrics
module Pool = Quill_parallel.Pool

let m_connections = Metrics.counter "quill.server.connections"
let m_queries = Metrics.counter "quill.server.queries"
let m_errors = Metrics.counter "quill.server.errors"
let m_cancels = Metrics.counter "quill.server.cancels"
let m_rejected = Metrics.counter "quill.server.rejected"
let g_sessions = Metrics.gauge "quill.server.active_sessions"

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; see {!port} *)
  max_sessions : int;  (** connections beyond this are refused *)
  max_concurrent_queries : int;  (** admission: queries executing at once *)
  session_timeout_ms : int option;  (** governor deadline per statement *)
  session_budget_bytes : int option;  (** governor memory budget *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7878;
    max_sessions = 64;
    max_concurrent_queries = 4;
    session_timeout_ms = None;
    session_budget_bytes = None;
  }

type t = {
  store : Db.store;
  config : config;
  lsock : Unix.file_descr;
  port : int;  (** the port actually bound *)
  stopping : bool Atomic.t;
  admission : Semaphore.Counting.t;
  sessions : int Atomic.t;
  mutable accept_thread : Thread.t option;
  conn_mutex : Mutex.t;
  mutable conns : (Unix.file_descr * Thread.t) list;
}

(** [port t] is the TCP port the server listens on (useful with
    [config.port = 0]). *)
let port t = t.port

let register_conn t fd thread =
  Mutex.protect t.conn_mutex (fun () -> t.conns <- (fd, thread) :: t.conns)

let forget_conn t fd =
  Mutex.protect t.conn_mutex (fun () ->
      t.conns <- List.filter (fun (fd', _) -> fd' <> fd) t.conns)

(* Close a socket at most once, swallowing the EBADF of a racing close. *)
let quiet_close fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Wake a thread blocked on this socket: [shutdown] makes pending and
   future reads return EOF and writes fail, unlike [close], which on
   Linux leaves a blocked [read]/[accept] blocked forever.  The owning
   thread still closes the fd itself — nobody else may, or the fd number
   could be reused (say, by a reopened WAL) before the owner's close. *)
let quiet_shutdown fd =
  try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

(* --- per-connection protocol loop -------------------------------------- *)

let response_of_result = function
  | Db.Rows table ->
      let schema = Quill_storage.Table.schema table in
      let cols =
        List.map
          (fun c -> (c.Quill_storage.Schema.name, c.Quill_storage.Schema.dtype))
          (Quill_storage.Schema.columns schema)
      in
      let arity = List.length cols in
      let rows = ref [] in
      for i = Quill_storage.Table.row_count table - 1 downto 0 do
        rows :=
          Array.init arity (fun j -> Quill_storage.Table.get table i j) :: !rows
      done;
      Wire.Result (cols, !rows)
  | Db.Affected n -> Wire.Affected n
  | Db.Text s -> Wire.Text s

let response_of_error db = function
  | Db.Conflict m -> Wire.Err (Wire.Conflict_err, m)
  | Db.Aborted r ->
      (* The governor's account (peak bytes, budget, what spilling did)
         beats the bare reason name when the session recorded one. *)
      let detail =
        match Db.last_abort_detail db with
        | Some d -> d
        | None -> Db.abort_reason_name r
      in
      Wire.Err (Wire.Aborted_err, detail)
  | Db.Error m -> Wire.Err (Wire.Generic, m)
  | Wire.Protocol_error m -> Wire.Err (Wire.Protocol_err, m)
  | e -> Wire.Err (Wire.Generic, Printexc.to_string e)

(* Run one statement as a pool job; watch the socket for cancel frames
   while it runs.  Returns [response, quit_after]: [quit_after] is set
   when the client sent 'q' (or vanished) mid-query — the cancel flag is
   raised so the query unwinds quickly, and the connection closes after
   the response is discarded. *)
let run_statement t db fd exec =
  Metrics.incr m_queries;
  let result = ref (Wire.Err (Wire.Generic, "query did not run")) in
  let pipe_r, pipe_w = Unix.pipe ~cloexec:true () in
  let job () =
    (result := try response_of_result (exec ()) with e -> response_of_error db e);
    (* Wake the select loop; EPIPE just means the watcher already left. *)
    try ignore (Unix.write pipe_w (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()
  in
  Semaphore.Counting.acquire t.admission;
  let finally () =
    Semaphore.Counting.release t.admission;
    quiet_close pipe_r;
    quiet_close pipe_w
  in
  Fun.protect ~finally (fun () ->
      Pool.submit job;
      let quit = ref false and running = ref true in
      while !running do
        match Unix.select [ fd; pipe_r ] [] [] (-1.0) with
        | readable, _, _ ->
            if List.mem pipe_r readable then running := false
            else if List.mem fd readable then begin
              (* A frame arrived mid-query: only cancel (or goodbye) is
                 meaningful; anything else is a pipelining mistake. *)
              match Wire.decode_request (Wire.read_frame fd) with
              | Wire.Cancel ->
                  Metrics.incr m_cancels;
                  Db.cancel db
              | Wire.Quit ->
                  quit := true;
                  Db.cancel db
              | _ ->
                  Wire.write_frame fd
                    (Wire.encode_response
                       (Wire.Err
                          ( Wire.Protocol_err,
                            "a query is already in flight on this session" )))
              | exception (End_of_file | Unix.Unix_error _ | Wire.Protocol_error _)
                ->
                  (* Client vanished or sent garbage: abort the query and
                     drop the connection once it unwinds. *)
                  quit := true;
                  Db.cancel db
            end
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      (!result, !quit))

let handle_conn t fd =
  Atomic.incr t.sessions;
  Metrics.incr m_connections;
  Metrics.set g_sessions (Atomic.get t.sessions);
  let db = Db.session t.store in
  Db.set_timeout db t.config.session_timeout_ms;
  Db.set_budget db t.config.session_budget_bytes;
  let prepared : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let next_stmt = ref 0 in
  let respond resp = Wire.write_frame fd (Wire.encode_response resp) in
  (try
     let alive = ref true in
     while !alive && not (Atomic.get t.stopping) do
       match Wire.decode_request (Wire.read_frame fd) with
       | Wire.Query sql ->
           let resp, quit = run_statement t db fd (fun () -> Db.exec db sql) in
           if quit then alive := false else respond resp
       | Wire.Prepare sql ->
           incr next_stmt;
           Hashtbl.replace prepared !next_stmt sql;
           respond (Wire.Prepared !next_stmt)
       | Wire.Execute (id, params) -> (
           match Hashtbl.find_opt prepared id with
           | None ->
               Metrics.incr m_errors;
               respond
                 (Wire.Err
                    (Wire.Generic, Printf.sprintf "no prepared statement %d" id))
           | Some sql ->
               (* Prepared executions take the plan-cached path: at high
                  QPS re-planning per execution dominates, and the cache
                  re-picks per selectivity band when parameters shift. *)
               let resp, quit =
                 run_statement t db fd (fun () -> Db.exec_prepared db ~params sql)
               in
               if quit then alive := false else respond resp)
       | Wire.Cancel -> ()  (* nothing in flight; a benign race *)
       | Wire.Quit -> alive := false
       | exception Wire.Protocol_error m ->
           (* Garbage framing: report once, then drop the connection —
              the stream offset can no longer be trusted. *)
           Metrics.incr m_errors;
           (try respond (Wire.Err (Wire.Protocol_err, m))
            with Wire.Protocol_error _ | Unix.Unix_error _ -> ());
           alive := false
       | exception (End_of_file | Unix.Unix_error _) -> alive := false
     done
   with _ -> ());
  (* Abandon any open transaction so its conflict footprint dies with the
     connection rather than staying pinned. *)
  (try if Db.in_transaction db then Db.rollback_transaction db with _ -> ());
  Db.close db;
  forget_conn t fd;
  quiet_close fd;
  Atomic.decr t.sessions;
  Metrics.set g_sessions (Atomic.get t.sessions)

(* --- lifecycle ---------------------------------------------------------- *)

let accept_loop t =
  while not (Atomic.get t.stopping) do
    match Unix.accept ~cloexec:true t.lsock with
    | fd, _ ->
        if Atomic.get t.stopping then quiet_close fd
        else if Atomic.get t.sessions >= t.config.max_sessions then begin
          Metrics.incr m_rejected;
          (try
             Wire.write_frame fd
               (Wire.encode_response
                  (Wire.Err (Wire.Generic, "server full: too many sessions")))
           with _ -> ());
          quiet_close fd
        end
        else begin
          let thread = Thread.create (fun () -> handle_conn t fd) () in
          register_conn t fd thread
        end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ ->
        (* Listener closed by [stop]/[kill] (or fatally broken): leave. *)
        Atomic.set t.stopping true
  done

(** [start ?config store] binds the listener and spawns the accept
    thread.  The caller keeps the root session; every connection gets
    its own [Db.session store]. *)
let start ?(config = default_config) store =
  let lsock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  (try
     Unix.bind lsock
       (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen lsock 64
   with e ->
     quiet_close lsock;
     raise e);
  let port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let t =
    {
      store;
      config;
      lsock;
      port;
      stopping = Atomic.make false;
      admission = Semaphore.Counting.make (max 1 config.max_concurrent_queries);
      sessions = Atomic.make 0;
      accept_thread = None;
      conn_mutex = Mutex.create ();
      conns = [];
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let live_conns t = Mutex.protect t.conn_mutex (fun () -> t.conns)

(* A blocked [accept] is not woken by closing the listener; poke it with
   a throwaway loopback connection (accepted, seen as a late arrival
   under [stopping], and closed), then the accept thread can be joined
   and the listener closed for real. *)
let stop_listener t =
  Atomic.set t.stopping true;
  (try
     let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
     (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, t.port))
      with Unix.Unix_error _ -> ());
     quiet_close fd
   with Unix.Unix_error _ -> ());
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  t.accept_thread <- None;
  quiet_close t.lsock

(** [stop t] shuts down gracefully: no new connections, existing ones
    are woken (their sockets shut down, so blocked reads see EOF) and
    their threads joined — an in-flight query finishes and its session
    unwinds before the thread exits. *)
let stop t =
  stop_listener t;
  let conns = live_conns t in
  List.iter (fun (fd, _) -> quiet_shutdown fd) conns;
  List.iter (fun (_, th) -> try Thread.join th with _ -> ()) conns

(** [kill t] is the abrupt lever for crash tests: shut every socket down
    and return without waiting for connection threads.  Clients see the
    connection die mid-conversation; whatever the store's WAL acked is
    already on disk, and nothing further can be acknowledged. *)
let kill t =
  stop_listener t;
  List.iter (fun (fd, _) -> quiet_shutdown fd) (live_conns t)
