(* The wire protocol: length-prefixed frames over a byte stream.

   Layout: [u32 LE payload length][payload]; the payload's first byte is
   the message type, the rest the body.  Integers are little-endian,
   strings are u32-length-prefixed bytes.  The codec is pure (string in,
   message out) so it can be fuzzed without sockets; every read is
   bounds-checked and every malformed input raises {!Protocol_error} —
   never [Invalid_argument], never an out-of-bounds access.

   Requests (client -> server):
     'Q' sql                          run one SQL statement
     'P' sql                          prepare, replied with ['p' id]
     'E' u32 id, u16 n, n values      execute a prepared statement
     'X'                              cancel the in-flight query
     'q'                              goodbye; the server closes

   Responses (server -> client):
     'R' u16 ncols, ncols * (str name, dtype), u32 nrows, row-major values
     'A' i64 affected-row count
     'T' str text                     e.g. EXPLAIN output
     'p' u32 statement id
     'e' kind, str message            kind: 'g' generic, 'c' conflict,
                                      'a' governor abort, 'p' protocol

   Values are tagged: 'n' null; 'i' i64; 'f' float64 bits; 'b' u8 bool;
   's' str; 'd' i64 days (DATE).  Dtypes: 'I' 'F' 'S' 'B' 'D'. *)

module Value = Quill_storage.Value

exception Protocol_error of string

(* Upper bound on a frame; a length prefix beyond it is garbage (or an
   attack), not a result set we should try to buffer. *)
let max_frame = 16 * 1024 * 1024

type request =
  | Query of string
  | Prepare of string
  | Execute of int * Value.t array
  | Cancel
  | Quit

type err_kind = Generic | Conflict_err | Aborted_err | Protocol_err

type response =
  | Result of (string * Value.dtype) list * Value.t array list
  | Affected of int
  | Text of string
  | Prepared of int
  | Err of err_kind * string

let bad fmt = Printf.ksprintf (fun m -> raise (Protocol_error m)) fmt

(* --- encoding ----------------------------------------------------------- *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))
let put_u16 b v = Buffer.add_uint16_le b v
let put_u32 b v = Buffer.add_int32_le b (Int32.of_int v)
let put_i64 b v = Buffer.add_int64_le b (Int64.of_int v)

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_value b = function
  | Value.Null -> Buffer.add_char b 'n'
  | Value.Int i ->
      Buffer.add_char b 'i';
      put_i64 b i
  | Value.Float f ->
      Buffer.add_char b 'f';
      Buffer.add_int64_le b (Int64.bits_of_float f)
  | Value.Bool v ->
      Buffer.add_char b 'b';
      put_u8 b (if v then 1 else 0)
  | Value.Str s ->
      Buffer.add_char b 's';
      put_str b s
  | Value.Date d ->
      Buffer.add_char b 'd';
      put_i64 b d

let dtype_tag = function
  | Value.Int_t -> 'I'
  | Value.Float_t -> 'F'
  | Value.Str_t -> 'S'
  | Value.Bool_t -> 'B'
  | Value.Date_t -> 'D'

let err_tag = function
  | Generic -> 'g'
  | Conflict_err -> 'c'
  | Aborted_err -> 'a'
  | Protocol_err -> 'p'

let encode_request req =
  let b = Buffer.create 64 in
  (match req with
  | Query sql ->
      Buffer.add_char b 'Q';
      Buffer.add_string b sql
  | Prepare sql ->
      Buffer.add_char b 'P';
      Buffer.add_string b sql
  | Execute (id, params) ->
      Buffer.add_char b 'E';
      put_u32 b id;
      put_u16 b (Array.length params);
      Array.iter (put_value b) params
  | Cancel -> Buffer.add_char b 'X'
  | Quit -> Buffer.add_char b 'q');
  Buffer.contents b

let encode_response resp =
  let b = Buffer.create 256 in
  (match resp with
  | Result (cols, rows) ->
      Buffer.add_char b 'R';
      put_u16 b (List.length cols);
      List.iter
        (fun (name, dt) ->
          put_str b name;
          Buffer.add_char b (dtype_tag dt))
        cols;
      put_u32 b (List.length rows);
      List.iter (fun row -> Array.iter (put_value b) row) rows
  | Affected n ->
      Buffer.add_char b 'A';
      put_i64 b n
  | Text s ->
      Buffer.add_char b 'T';
      put_str b s
  | Prepared id ->
      Buffer.add_char b 'p';
      put_u32 b id
  | Err (kind, msg) ->
      Buffer.add_char b 'e';
      Buffer.add_char b (err_tag kind);
      put_str b msg);
  Buffer.contents b

(* --- decoding ----------------------------------------------------------- *)

(* Every reader takes (s, pos ref) and advances pos; [need] is the single
   bounds check they all funnel through. *)
let need s pos n =
  if n < 0 || !pos < 0 || !pos + n > String.length s then
    bad "truncated frame: need %d bytes at offset %d of %d" n !pos
      (String.length s)

let get_u8 s pos =
  need s pos 1;
  let v = Char.code s.[!pos] in
  incr pos;
  v

let get_u16 s pos =
  need s pos 2;
  let v = String.get_uint16_le s !pos in
  pos := !pos + 2;
  v

let get_u32 s pos =
  need s pos 4;
  let v = Int32.to_int (String.get_int32_le s !pos) land 0xFFFFFFFF in
  pos := !pos + 4;
  v

let get_i64 s pos =
  need s pos 8;
  let v = String.get_int64_le s !pos in
  pos := !pos + 8;
  Int64.to_int v

let get_str s pos =
  let len = get_u32 s pos in
  if len > max_frame then bad "string length %d exceeds frame bound" len;
  need s pos len;
  let v = String.sub s !pos len in
  pos := !pos + len;
  v

let get_value s pos =
  match Char.chr (get_u8 s pos) with
  | 'n' -> Value.Null
  | 'i' -> Value.Int (get_i64 s pos)
  | 'f' ->
      need s pos 8;
      let v = Int64.float_of_bits (String.get_int64_le s !pos) in
      pos := !pos + 8;
      Value.Float v
  | 'b' -> Value.Bool (get_u8 s pos <> 0)
  | 's' -> Value.Str (get_str s pos)
  | 'd' -> Value.Date (get_i64 s pos)
  | c -> bad "unknown value tag %C" c

let get_dtype s pos =
  match Char.chr (get_u8 s pos) with
  | 'I' -> Value.Int_t
  | 'F' -> Value.Float_t
  | 'S' -> Value.Str_t
  | 'B' -> Value.Bool_t
  | 'D' -> Value.Date_t
  | c -> bad "unknown dtype tag %C" c

let rest s pos =
  let v = String.sub s !pos (String.length s - !pos) in
  pos := String.length s;
  v

let at_end name s pos =
  if !pos <> String.length s then
    bad "%s: %d trailing bytes" name (String.length s - !pos)

let decode_request s =
  if s = "" then bad "empty frame";
  let pos = ref 0 in
  let req =
    match Char.chr (get_u8 s pos) with
    | 'Q' -> Query (rest s pos)
    | 'P' -> Prepare (rest s pos)
    | 'E' ->
        let id = get_u32 s pos in
        let n = get_u16 s pos in
        let params = Array.init n (fun _ -> get_value s pos) in
        Execute (id, params)
    | 'X' -> Cancel
    | 'q' -> Quit
    | c -> bad "unknown request type %C" c
  in
  at_end "request" s pos;
  req

let decode_response s =
  if s = "" then bad "empty frame";
  let pos = ref 0 in
  let resp =
    match Char.chr (get_u8 s pos) with
    | 'R' ->
        let ncols = get_u16 s pos in
        let cols =
          List.init ncols (fun _ ->
              let name = get_str s pos in
              let dt = get_dtype s pos in
              (name, dt))
        in
        let nrows = get_u32 s pos in
        (* Guard before allocating: each value takes >= 1 byte, so a row
           count the remaining bytes cannot hold is malformed. *)
        if nrows * max 1 ncols > String.length s - !pos then
          bad "row count %d does not fit the frame" nrows;
        let rows =
          List.init nrows (fun _ -> Array.init ncols (fun _ -> get_value s pos))
        in
        Result (cols, rows)
    | 'A' -> Affected (get_i64 s pos)
    | 'T' -> Text (get_str s pos)
    | 'p' -> Prepared (get_u32 s pos)
    | 'e' ->
        let kind =
          match Char.chr (get_u8 s pos) with
          | 'g' -> Generic
          | 'c' -> Conflict_err
          | 'a' -> Aborted_err
          | 'p' -> Protocol_err
          | c -> bad "unknown error kind %C" c
        in
        Err (kind, get_str s pos)
    | c -> bad "unknown response type %C" c
  in
  at_end "response" s pos;
  resp

(* --- framed socket I/O -------------------------------------------------- *)

(* Loop [Unix.read] to fill exactly [len] bytes; 0 bytes = peer closed. *)
let really_read fd buf ofs len =
  let got = ref 0 in
  while !got < len do
    let n = Unix.read fd buf (ofs + !got) (len - !got) in
    if n = 0 then raise End_of_file;
    got := !got + n
  done

(** [read_frame fd] reads one length-prefixed frame and returns its
    payload.  Raises {!Protocol_error} on an oversized or zero-length
    prefix and [End_of_file] when the peer closed cleanly between
    frames. *)
let read_frame fd =
  let hdr = Bytes.create 4 in
  really_read fd hdr 0 4;
  let len = Int32.to_int (Bytes.get_int32_le hdr 0) land 0xFFFFFFFF in
  if len = 0 then bad "zero-length frame";
  if len > max_frame then bad "frame length %d exceeds limit %d" len max_frame;
  let payload = Bytes.create len in
  really_read fd payload 0 len;
  Bytes.unsafe_to_string payload

(** [write_frame fd payload] writes one frame (length prefix + payload). *)
let write_frame fd payload =
  let len = String.length payload in
  if len = 0 || len > max_frame then bad "refusing to send %d-byte frame" len;
  let msg = Bytes.create (4 + len) in
  Bytes.set_int32_le msg 0 (Int32.of_int len);
  Bytes.blit_string payload 0 msg 4 len;
  let sent = ref 0 in
  while !sent < Bytes.length msg do
    sent := !sent + Unix.write fd msg !sent (Bytes.length msg - !sent)
  done
