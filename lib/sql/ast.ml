(* Abstract syntax of the Quill SQL subset.

   The AST is untyped and name-based; the binder in [quill.plan] resolves
   names against the catalog and produces typed, index-based expressions. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or

type unop = Neg | Not

type agg_kind = Count | Sum | Avg | Min | Max

type win_kind =
  | W_row_number
  | W_rank
  | W_dense_rank
  | W_lag of int  (** offset, default 1 *)
  | W_lead of int
  | W_agg of agg_kind  (** aggregate over the window *)

type order_dir = Asc | Desc

type join_kind = Inner | Left_outer

type expr =
  | Lit of Quill_storage.Value.t
  | Col of string  (** possibly qualified, e.g. ["l.price"] *)
  | Param of int  (** [$1]-style query parameter, 1-based *)
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Like of expr * string
  | In_list of expr * expr list
  | Between of expr * expr * expr
  | Case of (expr * expr) list * expr option
  | Cast of expr * Quill_storage.Value.dtype
  | Is_null of { negated : bool; arg : expr }
  | Call of string * expr list  (** scalar built-ins and registered UDFs *)
  | Agg of { kind : agg_kind; arg : expr option; distinct : bool }
  | Winfun of {
      kind : win_kind;
      arg : expr option;  (** None for row_number/rank/dense_rank/COUNT star *)
      partition : expr list;
      order : (expr * order_dir) list;
    }  (** window function: f(...) OVER (PARTITION BY .. ORDER BY ..) *)
  | Scalar_sub of select  (** uncorrelated scalar subquery *)
  | Exists of select  (** EXISTS (SELECT ...) *)
  | In_select of expr * select  (** e IN (SELECT ...) *)

and item = Star | Item of expr * string option

and from =
  | Table_ref of string * string option  (** name, alias *)
  | Join of join_kind * from * from * expr option
      (** JOIN ... ON; cross join when [Inner] with no condition *)
  | Sub of select * string  (** derived table with mandatory alias *)

and select = {
  distinct : bool;
  items : item list;
  from : from option;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : (expr * order_dir) list;
  limit : int option;
  offset : int option;
}

type stmt =
  | Select of select
  | Create_table of string * (string * Quill_storage.Value.dtype * bool) list
      (** name, (col, type, nullable) list *)
  | Insert of string * string list option * expr list list
  | Copy of string * string  (** COPY table FROM 'path' *)
  | Explain of { analyze : bool; query : select }
  | Drop_table of string
  | Create_index of string * string  (** CREATE INDEX ON t (col) *)
  | Create_table_as of string * select  (** CREATE TABLE t AS SELECT ... *)
  | Delete of string * expr option  (** DELETE FROM t [WHERE e] *)
  | Update of string * (string * expr) list * expr option
      (** UPDATE t SET c = e, ... [WHERE e] *)
  | Begin  (** BEGIN [TRANSACTION | WORK] / START TRANSACTION *)
  | Commit  (** COMMIT [TRANSACTION | WORK] *)
  | Rollback  (** ROLLBACK [TRANSACTION | WORK] / ABORT *)

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "AND" | Or -> "OR"

let agg_name = function
  | Count -> "COUNT" | Sum -> "SUM" | Avg -> "AVG" | Min -> "MIN" | Max -> "MAX"

(** [expr_to_string e] renders an expression back to SQL-ish text (used by
    EXPLAIN and in error messages; fully parenthesized). *)
let rec expr_to_string = function
  | Lit (Quill_storage.Value.Str s) -> "'" ^ s ^ "'"
  | Lit (Quill_storage.Value.Date d) ->
      "DATE '" ^ Quill_storage.Value.date_string d ^ "'"
  | Lit v -> Quill_storage.Value.to_string v
  | Col c -> c
  | Param i -> "$" ^ string_of_int i
  | Unary (Neg, e) -> "(-" ^ expr_to_string e ^ ")"
  | Unary (Not, e) -> "(NOT " ^ expr_to_string e ^ ")"
  | Binary (op, a, b) ->
      "(" ^ expr_to_string a ^ " " ^ binop_name op ^ " " ^ expr_to_string b ^ ")"
  | Like (e, pat) -> "(" ^ expr_to_string e ^ " LIKE '" ^ pat ^ "')"
  | In_list (e, es) ->
      "(" ^ expr_to_string e ^ " IN ("
      ^ String.concat ", " (List.map expr_to_string es)
      ^ "))"
  | Between (e, lo, hi) ->
      "(" ^ expr_to_string e ^ " BETWEEN " ^ expr_to_string lo ^ " AND "
      ^ expr_to_string hi ^ ")"
  | Case (whens, els) ->
      "CASE "
      ^ String.concat " "
          (List.map
             (fun (c, v) -> "WHEN " ^ expr_to_string c ^ " THEN " ^ expr_to_string v)
             whens)
      ^ (match els with None -> "" | Some e -> " ELSE " ^ expr_to_string e)
      ^ " END"
  | Cast (e, t) ->
      "CAST(" ^ expr_to_string e ^ " AS " ^ Quill_storage.Value.dtype_name t ^ ")"
  | Is_null { negated; arg } ->
      "(" ^ expr_to_string arg ^ (if negated then " IS NOT NULL)" else " IS NULL)")
  | Call (f, args) -> f ^ "(" ^ String.concat ", " (List.map expr_to_string args) ^ ")"
  | Agg { kind; arg; distinct } ->
      agg_name kind ^ "("
      ^ (if distinct then "DISTINCT " else "")
      ^ (match arg with None -> "*" | Some e -> expr_to_string e)
      ^ ")"
  | Winfun { kind; arg; _ } ->
      let name =
        match kind with
        | W_row_number -> "ROW_NUMBER" | W_rank -> "RANK" | W_dense_rank -> "DENSE_RANK"
        | W_lag _ -> "LAG" | W_lead _ -> "LEAD" | W_agg k -> agg_name k
      in
      name ^ "(" ^ (match arg with None -> "" | Some e -> expr_to_string e) ^ ") OVER (..)"
  | Scalar_sub _ -> "(SELECT ...)"
  | Exists _ -> "EXISTS (SELECT ...)"
  | In_select (e, _) -> "(" ^ expr_to_string e ^ " IN (SELECT ...))"

(** [contains_agg e] is true when [e] contains an aggregate call. *)
let rec contains_agg = function
  | Agg _ -> true
  | Lit _ | Col _ | Param _ -> false
  | Unary (_, e) | Cast (e, _) | Is_null { arg = e; _ } | Like (e, _) -> contains_agg e
  | Binary (_, a, b) -> contains_agg a || contains_agg b
  | In_list (e, es) -> contains_agg e || List.exists contains_agg es
  | Between (a, b, c) -> contains_agg a || contains_agg b || contains_agg c
  | Case (whens, els) ->
      List.exists (fun (c, v) -> contains_agg c || contains_agg v) whens
      || (match els with None -> false | Some e -> contains_agg e)
  | Call (_, args) -> List.exists contains_agg args
  (* Subqueries are separate aggregation scopes. *)
  | Scalar_sub _ | Exists _ -> false
  | In_select (e, _) -> contains_agg e
  (* A window aggregate is not a GROUP BY aggregate; only its operands
     count. *)
  | Winfun { arg; partition; order; _ } ->
      (match arg with Some e -> contains_agg e | None -> false)
      || List.exists contains_agg partition
      || List.exists (fun (e, _) -> contains_agg e) order

(** [contains_window e] is true when [e] contains a window function. *)
let rec contains_window = function
  | Winfun _ -> true
  | Lit _ | Col _ | Param _ -> false
  | Unary (_, e) | Cast (e, _) | Is_null { arg = e; _ } | Like (e, _) -> contains_window e
  | Binary (_, a, b) -> contains_window a || contains_window b
  | In_list (e, es) -> contains_window e || List.exists contains_window es
  | Between (a, b, c) -> contains_window a || contains_window b || contains_window c
  | Case (whens, els) ->
      List.exists (fun (c, v) -> contains_window c || contains_window v) whens
      || (match els with None -> false | Some e -> contains_window e)
  | Call (_, args) -> List.exists contains_window args
  | Agg { arg; _ } -> ( match arg with Some e -> contains_window e | None -> false)
  | Scalar_sub _ | Exists _ -> false
  | In_select (e, _) -> contains_window e
