(* Hand-written SQL lexer.

   Keywords are case-insensitive; identifiers are lowercased so the rest of
   the system is case-insensitive for names.  String literals use single
   quotes with '' escaping.  [--] starts a line comment. *)

type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Keyword of string  (** uppercased *)
  | Punct of string  (** one of ( ) , . * = <> != < <= > >= + - / % $ ; *)
  | Eof

exception Lex_error of string * int  (** message, position *)

let keywords =
  [ "SELECT"; "FROM"; "WHERE"; "GROUP"; "BY"; "HAVING"; "ORDER"; "LIMIT";
    "OFFSET"; "AS"; "AND"; "OR"; "NOT"; "NULL"; "TRUE"; "FALSE"; "LIKE";
    "IN"; "BETWEEN"; "CASE"; "WHEN"; "THEN"; "ELSE"; "END"; "CAST"; "IS";
    "JOIN"; "INNER"; "CROSS"; "LEFT"; "OUTER"; "ON"; "DISTINCT"; "ASC"; "DESC"; "CREATE";
    "TABLE"; "INSERT"; "INTO"; "VALUES"; "COPY"; "EXPLAIN"; "ANALYZE";
    "DELETE"; "UPDATE"; "SET"; "INDEX"; "EXISTS"; "OVER"; "PARTITION";
    "DATE"; "INT"; "INTEGER"; "BIGINT"; "FLOAT"; "DOUBLE"; "REAL"; "TEXT";
    "VARCHAR"; "CHAR"; "BOOL"; "BOOLEAN"; "DROP"; "COUNT"; "SUM"; "AVG";
    "MIN"; "MAX"; "BEGIN"; "COMMIT"; "ROLLBACK"; "ABORT"; "START";
    "TRANSACTION"; "WORK" ]

let keyword_set = List.fold_left (fun s k -> (k, ()) :: s) [] keywords

let is_keyword s = List.mem_assoc (String.uppercase_ascii s) keyword_set

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(** [tokenize s] lexes [s] into a token list ending with [Eof]; raises
    {!Lex_error} on unexpected characters or unterminated strings. *)
let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let emit t = toks := t :: !toks in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && s.[!i + 1] = '-' then begin
      while !i < n && s.[!i] <> '\n' do incr i done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do incr i done;
      let word = String.sub s start (!i - start) in
      if is_keyword word then emit (Keyword (String.uppercase_ascii word))
      else emit (Ident (String.lowercase_ascii word))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit s.[!i] do incr i done;
      let is_float =
        (!i < n && s.[!i] = '.' && !i + 1 < n && is_digit s.[!i + 1])
        || (!i < n && (s.[!i] = 'e' || s.[!i] = 'E'))
      in
      if is_float then begin
        if !i < n && s.[!i] = '.' then begin
          incr i;
          while !i < n && is_digit s.[!i] do incr i done
        end;
        if !i < n && (s.[!i] = 'e' || s.[!i] = 'E') then begin
          incr i;
          if !i < n && (s.[!i] = '+' || s.[!i] = '-') then incr i;
          while !i < n && is_digit s.[!i] do incr i done
        end;
        emit (Float_lit (float_of_string (String.sub s start (!i - start))))
      end
      else emit (Int_lit (int_of_string (String.sub s start (!i - start))))
    end
    else if c = '\'' then begin
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while not !closed do
        if !i >= n then raise (Lex_error ("unterminated string literal", !i));
        if s.[!i] = '\'' then
          if !i + 1 < n && s.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf s.[!i];
          incr i
        end
      done;
      emit (Str_lit (Buffer.contents buf))
    end
    else begin
      let two = if !i + 1 < n then String.sub s !i 2 else "" in
      match two with
      | "<=" | ">=" | "<>" | "!=" ->
          emit (Punct (if two = "!=" then "<>" else two));
          i := !i + 2
      | _ -> (
          match c with
          | '(' | ')' | ',' | '.' | '*' | '=' | '<' | '>' | '+' | '-' | '/'
          | '%' | '$' | ';' ->
              emit (Punct (String.make 1 c));
              incr i
          | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !i)))
    end
  done;
  emit Eof;
  List.rev !toks

(** [token_to_string t] renders a token for error messages. *)
let token_to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | Str_lit s -> Printf.sprintf "'%s'" s
  | Keyword k -> k
  | Punct p -> Printf.sprintf "%S" p
  | Eof -> "end of input"
