(* Recursive-descent parser for the Quill SQL subset.

   Expressions use classic precedence layering:
   OR < AND < NOT < comparison/LIKE/IN/BETWEEN/IS < +,- < *,/,% < unary -.
   Errors carry the offending token to keep messages actionable. *)

open Ast

exception Parse_error of string

type state = { toks : Lexer.token array; mutable pos : int }

let peek st = st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s (at %s)" msg (Lexer.token_to_string (peek st))))

let eat_punct st p =
  match peek st with
  | Lexer.Punct q when q = p -> advance st
  | _ -> fail st (Printf.sprintf "expected %S" p)

let eat_keyword st k =
  match peek st with
  | Lexer.Keyword q when q = k -> advance st
  | _ -> fail st (Printf.sprintf "expected %s" k)

let try_keyword st k =
  match peek st with
  | Lexer.Keyword q when q = k ->
      advance st;
      true
  | _ -> false

let try_punct st p =
  match peek st with
  | Lexer.Punct q when q = p ->
      advance st;
      true
  | _ -> false

let ident st =
  match peek st with
  | Lexer.Ident s ->
      advance st;
      s
  | _ -> fail st "expected identifier"

(* Possibly qualified column reference: a or a.b *)
let qualified_ident st =
  let first = ident st in
  if try_punct st "." then first ^ "." ^ ident st else first

let dtype st =
  match peek st with
  | Lexer.Keyword ("INT" | "INTEGER" | "BIGINT") ->
      advance st;
      Quill_storage.Value.Int_t
  | Lexer.Keyword ("FLOAT" | "DOUBLE" | "REAL") ->
      advance st;
      Quill_storage.Value.Float_t
  | Lexer.Keyword ("TEXT" | "VARCHAR" | "CHAR") ->
      advance st;
      (* Optional length, accepted and ignored. *)
      if try_punct st "(" then begin
        (match peek st with Lexer.Int_lit _ -> advance st | _ -> fail st "expected length");
        eat_punct st ")"
      end;
      Quill_storage.Value.Str_t
  | Lexer.Keyword ("BOOL" | "BOOLEAN") ->
      advance st;
      Quill_storage.Value.Bool_t
  | Lexer.Keyword "DATE" ->
      advance st;
      Quill_storage.Value.Date_t
  | _ -> fail st "expected type name"

let agg_kind_of_keyword = function
  | "COUNT" -> Some Count
  | "SUM" -> Some Sum
  | "AVG" -> Some Avg
  | "MIN" -> Some Min
  | "MAX" -> Some Max
  | _ -> None

let rec expr st = or_expr st

and or_expr st =
  let lhs = ref (and_expr st) in
  while try_keyword st "OR" do
    lhs := Binary (Or, !lhs, and_expr st)
  done;
  !lhs

and and_expr st =
  let lhs = ref (not_expr st) in
  while try_keyword st "AND" do
    lhs := Binary (And, !lhs, not_expr st)
  done;
  !lhs

and not_expr st = if try_keyword st "NOT" then Unary (Not, not_expr st) else cmp_expr st

and cmp_expr st =
  let lhs = add_expr st in
  let negated = try_keyword st "NOT" in
  let wrap e = if negated then Unary (Not, e) else e in
  match peek st with
  | Lexer.Punct ("=" | "<>" | "<" | "<=" | ">" | ">=") when not negated ->
      let op =
        match peek st with
        | Lexer.Punct "=" -> Eq
        | Lexer.Punct "<>" -> Neq
        | Lexer.Punct "<" -> Lt
        | Lexer.Punct "<=" -> Le
        | Lexer.Punct ">" -> Gt
        | Lexer.Punct ">=" -> Ge
        | _ -> assert false
      in
      advance st;
      Binary (op, lhs, add_expr st)
  | Lexer.Keyword "LIKE" ->
      advance st;
      (match peek st with
      | Lexer.Str_lit pat ->
          advance st;
          wrap (Like (lhs, pat))
      | _ -> fail st "LIKE expects a string literal pattern")
  | Lexer.Keyword "IN" ->
      advance st;
      eat_punct st "(";
      if peek st = Lexer.Keyword "SELECT" then begin
        let sub = select_body st in
        eat_punct st ")";
        wrap (In_select (lhs, sub))
      end
      else begin
        let items = ref [ expr st ] in
        while try_punct st "," do
          items := expr st :: !items
        done;
        eat_punct st ")";
        wrap (In_list (lhs, List.rev !items))
      end
  | Lexer.Keyword "BETWEEN" ->
      advance st;
      let lo = add_expr st in
      eat_keyword st "AND";
      let hi = add_expr st in
      wrap (Between (lhs, lo, hi))
  | Lexer.Keyword "IS" when not negated ->
      advance st;
      let neg = try_keyword st "NOT" in
      eat_keyword st "NULL";
      Is_null { negated = neg; arg = lhs }
  | _ ->
      if negated then fail st "expected LIKE, IN or BETWEEN after NOT" else lhs

and add_expr st =
  let lhs = ref (mul_expr st) in
  let continue = ref true in
  while !continue do
    if try_punct st "+" then lhs := Binary (Add, !lhs, mul_expr st)
    else if try_punct st "-" then lhs := Binary (Sub, !lhs, mul_expr st)
    else continue := false
  done;
  !lhs

and mul_expr st =
  let lhs = ref (unary_expr st) in
  let continue = ref true in
  while !continue do
    if try_punct st "*" then lhs := Binary (Mul, !lhs, unary_expr st)
    else if try_punct st "/" then lhs := Binary (Div, !lhs, unary_expr st)
    else if try_punct st "%" then lhs := Binary (Mod, !lhs, unary_expr st)
    else continue := false
  done;
  !lhs

and unary_expr st = if try_punct st "-" then Unary (Neg, unary_expr st) else primary st

and primary st =
  match peek st with
  | Lexer.Int_lit i ->
      advance st;
      Lit (Quill_storage.Value.Int i)
  | Lexer.Float_lit f ->
      advance st;
      Lit (Quill_storage.Value.Float f)
  | Lexer.Str_lit s ->
      advance st;
      Lit (Quill_storage.Value.Str s)
  | Lexer.Keyword "TRUE" ->
      advance st;
      Lit (Quill_storage.Value.Bool true)
  | Lexer.Keyword "FALSE" ->
      advance st;
      Lit (Quill_storage.Value.Bool false)
  | Lexer.Keyword "NULL" ->
      advance st;
      Lit Quill_storage.Value.Null
  | Lexer.Keyword "DATE" -> (
      advance st;
      match peek st with
      | Lexer.Str_lit s -> (
          advance st;
          match Quill_storage.Value.parse_date s with
          | Some d -> Lit (Quill_storage.Value.Date d)
          | None -> raise (Parse_error (Printf.sprintf "bad date literal %S" s)))
      | _ -> fail st "DATE expects a string literal")
  | Lexer.Punct "$" -> (
      advance st;
      match peek st with
      | Lexer.Int_lit i when i >= 1 ->
          advance st;
          Param i
      | _ -> fail st "expected parameter number after $")
  | Lexer.Keyword "CASE" ->
      advance st;
      let whens = ref [] in
      while try_keyword st "WHEN" do
        let c = expr st in
        eat_keyword st "THEN";
        let v = expr st in
        whens := (c, v) :: !whens
      done;
      if !whens = [] then fail st "CASE requires at least one WHEN";
      let els = if try_keyword st "ELSE" then Some (expr st) else None in
      eat_keyword st "END";
      Case (List.rev !whens, els)
  | Lexer.Keyword "CAST" ->
      advance st;
      eat_punct st "(";
      let e = expr st in
      eat_keyword st "AS";
      let t = dtype st in
      eat_punct st ")";
      Cast (e, t)
  | Lexer.Keyword k when agg_kind_of_keyword k <> None ->
      let kind = Option.get (agg_kind_of_keyword k) in
      advance st;
      eat_punct st "(";
      let distinct = try_keyword st "DISTINCT" in
      let base =
        if try_punct st "*" then begin
          if kind <> Count then fail st "only COUNT(*) is allowed";
          eat_punct st ")";
          Agg { kind; arg = None; distinct = false }
        end
        else begin
          let e = expr st in
          eat_punct st ")";
          Agg { kind; arg = Some e; distinct }
        end
      in
      if try_keyword st "OVER" then begin
        match base with
        | Agg { distinct = true; _ } -> fail st "DISTINCT is not supported in window functions"
        | Agg { kind; arg; _ } ->
            let partition, order = over_clause st in
            Winfun { kind = W_agg kind; arg; partition; order }
        | _ -> assert false
      end
      else base
  | Lexer.Keyword "EXISTS" ->
      advance st;
      eat_punct st "(";
      let sub = select_body st in
      eat_punct st ")";
      Exists sub
  | Lexer.Punct "(" ->
      advance st;
      if peek st = Lexer.Keyword "SELECT" then begin
        let sub = select_body st in
        eat_punct st ")";
        Scalar_sub sub
      end
      else begin
        let e = expr st in
        eat_punct st ")";
        e
      end
  | Lexer.Ident _ ->
      let name = qualified_ident st in
      if (not (String.contains name '.')) && try_punct st "(" then begin
        (* Scalar function / UDF call, possibly a window function. *)
        let args = ref [] in
        if not (try_punct st ")") then begin
          args := [ expr st ];
          while try_punct st "," do
            args := expr st :: !args
          done;
          eat_punct st ")"
        end;
        let args = List.rev !args in
        if try_keyword st "OVER" then begin
          let lag_lead mk =
            match args with
            | [ e ] -> (mk 1, Some e)
            | [ e; Lit (Quill_storage.Value.Int k) ] when k >= 0 -> (mk k, Some e)
            | _ -> fail st "LAG/LEAD expect (expr [, non-negative offset])"
          in
          let kind, arg =
            match (name, args) with
            | "row_number", [] -> (W_row_number, None)
            | "rank", [] -> (W_rank, None)
            | "dense_rank", [] -> (W_dense_rank, None)
            | "lag", _ -> lag_lead (fun k -> W_lag k)
            | "lead", _ -> lag_lead (fun k -> W_lead k)
            | _ -> fail st (Printf.sprintf "unknown window function %s" name)
          in
          let partition, order = over_clause st in
          Winfun { kind; arg; partition; order }
        end
        else Call (name, args)
      end
      else Col name
  | _ -> fail st "expected expression"

and over_clause st =
  eat_punct st "(";
  let partition =
    if try_keyword st "PARTITION" then begin
      eat_keyword st "BY";
      let es = ref [ expr st ] in
      while try_punct st "," do
        es := expr st :: !es
      done;
      List.rev !es
    end
    else []
  in
  let order =
    if try_keyword st "ORDER" then begin
      eat_keyword st "BY";
      let one () =
        let e = expr st in
        let dir =
          if try_keyword st "DESC" then Desc
          else begin
            let _ = try_keyword st "ASC" in
            Asc
          end
        in
        (e, dir)
      in
      let es = ref [ one () ] in
      while try_punct st "," do
        es := one () :: !es
      done;
      List.rev !es
    end
    else []
  in
  eat_punct st ")";
  (partition, order)

and select_item st =
  if try_punct st "*" then Star
  else begin
    let e = expr st in
    let alias =
      if try_keyword st "AS" then Some (ident st)
      else match peek st with Lexer.Ident _ -> Some (ident st) | _ -> None
    in
    Item (e, alias)
  end

and from_primary st =
  if try_punct st "(" then begin
    let sub = select_body st in
    eat_punct st ")";
    let _ = try_keyword st "AS" in
    Sub (sub, ident st)
  end
  else begin
    let name = ident st in
    let alias =
      if try_keyword st "AS" then Some (ident st)
      else match peek st with Lexer.Ident _ -> Some (ident st) | _ -> None
    in
    Table_ref (name, alias)
  end

and from_clause st =
  let lhs = ref (from_primary st) in
  let continue = ref true in
  while !continue do
    if try_punct st "," then lhs := Join (Inner, !lhs, from_primary st, None)
    else if try_keyword st "CROSS" then begin
      eat_keyword st "JOIN";
      lhs := Join (Inner, !lhs, from_primary st, None)
    end
    else if try_keyword st "LEFT" then begin
      let _ = try_keyword st "OUTER" in
      eat_keyword st "JOIN";
      let rhs = from_primary st in
      eat_keyword st "ON";
      lhs := Join (Left_outer, !lhs, rhs, Some (expr st))
    end
    else begin
      let inner = try_keyword st "INNER" in
      if try_keyword st "JOIN" then begin
        let rhs = from_primary st in
        eat_keyword st "ON";
        lhs := Join (Inner, !lhs, rhs, Some (expr st))
      end
      else if inner then fail st "expected JOIN after INNER"
      else continue := false
    end
  done;
  !lhs

and select_body st =
  eat_keyword st "SELECT";
  let distinct = try_keyword st "DISTINCT" in
  let items = ref [ select_item st ] in
  while try_punct st "," do
    items := select_item st :: !items
  done;
  let from = if try_keyword st "FROM" then Some (from_clause st) else None in
  let where = if try_keyword st "WHERE" then Some (expr st) else None in
  let group_by =
    if try_keyword st "GROUP" then begin
      eat_keyword st "BY";
      let es = ref [ expr st ] in
      while try_punct st "," do
        es := expr st :: !es
      done;
      List.rev !es
    end
    else []
  in
  let having = if try_keyword st "HAVING" then Some (expr st) else None in
  let order_by =
    if try_keyword st "ORDER" then begin
      eat_keyword st "BY";
      let one () =
        let e = expr st in
        let dir =
          if try_keyword st "DESC" then Desc
          else begin
            let _ = try_keyword st "ASC" in
            Asc
          end
        in
        (e, dir)
      in
      let es = ref [ one () ] in
      while try_punct st "," do
        es := one () :: !es
      done;
      List.rev !es
    end
    else []
  in
  let int_lit () =
    match peek st with
    | Lexer.Int_lit i ->
        advance st;
        i
    | _ -> fail st "expected integer"
  in
  let limit = if try_keyword st "LIMIT" then Some (int_lit ()) else None in
  let offset = if try_keyword st "OFFSET" then Some (int_lit ()) else None in
  { distinct; items = List.rev !items; from; where; group_by; having; order_by;
    limit; offset }

let create_table st =
  if try_keyword st "INDEX" then begin
    eat_keyword st "ON";
    let table = ident st in
    eat_punct st "(";
    let col = ident st in
    eat_punct st ")";
    Create_index (table, col)
  end
  else begin
  eat_keyword st "TABLE";
  let name = ident st in
  if try_keyword st "AS" then Create_table_as (name, select_body st)
  else begin
  eat_punct st "(";
  let col () =
    let cname = ident st in
    let t = dtype st in
    let nullable =
      if try_keyword st "NOT" then begin
        eat_keyword st "NULL";
        false
      end
      else true
    in
    (cname, t, nullable)
  in
  let cols = ref [ col () ] in
  while try_punct st "," do
    cols := col () :: !cols
  done;
  eat_punct st ")";
  Create_table (name, List.rev !cols)
  end
  end

let insert st =
  eat_keyword st "INTO";
  let name = ident st in
  let cols =
    if try_punct st "(" then begin
      let cs = ref [ ident st ] in
      while try_punct st "," do
        cs := ident st :: !cs
      done;
      eat_punct st ")";
      Some (List.rev !cs)
    end
    else None
  in
  eat_keyword st "VALUES";
  let row () =
    eat_punct st "(";
    let es = ref [ expr st ] in
    while try_punct st "," do
      es := expr st :: !es
    done;
    eat_punct st ")";
    List.rev !es
  in
  let rows = ref [ row () ] in
  while try_punct st "," do
    rows := row () :: !rows
  done;
  Insert (name, cols, List.rev !rows)

let statement st =
  let s =
    match peek st with
    | Lexer.Keyword "SELECT" -> Select (select_body st)
    | Lexer.Keyword "CREATE" ->
        advance st;
        create_table st
    | Lexer.Keyword "INSERT" ->
        advance st;
        insert st
    | Lexer.Keyword "DROP" ->
        advance st;
        eat_keyword st "TABLE";
        Drop_table (ident st)
    | Lexer.Keyword "COPY" ->
        advance st;
        let name = ident st in
        eat_keyword st "FROM";
        (match peek st with
        | Lexer.Str_lit path ->
            advance st;
            Copy (name, path)
        | _ -> fail st "COPY expects a quoted path")
    | Lexer.Keyword "DELETE" ->
        advance st;
        eat_keyword st "FROM";
        let name = ident st in
        let where = if try_keyword st "WHERE" then Some (expr st) else None in
        Delete (name, where)
    | Lexer.Keyword "UPDATE" ->
        advance st;
        let name = ident st in
        eat_keyword st "SET";
        let assign () =
          let c = ident st in
          eat_punct st "=";
          (c, expr st)
        in
        let sets = ref [ assign () ] in
        while try_punct st "," do
          sets := assign () :: !sets
        done;
        let where = if try_keyword st "WHERE" then Some (expr st) else None in
        Update (name, List.rev !sets, where)
    | Lexer.Keyword "EXPLAIN" ->
        advance st;
        let analyze = try_keyword st "ANALYZE" in
        Explain { analyze; query = select_body st }
    | Lexer.Keyword "BEGIN" ->
        advance st;
        let _ = try_keyword st "TRANSACTION" || try_keyword st "WORK" in
        Begin
    | Lexer.Keyword "START" ->
        advance st;
        eat_keyword st "TRANSACTION";
        Begin
    | Lexer.Keyword "COMMIT" ->
        advance st;
        let _ = try_keyword st "TRANSACTION" || try_keyword st "WORK" in
        Commit
    | Lexer.Keyword "ROLLBACK" ->
        advance st;
        let _ = try_keyword st "TRANSACTION" || try_keyword st "WORK" in
        Rollback
    | Lexer.Keyword "ABORT" ->
        advance st;
        Rollback
    | _ -> fail st "expected a statement"
  in
  let _ = try_punct st ";" in
  (match peek st with
  | Lexer.Eof -> ()
  | _ -> fail st "trailing input after statement");
  s

(** [parse sql] parses one statement; raises {!Parse_error} or
    {!Lexer.Lex_error} on malformed input. *)
let parse sql =
  let toks = Array.of_list (Lexer.tokenize sql) in
  statement { toks; pos = 0 }

(** [parse_expr s] parses a standalone expression (used in tests). *)
let parse_expr s =
  let toks = Array.of_list (Lexer.tokenize s) in
  let st = { toks; pos = 0 } in
  let e = expr st in
  (match peek st with
  | Lexer.Eof -> ()
  | _ -> fail st "trailing input after expression");
  e
