(* Selectivity and cardinality estimation.

   Classic System-R style: histograms and NDV where available, fixed
   magic fractions where not.  The estimator consumes bound expressions and
   a per-column stats lookup so the optimizer can use it both on base
   tables and (with [None] entries) on intermediate results. *)

module Value = Quill_storage.Value
module Bexpr = Quill_plan.Bexpr

let default_eq = 0.05
let default_range = 1.0 /. 3.0
let default_like = 0.1
let default_pred = 1.0 /. 3.0

type lookup = int -> Table_stats.col_stats option

let clamp s = Float.max 0.0 (Float.min 1.0 s)

(* A bound parameter with a known value is as good as a literal for
   estimation purposes ("parameter peeking"): resolving it here is what
   makes plans parameter-sensitive, which the plan cache's selectivity
   bands then account for. *)
let literal_of ?(params = [||]) (e : Bexpr.t) =
  match e.Bexpr.node with
  | Bexpr.Lit v when not (Value.is_null v) -> Some v
  | Bexpr.Param i
    when i >= 0 && i < Array.length params && not (Value.is_null params.(i)) ->
      Some params.(i)
  | _ -> None

let is_param (e : Bexpr.t) =
  match e.Bexpr.node with Bexpr.Param _ -> true | _ -> false

let col_of (e : Bexpr.t) =
  match e.Bexpr.node with Bexpr.Col i -> Some i | _ -> None

let ndv_of (lookup : lookup) i =
  match lookup i with Some s when s.Table_stats.ndv > 0.0 -> Some s.Table_stats.ndv | _ -> None

let eq_selectivity lookup i =
  match ndv_of lookup i with Some ndv -> 1.0 /. ndv | None -> default_eq

let range_selectivity lookup i op v =
  match lookup i with
  | Some { Table_stats.histogram = Some h; _ } -> (
      let x = Value.to_float v in
      match op with
      | Bexpr.Lt -> Histogram.selectivity_lt h x
      | Bexpr.Le -> Histogram.selectivity_le h x
      | Bexpr.Gt -> 1.0 -. Histogram.selectivity_le h x
      | Bexpr.Ge -> 1.0 -. Histogram.selectivity_lt h x
      | _ -> default_range)
  | _ -> default_range

(** [selectivity ?params lookup e] estimates the fraction of input rows
    for which predicate [e] is true.  When [params] carries the bound
    parameter values of the current execution, [Param] references are
    peeked and estimated like literals. *)
let rec selectivity ?(params = [||]) lookup (e : Bexpr.t) =
  match e.Bexpr.node with
  | Bexpr.Lit (Value.Bool true) -> 1.0
  | Bexpr.Lit (Value.Bool false) | Bexpr.Lit Value.Null -> 0.0
  | Bexpr.And (a, b) ->
      clamp (selectivity ~params lookup a *. selectivity ~params lookup b)
  | Bexpr.Or (a, b) ->
      let sa = selectivity ~params lookup a
      and sb = selectivity ~params lookup b in
      clamp (sa +. sb -. (sa *. sb))
  | Bexpr.Not a -> clamp (1.0 -. selectivity ~params lookup a)
  | Bexpr.Cmp (op, a, b) -> cmp_selectivity ~params lookup op a b
  | Bexpr.Like (_, pattern) ->
      (* A leading literal prefix narrows more than an unanchored pattern. *)
      if String.length pattern > 0 && pattern.[0] <> '%' && pattern.[0] <> '_' then
        clamp (default_like /. 2.0)
      else default_like
  | Bexpr.In_list (a, items) -> (
      match col_of a with
      | Some i ->
          clamp (Float.of_int (List.length items) *. eq_selectivity lookup i)
      | None -> clamp (Float.of_int (List.length items) *. default_eq))
  | Bexpr.Is_null (negated, a) -> (
      let base =
        match col_of a with
        | Some i -> (
            match lookup i with
            | Some s when s.Table_stats.count > 0 ->
                Float.of_int s.Table_stats.nulls /. Float.of_int s.Table_stats.count
            | _ -> 0.05)
        | None -> 0.05
      in
      clamp (if negated then 1.0 -. base else base))
  | _ -> default_pred

and cmp_selectivity ?(params = [||]) lookup op a b =
  (* Normalize to col OP rhs. *)
  let flip = function
    | Bexpr.Lt -> Bexpr.Gt | Bexpr.Le -> Bexpr.Ge
    | Bexpr.Gt -> Bexpr.Lt | Bexpr.Ge -> Bexpr.Le
    | o -> o
  in
  let col, rhs, op =
    match (col_of a, col_of b) with
    | Some _, Some _ -> (col_of a, None, op)  (* col-col handled below *)
    | Some _, None -> (col_of a, Some b, op)
    | None, Some _ -> (col_of b, Some a, flip op)
    | None, None -> (None, None, op)
  in
  match (col, rhs) with
  | Some i, Some r -> (
      match (op, literal_of ~params r) with
      | Bexpr.Eq, Some _ -> clamp (eq_selectivity lookup i)
      | Bexpr.Eq, None when is_param r -> clamp (eq_selectivity lookup i)
      | Bexpr.Neq, Some _ -> clamp (1.0 -. eq_selectivity lookup i)
      | (Bexpr.Lt | Bexpr.Le | Bexpr.Gt | Bexpr.Ge), Some v ->
          clamp (range_selectivity lookup i op v)
      | _ -> default_range)
  | Some i, None -> (
      (* col OP col within one input (e.g. post-join filter). *)
      match (op, col_of b) with
      | Bexpr.Eq, Some j ->
          let n1 = Option.value ~default:(1.0 /. default_eq) (ndv_of lookup i) in
          let n2 = Option.value ~default:(1.0 /. default_eq) (ndv_of lookup j) in
          clamp (1.0 /. Float.max n1 n2)
      | _ -> default_range)
  | None, _ -> default_pred

(** [join_selectivity ~left ~right pairs] estimates the selectivity of an
    equi-join with the given (left column, right column) key pairs, as
    product over pairs of 1/max(ndv_l, ndv_r). *)
let join_selectivity ~(left : lookup) ~(right : lookup) pairs =
  List.fold_left
    (fun acc (li, ri) ->
      let nl = Option.value ~default:(1.0 /. default_eq) (ndv_of left li) in
      let nr = Option.value ~default:(1.0 /. default_eq) (ndv_of right ri) in
      acc /. Float.max 1.0 (Float.max nl nr))
    1.0 pairs
