(* The catalog maps table names to tables.

   Deliberately minimal: statistics are owned by the stats subsystem (keyed
   by table name and version) so that storage stays free of upward
   dependencies.  Each mutation bumps [version], which lets caches — plans,
   statistics — detect staleness. *)

type t = { tables : (string, Table.t) Hashtbl.t; mutable version : int }

(** [create ()] returns an empty catalog. *)
let create () = { tables = Hashtbl.create 16; version = 0 }

(** [version c] increases whenever the set of tables changes. *)
let version c = c.version

(** [bump c] signals a data change (e.g. inserts) to cache invalidation. *)
let bump c = c.version <- c.version + 1

(** [add c table] registers [table]; raises if the name is taken. *)
let add c table =
  let name = Table.name table in
  if Hashtbl.mem c.tables name then
    invalid_arg (Printf.sprintf "Catalog.add: table %S already exists" name);
  Hashtbl.add c.tables name table;
  bump c

(** [drop c name] removes a table; raises if absent. *)
let drop c name =
  if not (Hashtbl.mem c.tables name) then
    invalid_arg (Printf.sprintf "Catalog.drop: no table %S" name);
  Hashtbl.remove c.tables name;
  bump c

(** [put c table] binds [table] under its name, replacing any existing
    binding (used by MVCC sessions to swap a table version into a view). *)
let put c table =
  Hashtbl.replace c.tables (Table.name table) table;
  bump c

(** [reset c tables] replaces the whole catalog contents with [tables]
    in one step (one version bump) — how an MVCC session re-points its
    view at a fresh committed snapshot. *)
let reset c tables =
  Hashtbl.reset c.tables;
  List.iter (fun t -> Hashtbl.replace c.tables (Table.name t) t) tables;
  bump c

(** [find c name] looks a table up. *)
let find c name = Hashtbl.find_opt c.tables name

(** [find_exn c name] is [find] raising [Invalid_argument] when absent. *)
let find_exn c name =
  match find c name with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Catalog: no table %S" name)

(** [names c] lists registered table names, sorted. *)
let names c =
  Hashtbl.fold (fun k _ acc -> k :: acc) c.tables [] |> List.sort compare
