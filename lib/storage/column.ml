(* Typed, null-aware columns.

   A column stores its payload in an unboxed array of the native
   representation plus a validity bitset (bit set = value present).  The
   typed accessors ([ints], [floats], ...) expose the raw arrays to the
   vectorized and compiled engines, which is where the columnar layout's
   speed comes from. *)

module Bitset = Quill_util.Bitset

type t =
  | Ints of int array * Bitset.t
  | Floats of float array * Bitset.t
  | Strs of string array * Bitset.t
  | Dict of int array * string array * Bitset.t
      (** dictionary-encoded strings: codes index into the sorted
          dictionary, so code order equals string order *)
  | Bools of bool array * Bitset.t
  | Dates of int array * Bitset.t

(** Dictionary-encode string columns whose NDV is at most this (and at
    most half the rows); toggled off for the E16 ablation. *)
let enable_dict = ref true

let dict_max_entries = 4096

(** [length c] is the number of slots (valid or null). *)
let length = function
  | Ints (a, _) | Dates (a, _) | Dict (a, _, _) -> Array.length a
  | Floats (a, _) -> Array.length a
  | Strs (a, _) -> Array.length a
  | Bools (a, _) -> Array.length a

(** [dtype c] is the column's element type. *)
let dtype = function
  | Ints _ -> Value.Int_t
  | Floats _ -> Value.Float_t
  | Strs _ | Dict _ -> Value.Str_t
  | Bools _ -> Value.Bool_t
  | Dates _ -> Value.Date_t

(** [validity c] is the shared validity bitset. *)
let validity = function
  | Ints (_, v) | Dates (_, v) | Dict (_, _, v) -> v
  | Floats (_, v) -> v
  | Strs (_, v) -> v
  | Bools (_, v) -> v

(** [is_null c i] tests slot [i] for NULL. *)
let is_null c i = not (Bitset.get (validity c) i)

(** [get c i] reads slot [i] as a boxed {!Value.t}. *)
let get c i =
  if is_null c i then Value.Null
  else
    match c with
    | Ints (a, _) -> Value.Int a.(i)
    | Floats (a, _) -> Value.Float a.(i)
    | Strs (a, _) -> Value.Str a.(i)
    | Dict (codes, dict, _) -> Value.Str dict.(codes.(i))
    | Bools (a, _) -> Value.Bool a.(i)
    | Dates (a, _) -> Value.Date a.(i)

(** [ints c] exposes the raw int payload; raises on other types. *)
let ints = function
  | Ints (a, _) | Dates (a, _) -> a
  | c -> invalid_arg ("Column.ints: column is " ^ Value.dtype_name (dtype c))

(** [floats c] exposes the raw float payload; raises on other types. *)
let floats = function
  | Floats (a, _) -> a
  | c -> invalid_arg ("Column.floats: column is " ^ Value.dtype_name (dtype c))

(* Memoized dictionary decodes for [strs]: keyed by the physical identity
   of the codes array (columns are immutable once built, so identity is a
   sound cache key), held weakly so dropped columns don't pin their
   decoded copies.  A mutex guards the table because pool workers may
   decode concurrently. *)
module Decode_cache = Ephemeron.K1.Make (struct
  type t = int array

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let decode_cache : string array Decode_cache.t = Decode_cache.create 16
let decode_mutex = Mutex.create ()

(** [strs c] exposes the raw string payload, decoding a dictionary column
    if needed; the decode is computed once per column and memoized, so
    repeated calls are O(1).  Raises on non-string types. *)
let strs = function
  | Strs (a, _) -> a
  | Dict (codes, dict, _) ->
      Mutex.protect decode_mutex (fun () ->
          match Decode_cache.find_opt decode_cache codes with
          | Some decoded -> decoded
          | None ->
              let decoded = Array.map (fun code -> dict.(code)) codes in
              Decode_cache.add decode_cache codes decoded;
              decoded)
  | c -> invalid_arg ("Column.strs: column is " ^ Value.dtype_name (dtype c))

(** [dict_parts c] exposes (codes, sorted dictionary) of a dict-encoded
    column, or [None]. *)
let dict_parts = function
  | Dict (codes, dict, _) -> Some (codes, dict)
  | _ -> None

(** [bools c] exposes the raw bool payload; raises on other types. *)
let bools = function
  | Bools (a, _) -> a
  | c -> invalid_arg ("Column.bools: column is " ^ Value.dtype_name (dtype c))

(** [of_values dtype vs] packs boxed values into a typed column; a value of
    the wrong type raises [Invalid_argument]. *)
let of_values dtype vs =
  let n = Array.length vs in
  let validity = Bitset.create n in
  let fill set =
    Array.iteri
      (fun i v ->
        match v with
        | Value.Null -> ()
        | v ->
            Bitset.set validity i;
            set i v)
      vs
  in
  match dtype with
  | Value.Int_t ->
      let a = Array.make n 0 in
      fill (fun i -> function
        | Value.Int x -> a.(i) <- x
        | v -> invalid_arg ("Column.of_values: expected INT, got " ^ Value.to_string v));
      Ints (a, validity)
  | Value.Float_t ->
      let a = Array.make n 0.0 in
      fill (fun i -> function
        | Value.Float x -> a.(i) <- x
        | Value.Int x -> a.(i) <- Float.of_int x
        | v -> invalid_arg ("Column.of_values: expected FLOAT, got " ^ Value.to_string v));
      Floats (a, validity)
  | Value.Str_t ->
      let a = Array.make n "" in
      fill (fun i -> function
        | Value.Str x -> a.(i) <- x
        | v -> invalid_arg ("Column.of_values: expected TEXT, got " ^ Value.to_string v));
      (* Dictionary-encode when the distinct count is small: code
         comparisons replace string comparisons and the strings are stored
         once. *)
      if not !enable_dict then Strs (a, validity)
      else begin
        let distinct = Hashtbl.create 64 in
        let small = ref true in
        Array.iter
          (fun s ->
            if !small && not (Hashtbl.mem distinct s) then begin
              Hashtbl.add distinct s ();
              if Hashtbl.length distinct > min dict_max_entries (max 16 (n / 2)) then
                small := false
            end)
          a;
        if not !small then Strs (a, validity)
        else begin
          let dict = Array.of_seq (Hashtbl.to_seq_keys distinct) in
          Array.sort compare dict;
          let code_of = Hashtbl.create (Array.length dict) in
          Array.iteri (fun c s -> Hashtbl.replace code_of s c) dict;
          Dict (Array.map (fun s -> Hashtbl.find code_of s) a, dict, validity)
        end
      end
  | Value.Bool_t ->
      let a = Array.make n false in
      fill (fun i -> function
        | Value.Bool x -> a.(i) <- x
        | v -> invalid_arg ("Column.of_values: expected BOOL, got " ^ Value.to_string v));
      Bools (a, validity)
  | Value.Date_t ->
      let a = Array.make n 0 in
      fill (fun i -> function
        | Value.Date x -> a.(i) <- x
        | v -> invalid_arg ("Column.of_values: expected DATE, got " ^ Value.to_string v));
      Dates (a, validity)

(** [gather c idx] builds a new column containing [c.(idx.(k))] for each
    [k]; used to materialize filtered or joined intermediates. *)
let gather c idx =
  let n = Array.length idx in
  let ok = Bitset.create n in
  let src_valid = validity c in
  Array.iteri (fun k i -> if Bitset.get src_valid i then Bitset.set ok k) idx;
  match c with
  | Ints (a, _) -> Ints (Array.map (fun i -> a.(i)) idx, ok)
  | Dates (a, _) -> Dates (Array.map (fun i -> a.(i)) idx, ok)
  | Floats (a, _) -> Floats (Array.map (fun i -> a.(i)) idx, ok)
  | Strs (a, _) -> Strs (Array.map (fun i -> a.(i)) idx, ok)
  | Dict (codes, dict, _) -> Dict (Array.map (fun i -> codes.(i)) idx, dict, ok)
  | Bools (a, _) -> Bools (Array.map (fun i -> a.(i)) idx, ok)

(** [to_values c] unpacks the whole column into boxed values. *)
let to_values c = Array.init (length c) (get c)
