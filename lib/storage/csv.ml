(* RFC-4180-ish CSV reading and writing.

   Supports quoted fields with embedded commas, quotes ("" escaping) and
   newlines.  [load] parses a file against a known schema; empty fields
   become NULL. *)

(** [parse_string s] splits CSV text into rows of raw string fields. *)
let parse_string s =
  let rows = ref [] and row = ref [] and buf = Buffer.create 64 in
  let n = String.length s in
  (* A quoted empty field ([""]) leaves the buffer empty, so the EOF flush
     below cannot key on buffer contents alone; [field_started] remembers
     that quotes opened a field on the current line. *)
  let field_started = ref false in
  let flush_field () =
    row := Buffer.contents buf :: !row;
    Buffer.clear buf;
    field_started := false
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !row :: !rows;
    row := []
  in
  let i = ref 0 in
  let in_quotes = ref false in
  while !i < n do
    let c = s.[!i] in
    if !in_quotes then begin
      if c = '"' then
        if !i + 1 < n && s.[!i + 1] = '"' then begin
          Buffer.add_char buf '"';
          incr i
        end
        else in_quotes := false
      else Buffer.add_char buf c
    end
    else begin
      match c with
      | '"' ->
          in_quotes := true;
          field_started := true
      | ',' -> flush_field ()
      | '\n' -> flush_row ()
      | '\r' -> ()
      | c ->
          field_started := true;
          Buffer.add_char buf c
    end;
    incr i
  done;
  if Buffer.length buf > 0 || !row <> [] || !field_started then flush_row ();
  List.rev !rows

let escape_field f =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') f then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' f) ^ "\""
  else f

(** [write_string ~header rows] renders rows (of string fields) as CSV. *)
let write_string ~header rows =
  let buf = Buffer.create 1024 in
  let line fields =
    Buffer.add_string buf (String.concat "," (List.map escape_field fields));
    Buffer.add_char buf '\n'
  in
  line header;
  List.iter line rows;
  Buffer.contents buf

(** [rows_of_string ~schema ?has_header s] parses CSV text into typed rows
    according to [schema]; raises [Failure] with row/column context on
    malformed values. *)
let rows_of_string ~schema ?(has_header = true) s =
  let raw = parse_string s in
  let raw = if has_header && raw <> [] then List.tl raw else raw in
  List.mapi
    (fun rowno fields ->
      if List.length fields <> Schema.arity schema then
        failwith
          (Printf.sprintf "CSV row %d: %d fields, expected %d" (rowno + 1)
             (List.length fields) (Schema.arity schema));
      Array.of_list
        (List.mapi
           (fun colno field ->
             let c = Schema.column schema colno in
             match Value.parse c.Schema.dtype field with
             | Some v -> v
             | None ->
                 failwith
                   (Printf.sprintf "CSV row %d, column %s: cannot parse %S as %s"
                      (rowno + 1) c.Schema.name field
                      (Value.dtype_name c.Schema.dtype)))
           fields))
    raw

(** [load ~name ~schema path] reads a CSV file into a fresh table. *)
let load ~name ~schema path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  Table.of_rows ~name schema (rows_of_string ~schema s)

(** [save table path] writes a table out as CSV with a header line. *)
let save table path =
  let header = List.map (fun c -> c.Schema.name) (Schema.columns (Table.schema table)) in
  let rows =
    List.map
      (fun row -> Array.to_list (Array.map (fun v -> if Value.is_null v then "" else Value.to_string v) row))
      (Table.to_row_list table)
  in
  let oc = open_out_bin path in
  output_string oc (write_string ~header rows);
  close_out oc
