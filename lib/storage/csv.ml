(* RFC-4180-ish CSV reading and writing.

   Supports quoted fields with embedded commas, quotes ("" escaping) and
   newlines.  [load] parses a file against a known schema; *bare* empty
   fields become NULL, while a quoted empty field ([""]) is the empty
   string — the distinction [save]/[to_string] writes, so NULL vs ''
   survives a round trip (the WAL crash-recovery fuzz caught exactly
   this divergence). *)

(** [parse_string_marked s] splits CSV text into rows of
    [(field, was_quoted)] pairs, keeping whether quotes ever opened the
    field so typed readers can tell a bare empty field (NULL) from a
    quoted empty string. *)
let parse_string_marked s =
  let rows = ref [] and row = ref [] and buf = Buffer.create 64 in
  let n = String.length s in
  (* A quoted empty field ([""]) leaves the buffer empty, so the EOF flush
     below cannot key on buffer contents alone; [field_started] remembers
     that quotes opened a field on the current line. *)
  let field_started = ref false in
  let field_quoted = ref false in
  let flush_field () =
    row := (Buffer.contents buf, !field_quoted) :: !row;
    Buffer.clear buf;
    field_started := false;
    field_quoted := false
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !row :: !rows;
    row := []
  in
  let i = ref 0 in
  let in_quotes = ref false in
  while !i < n do
    let c = s.[!i] in
    if !in_quotes then begin
      if c = '"' then
        if !i + 1 < n && s.[!i + 1] = '"' then begin
          Buffer.add_char buf '"';
          incr i
        end
        else in_quotes := false
      else Buffer.add_char buf c
    end
    else begin
      match c with
      | '"' ->
          in_quotes := true;
          field_started := true;
          field_quoted := true
      | ',' -> flush_field ()
      | '\n' -> flush_row ()
      | '\r' -> ()
      | c ->
          field_started := true;
          Buffer.add_char buf c
    end;
    incr i
  done;
  if Buffer.length buf > 0 || !row <> [] || !field_started then flush_row ();
  List.rev !rows

(** [parse_string s] splits CSV text into rows of raw string fields. *)
let parse_string s = List.map (List.map fst) (parse_string_marked s)

let escape_field f =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') f then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' f) ^ "\""
  else f

(** [write_string ~header rows] renders rows (of string fields) as CSV. *)
let write_string ~header rows =
  let buf = Buffer.create 1024 in
  let line fields =
    Buffer.add_string buf (String.concat "," (List.map escape_field fields));
    Buffer.add_char buf '\n'
  in
  line header;
  List.iter line rows;
  Buffer.contents buf

(* Parse one marked field against schema column [colno]; [rowno] is the
   1-based row number used in error messages. *)
let typed_field ~where ~rowno schema colno (field, quoted) =
  let c = Schema.column schema colno in
  let parsed =
    (* a *quoted* empty field is the empty string, not NULL *)
    if field = "" && quoted && c.Schema.dtype = Value.Str_t then
      Some (Value.Str "")
    else Value.parse c.Schema.dtype field
  in
  match parsed with
  | Some v -> v
  | None ->
      failwith
        (Printf.sprintf "%s row %d, column %s: cannot parse %S as %s" where
           rowno c.Schema.name field
           (Value.dtype_name c.Schema.dtype))

(** [rows_of_string ~schema ?src ?has_header s] parses CSV text into typed
    rows according to [schema]; raises [Failure] with row/column context —
    and the source file or table named by [src] — on malformed values.
    Row numbers are 1-based data-row numbers (the header, when present,
    is row 0). *)
let rows_of_string ~schema ?src ?(has_header = true) s =
  let where = match src with None -> "CSV" | Some src -> Printf.sprintf "CSV %s" src in
  let raw = parse_string_marked s in
  let raw = if has_header && raw <> [] then List.tl raw else raw in
  List.mapi
    (fun rowno fields ->
      if List.length fields <> Schema.arity schema then
        failwith
          (Printf.sprintf "%s row %d: %d fields, expected %d" where (rowno + 1)
             (List.length fields) (Schema.arity schema));
      Array.of_list
        (List.mapi
           (fun colno field -> typed_field ~where ~rowno:(rowno + 1) schema colno field)
           fields))
    raw

(** [load ~name ~schema path] reads a CSV file into a fresh table; parse
    failures name [path] in the error. *)
let load ~name ~schema path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  Table.of_rows ~name schema (rows_of_string ~schema ~src:path s)

(* Render one value as a CSV field: NULL becomes a bare empty field, an
   empty string a quoted one ([""]), so the two stay distinguishable on
   reload. *)
let render_field v =
  if Value.is_null v then ""
  else match Value.to_string v with "" -> "\"\"" | s -> escape_field s

(** [to_string table] renders a whole table as CSV text with a header
    line.  NULL becomes a bare empty field; an empty string becomes a
    quoted one ([""]) so the two stay distinguishable on reload. *)
let to_string table =
  let header = List.map (fun c -> c.Schema.name) (Schema.columns (Table.schema table)) in
  let field = render_field in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," (List.map escape_field header));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat "," (Array.to_list (Array.map field row)));
      Buffer.add_char buf '\n')
    (Table.to_row_list table);
  Buffer.contents buf

(** [save table path] writes a table out as CSV with a header line. *)
let save table path =
  let oc = open_out_bin path in
  output_string oc (to_string table);
  close_out oc

(* --- Physical WAL patches ----------------------------------------------- *)

(* A patch serializes a transaction's write footprint on one table as
   data instead of SQL: CSV rows (same field conventions as snapshots)
   whose first field is the target — a base-row index to overwrite, or
   "+" to append.  The WAL logs one for each table of a commit whose
   install merges onto a concurrently-advanced version: re-executing the
   SQL against the merged state could touch rows the footprint proves
   this transaction never wrote (e.g. a row a concurrent committer
   appended), so recovery must apply the row images, not the
   predicates. *)

(** [patch_of_table ours tr] serializes tracked clone [ours]'s write
    footprint — every row of its touched base chunks plus its appended
    tail — exactly the splice {!Table.merge} installs. *)
let patch_of_table ours (tr : Table.tracker) =
  let buf = Buffer.create 256 in
  let emit target row =
    Buffer.add_string buf target;
    Array.iter
      (fun v ->
        Buffer.add_char buf ',';
        Buffer.add_string buf (render_field v))
      row;
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun c ->
      let lo = c * tr.Table.chunk_rows in
      let hi = min tr.Table.base_rows ((c + 1) * tr.Table.chunk_rows) in
      for i = lo to hi - 1 do
        emit (string_of_int i) (Table.get_row ours i)
      done)
    (Table.touched_chunks tr);
  for i = tr.Table.base_rows to Table.row_count ours - 1 do
    emit "+" (Table.get_row ours i)
  done;
  Buffer.contents buf

(** [apply_patch table s] applies a serialized row-image patch to
    [table] in place — the recovery replay of a merged commit.  Raises
    [Failure] with row/column context on malformed input. *)
let apply_patch table s =
  let schema = Table.schema table in
  let where = Printf.sprintf "patch for table %s" (Table.name table) in
  List.iteri
    (fun rowno fields ->
      match fields with
      | [] -> ()
      | (target, _) :: values ->
          if List.length values <> Schema.arity schema then
            failwith
              (Printf.sprintf "%s row %d: %d fields, expected %d" where
                 (rowno + 1) (List.length values) (Schema.arity schema));
          let row =
            Array.of_list
              (List.mapi
                 (fun colno f -> typed_field ~where ~rowno:(rowno + 1) schema colno f)
                 values)
          in
          if target = "+" then Table.insert table row
          else
            match int_of_string_opt target with
            | Some i when i >= 0 && i < Table.row_count table ->
                Table.set_row table i row
            | _ ->
                failwith
                  (Printf.sprintf "%s row %d: bad row target %S" where
                     (rowno + 1) target))
    (parse_string_marked s)
