(* Secondary indexes over a single column.

   Two flavours, matching the two probe patterns the picker chooses
   between: a hash index for equality lookups and an ordered index (sorted
   (key, rowid) pairs with binary search) for range scans.  NULL keys are
   not indexed, mirroring standard SQL index semantics. *)

module Hash_index = struct
  type t = { buckets : (Value.t, int list) Hashtbl.t }

  (** [build table col] indexes column [col] of [table]. *)
  let build table col =
    let buckets = Hashtbl.create (max 16 (Table.row_count table)) in
    for i = 0 to Table.row_count table - 1 do
      let v = Table.get table i col in
      if not (Value.is_null v) then
        Hashtbl.replace buckets v (i :: (Option.value ~default:[] (Hashtbl.find_opt buckets v)))
    done;
    { buckets }

    (** [lookup t v] returns rowids whose key equals [v] (empty for NULL). *)
  let lookup t v =
    if Value.is_null v then [] else Option.value ~default:[] (Hashtbl.find_opt t.buckets v)

  (** [distinct_keys t] is the number of distinct indexed keys. *)
  let distinct_keys t = Hashtbl.length t.buckets
end

module Ordered_index = struct
  type t = { keys : Value.t array; rowids : int array }

  (** [build table col] builds a sorted index over column [col]. *)
  let build table col =
    let pairs = ref [] in
    for i = Table.row_count table - 1 downto 0 do
      let v = Table.get table i col in
      if not (Value.is_null v) then pairs := (v, i) :: !pairs
    done;
    let arr = Array.of_list !pairs in
    Array.sort (fun (a, i) (b, j) ->
        let c = Value.compare a b in
        if c <> 0 then c else Stdlib.compare i j)
      arr;
    { keys = Array.map fst arr; rowids = Array.map snd arr }

  (* First position whose key is >= v (lower bound). *)
  let lower_bound t v =
    let lo = ref 0 and hi = ref (Array.length t.keys) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Value.compare t.keys.(mid) v < 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  (* First position whose key is > v (upper bound). *)
  let upper_bound t v =
    let lo = ref 0 and hi = ref (Array.length t.keys) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Value.compare t.keys.(mid) v <= 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  (** [range t ?lo ?hi ()] returns rowids with keys in the given bounds;
    each bound is [(value, inclusive)]. Unbounded sides scan to the end. *)
  let range t ?lo ?hi () =
    let start =
      match lo with
      | None -> 0
      | Some (v, true) -> lower_bound t v
      | Some (v, false) -> upper_bound t v
    in
    let stop =
      match hi with
      | None -> Array.length t.keys
      | Some (v, true) -> upper_bound t v
      | Some (v, false) -> lower_bound t v
    in
    Array.to_list (Array.sub t.rowids start (max 0 (stop - start)))

  (** [lookup t v] returns rowids whose key equals [v]. *)
  let lookup t v = range t ~lo:(v, true) ~hi:(v, true) ()

  (** [size t] is the number of indexed entries. *)
  let size t = Array.length t.keys
end

(** Declared secondary indexes, built lazily and invalidated by catalog
    version bumps (DML). *)
module Registry = struct
  type entry = { index : Ordered_index.t; version : int }

  type t = {
    defs : (string, string list) Hashtbl.t;  (** table -> indexed columns *)
    cache : (string * string, entry) Hashtbl.t;
  }

  let create () = { defs = Hashtbl.create 8; cache = Hashtbl.create 8 }

  (** [declare t ~table ~col] registers an index definition. *)
  let declare t ~table ~col =
    let existing = Option.value ~default:[] (Hashtbl.find_opt t.defs table) in
    if not (List.mem col existing) then Hashtbl.replace t.defs table (col :: existing)

  (** [declared t table] lists indexed column names of [table]. *)
  let declared t table = Option.value ~default:[] (Hashtbl.find_opt t.defs table)

  (** [all_defs t] lists every declared index as [(table, col)] pairs. *)
  let all_defs t =
    Hashtbl.fold
      (fun table cols acc -> List.fold_left (fun acc col -> (table, col) :: acc) acc cols)
      t.defs []
    |> List.sort compare

  (** [reset_defs t defs] replaces all declarations with [defs] (built
      indexes are dropped; they rebuild lazily) — used when an MVCC view
      re-syncs to a committed snapshot. *)
  let reset_defs t defs =
    Hashtbl.reset t.defs;
    Hashtbl.reset t.cache;
    List.iter (fun (table, col) -> declare t ~table ~col) defs

  (** [drop_table t table] forgets all indexes of [table]. *)
  let drop_table t table =
    List.iter (fun col -> Hashtbl.remove t.cache (table, col)) (declared t table);
    Hashtbl.remove t.defs table

  (** [get t catalog ~table ~col] returns the (lazily built, version
      checked) ordered index, or [None] when not declared. *)
  let get t catalog ~table ~col =
    if not (List.mem col (declared t table)) then None
    else begin
      let version = Catalog.version catalog in
      match Hashtbl.find_opt t.cache (table, col) with
      | Some e when e.version = version -> Some e.index
      | _ ->
          let tbl = Catalog.find_exn catalog table in
          let pos = Schema.find_exn (Table.schema tbl) col in
          let index = Ordered_index.build tbl pos in
          Hashtbl.replace t.cache (table, col) { index; version };
          Some index
    end
end
