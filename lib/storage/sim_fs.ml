(* Fault-injectable file I/O.

   Every byte the durability subsystem (WAL appends, snapshot writes,
   CURRENT flips) puts on disk goes through this layer, which by default
   passes straight through to [Unix] with no buffering: a completed
   [write] is in the OS, exactly like a real storage engine's pwrite.

   Tests arm deterministic faults:

   - a byte budget ({!crash_after_bytes}): the write that would exceed it
     persists only the prefix that fits and then raises {!Crash} — a torn
     or short write, depending on where the budget lands;
   - an op budget ({!crash_after_ops}): the k-th mutating operation
     (write, fsync, rename, create, remove) raises {!Crash} before doing
     anything — a power cut between operations, e.g. between a WAL append
     and the CURRENT-pointer flip of a checkpoint;
   - {!fail_fsync}: fsync raises {!Io_error} instead of syncing — a disk
     reporting failure without the machine dying (the fsyncgate mode).

   After {!Crash} fires the simulated machine is off: every subsequent
   mutating call raises {!Crash} again (closing a file stays allowed so
   finalizers can run) until {!reset}, which models the reboot before
   recovery.  [bytes_written]/[ops_performed] counters let a fuzz harness
   run a workload once fault-free, then re-run it with a budget landing
   at any chosen point. *)

exception Crash of string
(** A simulated power cut.  Deliberately not an [Io_error]/[Sys_error]:
    nothing in the engine catches it, so it unwinds out of [Db] like the
    process dying would. *)

exception Io_error of string
(** A simulated I/O failure (currently: fsync).  The machine stays up;
    callers surface it as an ordinary storage error. *)

type state = {
  mutable write_budget : int option;  (* bytes left before a crash *)
  mutable op_budget : int option;  (* mutating ops left before a crash *)
  mutable fsync_fails : bool;
  mutable crashed : bool;
  mutable bytes_written : int;
  mutable ops_performed : int;
}

let st =
  {
    write_budget = None;
    op_budget = None;
    fsync_fails = false;
    crashed = false;
    bytes_written = 0;
    ops_performed = 0;
  }

(** [reset ()] clears every armed fault and the crashed flag ("reboot"),
    and zeroes the byte/op counters. *)
let reset () =
  st.write_budget <- None;
  st.op_budget <- None;
  st.fsync_fails <- false;
  st.crashed <- false;
  st.bytes_written <- 0;
  st.ops_performed <- 0

(** [crash_after_bytes n] arms a power cut once [n] more bytes have been
    written: the write crossing the boundary persists only its prefix. *)
let crash_after_bytes n = st.write_budget <- Some n

(** [crash_after_ops n] arms a power cut before the [n+1]-th mutating
    operation from now ([n = 0] crashes the very next one). *)
let crash_after_ops n = st.op_budget <- Some n

(** [fail_fsync b] makes every fsync raise {!Io_error} while [b]. *)
let fail_fsync b = st.fsync_fails <- b

(** [bytes_written ()] counts bytes persisted since the last {!reset}. *)
let bytes_written () = st.bytes_written

(** [ops_performed ()] counts mutating ops since the last {!reset}. *)
let ops_performed () = st.ops_performed

(** [crashed ()] is true between a {!Crash} and the next {!reset}. *)
let crashed () = st.crashed

let check_alive what = if st.crashed then raise (Crash ("machine is down: " ^ what))

(* Each mutating op passes here: dies if already crashed, burns one op
   from the budget, crashes when the budget hits zero. *)
let mutating what =
  check_alive what;
  (match st.op_budget with
  | Some 0 ->
      st.crashed <- true;
      raise (Crash ("power cut before " ^ what))
  | Some n -> st.op_budget <- Some (n - 1)
  | None -> ());
  st.ops_performed <- st.ops_performed + 1

type t = { fd : Unix.file_descr; path : string; mutable closed : bool }

(** [create path] opens [path] for writing, truncating any old content. *)
let create path =
  mutating ("create " ^ path);
  { fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644;
    path; closed = false }

(** [open_append path] opens [path] for appending, creating it empty if
    missing. *)
let open_append path =
  mutating ("open " ^ path);
  { fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644;
    path; closed = false }

let write_all fd s pos len =
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write_substring fd s (pos + !written) (len - !written)
  done

(** [write t s] appends the bytes of [s].  Under a byte budget the write
    may persist only a prefix and raise {!Crash} — a torn write. *)
let write t s =
  mutating ("write " ^ t.path);
  let len = String.length s in
  match st.write_budget with
  | Some budget when budget < len ->
      if budget > 0 then write_all t.fd s 0 budget;
      st.bytes_written <- st.bytes_written + budget;
      st.write_budget <- Some 0;
      st.crashed <- true;
      raise (Crash (Printf.sprintf "power cut %d bytes into a %d-byte write to %s" budget len t.path))
  | budget ->
      write_all t.fd s 0 len;
      st.bytes_written <- st.bytes_written + len;
      (match budget with
      | Some b -> st.write_budget <- Some (b - len)
      | None -> ())

(** [fsync t] forces written bytes to stable storage; raises {!Io_error}
    when fsync failure is armed. *)
let fsync t =
  mutating ("fsync " ^ t.path);
  if st.fsync_fails then raise (Io_error ("fsync failed (injected): " ^ t.path));
  Unix.fsync t.fd

(** [close t] closes the handle.  Always allowed — even after a crash —
    so [Fun.protect] finalizers in the engine never mask the {!Crash}. *)
let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(** [rename src dst] atomically replaces [dst] with [src] (POSIX rename
    semantics — the commit point of snapshot writes). *)
let rename src dst =
  mutating (Printf.sprintf "rename %s -> %s" src dst);
  Sys.rename src dst

(** [remove path] deletes a file (no-op when absent). *)
let remove path =
  mutating ("remove " ^ path);
  if Sys.file_exists path then Sys.remove path

(** [mkdir path] creates a directory (no-op when it already exists). *)
let mkdir path =
  mutating ("mkdir " ^ path);
  if not (Sys.file_exists path) then Unix.mkdir path 0o755

(** [fsync_dir path] fsyncs a directory so a preceding rename survives a
    power cut (Linux semantics); counts as a mutating op and honours the
    armed fsync failure. *)
let fsync_dir path =
  mutating ("fsync dir " ^ path);
  if st.fsync_fails then raise (Io_error ("fsync failed (injected): " ^ path));
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(** [write_file path contents] is create + write + fsync + close: the
    building block for snapshot files (callers rename afterwards). *)
let write_file path contents =
  let f = create path in
  Fun.protect
    ~finally:(fun () -> close f)
    (fun () ->
      write f contents;
      fsync f)

(** [read_file path] reads a whole file; [None] when it does not exist.
    Reads are never fault-injected — recovery reads what the "disk"
    holds. *)
let read_file path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  end
