(* Checksummed atomic snapshots and the generation protocol.

   A snapshot is a directory of files (the DDL manifest plus one CSV per
   table) written crash-safely: each file goes to [name.tmp], is fsynced,
   and is renamed into place; a [_checksums] manifest (CRC32 + size per
   file) is written last the same way, so a reader can detect any torn or
   bit-rotten file before trusting it.

   Durable databases keep *generations*: [snap-<n>/] pairs with the
   write-ahead log [wal-<n>], and a tiny [CURRENT] file names the live
   generation.  A checkpoint builds [snap-<n+1>.tmp/], creates an empty
   [wal-<n+1>], renames the snapshot directory into place and then
   atomically flips [CURRENT] — the single commit point.  A crash at any
   step leaves [CURRENT] pointing at a complete old generation whose WAL
   is untouched, so recovery never sees a half-checkpoint; orphaned
   newer generations are pruned on the next open. *)

exception Invalid of string
(** A snapshot failed verification (missing file, size or checksum
    mismatch, unreadable CURRENT).  Always catchable and names the file. *)

let checksums_file = "_checksums"

(** [write ~dir files] writes every [(name, contents)] into [dir]
    (created if needed) via tmp + fsync + rename, then the [_checksums]
    manifest the same way, then fsyncs the directory. *)
let write ~dir files =
  Sim_fs.mkdir dir;
  let sums = Buffer.create 256 in
  List.iter
    (fun (name, contents) ->
      let path = Filename.concat dir name in
      Sim_fs.write_file (path ^ ".tmp") contents;
      Sim_fs.rename (path ^ ".tmp") path;
      Buffer.add_string sums
        (Printf.sprintf "%08x %d %s\n"
           (Quill_util.Hashing.crc32 contents)
           (String.length contents) name))
    files;
  let spath = Filename.concat dir checksums_file in
  Sim_fs.write_file (spath ^ ".tmp") (Buffer.contents sums);
  Sim_fs.rename (spath ^ ".tmp") spath;
  Sim_fs.fsync_dir dir

(** [read_file ~dir name] reads a snapshot member; raises {!Invalid}
    naming the file when missing. *)
let read_file ~dir name =
  let path = Filename.concat dir name in
  match Sim_fs.read_file path with
  | Some s -> s
  | None -> raise (Invalid (Printf.sprintf "missing snapshot file %s" path))

(** [verify ~dir] checks every file listed in [_checksums] for presence,
    size and CRC32, raising {!Invalid} with the offending file.  A
    directory without [_checksums] (e.g. written by an older build)
    verifies vacuously. *)
let verify ~dir =
  match Sim_fs.read_file (Filename.concat dir checksums_file) with
  | None -> ()
  | Some manifest ->
      String.split_on_char '\n' manifest
      |> List.iter (fun line ->
             match String.split_on_char ' ' line with
             | [ crc_hex; size; name ] when line <> "" ->
                 let path = Filename.concat dir name in
                 let contents =
                   match Sim_fs.read_file path with
                   | Some s -> s
                   | None -> raise (Invalid (Printf.sprintf "missing snapshot file %s" path))
                 in
                 if String.length contents <> int_of_string size then
                   raise
                     (Invalid
                        (Printf.sprintf "size mismatch in %s (%d bytes, expected %s)" path
                           (String.length contents) size));
                 if Printf.sprintf "%08x" (Quill_util.Hashing.crc32 contents) <> crc_hex
                 then raise (Invalid (Printf.sprintf "checksum mismatch in %s" path))
             | _ -> ())

(* --- Generations ------------------------------------------------------- *)

let snap_dir root n = Filename.concat root (Printf.sprintf "snap-%d" n)
let wal_path root n = Filename.concat root (Printf.sprintf "wal-%d" n)

(** [current root] reads the live generation from [CURRENT]; [None] when
    the file is absent (a fresh or pre-durability directory); raises
    {!Invalid} when present but unreadable. *)
let current root =
  match Sim_fs.read_file (Filename.concat root "CURRENT") with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 0 -> Some n
      | _ ->
          raise
            (Invalid
               (Printf.sprintf "unreadable CURRENT in %s: %S" root (String.trim s))))

(** [set_current root n] atomically flips the live generation — the
    commit point of a checkpoint. *)
let set_current root n =
  let path = Filename.concat root "CURRENT" in
  Sim_fs.write_file (path ^ ".tmp") (string_of_int n ^ "\n");
  Sim_fs.rename (path ^ ".tmp") path;
  Sim_fs.fsync_dir root

(** [generations root] lists every generation number with a snapshot
    directory or WAL file present (committed or orphaned). *)
let generations root =
  if not (Sys.file_exists root) then []
  else
    Sys.readdir root |> Array.to_list
    |> List.filter_map (fun name ->
           let strip prefix =
             if String.length name > String.length prefix
                && String.sub name 0 (String.length prefix) = prefix
             then int_of_string_opt
                 (String.sub name (String.length prefix)
                    (String.length name - String.length prefix))
             else None
           in
           match strip "snap-" with Some n -> Some n | None -> strip "wal-")
    |> List.sort_uniq compare

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else Sim_fs.remove path

(** [prune root ~keep] best-effort deletes every generation except
    [keep] — superseded ones and orphans from interrupted checkpoints —
    plus stray [*.tmp] leftovers. *)
let prune root ~keep =
  List.iter
    (fun n ->
      if n <> keep then begin
        remove_tree (snap_dir root n);
        remove_tree (wal_path root n)
      end)
    (generations root);
  if Sys.file_exists root then
    Array.iter
      (fun name ->
        if Filename.check_suffix name ".tmp" then
          remove_tree (Filename.concat root name))
      (Sys.readdir root)
