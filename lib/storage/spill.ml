(* Spill-file manager: out-of-core runs for budget-pressured operators.

   When the governor's soft watermark fires, hash-join builds, group
   tables and sort buffers dump their state here as *runs*: append-only
   files of length-prefixed, CRC32-checked row batches (the WAL's frame
   convention, reusing {!Quill_util.Hashing.crc32}).  Every byte goes
   through {!Sim_fs}, so the crash/torn-write/fsync-failure faults the
   durability tests inject also cover spill I/O; reads verify each
   frame's checksum and raise {!Error} on any corruption, so a damaged
   spill can abort a query but never feed it wrong rows.

   Layout: one *session* per governed query, a directory
   [<root>/spill/q<n>] holding [run-<k>.spl] files.  The session is
   deleted when the query ends (normally, by abort, or by cancel); runs
   consumed mid-query are deleted eagerly.  Directories that survive a
   crash are garbage by construction — {!prune_orphans} removes the
   whole [<root>/spill] tree during recovery, mirroring snapshot
   generation pruning. *)

module Hashing = Quill_util.Hashing
module Metrics = Quill_obs.Metrics

exception Error of string
(** Corrupt or unreadable spill data (CRC mismatch, torn frame, missing
    file).  Surfaced to callers as a storage error, never as rows. *)

(* The accounting the acceptance criteria ask for: bytes and runs
   written, partition fan-outs performed and run merges executed. *)
let m_bytes = Metrics.counter "quill.spill.bytes"
let m_runs = Metrics.counter "quill.spill.runs"
let m_partitions = Metrics.counter "quill.spill.partitions"
let m_merges = Metrics.counter "quill.spill.merges"

(** [note_partitions k] records a Grace-join fan-out into [k] partitions. *)
let note_partitions k = Metrics.add m_partitions k

(** [note_merge ()] records one multi-run merge (external sort, spilled
    group tables, partition recursion). *)
let note_merge () = Metrics.incr m_merges

(* --- Row codec ---------------------------------------------------------- *)

let header = "QSPL1\n"

let put_u32 buf n =
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff))

let get_u32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let put_i64 buf n =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr ((n asr (8 * i)) land 0xff))
  done

let get_i64 s pos =
  let n = ref 0 in
  for i = 7 downto 0 do
    n := (!n lsl 8) lor Char.code s.[pos + i]
  done;
  !n

let encode_value buf (v : Value.t) =
  match v with
  | Value.Null -> Buffer.add_char buf 'N'
  | Value.Int i ->
      Buffer.add_char buf 'i';
      put_i64 buf i
  | Value.Float f ->
      Buffer.add_char buf 'f';
      (* All 64 float bits: squeezing them through a 63-bit OCaml int
         corrupts the sign/exponent boundary (any |f| >= 2.0). *)
      let bits = Int64.bits_of_float f in
      for i = 0 to 7 do
        Buffer.add_char buf
          (Char.chr
             (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
      done
  | Value.Str s ->
      Buffer.add_char buf 's';
      put_u32 buf (String.length s);
      Buffer.add_string buf s
  | Value.Bool b ->
      Buffer.add_char buf 'b';
      Buffer.add_char buf (if b then '\001' else '\000')
  | Value.Date d ->
      Buffer.add_char buf 'd';
      put_i64 buf d

let encode_row buf (row : Value.t array) =
  put_u32 buf (Array.length row);
  Array.iter (encode_value buf) row

let bad what = raise (Error ("spill: corrupt run: " ^ what))

let decode_value s pos =
  if !pos >= String.length s then bad "truncated value";
  let tag = s.[!pos] in
  incr pos;
  let need n = if !pos + n > String.length s then bad "truncated value" in
  match tag with
  | 'N' -> Value.Null
  | 'i' ->
      need 8;
      let v = Value.Int (get_i64 s !pos) in
      pos := !pos + 8;
      v
  | 'f' ->
      need 8;
      let bits = ref 0L in
      for i = 7 downto 0 do
        bits :=
          Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (Char.code s.[!pos + i]))
      done;
      let v = Value.Float (Int64.float_of_bits !bits) in
      pos := !pos + 8;
      v
  | 's' ->
      need 4;
      let len = get_u32 s !pos in
      pos := !pos + 4;
      need len;
      let v = Value.Str (String.sub s !pos len) in
      pos := !pos + len;
      v
  | 'b' ->
      need 1;
      let v = Value.Bool (s.[!pos] <> '\000') in
      incr pos;
      v
  | 'd' ->
      need 8;
      let v = Value.Date (get_i64 s !pos) in
      pos := !pos + 8;
      v
  | c -> bad (Printf.sprintf "unknown value tag %C" c)

let decode_rows payload =
  let pos = ref 0 in
  let out = ref [] in
  while !pos < String.length payload do
    if !pos + 4 > String.length payload then bad "truncated row header";
    let arity = get_u32 payload !pos in
    pos := !pos + 4;
    if arity < 0 || arity > 1 lsl 20 then bad "implausible row arity";
    let row = Array.init arity (fun _ -> decode_value payload pos) in
    out := row :: !out
  done;
  Array.of_list (List.rev !out)

(* --- Sessions ----------------------------------------------------------- *)

type t = {
  dir : string;  (** this query's spill directory *)
  mutable made : bool;  (** directory created on first run *)
  mutable next_run : int;
  mutable bytes : int;  (** total bytes written by this session *)
  mutable runs : int;  (** total runs written by this session *)
  mutable live : int;  (** run files not yet deleted *)
  lock : Mutex.t;  (** sessions are shared across pool domains *)
}

type run = { r_path : string; r_rows : int; r_bytes : int; mutable r_deleted : bool }

let run_rows r = r.r_rows
let run_bytes r = r.r_bytes

(** [spill_root root] is the directory all spill sessions of a data
    directory live under. *)
let spill_root root = Filename.concat root "spill"

let session_counter = Atomic.make 0

(** [default_root ()] is the per-process spill root for sessions with no
    durable data directory. *)
let default_root () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "quill-spill-%d" (Unix.getpid ()))

(** [fresh_session root] makes a session whose directory will be
    [<root>/spill/q<n>]; nothing touches the disk until the first run. *)
let fresh_session root =
  let n = Atomic.fetch_and_add session_counter 1 in
  {
    dir = Filename.concat (spill_root root) (Printf.sprintf "q%d" n);
    made = false;
    next_run = 0;
    bytes = 0;
    runs = 0;
    live = 0;
    lock = Mutex.create ();
  }

let dir t = t.dir
let bytes_spilled t = t.bytes
let runs_written t = t.runs
let live_runs t = t.live

(* Create the session dir (and any missing ancestors — the tmpdir-based
   default root starts from nothing) through Sim_fs, so a crash budget
   can land on the mkdir itself. *)
let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    let parent = Filename.dirname path in
    if parent <> path then mkdir_p parent;
    Sim_fs.mkdir path
  end

let ensure_dir t =
  if not t.made then begin
    mkdir_p t.dir;
    t.made <- true
  end

(* --- Run writers -------------------------------------------------------- *)

(* Frames batch rows so tiny spills don't pay a write syscall per row;
   64 KiB keeps the reader's working set bounded. *)
let frame_target = 64 * 1024

type writer = {
  w_session : t;
  w_path : string;
  w_file : Sim_fs.t;
  w_buf : Buffer.t;
  mutable w_rows : int;
  mutable w_bytes : int;
  mutable w_closed : bool;
}

let flush_frame w =
  if Buffer.length w.w_buf > 0 then begin
    let payload = Buffer.contents w.w_buf in
    Buffer.clear w.w_buf;
    let frame = Buffer.create (String.length payload + 8) in
    put_u32 frame (String.length payload);
    put_u32 frame (Hashing.crc32 payload);
    Buffer.add_string frame payload;
    let s = Buffer.contents frame in
    Sim_fs.write w.w_file s;
    w.w_bytes <- w.w_bytes + String.length s
  end

(** [start_run t] opens a fresh run file in the session directory. *)
let start_run t =
  Mutex.lock t.lock;
  let path =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        ensure_dir t;
        let n = t.next_run in
        t.next_run <- n + 1;
        Filename.concat t.dir (Printf.sprintf "run-%d.spl" n))
  in
  let f = Sim_fs.create path in
  Sim_fs.write f header;
  {
    w_session = t;
    w_path = path;
    w_file = f;
    w_buf = Buffer.create frame_target;
    w_rows = 0;
    w_bytes = String.length header;
    w_closed = false;
  }

(** [add_row w row] appends one row; frames flush at ~64 KiB. *)
let add_row w (row : Value.t array) =
  encode_row w.w_buf row;
  w.w_rows <- w.w_rows + 1;
  if Buffer.length w.w_buf >= frame_target then flush_frame w

(** [finish_run w] flushes, fsyncs and closes the run; accounts it to the
    session and the [quill.spill.*] registry. *)
let finish_run w =
  let t = w.w_session in
  Fun.protect
    ~finally:(fun () ->
      w.w_closed <- true;
      Sim_fs.close w.w_file)
    (fun () ->
      flush_frame w;
      Sim_fs.fsync w.w_file);
  Mutex.lock t.lock;
  t.bytes <- t.bytes + w.w_bytes;
  t.runs <- t.runs + 1;
  t.live <- t.live + 1;
  Mutex.unlock t.lock;
  Metrics.add m_bytes w.w_bytes;
  Metrics.incr m_runs;
  { r_path = w.w_path; r_rows = w.w_rows; r_bytes = w.w_bytes; r_deleted = false }

(** [abandon w] closes a writer without producing a run (error unwind);
    the file is left for session cleanup. *)
let abandon w =
  if not w.w_closed then begin
    w.w_closed <- true;
    Sim_fs.close w.w_file
  end

(* --- Run readers -------------------------------------------------------- *)

(* Reads bypass Sim_fs (reads are never fault-injected — the "disk"
   holds what it holds), but every frame's CRC is verified, so a torn or
   bit-flipped run raises {!Error} instead of yielding wrong rows. *)
type reader = {
  rd_run : run;
  rd_ic : in_channel;
  mutable rd_done : bool;
}

let open_run run =
  if run.r_deleted then bad ("run already deleted: " ^ run.r_path);
  let ic =
    try open_in_bin run.r_path
    with Sys_error m -> raise (Error ("spill: cannot open run: " ^ m))
  in
  let h = Bytes.create (String.length header) in
  (try really_input ic h 0 (String.length header)
   with End_of_file ->
     close_in_noerr ic;
     bad "missing header");
  if Bytes.to_string h <> header then begin
    close_in_noerr ic;
    bad "bad header"
  end;
  { rd_run = run; rd_ic = ic; rd_done = false }

(** [next_batch rd] is the next frame's rows, or [None] at end of run. *)
let next_batch rd =
  if rd.rd_done then None
  else begin
    let hdr = Bytes.create 8 in
    match really_input rd.rd_ic hdr 0 8 with
    | exception End_of_file ->
        rd.rd_done <- true;
        None
    | () ->
        let hdr = Bytes.to_string hdr in
        let len = get_u32 hdr 0 and crc = get_u32 hdr 4 in
        if len < 0 || len > 1 lsl 28 then bad "implausible frame length";
        let payload = Bytes.create len in
        (try really_input rd.rd_ic payload 0 len
         with End_of_file -> bad "torn frame");
        let payload = Bytes.to_string payload in
        if Hashing.crc32 payload <> crc then bad "frame checksum mismatch";
        Some (decode_rows payload)
  end

let delete_run run =
  if not run.r_deleted then begin
    run.r_deleted <- true;
    try Sys.remove run.r_path with Sys_error _ -> ()
  end

(** [close_reader ?delete rd] closes the channel; [~delete:true] also
    removes the consumed run file eagerly and un-counts it from the
    session's live set. *)
let close_reader ?(delete = false) rd =
  close_in_noerr rd.rd_ic;
  if delete then delete_run rd.rd_run

(** [note_consumed t] decrements the session's live-run count (called
    when a consumed run is deleted eagerly). *)
let note_consumed t =
  Mutex.lock t.lock;
  t.live <- max 0 (t.live - 1);
  Mutex.unlock t.lock

(** [iter_run ?delete run f] streams every row of [run] through [f]. *)
let iter_run ?(delete = false) run f =
  let rd = open_run run in
  Fun.protect
    ~finally:(fun () -> close_reader ~delete rd)
    (fun () ->
      let rec go () =
        match next_batch rd with
        | Some rows ->
            Array.iter f rows;
            go ()
        | None -> ()
      in
      go ())

(* --- Cleanup and orphan pruning ----------------------------------------- *)

(* Deleting spill garbage is not a durability event: it goes through the
   plain filesystem (best-effort), never consuming Sim_fs op budgets or
   masking an armed fault.  After a simulated crash nothing is deleted —
   the "machine is off", and recovery's prune owns the garbage. *)
let rec remove_tree path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> remove_tree (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

(** [cleanup t] deletes the session directory and everything in it,
    then the [<root>/spill] parent (and the tmpdir-style root above it)
    if this was the last session — [rmdir] only takes empty directories,
    so concurrent sessions are safe.  Best-effort and exception-free (it
    runs in [Fun.protect] finalizers); skipped entirely while the
    simulated machine is crashed. *)
let cleanup t =
  if t.made && not (Sim_fs.crashed ()) then begin
    remove_tree t.dir;
    let parent = Filename.dirname t.dir in
    (try Unix.rmdir parent with Unix.Unix_error _ -> ());
    (* Only ever remove a root we invented ourselves; a durable data
       directory is not ours to touch. *)
    let root = Filename.dirname parent in
    if String.length (Filename.basename root) >= 12
       && String.sub (Filename.basename root) 0 12 = "quill-spill-"
    then (try Unix.rmdir root with Unix.Unix_error _ -> ());
    Mutex.lock t.lock;
    t.live <- 0;
    Mutex.unlock t.lock
  end

(** [prune_orphans root] removes [<root>/spill] wholesale — every spill
    directory under a data dir belongs to a query that is no longer
    running, so at recovery time all of them are orphans.  Returns the
    number of session directories removed. *)
let prune_orphans root =
  let sr = spill_root root in
  match Sys.is_directory sr with
  | true ->
      let n = Array.length (Sys.readdir sr) in
      remove_tree sr;
      n
  | false | (exception Sys_error _) -> 0
